package factcheck

import (
	"context"
	"strings"
	"testing"
)

// TestFacade exercises the public API end to end the way the README
// advertises it.
func TestFacade(t *testing.T) {
	cfg := TestConfig()
	cfg.Datasets = []DatasetName{FactBench}
	cfg.Models = []string{Gemma2, Mistral}
	cfg.Methods = []Method{MethodDKA, MethodGIVF}
	b := New(cfg)

	rs, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	table := b.Table5(rs)
	for _, want := range []string{"FactBench", "DKA", "GIV-F", "Gemma2", "Mistral"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table5 missing %q", want)
		}
	}
	if len(rs.Get(FactBench, MethodDKA, Gemma2)) == 0 {
		t.Error("no outcomes via facade")
	}
}

func TestFacadeDefaults(t *testing.T) {
	if DefaultConfig().Scale != 1.0 {
		t.Error("default scale not 1.0")
	}
	tc := TestConfig()
	if !tc.Small || tc.Scale <= 0 || tc.Scale > 0.2 {
		t.Errorf("test config implausible: %+v", tc)
	}
}

// TestFacadeProgress exercises the streaming-progress option through the
// public API.
func TestFacadeProgress(t *testing.T) {
	cfg := TestConfig()
	cfg.Datasets = []DatasetName{FactBench}
	cfg.Models = []string{Gemma2}
	cfg.Methods = []Method{MethodDKA, MethodGIVZ}
	b := New(cfg)

	var events []Progress
	rs, err := b.Run(context.Background(), WithProgress(func(p Progress) {
		events = append(events, p)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("%d progress events, want 2", len(events))
	}
	last := events[len(events)-1]
	if last.DoneCells != last.TotalCells {
		t.Errorf("final event %d/%d, want all cells done", last.DoneCells, last.TotalCells)
	}
	if len(rs.Get(FactBench, MethodDKA, Gemma2)) == 0 {
		t.Error("no outcomes despite completed progress")
	}
}

// TestFacadeStoreResume exercises the store surface the README advertises:
// persist a run, reopen the directory, and replay it without recomputation.
func TestFacadeStoreResume(t *testing.T) {
	cfg := TestConfig()
	cfg.Datasets = []DatasetName{FactBench}
	cfg.Models = []string{Gemma2}
	cfg.Methods = []Method{MethodDKA, MethodRAG}

	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Cell
	sink := sinkFunc(func(c Cell, outs []Outcome) error {
		streamed = append(streamed, c)
		return nil
	})
	rs1, err := New(cfg).Run(context.Background(), WithStore(st), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(cfg.Methods) {
		t.Errorf("sink saw %d cells, want %d", len(streamed), len(cfg.Methods))
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != len(cfg.Methods) {
		t.Fatalf("reopened store has %d cells, want %d", st2.Len(), len(cfg.Methods))
	}
	rs2, err := New(cfg).Run(context.Background(), WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	a := rs1.Get(FactBench, MethodRAG, Gemma2)
	b := rs2.Get(FactBench, MethodRAG, Gemma2)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("replayed cell sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs after store replay", i)
		}
	}
}

// sinkFunc adapts a function to ResultSink.
type sinkFunc func(Cell, []Outcome) error

func (f sinkFunc) PutCell(c Cell, outs []Outcome) error { return f(c, outs) }
