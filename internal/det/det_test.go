package det

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	a := Hash64("x", "y")
	b := Hash64("x", "y")
	if a != b {
		t.Fatalf("Hash64 not deterministic: %d != %d", a, b)
	}
}

func TestHash64SeparatorMatters(t *testing.T) {
	// ("ab","c") must differ from ("a","bc"): the separator byte prevents
	// concatenation collisions.
	if Hash64("ab", "c") == Hash64("a", "bc") {
		t.Fatal("separator does not prevent concatenation collision")
	}
}

func TestUniformRange(t *testing.T) {
	f := func(a, b string) bool {
		u := Uniform(a, b)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUniformWellDistributedOnSequentialKeys guards against the FNV
// high-bit clustering bug: sequential ids must produce well-spread values.
func TestUniformWellDistributedOnSequentialKeys(t *testing.T) {
	const n = 2000
	var below float64
	var sum float64
	for i := 0; i < n; i++ {
		u := Uniform("doc", "fact-000123-d"+itoa(i))
		sum += u
		if u < 0.10 {
			below++
		}
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("mean of sequential-key uniforms = %.3f, want ~0.5", mean)
	}
	frac := below / n
	if frac < 0.06 || frac > 0.15 {
		t.Errorf("fraction below 0.10 = %.3f, want ~0.10", frac)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestBoolProbability(t *testing.T) {
	const n = 5000
	hits := 0
	for i := 0; i < n; i++ {
		if Bool(0.3, "bool-test", itoa(i)) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.03 {
		t.Errorf("Bool(0.3) frequency = %.3f, want ~0.30", got)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	if Bool(0, "never") {
		t.Error("Bool(0) returned true")
	}
	if !Bool(1.1, "always") {
		t.Error("Bool(>1) returned false")
	}
}

func TestIntNRangeAndPanic(t *testing.T) {
	f := func(s string) bool {
		v := IntN(7, s)
		return v >= 0 && v < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	IntN(0, "boom")
}

func TestSourceDeterministicStream(t *testing.T) {
	r1 := Source("seed")
	r2 := Source("seed")
	for i := 0; i < 10; i++ {
		if a, b := r1.Uint64(), r2.Uint64(); a != b {
			t.Fatalf("stream diverged at %d: %d != %d", i, a, b)
		}
	}
	r3 := Source("other-seed")
	same := true
	r1b := Source("seed")
	for i := 0; i < 10; i++ {
		if r1b.Uint64() != r3.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGaussianMoments(t *testing.T) {
	const n = 4000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := Gaussian(10, 2, "gauss", itoa(i))
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.15 {
		t.Errorf("Gaussian mean = %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.2 {
		t.Errorf("Gaussian stddev = %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestJitterBounds(t *testing.T) {
	f := func(s string) bool {
		v := Jitter(100, 0.2, s)
		return v >= 80 && v <= 120
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
