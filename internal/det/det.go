// Package det provides deterministic pseudo-randomness keyed by string
// parts. Every stochastic decision in the benchmark (does a model know a
// fact, is a document empty, how long did a call take) flows through this
// package, so results are bit-reproducible across runs and machines.
package det

import (
	"math"
	"math/rand/v2"
)

// Hash64 hashes the given parts (with separators) into a 64-bit key. The
// raw FNV-1a sum is passed through a splitmix64 finaliser: FNV's high bits
// barely change across inputs sharing a long prefix (e.g. sequential
// document ids), and Uniform consumes the high bits. The FNV-1a loop is
// inlined — identical to hash/fnv's sum64a over the same bytes — because
// every stochastic decision in the benchmark funnels through here and the
// hash.Hash indirection allocated on each call.
func Hash64(parts ...string) uint64 {
	return mix64(hashParts(offset64, parts...))
}

// FNV-1a 64-bit parameters (identical to hash/fnv's sum64a).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// hashParts folds parts (with separators) into a running FNV-1a state.
func hashParts(h uint64, parts ...string) uint64 {
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0x1f // part separator
		h *= prime64
	}
	return h
}

// Key is a partially applied Hash64: the raw FNV-1a state after hashing a
// fixed prefix of parts. Extending a Key with the remaining parts produces
// exactly the draw Hash64/Uniform would produce over prefix+rest — hot
// loops that pair one constant prefix with many suffixes (the SERP jitter
// hashing the query against every pool document) precompute the prefix
// once instead of re-hashing it per suffix.
type Key uint64

// NewKey captures the hash state of the given prefix parts.
func NewKey(parts ...string) Key {
	return Key(hashParts(offset64, parts...))
}

// Uniform returns the deterministic uniform sample in [0,1) keyed by the
// prefix plus parts: NewKey(a...).Uniform(b...) == Uniform(a..., b...).
func (k Key) Uniform(parts ...string) float64 {
	h := mix64(hashParts(uint64(k), parts...))
	return float64(h>>11) / float64(1<<53)
}

// mix64 is the splitmix64 finaliser, a full-avalanche bijection.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Uniform returns a deterministic uniform sample in [0,1) keyed by parts.
func Uniform(parts ...string) float64 {
	k := Hash64(parts...)
	// Use the top 53 bits for a full-precision float64 mantissa.
	return float64(k>>11) / float64(1<<53)
}

// Bool returns true with probability p, keyed by parts.
func Bool(p float64, parts ...string) bool {
	return Uniform(parts...) < p
}

// IntN returns a deterministic integer in [0,n) keyed by parts.
// It panics if n <= 0.
func IntN(n int, parts ...string) int {
	if n <= 0 {
		panic("det: IntN with non-positive n")
	}
	return int(Hash64(parts...) % uint64(n))
}

// Source returns a rand source seeded from parts, for longer deterministic
// streams (dataset generation, corpus synthesis).
func Source(parts ...string) *rand.Rand {
	k := Hash64(parts...)
	return rand.New(rand.NewPCG(k, k^0x9e3779b97f4a7c15))
}

// Gaussian returns a deterministic sample from N(mean, stddev) keyed by
// parts, via the Box-Muller transform over two derived uniforms.
func Gaussian(mean, stddev float64, parts ...string) float64 {
	u1 := Uniform(append(parts, "g1")...)
	u2 := Uniform(append(parts, "g2")...)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter multiplies base by a deterministic factor in [1-amp, 1+amp].
func Jitter(base, amp float64, parts ...string) float64 {
	u := Uniform(parts...)
	return base * (1 - amp + 2*amp*u)
}
