// Package det provides deterministic pseudo-randomness keyed by string
// parts. Every stochastic decision in the benchmark (does a model know a
// fact, is a document empty, how long did a call take) flows through this
// package, so results are bit-reproducible across runs and machines.
package det

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Hash64 hashes the given parts (with separators) into a 64-bit key. The
// raw FNV-1a sum is passed through a splitmix64 finaliser: FNV's high bits
// barely change across inputs sharing a long prefix (e.g. sequential
// document ids), and Uniform consumes the high bits.
func Hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0x1f})
	}
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finaliser, a full-avalanche bijection.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Uniform returns a deterministic uniform sample in [0,1) keyed by parts.
func Uniform(parts ...string) float64 {
	k := Hash64(parts...)
	// Use the top 53 bits for a full-precision float64 mantissa.
	return float64(k>>11) / float64(1<<53)
}

// Bool returns true with probability p, keyed by parts.
func Bool(p float64, parts ...string) bool {
	return Uniform(parts...) < p
}

// IntN returns a deterministic integer in [0,n) keyed by parts.
// It panics if n <= 0.
func IntN(n int, parts ...string) int {
	if n <= 0 {
		panic("det: IntN with non-positive n")
	}
	return int(Hash64(parts...) % uint64(n))
}

// Source returns a rand source seeded from parts, for longer deterministic
// streams (dataset generation, corpus synthesis).
func Source(parts ...string) *rand.Rand {
	k := Hash64(parts...)
	return rand.New(rand.NewPCG(k, k^0x9e3779b97f4a7c15))
}

// Gaussian returns a deterministic sample from N(mean, stddev) keyed by
// parts, via the Box-Muller transform over two derived uniforms.
func Gaussian(mean, stddev float64, parts ...string) float64 {
	u1 := Uniform(append(parts, "g1")...)
	u2 := Uniform(append(parts, "g2")...)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter multiplies base by a deterministic factor in [1-amp, 1+amp].
func Jitter(base, amp float64, parts ...string) float64 {
	u := Uniform(parts...)
	return base * (1 - amp + 2*amp*u)
}
