package det

import (
	"hash/fnv"
	"testing"
)

// refHash64 is the retired hash/fnv implementation of Hash64, kept as the
// differential reference for the inlined FNV-1a loop.
func refHash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0x1f})
	}
	return mix64(h.Sum64())
}

var keyCases = [][]string{
	{},
	{""},
	{"a"},
	{"serp", "who founded the company", "FB-t0001-d0042"},
	{"rerank", "jina-reranker-v1-turbo-en", "a long reference sentence", "an even longer candidate passage with many words"},
	{"shared", "knows", "FB-t0099"},
	{"", "", ""},
	{"part-with-\x1f-inside", "tail"},
}

// TestHash64MatchesFNVReference pins the inlined loop byte-identical to
// hash/fnv's sum64a — every deterministic draw in the benchmark depends on
// these exact values.
func TestHash64MatchesFNVReference(t *testing.T) {
	for _, parts := range keyCases {
		if got, want := Hash64(parts...), refHash64(parts...); got != want {
			t.Errorf("Hash64(%q) = %x, fnv reference = %x", parts, got, want)
		}
	}
}

// TestKeyUniformMatchesUniform pins the partial-hash fast path: extending a
// prefix Key must reproduce the one-shot draw for every prefix/suffix cut.
func TestKeyUniformMatchesUniform(t *testing.T) {
	for _, parts := range keyCases {
		for cut := 0; cut <= len(parts); cut++ {
			got := NewKey(parts[:cut]...).Uniform(parts[cut:]...)
			want := Uniform(parts...)
			if got != want {
				t.Errorf("NewKey(%q).Uniform(%q) = %v, Uniform(%q) = %v",
					parts[:cut], parts[cut:], got, parts, want)
			}
		}
	}
}

func BenchmarkUniformFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Uniform("serp", "who founded the regional registry and when", "FB-t0001-d0042")
	}
}

func BenchmarkUniformKeyed(b *testing.B) {
	k := NewKey("serp", "who founded the regional registry and when")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Uniform("FB-t0001-d0042")
	}
}
