// Package kgcheck implements the *internal KG-based* fact-checking family
// the paper contrasts with FactCheck's external-evidence approach (Table 1:
// KStream, KLinker, PredPath — coherence-based methods that score a triple
// by the graph patterns around it). They are built here as baselines so the
// benchmark can quantify the trade-off the paper describes: internal
// methods are fast and self-contained but "rely entirely on the underlying
// KG, which may contain errors or be incomplete; thus, they cannot be used
// to assess the accuracy of the KG itself" (§2.1).
//
// Both checkers operate leave-one-out: the triple under test is never used
// as evidence for itself.
//
//   - Linker (Relational Knowledge Linker-style): scores a triple by the
//     best bounded-length path connecting subject to object, with longer
//     and higher-degree paths contributing less — a specificity-weighted
//     reachability measure.
//   - PredPath (discriminative predicate-path style): learns, per relation,
//     which two-edge path signatures distinguish positive examples from
//     type-consistent corruptions, then scores a triple by the weighted
//     signatures it matches.
package kgcheck

import (
	"math"
	"math/rand/v2"
	"sort"

	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/kg"
	"factcheck/internal/world"
)

// Checker scores the plausibility of a statement in [0,1] using only the
// KG itself.
type Checker interface {
	// Name identifies the checker.
	Name() string
	// Score returns the truth score of (s, rel, o), never using the triple
	// itself as evidence.
	Score(s, o *world.Entity, rel *world.Relation) float64
}

// graphView is an adjacency view over the world's true facts, with typed
// edges in both directions ("rel" forward, "~rel" inverse).
type graphView struct {
	adj map[kg.IRI][]edge
	// has indexes exact edges for leave-one-out checks.
	has map[string]bool
}

type edge struct {
	rel string // "~"-prefixed when traversed inversely
	to  kg.IRI
}

func buildView(w *world.World) *graphView {
	v := &graphView{adj: map[kg.IRI][]edge{}, has: map[string]bool{}}
	for _, f := range w.Facts {
		v.adj[f.S.IRI] = append(v.adj[f.S.IRI], edge{rel: f.Relation.Name, to: f.O.IRI})
		v.adj[f.O.IRI] = append(v.adj[f.O.IRI], edge{rel: "~" + f.Relation.Name, to: f.S.IRI})
		v.has[edgeKey(f.S.IRI, f.Relation.Name, f.O.IRI)] = true
	}
	return v
}

func edgeKey(s kg.IRI, rel string, o kg.IRI) string {
	return string(s) + "|" + rel + "|" + string(o)
}

// Linker is the Knowledge-Linker-style path checker.
type Linker struct {
	view *graphView
	// MaxLen bounds path length (edges); the original uses shortest
	// specificity-weighted paths, 2–3 edges suffice on this vocabulary.
	MaxLen int
}

// NewLinker builds the checker over the world's fact graph.
func NewLinker(w *world.World) *Linker {
	return &Linker{view: buildView(w), MaxLen: 3}
}

// Name implements Checker.
func (l *Linker) Name() string { return "KLinker" }

// Score implements Checker: the best path's specificity, where each hop
// through a node of degree d multiplies the score by 1/log2(2+d) — highly
// connected hub nodes carry little evidence. The direct edge (the triple
// itself) is excluded.
func (l *Linker) Score(s, o *world.Entity, rel *world.Relation) float64 {
	type state struct {
		node  kg.IRI
		score float64
		depth int
	}
	best := 0.0
	// Iterative deepening DFS with score pruning.
	var dfs func(st state, visited map[kg.IRI]bool)
	dfs = func(st state, visited map[kg.IRI]bool) {
		if st.score <= best || st.depth > l.MaxLen {
			return
		}
		for _, e := range l.view.adj[st.node] {
			// Leave-one-out: skip the asserted edge in either direction.
			if st.node == s.IRI && e.to == o.IRI && (e.rel == rel.Name) {
				continue
			}
			if st.node == o.IRI && e.to == s.IRI && e.rel == "~"+rel.Name {
				continue
			}
			if visited[e.to] {
				continue
			}
			deg := float64(len(l.view.adj[e.to]))
			sc := st.score / math.Log2(2+deg)
			if e.to == o.IRI {
				if sc > best {
					best = sc
				}
				continue
			}
			if st.depth+1 < l.MaxLen {
				visited[e.to] = true
				dfs(state{node: e.to, score: sc, depth: st.depth + 1}, visited)
				delete(visited, e.to)
			}
		}
	}
	dfs(state{node: s.IRI, score: 1, depth: 0}, map[kg.IRI]bool{s.IRI: true})
	return best
}

// PredPath is the discriminative predicate-path checker: per relation it
// fits weights over two-edge path signatures from positive examples and
// type-consistent negative samples, then scores by the sum of matched
// signature weights squashed to [0,1].
type PredPath struct {
	w    *world.World
	view *graphView
	// weights maps relation -> path signature -> weight.
	weights map[string]map[string]float64
	// TrainPerRelation bounds training examples per relation.
	TrainPerRelation int
}

// NewPredPath trains the checker on the world's fact graph.
func NewPredPath(w *world.World) *PredPath {
	p := &PredPath{
		w:                w,
		view:             buildView(w),
		weights:          map[string]map[string]float64{},
		TrainPerRelation: 150,
	}
	p.train()
	return p
}

// Name implements Checker.
func (p *PredPath) Name() string { return "PredPath" }

// signatures returns the two-edge path signatures ("relA/relB") connecting
// s to o, excluding the direct asserted edge.
func (p *PredPath) signatures(s, o kg.IRI, rel string) []string {
	var sigs []string
	for _, e1 := range p.view.adj[s] {
		if e1.to == o {
			// One-edge paths other than the asserted relation are signals
			// too (e.g. deathPlace edge when checking birthPlace).
			if e1.rel != rel {
				sigs = append(sigs, e1.rel)
			}
			continue
		}
		for _, e2 := range p.view.adj[e1.to] {
			if e2.to == o {
				sigs = append(sigs, e1.rel+"/"+e2.rel)
			}
		}
	}
	sort.Strings(sigs)
	return sigs
}

// train fits per-relation signature weights: w(sig) = log odds of the
// signature under positives vs negatives (add-one smoothed).
func (p *PredPath) train() {
	byRel := p.w.FactsByRelation()
	for relName, facts := range byRel {
		rng := det.Source("predpath-train", relName)
		n := len(facts)
		if n > p.TrainPerRelation {
			n = p.TrainPerRelation
		}
		pos := map[string]float64{}
		neg := map[string]float64{}
		for i := 0; i < n; i++ {
			f := facts[rng.IntN(len(facts))]
			for _, sig := range p.signatures(f.S.IRI, f.O.IRI, relName) {
				pos[sig]++
			}
			// Type-consistent corruption as the negative example (the
			// counterexample-aware variant of Kim & Choi).
			if cf, ok := p.w.Corrupt(f, world.CorruptObject, rng); ok {
				for _, sig := range p.signatures(cf.S.IRI, cf.O.IRI, relName) {
					neg[sig]++
				}
			}
		}
		weights := map[string]float64{}
		for sig, pc := range pos {
			nc := neg[sig]
			weights[sig] = math.Log((pc + 1) / (nc + 1))
		}
		for sig, nc := range neg {
			if _, seen := pos[sig]; !seen {
				weights[sig] = math.Log(1 / (nc + 1))
			}
		}
		p.weights[relName] = weights
	}
}

// Score implements Checker.
func (p *PredPath) Score(s, o *world.Entity, rel *world.Relation) float64 {
	weights := p.weights[rel.Name]
	if weights == nil {
		return 0
	}
	sum := 0.0
	for _, sig := range p.signatures(s.IRI, o.IRI, rel.Name) {
		sum += weights[sig]
	}
	return 1 / (1 + math.Exp(-sum))
}

// Evaluation of a checker over a dataset at a decision threshold.
type Evaluation struct {
	Checker        string
	Threshold      float64
	TP, FP, TN, FN int
}

// F1True returns the F1 of the "true" class.
func (e Evaluation) F1True() float64 {
	p := safeDiv(e.TP, e.TP+e.FP)
	r := safeDiv(e.TP, e.TP+e.FN)
	return f1(p, r)
}

// F1False returns the F1 of the "false" class.
func (e Evaluation) F1False() float64 {
	p := safeDiv(e.TN, e.TN+e.FN)
	r := safeDiv(e.TN, e.TN+e.FP)
	return f1(p, r)
}

// Accuracy returns plain accuracy.
func (e Evaluation) Accuracy() float64 {
	return safeDiv(e.TP+e.TN, e.TP+e.TN+e.FP+e.FN)
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate scores every fact of d and classifies at the threshold.
func Evaluate(c Checker, d *dataset.Dataset, threshold float64) Evaluation {
	ev := Evaluation{Checker: c.Name(), Threshold: threshold}
	for _, f := range d.Facts {
		pred := c.Score(f.Subject, f.Object, f.Relation) >= threshold
		switch {
		case f.Gold && pred:
			ev.TP++
		case f.Gold && !pred:
			ev.FN++
		case !f.Gold && pred:
			ev.FP++
		default:
			ev.TN++
		}
	}
	return ev
}

// BestThreshold sweeps thresholds on a sample and returns the accuracy-
// maximising one (the unsupervised tuning the original methods perform on
// held-out data).
func BestThreshold(c Checker, d *dataset.Dataset, sample int, rng *rand.Rand) float64 {
	facts := d.Facts
	if sample > 0 && len(facts) > sample {
		idx := rng.Perm(len(facts))[:sample]
		sampled := make([]*dataset.Fact, sample)
		for i, j := range idx {
			sampled[i] = facts[j]
		}
		facts = sampled
	}
	type scored struct {
		s    float64
		gold bool
	}
	var ss []scored
	for _, f := range facts {
		ss = append(ss, scored{s: c.Score(f.Subject, f.Object, f.Relation), gold: f.Gold})
	}
	best, bestAcc := 0.5, -1.0
	for _, th := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		correct := 0
		for _, x := range ss {
			if (x.s >= th) == x.gold {
				correct++
			}
		}
		acc := float64(correct) / float64(len(ss))
		if acc > bestAcc {
			best, bestAcc = th, acc
		}
	}
	return best
}
