package kgcheck

import (
	"testing"

	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/world"
)

func fixture(t *testing.T) (*world.World, *dataset.Dataset) {
	t.Helper()
	w := world.New(world.SmallConfig())
	return w, dataset.Build(w, dataset.FactBench, 0.3)
}

func TestLinkerScoreRange(t *testing.T) {
	w, d := fixture(t)
	l := NewLinker(w)
	for _, f := range d.Facts[:50] {
		s := l.Score(f.Subject, f.Object, f.Relation)
		if s < 0 || s > 1 {
			t.Fatalf("score %f out of range", s)
		}
	}
}

func TestLinkerLeaveOneOut(t *testing.T) {
	// A fact whose entities are otherwise unconnected must not score via
	// its own edge. Construct the check over real facts: scoring must never
	// return the maximum 1.0 that a direct edge would produce (since the
	// direct edge is excluded and all other paths pass through degree>0
	// nodes with log penalties).
	w, d := fixture(t)
	l := NewLinker(w)
	for _, f := range d.Facts[:100] {
		if !f.Gold {
			continue
		}
		if s := l.Score(f.Subject, f.Object, f.Relation); s >= 0.999 {
			t.Fatalf("fact %s scored %f — direct edge leaked", f.ID, s)
		}
	}
}

func TestLinkerDiscriminates(t *testing.T) {
	// True facts must score higher on average than corrupted ones: the
	// subject's neighbourhood genuinely touches the object.
	w, d := fixture(t)
	l := NewLinker(w)
	var sumT, sumF float64
	var nT, nF int
	for _, f := range d.Facts {
		s := l.Score(f.Subject, f.Object, f.Relation)
		if f.Gold {
			sumT += s
			nT++
		} else {
			sumF += s
			nF++
		}
	}
	if nT == 0 || nF == 0 {
		t.Fatal("degenerate dataset")
	}
	meanT, meanF := sumT/float64(nT), sumF/float64(nF)
	if meanT <= meanF {
		t.Errorf("linker does not discriminate: true %.4f <= false %.4f", meanT, meanF)
	}
}

func TestPredPathScoreRange(t *testing.T) {
	w, d := fixture(t)
	p := NewPredPath(w)
	for _, f := range d.Facts[:50] {
		s := p.Score(f.Subject, f.Object, f.Relation)
		if s < 0 || s > 1 {
			t.Fatalf("score %f out of range", s)
		}
	}
}

func TestPredPathDiscriminates(t *testing.T) {
	w, d := fixture(t)
	p := NewPredPath(w)
	var sumT, sumF float64
	var nT, nF int
	for _, f := range d.Facts {
		s := p.Score(f.Subject, f.Object, f.Relation)
		if f.Gold {
			sumT += s
			nT++
		} else {
			sumF += s
			nF++
		}
	}
	meanT, meanF := sumT/float64(nT), sumF/float64(nF)
	if meanT <= meanF {
		t.Errorf("predpath does not discriminate: true %.4f <= false %.4f", meanT, meanF)
	}
}

func TestPredPathUnknownRelation(t *testing.T) {
	w, _ := fixture(t)
	p := NewPredPath(w)
	fake := &world.Relation{Name: "noSuchRelation", Domain: world.TypePerson, Range: world.TypeCity}
	s := w.ByType(world.TypePerson)[0]
	o := w.ByType(world.TypeCity)[0]
	if got := p.Score(s, o, fake); got != 0 {
		t.Errorf("unknown relation score = %f, want 0", got)
	}
}

func TestEvaluateConfusion(t *testing.T) {
	w, d := fixture(t)
	l := NewLinker(w)
	ev := Evaluate(l, d, 0.1)
	if got := ev.TP + ev.FP + ev.TN + ev.FN; got != len(d.Facts) {
		t.Fatalf("evaluation covers %d facts, want %d", got, len(d.Facts))
	}
	if ev.Checker != "KLinker" {
		t.Errorf("checker name %q", ev.Checker)
	}
	if ev.Accuracy() < 0 || ev.Accuracy() > 1 {
		t.Error("accuracy out of range")
	}
	if f1 := ev.F1True(); f1 < 0 || f1 > 1 {
		t.Error("F1True out of range")
	}
}

func TestBestThresholdImproves(t *testing.T) {
	w, d := fixture(t)
	p := NewPredPath(w)
	rng := det.Source("threshold-test")
	th := BestThreshold(p, d, 150, rng)
	if th <= 0 || th >= 1 {
		t.Fatalf("threshold %f out of range", th)
	}
	tuned := Evaluate(p, d, th)
	// The tuned threshold must beat at least one arbitrary extreme.
	lo := Evaluate(p, d, 0.05)
	hi := Evaluate(p, d, 0.95)
	if tuned.Accuracy() < lo.Accuracy() && tuned.Accuracy() < hi.Accuracy() {
		t.Errorf("tuned accuracy %.3f below both extremes (%.3f, %.3f)",
			tuned.Accuracy(), lo.Accuracy(), hi.Accuracy())
	}
}

func TestCheckersDeterministic(t *testing.T) {
	w, d := fixture(t)
	l1, l2 := NewLinker(w), NewLinker(w)
	p1, p2 := NewPredPath(w), NewPredPath(w)
	f := d.Facts[0]
	if l1.Score(f.Subject, f.Object, f.Relation) != l2.Score(f.Subject, f.Object, f.Relation) {
		t.Error("linker not deterministic")
	}
	if p1.Score(f.Subject, f.Object, f.Relation) != p2.Score(f.Subject, f.Object, f.Relation) {
		t.Error("predpath not deterministic")
	}
}
