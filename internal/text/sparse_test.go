package text

import (
	"fmt"
	"math"
	"testing"
)

// sparseCases covers the shapes the pipeline embeds: verbalised facts,
// synthetic document bodies, queries, repeated terms, camelCase KG strings,
// stopword-only and empty strings.
var sparseCases = []string{
	"",
	"the and of in on",
	"Marie Curie was married to Pierre Curie.",
	"Alexander_III_of_Russia isMarriedTo Maria Feodorovna",
	"Contrary to some claims, it is not the case that Lionel Messi plays for Madrid.",
	"award award award winner record record",
	"Regional news roundup: archive digest and weekly miscellany, site index",
	"Who founded the company that acquired the regional registry profile?",
	"a b c d e f g h i j k l m n o p q r s t u v w x y z",
	"N01 Entity-17 was born in City_03. Multiple records agree on this point.",
}

func TestSparseEmbedMatchesDense(t *testing.T) {
	for _, s := range sparseCases {
		sv := SparseEmbed(s)
		if sv.Dense() != Embed(s) {
			t.Errorf("SparseEmbed(%q).Dense() != Embed(%q)", s, s)
		}
	}
}

func TestSparseEmbedSortedDims(t *testing.T) {
	for _, s := range sparseCases {
		sv := SparseEmbed(s)
		for i := 1; i < len(sv.Dims); i++ {
			if sv.Dims[i] <= sv.Dims[i-1] {
				t.Fatalf("SparseEmbed(%q): dims not strictly ascending at %d: %v", s, i, sv.Dims)
			}
		}
		if len(sv.Dims) != len(sv.Weights) {
			t.Fatalf("SparseEmbed(%q): %d dims vs %d weights", s, len(sv.Dims), len(sv.Weights))
		}
	}
}

// TestSparseCosineMatchesDense is the substrate's core contract: sparse
// scores must be bit-identical to the dense path, since SERP rankings,
// rerank scores and result-store fingerprints all flow from them.
func TestSparseCosineMatchesDense(t *testing.T) {
	for i, a := range sparseCases {
		for j, b := range sparseCases {
			sparse := SparseCosine(SparseEmbed(a), SparseEmbed(b))
			dense := Cosine(Embed(a), Embed(b))
			if sparse != dense {
				t.Errorf("case (%d,%d): SparseCosine = %v, Cosine = %v (diff %g)",
					i, j, sparse, dense, math.Abs(sparse-dense))
			}
		}
	}
}

func TestSparseEmbedTokensMatchesEmbedTokens(t *testing.T) {
	for _, s := range sparseCases {
		toks := ContentTokens(s)
		if SparseEmbedTokens(toks).Dense() != EmbedTokens(toks) {
			t.Errorf("SparseEmbedTokens mismatch for %q", s)
		}
	}
}

func TestSparseNNZ(t *testing.T) {
	if got := SparseEmbed("").NNZ(); got != 0 {
		t.Errorf("empty NNZ = %d", got)
	}
	if got := SparseEmbed("alpha beta alpha").NNZ(); got != 2 {
		t.Errorf("NNZ = %d, want 2", got)
	}
}

// overlapMaps is the retired hash-set implementation of Overlap, kept as
// the differential reference.
func overlapMaps(a, b string) float64 {
	sa := map[string]bool{}
	for _, t := range ContentTokens(a) {
		sa[t] = true
	}
	sb := map[string]bool{}
	for _, t := range ContentTokens(b) {
		sb[t] = true
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

func TestOverlapMatchesMapReference(t *testing.T) {
	for _, a := range sparseCases {
		for _, b := range sparseCases {
			if got, want := Overlap(a, b), overlapMaps(a, b); got != want {
				t.Errorf("Overlap(%q, %q) = %v, map reference = %v", a, b, got, want)
			}
		}
	}
}

var benchPair = [2]string{
	"Marie Curie was married to Pierre Curie and won the Nobel Prize in Physics.",
	"Contrary to some claims, it is not the case that Marie Curie was born in Paris; records place her birth in Warsaw.",
}

func BenchmarkOverlap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Overlap(benchPair[0], benchPair[1])
	}
}

func BenchmarkOverlapMaps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		overlapMaps(benchPair[0], benchPair[1])
	}
}

func BenchmarkSparseEmbed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SparseEmbed(benchPair[1])
	}
}

func BenchmarkDenseEmbed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Embed(benchPair[1])
	}
}

func BenchmarkSparseCosine(b *testing.B) {
	va, vb := SparseEmbed(benchPair[0]), SparseEmbed(benchPair[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SparseCosine(va, vb)
	}
}

func BenchmarkDenseCosine(b *testing.B) {
	va, vb := Embed(benchPair[0]), Embed(benchPair[1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cosine(va, vb)
	}
}

// FuzzSparseMatchesDense cross-checks the sparse and dense paths over
// arbitrary inputs.
func FuzzSparseMatchesDense(f *testing.F) {
	for _, s := range sparseCases {
		f.Add(s, "reference sentence about a subject")
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		if SparseEmbed(a).Dense() != Embed(a) {
			t.Fatalf("SparseEmbed(%q) != Embed", a)
		}
		if got, want := SparseCosine(SparseEmbed(a), SparseEmbed(b)), Cosine(Embed(a), Embed(b)); got != want {
			t.Fatalf("cosine mismatch for (%q, %q): %v vs %v", a, b, got, want)
		}
	})
}

func ExampleSparseEmbed() {
	v := SparseEmbed("alpha beta alpha")
	fmt.Println(v.NNZ())
	// Output: 2
}
