package text

import (
	"math"
	"slices"
)

// SparseVector is the sparse form of a hashed term vector: the non-zero
// dimensions of the equivalent dense Vector, ascending, with their weights.
// A typical sentence has 10–40 non-zero terms out of VectorDim = 1024, so
// sparse embedding and scoring touch two orders of magnitude less data than
// the dense path while producing bit-identical numbers (see SparseCosine).
type SparseVector struct {
	// Dims holds the non-zero hashed dimensions in strictly ascending order.
	Dims []int32
	// Weights holds the matching term weights, (1+log tf)/‖v‖, exactly as
	// Embed computes them.
	Weights []float32
}

// NNZ returns the number of non-zero dimensions.
func (v SparseVector) NNZ() int { return len(v.Dims) }

// Dense expands the sparse vector to its dense equivalent. It is the
// bridge used by equivalence tests and dense-only consumers.
func (v SparseVector) Dense() Vector {
	var d Vector
	for i, dim := range v.Dims {
		d[dim] = v.Weights[i]
	}
	return d
}

// SparseEmbed is Embed producing a SparseVector: Dense() of the result is
// bit-identical to Embed(s).
func SparseEmbed(s string) SparseVector {
	return SparseEmbedTokens(ContentTokens(s))
}

// SparseEmbedTokens is EmbedTokens producing a SparseVector (stopwords must
// already be removed). The weights are computed in ascending dimension
// order — the order EmbedTokens' dense loops visit non-zero entries — so
// every float operation matches the dense path and the result is
// bit-identical.
func SparseEmbedTokens(toks []string) SparseVector {
	if len(toks) == 0 {
		return SparseVector{}
	}
	dims := make([]int32, len(toks))
	for i, t := range toks {
		dims[i] = int32(HashToken(t))
	}
	slices.Sort(dims)

	out := SparseVector{
		Dims:    dims[:0],
		Weights: make([]float32, 0, len(dims)),
	}
	var norm float64
	for i := 0; i < len(dims); {
		j := i + 1
		for j < len(dims) && dims[j] == dims[i] {
			j++
		}
		// Dense Embed counts tf by float32 increments; integer run lengths
		// convert to the same float32 values exactly.
		w := float32(1 + math.Log(float64(float32(j-i))))
		out.Dims = append(out.Dims, dims[i])
		out.Weights = append(out.Weights, w)
		norm += float64(w) * float64(w)
		i = j
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range out.Weights {
			out.Weights[i] *= inv
		}
	}
	return out
}

// SparseCosine returns the cosine similarity of two sparse vectors,
// bit-identical to Cosine over their dense equivalents: the merge join
// visits shared dimensions in ascending order — the order the dense loop
// adds non-zero products — and the dimensions it skips contribute exactly
// +0.0 to the dense accumulator, an identity under IEEE-754 addition for
// the non-negative partial sums involved.
func SparseCosine(a, b SparseVector) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a.Dims) && j < len(b.Dims) {
		switch {
		case a.Dims[i] < b.Dims[j]:
			i++
		case a.Dims[i] > b.Dims[j]:
			j++
		default:
			dot += float64(a.Weights[i]) * float64(b.Weights[j])
			i++
			j++
		}
	}
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return dot
}
