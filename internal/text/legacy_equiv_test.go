package text

import (
	"hash/fnv"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

// legacyTokenize is the retired strings.Builder + strings.ToLower
// implementation, kept as the differential reference for the
// single-allocation rewrite.
func legacyTokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	prevLower := false
	prevDigit := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			if (unicode.IsUpper(r) && prevLower) || prevDigit {
				flush()
			}
			cur.WriteRune(r)
			prevLower = unicode.IsLower(r)
			prevDigit = false
		case unicode.IsDigit(r):
			if !prevDigit && cur.Len() > 0 {
				flush()
			}
			cur.WriteRune(r)
			prevLower = false
			prevDigit = true
		default:
			flush()
			prevLower = false
			prevDigit = false
		}
	}
	flush()
	return toks
}

var tokenizeCases = []string{
	"",
	"isMarriedTo",
	"Alexander_III_of_Russia",
	"award3 Entity-17 N01",
	"Marie Curie was married to Pierre Curie.",
	"HTTPServer XMLHttpRequest iOS15Pro",
	"ümlaut Ärger ÊTRE déjà-vu",
	"mixed  \t whitespace\nand-punctuation!?",
	"٣ арабская цифра и КИРИЛЛИЦА",
	"a1b2c3",
}

func TestTokenizeMatchesLegacy(t *testing.T) {
	for _, s := range tokenizeCases {
		if got, want := Tokenize(s), legacyTokenize(s); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, legacy = %v", s, got, want)
		}
	}
}

func FuzzTokenizeMatchesLegacy(f *testing.F) {
	for _, s := range tokenizeCases {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if got, want := Tokenize(s), legacyTokenize(s); !reflect.DeepEqual(got, want) {
			t.Fatalf("Tokenize(%q) = %v, legacy = %v", s, got, want)
		}
	})
}

// TestCountTokensMatchesFields pins the in-place word count against the
// retired strings.Fields-based implementation.
func TestCountTokensMatchesFields(t *testing.T) {
	ref := func(s string) int {
		if s == "" {
			return 0
		}
		return int(math.Ceil(float64(len(strings.Fields(s))) * 1.3))
	}
	cases := append(append([]string{}, tokenizeCases...),
		"   leading", "trailing   ", " \t\n ", "one", "a b", "a b")
	for _, s := range cases {
		if got, want := CountTokens(s), ref(s); got != want {
			t.Errorf("CountTokens(%q) = %d, Fields reference = %d", s, got, want)
		}
	}
	if err := quick.Check(func(s string) bool { return CountTokens(s) == ref(s) }, nil); err != nil {
		t.Error(err)
	}
}

// TestHashTokenMatchesFNV pins the inlined token hash against the original
// hash/fnv-based dimension mapping (the index's posting layout and every
// embedding depend on it).
func TestHashTokenMatchesFNV(t *testing.T) {
	fnvRef := func(tok string) int {
		h := fnv.New32a()
		h.Write([]byte(tok))
		return int(h.Sum32() & (VectorDim - 1))
	}
	for _, s := range tokenizeCases {
		for _, tok := range Tokenize(s) {
			if got, want := HashToken(tok), fnvRef(tok); got != want {
				t.Errorf("HashToken(%q) = %d, want %d", tok, got, want)
			}
		}
	}
}
