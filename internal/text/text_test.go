package text

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello World", []string{"hello", "world"}},
		{"isMarriedTo", []string{"is", "married", "to"}},
		{"Alexander_III_of_Russia", []string{"alexander", "iii", "of", "russia"}},
		{"birthPlace", []string{"birth", "place"}},
		{"camelCase snake_case", []string{"camel", "case", "snake", "case"}},
		{"ABCDef", []string{"abcdef"}}, // uppercase runs stay together
		{"year 1984!", []string{"year", "1984"}},
		{"", nil},
		{"...", nil},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestContentTokensDropsStopwords(t *testing.T) {
	got := ContentTokens("the cat was born in the city")
	want := []string{"cat", "born", "city"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestEmbedNormalised(t *testing.T) {
	v := Embed("the quick brown fox jumps over the lazy dog")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("embedding norm^2 = %f, want 1", norm)
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	v := Embed("the was in of")
	for i, x := range v {
		if x != 0 {
			t.Fatalf("stopword-only embedding has non-zero dim %d", i)
		}
	}
}

func TestCosineIdentity(t *testing.T) {
	s := "marie curie received the nobel prize"
	if got := Similarity(s, s); math.Abs(got-1) > 1e-5 {
		t.Errorf("self-similarity = %f, want 1", got)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	got := Similarity("alpha beta gamma", "delta epsilon zeta")
	if got > 0.05 {
		t.Errorf("disjoint texts similarity = %f, want ~0", got)
	}
}

func TestSimilarityOrdering(t *testing.T) {
	ref := "Marie Curie was born in Warsaw."
	near := "Was Marie Curie born in Warsaw?"
	far := "The committee discussed agricultural policy."
	if Similarity(ref, near) <= Similarity(ref, far) {
		t.Error("paraphrase scored no higher than unrelated text")
	}
}

func TestCosineRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		c := Similarity(a, b)
		return c >= -1.000001 && c <= 1.000001 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return math.Abs(Similarity(a, b)-Similarity(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Sigmoid(0) = %f, want 0.5", got)
	}
	if Sigmoid(10) < 0.99 || Sigmoid(-10) > 0.01 {
		t.Error("Sigmoid saturation wrong")
	}
	// Sigmoid saturates to exactly 0/1 at float64 extremes; the closed
	// interval is the contract.
	f := func(x float64) bool {
		s := Sigmoid(x)
		return s >= 0 && s <= 1 || math.IsNaN(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap("cat dog", "cat dog"); got != 1 {
		t.Errorf("identical overlap = %f, want 1", got)
	}
	if got := Overlap("cat dog", "bird fish"); got != 0 {
		t.Errorf("disjoint overlap = %f, want 0", got)
	}
	if got := Overlap("cat dog", "dog bird"); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("partial overlap = %f, want 1/3", got)
	}
	if got := Overlap("", "cat"); got != 0 {
		t.Errorf("empty overlap = %f, want 0", got)
	}
}

func TestCountTokens(t *testing.T) {
	if got := CountTokens(""); got != 0 {
		t.Errorf("CountTokens(\"\") = %d, want 0", got)
	}
	// 10 words * 1.3 = 13.
	s := "one two three four five six seven eight nine ten"
	if got := CountTokens(s); got != 13 {
		t.Errorf("CountTokens(10 words) = %d, want 13", got)
	}
}

func TestHashTokenInRange(t *testing.T) {
	f := func(tok string) bool {
		h := HashToken(tok)
		return h >= 0 && h < VectorDim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStopwordsCanonical asserts every stopword is in canonical token form:
// Tokenize must emit the word itself, unchanged. A stopword that Tokenize
// can never produce (e.g. one carrying punctuation, like the old "did."
// entry) is dead weight and a sign of a transcription error.
func TestStopwordsCanonical(t *testing.T) {
	for w := range stopwords {
		toks := Tokenize(w)
		if len(toks) != 1 || toks[0] != w {
			t.Errorf("stopword %q is not in canonical token form: Tokenize(%q) = %v", w, w, toks)
		}
	}
}

// TestEmbedTokensMatchesEmbed pins the contract the inverted index relies
// on: embedding a pre-tokenised term stream is bit-identical to embedding
// the source string.
func TestEmbedTokensMatchesEmbed(t *testing.T) {
	for _, s := range []string{
		"",
		"the cat was born in the city",
		"Alexander_III_of_Russia isMarriedTo someone",
		"repeated repeated repeated words words",
	} {
		a := Embed(s)
		b := EmbedTokens(ContentTokens(s))
		if a != b {
			t.Errorf("EmbedTokens(ContentTokens(%q)) differs from Embed", s)
		}
	}
}
