// Package text provides the lexical substrate used across FactCheck:
// tokenisation, stopword filtering, hashed term vectors, and similarity
// measures. It stands in for the neural encoders the paper uses
// (jina-reranker, ms-marco-MiniLM, bge-small) with a deterministic,
// dependency-free lexical model exposing the same score contract
// (similarity in [0,1]).
package text

import (
	"math"
	"sort"
	"unicode"
	"unicode/utf8"
)

// stopwords is a compact English stopword list. Verification sentences are
// short, so an aggressive list would destroy signal; this list removes only
// high-frequency function words.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "of": true,
	"in": true, "on": true, "at": true, "to": true, "for": true, "by": true,
	"is": true, "was": true, "are": true, "were": true, "be": true, "been": true,
	"it": true, "its": true, "this": true, "that": true, "with": true,
	"as": true, "from": true, "has": true, "have": true, "had": true,
	"do": true, "does": true, "did": true, "not": true, "no": true,
	"he": true, "she": true, "they": true, "his": true, "her": true,
	"their": true, "who": true, "which": true, "what": true, "when": true,
	"where": true, "how": true, "why": true,
}

// IsStopword reports whether tok (already lower-cased) is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// Tokenize splits s into lower-cased word tokens. It splits camelCase and
// snake_case identifiers (common in KG predicates such as isMarriedTo or
// Alexander_III_of_Russia) so that KG-encoded strings and natural language
// share a token space.
//
// Runes are lower-cased as they are appended to a reused byte buffer, so
// each token costs exactly one allocation (its string) instead of the
// builder-grow + String + ToLower trio — tokenisation sits under every
// embed of every corpus document, and the paper-scale corpus tokenises
// millions of them.
func Tokenize(s string) []string {
	var toks []string
	buf := make([]byte, 0, 32)
	flush := func() {
		if len(buf) > 0 {
			toks = append(toks, string(buf))
			buf = buf[:0]
		}
	}
	prevLower := false
	prevDigit := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			// Split camelCase ("isMarriedTo" -> is married to) and
			// digit-letter boundaries ("award3" -> award 3).
			if (unicode.IsUpper(r) && prevLower) || prevDigit {
				flush()
			}
			prevLower = unicode.IsLower(r)
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
			prevDigit = false
		case unicode.IsDigit(r):
			if !prevDigit && len(buf) > 0 {
				flush()
			}
			buf = utf8.AppendRune(buf, r)
			prevLower = false
			prevDigit = true
		default:
			flush()
			prevLower = false
			prevDigit = false
		}
	}
	flush()
	return toks
}

// ContentTokens returns Tokenize(s) with stopwords removed.
func ContentTokens(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// VectorDim is the dimensionality of hashed term vectors. It is a power of
// two so hashing reduces to a mask.
const VectorDim = 1024

// Vector is a dense hashed bag-of-words representation of a text.
type Vector [VectorDim]float32

// HashToken maps a token to its vector dimension via FNV-1a, inlined so
// the per-token hash is allocation- and interface-free (it runs once per
// token of every embedded string).
func HashToken(tok string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(tok); i++ {
		h ^= uint32(tok[i])
		h *= prime32
	}
	return int(h & (VectorDim - 1))
}

// Embed builds a hashed term-frequency vector for s, stopwords removed,
// sub-linearly damped (1+log tf) and L2-normalised. This is the stand-in for
// the paper's sentence encoders.
func Embed(s string) Vector {
	return EmbedTokens(ContentTokens(s))
}

// EmbedTokens is Embed over an already-tokenised term stream (stopwords
// must already be removed). Callers that hold a token stream — the corpus
// generator feeding the inverted index — use this to embed without a
// re-tokenize pass; EmbedTokens(ContentTokens(s)) is bit-identical to
// Embed(s).
func EmbedTokens(toks []string) Vector {
	var v Vector
	for _, t := range toks {
		v[HashToken(t)]++
	}
	var norm float64
	for i := range v {
		if v[i] > 0 {
			v[i] = float32(1 + math.Log(float64(v[i])))
			norm += float64(v[i]) * float64(v[i])
		}
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// Cosine returns the cosine similarity of two vectors in [-1, 1]. For Embed
// outputs (non-negative entries) the range is [0, 1].
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return dot
}

// Similarity is the convenience form of Cosine over raw strings.
func Similarity(a, b string) float64 {
	return Cosine(Embed(a), Embed(b))
}

// Sigmoid maps x to (0,1); used to turn raw scores into the sigmoid-scaled
// relevance scores the paper's cross-encoder produces.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Overlap returns the Jaccard overlap of the content-token sets of a and b.
// It works on sorted, deduplicated token slices with a two-pointer
// intersection instead of two throwaway hash sets; the quotient of the two
// integer set sizes is unchanged.
func Overlap(a, b string) float64 {
	sa := uniqueSorted(ContentTokens(a))
	sb := uniqueSorted(ContentTokens(b))
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			i++
		case sa[i] > sb[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

// uniqueSorted sorts toks in place and removes duplicates.
func uniqueSorted(toks []string) []string {
	sort.Strings(toks)
	out := toks[:0]
	for i, t := range toks {
		if i == 0 || t != toks[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// CountTokens approximates the LLM token count of s. Real tokenisers emit
// roughly 1.3 tokens per whitespace word for English; we reproduce that
// constant so the benchmark's token accounting has realistic magnitudes.
// Words are counted in place (the same maximal non-space runs
// strings.Fields returns) — this runs on every prompt and evidence chunk of
// every simulated call, so it must not allocate the field slice.
func CountTokens(s string) int {
	if s == "" {
		return 0
	}
	words := 0
	inField := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			inField = false
		} else if !inField {
			words++
			inField = true
		}
	}
	return int(math.Ceil(float64(words) * 1.3))
}
