// Package text provides the lexical substrate used across FactCheck:
// tokenisation, stopword filtering, hashed term vectors, and similarity
// measures. It stands in for the neural encoders the paper uses
// (jina-reranker, ms-marco-MiniLM, bge-small) with a deterministic,
// dependency-free lexical model exposing the same score contract
// (similarity in [0,1]).
package text

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// stopwords is a compact English stopword list. Verification sentences are
// short, so an aggressive list would destroy signal; this list removes only
// high-frequency function words.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "of": true,
	"in": true, "on": true, "at": true, "to": true, "for": true, "by": true,
	"is": true, "was": true, "are": true, "were": true, "be": true, "been": true,
	"it": true, "its": true, "this": true, "that": true, "with": true,
	"as": true, "from": true, "has": true, "have": true, "had": true,
	"do": true, "does": true, "did": true, "not": true, "no": true,
	"he": true, "she": true, "they": true, "his": true, "her": true,
	"their": true, "who": true, "which": true, "what": true, "when": true,
	"where": true, "how": true, "why": true,
}

// IsStopword reports whether tok (already lower-cased) is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// Tokenize splits s into lower-cased word tokens. It splits camelCase and
// snake_case identifiers (common in KG predicates such as isMarriedTo or
// Alexander_III_of_Russia) so that KG-encoded strings and natural language
// share a token space.
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	prevLower := false
	prevDigit := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			// Split camelCase ("isMarriedTo" -> is married to) and
			// digit-letter boundaries ("award3" -> award 3).
			if (unicode.IsUpper(r) && prevLower) || prevDigit {
				flush()
			}
			cur.WriteRune(r)
			prevLower = unicode.IsLower(r)
			prevDigit = false
		case unicode.IsDigit(r):
			if !prevDigit && cur.Len() > 0 {
				flush()
			}
			cur.WriteRune(r)
			prevLower = false
			prevDigit = true
		default:
			flush()
			prevLower = false
			prevDigit = false
		}
	}
	flush()
	return toks
}

// ContentTokens returns Tokenize(s) with stopwords removed.
func ContentTokens(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// VectorDim is the dimensionality of hashed term vectors. It is a power of
// two so hashing reduces to a mask.
const VectorDim = 1024

// Vector is a dense hashed bag-of-words representation of a text.
type Vector [VectorDim]float32

// HashToken maps a token to its vector dimension.
func HashToken(tok string) int {
	h := fnv.New32a()
	h.Write([]byte(tok))
	return int(h.Sum32() & (VectorDim - 1))
}

// Embed builds a hashed term-frequency vector for s, stopwords removed,
// sub-linearly damped (1+log tf) and L2-normalised. This is the stand-in for
// the paper's sentence encoders.
func Embed(s string) Vector {
	return EmbedTokens(ContentTokens(s))
}

// EmbedTokens is Embed over an already-tokenised term stream (stopwords
// must already be removed). Callers that hold a token stream — the corpus
// generator feeding the inverted index — use this to embed without a
// re-tokenize pass; EmbedTokens(ContentTokens(s)) is bit-identical to
// Embed(s).
func EmbedTokens(toks []string) Vector {
	var v Vector
	for _, t := range toks {
		v[HashToken(t)]++
	}
	var norm float64
	for i := range v {
		if v[i] > 0 {
			v[i] = float32(1 + math.Log(float64(v[i])))
			norm += float64(v[i]) * float64(v[i])
		}
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// Cosine returns the cosine similarity of two vectors in [-1, 1]. For Embed
// outputs (non-negative entries) the range is [0, 1].
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return dot
}

// Similarity is the convenience form of Cosine over raw strings.
func Similarity(a, b string) float64 {
	return Cosine(Embed(a), Embed(b))
}

// Sigmoid maps x to (0,1); used to turn raw scores into the sigmoid-scaled
// relevance scores the paper's cross-encoder produces.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Overlap returns the Jaccard overlap of the content-token sets of a and b.
func Overlap(a, b string) float64 {
	sa := map[string]bool{}
	for _, t := range ContentTokens(a) {
		sa[t] = true
	}
	sb := map[string]bool{}
	for _, t := range ContentTokens(b) {
		sb[t] = true
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

// CountTokens approximates the LLM token count of s. Real tokenisers emit
// roughly 1.3 tokens per whitespace word for English; we reproduce that
// constant so the benchmark's token accounting has realistic magnitudes.
func CountTokens(s string) int {
	if s == "" {
		return 0
	}
	words := len(strings.Fields(s))
	return int(math.Ceil(float64(words) * 1.3))
}
