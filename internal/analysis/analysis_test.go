package analysis

import (
	"testing"

	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

func geoRecord(model, id string) ErrorRecord {
	return ErrorRecord{Model: model, FactID: id,
		Explanation: "The stated place conflicts with the known location or nationality of Person " + id + "."}
}

func genreRecord(model, id string) ErrorRecord {
	return ErrorRecord{Model: model, FactID: id,
		Explanation: "The genre classification of Work " + id + " does not include the asserted category."}
}

func relRecord(model, id string) ErrorRecord {
	return ErrorRecord{Model: model, FactID: id,
		Explanation: "The marital or personal relationship between A and B is not supported for " + id + "."}
}

func TestClusterErrorsCategorises(t *testing.T) {
	var recs []ErrorRecord
	for i := 0; i < 8; i++ {
		recs = append(recs, geoRecord("m", "geo"+itoa(i)))
	}
	for i := 0; i < 6; i++ {
		recs = append(recs, genreRecord("m", "gen"+itoa(i)))
	}
	for i := 0; i < 5; i++ {
		recs = append(recs, relRecord("m", "rel"+itoa(i)))
	}
	res := ClusterErrors(recs)
	if res.Total != len(recs) {
		t.Fatalf("Total = %d, want %d", res.Total, len(recs))
	}
	if res.Counts[E4Geographic] < 6 {
		t.Errorf("E4 = %d, want >= 6 (geo errors dominate)", res.Counts[E4Geographic])
	}
	if res.Counts[E5Genre] < 4 {
		t.Errorf("E5 = %d, want >= 4", res.Counts[E5Genre])
	}
	if res.Counts[E2Relationship] < 3 {
		t.Errorf("E2 = %d, want >= 3", res.Counts[E2Relationship])
	}
	for id, cat := range res.Assignments {
		switch {
		case id[:3] == "geo" && cat != E4Geographic:
			t.Errorf("fact %s assigned %s, want E4", id, cat)
		case id[:3] == "gen" && cat != E5Genre:
			t.Errorf("fact %s assigned %s, want E5", id, cat)
		}
	}
}

func TestClusterErrorsEmpty(t *testing.T) {
	res := ClusterErrors(nil)
	if res.Total != 0 || len(res.Counts) != 0 {
		t.Errorf("empty clustering = %+v", res)
	}
}

func TestUniqueRatio(t *testing.T) {
	// fact shared by both models + one unique fact each, all geo.
	perModel := map[string]ClusterResult{
		"a": {Assignments: map[string]ErrorCategory{"f1": E4Geographic, "f2": E4Geographic}},
		"b": {Assignments: map[string]ErrorCategory{"f1": E4Geographic, "f3": E4Geographic}},
	}
	ratios := UniqueRatio(perModel)
	if got := ratios[E4Geographic]; got != 2.0/3 {
		t.Errorf("unique ratio = %f, want 2/3", got)
	}
	if got := OverallUniqueRatio(perModel); got != 2.0/3 {
		t.Errorf("overall unique ratio = %f, want 2/3", got)
	}
}

func TestOverallUniqueRatioEmpty(t *testing.T) {
	if got := OverallUniqueRatio(nil); got != 0 {
		t.Errorf("empty unique ratio = %f", got)
	}
}

func outcome(model, fact string, correct bool) strategy.Outcome {
	v := strategy.False
	if correct {
		v = strategy.True
	}
	return strategy.Outcome{
		Model: model, FactID: fact, Verdict: v, Gold: true, Correct: correct,
		Claim: llm.Claim{Popularity: 0.5},
	}
}

func TestUpSet(t *testing.T) {
	perFact := [][]strategy.Outcome{
		{outcome("a", "f1", true), outcome("b", "f1", true)},   // both
		{outcome("a", "f2", true), outcome("b", "f2", false)},  // a only
		{outcome("a", "f3", false), outcome("b", "f3", false)}, // none
		{outcome("a", "f4", true), outcome("b", "f4", true)},   // both
	}
	rows := UpSet(perFact)
	if len(rows) != 3 {
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	if rows[0].Count != 2 || len(rows[0].Members) != 2 {
		t.Errorf("top row = %+v, want both-models with count 2", rows[0])
	}
	if rows[0].Label(2) != "all" {
		t.Errorf("label = %q, want all", rows[0].Label(2))
	}
	foundNone := false
	for _, r := range rows {
		if len(r.Members) == 0 {
			foundNone = true
			if r.Label(2) != "none" || r.Count != 1 {
				t.Errorf("none row = %+v", r)
			}
		}
	}
	if !foundNone {
		t.Error("missing none row")
	}
}

func TestStratifyByTopic(t *testing.T) {
	outs := []strategy.Outcome{
		outcome("a", "f1", true), outcome("a", "f2", false),
		outcome("a", "f3", true), outcome("a", "f4", true),
	}
	topics := map[string]string{"f1": "Education", "f2": "Transportation", "f3": "Education", "f4": "Transportation"}
	strata := StratifyByTopic(outs, func(id string) string { return topics[id] })
	if len(strata) != 2 {
		t.Fatalf("got %d strata", len(strata))
	}
	byName := map[string]Stratum{}
	for _, s := range strata {
		byName[s.Name] = s
	}
	if byName["Education"].ErrorRate != 0 {
		t.Errorf("Education error rate = %f, want 0", byName["Education"].ErrorRate)
	}
	if byName["Transportation"].ErrorRate != 0.5 {
		t.Errorf("Transportation error rate = %f, want 0.5", byName["Transportation"].ErrorRate)
	}
}

func TestStratifyByPopularity(t *testing.T) {
	var outs []strategy.Outcome
	for i := 0; i < 40; i++ {
		o := outcome("a", "f"+itoa(i), i%4 != 0)
		o.Claim.Popularity = float64(i) / 40
		outs = append(outs, o)
	}
	strata := StratifyByPopularity(outs, 4)
	if len(strata) != 4 {
		t.Fatalf("got %d bands", len(strata))
	}
	total := 0
	for _, s := range strata {
		total += s.Total
	}
	if total != len(outs) {
		t.Errorf("band totals sum to %d, want %d", total, len(outs))
	}
	if strata[0].Name != "tail" || strata[3].Name != "head" {
		t.Errorf("band names = %s..%s", strata[0].Name, strata[3].Name)
	}
}

func TestStratifyByPopularityDefaultBands(t *testing.T) {
	outs := []strategy.Outcome{outcome("a", "f1", true)}
	if got := StratifyByPopularity(outs, 0); len(got) != 4 {
		t.Errorf("default bands = %d, want 4", len(got))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
