// Package analysis implements the paper's qualitative studies: the
// semi-automated error-clustering pipeline that buckets model mistakes into
// categories E1–E6 (Table 9), the UpSet prediction-overlap analysis
// (Figure 4), and the DBpedia popularity/topic stratification (§7).
package analysis

import (
	"sort"
	"strings"

	"factcheck/internal/cluster"
	"factcheck/internal/strategy"
)

// ErrorCategory labels one of the paper's six error buckets.
type ErrorCategory string

// The error taxonomy of paper §7.
const (
	E1Unlabeled    ErrorCategory = "E1" // context missing asserted details
	E2Relationship ErrorCategory = "E2" // relationship errors
	E3Role         ErrorCategory = "E3" // role attribution errors
	E4Geographic   ErrorCategory = "E4" // geographic/nationality errors
	E5Genre        ErrorCategory = "E5" // genre/classification errors
	E6Identifier   ErrorCategory = "E6" // identifier/biographical errors
)

// Categories lists the buckets in table order.
var Categories = []ErrorCategory{E1Unlabeled, E2Relationship, E3Role, E4Geographic, E5Genre, E6Identifier}

// categoryAnchors holds a prototype explanation per category. The pipeline
// embeds error explanations, clusters them density-based, then labels each
// cluster by its nearest anchor — mirroring the paper's "assign descriptive
// labels to each cluster" step without manual inspection.
var categoryAnchors = map[ErrorCategory]string{
	E1Unlabeled:    "the supplied context does not mention the asserted details no relevant information could be recalled",
	E2Relationship: "the marital or personal relationship link between the individuals is not supported contradicts",
	E3Role:         "the role team employer position linking appears misattributed associated with a different team employer",
	E4Geographic:   "the stated place conflicts with the known location nationality country city geography geographic records",
	E5Genre:        "the genre classification categorised under a different genre does not include",
	E6Identifier:   "the biographical identifier award attributed is inaccurate records of awards and identifiers do not mention",
}

// ErrorRecord is one incorrect prediction with its explanation.
type ErrorRecord struct {
	Model       string
	FactID      string
	Explanation string
}

// ClusterResult summarises one model+dataset error clustering run.
type ClusterResult struct {
	// Counts maps category -> number of errors assigned.
	Counts map[ErrorCategory]int
	// Total is the number of clustered errors.
	Total int
	// Assignments maps fact ID -> category, for the uniqueness analysis.
	Assignments map[string]ErrorCategory
}

// ClusterErrors runs the error-analysis pipeline over the records of one
// model: embed explanations, density-cluster, label clusters by nearest
// category anchor; noise points fall back to direct anchor matching.
func ClusterErrors(records []ErrorRecord) ClusterResult {
	res := ClusterResult{
		Counts:      map[ErrorCategory]int{},
		Assignments: map[string]ErrorCategory{},
	}
	if len(records) == 0 {
		return res
	}
	emb := cluster.NewEmbedder("error-analysis")
	points := make([][]float64, len(records))
	for i, r := range records {
		points[i] = emb.Embed(r.Explanation)
	}
	labels := cluster.DBSCAN(points, 0.55, 3)

	// Label each cluster by the nearest anchor to its centroid.
	anchorVecs := map[ErrorCategory][]float64{}
	for c, a := range categoryAnchors {
		anchorVecs[c] = emb.Embed(a)
	}
	clusterLabel := map[int]ErrorCategory{}
	sizes, _ := cluster.Sizes(labels)
	for cid := range sizes {
		centroid := make([]float64, cluster.ReducedDim)
		n := 0
		for i, l := range labels {
			if l != cid {
				continue
			}
			for d := range centroid {
				centroid[d] += points[i][d]
			}
			n++
		}
		for d := range centroid {
			centroid[d] /= float64(n)
		}
		clusterLabel[cid] = nearestAnchor(centroid, anchorVecs)
	}
	for i, r := range records {
		var cat ErrorCategory
		if labels[i] == cluster.Noise {
			cat = nearestAnchor(points[i], anchorVecs)
		} else {
			cat = clusterLabel[labels[i]]
		}
		res.Counts[cat]++
		res.Total++
		res.Assignments[r.FactID] = cat
	}
	return res
}

func nearestAnchor(p []float64, anchors map[ErrorCategory][]float64) ErrorCategory {
	best := E1Unlabeled
	bestD := -1.0
	// Iterate in fixed category order for determinism.
	for _, c := range Categories {
		d := cluster.Euclidean(p, anchors[c])
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// UniqueRatio computes the paper's per-category "Unique. Ratio": of the
// facts any model got wrong in a category, the fraction mis-predicted by
// exactly one model. perModel maps model -> its cluster result.
func UniqueRatio(perModel map[string]ClusterResult) map[ErrorCategory]float64 {
	count := map[ErrorCategory]map[string]int{} // category -> factID -> #models
	for _, res := range perModel {
		for factID, cat := range res.Assignments {
			if count[cat] == nil {
				count[cat] = map[string]int{}
			}
			count[cat][factID]++
		}
	}
	out := map[ErrorCategory]float64{}
	for cat, facts := range count {
		unique := 0
		for _, n := range facts {
			if n == 1 {
				unique++
			}
		}
		if len(facts) > 0 {
			out[cat] = float64(unique) / float64(len(facts))
		}
	}
	return out
}

// OverallUniqueRatio aggregates UniqueRatio across all categories.
func OverallUniqueRatio(perModel map[string]ClusterResult) float64 {
	count := map[string]int{}
	for _, res := range perModel {
		for factID := range res.Assignments {
			count[factID]++
		}
	}
	if len(count) == 0 {
		return 0
	}
	unique := 0
	for _, n := range count {
		if n == 1 {
			unique++
		}
	}
	return float64(unique) / float64(len(count))
}

// UpSetRow is one intersection bar of the paper's Figure 4: the exact set
// of models that (alone) predicted a fact correctly, and how many facts
// fall in that combination.
type UpSetRow struct {
	// Members is the sorted model subset.
	Members []string
	Count   int
}

// UpSet computes exact-intersection counts of correct predictions.
// outcomes[factIdx] holds one outcome per model for the same fact.
func UpSet(perFact [][]strategy.Outcome) []UpSetRow {
	counts := map[string]int{}
	for _, outs := range perFact {
		var members []string
		for _, o := range outs {
			if o.Correct {
				members = append(members, o.Model)
			}
		}
		sort.Strings(members)
		counts[strings.Join(members, "+")]++
	}
	rows := make([]UpSetRow, 0, len(counts))
	for key, n := range counts {
		var members []string
		if key != "" {
			members = strings.Split(key, "+")
		}
		rows = append(rows, UpSetRow{Members: members, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return strings.Join(rows[i].Members, "+") < strings.Join(rows[j].Members, "+")
	})
	return rows
}

// Label renders an UpSet row's member set ("all", "none", or joined names).
func (r UpSetRow) Label(totalModels int) string {
	switch len(r.Members) {
	case 0:
		return "none"
	case totalModels:
		return "all"
	default:
		return strings.Join(r.Members, "+")
	}
}

// Stratum is one popularity/topic partition of the stratified error study.
type Stratum struct {
	Name      string
	Total     int
	Errors    int
	ErrorRate float64
}

// StratifyByTopic partitions outcomes by fact topic and reports per-topic
// error rates (paper: Education/News lower, Architecture/Transportation
// higher).
func StratifyByTopic(outs []strategy.Outcome, topicOf func(factID string) string) []Stratum {
	agg := map[string]*Stratum{}
	for _, o := range outs {
		t := topicOf(o.FactID)
		s := agg[t]
		if s == nil {
			s = &Stratum{Name: t}
			agg[t] = s
		}
		s.Total++
		if !o.Correct {
			s.Errors++
		}
	}
	out := make([]Stratum, 0, len(agg))
	for _, s := range agg {
		if s.Total > 0 {
			s.ErrorRate = float64(s.Errors) / float64(s.Total)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StratifyByPopularity partitions outcomes into popularity quantile bands.
func StratifyByPopularity(outs []strategy.Outcome, bands int) []Stratum {
	if bands <= 0 {
		bands = 4
	}
	pops := make([]float64, len(outs))
	for i, o := range outs {
		pops[i] = o.Claim.Popularity
	}
	sorted := append([]float64(nil), pops...)
	sort.Float64s(sorted)
	cut := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	strata := make([]Stratum, bands)
	for b := 0; b < bands; b++ {
		strata[b].Name = bandName(b, bands)
	}
	for i, o := range outs {
		b := 0
		for q := 1; q < bands; q++ {
			if pops[i] > cut(float64(q)/float64(bands)) {
				b = q
			}
		}
		strata[b].Total++
		if !o.Correct {
			strata[b].Errors++
		}
	}
	for b := range strata {
		if strata[b].Total > 0 {
			strata[b].ErrorRate = float64(strata[b].Errors) / float64(strata[b].Total)
		}
	}
	return strata
}

func bandName(b, bands int) string {
	switch {
	case b == 0:
		return "tail"
	case b == bands-1:
		return "head"
	default:
		return "mid-" + string(rune('0'+b))
	}
}
