package consensus

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/obs"
	"factcheck/internal/resilience"
	"factcheck/internal/strategy"
)

// tierHists caches per-tier wave histograms so Decide records with a
// single atomic add per wave. Plans never exceed a handful of tiers (tier
// 0 is a quorum, each escalation adds one voter); deeper waves collapse
// into the last slot.
var tierHists = func() (h [8]*obs.Histogram) {
	for i := range h {
		h[i] = obs.Layer("consensus_tier" + strconv.Itoa(i))
	}
	return
}()

func tierHist(wi int) *obs.Histogram {
	if wi >= len(tierHists) {
		wi = len(tierHists) - 1
	}
	return tierHists[wi]
}

// Mode names an execution strategy of the consensus engine. All modes
// produce identical Final/Tie verdicts for a given voter set — an
// execution strategy changes when votes are fetched, never what they
// decide — which is what keeps early stopping out of the result-store
// fingerprint.
type Mode string

const (
	// ModeSerial fetches every vote one at a time, in plan order: the
	// retired pre-engine behaviour, kept as the wall-clock baseline.
	ModeSerial Mode = "serial"
	// ModeEager fetches every vote concurrently and waits for all of
	// them: the run-everything golden baseline (the package-level Decide
	// semantics, fanned out).
	ModeEager Mode = "eager"
	// ModeAdaptive dispatches the plan's cost-ordered tiers, checking the
	// Settled bound between tiers: once the majority is mathematically
	// decided the remaining voters are skipped, and expensive voters run
	// only when the cheap quorum disagrees.
	ModeAdaptive Mode = "adaptive"
)

// ParseMode validates a mode string (e.g. a ?mode= query parameter).
func ParseMode(s string) (Mode, error) {
	switch m := Mode(s); m {
	case ModeSerial, ModeEager, ModeAdaptive:
		return m, nil
	}
	return "", fmt.Errorf("consensus: unknown mode %q (want serial, eager or adaptive)", s)
}

// Plan is a deterministic dispatch schedule over a voter set. Build it
// with NewPlan; the zero value is an empty plan.
type Plan struct {
	// Order lists every voter in dispatch order: cost ascending with a
	// lexicographic tie-break, so the schedule depends only on the voter
	// set, never on input order.
	Order []string
	// Tiers cuts Order into dispatch waves. Tiers[0] is the cheapest
	// quorum able to settle a majority on its own (⌊n/2⌋+1 voters — any
	// smaller first wave could at best reach an even split, which the
	// Settled bound can never decide early); each later tier escalates
	// exactly one more voter, most expensive last.
	Tiers [][]string
}

// NewPlan builds the tier schedule for a voter set. cost prices one
// verification on a voter (see llm.Cost); a nil cost ranks voters
// lexicographically.
func NewPlan(voters []string, cost func(string) float64) Plan {
	if cost == nil {
		cost = func(string) float64 { return 0 }
	}
	order := append([]string(nil), voters...)
	sort.SliceStable(order, func(i, j int) bool {
		ci, cj := cost(order[i]), cost(order[j])
		if ci != cj {
			return ci < cj
		}
		return order[i] < order[j]
	})
	var tiers [][]string
	if len(order) > 0 {
		quorum := len(order)/2 + 1
		tiers = append(tiers, order[:quorum:quorum])
		for i := quorum; i < len(order); i++ {
			tiers = append(tiers, order[i:i+1:i+1])
		}
	}
	return Plan{Order: order, Tiers: tiers}
}

// Fetch resolves one voter's outcome for the fact under decision. The
// engine calls it concurrently within a wave (except under ModeSerial);
// implementations route it through whatever verdict stack they own (the
// serving layer's LRU/store/executor, a precomputed result set, ...).
type Fetch func(ctx context.Context, model string) (strategy.Outcome, error)

// RunStats counts the work one Decide actually performed, for the serving
// layer's /statsz counters.
type RunStats struct {
	// Dispatched and Skipped partition the plan's voters.
	Dispatched int
	Skipped    int
	// Escalations counts tiers dispatched beyond the first.
	Escalations int
	// ArbiterCalls counts tie-breaks.
	ArbiterCalls int
}

// Engine decides facts under one plan and mode.
type Engine struct {
	Plan Plan
	Mode Mode
	// Arbiter breaks ties when set.
	Arbiter Arbiter
	// AllowTie reports an unresolved tie in the Decision instead of
	// failing when no Arbiter is set (the serving layer's contract; the
	// offline reports keep Decide's tie-is-an-error behaviour).
	AllowTie bool
	// Degrade settles with the surviving ensemble when a voter is
	// unavailable (hard-down model, open circuit breaker — see
	// resilience.IsUnavailable) instead of erroring the whole decision:
	// the unavailable voters are reported in Decision.Unavailable, cast
	// no vote, and shrink the majority bound. Every voter unavailable is
	// still an error — there is no ensemble left to decide. Transient
	// (retry-exhausted) and semantic failures error regardless; only
	// dependency unavailability is survivable.
	Degrade bool
}

// Decide runs the engine for one fact. Every mode yields identical
// Final/Tie verdicts; they differ in which votes are fetched when, and in
// the honesty of LatencySeconds (decided-at time: per-tier critical paths
// summed, a skipped vote is never waited on). Early stopping is checked
// only at tier boundaries, so the skip set is a deterministic function of
// (plan, fact) — independent of scheduling, parallelism and timing.
func (e *Engine) Decide(ctx context.Context, f *dataset.Fact, fetch Fetch) (Decision, RunStats, error) {
	var st RunStats
	n := len(e.Plan.Order)
	if n == 0 {
		return Decision{}, st, fmt.Errorf("consensus: empty plan deciding fact %s", f.ID)
	}
	var waves [][]string
	switch e.Mode {
	case ModeSerial, ModeEager:
		waves = [][]string{e.Plan.Order}
	case ModeAdaptive:
		waves = e.Plan.Tiers
	default:
		return Decision{}, st, fmt.Errorf("consensus: unknown mode %q", e.Mode)
	}

	d := Decision{FactID: f.ID, Gold: f.Gold, Mode: e.Mode}
	trues, falses := 0, 0
	var unavailErr error
	for wi, wave := range waves {
		if wi > 0 {
			if _, settled := Settled(trues, falses, n); settled {
				break
			}
			st.Escalations++
		}
		wouts := make([]strategy.Outcome, len(wave))
		werrs := make([]error, len(wave))
		wctx, endWave := obs.StartSpan(ctx, "consensus_tier"+strconv.Itoa(wi))
		waveStart := time.Now()
		if e.Mode == ModeSerial || len(wave) == 1 {
			for i, m := range wave {
				wouts[i], werrs[i] = fetch(wctx, m)
			}
		} else {
			var wg sync.WaitGroup
			for i, m := range wave {
				wg.Add(1)
				go func(i int, m string) {
					defer wg.Done()
					wouts[i], werrs[i] = fetch(wctx, m)
				}(i, m)
			}
			wg.Wait()
		}
		tierHist(wi).Observe(time.Since(waveStart))
		endWave()
		lat := 0.0
		for i, m := range wave {
			if werrs[i] != nil {
				if e.Degrade && resilience.IsUnavailable(werrs[i]) {
					// The voter's dependency is down, not the vote wrong:
					// drop it from the ensemble. n shrinks with it, so the
					// Settled bound at the next tier boundary is over the
					// survivors.
					d.Unavailable = append(d.Unavailable, m)
					if unavailErr == nil {
						unavailErr = werrs[i]
					}
					n--
					continue
				}
				return Decision{}, st, fmt.Errorf("consensus: %s vote on %s: %w", m, f.ID, werrs[i])
			}
			o := wouts[i]
			if o.FactID != f.ID {
				return Decision{}, st, fmt.Errorf("consensus: outcome fact %s != %s", o.FactID, f.ID)
			}
			d.Votes = append(d.Votes, Vote{Model: m, Verdict: o.Verdict})
			if o.Verdict.Bool() {
				trues++
			} else {
				falses++
			}
			if s := o.Latency.Seconds(); e.Mode == ModeSerial {
				lat += s // a serial wave pays the sum of its members
			} else if s > lat {
				lat = s // a fanned-out wave pays its critical path
			}
		}
		st.Dispatched += len(wave)
		d.TierLatencySeconds = append(d.TierLatencySeconds, lat)
		d.LatencySeconds += lat
	}
	if st.Skipped = len(e.Plan.Order) - st.Dispatched; st.Skipped > 0 {
		d.Skipped = append([]string(nil), e.Plan.Order[st.Dispatched:]...)
	}
	// Wrapping the first voter's error keeps the unavailability
	// classification (resilience.IsUnavailable) intact, so the serving
	// layer maps an all-down ensemble to 503, not 500.
	if len(d.Votes) == 0 {
		return Decision{}, st, fmt.Errorf("consensus: every voter unavailable for %s (%v): %w", f.ID, d.Unavailable, unavailErr)
	}

	// A partial dispatch only ever stops settled, so the majority of the
	// cast votes equals the full-ensemble majority and a tie implies every
	// voter was heard.
	d.Final, d.Tie = Majority(d.Votes)
	if d.Tie {
		switch {
		case e.Arbiter != nil:
			st.ArbiterCalls++
			v, lat, err := e.Arbiter.Break(ctx, f)
			if err != nil {
				return Decision{}, st, err
			}
			d.ArbiterVerdict = v.Bool()
			d.Final = d.ArbiterVerdict
			d.LatencySeconds += lat
		case !e.AllowTie:
			return Decision{}, st, fmt.Errorf("consensus: tie on %s with no arbiter", f.ID)
		}
	}
	return d, st, nil
}
