package consensus

import (
	"context"
	"testing"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

func votes(vs ...strategy.Verdict) []Vote {
	out := make([]Vote, len(vs))
	for i, v := range vs {
		out[i] = Vote{Model: "m" + string(rune('0'+i)), Verdict: v}
	}
	return out
}

func TestMajorityRule(t *testing.T) {
	T, F, I := strategy.True, strategy.False, strategy.Invalid
	tests := []struct {
		vs      []Vote
		verdict bool
		tie     bool
	}{
		{votes(T, T, T, T), true, false},
		{votes(T, T, T, F), true, false},
		{votes(T, T, F, F), false, true},
		{votes(T, F, F, F), false, false},
		{votes(F, F, F, F), false, false},
		// Invalid votes count as 0 ("false") per the paper's formula.
		{votes(T, T, I, F), false, true},
		{votes(T, T, T, I), true, false},
	}
	for i, tc := range tests {
		v, tie := Majority(tc.vs)
		if v != tc.verdict || tie != tc.tie {
			t.Errorf("case %d: Majority = (%v, %v), want (%v, %v)", i, v, tie, tc.verdict, tc.tie)
		}
	}
}

// TestMajorityEnsembleSizes pins the generalised threshold rule on every
// ensemble size the adaptive engine can produce: the partial tiers (1–3
// voters), the paper's 4, and hypothetical larger panels up to 7.
func TestMajorityEnsembleSizes(t *testing.T) {
	T, F := strategy.True, strategy.False
	tests := []struct {
		name    string
		vs      []Vote
		verdict bool
		tie     bool
	}{
		{"empty", votes(), false, false},
		{"1: lone true", votes(T), true, false},
		{"1: lone false", votes(F), false, false},
		{"2: unanimous true", votes(T, T), true, false},
		{"2: split", votes(T, F), false, true},
		{"2: unanimous false", votes(F, F), false, false},
		{"3: 2-1 true", votes(T, F, T), true, false},
		{"3: 1-2 false", votes(F, T, F), false, false},
		{"4: 3-1 true", votes(T, T, F, T), true, false},
		{"4: 2-2 tie", votes(F, T, T, F), false, true},
		{"5: 3-2 true", votes(T, T, F, T, F), true, false},
		{"5: 2-3 false", votes(T, F, F, T, F), false, false},
		{"6: 3-3 tie", votes(T, T, T, F, F, F), false, true},
		{"6: 4-2 true", votes(T, T, T, F, T, F), true, false},
		{"7: 4-3 true", votes(T, F, T, F, T, F, T), true, false},
		{"7: 3-4 false", votes(F, T, F, T, F, T, F), false, false},
	}
	for _, tc := range tests {
		v, tie := Majority(tc.vs)
		if v != tc.verdict || tie != tc.tie {
			t.Errorf("%s: Majority = (%v, %v), want (%v, %v)", tc.name, v, tie, tc.verdict, tc.tie)
		}
	}
}

func TestMajorityOddPanelNoTies(t *testing.T) {
	T, F := strategy.True, strategy.False
	if _, tie := Majority(votes(T, T, F)); tie {
		t.Error("odd panel produced a tie")
	}
	if v, _ := Majority(votes(F, F, T)); v {
		t.Error("odd panel majority wrong")
	}
}

type fixture struct {
	d    *dataset.Dataset
	outs map[string][]strategy.Outcome
}

func setup(t *testing.T) *fixture {
	t.Helper()
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.05)
	fx := &fixture{d: d, outs: map[string][]strategy.Outcome{}}
	ctx := context.Background()
	for _, name := range llm.OpenSourceModels {
		m := llm.MustNew(name)
		for _, f := range d.Facts {
			o, err := strategy.DKA{}.Verify(ctx, m, f)
			if err != nil {
				t.Fatal(err)
			}
			fx.outs[name] = append(fx.outs[name], o)
		}
	}
	return fx
}

func (fx *fixture) perFact() [][]strategy.Outcome {
	per := make([][]strategy.Outcome, len(fx.d.Facts))
	for i := range fx.d.Facts {
		for _, name := range llm.OpenSourceModels {
			per[i] = append(per[i], fx.outs[name][i])
		}
	}
	return per
}

func TestDecideNoTieNeedsNoArbiter(t *testing.T) {
	fx := setup(t)
	per := fx.perFact()
	ctx := context.Background()
	for i, outs := range per {
		_, tie := Majority(votesOf(outs))
		if tie {
			continue
		}
		dec, err := Decide(ctx, fx.d.Facts[i], outs, nil)
		if err != nil {
			t.Fatalf("Decide without arbiter on non-tie failed: %v", err)
		}
		if dec.Tie {
			t.Error("decision marked tie on clear majority")
		}
		if dec.LatencySeconds <= 0 {
			t.Error("no consensus latency")
		}
		return
	}
}

func TestDecideTieUsesArbiter(t *testing.T) {
	fx := setup(t)
	per := fx.perFact()
	ctx := context.Background()
	judge := llm.MustNew(llm.Gemma2Big)
	arb := &ModelArbiter{Label: "agg-cons-up", Judge: judge, Verifier: strategy.DKA{}}
	foundTie := false
	for i, outs := range per {
		_, tie := Majority(votesOf(outs))
		if !tie {
			continue
		}
		foundTie = true
		base, err := Decide(ctx, fx.d.Facts[i], outs, arb)
		if err != nil {
			t.Fatal(err)
		}
		if !base.Tie {
			t.Error("tie not flagged")
		}
		if base.Final != base.ArbiterVerdict {
			t.Error("tie decision does not follow the arbiter")
		}
		// Latency must include the arbiter call on top of the slowest model.
		maxLat := 0.0
		for _, o := range outs {
			if s := o.Latency.Seconds(); s > maxLat {
				maxLat = s
			}
		}
		if base.LatencySeconds <= maxLat {
			t.Error("arbiter latency not added")
		}
		break
	}
	if !foundTie {
		t.Skip("no ties in this sample")
	}
}

func TestDecideTieWithoutArbiterFails(t *testing.T) {
	fx := setup(t)
	per := fx.perFact()
	for i, outs := range per {
		if _, tie := Majority(votesOf(outs)); tie {
			if _, err := Decide(context.Background(), fx.d.Facts[i], outs, nil); err == nil {
				t.Error("tie without arbiter accepted")
			}
			return
		}
	}
	t.Skip("no ties in this sample")
}

func TestDecideRejectsMismatchedFact(t *testing.T) {
	fx := setup(t)
	per := fx.perFact()
	if _, err := Decide(context.Background(), fx.d.Facts[1], per[0], nil); err == nil {
		t.Error("mismatched outcomes accepted")
	}
}

func votesOf(outs []strategy.Outcome) []Vote {
	vs := make([]Vote, len(outs))
	for i, o := range outs {
		vs[i] = Vote{Model: o.Model, Verdict: o.Verdict}
	}
	return vs
}

func TestAlignmentReport(t *testing.T) {
	fx := setup(t)
	rep := Alignment(fx.perFact())
	if len(rep.CA) != len(llm.OpenSourceModels) {
		t.Fatalf("CA for %d models, want %d", len(rep.CA), len(llm.OpenSourceModels))
	}
	for m, ca := range rep.CA {
		if ca < 0.5 || ca > 1 {
			t.Errorf("CA[%s] = %f, implausible", m, ca)
		}
	}
	if rep.TieRate < 0 || rep.TieRate > 0.6 {
		t.Errorf("tie rate = %f, implausible", rep.TieRate)
	}
	up := rep.MostConsistent(true)
	down := rep.MostConsistent(false)
	if up == "" || down == "" {
		t.Fatal("consistency extremes empty")
	}
	if rep.CA[up] < rep.CA[down] {
		t.Errorf("most consistent %s (%.3f) below least consistent %s (%.3f)",
			up, rep.CA[up], down, rep.CA[down])
	}
}

func TestAlignmentEmpty(t *testing.T) {
	rep := Alignment(nil)
	if rep.TieRate != 0 || len(rep.CA) != 0 {
		t.Errorf("empty alignment = %+v", rep)
	}
}

func TestConsensusMitigatesWorstModel(t *testing.T) {
	// The paper: consensus "mitigates the impact of weaker ones". The
	// consensus accuracy must be at least the worst individual accuracy.
	fx := setup(t)
	per := fx.perFact()
	ctx := context.Background()
	judge := llm.MustNew(llm.GPT4oMini)
	arb := &ModelArbiter{Label: "agg-gpt-4o-mini", Judge: judge, Verifier: strategy.DKA{}}

	correct := 0
	for i, outs := range per {
		dec, err := Decide(ctx, fx.d.Facts[i], outs, arb)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Final == dec.Gold {
			correct++
		}
	}
	consAcc := float64(correct) / float64(len(per))

	worst := 1.0
	for _, name := range llm.OpenSourceModels {
		c := 0
		for _, o := range fx.outs[name] {
			if o.Correct {
				c++
			}
		}
		acc := float64(c) / float64(len(fx.outs[name]))
		if acc < worst {
			worst = acc
		}
	}
	if consAcc < worst {
		t.Errorf("consensus accuracy %.3f below worst individual %.3f", consAcc, worst)
	}
}
