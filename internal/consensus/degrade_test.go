package consensus

import (
	"context"
	"reflect"
	"testing"

	"factcheck/internal/resilience"
	"factcheck/internal/strategy"
)

// unavailableErr marks a voter's dependency hard-down (the duck-typed
// contract resilience.IsUnavailable classifies on).
type unavailableErr struct{}

func (unavailableErr) Error() string          { return "voter down" }
func (unavailableErr) FaultUnavailable() bool { return true }

// retryableErr is transient, not unavailable: degradation must not
// swallow it.
type retryableErr struct{}

func (retryableErr) Error() string        { return "flaky voter" }
func (retryableErr) FaultTransient() bool { return true }

func TestEngineDegradeDropsUnavailableVoter(t *testing.T) {
	f := synthFact()
	verdicts := map[string]strategy.Verdict{"a": strategy.True, "c": strategy.True, "d": strategy.True}
	fetch := func(_ context.Context, model string) (strategy.Outcome, error) {
		if model == "b" {
			return strategy.Outcome{}, unavailableErr{}
		}
		return strategy.Outcome{FactID: f.ID, Model: model, Verdict: verdicts[model]}, nil
	}

	eng := &Engine{Plan: fourPlan(), Mode: ModeEager, AllowTie: true, Degrade: true}
	dec, st, err := eng.Decide(context.Background(), f, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Unavailable, []string{"b"}) {
		t.Fatalf("unavailable = %v, want [b]", dec.Unavailable)
	}
	if len(dec.Votes) != 3 || !dec.Final || dec.Tie {
		t.Fatalf("decision = %+v, want a 3-0 survivor majority", dec)
	}
	for _, v := range dec.Votes {
		if v.Model == "b" {
			t.Fatal("the unavailable voter cast a vote")
		}
	}
	if st.Dispatched != 4 {
		t.Fatalf("stats = %+v, want all 4 dispatched", st)
	}

	// Without Degrade the same outage fails the whole decision.
	strict := &Engine{Plan: fourPlan(), Mode: ModeEager, AllowTie: true}
	if _, _, err := strict.Decide(context.Background(), f, fetch); err == nil {
		t.Fatal("non-degrading engine accepted an unavailable voter")
	}
}

// TestEngineDegradeShrinksSettledBound: an unavailable quorum voter
// shrinks the ensemble, so the survivors can settle early and still skip
// the escalation tier.
func TestEngineDegradeShrinksSettledBound(t *testing.T) {
	f := synthFact()
	verdicts := map[string]strategy.Verdict{"b": strategy.True, "c": strategy.True, "d": strategy.False}
	fetch := func(_ context.Context, model string) (strategy.Outcome, error) {
		if model == "a" {
			return strategy.Outcome{}, unavailableErr{}
		}
		return strategy.Outcome{FactID: f.ID, Model: model, Verdict: verdicts[model]}, nil
	}
	eng := &Engine{Plan: fourPlan(), Mode: ModeAdaptive, AllowTie: true, Degrade: true}
	dec, st, err := eng.Decide(context.Background(), f, fetch)
	if err != nil {
		t.Fatal(err)
	}
	// Quorum {a,b,c} with a down: 2-0 over a 3-voter ensemble is settled,
	// so d is never consulted.
	if !dec.Final || dec.Tie {
		t.Fatalf("decision = %+v, want settled true", dec)
	}
	if !reflect.DeepEqual(dec.Unavailable, []string{"a"}) || !reflect.DeepEqual(dec.Skipped, []string{"d"}) {
		t.Fatalf("unavailable = %v skipped = %v, want [a] / [d]", dec.Unavailable, dec.Skipped)
	}
	if st.Dispatched != 3 || st.Skipped != 1 || st.Escalations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEngineDegradeAllUnavailable: with no ensemble left the decision
// errors, and the error keeps its unavailability classification so the
// serving layer maps it to 503, not 500.
func TestEngineDegradeAllUnavailable(t *testing.T) {
	f := synthFact()
	fetch := func(context.Context, string) (strategy.Outcome, error) {
		return strategy.Outcome{}, unavailableErr{}
	}
	eng := &Engine{Plan: fourPlan(), Mode: ModeEager, AllowTie: true, Degrade: true}
	_, _, err := eng.Decide(context.Background(), f, fetch)
	if err == nil {
		t.Fatal("empty surviving ensemble decided")
	}
	if !resilience.IsUnavailable(err) {
		t.Fatalf("all-down error %v lost its unavailability classification", err)
	}
}

// TestEngineDegradeTransientStillErrors: only dependency unavailability is
// survivable — a transient (retry-exhausted) voter failure errors the
// decision even with Degrade on.
func TestEngineDegradeTransientStillErrors(t *testing.T) {
	f := synthFact()
	fetch := func(_ context.Context, model string) (strategy.Outcome, error) {
		if model == "b" {
			return strategy.Outcome{}, retryableErr{}
		}
		return strategy.Outcome{FactID: f.ID, Model: model, Verdict: strategy.True}, nil
	}
	eng := &Engine{Plan: fourPlan(), Mode: ModeEager, AllowTie: true, Degrade: true}
	if _, _, err := eng.Decide(context.Background(), f, fetch); err == nil {
		t.Fatal("degrading engine swallowed a transient voter failure")
	}
}
