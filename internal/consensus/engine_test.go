package consensus

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

func TestParseMode(t *testing.T) {
	for _, s := range []string{"serial", "eager", "adaptive"} {
		m, err := ParseMode(s)
		if err != nil || string(m) != s {
			t.Errorf("ParseMode(%q) = (%q, %v)", s, m, err)
		}
	}
	for _, s := range []string{"", "greedy", "Serial", "eager "} {
		if _, err := ParseMode(s); err == nil {
			t.Errorf("ParseMode(%q) accepted", s)
		}
	}
}

func TestSettledBound(t *testing.T) {
	tests := []struct {
		trues, falses, total int
		verdict, settled     bool
	}{
		// 4-voter ensemble (the paper's).
		{0, 0, 4, false, false},
		{1, 0, 4, false, false},
		{2, 0, 4, false, false}, // could still end 2-2: a tie is never settled early
		{3, 0, 4, true, true},
		{2, 1, 4, false, false},
		{3, 1, 4, true, true},
		{0, 3, 4, false, true},
		{1, 3, 4, false, true},
		{2, 2, 4, false, false}, // complete tie: not a settled majority
		// Odd ensembles.
		{2, 0, 3, true, true},
		{1, 1, 3, false, false},
		{2, 1, 3, true, true},
		{0, 2, 3, false, true},
		{4, 1, 7, true, true},
		{3, 1, 7, false, false},
		// Degenerate sizes.
		{1, 0, 1, true, true},
		{0, 1, 1, false, true},
		{1, 0, 2, false, false},
		{2, 0, 2, true, true},
	}
	for _, tc := range tests {
		v, s := Settled(tc.trues, tc.falses, tc.total)
		if v != tc.verdict || s != tc.settled {
			t.Errorf("Settled(%d, %d, %d) = (%v, %v), want (%v, %v)",
				tc.trues, tc.falses, tc.total, v, s, tc.verdict, tc.settled)
		}
	}
}

// TestSettledAgreesWithMajority: whenever Settled declares a verdict from a
// partial count, every completion of the remaining votes must produce that
// same Majority verdict and no tie — exhaustively over ensembles of 1–7.
func TestSettledAgreesWithMajority(t *testing.T) {
	for total := 1; total <= 7; total++ {
		for trues := 0; trues <= total; trues++ {
			for falses := 0; trues+falses <= total; falses++ {
				v, settled := Settled(trues, falses, total)
				if !settled {
					continue
				}
				remaining := total - trues - falses
				for extraTrue := 0; extraTrue <= remaining; extraTrue++ {
					var vs []Vote
					for i := 0; i < trues+extraTrue; i++ {
						vs = append(vs, Vote{Verdict: strategy.True})
					}
					for len(vs) < total {
						vs = append(vs, Vote{Verdict: strategy.False})
					}
					mv, tie := Majority(vs)
					if tie {
						t.Fatalf("Settled(%d,%d,%d) but completion +%dT ties", trues, falses, total, extraTrue)
					}
					if mv != v {
						t.Fatalf("Settled(%d,%d,%d) verdict %v but completion +%dT majority %v",
							trues, falses, total, v, extraTrue, mv)
					}
				}
			}
		}
	}
}

func TestNewPlanCostOrder(t *testing.T) {
	// The open-source ensemble priced by llm.Cost: mistral is the
	// throughput king, llama3.1 the slowest generator.
	plan := NewPlan(llm.OpenSourceModels, llm.Cost)
	wantOrder := []string{llm.Mistral, llm.Qwen25, llm.Gemma2, llm.Llama31}
	if !reflect.DeepEqual(plan.Order, wantOrder) {
		t.Fatalf("plan order = %v, want %v", plan.Order, wantOrder)
	}
	wantTiers := [][]string{{llm.Mistral, llm.Qwen25, llm.Gemma2}, {llm.Llama31}}
	if !reflect.DeepEqual(plan.Tiers, wantTiers) {
		t.Fatalf("plan tiers = %v, want %v", plan.Tiers, wantTiers)
	}
	// The schedule depends only on the voter set, never on input order.
	shuffled := []string{llm.Llama31, llm.Gemma2, llm.Mistral, llm.Qwen25}
	if got := NewPlan(shuffled, llm.Cost); !reflect.DeepEqual(got, plan) {
		t.Fatalf("plan differs for permuted voters: %v vs %v", got, plan)
	}
}

func TestNewPlanQuorumSizes(t *testing.T) {
	for n := 0; n <= 7; n++ {
		var voters []string
		for i := 0; i < n; i++ {
			voters = append(voters, fmt.Sprintf("m%d", i))
		}
		plan := NewPlan(voters, nil)
		if len(plan.Order) != n {
			t.Fatalf("n=%d: order has %d voters", n, len(plan.Order))
		}
		if n == 0 {
			if len(plan.Tiers) != 0 {
				t.Fatalf("n=0: tiers = %v", plan.Tiers)
			}
			continue
		}
		wantQuorum := n/2 + 1
		if got := len(plan.Tiers[0]); got != wantQuorum {
			t.Fatalf("n=%d: first tier has %d voters, want quorum %d", n, got, wantQuorum)
		}
		total := 0
		for i, tier := range plan.Tiers {
			if i > 0 && len(tier) != 1 {
				t.Fatalf("n=%d: escalation tier %d has %d voters, want 1", n, i, len(tier))
			}
			total += len(tier)
		}
		if total != n {
			t.Fatalf("n=%d: tiers cover %d voters", n, total)
		}
	}
}

// planFetch builds a Fetch over fixed verdicts and latencies keyed by model.
func planFetch(f *dataset.Fact, verdicts map[string]strategy.Verdict, lats map[string]time.Duration) Fetch {
	return func(_ context.Context, model string) (strategy.Outcome, error) {
		v, ok := verdicts[model]
		if !ok {
			return strategy.Outcome{}, fmt.Errorf("no verdict scripted for %s", model)
		}
		return strategy.Outcome{FactID: f.ID, Model: model, Verdict: v, Latency: lats[model]}, nil
	}
}

// fourPlan is a synthetic 4-voter plan: a..c are the cheap quorum, d the
// escalation tier.
func fourPlan() Plan {
	costs := map[string]float64{"a": 1, "b": 2, "c": 3, "d": 4}
	return NewPlan([]string{"d", "c", "b", "a"}, func(m string) float64 { return costs[m] })
}

func synthFact() *dataset.Fact { return &dataset.Fact{ID: "f1", Gold: true} }

func TestEngineAdaptiveSkipsOnSettledQuorum(t *testing.T) {
	f := synthFact()
	eng := &Engine{Plan: fourPlan(), Mode: ModeAdaptive, AllowTie: true}
	verdicts := map[string]strategy.Verdict{"a": strategy.True, "b": strategy.True, "c": strategy.True, "d": strategy.False}
	lats := map[string]time.Duration{"a": time.Second, "b": 2 * time.Second, "c": 3 * time.Second, "d": 10 * time.Second}
	dec, st, err := eng.Decide(context.Background(), f, planFetch(f, verdicts, lats))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Final || dec.Tie {
		t.Fatalf("decision = final %v tie %v, want true majority", dec.Final, dec.Tie)
	}
	if !reflect.DeepEqual(dec.Skipped, []string{"d"}) {
		t.Fatalf("skipped = %v, want [d]", dec.Skipped)
	}
	if st.Dispatched != 3 || st.Skipped != 1 || st.Escalations != 0 || st.ArbiterCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Decided-at latency: the quorum's critical path only — the skipped
	// 10s voter is never waited on.
	if dec.LatencySeconds != 3 {
		t.Fatalf("latency = %v, want 3 (quorum critical path)", dec.LatencySeconds)
	}
	if !reflect.DeepEqual(dec.TierLatencySeconds, []float64{3}) {
		t.Fatalf("tier latencies = %v", dec.TierLatencySeconds)
	}
}

func TestEngineAdaptiveEscalatesOnDisagreement(t *testing.T) {
	f := synthFact()
	eng := &Engine{Plan: fourPlan(), Mode: ModeAdaptive, AllowTie: true}
	lats := map[string]time.Duration{"a": time.Second, "b": 2 * time.Second, "c": 3 * time.Second, "d": 10 * time.Second}

	// 2-1 quorum: unsettled, escalate to d. d votes true -> 3-1 true.
	verdicts := map[string]strategy.Verdict{"a": strategy.True, "b": strategy.False, "c": strategy.True, "d": strategy.True}
	dec, st, err := eng.Decide(context.Background(), f, planFetch(f, verdicts, lats))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Final || dec.Tie || dec.Skipped != nil {
		t.Fatalf("decision = %+v, want escalated 3-1 true", dec)
	}
	if st.Dispatched != 4 || st.Skipped != 0 || st.Escalations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Decided-at latency: quorum critical path + escalation tier.
	if dec.LatencySeconds != 13 {
		t.Fatalf("latency = %v, want 13", dec.LatencySeconds)
	}
	if !reflect.DeepEqual(dec.TierLatencySeconds, []float64{3, 10}) {
		t.Fatalf("tier latencies = %v", dec.TierLatencySeconds)
	}

	// 2-1 quorum, d votes false -> genuine 2-2 tie, reported (AllowTie).
	verdicts["d"] = strategy.False
	dec, st, err = eng.Decide(context.Background(), f, planFetch(f, verdicts, lats))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Tie || dec.Final {
		t.Fatalf("decision = %+v, want reported tie", dec)
	}
	if st.ArbiterCalls != 0 {
		t.Fatalf("arbiter called with AllowTie and no arbiter: %+v", st)
	}
}

// staticArbiter breaks every tie with a fixed verdict.
type staticArbiter struct {
	verdict strategy.Verdict
	lat     float64
	calls   int
}

func (a *staticArbiter) Name() string { return "static" }
func (a *staticArbiter) Break(context.Context, *dataset.Fact) (strategy.Verdict, float64, error) {
	a.calls++
	return a.verdict, a.lat, nil
}

func TestEngineTieArbitration(t *testing.T) {
	f := synthFact()
	arb := &staticArbiter{verdict: strategy.True, lat: 5}
	eng := &Engine{Plan: fourPlan(), Mode: ModeAdaptive, Arbiter: arb}
	verdicts := map[string]strategy.Verdict{"a": strategy.True, "b": strategy.False, "c": strategy.True, "d": strategy.False}
	lats := map[string]time.Duration{"a": time.Second, "b": time.Second, "c": time.Second, "d": time.Second}
	dec, st, err := eng.Decide(context.Background(), f, planFetch(f, verdicts, lats))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Tie || !dec.Final || !dec.ArbiterVerdict {
		t.Fatalf("decision = %+v, want arbitrated-true tie", dec)
	}
	if st.ArbiterCalls != 1 || arb.calls != 1 {
		t.Fatalf("arbiter calls = %d/%d, want 1", st.ArbiterCalls, arb.calls)
	}
	if dec.LatencySeconds != 1+1+5 {
		t.Fatalf("latency = %v, want quorum 1 + escalation 1 + arbiter 5", dec.LatencySeconds)
	}

	// Without an arbiter and without AllowTie, a tie is an error (Decide
	// parity).
	eng = &Engine{Plan: fourPlan(), Mode: ModeEager}
	if _, _, err := eng.Decide(context.Background(), f, planFetch(f, verdicts, lats)); err == nil {
		t.Fatal("tie without arbiter accepted")
	}
}

func TestEngineSerialLatencyIsSum(t *testing.T) {
	f := synthFact()
	verdicts := map[string]strategy.Verdict{"a": strategy.True, "b": strategy.True, "c": strategy.True, "d": strategy.True}
	lats := map[string]time.Duration{"a": time.Second, "b": 2 * time.Second, "c": 3 * time.Second, "d": 10 * time.Second}
	fetch := planFetch(f, verdicts, lats)

	serial := &Engine{Plan: fourPlan(), Mode: ModeSerial, AllowTie: true}
	dec, st, err := serial.Decide(context.Background(), f, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if dec.LatencySeconds != 16 {
		t.Fatalf("serial latency = %v, want 16 (sum of all)", dec.LatencySeconds)
	}
	if st.Dispatched != 4 || st.Skipped != 0 {
		t.Fatalf("serial stats = %+v", st)
	}

	eager := &Engine{Plan: fourPlan(), Mode: ModeEager, AllowTie: true}
	dec, _, err = eager.Decide(context.Background(), f, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if dec.LatencySeconds != 10 {
		t.Fatalf("eager latency = %v, want 10 (critical path)", dec.LatencySeconds)
	}
}

func TestEngineErrors(t *testing.T) {
	f := synthFact()
	fetch := planFetch(f, map[string]strategy.Verdict{"a": strategy.True}, nil)

	empty := &Engine{Plan: Plan{}, Mode: ModeEager}
	if _, _, err := empty.Decide(context.Background(), f, fetch); err == nil {
		t.Error("empty plan accepted")
	}
	unknown := &Engine{Plan: fourPlan(), Mode: Mode("greedy")}
	if _, _, err := unknown.Decide(context.Background(), f, fetch); err == nil {
		t.Error("unknown mode accepted")
	}
	// A fetch error surfaces with the voter attached.
	failing := &Engine{Plan: fourPlan(), Mode: ModeEager, AllowTie: true}
	_, _, err := failing.Decide(context.Background(), f, func(_ context.Context, m string) (strategy.Outcome, error) {
		if m == "b" {
			return strategy.Outcome{}, errors.New("boom")
		}
		return strategy.Outcome{FactID: f.ID, Model: m, Verdict: strategy.True}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "b vote") {
		t.Errorf("fetch error = %v, want wrapped b-vote error", err)
	}
	// An outcome for the wrong fact is rejected.
	mismatched := &Engine{Plan: fourPlan(), Mode: ModeEager, AllowTie: true}
	_, _, err = mismatched.Decide(context.Background(), f, func(_ context.Context, m string) (strategy.Outcome, error) {
		return strategy.Outcome{FactID: "other", Model: m, Verdict: strategy.True}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "outcome fact") {
		t.Errorf("mismatched fact error = %v", err)
	}
}

// fixtureFetch adapts one fact's precomputed outcomes to a Fetch.
func fixtureFetch(outs []strategy.Outcome) Fetch {
	return func(_ context.Context, model string) (strategy.Outcome, error) {
		for _, o := range outs {
			if o.Model == model {
				return o, nil
			}
		}
		return strategy.Outcome{}, fmt.Errorf("no outcome for %s", model)
	}
}

// TestEngineEagerMatchesDecide pins the engine's eager mode to the
// package-level Decide golden baseline over every fact of the fixture:
// identical Final, Tie, ArbiterVerdict and LatencySeconds, identical votes
// as a set (the engine reorders dispatch by cost, never content).
func TestEngineEagerMatchesDecide(t *testing.T) {
	fx := setup(t)
	per := fx.perFact()
	ctx := context.Background()
	arb := &ModelArbiter{Label: "agg-cons-up", Judge: llm.MustNew(llm.Gemma2Big), Verifier: strategy.DKA{}}
	plan := NewPlan(llm.OpenSourceModels, llm.Cost)
	eng := &Engine{Plan: plan, Mode: ModeEager, Arbiter: arb}
	for i, outs := range per {
		want, err := Decide(ctx, fx.d.Facts[i], outs, arb)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := eng.Decide(ctx, fx.d.Facts[i], fixtureFetch(outs))
		if err != nil {
			t.Fatal(err)
		}
		if got.Final != want.Final || got.Tie != want.Tie || got.ArbiterVerdict != want.ArbiterVerdict {
			t.Fatalf("fact %s: engine (final %v tie %v arb %v) != Decide (final %v tie %v arb %v)",
				fx.d.Facts[i].ID, got.Final, got.Tie, got.ArbiterVerdict, want.Final, want.Tie, want.ArbiterVerdict)
		}
		if got.LatencySeconds != want.LatencySeconds {
			t.Fatalf("fact %s: engine latency %v != Decide latency %v",
				fx.d.Facts[i].ID, got.LatencySeconds, want.LatencySeconds)
		}
		if got.Skipped != nil || st.Skipped != 0 {
			t.Fatalf("fact %s: eager mode skipped votes: %v", fx.d.Facts[i].ID, got.Skipped)
		}
		if !sameVoteSet(got.Votes, want.Votes) {
			t.Fatalf("fact %s: vote sets differ: %v vs %v", fx.d.Facts[i].ID, got.Votes, want.Votes)
		}
	}
}

// TestEngineAdaptiveMatchesEager is the differential gate at engine level:
// identical Final/Tie on every fact, skip sets deterministic across runs,
// and every unanimous fact early-stops.
func TestEngineAdaptiveMatchesEager(t *testing.T) {
	fx := setup(t)
	per := fx.perFact()
	ctx := context.Background()
	plan := NewPlan(llm.OpenSourceModels, llm.Cost)
	eager := &Engine{Plan: plan, Mode: ModeEager, AllowTie: true}
	adaptive := &Engine{Plan: plan, Mode: ModeAdaptive, AllowTie: true}

	unanimous, unanimousSkipped, skippedFacts := 0, 0, 0
	for i, outs := range per {
		f := fx.d.Facts[i]
		want, _, err := eager.Decide(ctx, f, fixtureFetch(outs))
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := adaptive.Decide(ctx, f, fixtureFetch(outs))
		if err != nil {
			t.Fatal(err)
		}
		if got.Final != want.Final || got.Tie != want.Tie {
			t.Fatalf("fact %s: adaptive (final %v tie %v) != eager (final %v tie %v)",
				f.ID, got.Final, got.Tie, want.Final, want.Tie)
		}
		if st.Dispatched+st.Skipped != len(plan.Order) {
			t.Fatalf("fact %s: dispatched %d + skipped %d != %d", f.ID, st.Dispatched, st.Skipped, len(plan.Order))
		}
		if len(got.Skipped) > 0 {
			skippedFacts++
			// Settled on tier 1 alone: the decided-at latency is tier 1's
			// critical path, which can never exceed the eager critical path
			// over the full ensemble.
			if got.LatencySeconds > want.LatencySeconds {
				t.Fatalf("fact %s: decided-at latency %v above eager critical path %v",
					f.ID, got.LatencySeconds, want.LatencySeconds)
			}
		}
		// Re-deciding must reproduce the skip set exactly.
		again, _, err := adaptive.Decide(ctx, f, fixtureFetch(outs))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Skipped, got.Skipped) {
			t.Fatalf("fact %s: skip set not deterministic: %v vs %v", f.ID, again.Skipped, got.Skipped)
		}
		if allAgree(want.Votes) {
			unanimous++
			if len(got.Skipped) > 0 {
				unanimousSkipped++
			}
		}
	}
	if unanimous == 0 {
		t.Fatal("fixture has no unanimous facts; differential gate is vacuous")
	}
	if unanimousSkipped*2 <= unanimous {
		t.Fatalf("early stop on %d of %d unanimous facts, want a majority", unanimousSkipped, unanimous)
	}
	if skippedFacts == 0 {
		t.Fatal("adaptive mode never skipped a vote")
	}
}

func allAgree(vs []Vote) bool {
	for _, v := range vs {
		if v.Verdict.Bool() != vs[0].Verdict.Bool() {
			return false
		}
	}
	return len(vs) > 0
}

func sameVoteSet(a, b []Vote) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(v Vote) string { return v.Model + "=" + v.Verdict.String() }
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	return reflect.DeepEqual(as, bs)
}
