// Package consensus implements the paper's multi-model consensus strategy
// (§3.3): a majority vote over the four open-source models' verdicts with a
// tie-breaking judge. Ties (2-2 splits) are resolved by one of three
// arbiters: the higher-parameter variant of the most consistent model
// (agg-cons-up), of the least consistent model (agg-cons-down), or a
// commercial model with an independent training pipeline (agg-GPT-4o mini).
package consensus

import (
	"context"
	"fmt"

	"factcheck/internal/dataset"
	"factcheck/internal/eval"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// Vote is one model's binary verdict on a fact (invalid responses vote
// false, per §3.3's v_i ∈ {0,1} formulation).
type Vote struct {
	Model   string
	Verdict strategy.Verdict
}

// Majority applies the paper's threshold rule, generalised to any ensemble
// size: strictly more than half the votes true -> true, an exact even
// split -> tie, otherwise false. Over the paper's four voters this is
// exactly §3.3 (sum >= 3 -> true, sum == 2 -> tie); odd ensembles and the
// partial tiers of the adaptive engine can never tie. An empty vote set is
// no consensus at all: (false, false), not a tie.
func Majority(votes []Vote) (verdict bool, tie bool) {
	sum := 0
	for _, v := range votes {
		if v.Verdict.Bool() {
			sum++
		}
	}
	half := len(votes) / 2
	switch {
	case len(votes) == 0:
		return false, false
	case len(votes)%2 == 0 && sum == half:
		return false, true
	case sum > half:
		return true, false
	default:
		return false, false
	}
}

// Settled reports whether the majority over an ensemble of total voters is
// already mathematically decided after trueVotes and falseVotes have been
// cast: a side is settled the moment its count exceeds the dissenting
// count plus every vote still outstanding, so no assignment of the
// remaining votes can flip the verdict or force a tie. When settled,
// verdict is the final majority verdict. This is the early-stop bound of
// the adaptive engine; note a tie is never settled early — an even split
// only exists once every voter has spoken.
func Settled(trueVotes, falseVotes, total int) (verdict bool, settled bool) {
	remaining := total - trueVotes - falseVotes
	if remaining < 0 {
		remaining = 0
	}
	switch {
	case trueVotes > falseVotes+remaining:
		return true, true
	case falseVotes > trueVotes+remaining:
		return false, true
	}
	return false, false
}

// Decision is the consensus outcome for one fact.
type Decision struct {
	FactID string
	Gold   bool
	// Final is the consensus verdict after any tie-breaking.
	Final bool
	// Tie reports whether the vote split evenly and an arbiter was used.
	Tie bool
	// ArbiterVerdict is the judge's vote when Tie (false otherwise).
	ArbiterVerdict bool
	Votes          []Vote
	// Latency is the consensus response time: the paper notes consensus
	// parallelises, so it is the slowest member (plus the arbiter on ties).
	// Under the adaptive engine it is the decided-at time instead — the sum
	// of per-tier critical paths actually waited on, never charging for
	// votes that were skipped.
	LatencySeconds float64
	// Mode tags which execution strategy produced the decision (empty for
	// the package-level Decide baseline).
	Mode Mode
	// Skipped lists the voters the early-stop planner proved unnecessary,
	// in dispatch order. Nil unless votes were skipped; always nil outside
	// ModeAdaptive.
	Skipped []string
	// Unavailable lists voters dropped from the ensemble because their
	// dependency was down (Engine.Degrade), in dispatch order. The
	// decision settled over the survivors.
	Unavailable []string
	// TierLatencySeconds is the critical-path latency of each dispatched
	// tier, in dispatch order (nil for the package-level Decide baseline).
	TierLatencySeconds []float64
}

// Arbiter breaks ties.
type Arbiter interface {
	// Name identifies the arbiter configuration (e.g. "agg-cons-up").
	Name() string
	// Break returns the tie-breaking verdict for the fact.
	Break(ctx context.Context, f *dataset.Fact) (strategy.Verdict, float64, error)
}

// ModelArbiter breaks ties by querying a judge model with a verifier.
type ModelArbiter struct {
	Label    string
	Judge    llm.Model
	Verifier strategy.Verifier
}

// Name implements Arbiter.
func (a *ModelArbiter) Name() string { return a.Label }

// Break implements Arbiter.
func (a *ModelArbiter) Break(ctx context.Context, f *dataset.Fact) (strategy.Verdict, float64, error) {
	out, err := a.Verifier.Verify(ctx, a.Judge, f)
	if err != nil {
		return strategy.Invalid, 0, fmt.Errorf("arbiter %s: %w", a.Label, err)
	}
	return out.Verdict, out.Latency.Seconds(), nil
}

// Decide combines the per-model outcomes for one fact into a decision,
// consulting the arbiter only on ties. outcomes must all refer to the same
// fact.
func Decide(ctx context.Context, f *dataset.Fact, outcomes []strategy.Outcome, arb Arbiter) (Decision, error) {
	d := Decision{FactID: f.ID, Gold: f.Gold}
	maxLat := 0.0
	for _, o := range outcomes {
		if o.FactID != f.ID {
			return Decision{}, fmt.Errorf("consensus: outcome fact %s != %s", o.FactID, f.ID)
		}
		d.Votes = append(d.Votes, Vote{Model: o.Model, Verdict: o.Verdict})
		if s := o.Latency.Seconds(); s > maxLat {
			maxLat = s
		}
	}
	verdict, tie := Majority(d.Votes)
	d.Final, d.Tie = verdict, tie
	d.LatencySeconds = maxLat
	if tie {
		if arb == nil {
			return Decision{}, fmt.Errorf("consensus: tie on %s with no arbiter", f.ID)
		}
		v, lat, err := arb.Break(ctx, f)
		if err != nil {
			return Decision{}, err
		}
		d.ArbiterVerdict = v.Bool()
		d.Final = d.ArbiterVerdict
		d.LatencySeconds += lat
	}
	return d, nil
}

// AlignmentReport holds per-model CA_M scores and the tie rate for one
// (dataset, method) cell of the paper's Table 6.
type AlignmentReport struct {
	TieRate float64
	// CA maps model name -> consensus alignment.
	CA map[string]float64
}

// Alignment computes CA_M for each model against the raw (pre-arbitration)
// majority: ties count as majority "false" per the v_i formulation, matching
// the proxy role CA plays in arbiter selection.
func Alignment(perFactOutcomes [][]strategy.Outcome) AlignmentReport {
	if len(perFactOutcomes) == 0 {
		return AlignmentReport{CA: map[string]float64{}}
	}
	models := map[string][]bool{}
	var majorities []bool
	ties := 0
	for _, outs := range perFactOutcomes {
		votes := make([]Vote, len(outs))
		for i, o := range outs {
			votes[i] = Vote{Model: o.Model, Verdict: o.Verdict}
		}
		maj, tie := Majority(votes)
		if tie {
			ties++
		}
		majorities = append(majorities, maj)
		for _, o := range outs {
			models[o.Model] = append(models[o.Model], o.Verdict.Bool())
		}
	}
	rep := AlignmentReport{
		TieRate: float64(ties) / float64(len(perFactOutcomes)),
		CA:      map[string]float64{},
	}
	for m, preds := range models {
		rep.CA[m] = eval.ConsensusAlignment(preds, majorities)
	}
	return rep
}

// MostConsistent returns the model with the highest CA, and lowest when
// highest is false. Ties break lexicographically for determinism.
func (r AlignmentReport) MostConsistent(highest bool) string {
	best := ""
	var bestCA float64
	for m, ca := range r.CA {
		better := false
		switch {
		case best == "":
			better = true
		case highest && ca > bestCA:
			better = true
		case !highest && ca < bestCA:
			better = true
		case ca == bestCA && m < best:
			better = true
		}
		if better {
			best, bestCA = m, ca
		}
	}
	return best
}
