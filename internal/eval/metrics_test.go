package eval

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Add(true, true, true)   // TP
	c.Add(true, false, true)  // FN
	c.Add(false, true, true)  // FP
	c.Add(false, false, true) // TN
	c.Add(true, false, false) // invalid on gold-true
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Invalid() != 1 || c.InvalidTrue != 1 {
		t.Fatalf("invalid accounting wrong: %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
	if got := c.PrecisionTrue(); got != 0.5 {
		t.Errorf("PrecisionTrue = %f, want 0.5", got)
	}
	// Recall(T) = TP / (TP + FN + invalidTrue) = 1/3.
	if got := c.RecallTrue(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("RecallTrue = %f, want 1/3", got)
	}
	if got := c.Accuracy(); got != 0.4 {
		t.Errorf("Accuracy = %f, want 0.4", got)
	}
}

func TestF1HandComputed(t *testing.T) {
	// 80 TP, 20 FN, 30 FP, 70 TN.
	c := Confusion{TP: 80, FN: 20, FP: 30, TN: 70}
	pT, rT := 80.0/110, 80.0/100
	wantT := 2 * pT * rT / (pT + rT)
	if got := c.F1True(); math.Abs(got-wantT) > 1e-9 {
		t.Errorf("F1True = %f, want %f", got, wantT)
	}
	pF, rF := 70.0/90, 70.0/100
	wantF := 2 * pF * rF / (pF + rF)
	if got := c.F1False(); math.Abs(got-wantF) > 1e-9 {
		t.Errorf("F1False = %f, want %f", got, wantF)
	}
	if c.F1(true) != c.F1True() || c.F1(false) != c.F1False() {
		t.Error("F1(class) accessor inconsistent")
	}
}

func TestF1EdgeCases(t *testing.T) {
	var empty Confusion
	if empty.F1True() != 0 || empty.F1False() != 0 {
		t.Error("empty confusion F1 not 0")
	}
	perfect := Confusion{TP: 10, TN: 10}
	if perfect.F1True() != 1 || perfect.F1False() != 1 {
		t.Error("perfect predictions F1 not 1")
	}
}

func TestF1RangeProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		t1, t2 := c.F1True(), c.F1False()
		return t1 >= 0 && t1 <= 1 && t2 >= 0 && t2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionFrom(t *testing.T) {
	preds := []Prediction{
		{Gold: true, Pred: true, Valid: true},
		{Gold: false, Pred: false, Valid: true},
		{Gold: false, Pred: true, Valid: true},
		{Gold: true, Pred: false, Valid: false},
	}
	c := ConfusionFrom(preds)
	if c.TP != 1 || c.TN != 1 || c.FP != 1 || c.InvalidTrue != 1 {
		t.Errorf("ConfusionFrom = %+v", c)
	}
}

func TestConsensusAlignment(t *testing.T) {
	model := []bool{true, false, true, true}
	maj := []bool{true, true, true, false}
	if got := ConsensusAlignment(model, maj); got != 0.5 {
		t.Errorf("CA = %f, want 0.5", got)
	}
	if got := ConsensusAlignment(nil, nil); got != 0 {
		t.Errorf("CA(empty) = %f, want 0", got)
	}
	if got := ConsensusAlignment([]bool{true}, []bool{true, false}); got != 0 {
		t.Errorf("CA(mismatched) = %f, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if got := Percentile(sorted, 50); got != 3 {
		t.Errorf("P50 = %f, want 3", got)
	}
	if got := Percentile(sorted, 0); got != 1 {
		t.Errorf("P0 = %f, want 1", got)
	}
	if got := Percentile(sorted, 100); got != 5 {
		t.Errorf("P100 = %f, want 5", got)
	}
	if got := Percentile(sorted, 25); got != 2 {
		t.Errorf("P25 = %f, want 2", got)
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("P50 single = %f, want 7", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("P50 of empty not NaN")
	}
}

func TestIQRFilterRemovesOutliers(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1.2, 1.0, 0.95, 1.05, 50}
	out := IQRFilter(xs)
	for _, x := range out {
		if x == 50 {
			t.Fatal("outlier survived IQR filter")
		}
	}
	if len(out) != len(xs)-1 {
		t.Errorf("filtered %d values, want 1", len(xs)-len(out))
	}
}

func TestIQRFilterSmallSamples(t *testing.T) {
	xs := []float64{5, 500, 2}
	out := IQRFilter(xs)
	if len(out) != 3 {
		t.Error("small samples must pass through unfiltered")
	}
}

func TestIQRFilterPreservesCleanData(t *testing.T) {
	f := func(seed uint8) bool {
		var xs []float64
		for i := 0; i < 30; i++ {
			xs = append(xs, 1+0.01*float64((int(seed)+i*7)%13))
		}
		return len(IQRFilter(xs)) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanResponseTime(t *testing.T) {
	ds := []time.Duration{
		100 * time.Millisecond, 110 * time.Millisecond, 105 * time.Millisecond,
		95 * time.Millisecond, 102 * time.Millisecond, 98 * time.Millisecond,
		10 * time.Second, // outlier, removed by IQR
	}
	got := MeanResponseTime(ds)
	if got < 0.09 || got > 0.12 {
		t.Errorf("theta-bar = %f, want ~0.10", got)
	}
	if MeanResponseTime(nil) != 0 {
		t.Error("empty input not 0")
	}
}

func TestMeanAndStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %f, want 5", got)
	}
	if got := Stddev(xs); math.Abs(got-2) > 1e-9 {
		t.Errorf("Stddev = %f, want 2", got)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty stats not 0")
	}
}

func TestParetoFrontier(t *testing.T) {
	pts := []ParetoPoint{
		{Label: "fast-weak", Cost: 0.2, Score: 0.5},
		{Label: "slow-strong", Cost: 2.5, Score: 0.9},
		{Label: "mid", Cost: 0.8, Score: 0.75},
		{Label: "dominated", Cost: 1.0, Score: 0.6}, // dominated by mid
		{Label: "also-dominated", Cost: 3.0, Score: 0.85},
	}
	front := ParetoFrontier(pts)
	want := map[string]bool{"fast-weak": true, "mid": true, "slow-strong": true}
	if len(front) != len(want) {
		t.Fatalf("frontier size %d, want %d: %v", len(front), len(want), front)
	}
	for i, p := range front {
		if !want[p.Label] {
			t.Errorf("unexpected frontier member %s", p.Label)
		}
		if i > 0 && front[i].Cost < front[i-1].Cost {
			t.Error("frontier not sorted by cost")
		}
	}
}

func TestParetoFrontierProperty(t *testing.T) {
	// No frontier point may dominate another frontier point.
	f := func(seeds []uint8) bool {
		if len(seeds) < 2 {
			return true
		}
		var pts []ParetoPoint
		for i, s := range seeds {
			pts = append(pts, ParetoPoint{
				Label: string(rune('a' + i%26)),
				Cost:  float64(s%17) / 4,
				Score: float64(s%23) / 23,
			})
		}
		front := ParetoFrontier(pts)
		for i, p := range front {
			for j, q := range front {
				if i != j && q.Cost <= p.Cost && q.Score >= p.Score &&
					(q.Cost < p.Cost || q.Score > p.Score) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGuessRate(t *testing.T) {
	// The paper's baselines: mu=0.80 with q=0.5 gives F1(T)~0.62,
	// and the false class (prevalence 0.20) gives ~0.29.
	if got := GuessRate(0.80, 0.5); math.Abs(got-0.615) > 0.01 {
		t.Errorf("GuessRate(T) = %f, want ~0.62", got)
	}
	if got := GuessRate(0.20, 0.5); math.Abs(got-0.286) > 0.01 {
		t.Errorf("GuessRate(F) = %f, want ~0.29", got)
	}
	if GuessRate(0, 0) != 0 {
		t.Error("degenerate guess rate not 0")
	}
}
