// Package eval implements the benchmark's performance metrics (paper §4.3):
// class-wise F1 scores for the True and False labels, Consensus Alignment
// (CA_M), IQR-filtered mean response time, and the Pareto-frontier analysis
// of the cost/effectiveness trade-off (Figure 3).
package eval

import (
	"math"
	"sort"
	"time"
)

// Confusion is a binary confusion matrix with extra buckets for invalid
// (format-failing) responses, split by gold class. Invalid responses count
// against recall of their gold class but are never predictions of either
// class.
type Confusion struct {
	TP, FP, TN, FN            int
	InvalidTrue, InvalidFalse int
}

// Add records one prediction. pred is meaningful only when valid.
func (c *Confusion) Add(gold bool, pred bool, valid bool) {
	if !valid {
		if gold {
			c.InvalidTrue++
		} else {
			c.InvalidFalse++
		}
		return
	}
	switch {
	case gold && pred:
		c.TP++
	case gold && !pred:
		c.FN++
	case !gold && pred:
		c.FP++
	default:
		c.TN++
	}
}

// Invalid returns the total count of invalid responses.
func (c Confusion) Invalid() int { return c.InvalidTrue + c.InvalidFalse }

// Total returns the number of recorded predictions including invalid ones.
func (c Confusion) Total() int {
	return c.TP + c.FP + c.TN + c.FN + c.Invalid()
}

// PrecisionTrue returns precision of the "True" class.
func (c Confusion) PrecisionTrue() float64 { return ratio(c.TP, c.TP+c.FP) }

// RecallTrue returns recall of the "True" class; invalid responses on
// gold-true facts are missed positives.
func (c Confusion) RecallTrue() float64 {
	return ratio(c.TP, c.TP+c.FN+c.InvalidTrue)
}

// PrecisionFalse returns precision of the "False" class.
func (c Confusion) PrecisionFalse() float64 { return ratio(c.TN, c.TN+c.FN) }

// RecallFalse returns recall of the "False" class.
func (c Confusion) RecallFalse() float64 {
	return ratio(c.TN, c.TN+c.FP+c.InvalidFalse)
}

// F1True returns the F1 score of the "True" class (paper's F1(T)).
func (c Confusion) F1True() float64 {
	return f1(c.PrecisionTrue(), c.RecallTrue())
}

// F1False returns the F1 score of the "False" class (paper's F1(F)).
func (c Confusion) F1False() float64 {
	return f1(c.PrecisionFalse(), c.RecallFalse())
}

// Accuracy returns plain accuracy over valid and invalid responses.
func (c Confusion) Accuracy() float64 {
	return ratio(c.TP+c.TN, c.Total())
}

// F1 returns the class-wise F1 for class c ∈ {true, false}, matching the
// paper's F1(c) notation.
func (c Confusion) F1(class bool) float64 {
	if class {
		return c.F1True()
	}
	return c.F1False()
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Prediction is the minimal view of one model response used by the metric
// computations.
type Prediction struct {
	Gold  bool
	Pred  bool
	Valid bool
}

// ConfusionFrom aggregates predictions into a confusion matrix.
func ConfusionFrom(preds []Prediction) Confusion {
	var c Confusion
	for _, p := range preds {
		c.Add(p.Gold, p.Pred, p.Valid)
	}
	return c
}

// ConsensusAlignment computes CA_M (paper §4.3): the fraction of facts on
// which a model's prediction equals the majority vote. Both slices must be
// index-aligned.
func ConsensusAlignment(model []bool, majority []bool) float64 {
	if len(model) == 0 || len(model) != len(majority) {
		return 0
	}
	agree := 0
	for i := range model {
		if model[i] == majority[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(model))
}

// IQRFilter removes outliers outside [Q1-1.5*IQR, Q3+1.5*IQR], returning
// the filtered sample (paper §4.3 response-time protocol).
func IQRFilter(xs []float64) []float64 {
	if len(xs) < 4 {
		return append([]float64(nil), xs...)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q1 := Percentile(sorted, 25)
	q3 := Percentile(sorted, 75)
	iqr := q3 - q1
	lo, hi := q1-1.5*iqr, q3+1.5*iqr
	var out []float64
	for _, x := range xs {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	return out
}

// Percentile computes the p-th percentile (0-100) of a *sorted* sample by
// linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanResponseTime returns the IQR-filtered mean of the durations in
// seconds (the paper's θ̄).
func MeanResponseTime(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	xs = IQRFilter(xs)
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// ParetoPoint is one configuration in the cost/effectiveness plane of the
// paper's Figure 3.
type ParetoPoint struct {
	Label string
	// Cost is θ̄ in seconds (lower is better).
	Cost float64
	// Score is the effectiveness metric, e.g. F1(F) (higher is better).
	Score float64
}

// ParetoFrontier returns the subset of points not dominated by any other
// point (a point dominates another when it is no slower and no worse, and
// strictly better in at least one dimension), sorted by ascending cost.
func ParetoFrontier(points []ParetoPoint) []ParetoPoint {
	var out []ParetoPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Cost <= p.Cost && q.Score >= p.Score &&
				(q.Cost < p.Cost || q.Score > p.Score) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// GuessRate returns the expected F1 of random guessing for a class with
// prevalence mu, guessing "true" with probability q (Figure 2's red line
// uses q = 0.5... the paper's guess rate reflects the class distribution).
// For class T with prevalence mu: precision = mu, recall = q.
func GuessRate(mu, q float64) float64 {
	return f1(mu, q)
}
