package prof

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServePprofEndpoints(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := "http://" + s.Addr()
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cmdline: status %d", resp.StatusCode)
	}

	// The index page lists the standard runtime profiles.
	resp2, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"goroutine", "heap"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("pprof index missing %q profile", want)
		}
	}
}

func TestServeRejectsEmptyAddr(t *testing.T) {
	if _, err := Serve(""); err == nil {
		t.Fatal("Serve(\"\") succeeded, want error")
	}
}
