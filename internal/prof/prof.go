// Package prof wires the conventional -cpuprofile / -memprofile flags into
// the CLIs, so performance claims about the verification and serving paths
// can be grounded in pprof captures instead of guesses: run any workload
// with -cpuprofile and feed the output to `go tool pprof`.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by Register.
type Flags struct {
	// CPU is the CPU-profile output path ("" = disabled).
	CPU string
	// Mem is the heap-profile output path, written at stop ("" = disabled).
	Mem string
}

// Register adds -cpuprofile and -memprofile to the flag set.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// Start begins CPU profiling when requested and returns a stop function
// that finalises the CPU profile and writes the heap profile. Callers must
// invoke stop exactly once, on success and error paths alike (defer it).
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				return fmt.Errorf("prof: create mem profile: %w", err)
			}
			defer mf.Close()
			runtime.GC() // capture the retained heap, not allocation noise
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("prof: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
