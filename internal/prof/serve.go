package prof

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live pprof debug listener started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the net/http/pprof handlers on their own listener at addr,
// so live profiling (`go tool pprof http://host:port/debug/pprof/profile`)
// never rides the serving mux: the debug port can stay firewalled while
// the API port is exposed, and a profile capture cannot consume an
// admission-queue slot. The mux carries only the pprof endpoints — never
// http.DefaultServeMux, whose contents depend on what else was imported.
//
// Callers own the returned Server and must Close it; an addr of "" is an
// error (gate the call on the flag instead).
func Serve(addr string) (*Server, error) {
	if addr == "" {
		return nil, fmt.Errorf("prof: empty pprof listen address")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("prof: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Close() surfaces as ErrServerClosed here
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight profile captures are cut off — the
// debug server never outlives the process's drain.
func (s *Server) Close() error { return s.srv.Close() }
