package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartFailsOnBadPath(t *testing.T) {
	f := &Flags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
