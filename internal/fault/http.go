package fault

import (
	"net/http"
	"strconv"
	"time"

	"factcheck/internal/det"
)

// HTTPSpec describes faults injected ahead of an HTTP handler (mockapi's
// manual chaos mode).
type HTTPSpec struct {
	// FailRate answers 500 + Retry-After at this rate.
	FailRate float64
	// Latency is a fixed real sleep added to every request.
	Latency time.Duration
	// StallRate hangs the request until the client gives up (its context
	// is done) at this rate.
	StallRate float64
}

// Empty reports whether the spec injects nothing.
func (s HTTPSpec) Empty() bool { return s == HTTPSpec{} }

// HTTPMiddleware wraps next with the spec's faults, det-keyed by seed,
// request coordinates (method + path + query) and a per-coordinate call
// sequence — so replaying the same request stream replays the same faults.
// next is returned unchanged when the spec is empty.
func HTTPMiddleware(spec HTTPSpec, seed string, next http.Handler) http.Handler {
	if spec.Empty() {
		return next
	}
	seqs := &Injector{seq: map[string]int{}}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		coord := r.Method + "\x00" + r.URL.Path + "\x00" + r.URL.RawQuery
		seq := strconv.Itoa(seqs.next(coord))
		if spec.Latency > 0 {
			t := time.NewTimer(spec.Latency)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		if spec.StallRate > 0 && det.Bool(spec.StallRate, "fault", seed, "httpstall", coord, seq) {
			<-r.Context().Done()
			return
		}
		if spec.FailRate > 0 && det.Bool(spec.FailRate, "fault", seed, "httperr", coord, seq) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}
