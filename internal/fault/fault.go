// Package fault is the benchmark's deterministic fault-injection layer: a
// seeded Injector that wraps the simulated models, the result store's
// snapshot writes, ingestion folds and plain HTTP handlers with composable
// faults — transient error rates, fail-N-then-recover, latency spikes,
// stalls, one-model hard-down, corrupt snapshot bytes.
//
// Every fault decision is a det-keyed draw over (plan seed, fault kind,
// call coordinates, per-coordinate call sequence), so a chaos run is
// exactly reproducible: the same seed and traffic produce the same faults
// in the same places, which is what lets CI assert that retried verdicts
// digest byte-identical to a fault-free run and that circuit-breaker
// transitions replay across runs.
//
// Injected faults never touch a response's simulated Usage — latency
// spikes are real wall-clock sleeps — so a call that eventually succeeds
// returns byte-identical payloads with or without faults.
package fault

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"factcheck/internal/det"
	"factcheck/internal/llm"
)

// Fault kinds carried by Error.Kind.
const (
	// KindTransient marks a retryable injected failure (a flaky call).
	KindTransient = "transient"
	// KindDown marks a hard-down dependency (never retryable).
	KindDown = "down"
)

// Error is an injected fault. It implements the duck-typed classification
// methods the resilience layer looks for (FaultTransient / FaultUnavailable),
// so retry and breaker policy apply without an import cycle.
type Error struct {
	// Scope names the faulted dependency (model name, "ingest", ...).
	Scope string
	// Kind is KindTransient or KindDown.
	Kind string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s error on %s", e.Kind, e.Scope)
}

// FaultTransient reports whether the fault is retryable.
func (e *Error) FaultTransient() bool { return e.Kind == KindTransient }

// FaultUnavailable reports whether the dependency is hard-down.
func (e *Error) FaultUnavailable() bool { return e.Kind == KindDown }

// ModelSpec describes the faults applied to one model (or to every model,
// under the "*" key). Rates are probabilities in [0, 1] drawn per call.
type ModelSpec struct {
	// ErrRate injects transient errors at this rate.
	ErrRate float64
	// FailFirst fails the model's first N calls with transient errors,
	// then recovers — the canonical breaker-exercise fault.
	FailFirst int
	// SpikeRate adds a real wall-clock sleep of ~Spike (det-jittered
	// ±50%) at this rate. Simulated Usage.Latency is untouched.
	SpikeRate float64
	Spike     time.Duration
	// StallRate hangs the call until its context is done at this rate —
	// the fault per-request deadlines exist to bound.
	StallRate float64
	// Down fails every call with a hard-down (non-retryable) error.
	Down bool
}

func (s ModelSpec) empty() bool { return s == ModelSpec{} }

// Plan is a parsed fault configuration: what to inject where, under which
// seed. The zero value injects nothing.
type Plan struct {
	// Seed keys every fault draw; chaos runs with equal seeds and traffic
	// inject identical faults.
	Seed string
	// Models maps a model name (or "*" for all) to its fault spec.
	Models map[string]ModelSpec
	// CorruptRate corrupts result-store snapshot writes at this rate
	// (drawn per fingerprint): one byte of the encoded snapshot is
	// flipped, which the codec rejects at the next load.
	CorruptRate float64
	// IngestRate fails ingestion folds with transient errors at this rate.
	IngestRate float64
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return len(p.Models) == 0 && p.CorruptRate == 0 && p.IngestRate == 0
}

// Parse folds one -fault flag value into the plan. A spec is a
// comma-separated list of k[=v] clauses:
//
//	model=NAME      scope the clause list to one model ("*" = all, the default)
//	err=P           transient error rate
//	fail-first=N    fail the model's first N calls, then recover
//	spike=DUR       latency-spike magnitude (real sleep; needs spike-rate)
//	spike-rate=P    latency-spike rate
//	stall=P         stall-until-deadline rate
//	down            hard-down (every call fails non-retryably)
//	store-corrupt=P corrupt result-store snapshot writes (plan-wide)
//	ingest-err=P    fail ingestion folds (plan-wide)
//
// e.g. -fault "err=0.1,spike=50ms,spike-rate=0.2" -fault "model=mistral:7b,down".
func (p *Plan) Parse(spec string) error {
	model := "*"
	ms := ModelSpec{}
	touched := false
	rate := func(k, v string) (float64, error) {
		r, err := strconv.ParseFloat(v, 64)
		if err != nil || r < 0 || r > 1 {
			return 0, fmt.Errorf("fault: %s=%q is not a rate in [0, 1]", k, v)
		}
		return r, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		k, v, _ := strings.Cut(clause, "=")
		var err error
		switch k {
		case "model":
			if touched {
				return fmt.Errorf("fault: model=%s must precede the fault clauses it scopes", v)
			}
			if v == "" {
				return fmt.Errorf("fault: empty model name")
			}
			model = v
		case "err":
			touched = true
			ms.ErrRate, err = rate(k, v)
		case "fail-first":
			touched = true
			ms.FailFirst, err = strconv.Atoi(v)
			if err == nil && ms.FailFirst < 0 {
				err = fmt.Errorf("fault: fail-first=%q must be >= 0", v)
			}
		case "spike":
			touched = true
			ms.Spike, err = time.ParseDuration(v)
			if err == nil && ms.Spike < 0 {
				err = fmt.Errorf("fault: spike=%q must be >= 0", v)
			}
		case "spike-rate":
			touched = true
			ms.SpikeRate, err = rate(k, v)
		case "stall":
			touched = true
			ms.StallRate, err = rate(k, v)
		case "down":
			touched = true
			ms.Down = true
		case "store-corrupt":
			p.CorruptRate, err = rate(k, v)
		case "ingest-err":
			p.IngestRate, err = rate(k, v)
		default:
			return fmt.Errorf("fault: unknown clause %q", clause)
		}
		if err != nil {
			return err
		}
	}
	if !ms.empty() {
		if p.Models == nil {
			p.Models = map[string]ModelSpec{}
		}
		if prev, ok := p.Models[model]; ok && prev != ms {
			return fmt.Errorf("fault: conflicting specs for model %s", model)
		}
		p.Models[model] = ms
	}
	return nil
}

// String renders the plan compactly for logs, in deterministic order.
func (p Plan) String() string {
	if p.Empty() {
		return "none"
	}
	var parts []string
	models := make([]string, 0, len(p.Models))
	for m := range p.Models {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		s := p.Models[m]
		var cs []string
		if s.Down {
			cs = append(cs, "down")
		}
		if s.ErrRate > 0 {
			cs = append(cs, fmt.Sprintf("err=%g", s.ErrRate))
		}
		if s.FailFirst > 0 {
			cs = append(cs, fmt.Sprintf("fail-first=%d", s.FailFirst))
		}
		if s.SpikeRate > 0 {
			cs = append(cs, fmt.Sprintf("spike=%s@%g", s.Spike, s.SpikeRate))
		}
		if s.StallRate > 0 {
			cs = append(cs, fmt.Sprintf("stall=%g", s.StallRate))
		}
		parts = append(parts, m+"{"+strings.Join(cs, ",")+"}")
	}
	if p.CorruptRate > 0 {
		parts = append(parts, fmt.Sprintf("store-corrupt=%g", p.CorruptRate))
	}
	if p.IngestRate > 0 {
		parts = append(parts, fmt.Sprintf("ingest-err=%g", p.IngestRate))
	}
	return strings.Join(parts, " ")
}

// Injector executes a Plan. A nil *Injector is valid and injects nothing,
// so callers wire it unconditionally.
//
// Determinism under concurrency: draws are keyed by the call's own
// coordinates (model, claim key, method, attempt) plus a per-coordinate
// call-sequence counter, never by a global counter — so the fault a given
// logical call sees does not depend on how unrelated calls interleave.
type Injector struct {
	plan Plan

	mu  sync.Mutex
	seq map[string]int
}

// New builds an injector for the plan (nil when the plan is empty).
func New(plan Plan) *Injector {
	if plan.Empty() {
		return nil
	}
	return &Injector{plan: plan, seq: map[string]int{}}
}

// Plan returns the injector's plan (zero when nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// next returns the 0-based sequence number of this call within its scope.
func (in *Injector) next(scope string) int {
	in.mu.Lock()
	n := in.seq[scope]
	in.seq[scope] = n + 1
	in.mu.Unlock()
	return n
}

// spec resolves the fault spec for a model: the exact name wins over "*".
func (in *Injector) spec(model string) (ModelSpec, bool) {
	if in == nil {
		return ModelSpec{}, false
	}
	if s, ok := in.plan.Models[model]; ok {
		return s, true
	}
	s, ok := in.plan.Models["*"]
	return s, ok
}

// Model wraps a model with the plan's faults for its name (m unchanged
// when the plan has none).
func (in *Injector) Model(m llm.Model) llm.Model {
	spec, ok := in.spec(m.Name())
	if !ok {
		return m
	}
	return &faultModel{Model: m, in: in, spec: spec}
}

// faultModel injects the spec's faults ahead of the wrapped model.
type faultModel struct {
	llm.Model
	in   *Injector
	spec ModelSpec
}

// Generate draws this call's faults, then delegates. Fault order: down,
// fail-first, transient error, stall, spike — a call survives them all
// before the real model runs, and the response passes through untouched.
func (f *faultModel) Generate(ctx context.Context, req llm.Request) (llm.Response, error) {
	name := f.Model.Name()
	if f.spec.Down {
		return llm.Response{}, &Error{Scope: name, Kind: KindDown}
	}
	if f.spec.FailFirst > 0 {
		if f.in.next("calls\x00"+name) < f.spec.FailFirst {
			return llm.Response{}, &Error{Scope: name, Kind: KindTransient}
		}
	}
	coord := name + "\x00" + req.Claim.Key + "\x00" + string(req.Method) + "\x00" + strconv.Itoa(req.Attempt)
	seq := strconv.Itoa(f.in.next(coord))
	draw := func(kind string, rate float64) bool {
		return rate > 0 && det.Bool(rate, "fault", f.in.plan.Seed, kind, coord, seq)
	}
	if draw("err", f.spec.ErrRate) {
		return llm.Response{}, &Error{Scope: name, Kind: KindTransient}
	}
	if draw("stall", f.spec.StallRate) {
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	}
	if draw("spike", f.spec.SpikeRate) {
		d := time.Duration(det.Jitter(float64(f.spec.Spike), 0.5, "fault", f.in.plan.Seed, "spikeamp", coord, seq))
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return llm.Response{}, ctx.Err()
		}
	}
	return f.Model.Generate(ctx, req)
}

// StoreTamper returns the snapshot write-tamper hook for results.Store
// (nil when the plan doesn't corrupt): at CorruptRate, keyed by the cell
// fingerprint, one byte of the encoded snapshot is flipped. The in-memory
// cell table keeps the good outcomes — corruption is a durability fault,
// surfacing as a rejected (hence missing, hence recomputed) cell at the
// next process start.
func (in *Injector) StoreTamper() func(fp uint64, data []byte) []byte {
	if in == nil || in.plan.CorruptRate == 0 {
		return nil
	}
	return func(fp uint64, data []byte) []byte {
		fps := strconv.FormatUint(fp, 16)
		if len(data) == 0 || !det.Bool(in.plan.CorruptRate, "fault", in.plan.Seed, "corrupt", fps) {
			return data
		}
		tampered := append([]byte(nil), data...)
		tampered[det.IntN(len(tampered), "fault", in.plan.Seed, "corruptat", fps)] ^= 0xff
		return tampered
	}
}

// IngestFault draws one ingestion fold's fault (nil = fold proceeds).
// Draws are keyed by a fold sequence number: the k-th fold fails or not
// deterministically for a given seed.
func (in *Injector) IngestFault() error {
	if in == nil || in.plan.IngestRate == 0 {
		return nil
	}
	seq := strconv.Itoa(in.next("ingest"))
	if det.Bool(in.plan.IngestRate, "fault", in.plan.Seed, "ingest", seq) {
		return &Error{Scope: "ingest", Kind: KindTransient}
	}
	return nil
}
