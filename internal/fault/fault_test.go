package fault

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"factcheck/internal/llm"
)

// okModel is a minimal inner model that records its calls and echoes the
// claim key, so tests can tell whether a fault short-circuited it and
// whether the response passed through untouched.
type okModel struct {
	name string

	mu    sync.Mutex
	calls int
}

func (m *okModel) Name() string     { return m.name }
func (m *okModel) ParamsB() float64 { return 1 }
func (m *okModel) Generate(_ context.Context, req llm.Request) (llm.Response, error) {
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	return llm.Response{Text: "ok:" + req.Claim.Key}, nil
}

func (m *okModel) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

func req(key string) llm.Request {
	return llm.Request{Claim: llm.Claim{Key: key}, Method: llm.MethodDKA}
}

func TestParse(t *testing.T) {
	valid := []struct {
		specs []string
		want  Plan
		str   string
	}{
		{
			specs: []string{"err=0.1,spike=50ms,spike-rate=0.2"},
			want:  Plan{Models: map[string]ModelSpec{"*": {ErrRate: 0.1, Spike: 50 * time.Millisecond, SpikeRate: 0.2}}},
			str:   "*{err=0.1,spike=50ms@0.2}",
		},
		{
			specs: []string{"model=mistral:7b,down"},
			want:  Plan{Models: map[string]ModelSpec{"mistral:7b": {Down: true}}},
			str:   "mistral:7b{down}",
		},
		{
			specs: []string{"fail-first=3,stall=0.5"},
			want:  Plan{Models: map[string]ModelSpec{"*": {FailFirst: 3, StallRate: 0.5}}},
			str:   "*{fail-first=3,stall=0.5}",
		},
		{
			specs: []string{"store-corrupt=0.5,ingest-err=0.25"},
			want:  Plan{CorruptRate: 0.5, IngestRate: 0.25},
			str:   "store-corrupt=0.5 ingest-err=0.25",
		},
		{
			// Folding several -fault flags accumulates per-model specs;
			// repeating an identical spec is not a conflict.
			specs: []string{"model=a,down", "err=0.1", "model=a,down"},
			want:  Plan{Models: map[string]ModelSpec{"a": {Down: true}, "*": {ErrRate: 0.1}}},
			str:   "*{err=0.1} a{down}",
		},
	}
	for _, tc := range valid {
		var p Plan
		for _, s := range tc.specs {
			if err := p.Parse(s); err != nil {
				t.Fatalf("Parse(%q): %v", s, err)
			}
		}
		if !reflect.DeepEqual(p, tc.want) {
			t.Errorf("Parse(%v) = %+v, want %+v", tc.specs, p, tc.want)
		}
		if got := p.String(); got != tc.str {
			t.Errorf("Parse(%v).String() = %q, want %q", tc.specs, got, tc.str)
		}
	}

	invalid := [][]string{
		{"err=2"},                              // rate out of range
		{"err=x"},                              // not a number
		{"fail-first=-1"},                      // negative count
		{"spike=-5ms"},                         // negative duration
		{"spike=soon"},                         // not a duration
		{"bogus=1"},                            // unknown clause
		{"model="},                             // empty model name
		{"err=0.1,model=a"},                    // model after the clauses it should scope
		{"model=a,err=0.1", "model=a,err=0.2"}, // conflicting respecification
	}
	for _, specs := range invalid {
		var p Plan
		var err error
		for _, s := range specs {
			if err = p.Parse(s); err != nil {
				break
			}
		}
		if err == nil {
			t.Errorf("Parse(%v) accepted", specs)
		}
	}
}

func TestEmptyPlanAndNilInjector(t *testing.T) {
	var p Plan
	if !p.Empty() || p.String() != "none" {
		t.Fatalf("zero plan: Empty=%v String=%q", p.Empty(), p.String())
	}
	in := New(p)
	if in != nil {
		t.Fatal("New(empty plan) != nil")
	}
	m := &okModel{name: "m"}
	if got := in.Model(m); got != llm.Model(m) {
		t.Error("nil injector rewrapped the model")
	}
	if in.StoreTamper() != nil {
		t.Error("nil injector returned a store tamper hook")
	}
	if err := in.IngestFault(); err != nil {
		t.Errorf("nil injector ingest fault: %v", err)
	}
	if !in.Plan().Empty() {
		t.Error("nil injector plan not empty")
	}
	// A plan without faults for this model leaves it unwrapped too.
	in = New(Plan{Models: map[string]ModelSpec{"other": {Down: true}}})
	if got := in.Model(m); got != llm.Model(m) {
		t.Error("injector wrapped a model its plan does not fault")
	}
}

// errPattern drives n calls with distinct claim keys through a fresh
// injector for the plan and records which calls failed.
func errPattern(t *testing.T, plan Plan, n int) []bool {
	t.Helper()
	m := New(plan).Model(&okModel{name: "m"})
	pat := make([]bool, n)
	for i := range pat {
		_, err := m.Generate(context.Background(), req("k"+strconv.Itoa(i)))
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) || !fe.FaultTransient() {
				t.Fatalf("call %d: %v is not a transient fault", i, err)
			}
			pat[i] = true
		}
	}
	return pat
}

// TestInjectorDeterminism: the same plan, seed and traffic draw the same
// faults in the same places; a different seed draws a different pattern.
func TestInjectorDeterminism(t *testing.T) {
	plan := func(seed string) Plan {
		return Plan{Seed: seed, Models: map[string]ModelSpec{"*": {ErrRate: 0.5}}}
	}
	a := errPattern(t, plan("s"), 256)
	b := errPattern(t, plan("s"), 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical plans drew different fault patterns")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("err=0.5 over %d calls failed %d times", len(a), fails)
	}
	if reflect.DeepEqual(a, errPattern(t, plan("s2"), 256)) {
		t.Fatal("different seeds drew identical fault patterns")
	}
}

// TestInterleavingIndependence: draws are keyed by call coordinates and a
// per-coordinate sequence, so the fault a logical call sees does not
// depend on how unrelated calls interleave.
func TestInterleavingIndependence(t *testing.T) {
	plan := Plan{Seed: "s", Models: map[string]ModelSpec{"*": {ErrRate: 0.5}}}
	const per = 64
	run := func(order []string) map[string][]bool {
		m := New(plan).Model(&okModel{name: "m"})
		pats := map[string][]bool{}
		for _, key := range order {
			_, err := m.Generate(context.Background(), req(key))
			pats[key] = append(pats[key], err != nil)
		}
		return pats
	}
	var alternating, grouped []string
	for i := 0; i < per; i++ {
		alternating = append(alternating, "a", "b")
	}
	for i := 0; i < per; i++ {
		grouped = append(grouped, "a")
	}
	for i := 0; i < per; i++ {
		grouped = append(grouped, "b")
	}
	if !reflect.DeepEqual(run(alternating), run(grouped)) {
		t.Fatal("per-key fault sequences depend on interleaving")
	}
}

func TestFailFirst(t *testing.T) {
	inner := &okModel{name: "m"}
	m := New(Plan{Seed: "s", Models: map[string]ModelSpec{"m": {FailFirst: 2}}}).Model(inner)
	for i := 0; i < 2; i++ {
		if _, err := m.Generate(context.Background(), req("k")); err == nil {
			t.Fatalf("call %d succeeded inside the fail-first window", i)
		}
	}
	if inner.callCount() != 0 {
		t.Fatalf("inner model called %d times during fail-first", inner.callCount())
	}
	resp, err := m.Generate(context.Background(), req("k"))
	if err != nil || resp.Text != "ok:k" {
		t.Fatalf("post-recovery call = (%+v, %v)", resp, err)
	}
}

func TestDown(t *testing.T) {
	inner := &okModel{name: "m"}
	m := New(Plan{Models: map[string]ModelSpec{"m": {Down: true}}}).Model(inner)
	for i := 0; i < 3; i++ {
		_, err := m.Generate(context.Background(), req("k"))
		var fe *Error
		if !errors.As(err, &fe) || !fe.FaultUnavailable() || fe.FaultTransient() {
			t.Fatalf("down call %d: %v, want a non-retryable unavailable fault", i, err)
		}
	}
	if inner.callCount() != 0 {
		t.Fatal("down model still reached the inner model")
	}
}

// TestExactNameWinsOverStar: a model-specific spec overrides the wildcard
// even when it injects nothing.
func TestExactNameWinsOverStar(t *testing.T) {
	in := New(Plan{Models: map[string]ModelSpec{
		"*":      {Down: true},
		"spared": {},
	}})
	if _, err := in.Model(&okModel{name: "spared"}).Generate(context.Background(), req("k")); err != nil {
		t.Fatalf("exact empty spec did not override *: %v", err)
	}
	if _, err := in.Model(&okModel{name: "other"}).Generate(context.Background(), req("k")); err == nil {
		t.Fatal("wildcard down spec did not apply")
	}
}

func TestStallHonoursContext(t *testing.T) {
	m := New(Plan{Seed: "s", Models: map[string]ModelSpec{"m": {StallRate: 1}}}).Model(&okModel{name: "m"})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := m.Generate(ctx, req("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled call returned %v, want DeadlineExceeded", err)
	}
}

func TestSpikeDelaysButPreservesResponse(t *testing.T) {
	m := New(Plan{Seed: "s", Models: map[string]ModelSpec{"m": {Spike: 40 * time.Millisecond, SpikeRate: 1}}}).Model(&okModel{name: "m"})
	start := time.Now()
	resp, err := m.Generate(context.Background(), req("k"))
	if err != nil || resp.Text != "ok:k" {
		t.Fatalf("spiked call = (%+v, %v), want untouched response", resp, err)
	}
	// Jitter is ±50%, so the sleep is at least 20ms.
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("spiked call returned in %v, spike not applied", el)
	}
	// A spike mid-sleep yields to the caller's context.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := m.Generate(ctx, req("k2")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled spike returned %v", err)
	}
}

func TestStoreTamper(t *testing.T) {
	in := New(Plan{Seed: "s", CorruptRate: 1})
	tamper := in.StoreTamper()
	if tamper == nil {
		t.Fatal("corrupting plan returned no tamper hook")
	}
	data := []byte("snapshot-bytes")
	orig := append([]byte(nil), data...)
	got := tamper(7, data)
	if !reflect.DeepEqual(data, orig) {
		t.Fatal("tamper mutated the caller's slice")
	}
	diffs := 0
	for i := range got {
		if got[i] != orig[i] {
			diffs++
		}
	}
	if len(got) != len(orig) || diffs != 1 {
		t.Fatalf("tampered copy differs in %d bytes, want exactly 1", diffs)
	}
	// Deterministic per fingerprint: same fp and bytes, same corruption.
	if !reflect.DeepEqual(got, tamper(7, data)) {
		t.Fatal("tamper is not deterministic per fingerprint")
	}
	if len(tamper(7, nil)) != 0 {
		t.Fatal("tamper invented bytes for an empty snapshot")
	}
	if New(Plan{Models: map[string]ModelSpec{"*": {Down: true}}}).StoreTamper() != nil {
		t.Fatal("non-corrupting plan returned a tamper hook")
	}
}

func TestIngestFault(t *testing.T) {
	in := New(Plan{Seed: "s", IngestRate: 1})
	for i := 0; i < 3; i++ {
		err := in.IngestFault()
		var fe *Error
		if !errors.As(err, &fe) || !fe.FaultTransient() {
			t.Fatalf("fold %d: %v, want transient ingest fault", i, err)
		}
	}
	// The k-th fold fails or not deterministically for a given seed.
	seq := func() []bool {
		in := New(Plan{Seed: "s", IngestRate: 0.5})
		var pat []bool
		for i := 0; i < 128; i++ {
			pat = append(pat, in.IngestFault() != nil)
		}
		return pat
	}
	if !reflect.DeepEqual(seq(), seq()) {
		t.Fatal("ingest fault sequence is not deterministic")
	}
}

func TestErrorMessageNamesScopeAndKind(t *testing.T) {
	e := &Error{Scope: "gemma2:9b", Kind: KindTransient}
	if msg := e.Error(); !strings.Contains(msg, "gemma2:9b") || !strings.Contains(msg, KindTransient) {
		t.Fatalf("error message %q", msg)
	}
}

func TestHTTPMiddlewareFail(t *testing.T) {
	inner := 0
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { inner++; w.WriteHeader(200) })
	h := HTTPMiddleware(HTTPSpec{FailRate: 1}, "s", next)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/x", nil))
	if w.Code != http.StatusInternalServerError || inner != 0 {
		t.Fatalf("status %d (inner calls %d), want injected 500", w.Code, inner)
	}
	if ra, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", w.Header().Get("Retry-After"))
	}
	// An empty spec leaves the handler alone.
	h = HTTPMiddleware(HTTPSpec{}, "s", next)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/x", nil))
	if w.Code != 200 {
		t.Fatalf("empty spec: status %d", w.Code)
	}
}

// TestHTTPMiddlewareDeterminism: the same seed and request stream draw the
// same fault pattern.
func TestHTTPMiddlewareDeterminism(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(200) })
	run := func(seed string) []int {
		h := HTTPMiddleware(HTTPSpec{FailRate: 0.5}, seed, next)
		var codes []int
		for i := 0; i < 128; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET", fmt.Sprintf("/p/%d", i%8), nil))
			codes = append(codes, w.Code)
		}
		return codes
	}
	a := run("s")
	if !reflect.DeepEqual(a, run("s")) {
		t.Fatal("identical request streams drew different HTTP faults")
	}
	var oks, fails int
	for _, c := range a {
		if c == 200 {
			oks++
		} else {
			fails++
		}
	}
	if oks == 0 || fails == 0 {
		t.Fatalf("fail-rate 0.5 over %d requests: %d ok, %d failed", len(a), oks, fails)
	}
}

func TestHTTPMiddlewareLatencyAndStall(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(200) })
	h := HTTPMiddleware(HTTPSpec{Latency: 30 * time.Millisecond}, "s", next)
	start := time.Now()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/x", nil))
	if el := time.Since(start); w.Code != 200 || el < 25*time.Millisecond {
		t.Fatalf("latency spec: status %d after %v", w.Code, el)
	}

	inner := 0
	counted := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { inner++; w.WriteHeader(200) })
	h = HTTPMiddleware(HTTPSpec{StallRate: 1}, "s", counted)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil).WithContext(ctx))
	if el := time.Since(start); el < 15*time.Millisecond || inner != 0 {
		t.Fatalf("stall released after %v with %d inner calls, want hang until ctx done", el, inner)
	}
}
