// Package prompt builds the verification prompts of the benchmark's
// strategies (paper §3.1–3.2) and parses model outputs back into verdicts.
// Prompt text is what gets token-charged in the resource accounting, so the
// templates' lengths matter: DKA is a short direct question, GIV adds a
// structured schema plus optional dataset constraints and few-shot
// exemplars, and RAG prepends retrieved context chunks.
package prompt

import (
	"encoding/json"
	"fmt"
	"strings"

	"factcheck/internal/llm"
)

// DKASystem is the minimal system prompt of Direct Knowledge Assessment.
const DKASystem = "You are a fact-checking assistant. Answer with TRUE or FALSE followed by a one-sentence justification."

// GIVSystem is the structured system prompt of Guided Iterative
// Verification: it pins the output schema the strategy re-prompts on. The
// template is deliberately long — it spells out the whole verification
// protocol — which is why GIV calls cost roughly three times a DKA call in
// the paper's Table 8.
const GIVSystem = `You are a meticulous knowledge-graph fact-validation assistant.
Your task is to evaluate the factual accuracy of a single statement extracted from a knowledge graph, using only your internal knowledge. Do not assume access to the web, to documents, or to any external tool.

Follow this verification protocol strictly, in order:
1. Identify the subject entity, the predicate (the asserted relation), and the object entity of the statement. Statements may use knowledge-graph surface conventions such as camelCase predicates, underscore-separated entity names, or infobox property labels; normalise these mentally before judging.
2. Recall what you know about the subject entity: its type, its principal attributes, and the values you can attribute to the asserted relation with confidence.
3. Compare the asserted object against your recalled knowledge. The statement is true only if the exact assertion holds; a statement that is merely plausible, partially correct, related to a true fact, or correct for a different entity with a similar name must be judged false.
4. If the relation is functional (a person has one birth place, a country has one capital), any object different from the known value makes the statement false. If the relation admits multiple values (awards, starring roles), the statement is true when the object is any one of the known values.
5. Judge the statement against the state of the world at the time the knowledge-graph snapshot was taken; do not penalise facts that changed afterwards.
6. If you genuinely cannot recall enough to decide, reason about the typical distribution of such statements rather than refusing to answer.

You MUST answer with a single JSON object and nothing else, following exactly this schema:
{"verdict": "true" | "false", "reason": "<one concise sentence>"}
The value of "verdict" must be the lowercase string "true" or the lowercase string "false"; no other value is accepted. The value of "reason" must be one grammatical English sentence justifying the verdict. Do not wrap the object in markdown code fences. Do not add a preface, an apology, restated instructions, or any trailing commentary. Any deviation from the schema will be rejected and the question will be asked again.`

// RAGSystem instructs evidence-grounded verification.
const RAGSystem = `You are a fact-checking assistant. You are given a statement and context passages retrieved from the web.
Judge the statement primarily on the provided context; fall back to your own knowledge only when the context is silent.
Answer with TRUE or FALSE followed by a one-sentence justification grounded in the context.`

// FewShotExamples are the shared exemplars of GIV-F (paper §3.1: "shared
// across datasets and KG-independent at the semantic level"). The encoding
// below is adapted per target KG by ConstraintsFor.
var FewShotExamples = []struct {
	Statement string
	Verdict   string
	Reason    string
}{
	{"Marie Curie was born in Warsaw.", "true",
		"Biographical records consistently place Marie Curie's birth in Warsaw in 1867, and the birthPlace relation is functional, so the asserted object matches the single known value."},
	{"The Eiffel Tower is located in Berlin.", "false",
		"The Eiffel Tower stands in Paris; since locatedIn is functional for a monument, the assertion of Berlin contradicts the known location and must be judged false."},
	{"Isaac Newton received the Copley Medal.", "true",
		"The Royal Society awarded Newton the Copley Medal in 1705, and because the award relation admits multiple values it is sufficient that the medal appears among his recorded honours."},
	{"The Nile has as its capital Cairo.", "false",
		"A river is not the kind of entity that has a capital city, so the relation is mis-typed for this subject and the exact assertion as stated cannot hold."},
	{"Alexander_III_of_Russia isMarriedTo Maria Feodorovna.", "true",
		"After normalising the underscore and camelCase conventions, the statement asserts the historically recorded marriage between Alexander III of Russia and Maria Feodorovna, which holds."},
}

// ConstraintsFor returns the optional dataset-specific constraint block GIV
// prompts may enforce (predicate and schema conventions per KG).
func ConstraintsFor(ds string) string {
	switch ds {
	case "FactBench":
		return "Constraints: statements use DBpedia/Freebase-style predicates; subject and object are named entities; judge the predicate exactly."
	case "YAGO":
		return "Constraints: statements use YAGO camelCase predicates (e.g. isMarriedTo); most facts in this source are correct, but do not assume correctness."
	case "DBpedia":
		return "Constraints: statements use raw DBpedia infobox properties, which vary in casing and wording; normalise the predicate meaning before judging."
	default:
		return ""
	}
}

// DKA renders the Direct Knowledge Assessment prompt.
func DKA(c llm.Claim) (system, user string) {
	return DKASystem, fmt.Sprintf("Is the following statement true or false?\n%s", c.Sentence)
}

// GIV renders the Guided Iterative Verification prompt. fewShot selects the
// GIV-F variant; attempt > 0 adds the explicit non-compliance flag the
// paper's re-prompting protocol sends.
func GIV(c llm.Claim, fewShot bool, attempt int) (system, user string) {
	var b strings.Builder
	if cons := ConstraintsFor(c.Dataset); cons != "" {
		b.WriteString(cons)
		b.WriteString("\n\n")
	}
	if fewShot {
		b.WriteString("Examples:\n")
		for _, ex := range FewShotExamples {
			b.WriteString(fmt.Sprintf("Statement: %s\nAnswer: {\"verdict\": %q, \"reason\": %q}\n",
				ex.Statement, ex.Verdict, ex.Reason))
		}
		b.WriteString("\n")
	}
	if attempt > 0 {
		b.WriteString("Your previous answer did not conform to the required JSON schema. Reply with ONLY the JSON object.\n\n")
	}
	b.WriteString(fmt.Sprintf("Statement: %s\nAnswer:", c.Sentence))
	return GIVSystem, b.String()
}

// RAG renders the retrieval-augmented prompt over the given context chunks.
func RAG(c llm.Claim, chunks []string) (system, user string) {
	var b strings.Builder
	b.WriteString("Context passages:\n")
	for i, ch := range chunks {
		b.WriteString(fmt.Sprintf("[%d] %s\n", i+1, ch))
	}
	b.WriteString(fmt.Sprintf("\nStatement: %s\nIs the statement true or false?", c.Sentence))
	return RAGSystem, b.String()
}

// givAnswer is the JSON schema GIV responses must follow.
type givAnswer struct {
	Verdict string `json:"verdict"`
	Reason  string `json:"reason"`
}

// ParseGIV parses a GIV response. ok is false when the output does not
// conform to the schema (triggering a re-prompt).
func ParseGIV(out string) (verdict bool, reason string, ok bool) {
	out = strings.TrimSpace(out)
	var a givAnswer
	if err := json.Unmarshal([]byte(out), &a); err != nil {
		return false, "", false
	}
	switch strings.ToLower(a.Verdict) {
	case "true":
		return true, a.Reason, true
	case "false":
		return false, a.Reason, true
	default:
		return false, "", false
	}
}

// ParseFree parses a free-text (DKA/RAG) response of the form
// "TRUE. <reason>" / "FALSE. <reason>". ok is false when neither label is
// found at the start of the output.
func ParseFree(out string) (verdict bool, reason string, ok bool) {
	t := strings.TrimSpace(out)
	upper := strings.ToUpper(t)
	switch {
	case strings.HasPrefix(upper, "TRUE"):
		return true, trimReason(t, len("TRUE")), true
	case strings.HasPrefix(upper, "FALSE"):
		return false, trimReason(t, len("FALSE")), true
	default:
		return false, "", false
	}
}

func trimReason(t string, n int) string {
	r := strings.TrimLeft(t[n:], ".:,; ")
	return strings.TrimSpace(r)
}
