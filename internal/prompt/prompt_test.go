package prompt

import (
	"strings"
	"testing"

	"factcheck/internal/llm"
)

func testClaim() llm.Claim {
	return llm.Claim{
		Dataset:      "FactBench",
		Sentence:     "Ada Example was born in Sampletown.",
		SubjectLabel: "Ada Example",
		ObjectLabel:  "Sampletown",
		Phrase:       "was born in",
	}
}

func TestDKAPrompt(t *testing.T) {
	system, user := DKA(testClaim())
	if system != DKASystem {
		t.Error("DKA system prompt mismatch")
	}
	if !strings.Contains(user, "Ada Example was born in Sampletown.") {
		t.Errorf("DKA user prompt missing sentence: %q", user)
	}
}

func TestGIVPromptParts(t *testing.T) {
	c := testClaim()
	system, zero := GIV(c, false, 0)
	if !strings.Contains(system, `{"verdict": "true" | "false"`) {
		t.Error("GIV system prompt missing schema")
	}
	if !strings.Contains(zero, ConstraintsFor("FactBench")) {
		t.Error("GIV prompt missing dataset constraints")
	}
	if strings.Contains(zero, "Examples:") {
		t.Error("zero-shot prompt contains examples")
	}

	_, few := GIV(c, true, 0)
	if !strings.Contains(few, "Examples:") {
		t.Error("few-shot prompt missing examples")
	}
	for _, ex := range FewShotExamples {
		if !strings.Contains(few, ex.Statement) {
			t.Errorf("few-shot prompt missing example %q", ex.Statement)
		}
	}
	if len(few) <= len(zero) {
		t.Error("few-shot prompt not longer than zero-shot")
	}

	_, retry := GIV(c, false, 1)
	if !strings.Contains(retry, "did not conform") {
		t.Error("re-prompt missing non-compliance flag")
	}
}

func TestConstraintsForAllDatasets(t *testing.T) {
	for _, ds := range []string{"FactBench", "YAGO", "DBpedia"} {
		if ConstraintsFor(ds) == "" {
			t.Errorf("no constraints for %s", ds)
		}
	}
	if ConstraintsFor("Other") != "" {
		t.Error("constraints for unknown dataset")
	}
}

func TestRAGPrompt(t *testing.T) {
	chunks := []string{"First passage.", "Second passage."}
	system, user := RAG(testClaim(), chunks)
	if system != RAGSystem {
		t.Error("RAG system prompt mismatch")
	}
	if !strings.Contains(user, "[1] First passage.") || !strings.Contains(user, "[2] Second passage.") {
		t.Errorf("RAG prompt missing numbered chunks: %q", user)
	}
	if !strings.Contains(user, "Ada Example was born in Sampletown.") {
		t.Error("RAG prompt missing statement")
	}
}

func TestParseGIV(t *testing.T) {
	tests := []struct {
		in      string
		verdict bool
		ok      bool
	}{
		{`{"verdict": "true", "reason": "it holds"}`, true, true},
		{`{"verdict": "false", "reason": "it does not"}`, false, true},
		{`  {"verdict": "TRUE", "reason": "case-insensitive"}  `, true, true},
		{`{"verdict": "maybe", "reason": "x"}`, false, false},
		{`not json at all`, false, false},
		{`{"reason": "missing verdict"}`, false, false},
		{``, false, false},
	}
	for _, tc := range tests {
		v, _, ok := ParseGIV(tc.in)
		if ok != tc.ok || (ok && v != tc.verdict) {
			t.Errorf("ParseGIV(%q) = (%v, %v), want (%v, %v)", tc.in, v, ok, tc.verdict, tc.ok)
		}
	}
}

func TestParseGIVReason(t *testing.T) {
	_, reason, ok := ParseGIV(`{"verdict": "true", "reason": "solid evidence"}`)
	if !ok || reason != "solid evidence" {
		t.Errorf("reason = %q, ok = %v", reason, ok)
	}
}

func TestParseFree(t *testing.T) {
	tests := []struct {
		in      string
		verdict bool
		reason  string
		ok      bool
	}{
		{"TRUE. It matches records.", true, "It matches records.", true},
		{"FALSE. Contradicted.", false, "Contradicted.", true},
		{"true - lowercase works", true, "- lowercase works", true},
		{"  FALSE: with colon", false, "with colon", true},
		{"I think the answer is yes", false, "", false},
		{"", false, "", false},
	}
	for _, tc := range tests {
		v, r, ok := ParseFree(tc.in)
		if ok != tc.ok || v != tc.verdict {
			t.Errorf("ParseFree(%q) = (%v, %q, %v), want (%v, %q, %v)",
				tc.in, v, r, ok, tc.verdict, tc.reason, tc.ok)
		}
		if ok && tc.reason != "" && !strings.Contains(tc.in, r) {
			t.Errorf("reason %q not a substring of input", r)
		}
	}
}

func TestGIVRoundTripWithSim(t *testing.T) {
	// A conformant simulated GIV answer must parse.
	out := `{"verdict": "false", "reason": "The stated place conflicts with known records."}`
	if _, _, ok := ParseGIV(out); !ok {
		t.Error("canonical sim output does not parse")
	}
}
