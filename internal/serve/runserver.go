package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// drainTimeout bounds how long a graceful shutdown waits for in-flight
// requests before cutting them off.
const drainTimeout = 15 * time.Second

// RunServer is the shared serve-until-signalled scaffold of the repo's
// daemons (factcheckd, webapp, mockapi): it runs srv until ctx is
// cancelled, then drains gracefully — flip readiness off via the
// app-specific drainStart hook (nil for none; factcheckd fails /readyz
// here so load balancers stop routing while in-flight work finishes),
// stop accepting, finish in-flight requests (up to drainTimeout), run the
// app-specific drain hook (nil for none), and log the outcome. The log
// reports "drain cut off" instead of "drained" when the timeout expired
// with requests still in flight.
func RunServer(ctx context.Context, srv *http.Server, name string, logw io.Writer, drainStart, drain func()) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(logw, "%s: serving on %s\n", name, srv.Addr)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "%s: draining...\n", name)
	if drainStart != nil {
		drainStart()
	}
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(shCtx)
	if drain != nil {
		drain()
	}
	if err != nil {
		fmt.Fprintf(logw, "%s: drain cut off: %v\n", name, err)
		return err
	}
	fmt.Fprintf(logw, "%s: drained\n", name)
	return nil
}
