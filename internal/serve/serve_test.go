package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"factcheck/internal/consensus"
	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// testBench builds one small benchmark shared by every test in the package
// (the instance is immutable once built; each test gets its own Service
// and store).
var testBench = sync.OnceValue(func() *core.Benchmark {
	return core.NewBenchmark(core.TestConfig())
})

// permissive is a config that keeps the backpressure layers out of the way
// for tests that target other layers.
func permissive() Config {
	return Config{Rate: 1e9, Burst: 1e9, QueueDepth: 256, Workers: 4}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	return New(testBench(), core.NewMemoryStore(), cfg)
}

func postVerify(t *testing.T, h http.Handler, req VerifyRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/verify", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func firstFact(dn dataset.Name) *dataset.Fact {
	return testBench().Datasets[dn].Facts[0]
}

// stubOutcome fabricates a deterministic outcome for a (cell, fact) pair.
func stubOutcome(cell core.Cell, f *dataset.Fact) strategy.Outcome {
	return strategy.Outcome{
		FactID: f.ID, Model: cell.Model, Method: cell.Method,
		Verdict: strategy.True, Gold: f.Gold, Correct: f.Gold,
		Latency: 100 * time.Millisecond, Attempts: 1,
	}
}

// TestCoalescing: N concurrent identical requests must trigger exactly one
// verifier call, with every response identical.
func TestCoalescing(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	f := firstFact(dataset.FactBench)
	var calls atomic.Int32
	release := make(chan struct{})
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		calls.Add(1)
		<-release
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	req := VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID}

	const n = 16
	var wg sync.WaitGroup
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postVerify(t, h, req)
			if w.Code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, w.Code, w.Body.String())
				return
			}
			bodies[i] = w.Body.String()
		}(i)
	}
	// Let every request reach the singleflight layer while the leader's
	// verification is still pending, then release it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("verifier called %d times for %d identical concurrent requests, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if st := svc.Stats(); st.Coalesced == 0 {
		t.Fatalf("coalesced counter = 0, want > 0 (stats %+v)", st)
	}
}

// TestCoalescedFollowerSurvivesLeaderCancel: when the singleflight
// leader's own request context dies mid-verification, a follower with a
// live context must retry (becoming the new leader) instead of inheriting
// the leader's context error as a 500.
func TestCoalescedFollowerSurvivesLeaderCancel(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	f := firstFact(dataset.FactBench)
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}

	var calls atomic.Int32
	leaderIn := make(chan struct{})
	svc.verify = func(ctx context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done() // the leader's client disconnects
			return strategy.Outcome{}, ctx.Err()
		}
		return stubOutcome(cell, f), nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := svc.verdict(leaderCtx, cell, f, 0)
		leaderErr <- err
	}()
	<-leaderIn

	followerRes := make(chan error, 1)
	go func() {
		out, _, err := svc.verdict(context.Background(), cell, f, 0)
		if err == nil && out.FactID != f.ID {
			err = fmt.Errorf("wrong outcome %+v", out)
		}
		followerRes <- err
	}()
	// Give the follower time to join the in-flight call, then kill the
	// leader's request.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	if err := <-followerRes; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("verifier called %d times, want 2 (cancelled leader + retrying follower)", got)
	}
}

// TestQueueFullBackpressure: with one admission slot occupied, the next
// request is rejected immediately with 503 + Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	cfg := permissive()
	cfg.QueueDepth = 1
	cfg.Workers = 1
	svc := newTestService(t, cfg)
	defer svc.Drain()
	entered := make(chan struct{})
	release := make(chan struct{})
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		close(entered)
		<-release
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	req := VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID}

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postVerify(t, h, req) }()
	<-entered // the only queue slot is now held

	w := postVerify(t, h, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with full queue, want 503 (body %s)", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	close(release)
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("admitted request failed: %d %s", w.Code, w.Body.String())
	}
	if st := svc.Stats(); st.QueueRejected != 1 {
		t.Fatalf("queue_rejected = %d, want 1", st.QueueRejected)
	}
}

// TestRateLimit: a client that exhausts its burst gets 429 + Retry-After;
// an independent client is unaffected.
func TestRateLimit(t *testing.T) {
	cfg := permissive()
	cfg.Rate = 0.5
	cfg.Burst = 2
	svc := newTestService(t, cfg)
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	body, _ := json.Marshal(VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID})

	do := func(client string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("POST", "/v1/verify", bytes.NewReader(body))
		r.Header.Set("X-Client-ID", client)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}
	for i := 0; i < 2; i++ {
		if w := do("alice"); w.Code != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, w.Code)
		}
	}
	w := do("alice")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d past burst, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if w := do("bob"); w.Code != http.StatusOK {
		t.Fatalf("independent client rate-limited: status %d", w.Code)
	}
	if st := svc.Stats(); st.RateLimited != 1 {
		t.Fatalf("rate_limited = %d, want 1", st.RateLimited)
	}
}

// TestBatchAndConsensusRateCharge: the token bucket charges per
// verification, so a k-item batch (or k-model consensus) costs k tokens —
// batching must not multiply a client's effective rate.
func TestBatchAndConsensusRateCharge(t *testing.T) {
	cfg := permissive()
	cfg.Rate = 0.001 // effectively no refill within the test
	cfg.Burst = 4
	svc := newTestService(t, cfg)
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	one := VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID}

	do := func(client, path string, v any) *httptest.ResponseRecorder {
		body, _ := json.Marshal(v)
		r := httptest.NewRequest("POST", path, bytes.NewReader(body))
		r.Header.Set("X-Client-ID", client)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}
	// Batch of 3 costs 3 of alice's 4 tokens, one single costs the 4th,
	// the next single is throttled.
	if w := do("alice", "/v1/verify/batch", BatchRequest{Requests: []VerifyRequest{one, one, one}}); w.Code != http.StatusOK {
		t.Fatalf("batch within burst: %d %s", w.Code, w.Body.String())
	}
	if w := do("alice", "/v1/verify", one); w.Code != http.StatusOK {
		t.Fatalf("single on last token: %d", w.Code)
	}
	if w := do("alice", "/v1/verify", one); w.Code != http.StatusTooManyRequests {
		t.Fatalf("single past burst: %d, want 429", w.Code)
	}

	// A batch larger than the burst can never be served: 400, not an
	// eternal 429.
	big := BatchRequest{Requests: []VerifyRequest{one, one, one, one, one}}
	w := do("bob", "/v1/verify/batch", big)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "burst capacity") {
		t.Fatalf("burst-exceeding batch: %d %s, want 400 burst-capacity error", w.Code, w.Body.String())
	}

	// Consensus fans out to the 4 open-source models: exactly carol's
	// burst, so one succeeds and the second is throttled.
	get := func(client string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("GET", "/v1/consensus/"+f.ID, nil)
		r.Header.Set("X-Client-ID", client)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}
	if w := get("carol"); w.Code != http.StatusOK {
		t.Fatalf("consensus within burst: %d %s", w.Code, w.Body.String())
	}
	if w := get("carol"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("second consensus: %d, want 429", w.Code)
	}
}

// TestDrainCompletesInFlight: Drain must wait for a verification already
// picked up by the executor, and for background cell fills, before
// returning.
func TestDrainCompletesInFlight(t *testing.T) {
	cfg := permissive()
	svc := newTestService(t, cfg)
	entered := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		close(entered)
		<-release
		finished.Store(true)
		return stubOutcome(cell, f), nil
	}
	f := firstFact(dataset.FactBench)
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}
	resErr := make(chan error, 1)
	go func() {
		_, _, err := svc.verdict(context.Background(), cell, f, 0)
		resErr <- err
	}()
	<-entered
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	svc.Drain()
	if !finished.Load() {
		t.Fatal("Drain returned before the in-flight verification finished")
	}
	if err := <-resErr; err != nil {
		t.Fatalf("in-flight verification failed during drain: %v", err)
	}
}

// TestFillPersistsCell: one on-demand verdict triggers a whole-cell fill
// that persists the snapshot; Drain waits for it.
func TestFillPersistsCell(t *testing.T) {
	cfg := permissive()
	cfg.FillCells = true
	store := core.NewMemoryStore()
	svc := New(testBench(), store, cfg)
	var calls atomic.Int32
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		calls.Add(1)
		return stubOutcome(cell, f), nil
	}
	f := firstFact(dataset.FactBench)
	req := VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID}
	if w := postVerify(t, svc.Handler(), req); w.Code != http.StatusOK {
		t.Fatalf("verify: %d %s", w.Code, w.Body.String())
	}
	svc.filler.Wait() // let the scheduled fill run (Drain would discard a queued one)
	svc.Drain()
	if store.Len() != 1 {
		t.Fatalf("store has %d cells after fill, want 1", store.Len())
	}
	nFacts := len(testBench().Datasets[dataset.FactBench].Facts)
	// The fill reuses the one verdict already in the LRU.
	if got := int(calls.Load()); got != nFacts {
		t.Fatalf("verifier called %d times, want %d (cell size, initial verdict reused)", got, nFacts)
	}
	if st := svc.Stats(); st.CellFills != 1 {
		t.Fatalf("cell_fills = %d, want 1", st.CellFills)
	}
}

// TestVerifyGolden: POST /v1/verify responses must be byte-identical to
// the corresponding grid-cell outcome from RunCell, for every fact of the
// cell — and identical again when served from a store snapshot or the LRU
// (only the source field may differ).
func TestVerifyGolden(t *testing.T) {
	b := testBench()
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}
	outs, err := b.RunCell(context.Background(), cell.Dataset, cell.Method, cell.Model)
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, permissive())
	defer svc.Drain()
	h := svc.Handler()
	facts := b.Datasets[cell.Dataset].Facts

	encode := func(v any) string {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for i, f := range facts {
		req := VerifyRequest{Dataset: string(cell.Dataset), Method: string(cell.Method), Model: cell.Model, FactID: f.ID}
		w := postVerify(t, h, req)
		if w.Code != http.StatusOK {
			t.Fatalf("fact %s: status %d: %s", f.ID, w.Code, w.Body.String())
		}
		want := encode(verdictResponse(cell, outs[i], "computed"))
		if got := w.Body.String(); got != want {
			t.Fatalf("fact %s: served verdict differs from RunCell outcome:\ngot  %swant %s", f.ID, got, want)
		}
		// Second request: LRU hit, byte-identical modulo source.
		w2 := postVerify(t, h, req)
		want2 := encode(verdictResponse(cell, outs[i], "lru"))
		if got := w2.Body.String(); got != want2 {
			t.Fatalf("fact %s: LRU verdict differs:\ngot  %swant %s", f.ID, got, want2)
		}
	}

	// A store-warm service serves the same bytes from the snapshot.
	store := core.NewMemoryStore()
	if err := store.Put(b.CellKey(cell).Fingerprint(), outs); err != nil {
		t.Fatal(err)
	}
	warm := New(b, store, permissive())
	defer warm.Drain()
	wh := warm.Handler()
	for i, f := range facts {
		path := fmt.Sprintf("/v1/verdict/%s/%s/%s/%s", cell.Dataset, cell.Method, cell.Model, f.ID)
		w := httptest.NewRecorder()
		wh.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, w.Code, w.Body.String())
		}
		// The first store hit hydrates the whole cell into the LRU, so
		// later facts answer from it; the bytes must match either way.
		source := "lru"
		if i == 0 {
			source = "store"
		}
		want := encode(verdictResponse(cell, outs[i], source))
		if got := w.Body.String(); got != want {
			t.Fatalf("fact %s: store verdict differs:\ngot  %swant %s", f.ID, got, want)
		}
	}
}

// TestVerdictLookupDoesNotCompute: GET /v1/verdict on a cold service is a
// 404, never a verification.
func TestVerdictLookupDoesNotCompute(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	var calls atomic.Int32
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		calls.Add(1)
		return stubOutcome(cell, f), nil
	}
	f := firstFact(dataset.FactBench)
	path := fmt.Sprintf("/v1/verdict/%s/%s/%s/%s", dataset.FactBench, llm.MethodDKA, llm.Gemma2, f.ID)
	w := httptest.NewRecorder()
	svc.Handler().ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d on cold lookup, want 404", w.Code)
	}
	if calls.Load() != 0 {
		t.Fatal("read-only verdict lookup triggered a verification")
	}
}

// TestBatch covers the batch endpoint: mixed valid/invalid items, order
// preservation, and the size cap.
func TestBatch(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	g := firstFact(dataset.YAGO)

	post := func(v any) *httptest.ResponseRecorder {
		body, _ := json.Marshal(v)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/verify/batch", bytes.NewReader(body)))
		return w
	}
	w := post(BatchRequest{Requests: []VerifyRequest{
		{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID},
		{Dataset: "Nope", Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID},
		{Dataset: string(dataset.YAGO), Method: string(llm.MethodGIVZ), Model: llm.Qwen25, FactID: g.ID},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Verdict == nil || resp.Results[0].Verdict.FactID != f.ID {
		t.Fatalf("result 0 = %+v, want verdict for %s", resp.Results[0], f.ID)
	}
	if resp.Results[1].Error == "" || !strings.Contains(resp.Results[1].Error, "unknown dataset") {
		t.Fatalf("result 1 error = %q, want unknown-dataset error", resp.Results[1].Error)
	}
	if resp.Results[2].Verdict == nil || resp.Results[2].Verdict.Method != string(llm.MethodGIVZ) {
		t.Fatalf("result 2 = %+v, want GIV-Z verdict", resp.Results[2])
	}

	if w := post(BatchRequest{}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", w.Code)
	}
	big := BatchRequest{Requests: make([]VerifyRequest, 65)}
	if w := post(big); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", w.Code)
	}
}

// getConsensus issues GET /v1/consensus/{fact} with an optional ?mode= and
// decodes the response.
func getConsensus(t *testing.T, h http.Handler, factID, mode string) (*ConsensusResponse, *httptest.ResponseRecorder) {
	t.Helper()
	url := "/v1/consensus/" + factID
	if mode != "" {
		url += "?mode=" + mode
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
	if w.Code != http.StatusOK {
		return nil, w
	}
	var resp ConsensusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return &resp, w
}

// TestConsensusEndpoint: in every mode the served verdict must match
// consensus.Majority over the open-source models' RunCell verdicts, with
// each vote attributed to the model that cast it. Only the execution shape
// (votes consulted, skip set) may differ between modes.
func TestConsensusEndpoint(t *testing.T) {
	b := testBench()
	f := firstFact(dataset.FactBench)
	want := map[string]strategy.Verdict{}
	var votes []consensus.Vote
	for _, model := range b.Config.Models {
		if model == llm.GPT4oMini {
			continue
		}
		outs, err := b.RunCell(context.Background(), dataset.FactBench, llm.MethodDKA, model)
		if err != nil {
			t.Fatal(err)
		}
		want[model] = outs[0].Verdict
		votes = append(votes, consensus.Vote{Model: model, Verdict: outs[0].Verdict})
	}
	wantFinal, wantTie := consensus.Majority(votes)

	svc := newTestService(t, permissive())
	defer svc.Drain()
	h := svc.Handler()
	planOrder := svc.plan.Order

	for _, mode := range []string{"serial", "eager", "adaptive"} {
		resp, w := getConsensus(t, h, f.ID, mode)
		if resp == nil {
			t.Fatalf("%s: %d %s", mode, w.Code, w.Body.String())
		}
		if resp.Mode != mode {
			t.Fatalf("mode tag %q, want %q", resp.Mode, mode)
		}
		// The verdict is mode-independent.
		if resp.Final != wantFinal || resp.Tie != wantTie {
			t.Fatalf("%s: final=%v tie=%v, want final=%v tie=%v", mode, resp.Final, resp.Tie, wantFinal, wantTie)
		}
		// Every vote is the model's own RunCell verdict, in plan order.
		for i, v := range resp.Votes {
			if v.Model != planOrder[i] {
				t.Fatalf("%s: vote %d from %s, want plan order %v", mode, i, v.Model, planOrder)
			}
			if v.Verdict != want[v.Model].String() {
				t.Fatalf("%s: vote %s = %s, want %s", mode, v.Model, v.Verdict, want[v.Model])
			}
		}
		switch mode {
		case "serial", "eager":
			if len(resp.Votes) != len(planOrder) || len(resp.Skipped) != 0 {
				t.Fatalf("%s: %d votes, %d skipped; want full ensemble", mode, len(resp.Votes), len(resp.Skipped))
			}
		case "adaptive":
			// Votes + Skipped partition the plan exactly.
			all := append([]string{}, resp.Skipped...)
			for i, v := range resp.Votes {
				if v.Model != planOrder[i] {
					t.Fatalf("adaptive: dispatched %s at %d", v.Model, i)
				}
			}
			if len(resp.Votes)+len(all) != len(planOrder) {
				t.Fatalf("adaptive: %d votes + %d skipped != %d plan", len(resp.Votes), len(all), len(planOrder))
			}
			for i, m := range resp.Skipped {
				if m != planOrder[len(resp.Votes)+i] {
					t.Fatalf("adaptive: skipped %v not the plan tail of %v", resp.Skipped, planOrder)
				}
			}
		}
	}

	// No ?mode= serves the configured default (adaptive).
	resp, w := getConsensus(t, h, f.ID, "")
	if resp == nil {
		t.Fatalf("default mode: %d %s", w.Code, w.Body.String())
	}
	if resp.Mode != string(consensus.ModeAdaptive) {
		t.Fatalf("default mode = %q, want adaptive", resp.Mode)
	}
	// An unknown mode is a 400, before any charging or verification.
	if _, w := getConsensus(t, h, f.ID, "bogus"); w.Code != http.StatusBadRequest {
		t.Fatalf("?mode=bogus: %d, want 400", w.Code)
	}
}

// TestConsensusModesAgree is the serving-layer differential gate: for every
// fact of every dataset, eager (run everything — the golden baseline),
// serial and adaptive must agree on Final and Tie; adaptive must skip
// voters on a majority of the unanimous facts.
func TestConsensusModesAgree(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	ctx := context.Background()

	unanimous, unanimousSkipped, skippedFacts, facts := 0, 0, 0, 0
	for _, dn := range testBench().Config.Datasets {
		for _, f := range testBench().Datasets[dn].Facts {
			facts++
			eager, err := svc.Consensus(ctx, f.ID, consensus.ModeEager)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := svc.Consensus(ctx, f.ID, consensus.ModeSerial)
			if err != nil {
				t.Fatal(err)
			}
			adaptive, err := svc.Consensus(ctx, f.ID, consensus.ModeAdaptive)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Final != eager.Final || serial.Tie != eager.Tie {
				t.Fatalf("%s: serial (final %v tie %v) != eager (final %v tie %v)",
					f.ID, serial.Final, serial.Tie, eager.Final, eager.Tie)
			}
			if adaptive.Final != eager.Final || adaptive.Tie != eager.Tie {
				t.Fatalf("%s: adaptive (final %v tie %v) != eager (final %v tie %v)",
					f.ID, adaptive.Final, adaptive.Tie, eager.Final, eager.Tie)
			}
			if len(adaptive.Skipped) > 0 {
				skippedFacts++
			}
			agree := true
			for _, v := range eager.Votes {
				if v.Verdict != eager.Votes[0].Verdict {
					agree = false
					break
				}
			}
			if agree {
				unanimous++
				if len(adaptive.Skipped) > 0 {
					unanimousSkipped++
				}
			}
		}
	}
	if unanimous == 0 {
		t.Fatal("no unanimous facts; the differential gate is vacuous")
	}
	if unanimousSkipped*2 <= unanimous {
		t.Fatalf("adaptive skipped votes on %d of %d unanimous facts, want a majority", unanimousSkipped, unanimous)
	}
	t.Logf("%d facts: %d unanimous, %d with skipped votes", facts, unanimous, skippedFacts)
}

// TestConsensusCoalesces: N concurrent adaptive consensus requests for the
// same fact must coalesce per (cell, fact) — the quorum models are each
// verified exactly once, and the escalation voter not at all when the
// quorum is unanimous. Run under -race this also exercises the engine's
// fan-out goroutines against the singleflight layer.
func TestConsensusCoalesces(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	f := firstFact(dataset.FactBench)

	var mu sync.Mutex
	calls := map[string]int{}
	release := make(chan struct{})
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		mu.Lock()
		calls[cell.Model]++
		mu.Unlock()
		<-release
		return stubOutcome(cell, f), nil // every model votes true: unanimous quorum
	}
	h := svc.Handler()

	const n = 8
	var wg sync.WaitGroup
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/consensus/"+f.ID, nil))
			if w.Code != http.StatusOK {
				t.Errorf("request %d: %d %s", i, w.Code, w.Body.String())
				return
			}
			bodies[i] = w.Body.String()
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	quorum := svc.plan.Tiers[0]
	escalation := svc.plan.Order[len(quorum):]
	mu.Lock()
	defer mu.Unlock()
	for _, m := range quorum {
		if calls[m] != 1 {
			t.Errorf("quorum model %s verified %d times across %d concurrent requests, want 1", m, calls[m], n)
		}
	}
	for _, m := range escalation {
		if calls[m] != 0 {
			t.Errorf("escalation model %s verified %d times on a unanimous quorum, want 0", m, calls[m])
		}
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

// TestConsensusSkipSetParallelismInvariant: the adaptive skip set (and the
// whole response) must be byte-identical whether the service runs its
// executor with 1 worker or 8 — decisions are taken at tier boundaries
// only, never on dispatch-completion order.
func TestConsensusSkipSetParallelismInvariant(t *testing.T) {
	responses := func(workers int) []string {
		cfg := permissive()
		cfg.Workers = workers
		svc := newTestService(t, cfg)
		defer svc.Drain()
		h := svc.Handler()
		var out []string
		for _, dn := range testBench().Config.Datasets {
			for _, f := range testBench().Datasets[dn].Facts {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/consensus/"+f.ID+"?mode=adaptive", nil))
				if w.Code != http.StatusOK {
					t.Fatalf("%s: %d %s", f.ID, w.Code, w.Body.String())
				}
				out = append(out, w.Body.String())
			}
		}
		return out
	}
	par1 := responses(1)
	par8 := responses(8)
	for i := range par1 {
		if par1[i] != par8[i] {
			t.Fatalf("response %d differs between 1 and 8 workers:\n%s\nvs\n%s", i, par1[i], par8[i])
		}
	}
}

// TestConsensusNoVotersRejectedBeforeCharge: a service whose model set has
// no open-source voters answers 422 before debiting any rate-limit token
// beyond the admission charge — the failed consensus request must not eat
// into the client's budget for requests the server can serve.
func TestConsensusNoVotersRejectedBeforeCharge(t *testing.T) {
	cfg := core.TestConfig()
	cfg.Models = []string{llm.GPT4oMini} // arbiter-only: no voters
	b := core.NewBenchmark(cfg)
	scfg := permissive()
	scfg.Rate = 0.001
	scfg.Burst = 2
	svc := New(b, core.NewMemoryStore(), scfg)
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := b.Datasets[dataset.FactBench].Facts[0]

	w := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/v1/consensus/"+f.ID, nil)
	r.Header.Set("X-Client-ID", "dave")
	h.ServeHTTP(w, r)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("voterless consensus: %d %s, want 422", w.Code, w.Body.String())
	}
	// Only the admission token was spent: a second request still fits the
	// burst of 2. Had handleConsensus charged before validating, the
	// client would be throttled here.
	req := VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.GPT4oMini, FactID: f.ID}
	body, _ := json.Marshal(req)
	w = httptest.NewRecorder()
	r = httptest.NewRequest("POST", "/v1/verify", bytes.NewReader(body))
	r.Header.Set("X-Client-ID", "dave")
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("verify after failed consensus: %d %s, want 200 (token not double-charged)", w.Code, w.Body.String())
	}
}

// TestConsensusStatszCounters: the /statsz consensus counters must account
// for exactly the votes the planner dispatched, skipped and escalated.
func TestConsensusStatszCounters(t *testing.T) {
	verdicts := map[string]strategy.Verdict{}
	svc := newTestService(t, permissive())
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		out := stubOutcome(cell, f)
		out.Verdict = verdicts[cell.Model]
		return out, nil
	}
	h := svc.Handler()
	statsz := func() Stats {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/statsz", nil))
		var st Stats
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// A unanimous quorum: 3 dispatched, 1 skipped, no escalation.
	for _, m := range svc.plan.Order {
		verdicts[m] = strategy.True
	}
	f := firstFact(dataset.FactBench)
	if resp, w := getConsensus(t, h, f.ID, "adaptive"); resp == nil {
		t.Fatalf("consensus: %d %s", w.Code, w.Body.String())
	}
	st := statsz()
	if st.ConsensusRequests != 1 || st.ConsensusDispatched != 3 || st.ConsensusSkipped != 1 || st.ConsensusEscalations != 0 {
		t.Fatalf("after unanimous quorum: %+v, want 1 request, 3 dispatched, 1 skipped, 0 escalations", st)
	}

	// A split quorum on a second fact: all 4 dispatched, one escalation.
	quorum := svc.plan.Tiers[0]
	verdicts[quorum[0]] = strategy.True
	verdicts[quorum[1]] = strategy.False
	verdicts[quorum[2]] = strategy.False
	verdicts[svc.plan.Order[3]] = strategy.False
	g := testBench().Datasets[dataset.FactBench].Facts[1]
	resp, w := getConsensus(t, h, g.ID, "adaptive")
	if resp == nil {
		t.Fatalf("consensus: %d %s", w.Code, w.Body.String())
	}
	if resp.Final || resp.Tie {
		t.Fatalf("split quorum decision = %+v, want 1-3 false", resp)
	}
	st = statsz()
	if st.ConsensusRequests != 2 || st.ConsensusDispatched != 7 || st.ConsensusSkipped != 1 || st.ConsensusEscalations != 1 {
		t.Fatalf("after split quorum: %+v, want 2 requests, 7 dispatched, 1 skipped, 1 escalation", st)
	}
	if st.ConsensusArbiters != 0 {
		t.Fatalf("arbiter calls = %d, want 0 (service reports ties)", st.ConsensusArbiters)
	}
}

// TestValidation maps bad coordinates to the documented statuses.
func TestValidation(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	ok := VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID}

	cases := []struct {
		name   string
		mutate func(*VerifyRequest)
		status int
	}{
		{"unknown dataset", func(r *VerifyRequest) { r.Dataset = "Nope" }, http.StatusNotFound},
		{"unknown method", func(r *VerifyRequest) { r.Method = "ESP" }, http.StatusBadRequest},
		{"unknown model", func(r *VerifyRequest) { r.Model = "gpt-17" }, http.StatusNotFound},
		{"unknown fact", func(r *VerifyRequest) { r.FactID = "fb-nope" }, http.StatusNotFound},
		{"fact of other dataset", func(r *VerifyRequest) { r.FactID = firstFact(dataset.YAGO).ID }, http.StatusNotFound},
	}
	for _, tc := range cases {
		req := ok
		tc.mutate(&req)
		if w := postVerify(t, h, req); w.Code != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, w.Code, tc.status, w.Body.String())
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/verify", strings.NewReader("{nope")))
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/consensus/fb-nope", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("consensus unknown fact: status %d, want 404", w.Code)
	}
}

// TestFactsAndStats smoke-tests the unthrottled endpoints.
func TestFactsAndStats(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	h := svc.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/facts", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("facts: %d", w.Code)
	}
	var facts struct {
		Datasets map[string][]string `json:"datasets"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &facts); err != nil {
		t.Fatal(err)
	}
	for _, dn := range testBench().Config.Datasets {
		if len(facts.Datasets[string(dn)]) != len(testBench().Datasets[dn].Facts) {
			t.Fatalf("facts for %s: %d IDs, want %d", dn, len(facts.Datasets[string(dn)]), len(testBench().Datasets[dn].Facts))
		}
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/statsz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statsz: %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.QueueCap != 256 {
		t.Fatalf("queue_cap = %d, want 256", st.QueueCap)
	}
}

// TestStatszRetrievalCounters: a real (unstubbed) RAG verification performs
// retrieval, so the engine's cumulative pruning counters surfaced under
// /statsz "retrieval" must move. The bench engine is shared across tests,
// so assert on deltas.
func TestStatszRetrievalCounters(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	h := svc.Handler()

	statsz := func() Stats {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/statsz", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("statsz: %d", w.Code)
		}
		var st Stats
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	before := statsz()
	f := firstFact(dataset.FactBench)
	req := VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodRAG), Model: llm.Gemma2, FactID: f.ID}
	if w := postVerify(t, h, req); w.Code != http.StatusOK {
		t.Fatalf("verify: %d: %s", w.Code, w.Body.String())
	}
	after := statsz()

	if after.Retrieval.SearchQueries <= before.Retrieval.SearchQueries {
		t.Errorf("search_queries did not move: %d -> %d",
			before.Retrieval.SearchQueries, after.Retrieval.SearchQueries)
	}
	if after.Retrieval.PostingsTouched <= before.Retrieval.PostingsTouched {
		t.Errorf("postings_touched did not move: %d -> %d",
			before.Retrieval.PostingsTouched, after.Retrieval.PostingsTouched)
	}
	if after.Retrieval.DocsScored <= before.Retrieval.DocsScored {
		t.Errorf("docs_scored did not move: %d -> %d",
			before.Retrieval.DocsScored, after.Retrieval.DocsScored)
	}
}

// TestBodySizeLimit: a request body past maxBodyBytes is rejected with 413
// before any of it is processed.
func TestBodySizeLimit(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	h := svc.Handler()
	huge := `{"dataset":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	for _, path := range []string{"/v1/verify", "/v1/verify/batch"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", path, strings.NewReader(huge)))
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with %d-byte body: status %d, want 413", path, len(huge), w.Code)
		}
	}
}

// TestRunServer: the shared daemon scaffold serves until the context dies,
// then drains and runs the app hook.
func TestRunServer(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	drained := false
	var log bytes.Buffer
	done := make(chan error, 1)
	started := false
	go func() {
		done <- RunServer(ctx, srv, "testd", &log, func() { started = true }, func() { drained = true })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	if !started {
		t.Fatal("drain-start hook not called")
	}
	if !drained {
		t.Fatal("drain hook not called")
	}
	for _, want := range []string{"testd: serving on", "testd: draining...", "testd: drained"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("log missing %q: %q", want, log.String())
		}
	}
}

// TestRunServerListenError: a bind failure is reported, not swallowed.
func TestRunServerListenError(t *testing.T) {
	srv := &http.Server{Addr: "256.0.0.1:-1", Handler: http.NewServeMux()}
	if err := RunServer(context.Background(), srv, "testd", io.Discard, nil, nil); err == nil {
		t.Fatal("RunServer succeeded with an unbindable address")
	}
}

// --- limiter unit tests --------------------------------------------------

func TestLimiterBurstAndRefill(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l := newLimiter(1, 2, clock) // 1 token/s, burst 2
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, wait := l.allow("c")
	if ok {
		t.Fatal("request past burst allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s]", wait)
	}
	now = now.Add(time.Second)
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("request after refill rejected")
	}
	if ok, _ := l.allow("other"); !ok {
		t.Fatal("fresh client rejected")
	}
}

func TestLimiterPrune(t *testing.T) {
	now := time.Unix(0, 0)
	l := newLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < 10; i++ {
		l.allow(fmt.Sprintf("c%d", i))
	}
	if got := l.clients(); got != 10 {
		t.Fatalf("clients = %d, want 10", got)
	}
	// After a full refill interval every bucket is forgettable.
	l.mu.Lock()
	l.prune(now.Add(2 * time.Second))
	l.mu.Unlock()
	if got := l.clients(); got != 0 {
		t.Fatalf("clients after prune = %d, want 0", got)
	}
}

// TestLimiterBounded: a client-ID churn attack must not grow the table
// past maxClients, even when no bucket is idle enough to prune.
func TestLimiterBounded(t *testing.T) {
	now := time.Unix(0, 0)
	l := newLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < maxClients+50; i++ {
		l.allow(fmt.Sprintf("churn-%d", i))
	}
	if got := l.clients(); got > maxClients {
		t.Fatalf("clients = %d, want <= %d", got, maxClients)
	}
}

// --- cache unit tests ----------------------------------------------------

func cacheKey(fact string) verdictKey {
	return verdictKey{
		cell:   core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2},
		factID: fact,
	}
}

func TestCachePutGetUpdate(t *testing.T) {
	c := newVerdictCache(64)
	k := cacheKey("f1")
	if _, ok := c.get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(k, strategy.Outcome{FactID: "f1", Attempts: 1})
	out, ok := c.get(k)
	if !ok || out.Attempts != 1 {
		t.Fatalf("get = %+v, %v", out, ok)
	}
	c.put(k, strategy.Outcome{FactID: "f1", Attempts: 2})
	if out, _ := c.get(k); out.Attempts != 2 {
		t.Fatalf("update lost: %+v", out)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity == shard count -> one entry per shard; two same-shard keys
	// evict the older one.
	c := newVerdictCache(cacheShards)
	k1 := cacheKey("f-0")
	var k2 verdictKey
	found := false
	for i := 1; i < 4096; i++ {
		k := cacheKey(fmt.Sprintf("f-%d", i))
		if k.shard() == k1.shard() {
			k2, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no same-shard key found")
	}
	c.put(k1, strategy.Outcome{FactID: k1.factID})
	c.put(k2, strategy.Outcome{FactID: k2.factID})
	if _, ok := c.get(k1); ok {
		t.Fatal("oldest entry not evicted at capacity")
	}
	if _, ok := c.get(k2); !ok {
		t.Fatal("newest entry evicted")
	}
}
