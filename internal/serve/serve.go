// Package serve is the online fact-verification service: the serving layer
// that turns the offline benchmark substrate into a request/response API
// able to answer ad-hoc "is this fact true?" queries without running a
// whole grid.
//
// A request passes through five layers, in order:
//
//  1. a per-client token-bucket rate limiter (429 + Retry-After);
//  2. a bounded admission queue — when every slot is taken the request is
//     rejected immediately with 503 + Retry-After instead of queueing
//     unboundedly (accepted requests, not goroutines, are the queue);
//  3. singleflight coalescing: N concurrent requests for the same
//     (dataset, method, model, fact) trigger exactly one verification and
//     share its outcome;
//  4. a sharded in-memory verdict LRU layered over the content-addressed
//     result store (internal/results): whole-cell snapshots hydrate the
//     LRU on first touch, and on-demand verdicts are persisted back via
//     asynchronous whole-cell fills, so the CLI, the webapp and the
//     service all share one store;
//  5. execution on a shared sched.Executor, capping verification
//     concurrency independently of how many connections were accepted.
//
// Every verdict is deterministic, so a response is byte-identical whether
// it came from the LRU, a store snapshot or a fresh verification — the
// cache layers are invisible except in latency.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"factcheck/internal/consensus"
	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/obs"
	"factcheck/internal/resilience"
	"factcheck/internal/sched"
	"factcheck/internal/search"
	"factcheck/internal/strategy"
)

// Layer latency histograms, resolved once at init so the request path
// records each layer with a single atomic add — no registry lookups, no
// locks, no allocations on the warm path. Span names match histogram
// labels one to one, so a /v1/trace breakdown and the /metricsz
// aggregates speak the same taxonomy.
var (
	ratelimitHist = obs.Layer("ratelimit")
	admitHist     = obs.Layer("admit")
	lruHist       = obs.Layer("lru")
	coalesceHist  = obs.Layer("coalesce")
	storeHist     = obs.Layer("store")
	execWaitHist  = obs.Layer("exec_wait")
	verifyHist    = obs.Layer("verify")
)

// Config parameterises the service. The zero value is filled with the
// defaults documented on each field.
type Config struct {
	// QueueDepth bounds how many requests may be admitted (queued or
	// executing) at once; further requests get 503 + Retry-After.
	// Default 64.
	QueueDepth int
	// Workers caps concurrent verifications on the shared executor,
	// independently of QueueDepth. Default: the benchmark's Parallelism.
	Workers int
	// CacheCapacity bounds the verdict LRU (entries across all shards).
	// Default 65536.
	CacheCapacity int
	// Rate and Burst configure the per-client token bucket (tokens per
	// second / bucket capacity). Defaults 50 and 100.
	Rate  float64
	Burst float64
	// RetryAfter is the hint returned with 503 responses. Default 1s.
	RetryAfter time.Duration
	// FillCells enables asynchronous whole-cell fills after an on-demand
	// verification, persisting the cell to the store for every later
	// consumer. Fills are deduplicated per cell and run one cell at a
	// time on the shared executor.
	FillCells bool
	// MaxBatch bounds /v1/verify/batch request size and the documents
	// accepted per POST /v1/documents batch. Default 64.
	MaxBatch int
	// IngestQueue bounds ingestion batches admitted but not yet folded by
	// the background builder; further batches get 503 + Retry-After.
	// Default 16.
	IngestQueue int
	// ConsensusMode is the default execution strategy for /v1/consensus
	// (overridable per request with ?mode=). Default
	// consensus.ModeAdaptive: verdicts are mode-independent, so the
	// early-stopping schedule is safe to default on.
	ConsensusMode consensus.Mode
	// TraceSample is the fraction of requests traced end to end (0 = off,
	// the default: the warm path then never touches the tracer beyond one
	// counter increment). Any request can force its own trace with an
	// `X-Server-Timing: 1` header regardless of the sample rate.
	TraceSample float64
	// TraceRing bounds finished traces retained for GET /v1/trace/{id}.
	// Default 512.
	TraceRing int
	// TraceSeed, when non-empty, derives deterministic trace IDs from the
	// request sequence number (det-hashed); otherwise IDs are random.
	TraceSeed string
	// RequestTimeout bounds each admitted request end to end: the
	// handler's context expires after it, every layer below honours the
	// context (executor handoff, singleflight waits, model calls, fault
	// stalls), and an expired verification answers 504 + Retry-After
	// instead of hanging. 0 (the default) disables the deadline — and
	// keeps the warm path free of the context allocation.
	RequestTimeout time.Duration
}

// DefaultConfig returns the production defaults (with FillCells on).
func DefaultConfig() Config {
	return Config{FillCells: true}
}

func (c *Config) fill(bench *core.Benchmark) {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = bench.Config.Parallelism
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 1 << 16
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Burst <= 0 {
		c.Burst = 100
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 16
	}
	if c.ConsensusMode == "" {
		c.ConsensusMode = consensus.ModeAdaptive
	}
}

// Service answers online verification requests over one benchmark instance
// and one result store.
type Service struct {
	bench *core.Benchmark
	store *core.Store
	cfg   Config

	cache   *verdictCache
	limiter *limiter
	exec    *sched.Executor
	admit   chan struct{}

	// voters and plan are the consensus ensemble (the configured models
	// minus the commercial arbiter) and its cost-ordered tier schedule,
	// fixed at construction so every request dispatches identically.
	voters []string
	plan   consensus.Plan

	// verify is the single-fact verification function; tests stub it to
	// count calls. Defaults to the benchmark's VerifyFact.
	verify func(context.Context, core.Cell, *dataset.Fact) (strategy.Outcome, error)

	// flight dedupes concurrent resolutions of the same verdict key.
	flightMu sync.Mutex
	flight   map[verdictKey]*call

	// filler dedupes and serialises background whole-cell fills; Drain
	// waits them out.
	filler *core.CellFiller

	// ingestCh queues admitted document batches for the background
	// builder; ingestDone closes when the builder has drained it.
	ingestCh   chan []search.IngestDoc
	ingestDone chan struct{}

	// tracer samples requests into per-layer span traces (X-Trace-Id /
	// GET /v1/trace/{id}).
	tracer *obs.Tracer

	// draining flips at drain start (StartDrain): /readyz answers 503 and
	// the admission wrapper rejects new work while in-flight requests
	// finish — readiness is the first thing to go, work admission the
	// same instant, liveness (/healthz) never.
	draining atomic.Bool

	stats serviceStats
}

// call is one in-flight verdict resolution; followers block on done and
// share the leader's result.
type call struct {
	done chan struct{}
	out  strategy.Outcome
	src  string
	err  error
}

type serviceStats struct {
	// mu makes multi-counter updates observable as a unit: writers hold it
	// shared around grouped atomic adds (concurrent writers never block
	// each other), and Stats() holds it exclusively while loading, so a
	// scrape can never see e.g. consensus_requests incremented but its
	// votes_dispatched/votes_skipped not yet added. Single-counter updates
	// skip the lock entirely.
	mu sync.RWMutex

	requests      atomic.Uint64
	rateLimited   atomic.Uint64
	queueRejected atomic.Uint64
	lruHits       atomic.Uint64
	storeHits     atomic.Uint64
	computed      atomic.Uint64
	coalesced     atomic.Uint64
	fills         atomic.Uint64

	ingestBatches  atomic.Uint64
	ingestDocs     atomic.Uint64
	ingestApplied  atomic.Uint64
	ingestRejected atomic.Uint64
	ingestSwept    atomic.Uint64

	consensusRequests    atomic.Uint64
	consensusDispatched  atomic.Uint64
	consensusSkipped     atomic.Uint64
	consensusEscalations atomic.Uint64
	consensusArbiters    atomic.Uint64
	consensusDegraded    atomic.Uint64

	// Resilience-path counters: stale verdicts served degraded, verdicts
	// refused because the dependency was unavailable with no stale copy
	// (503), requests cut off by the per-request deadline (504), ingest
	// folds retried after transient failures, and batches dropped after
	// the redelivery budget.
	degraded      atomic.Uint64
	unavailable   atomic.Uint64
	deadlines     atomic.Uint64
	ingestRetries atomic.Uint64
	ingestDropped atomic.Uint64
}

// New builds a service over a benchmark and a result store (use
// core.NewMemoryStore for a cache-only service).
func New(bench *core.Benchmark, store *core.Store, cfg Config) *Service {
	cfg.fill(bench)
	s := &Service{
		bench:   bench,
		store:   store,
		cfg:     cfg,
		cache:   newVerdictCache(cfg.CacheCapacity),
		limiter: newLimiter(cfg.Rate, cfg.Burst, time.Now),
		exec:    sched.NewExecutor(cfg.Workers),
		admit:   make(chan struct{}, cfg.QueueDepth),
		flight:  map[verdictKey]*call{},
		tracer: obs.NewTracer(obs.TracerConfig{
			Sample: cfg.TraceSample,
			Ring:   cfg.TraceRing,
			Seed:   cfg.TraceSeed,
		}),
	}
	s.exec.OnQueueWait = execWaitHist.Observe
	for _, model := range bench.Config.Models {
		if model != llm.GPT4oMini { // commercial model is an arbiter, not a voter (§3.3)
			s.voters = append(s.voters, model)
		}
	}
	s.plan = consensus.NewPlan(s.voters, llm.Cost)
	s.verify = bench.VerifyFact
	s.filler = core.NewCellFiller(s.fillCell)
	s.ingestCh = make(chan []search.IngestDoc, cfg.IngestQueue)
	s.ingestDone = make(chan struct{})
	go s.ingestLoop()
	return s
}

// ingestRedelivery bounds how many times the background builder retries a
// transiently-failing fold before dropping the batch. Acknowledged batches
// (202) should survive transient dependency hiccups, but an unfoldable
// batch must not wedge the builder forever.
const ingestRedelivery = 3

// ingestLoop is the background builder: it folds admitted document batches
// into fresh corpus epoch snapshots one at a time, then sweeps the touched
// facts' now-stale verdict-LRU entries. Admission never blocks on a fold —
// the bounded channel is the backpressure boundary — and readers never
// block at all (the engine publishes each epoch with one pointer store).
// Transient fold failures are retried up to ingestRedelivery times with a
// short doubling backoff; a batch still failing after that is dropped and
// counted, never silently lost.
func (s *Service) ingestLoop() {
	defer close(s.ingestDone)
	for docs := range s.ingestCh {
		var res search.IngestResult
		var err error
		for attempt := 0; ; attempt++ {
			res, err = s.bench.Ingest(docs)
			if err == nil || !resilience.IsTransient(err) || attempt >= ingestRedelivery {
				break
			}
			s.stats.ingestRetries.Add(1)
			time.Sleep(time.Duration(2<<attempt) * time.Millisecond)
		}
		if err != nil {
			s.stats.ingestDropped.Add(1)
			continue // batches are validated at admission; a drop means retries ran dry
		}
		var swept uint64
		for factID, epoch := range res.Epochs {
			swept += uint64(s.cache.sweepStale(factID, epoch))
		}
		s.stats.mu.RLock()
		s.stats.ingestApplied.Add(uint64(len(docs)))
		s.stats.ingestSwept.Add(swept)
		s.stats.mu.RUnlock()
	}
}

// Drain completes graceful shutdown: admitted ingestion batches are folded
// (they were acknowledged with 202, so they must not be lost), background
// cell fills still queued are discarded (a later process recomputes them),
// the fill in flight finishes and persists, then the executor stops
// (letting started verifications finish). Drain time is therefore bounded
// by the queued ingest batches plus one cell. Call after
// http.Server.Shutdown has drained the handlers — nothing may be enqueued
// once Drain runs.
func (s *Service) Drain() {
	close(s.ingestCh)
	<-s.ingestDone
	s.filler.Close()
	s.exec.Close()
}

// StartDrain marks the service draining: /readyz answers 503 + Retry-After
// (telling load balancers to route elsewhere) and the admission wrapper
// rejects new work, while requests already admitted run to completion.
// Call it the moment shutdown begins — before http.Server.Shutdown, which
// waits out the in-flight handlers — then Drain once the handlers are done.
func (s *Service) StartDrain() { s.draining.Store(true) }

// --- verdict resolution --------------------------------------------------

// verdict resolves one (cell, fact) verdict through the lookup stack:
// LRU, singleflight, store snapshot (hydrating the LRU), executor-bounded
// verification. The source tells which layer answered: "lru", "store" or
// "computed" (followers of a coalesced call inherit the leader's source).
//
// The verdict key's epoch and the store fingerprint's corpus digest are
// read from one consistent EpochView, so a concurrent ingestion can never
// pair a pre-bump fingerprint with a post-bump epoch (or vice versa):
// every layer of the stack answers for exactly one corpus version.
func (s *Service) verdict(ctx context.Context, cell core.Cell, f *dataset.Fact, idx int) (strategy.Outcome, string, error) {
	view := s.bench.Engine.EpochView()
	key := verdictKey{cell: cell, factID: f.ID, epoch: view.FactEpoch(f.ID)}
	for {
		_, endLRU := obs.StartSpan(ctx, "lru")
		lruStart := time.Now()
		out, hit := s.cache.get(key)
		lruHist.Observe(time.Since(lruStart))
		endLRU()
		if hit {
			s.stats.lruHits.Add(1)
			return out, "lru", nil
		}
		s.flightMu.Lock()
		if c, ok := s.flight[key]; ok {
			s.flightMu.Unlock()
			s.stats.coalesced.Add(1)
			_, endWait := obs.StartSpan(ctx, "coalesce")
			waitStart := time.Now()
			select {
			case <-c.done:
				coalesceHist.Observe(time.Since(waitStart))
				endWait()
				// A leader whose own client disconnected reports a context
				// error that says nothing about this follower's request: a
				// follower with a live context retries (one of them becomes
				// the new leader) instead of inheriting the 500.
				if c.err != nil && ctx.Err() == nil &&
					(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
					continue
				}
				return c.out, c.src, c.err
			case <-ctx.Done():
				coalesceHist.Observe(time.Since(waitStart))
				endWait()
				return strategy.Outcome{}, "", ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		s.flight[key] = c
		s.flightMu.Unlock()

		c.out, c.src, c.err = s.resolve(ctx, key, view, cell, f, idx)
		s.flightMu.Lock()
		delete(s.flight, key)
		s.flightMu.Unlock()
		close(c.done)
		return c.out, c.src, c.err
	}
}

// resolve is the singleflight leader's path: store probe, then verify.
// The fingerprint is derived from the same EpochView as the verdict key,
// so store snapshots only ever answer for the corpus version the caller
// read. A verification that races an epoch bump is served (it is a valid
// point-in-time answer) but not cached — its evidence may straddle epochs.
func (s *Service) resolve(ctx context.Context, key verdictKey, view search.EpochView, cell core.Cell, f *dataset.Fact, idx int) (strategy.Outcome, string, error) {
	_, endStore := obs.StartSpan(ctx, "store")
	storeStart := time.Now()
	fp := s.bench.CellKeyAt(cell, view.CorpusDigest(cell.Dataset)).Fingerprint()
	if outs, ok := s.store.Get(fp); ok && idx < len(outs) {
		s.stats.storeHits.Add(1)
		s.hydrateCell(cell, outs, view)
		storeHist.Observe(time.Since(storeStart))
		endStore()
		return outs[idx], "store", nil
	}
	storeHist.Observe(time.Since(storeStart))
	endStore()
	// exec_wait and verify are sibling spans under the caller: the wait
	// span ends the moment a worker picks the task up, where the verify
	// span begins. The exec_wait histogram is fed by the executor's own
	// OnQueueWait hook (which also covers background fill tasks), not here.
	_, endExecWait := obs.StartSpan(ctx, "exec_wait")
	var out strategy.Outcome
	err := s.exec.Do(ctx, func(ctx context.Context) error {
		endExecWait()
		vctx, endVerify := obs.StartSpan(ctx, "verify")
		verifyStart := time.Now()
		defer func() {
			verifyHist.Observe(time.Since(verifyStart))
			endVerify()
		}()
		var err error
		out, err = s.verify(vctx, cell, f)
		return err
	})
	if err != nil {
		return strategy.Outcome{}, "", err
	}
	s.stats.computed.Add(1)
	if s.bench.Engine.FactEpoch(f.ID) != key.epoch {
		return out, "computed", nil
	}
	s.cache.put(key, out)
	if s.cfg.FillCells {
		s.filler.Fill(cell)
	}
	return out, "computed", nil
}

// hydrateCell loads a whole-cell snapshot into the verdict LRU under the
// view's per-fact epochs — the epochs the snapshot's fingerprint was
// derived from — so every fact of a touched cell becomes an LRU hit.
func (s *Service) hydrateCell(cell core.Cell, outs []strategy.Outcome, view search.EpochView) {
	facts := s.bench.Datasets[cell.Dataset].Facts
	for i, out := range outs {
		if i >= len(facts) {
			break
		}
		s.cache.put(verdictKey{cell: cell, factID: facts[i].ID, epoch: view.FactEpoch(facts[i].ID)}, out)
	}
}

// fillCell verifies the rest of a cell and persists the snapshot, so one
// ad-hoc verdict warms the store for every later consumer (service, CLI,
// webapp). It runs under the shared core.CellFiller (deduped per cell, one
// at a time, failures forgotten for retry) and bounds its verification on
// the shared executor — a fill never multiplies service-wide verification
// concurrency.
func (s *Service) fillCell(cell core.Cell) error {
	view := s.bench.Engine.EpochView()
	d := s.bench.Datasets[cell.Dataset]
	outs := make([]strategy.Outcome, len(d.Facts))
	for i, f := range d.Facts {
		// Verdicts already cached under this corpus epoch are identical to
		// recomputed ones (determinism), so reuse them instead of
		// re-verifying.
		if out, ok := s.cache.get(verdictKey{cell: cell, factID: f.ID, epoch: view.FactEpoch(f.ID)}); ok {
			outs[i] = out
			continue
		}
		var out strategy.Outcome
		err := s.exec.Do(context.Background(), func(ctx context.Context) error {
			var err error
			out, err = s.verify(ctx, cell, f)
			return err
		})
		if err != nil {
			return err
		}
		outs[i] = out
	}
	// An ingestion that landed mid-fill may have split the outcomes across
	// corpus epochs; a mixed snapshot must never be persisted under the
	// pre-ingest fingerprint. Abort — the filler forgets failures, so a
	// later request refills the cell over the new epoch.
	if s.bench.Engine.CorpusDigest(cell.Dataset) != view.CorpusDigest(cell.Dataset) {
		return fmt.Errorf("serve: corpus epoch moved during fill of %s/%s/%s", cell.Dataset, cell.Method, cell.Model)
	}
	if err := s.store.Put(s.bench.CellKeyAt(cell, view.CorpusDigest(cell.Dataset)).Fingerprint(), outs); err != nil {
		return err
	}
	s.hydrateCell(cell, outs, view)
	s.stats.fills.Add(1)
	return nil
}

// --- HTTP API ------------------------------------------------------------

// VerifyRequest asks for one verdict.
type VerifyRequest struct {
	Dataset string `json:"dataset"`
	Method  string `json:"method"`
	Model   string `json:"model"`
	FactID  string `json:"fact_id"`
}

// VerdictResponse is one verdict. All fields except Source derive solely
// from the deterministic outcome, so repeated requests are byte-identical
// regardless of which layer answered.
type VerdictResponse struct {
	Dataset          string  `json:"dataset"`
	Method           string  `json:"method"`
	Model            string  `json:"model"`
	FactID           string  `json:"fact_id"`
	Verdict          string  `json:"verdict"`
	Gold             bool    `json:"gold"`
	Correct          bool    `json:"correct"`
	LatencyMS        float64 `json:"latency_ms"`
	Attempts         int     `json:"attempts"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	Explanation      string  `json:"explanation"`
	// Source is the layer that answered: "lru", "store", "computed" or
	// "degraded" (a stale verdict served because fresh resolution was
	// unavailable).
	Source string `json:"source"`
	// Degraded marks a stale verdict served under graceful degradation: the
	// model (or its circuit breaker) was unavailable and a previous epoch's
	// verdict was returned instead of an error.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchRequest asks for several verdicts in one round trip.
type BatchRequest struct {
	Requests []VerifyRequest `json:"requests"`
}

// BatchItem is one batch result: a verdict or a per-item error.
type BatchItem struct {
	Verdict *VerdictResponse `json:"verdict,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// BatchResponse mirrors BatchRequest order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// VoteItem is one model's vote in a consensus response.
type VoteItem struct {
	Model   string `json:"model"`
	Verdict string `json:"verdict"`
}

// ConsensusResponse is the DKA majority vote over the open-source models.
// Final, Tie and Gold are mode-independent: an execution strategy changes
// which votes are consulted, never what they decide. Votes, Skipped and
// LatencyMS describe the strategy that ran.
type ConsensusResponse struct {
	FactID  string     `json:"fact_id"`
	Dataset string     `json:"dataset"`
	Method  string     `json:"method"`
	Votes   []VoteItem `json:"votes"`
	Final   bool       `json:"final"`
	Tie     bool       `json:"tie"`
	Gold    bool       `json:"gold"`
	// Mode is the execution strategy that produced this decision.
	Mode string `json:"mode"`
	// Skipped lists voters the early-stop planner proved unnecessary, in
	// dispatch order (adaptive mode only).
	Skipped []string `json:"skipped,omitempty"`
	// Unavailable lists voters dropped because their dependency was down
	// (hard-down model, open circuit breaker); the decision settled over
	// the survivors. Degraded is set whenever the list is non-empty.
	Unavailable []string `json:"unavailable,omitempty"`
	Degraded    bool     `json:"degraded,omitempty"`
	// LatencyMS is the simulated decided-at latency of the consensus: the
	// per-tier critical paths actually waited on, summed.
	LatencyMS float64 `json:"latency_ms"`
}

// Stats is the /statsz payload.
type Stats struct {
	Requests      uint64 `json:"requests"`
	RateLimited   uint64 `json:"rate_limited"`
	QueueRejected uint64 `json:"queue_rejected"`
	LRUHits       uint64 `json:"lru_hits"`
	StoreHits     uint64 `json:"store_hits"`
	Computed      uint64 `json:"computed"`
	Coalesced     uint64 `json:"coalesced"`
	CellFills     uint64 `json:"cell_fills"`

	// Ingestion counters: batches and documents accepted (202), documents
	// folded into published epoch snapshots by the background builder,
	// batches rejected because the ingest queue was full (503), and stale
	// verdict-LRU entries reclaimed after epoch bumps.
	IngestBatches  uint64 `json:"ingest_batches"`
	IngestDocs     uint64 `json:"ingest_docs"`
	IngestApplied  uint64 `json:"ingest_docs_applied"`
	IngestRejected uint64 `json:"ingest_rejected"`
	IngestSwept    uint64 `json:"ingest_swept"`

	CacheLen      int `json:"cache_len"`
	CacheCapacity int `json:"cache_capacity"`
	QueueDepth    int `json:"queue_depth"`
	QueueCap      int `json:"queue_cap"`
	StoreCells    int `json:"store_cells"`
	Clients       int `json:"clients"`

	// Consensus-engine counters: requests served, votes the planner
	// dispatched vs skipped, tiers escalated past the cheap quorum, and
	// arbiter tie-breaks.
	ConsensusRequests    uint64 `json:"consensus_requests"`
	ConsensusDispatched  uint64 `json:"consensus_votes_dispatched"`
	ConsensusSkipped     uint64 `json:"consensus_votes_skipped"`
	ConsensusEscalations uint64 `json:"consensus_escalations"`
	ConsensusArbiters    uint64 `json:"consensus_arbiter_calls"`
	ConsensusDegraded    uint64 `json:"consensus_degraded"`

	// Resilience-path counters: stale verdicts served degraded, 503s for
	// unavailable dependencies with no stale copy, 504s from the request
	// deadline, and the background builder's ingest retries/drops.
	Degraded      uint64 `json:"degraded_served"`
	Unavailable   uint64 `json:"unavailable_rejected"`
	Deadlines     uint64 `json:"deadline_timeouts"`
	IngestRetries uint64 `json:"ingest_retries"`
	IngestDropped uint64 `json:"ingest_dropped"`

	// Resilience snapshots the retry counters and per-model circuit
	// breakers (zero value when no resilience policy is configured).
	Resilience resilience.Stats `json:"resilience"`

	// Retrieval mirrors the search engine's cumulative counters — cache
	// behaviour plus the pruned top-k's work accounting (queries, postings
	// touched, blocks skipped, docs scored).
	Retrieval search.Stats `json:"retrieval"`

	// Latency summarises every layer and endpoint histogram with at least
	// one observation, keyed "family/label" (e.g. "layer/lru",
	// "endpoint/verify"): count, mean and exact-at-bucket-resolution
	// p50/p95/p99 in milliseconds. /metricsz exposes the full bucket data.
	Latency map[string]obs.Summary `json:"latency,omitempty"`
}

// Stats snapshots the service counters. The counter block is loaded under
// the stats lock held exclusively, so grouped updates (consensus, ingest)
// are never observed half-applied — every scrape satisfies
// consensus_votes_dispatched + consensus_votes_skipped ==
// consensus_requests * len(voters).
func (s *Service) Stats() Stats {
	latency := obs.Default.Summaries()
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return Stats{
		Retrieval:     s.bench.Engine.Stats(),
		Latency:       latency,
		Requests:      s.stats.requests.Load(),
		RateLimited:   s.stats.rateLimited.Load(),
		QueueRejected: s.stats.queueRejected.Load(),
		LRUHits:       s.stats.lruHits.Load(),
		StoreHits:     s.stats.storeHits.Load(),
		Computed:      s.stats.computed.Load(),
		Coalesced:     s.stats.coalesced.Load(),
		CellFills:     s.stats.fills.Load(),

		IngestBatches:  s.stats.ingestBatches.Load(),
		IngestDocs:     s.stats.ingestDocs.Load(),
		IngestApplied:  s.stats.ingestApplied.Load(),
		IngestRejected: s.stats.ingestRejected.Load(),
		IngestSwept:    s.stats.ingestSwept.Load(),
		CacheLen:       s.cache.len(),
		CacheCapacity:  s.cfg.CacheCapacity,
		QueueDepth:     len(s.admit),
		QueueCap:       cap(s.admit),
		StoreCells:     s.store.Len(),
		Clients:        s.limiter.clients(),

		ConsensusRequests:    s.stats.consensusRequests.Load(),
		ConsensusDispatched:  s.stats.consensusDispatched.Load(),
		ConsensusSkipped:     s.stats.consensusSkipped.Load(),
		ConsensusEscalations: s.stats.consensusEscalations.Load(),
		ConsensusArbiters:    s.stats.consensusArbiters.Load(),
		ConsensusDegraded:    s.stats.consensusDegraded.Load(),

		Degraded:      s.stats.degraded.Load(),
		Unavailable:   s.stats.unavailable.Load(),
		Deadlines:     s.stats.deadlines.Load(),
		IngestRetries: s.stats.ingestRetries.Load(),
		IngestDropped: s.stats.ingestDropped.Load(),
		Resilience:    s.bench.Resilience.Stats(),
	}
}

// Handler returns the service's HTTP handler:
//
//	POST /v1/verify                                    -> VerdictResponse
//	POST /v1/verify/batch                              -> BatchResponse
//	POST /v1/documents                                 -> IngestResponse (202; async fold)
//	GET  /v1/verdict/{dataset}/{method}/{model}/{fact} -> VerdictResponse (no compute; 404 when absent)
//	GET  /v1/consensus/{fact}[?mode=serial|eager|adaptive] -> ConsensusResponse
//	GET  /v1/facts                                     -> fact IDs per dataset
//	GET  /v1/trace/{id}                                -> one sampled trace's spans
//	GET  /healthz (liveness), GET /readyz (readiness; 503 while draining)
//	GET  /statsz, GET /metricsz
//
// Verification and ingestion endpoints sit behind the rate limiter and
// admission queue; health, stats, metrics, traces and fact listing bypass
// both (an observability scrape must never consume serving capacity).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.admitted("verify", s.handleVerify))
	mux.HandleFunc("POST /v1/verify/batch", s.admitted("verify_batch", s.handleBatch))
	mux.HandleFunc("POST /v1/documents", s.admitted("documents", s.handleIngest))
	mux.HandleFunc("GET /v1/verdict/{dataset}/{method}/{model}/{fact}", s.admitted("verdict", s.handleVerdict))
	mux.HandleFunc("GET /v1/consensus/{fact}", s.admitted("consensus", s.handleConsensus))
	mux.HandleFunc("GET /v1/facts", s.handleFacts)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	// /healthz is liveness (the process is up — always 200 while serving,
	// even mid-drain); /readyz is readiness (the process wants traffic —
	// flips to 503 the instant draining starts, before any in-flight
	// request finishes, so load balancers stop routing here first).
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(s.cfg.RetryAfter)))
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metricsz", s.handleMetrics)
	return mux
}

// clientID keys the rate limiter: an explicit X-Client-ID header when the
// caller provides one, else the connection's source address.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func retrySeconds(d time.Duration) int {
	sec := int(math.Ceil(d.Seconds()))
	if sec < 1 {
		sec = 1
	}
	return sec
}

// timingWriter injects the trace's Server-Timing header just before the
// first byte of the response goes out — by then every layer span has
// closed (handlers do all their work before writing), so the header
// carries the request's own top-level breakdown. Only traced requests pay
// for the wrapper.
type timingWriter struct {
	http.ResponseWriter
	tr    *obs.Trace
	wrote bool
}

func (w *timingWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		if st := w.tr.ServerTiming(); st != "" {
			w.ResponseWriter.Header().Set("Server-Timing", st)
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *timingWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// forceTraceHeader lets any single request opt into tracing regardless of
// the sample rate (loadgen's -server-timing mode sets it on every
// request). The response then carries X-Trace-Id and Server-Timing.
const forceTraceHeader = "X-Server-Timing"

// admitted wraps a handler with the rate limiter (429) and the bounded
// admission queue (503): the two backpressure layers every verification
// endpoint sits behind. An admitted request holds its queue slot until the
// handler returns, so QueueDepth bounds queued-plus-executing requests and
// nothing ever waits unboundedly.
//
// The wrapper is also the observability root: it times the whole request
// into the endpoint's histogram, starts the per-request trace when
// sampling (or the force header) selects it, and records the ratelimit
// and admit layers. An unsampled request pays one atomic sequence
// increment and two clock reads — no allocations.
func (s *Service) admitted(endpoint string, next http.HandlerFunc) http.HandlerFunc {
	endpointHist := obs.Endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, tr := s.tracer.Start(r.Context(), "request", r.Header.Get(forceTraceHeader) == "1")
		if tr != nil {
			w.Header().Set("X-Trace-Id", tr.ID())
			w = &timingWriter{ResponseWriter: w, tr: tr}
			r = r.WithContext(ctx)
			defer s.tracer.Finish(tr)
		}
		defer func() { endpointHist.Observe(time.Since(start)) }()

		s.stats.requests.Add(1)
		if s.draining.Load() {
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(s.cfg.RetryAfter)))
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		_, endRL := obs.StartSpan(ctx, "ratelimit")
		rlStart := time.Now()
		ok, wait := s.limiter.allow(clientID(r))
		ratelimitHist.Observe(time.Since(rlStart))
		endRL()
		if !ok {
			s.stats.rateLimited.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(wait)))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		_, endAdmit := obs.StartSpan(ctx, "admit")
		admitStart := time.Now()
		select {
		case s.admit <- struct{}{}:
			admitHist.Observe(time.Since(admitStart))
			endAdmit()
			defer func() { <-s.admit }()
		default:
			admitHist.Observe(time.Since(admitStart))
			endAdmit()
			s.stats.queueRejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(s.cfg.RetryAfter)))
			httpError(w, http.StatusServiceUnavailable, "admission queue full")
			return
		}
		if s.cfg.RequestTimeout > 0 {
			tctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(tctx)
		}
		next(w, r)
	}
}

// apiError pairs a message with its HTTP status and an optional
// Retry-After hint (seconds; 0 = none). Every retryable rejection — 429,
// 503, 504 — carries the hint, so a well-behaved client never has to guess
// a backoff.
type apiError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

// writeError renders an apiError, setting Retry-After when the error
// carries a hint.
func (s *Service) writeError(w http.ResponseWriter, aerr *apiError) {
	if aerr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(aerr.retryAfter))
	}
	httpError(w, aerr.status, aerr.msg)
}

// classifyError maps a resolution failure to its API error. The taxonomy
// is the resilience stack's contract with clients:
//
//   - the request deadline expired → 504 + Retry-After (the work was cut
//     off, not wrong; a retry may hit a warm cache);
//   - a dependency is unavailable (model hard-down, circuit open) →
//     503 + Retry-After (callers with a stale verdict to fall back on
//     handle this case before classifying);
//   - a transient failure exhausted its retries → 503 + Retry-After, not
//     500: the next attempt is as likely as any to succeed, and under
//     injected fault rates a 500 here would make error budgets
//     probabilistic instead of contractual;
//   - anything else is a genuine server error → 500.
func (s *Service) classifyError(err error) *apiError {
	ra := retrySeconds(s.cfg.RetryAfter)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.deadlines.Add(1)
		return &apiError{status: http.StatusGatewayTimeout, retryAfter: ra,
			msg: "request deadline exceeded: " + err.Error()}
	case resilience.IsUnavailable(err):
		s.stats.unavailable.Add(1)
		return &apiError{status: http.StatusServiceUnavailable, retryAfter: ra,
			msg: "dependency unavailable: " + err.Error()}
	case resilience.IsTransient(err):
		return &apiError{status: http.StatusServiceUnavailable, retryAfter: ra,
			msg: "transient failure: " + err.Error()}
	}
	return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
}

// parseTarget validates the request coordinates and resolves the fact.
func (s *Service) parseTarget(req VerifyRequest) (core.Cell, *dataset.Fact, int, *apiError) {
	dn := dataset.Name(req.Dataset)
	d, ok := s.bench.Datasets[dn]
	if !ok {
		return core.Cell{}, nil, 0, &apiError{status: http.StatusNotFound, msg: "unknown dataset " + req.Dataset}
	}
	method := llm.Method(req.Method)
	okMethod := false
	for _, m := range s.bench.Config.Methods {
		if m == method {
			okMethod = true
			break
		}
	}
	if !okMethod {
		return core.Cell{}, nil, 0, &apiError{status: http.StatusBadRequest, msg: "unknown method " + req.Method}
	}
	okModel := false
	for _, m := range s.bench.Config.Models {
		if m == req.Model {
			okModel = true
			break
		}
	}
	if !okModel {
		return core.Cell{}, nil, 0, &apiError{status: http.StatusNotFound, msg: "unknown model " + req.Model}
	}
	idx, ok := s.bench.FactIndex(dn)[req.FactID]
	if !ok {
		return core.Cell{}, nil, 0, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown fact %s in dataset %s", req.FactID, req.Dataset)}
	}
	return core.Cell{Dataset: dn, Method: method, Model: req.Model}, d.Facts[idx], idx, nil
}

func verdictResponse(cell core.Cell, out strategy.Outcome, source string) *VerdictResponse {
	return &VerdictResponse{
		Dataset:          string(cell.Dataset),
		Method:           string(cell.Method),
		Model:            cell.Model,
		FactID:           out.FactID,
		Verdict:          out.Verdict.String(),
		Gold:             out.Gold,
		Correct:          out.Correct,
		LatencyMS:        float64(out.Latency) / float64(time.Millisecond),
		Attempts:         out.Attempts,
		PromptTokens:     out.PromptTokens,
		CompletionTokens: out.CompletionTokens,
		Explanation:      out.Explanation,
		Source:           source,
	}
}

// maxBodyBytes caps request bodies: the backpressure contract bounds
// memory end to end, so the decoder must not materialise an arbitrarily
// large body before validation runs. 1 MiB fits any legal batch with room
// to spare.
const maxBodyBytes = 1 << 20

// decodeBody decodes a JSON request body under maxBodyBytes, mapping an
// oversized body to 413 and malformed JSON to 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return &apiError{status: http.StatusBadRequest, msg: "malformed request body: " + err.Error()}
	}
	return nil
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if aerr := decodeBody(w, r, &req); aerr != nil {
		httpError(w, aerr.status, aerr.msg)
		return
	}
	resp, aerr := s.resolveOne(r.Context(), req)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveOne runs one VerifyRequest through validation and the verdict
// stack, mapping failures to API errors.
func (s *Service) resolveOne(ctx context.Context, req VerifyRequest) (*VerdictResponse, *apiError) {
	cell, f, idx, aerr := s.parseTarget(req)
	if aerr != nil {
		return nil, aerr
	}
	out, source, err := s.verdict(ctx, cell, f, idx)
	if err != nil {
		// Degraded serving: when the dependency is unavailable (not merely
		// slow or failing transiently), a stale verdict beats no verdict —
		// verdicts are deterministic per corpus epoch, so "stale" means "for
		// an earlier corpus", not "possibly wrong". The response is marked so
		// clients can tell.
		if resilience.IsUnavailable(err) {
			if stale, ok := s.cache.getStale(cell, f.ID); ok {
				s.stats.degraded.Add(1)
				resp := verdictResponse(cell, stale, "degraded")
				resp.Degraded = true
				return resp, nil
			}
		}
		return nil, s.classifyError(err)
	}
	return verdictResponse(cell, out, source), nil
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if aerr := decodeBody(w, r, &req); aerr != nil {
		httpError(w, aerr.status, aerr.msg)
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}
	// The admission middleware charged one token; a batch is one request
	// but len verifications, so charge the remainder — otherwise batching
	// would multiply a client's effective rate by MaxBatch.
	if extra := len(req.Requests) - 1; extra > 0 {
		if float64(len(req.Requests)) > s.cfg.Burst {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d exceeds the per-client burst capacity %g", len(req.Requests), s.cfg.Burst))
			return
		}
		if ok, wait := s.limiter.allowN(clientID(r), float64(extra)); !ok {
			s.stats.rateLimited.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(wait)))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
	}
	// Items fan out concurrently — the executor already caps how many
	// verifications actually run at once, so a cold batch costs ~(k /
	// workers) verification latencies instead of k serial ones. Writes
	// are index-addressed, so result order mirrors request order.
	resp := BatchResponse{Results: make([]BatchItem, len(req.Requests))}
	var wg sync.WaitGroup
	for i, item := range req.Requests {
		wg.Add(1)
		go func(i int, item VerifyRequest) {
			defer wg.Done()
			v, aerr := s.resolveOne(r.Context(), item)
			if aerr != nil {
				resp.Results[i] = BatchItem{Error: aerr.msg}
				return
			}
			resp.Results[i] = BatchItem{Verdict: v}
		}(i, item)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

// IngestRequest appends live documents to their facts' retrieval pools.
type IngestRequest struct {
	Documents []search.IngestDoc `json:"documents"`
}

// IngestResponse acknowledges an admitted ingestion batch. Folding is
// asynchronous: the batch is queued for the background builder, which
// publishes one fresh epoch snapshot covering it; /statsz exposes applied
// counters and the engine's epoch.
type IngestResponse struct {
	Queued int `json:"queued"`
}

// handleIngest admits one document batch into the background builder's
// queue. The write path shares the read path's backpressure contract:
// rate limiting (429) and admission (503) via the middleware, 413 on
// oversized bodies, plus a bounded builder queue (503 + Retry-After when
// full). Unknown facts are rejected whole-batch with 404 before anything
// is queued, so an acknowledged batch always folds.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if aerr := decodeBody(w, r, &req); aerr != nil {
		httpError(w, aerr.status, aerr.msg)
		return
	}
	if len(req.Documents) == 0 {
		httpError(w, http.StatusBadRequest, "empty document batch")
		return
	}
	if len(req.Documents) > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d documents exceeds limit %d", len(req.Documents), s.cfg.MaxBatch))
		return
	}
	for _, d := range req.Documents {
		if _, ok := s.bench.FactByID(d.FactID); !ok {
			httpError(w, http.StatusNotFound, "unknown fact "+d.FactID)
			return
		}
	}
	select {
	case s.ingestCh <- req.Documents:
		s.stats.mu.RLock()
		s.stats.ingestBatches.Add(1)
		s.stats.ingestDocs.Add(uint64(len(req.Documents)))
		s.stats.mu.RUnlock()
		writeJSON(w, http.StatusAccepted, IngestResponse{Queued: len(req.Documents)})
	default:
		s.stats.ingestRejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(s.cfg.RetryAfter)))
		httpError(w, http.StatusServiceUnavailable, "ingest queue full")
	}
}

// handleVerdict is the read-only lookup: it answers from the LRU or a
// store snapshot and never verifies — a miss is 404 (POST /v1/verify to
// compute).
func (s *Service) handleVerdict(w http.ResponseWriter, r *http.Request) {
	req := VerifyRequest{
		Dataset: r.PathValue("dataset"),
		Method:  r.PathValue("method"),
		Model:   r.PathValue("model"),
		FactID:  r.PathValue("fact"),
	}
	cell, f, idx, aerr := s.parseTarget(req)
	if aerr != nil {
		httpError(w, aerr.status, aerr.msg)
		return
	}
	view := s.bench.Engine.EpochView()
	key := verdictKey{cell: cell, factID: f.ID, epoch: view.FactEpoch(f.ID)}
	if out, ok := s.cache.get(key); ok {
		s.stats.lruHits.Add(1)
		writeJSON(w, http.StatusOK, verdictResponse(cell, out, "lru"))
		return
	}
	if outs, ok := s.store.Get(s.bench.CellKeyAt(cell, view.CorpusDigest(cell.Dataset)).Fingerprint()); ok && idx < len(outs) {
		s.stats.storeHits.Add(1)
		s.hydrateCell(cell, outs, view)
		writeJSON(w, http.StatusOK, verdictResponse(cell, outs[idx], "store"))
		return
	}
	httpError(w, http.StatusNotFound, "verdict not computed; POST /v1/verify to compute it")
}

// handleConsensus answers the DKA majority vote of the open-source models
// (the paper's §3.3 consensus without arbitration; ties are reported).
// ?mode=serial|eager|adaptive overrides the configured execution strategy.
func (s *Service) handleConsensus(w http.ResponseWriter, r *http.Request) {
	mode := s.cfg.ConsensusMode
	if q := r.URL.Query().Get("mode"); q != "" {
		m, err := consensus.ParseMode(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		mode = m
	}
	// A voterless service can never answer: reject before any token beyond
	// the admission charge is debited, so a misconfigured server does not
	// bill clients for work it will never run.
	if len(s.voters) == 0 {
		httpError(w, http.StatusUnprocessableEntity, "no open-source models configured for consensus")
		return
	}
	// One consensus answer is up to len(voters) verifications; the
	// middleware charged one token, charge the remainder up front. The
	// charge is plan-independent — adaptive pays for skipped votes too —
	// so a client's throttling never depends on how facts happened to
	// vote. A burst smaller than the voter count could never be satisfied:
	// surface the misconfiguration instead of an eternal 429.
	if float64(len(s.voters)) > s.cfg.Burst {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("consensus requires %d verifications, exceeding the per-client burst capacity %g",
				len(s.voters), s.cfg.Burst))
		return
	}
	if extra := len(s.voters) - 1; extra > 0 {
		if ok, wait := s.limiter.allowN(clientID(r), float64(extra)); !ok {
			s.stats.rateLimited.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(wait)))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
	}
	resp, err := s.Consensus(r.Context(), r.PathValue("fact"), mode)
	if err != nil {
		var aerr *apiError
		if errors.As(err, &aerr) {
			s.writeError(w, aerr)
			return
		}
		s.writeError(w, s.classifyError(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Consensus decides one fact through the §3.3 consensus engine under the
// given mode. Per-voter votes resolve through the same verdict stack as
// /v1/verify (LRU, singleflight, store snapshots, executor-bounded
// verification) and fan out concurrently within each tier, so concurrent
// consensus requests for one fact coalesce per (cell, fact) vote. Rate
// limiting and admission are the HTTP handler's business, not this
// method's.
func (s *Service) Consensus(ctx context.Context, factID string, mode consensus.Mode) (*ConsensusResponse, error) {
	f, ok := s.bench.FactByID(factID)
	if !ok {
		return nil, &apiError{status: http.StatusNotFound, msg: "unknown fact " + factID}
	}
	idx, ok := s.bench.FactIndex(f.Dataset)[factID]
	if !ok {
		return nil, &apiError{status: http.StatusNotFound, msg: "unknown fact " + factID}
	}
	eng := &consensus.Engine{Plan: s.plan, Mode: mode, AllowTie: true, Degrade: true}
	fetch := func(ctx context.Context, model string) (strategy.Outcome, error) {
		cell := core.Cell{Dataset: f.Dataset, Method: llm.MethodDKA, Model: model}
		out, _, err := s.verdict(ctx, cell, f, idx)
		return out, err
	}
	dec, st, err := eng.Decide(ctx, f, fetch)
	if err != nil {
		return nil, err
	}
	// Grouped under the stats lock (shared): a /statsz scrape sees this
	// request's five counters land together or not at all.
	s.stats.mu.RLock()
	s.stats.consensusRequests.Add(1)
	s.stats.consensusDispatched.Add(uint64(st.Dispatched))
	s.stats.consensusSkipped.Add(uint64(st.Skipped))
	s.stats.consensusEscalations.Add(uint64(st.Escalations))
	s.stats.consensusArbiters.Add(uint64(st.ArbiterCalls))
	if len(dec.Unavailable) > 0 {
		s.stats.consensusDegraded.Add(1)
	}
	s.stats.mu.RUnlock()
	resp := &ConsensusResponse{
		FactID:      factID,
		Dataset:     string(f.Dataset),
		Method:      string(llm.MethodDKA),
		Final:       dec.Final,
		Tie:         dec.Tie,
		Gold:        f.Gold,
		Mode:        string(mode),
		Skipped:     dec.Skipped,
		Unavailable: dec.Unavailable,
		Degraded:    len(dec.Unavailable) > 0,
		LatencyMS:   dec.LatencySeconds * 1000,
	}
	for _, v := range dec.Votes {
		resp.Votes = append(resp.Votes, VoteItem{Model: v.Model, Verdict: v.Verdict.String()})
	}
	return resp, nil
}

func (s *Service) handleFacts(w http.ResponseWriter, _ *http.Request) {
	byDataset := map[string][]string{}
	for _, dn := range s.bench.Config.Datasets {
		d := s.bench.Datasets[dn]
		ids := make([]string, len(d.Facts))
		for i, f := range d.Facts {
			ids[i] = f.ID
		}
		byDataset[string(dn)] = ids
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": byDataset})
}

// handleTrace serves one retained trace's spans by ID (the X-Trace-Id a
// sampled response carried). Traces age out of the bounded ring.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	out, ok := s.tracer.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "trace not found (unsampled, or evicted from the ring)")
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics renders every /statsz counter plus the layer and endpoint
// latency histograms in Prometheus text format. Counters follow the
// factcheck_<name>_total convention; point-in-time values (cache sizes,
// queue depth, corpus epoch) are gauges; the latency families are
// factcheck_{layer,endpoint}_latency_seconds with power-of-two buckets.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	p.Info("factcheck_build_info", "Build identity of the serving process.",
		"go_version", runtime.Version(), "consensus_mode", string(s.cfg.ConsensusMode))

	p.Counter("factcheck_requests_total", "Requests reaching the admission middleware.", st.Requests)
	p.Counter("factcheck_rate_limited_total", "Requests rejected by the per-client token bucket (429).", st.RateLimited)
	p.Counter("factcheck_queue_rejected_total", "Requests rejected by the full admission queue (503).", st.QueueRejected)
	p.Counter("factcheck_lru_hits_total", "Verdicts answered by the in-memory LRU.", st.LRUHits)
	p.Counter("factcheck_store_hits_total", "Verdicts answered by a result-store snapshot.", st.StoreHits)
	p.Counter("factcheck_computed_total", "Verdicts computed by fresh verification.", st.Computed)
	p.Counter("factcheck_coalesced_total", "Requests that joined an in-flight identical resolution.", st.Coalesced)
	p.Counter("factcheck_cell_fills_total", "Background whole-cell fills persisted.", st.CellFills)

	p.Counter("factcheck_ingest_batches_total", "Document batches accepted (202).", st.IngestBatches)
	p.Counter("factcheck_ingest_docs_total", "Documents accepted for ingestion.", st.IngestDocs)
	p.Counter("factcheck_ingest_docs_applied_total", "Documents folded into published epoch snapshots.", st.IngestApplied)
	p.Counter("factcheck_ingest_rejected_total", "Batches rejected because the ingest queue was full (503).", st.IngestRejected)
	p.Counter("factcheck_ingest_swept_total", "Stale verdict-LRU entries reclaimed after epoch bumps.", st.IngestSwept)

	p.Counter("factcheck_consensus_requests_total", "Consensus decisions served.", st.ConsensusRequests)
	p.Counter("factcheck_consensus_votes_dispatched_total", "Voter verifications the consensus planner dispatched.", st.ConsensusDispatched)
	p.Counter("factcheck_consensus_votes_skipped_total", "Voter verifications the early-stop planner proved unnecessary.", st.ConsensusSkipped)
	p.Counter("factcheck_consensus_escalations_total", "Consensus tiers dispatched beyond the cheap quorum.", st.ConsensusEscalations)
	p.Counter("factcheck_consensus_arbiter_calls_total", "Arbiter tie-breaks.", st.ConsensusArbiters)
	p.Counter("factcheck_consensus_degraded_total", "Consensus decisions settled over a partial ensemble.", st.ConsensusDegraded)

	p.Counter("factcheck_degraded_served_total", "Stale verdicts served because fresh resolution was unavailable.", st.Degraded)
	p.Counter("factcheck_unavailable_total", "Verdicts refused 503: dependency unavailable, no stale copy.", st.Unavailable)
	p.Counter("factcheck_deadline_timeouts_total", "Requests cut off by the per-request deadline (504).", st.Deadlines)
	p.Counter("factcheck_ingest_retries_total", "Transiently-failed ingest folds retried by the background builder.", st.IngestRetries)
	p.Counter("factcheck_ingest_dropped_total", "Ingest batches dropped after the redelivery budget.", st.IngestDropped)
	p.Counter("factcheck_retries_total", "Model-call retry attempts after transient failures.", st.Resilience.Retries)
	p.Counter("factcheck_retry_recovered_total", "Model calls that succeeded on a retry attempt.", st.Resilience.Recovered)
	p.Counter("factcheck_retry_exhausted_total", "Model calls that failed every retry attempt.", st.Resilience.Exhausted)

	// Per-model circuit-breaker families, sorted by model for deterministic
	// exposition. State encodes closed=0, open=1, half-open=2.
	if n := len(st.Resilience.Breakers); n > 0 {
		models := make([]string, 0, n)
		for m := range st.Resilience.Breakers {
			models = append(models, m)
		}
		sort.Strings(models)
		vec := func(f func(resilience.BreakerStats) float64) []obs.Labeled {
			vals := make([]obs.Labeled, len(models))
			for i, m := range models {
				vals[i] = obs.Labeled{Label: m, Value: f(st.Resilience.Breakers[m])}
			}
			return vals
		}
		p.GaugeVec("factcheck_breaker_state", "Circuit state per model: 0 closed, 1 open, 2 half-open.", "model",
			vec(func(b resilience.BreakerStats) float64 { return float64(breakerStateNum(b.State)) }))
		p.CounterVec("factcheck_breaker_opens_total", "Closed/half-open to open transitions per model.", "model",
			vec(func(b resilience.BreakerStats) float64 { return float64(b.Opens) }))
		p.CounterVec("factcheck_breaker_half_opens_total", "Open to half-open transitions per model.", "model",
			vec(func(b resilience.BreakerStats) float64 { return float64(b.HalfOpens) }))
		p.CounterVec("factcheck_breaker_closes_total", "Half-open to closed transitions per model.", "model",
			vec(func(b resilience.BreakerStats) float64 { return float64(b.Closes) }))
		p.CounterVec("factcheck_breaker_rejected_total", "Calls rejected by an open breaker per model.", "model",
			vec(func(b resilience.BreakerStats) float64 { return float64(b.Rejected) }))
		p.CounterVec("factcheck_breaker_probes_total", "Half-open probe calls admitted per model.", "model",
			vec(func(b resilience.BreakerStats) float64 { return float64(b.Probes) }))
	}

	p.Gauge("factcheck_cache_len", "Verdict LRU entries.", float64(st.CacheLen))
	p.Gauge("factcheck_cache_capacity", "Verdict LRU capacity.", float64(st.CacheCapacity))
	p.Gauge("factcheck_queue_depth", "Admission queue slots in use.", float64(st.QueueDepth))
	p.Gauge("factcheck_queue_cap", "Admission queue capacity.", float64(st.QueueCap))
	p.Gauge("factcheck_store_cells", "Result-store cell snapshots.", float64(st.StoreCells))
	p.Gauge("factcheck_clients", "Rate-limiter client buckets alive.", float64(st.Clients))

	r := st.Retrieval
	p.Gauge("factcheck_retrieval_facts", "Facts known to the search engine.", float64(r.Facts))
	p.Gauge("factcheck_retrieval_cached_facts", "Facts with materialised index shards.", float64(r.CachedFacts))
	p.Gauge("factcheck_retrieval_indexed_docs", "Documents in materialised shards.", float64(r.IndexedDocs))
	p.Gauge("factcheck_retrieval_postings", "Postings in materialised shards.", float64(r.Postings))
	p.Counter("factcheck_retrieval_hits_total", "Search-engine shard cache hits.", uint64(r.Hits))
	p.Counter("factcheck_retrieval_misses_total", "Search-engine shard cache misses.", uint64(r.Misses))
	p.Counter("factcheck_retrieval_evicted_total", "Shards evicted from the search-engine cache.", uint64(r.Evicted))
	p.Gauge("factcheck_retrieval_epoch", "Corpus snapshot publication sequence number.", float64(r.Epoch))
	p.Gauge("factcheck_retrieval_ingested_docs", "Live-ingested documents across all facts.", float64(r.IngestedDocs))
	p.Gauge("factcheck_retrieval_cached_query_vecs", "Entries in the per-epoch query-vector memo.", float64(r.CachedQueryVecs))
	p.Counter("factcheck_retrieval_search_queries_total", "Search calls served by the pruned top-k path.", uint64(r.SearchQueries))
	p.Counter("factcheck_retrieval_postings_touched_total", "Postings read by the pruned top-k path.", uint64(r.PostingsTouched))
	p.Counter("factcheck_retrieval_blocks_skipped_total", "Posting blocks skipped by max-score pruning.", uint64(r.BlocksSkipped))
	p.Counter("factcheck_retrieval_docs_scored_total", "Documents fully scored by the pruned top-k path.", uint64(r.DocsScored))

	obs.Default.WriteProm(p)
}

// breakerStateNum maps a breaker state name to its gauge encoding.
func breakerStateNum(state string) int {
	switch state {
	case resilience.Open.String():
		return 1
	case resilience.HalfOpen.String():
		return 2
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
