package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/obs"
	"factcheck/internal/strategy"
)

// TestTraceEndToEnd: a cold verify under full sampling must return an
// X-Trace-Id whose /v1/trace payload shows the whole layer stack —
// ratelimit, admit, lru, store, exec_wait and verify under one root — with
// child durations summing to no more than the root's.
func TestTraceEndToEnd(t *testing.T) {
	cfg := permissive()
	cfg.TraceSample = 1
	cfg.TraceSeed = "trace-test"
	svc := newTestService(t, cfg)
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)

	w := postVerify(t, h, VerifyRequest{
		Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA),
		Model: llm.Gemma2, FactID: f.ID,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("verify: %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Trace-Id")
	if id == "" {
		t.Fatal("sampled response carries no X-Trace-Id")
	}
	if st := w.Header().Get("Server-Timing"); !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing %q missing total", st)
	}

	tw := httptest.NewRecorder()
	h.ServeHTTP(tw, httptest.NewRequest("GET", "/v1/trace/"+id, nil))
	if tw.Code != http.StatusOK {
		t.Fatalf("trace fetch: %d: %s", tw.Code, tw.Body.String())
	}
	var out obs.TraceOut
	if err := json.Unmarshal(tw.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != id {
		t.Errorf("trace id %q != header %q", out.TraceID, id)
	}
	if len(out.Spans) == 0 || out.Spans[0].Name != "request" || out.Spans[0].Parent != -1 {
		t.Fatalf("malformed root: %+v", out.Spans)
	}
	children := map[string]bool{}
	var childSum float64
	for _, sp := range out.Spans[1:] {
		if sp.Parent == 0 {
			children[sp.Name] = true
			childSum += sp.DurUS
		}
	}
	for _, want := range []string{"ratelimit", "admit", "lru", "store", "exec_wait", "verify"} {
		if !children[want] {
			t.Errorf("cold verify trace missing %q layer span (got %v)", want, children)
		}
	}
	if len(children) < 6 {
		t.Errorf("cold verify trace has %d layer spans, want >= 6", len(children))
	}
	if root := out.Spans[0].DurUS; childSum > root {
		t.Errorf("child spans sum to %.1fus, exceeding root %.1fus", childSum, root)
	}

	// An unknown trace ID is a clean 404.
	nw := httptest.NewRecorder()
	h.ServeHTTP(nw, httptest.NewRequest("GET", "/v1/trace/deadbeef", nil))
	if nw.Code != http.StatusNotFound {
		t.Errorf("unknown trace: %d, want 404", nw.Code)
	}
}

// TestForceTraceHeader: with sampling off, X-Server-Timing: 1 must still
// produce a per-request trace and Server-Timing breakdown, and a plain
// request must not.
func TestForceTraceHeader(t *testing.T) {
	svc := newTestService(t, permissive()) // TraceSample 0
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	body := fmt.Sprintf(`{"dataset":%q,"method":%q,"model":%q,"fact_id":%q}`,
		dataset.FactBench, llm.MethodDKA, llm.Gemma2, f.ID)

	r := httptest.NewRequest("POST", "/v1/verify", strings.NewReader(body))
	r.Header.Set(forceTraceHeader, "1")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("forced verify: %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("X-Trace-Id") == "" {
		t.Error("forced request carries no X-Trace-Id")
	}
	if st := w.Header().Get("Server-Timing"); !strings.Contains(st, "lru;dur=") {
		t.Errorf("Server-Timing %q missing layer breakdown", st)
	}

	w2 := postVerify(t, h, VerifyRequest{
		Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA),
		Model: llm.Gemma2, FactID: f.ID,
	})
	if w2.Header().Get("X-Trace-Id") != "" {
		t.Error("unsampled request unexpectedly traced")
	}
}

// TestMetricszExposition: /metricsz must parse under the package's own
// strict linter and expose every /statsz counter plus the layer
// histograms.
func TestMetricszExposition(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	postVerify(t, h, VerifyRequest{
		Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA),
		Model: llm.Gemma2, FactID: f.ID,
	})

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metricsz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metricsz: %d", w.Code)
	}
	body := w.Body.String()
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails lint: %v", err)
	}
	for _, want := range []string{
		"factcheck_build_info{",
		"factcheck_requests_total ",
		"factcheck_rate_limited_total ",
		"factcheck_queue_rejected_total ",
		"factcheck_lru_hits_total ",
		"factcheck_store_hits_total ",
		"factcheck_computed_total ",
		"factcheck_coalesced_total ",
		"factcheck_cell_fills_total ",
		"factcheck_ingest_batches_total ",
		"factcheck_ingest_docs_total ",
		"factcheck_ingest_docs_applied_total ",
		"factcheck_ingest_rejected_total ",
		"factcheck_ingest_swept_total ",
		"factcheck_consensus_requests_total ",
		"factcheck_consensus_votes_dispatched_total ",
		"factcheck_consensus_votes_skipped_total ",
		"factcheck_consensus_escalations_total ",
		"factcheck_consensus_arbiter_calls_total ",
		"factcheck_cache_len ",
		"factcheck_queue_cap ",
		"factcheck_retrieval_search_queries_total ",
		"factcheck_retrieval_blocks_skipped_total ",
		`factcheck_layer_latency_seconds_bucket{layer="lru",le=`,
		`factcheck_layer_latency_seconds_count{layer="verify"}`,
		`factcheck_endpoint_latency_seconds_count{endpoint="verify"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStatszLatencySection: /statsz grows a latency map keyed
// family/label while keeping every existing field.
func TestStatszLatencySection(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	h := svc.Handler()
	f := firstFact(dataset.FactBench)
	postVerify(t, h, VerifyRequest{
		Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA),
		Model: llm.Gemma2, FactID: f.ID,
	})
	st := svc.Stats()
	if st.Latency == nil {
		t.Fatal("stats carry no latency section")
	}
	lru, ok := st.Latency["layer/lru"]
	if !ok {
		t.Fatalf("latency section missing layer/lru: %v", st.Latency)
	}
	if lru.Count == 0 || lru.P99MS < lru.P50MS {
		t.Errorf("implausible lru summary: %+v", lru)
	}
	if _, ok := st.Latency["endpoint/verify"]; !ok {
		t.Errorf("latency section missing endpoint/verify: %v", st.Latency)
	}
}

// TestStatsConsistencyUnderLoad hammers Stats() concurrently with
// consensus and ingest traffic and asserts the grouped counters are never
// observed half-applied: every scrape satisfies dispatched + skipped ==
// requests * len(voters). Run under -race this also exercises the
// snapshot path for data races.
func TestStatsConsistencyUnderLoad(t *testing.T) {
	cfg := permissive()
	cfg.ConsensusMode = "adaptive"
	svc := newTestService(t, cfg)
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	voters := uint64(len(svc.voters))
	if voters == 0 {
		t.Skip("no voters in test benchmark")
	}
	facts := testBench().Datasets[dataset.FactBench].Facts

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				f := facts[(g*31+i)%len(facts)]
				if _, err := svc.Consensus(context.Background(), f.ID, svc.cfg.ConsensusMode); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		st := svc.Stats()
		if got, want := st.ConsensusDispatched+st.ConsensusSkipped, st.ConsensusRequests*voters; got != want {
			t.Errorf("scrape %d: dispatched %d + skipped %d = %d, want requests %d * voters %d = %d",
				i, st.ConsensusDispatched, st.ConsensusSkipped, got, st.ConsensusRequests, voters, want)
			break
		}
		if st.IngestDocs < st.IngestBatches {
			t.Errorf("scrape %d: ingest docs %d < batches %d", i, st.IngestDocs, st.IngestBatches)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestWarmVerdictZeroAlloc: with tracing unsampled (the default), an
// LRU-hit verdict must not allocate — the instrumentation (histogram
// record, span probe) rides the warm path for free.
func TestWarmVerdictZeroAlloc(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	f := firstFact(dataset.FactBench)
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}
	idx := testBench().FactIndex(dataset.FactBench)[f.ID]
	ctx := context.Background()
	if _, src, err := svc.verdict(ctx, cell, f, idx); err != nil || src != "computed" {
		t.Fatalf("prime: src=%q err=%v", src, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_, src, err := svc.verdict(ctx, cell, f, idx)
		if err != nil || src != "lru" {
			t.Fatalf("warm verdict: src=%q err=%v", src, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm verdict allocates %v per call, want 0", allocs)
	}
}

// BenchmarkWarmVerdict is the instrumented-path counterpart of the
// zero-alloc warm benches: an LRU-hit verdict with histograms recording
// and tracing at the default (off) sample rate. Allocations must stay 0.
func BenchmarkWarmVerdict(b *testing.B) {
	svc := New(testBench(), core.NewMemoryStore(), permissive())
	defer svc.Drain()
	svc.verify = func(_ context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
		return stubOutcome(cell, f), nil
	}
	f := firstFact(dataset.FactBench)
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}
	idx := testBench().FactIndex(dataset.FactBench)[f.ID]
	ctx := context.Background()
	if _, _, err := svc.verdict(ctx, cell, f, idx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, src, err := svc.verdict(ctx, cell, f, idx); err != nil || src != "lru" {
			b.Fatalf("src=%q err=%v", src, err)
		}
	}
}
