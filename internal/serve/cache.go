package serve

import (
	"container/list"
	"strconv"
	"sync"

	"factcheck/internal/core"
	"factcheck/internal/det"
	"factcheck/internal/strategy"
)

// cacheShards is the shard count of the verdict LRU. Shards spread both
// lock contention and the capacity budget; keys hash by det.Hash64 of the
// full (dataset, method, model, fact) coordinate, so one hot fact's
// verdicts under different models land on different shards.
const cacheShards = 16

// verdictKey addresses one verdict: a grid cell plus a fact ID, pinned to
// the fact's corpus epoch. Epoch-keying is what makes ingestion
// invalidation precise and race-free by construction: a verdict computed
// over epoch e is only ever served to requests that read epoch e, so an
// epoch bump strands the old entries (LRU pressure or the ingest builder's
// sweep reclaims them) instead of requiring any synchronised purge.
type verdictKey struct {
	cell   core.Cell
	factID string
	epoch  uint64
}

func (k verdictKey) shard() uint64 {
	return det.Hash64(string(k.cell.Dataset), string(k.cell.Method), k.cell.Model, k.factID,
		strconv.FormatUint(k.epoch, 10)) % cacheShards
}

// verdictCache is a sharded in-memory LRU of single-fact verdicts, the
// fastest layer of the service's lookup stack (LRU -> result store ->
// verify). Whole-cell store snapshots hydrate it on first touch; verdicts
// computed on demand are inserted directly. Each shard holds capacity/16
// entries under its own lock.
type verdictCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[verdictKey]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key verdictKey
	out strategy.Outcome
}

func newVerdictCache(capacity int) *verdictCache {
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &verdictCache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:     per,
			entries: map[verdictKey]*list.Element{},
			order:   list.New(),
		}
	}
	return c
}

func (c *verdictCache) get(k verdictKey) (strategy.Outcome, bool) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		return strategy.Outcome{}, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

func (c *verdictCache) put(k verdictKey, out strategy.Outcome) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		el.Value.(*cacheEntry).out = out
		s.order.MoveToFront(el)
		return
	}
	s.entries[k] = s.order.PushFront(&cacheEntry{key: k, out: out})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
	}
}

// getStale returns the (cell, fact) verdict under any epoch, preferring
// the newest — the degraded-serving fallback when fresh resolution is
// unavailable (breaker open, model down). It scans the whole cache, which
// only the unavailability path ever pays for.
func (c *verdictCache) getStale(cell core.Cell, factID string) (strategy.Outcome, bool) {
	var best strategy.Outcome
	var bestEpoch uint64
	found := false
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.entries {
			if k.cell == cell && k.factID == factID && (!found || k.epoch > bestEpoch) {
				found, bestEpoch = true, k.epoch
				best = el.Value.(*cacheEntry).out
			}
		}
		s.mu.Unlock()
	}
	return best, found
}

// sweepStale removes the fact's entries whose epoch predates the given
// one. Epoch-keyed lookups already make such entries unreachable; the
// sweep reclaims their memory eagerly instead of waiting for LRU pressure.
// Returns the number of entries removed.
func (c *verdictCache) sweepStale(factID string, epoch uint64) int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.entries {
			if k.factID == factID && k.epoch < epoch {
				s.order.Remove(el)
				delete(s.entries, k)
				removed++
			}
		}
		s.mu.Unlock()
	}
	return removed
}

// len reports the total number of cached verdicts across shards.
func (c *verdictCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
