package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/search"
)

// freshService builds a service over its own private benchmark: ingestion
// mutates engine state, so these tests must never share testBench.
func freshService(t *testing.T, cfg Config) (*Service, *core.Benchmark) {
	t.Helper()
	b := core.NewBenchmark(core.TestConfig())
	svc := New(b, core.NewMemoryStore(), cfg)
	t.Cleanup(svc.Drain)
	return svc, b
}

func postIngest(t *testing.T, h http.Handler, docs []search.IngestDoc) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(IngestRequest{Documents: docs})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/documents", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// waitApplied blocks until the background builder has folded at least n
// documents (the fold is asynchronous behind the 202).
func waitApplied(t *testing.T, svc *Service, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Stats().IngestApplied >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("builder folded %d docs, want >= %d", svc.Stats().IngestApplied, n)
}

// TestIngestEndpointContract covers the admission edge of POST
// /v1/documents: empty and unknown-fact batches are refused whole before
// anything is queued, oversized bodies get 413, and a valid batch is
// acknowledged with 202 and folded asynchronously.
func TestIngestEndpointContract(t *testing.T) {
	svc, b := freshService(t, permissive())
	h := svc.Handler()
	f := b.Datasets[dataset.FactBench].Facts[0]

	if w := postIngest(t, h, nil); w.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", w.Code)
	}
	w := postIngest(t, h, []search.IngestDoc{
		{FactID: f.ID, Title: "ok", Text: "fine"},
		{FactID: "nope-000001", Title: "bad", Text: "bad"},
	})
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown fact: status %d, want 404", w.Code)
	}
	if got := b.Engine.FactEpoch(f.ID); got != 0 {
		t.Errorf("refused batch bumped the epoch to %d", got)
	}

	big := httptest.NewRequest("POST", "/v1/documents",
		strings.NewReader(`{"documents":[{"fact_id":"x","title":"t","text":"`+strings.Repeat("x", 1<<20)+`"}]}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}

	w = postIngest(t, h, []search.IngestDoc{{FactID: f.ID, Title: "Live update", Text: "fresh evidence"}})
	if w.Code != http.StatusAccepted {
		t.Fatalf("valid batch: status %d: %s", w.Code, w.Body.String())
	}
	var resp IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Queued != 1 {
		t.Fatalf("ingest response %q (err %v), want queued=1", w.Body.String(), err)
	}
	waitApplied(t, svc, 1)
	if got := b.Engine.FactEpoch(f.ID); got != 1 {
		t.Errorf("epoch = %d after fold, want 1", got)
	}
}

// TestIngestInvalidation is the PR's precision claim at the serving layer:
// an epoch bump on fact F forces F's verdict to be recomputed, leaves every
// untouched fact's cached verdict byte-identical, and the recomputed
// verdict matches a cold service that ingested the same documents before
// ever verifying — so warm invalidation converges to the cold rebuild.
func TestIngestInvalidation(t *testing.T) {
	svc, b := freshService(t, permissive())
	h := svc.Handler()
	ds := dataset.FactBench
	fTouched := b.Datasets[ds].Facts[0]
	fUntouched := b.Datasets[ds].Facts[1]
	reqFor := func(f *dataset.Fact) VerifyRequest {
		return VerifyRequest{Dataset: string(ds), Method: string(llm.MethodRAG), Model: llm.Gemma2, FactID: f.ID}
	}
	serve := func(f *dataset.Fact) (string, string) {
		w := postVerify(t, h, reqFor(f))
		if w.Code != http.StatusOK {
			t.Fatalf("fact %s: status %d: %s", f.ID, w.Code, w.Body.String())
		}
		var v VerdictResponse
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		source := v.Source
		v.Source = "" // compare verdict content independent of serving layer
		canon, _ := json.Marshal(v)
		return string(canon), source
	}

	// Warm both facts into the verdict LRU.
	serve(fTouched)
	serve(fUntouched)
	_, src := serve(fUntouched)
	if src != "lru" {
		t.Fatalf("untouched fact served from %q before ingest, want lru", src)
	}
	untouchedBefore, _ := serve(fUntouched)

	docs := []search.IngestDoc{
		{FactID: fTouched.ID, Title: "Corroborating record", Text: "Newly surfaced registry entry concerning " + fTouched.Subject.Label},
		{FactID: fTouched.ID, Title: "Archive note", Text: "A second live document about " + fTouched.Subject.Label},
	}
	if w := postIngest(t, h, docs); w.Code != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
	}
	waitApplied(t, svc, uint64(len(docs)))
	if st := svc.Stats(); st.IngestSwept == 0 {
		t.Errorf("builder swept no stale verdicts although %s was cached at the old epoch", fTouched.ID)
	}

	touchedAfter, src := serve(fTouched)
	if src != "computed" {
		t.Errorf("touched fact served from %q after its epoch bump, want computed", src)
	}
	untouchedAfter, src := serve(fUntouched)
	if src != "lru" {
		t.Errorf("untouched fact served from %q after ingest, want lru", src)
	}
	if untouchedAfter != untouchedBefore {
		t.Errorf("untouched fact's verdict changed across an unrelated ingest:\nbefore %s\nafter  %s",
			untouchedBefore, untouchedAfter)
	}

	// Cold cross-check: a service that ingested the same documents before
	// serving anything must produce the touched fact's verdict byte-for-byte.
	coldSvc, coldB := freshService(t, permissive())
	if _, err := coldB.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	ch := coldSvc.Handler()
	w := postVerify(t, ch, reqFor(fTouched))
	if w.Code != http.StatusOK {
		t.Fatalf("cold verify: status %d: %s", w.Code, w.Body.String())
	}
	var cv VerdictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &cv); err != nil {
		t.Fatal(err)
	}
	cv.Source = ""
	coldCanon, _ := json.Marshal(cv)
	if string(coldCanon) != touchedAfter {
		t.Errorf("warm-invalidated verdict diverges from cold rebuild:\nwarm %s\ncold %s", touchedAfter, coldCanon)
	}
}

// TestIngestWhileServing races live ingestion against the verify path at
// the HTTP layer; under -race it checks the whole serve -> core -> search
// stack for unsynchronised state.
func TestIngestWhileServing(t *testing.T) {
	svc, b := freshService(t, permissive())
	h := svc.Handler()
	ds := dataset.FactBench
	facts := b.Datasets[ds].Facts
	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				f := facts[(seed+i)%len(facts)]
				req := VerifyRequest{Dataset: string(ds), Method: string(llm.MethodRAG), Model: llm.Gemma2, FactID: f.ID}
				if w := postVerify(t, h, req); w.Code != http.StatusOK {
					t.Errorf("verify %s: status %d", f.ID, w.Code)
					return
				}
			}
		}(worker)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			f := facts[i%len(facts)]
			docs := []search.IngestDoc{{FactID: f.ID, Title: fmt.Sprintf("Live %d", i),
				Text: fmt.Sprintf("streamed update %d about %s", i, f.Subject.Label)}}
			w := postIngest(t, h, docs)
			if w.Code != http.StatusAccepted && w.Code != http.StatusServiceUnavailable {
				t.Errorf("ingest %d: status %d", i, w.Code)
				return
			}
		}
	}()
	wg.Wait()
}
