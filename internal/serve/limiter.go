package serve

import (
	"math"
	"sync"
	"time"
)

// maxClients bounds the limiter's per-client state table. At the bound,
// buckets idle long enough to be fully refilled are dropped first — they
// are indistinguishable from fresh ones, so forgetting them never grants
// extra tokens — and if every bucket is still active (an attacker rotating
// client IDs), an arbitrary one is evicted: staying bounded is worth the
// at-most-one-burst an evicted client regains, since a rotating attacker
// was minting fresh full-burst buckets anyway.
const maxClients = 4096

// pruneInterval rate-limits the O(clients) idle sweep so a client-ID churn
// attack cannot make every insertion pay a full-map scan under the mutex.
const pruneInterval = time.Second

// limiter is a per-client token-bucket rate limiter. Each client owns a
// bucket of capacity burst refilled at rate tokens per second; a request
// consumes one token or is rejected with the delay after which it would
// have succeeded (the 429 Retry-After hint).
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastPrune time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64, now func() time.Time) *limiter {
	return &limiter{rate: rate, burst: burst, now: now, buckets: map[string]*bucket{}}
}

// allow consumes one token from the client's bucket. On rejection it
// returns the wait until the token would be available.
func (l *limiter) allow(client string) (ok bool, retryAfter time.Duration) {
	return l.allowN(client, 1)
}

// allowN consumes n tokens atomically (all or none) — the unit charged is
// one *verification*, so a batch of k facts or a k-model consensus costs k
// tokens, not one request. On rejection it returns the wait until n tokens
// would be available.
func (l *limiter) allowN(client string, n float64) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxClients {
			if now.Sub(l.lastPrune) >= pruneInterval {
				l.prune(now)
				l.lastPrune = now
			}
			// Still full after (or without) pruning: evict an arbitrary
			// bucket so the table never exceeds its bound.
			for len(l.buckets) >= maxClients {
				for c := range l.buckets {
					delete(l.buckets, c)
					break
				}
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	wait := time.Duration((n - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// prune drops buckets that have been idle long enough to refill completely;
// must be called with mu held.
func (l *limiter) prune(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for c, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, c)
		}
	}
}

// clients reports the number of tracked client buckets.
func (l *limiter) clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
