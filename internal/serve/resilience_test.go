package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/resilience"
	"factcheck/internal/strategy"
)

// downFault marks a hard-down dependency the way internal/fault does, so
// these tests exercise the serving layer's unavailability handling without
// standing up a faulted benchmark.
type downFault struct{}

func (downFault) Error() string          { return "dependency down" }
func (downFault) FaultUnavailable() bool { return true }

// assertRetryAfter fails unless the response carries a positive-integer
// Retry-After header — the contract on every retryable rejection.
func assertRetryAfter(t *testing.T, w *httptest.ResponseRecorder, path string) {
	t.Helper()
	ra := w.Result().Header.Get("Retry-After")
	n, err := strconv.Atoi(ra)
	if err != nil || n < 1 {
		t.Errorf("%s: status %d with Retry-After %q, want a positive integer", path, w.Code, ra)
	}
}

func dkaRequest(f *dataset.Fact) VerifyRequest {
	return VerifyRequest{Dataset: string(dataset.FactBench), Method: string(llm.MethodDKA), Model: llm.Gemma2, FactID: f.ID}
}

// TestRequestDeadline504: a verification outliving the per-request
// deadline answers 504 + Retry-After instead of hanging, and the cut is
// counted.
func TestRequestDeadline504(t *testing.T) {
	cfg := permissive()
	cfg.RequestTimeout = 60 * time.Millisecond
	svc := newTestService(t, cfg)
	defer svc.Drain()
	svc.verify = func(ctx context.Context, _ core.Cell, _ *dataset.Fact) (strategy.Outcome, error) {
		<-ctx.Done() // a stalled dependency: only the deadline frees us
		return strategy.Outcome{}, ctx.Err()
	}
	start := time.Now()
	w := postVerify(t, svc.Handler(), dkaRequest(firstFact(dataset.FactBench)))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", w.Code, w.Body.String())
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("504 took %v, the deadline did not bound the request", el)
	}
	assertRetryAfter(t, w, "stalled verify")
	if st := svc.Stats(); st.Deadlines != 1 {
		t.Fatalf("deadline_timeouts = %d, want 1", st.Deadlines)
	}
}

// TestDegradedStaleServe: when fresh resolution is unavailable, a stale
// (previous-epoch) verdict is served marked degraded; with no stale copy
// the request is refused 503 + Retry-After, never 500.
func TestDegradedStaleServe(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	svc.verify = func(context.Context, core.Cell, *dataset.Fact) (strategy.Outcome, error) {
		return strategy.Outcome{}, downFault{}
	}
	f := firstFact(dataset.FactBench)
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}
	// A verdict from another corpus epoch: invisible to the warm path
	// (epoch-keyed), reachable only through the degraded fallback.
	svc.cache.put(verdictKey{cell: cell, factID: f.ID, epoch: 41}, stubOutcome(cell, f))

	w := postVerify(t, svc.Handler(), dkaRequest(f))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d with a stale copy available, want 200 (body %s)", w.Code, w.Body.String())
	}
	var resp VerdictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Source != "degraded" {
		t.Fatalf("response = source %q degraded %v, want a degraded stale verdict", resp.Source, resp.Degraded)
	}
	if st := svc.Stats(); st.Degraded != 1 {
		t.Fatalf("degraded_served = %d, want 1", st.Degraded)
	}

	// A fact with no stale copy anywhere: 503, not 500.
	other := testBench().Datasets[dataset.FactBench].Facts[1]
	w = postVerify(t, svc.Handler(), dkaRequest(other))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with nothing to fall back on, want 503 (body %s)", w.Code, w.Body.String())
	}
	assertRetryAfter(t, w, "unavailable verify")
	if st := svc.Stats(); st.Unavailable != 1 {
		t.Fatalf("unavailable_rejected = %d, want 1", st.Unavailable)
	}
}

// TestConsensusDegradedSurvivors: consensus over an ensemble with one
// voter down settles with the survivors, reports the dropped voter, and
// counts the degraded decision; with every voter down it refuses 503.
func TestConsensusDegradedSurvivors(t *testing.T) {
	svc := newTestService(t, permissive())
	defer svc.Drain()
	f := firstFact(dataset.FactBench)
	svc.verify = func(_ context.Context, cell core.Cell, fa *dataset.Fact) (strategy.Outcome, error) {
		if cell.Model == llm.Mistral {
			return strategy.Outcome{}, downFault{}
		}
		return stubOutcome(cell, fa), nil
	}
	resp, w := getConsensus(t, svc.Handler(), f.ID, "eager")
	if resp == nil {
		t.Fatalf("consensus status %d (body %s)", w.Code, w.Body.String())
	}
	if !resp.Degraded || !reflect.DeepEqual(resp.Unavailable, []string{llm.Mistral}) {
		t.Fatalf("degraded %v unavailable %v, want mistral dropped", resp.Degraded, resp.Unavailable)
	}
	if len(resp.Votes) != 3 || !resp.Final || resp.Tie {
		t.Fatalf("votes %d final %v tie %v, want a 3-0 survivor majority", len(resp.Votes), resp.Final, resp.Tie)
	}
	for _, v := range resp.Votes {
		if v.Model == llm.Mistral {
			t.Fatal("the unavailable voter still cast a vote")
		}
	}
	if st := svc.Stats(); st.ConsensusDegraded != 1 {
		t.Fatalf("consensus_degraded = %d, want 1", st.ConsensusDegraded)
	}

	// Every voter down: there is no ensemble left — 503 + Retry-After.
	// A different fact, so the first decision's cached votes can't answer.
	svc.verify = func(context.Context, core.Cell, *dataset.Fact) (strategy.Outcome, error) {
		return strategy.Outcome{}, downFault{}
	}
	allDown := testBench().Datasets[dataset.FactBench].Facts[2]
	_, w = getConsensus(t, svc.Handler(), allDown.ID, "eager")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-down consensus status %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	assertRetryAfter(t, w, "all-down consensus")
}

// TestRetryAfterOnEveryRejection sweeps the retryable rejection paths —
// rate limit 429, queue-full 503, drain 503 (verify, batch, ingest),
// /readyz 503 — asserting each carries a positive-integer Retry-After.
func TestRetryAfterOnEveryRejection(t *testing.T) {
	f := firstFact(dataset.FactBench)
	req := dkaRequest(f)

	t.Run("rate limit 429", func(t *testing.T) {
		cfg := permissive()
		cfg.Rate, cfg.Burst = 0.001, 1
		svc := newTestService(t, cfg)
		defer svc.Drain()
		h := svc.Handler()
		if w := postVerify(t, h, req); w.Code != http.StatusOK {
			t.Fatalf("first request: %d", w.Code)
		}
		w := postVerify(t, h, req)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", w.Code)
		}
		assertRetryAfter(t, w, "rate limit")
	})

	t.Run("queue full 503", func(t *testing.T) {
		cfg := permissive()
		cfg.QueueDepth, cfg.Workers = 1, 1
		svc := newTestService(t, cfg)
		defer svc.Drain()
		entered := make(chan struct{})
		release := make(chan struct{})
		svc.verify = func(_ context.Context, cell core.Cell, fa *dataset.Fact) (strategy.Outcome, error) {
			close(entered)
			<-release
			return stubOutcome(cell, fa), nil
		}
		h := svc.Handler()
		body, _ := json.Marshal(req)
		go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/verify", bytes.NewReader(body)))
		<-entered
		w := postVerify(t, h, req)
		close(release)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", w.Code)
		}
		assertRetryAfter(t, w, "queue full")
	})

	t.Run("draining 503", func(t *testing.T) {
		svc := newTestService(t, permissive())
		defer svc.Drain()
		h := svc.Handler()
		svc.StartDrain()
		w := postVerify(t, h, req)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("verify during drain: %d, want 503", w.Code)
		}
		assertRetryAfter(t, w, "drain verify")

		body, _ := json.Marshal(BatchRequest{Requests: []VerifyRequest{req}})
		w = httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/verify/batch", bytes.NewReader(body)))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("batch during drain: %d, want 503", w.Code)
		}
		assertRetryAfter(t, w, "drain batch")

		w = httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("/readyz during drain: %d, want 503", w.Code)
		}
		assertRetryAfter(t, w, "readyz")

		// Liveness stays green mid-drain: only readiness flips.
		w = httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("/healthz during drain: %d, want 200", w.Code)
		}
	})
}

// TestRecoveredVerdictByteIdentical runs the full chain — injected
// fail-first faults under the retry layer — and pins the recovered
// response to the fault-free service's bytes: faults cost latency, never
// answers.
func TestRecoveredVerdictByteIdentical(t *testing.T) {
	base := newTestService(t, permissive())
	defer base.Drain()

	cfg := core.TestConfig()
	if err := cfg.Faults.Parse("fail-first=3"); err != nil {
		t.Fatal(err)
	}
	cfg.Resilience = &resilience.Config{Retries: 5, RetryBase: time.Microsecond, RetryMax: 50 * time.Microsecond, Seed: "t"}
	chaotic := New(core.NewBenchmark(cfg), core.NewMemoryStore(), permissive())
	defer chaotic.Drain()

	req := dkaRequest(firstFact(dataset.FactBench))
	wa := postVerify(t, base.Handler(), req)
	wb := postVerify(t, chaotic.Handler(), req)
	if wa.Code != http.StatusOK || wb.Code != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200 (chaotic body %s)", wa.Code, wb.Code, wb.Body.String())
	}
	if wa.Body.String() != wb.Body.String() {
		t.Fatalf("recovered verdict differs from fault-free:\n fault-free: %s\n recovered:  %s", wa.Body.String(), wb.Body.String())
	}
	st := chaotic.Stats().Resilience
	if st.Retries < 3 || st.Recovered < 1 {
		t.Fatalf("resilience stats = %+v, want the fail-first window absorbed by retries", st)
	}
}
