package llm

import (
	"fmt"
	"sort"
)

// Model names used throughout the benchmark, matching the paper's setup
// (§4.2, §5): four open-source 7–9B models, their larger tie-breaking
// variants, and the commercial reference model.
const (
	Gemma2     = "gemma2:9b"
	Qwen25     = "qwen2.5:7b"
	Llama31    = "llama3.1:8b"
	Mistral    = "mistral:7b"
	GPT4oMini  = "gpt-4o-mini"
	Gemma2Big  = "gemma2:27b"
	Qwen25Big  = "qwen2.5:14b"
	Llama31Big = "llama3.1:70b"
	MistralBig = "mistral-nemo:12b"
)

// OpenSourceModels lists the ensemble's base models in presentation order.
var OpenSourceModels = []string{Gemma2, Qwen25, Llama31, Mistral}

// BenchmarkModels lists every model column of Table 5.
var BenchmarkModels = []string{Gemma2, Qwen25, Llama31, Mistral, GPT4oMini}

// Upgrade maps each base model to its higher-parameter variant used for
// consensus tie-breaking (paper §5).
var Upgrade = map[string]string{
	Gemma2:  Gemma2Big,
	Qwen25:  Qwen25Big,
	Llama31: Llama31Big,
	Mistral: MistralBig,
}

// profiles holds the behavioural calibration of every simulated model. The
// numbers are fitted so the benchmark reproduces the *shape* of the paper's
// Tables 5–8: who wins where, the YAGO positive-class bias, GPT-4o mini's
// internal-knowledge weakness and RAG strength, and the latency ordering
// DKA < GIV-Z < GIV-F << RAG.
var profiles = map[string]Profile{
	Gemma2: {
		Name: Gemma2, Params: 9,
		Coverage: 1.15, Accuracy: 0.93, TruePrior: 0.62,
		ContextSkill: 0.93, TrustContext: 0.96,
		PromptTPS: 1200, GenTPS: 340, Overhead: 0.11,
		Methods: map[Method]MethodMod{
			MethodDKA:  {Conformance: 1},
			MethodGIVZ: {AccShift: -0.02, Flip: 0.02, Conformance: 0.86},
			MethodGIVF: {AccShift: 0.05, PriorShift: 0.03, GoldNudge: 0.15, Conformance: 0.93},
			MethodRAG:  {Conformance: 1},
		},
		Datasets: map[string]DatasetMod{
			"FactBench": {CoverageScale: 1.0, ReadNoise: 0.02},
			"YAGO":      {CoverageScale: 0.93, PriorShift: -0.22, ReadNoise: 0.03},
			"DBpedia":   {CoverageScale: 0.62, PriorShift: 0.10, ReadNoise: 0.22},
		},
	},
	Qwen25: {
		Name: Qwen25, Params: 7,
		Coverage: 0.85, Accuracy: 0.88, TruePrior: 0.10,
		ContextSkill: 0.91, TrustContext: 0.96,
		PromptTPS: 1400, GenTPS: 420, Overhead: 0.09,
		Methods: map[Method]MethodMod{
			MethodDKA:  {Conformance: 1},
			MethodGIVZ: {PriorShift: -0.05, Flip: 0.02, Conformance: 0.82},
			MethodGIVF: {AccShift: 0.06, PriorShift: 0.12, GoldNudge: 0.30, Conformance: 0.9},
			MethodRAG:  {Conformance: 1},
		},
		Datasets: map[string]DatasetMod{
			"FactBench": {CoverageScale: 1.0, ReadNoise: 0.03},
			"YAGO":      {CoverageScale: 0.8, PriorShift: 0.02, AccShift: -0.35, ReadNoise: 0.03},
			"DBpedia":   {CoverageScale: 0.62, PriorShift: 0.23, ReadNoise: 0.08},
		},
	},
	Llama31: {
		Name: Llama31, Params: 8,
		Coverage: 0.95, Accuracy: 0.90, TruePrior: 0.55,
		ContextSkill: 0.83, TrustContext: 0.93,
		PromptTPS: 1100, GenTPS: 280, Overhead: 0.13,
		Methods: map[Method]MethodMod{
			MethodDKA:  {Conformance: 1},
			MethodGIVZ: {AccShift: -0.25, PriorShift: -0.35, Flip: 0.05, Conformance: 0.78},
			MethodGIVF: {AccShift: 0.04, PriorShift: 0.05, GoldNudge: 0.25, Conformance: 0.88},
			MethodRAG:  {Conformance: 1},
		},
		Datasets: map[string]DatasetMod{
			"FactBench": {CoverageScale: 1.0, ReadNoise: 0.05},
			"YAGO":      {CoverageScale: 0.9, PriorShift: -0.29, ReadNoise: 0.06},
			"DBpedia":   {CoverageScale: 0.62, PriorShift: 0.11, ReadNoise: 0.20},
		},
	},
	Mistral: {
		Name: Mistral, Params: 7,
		Coverage: 0.90, Accuracy: 0.90, TruePrior: 0.45,
		ContextSkill: 0.92, TrustContext: 0.97,
		PromptTPS: 2100, GenTPS: 520, Overhead: 0.08,
		Methods: map[Method]MethodMod{
			MethodDKA:  {Conformance: 1},
			MethodGIVZ: {PriorShift: 0.33, Flip: 0.02, Conformance: 0.84},
			MethodGIVF: {AccShift: 0.05, PriorShift: 0.30, GoldNudge: 0.25, Conformance: 0.92},
			MethodRAG:  {Conformance: 1},
		},
		Datasets: map[string]DatasetMod{
			"FactBench": {CoverageScale: 1.0, ReadNoise: 0.02},
			"YAGO":      {CoverageScale: 0.7, PriorShift: -0.27, ReadNoise: 0.02},
			"DBpedia":   {CoverageScale: 0.62, PriorShift: 0.18, ReadNoise: 0.12},
		},
	},
	GPT4oMini: {
		Name: GPT4oMini, Params: 8, // undisclosed; the paper treats it as small
		Coverage: 0.80, Accuracy: 0.90, TruePrior: 0.10,
		ContextSkill: 0.96, TrustContext: 0.98,
		PromptTPS: 1800, GenTPS: 450, Overhead: 0.10,
		Methods: map[Method]MethodMod{
			MethodDKA:  {Conformance: 1},
			MethodGIVZ: {PriorShift: -0.03, Conformance: 0.95},
			MethodGIVF: {AccShift: 0.02, GoldNudge: 0.02, Conformance: 0.97},
			MethodRAG:  {Conformance: 1},
		},
		Datasets: map[string]DatasetMod{
			"FactBench": {CoverageScale: 1.0, ReadNoise: 0.01},
			"YAGO":      {CoverageScale: 0.75, PriorShift: -0.05, ReadNoise: 0.02},
			"DBpedia":   {CoverageScale: 0.62, PriorShift: 0.145, ReadNoise: 0.06},
		},
	},

	// Higher-parameter tie-breaking variants: broader coverage and accuracy,
	// slower token rates. They inherit their base model's priors.
	Gemma2Big: {
		Name: Gemma2Big, Params: 27,
		Coverage: 1.3, Accuracy: 0.95, TruePrior: 0.60,
		ContextSkill: 0.95, TrustContext: 0.96,
		PromptTPS: 600, GenTPS: 160, Overhead: 0.2,
		Methods:  conformantMethods(),
		Datasets: defaultDatasetMods(),
	},
	Qwen25Big: {
		Name: Qwen25Big, Params: 14,
		Coverage: 1.0, Accuracy: 0.91, TruePrior: 0.38,
		ContextSkill: 0.93, TrustContext: 0.96,
		PromptTPS: 900, GenTPS: 250, Overhead: 0.15,
		Methods:  conformantMethods(),
		Datasets: defaultDatasetMods(),
	},
	Llama31Big: {
		Name: Llama31Big, Params: 70,
		Coverage: 1.35, Accuracy: 0.95, TruePrior: 0.55,
		ContextSkill: 0.93, TrustContext: 0.95,
		PromptTPS: 260, GenTPS: 70, Overhead: 0.35,
		Methods:  conformantMethods(),
		Datasets: defaultDatasetMods(),
	},
	MistralBig: {
		Name: MistralBig, Params: 12,
		Coverage: 1.05, Accuracy: 0.92, TruePrior: 0.47,
		ContextSkill: 0.94, TrustContext: 0.97,
		PromptTPS: 1300, GenTPS: 330, Overhead: 0.12,
		Methods:  conformantMethods(),
		Datasets: defaultDatasetMods(),
	},
}

// defaultDatasetMods encodes the dataset-level effects shared by all
// models: YAGO samples popular facts (better coverage) and nudges answers
// positive; DBpedia's tail entities and schema diversity cut coverage and
// inflate the positive prior (annotators kept mostly-true facts).
func defaultDatasetMods() map[string]DatasetMod {
	return map[string]DatasetMod{
		"FactBench": {CoverageScale: 1.0},
		"YAGO":      {CoverageScale: 1.1, PriorShift: 0.05},
		"DBpedia":   {CoverageScale: 0.62, PriorShift: 0.10},
	}
}

func conformantMethods() map[Method]MethodMod {
	return map[Method]MethodMod{
		MethodDKA:  {Conformance: 1},
		MethodGIVZ: {Conformance: 0.95},
		MethodGIVF: {AccShift: 0.03, Conformance: 0.97},
		MethodRAG:  {Conformance: 1},
	}
}

// New returns the simulated model registered under name.
func New(name string) (*Sim, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("llm: unknown model %q (known: %v)", name, Names())
	}
	return NewSim(p), nil
}

// MustNew is New for static model names; it panics on unknown names.
func MustNew(name string) *Sim {
	m, err := New(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns all registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
