package llm

import (
	"context"
	"strings"
	"testing"
)

func TestProfileAccessor(t *testing.T) {
	m := MustNew(Gemma2)
	p := m.Profile()
	if p.Name != Gemma2 || p.Coverage <= 0 || p.PromptTPS <= 0 {
		t.Errorf("profile incomplete: %+v", p)
	}
}

func TestMethodAndDatasetModDefaults(t *testing.T) {
	// A bare profile (no mods) must behave with sane defaults rather than
	// zero conformance / zero coverage scale.
	s := NewSim(Profile{
		Name: "bare", Params: 1,
		Coverage: 0.5, Accuracy: 0.9, TruePrior: 0.5,
		ContextSkill: 0.9, TrustContext: 0.9,
		PromptTPS: 1000, GenTPS: 300, Overhead: 0.1,
	})
	c := claim(true)
	c.Dataset = "SomethingElse"
	resp, err := s.Generate(context.Background(), Request{
		System: "s", Prompt: "p", Claim: c, Method: MethodGIVZ,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default conformance is 1: output must be valid JSON.
	if !strings.HasPrefix(strings.TrimSpace(resp.Text), "{") {
		t.Errorf("default-conformance output not JSON: %q", resp.Text)
	}
}

func TestTopicCoverageGradient(t *testing.T) {
	// Education must be covered strictly better than Architecture and
	// Transportation; unknown topics are neutral.
	edu := topicCoverage("Education")
	arch := topicCoverage("Architecture")
	trans := topicCoverage("Transportation")
	news := topicCoverage("News")
	culture := topicCoverage("Culture")
	business := topicCoverage("Business")
	sports := topicCoverage("Sports")
	other := topicCoverage("SomethingNew")
	if !(edu > news && news > culture && culture > business && business > sports) {
		t.Error("head-domain gradient violated")
	}
	if arch >= sports || trans >= sports {
		t.Error("tail domains not penalised")
	}
	if other != 1.0 {
		t.Errorf("unknown topic factor = %f, want 1", other)
	}
}

func TestTopicAffectsKnowledge(t *testing.T) {
	m := MustNew(Gemma2)
	knowRate := func(topic string) float64 {
		hits := 0
		const n = 2000
		for i := 0; i < n; i++ {
			c := claim(true)
			c.Key = "T|award|K" + itoa(i)
			c.Popularity = 0.3
			c.Topic = topic
			if m.Knows(c) {
				hits++
			}
		}
		return float64(hits) / n
	}
	if knowRate("Education") <= knowRate("Architecture") {
		t.Error("education facts not better covered than architecture facts")
	}
}

func TestReasonVocabularyPerCategory(t *testing.T) {
	m := MustNew(Mistral)
	ctx := context.Background()
	wants := map[string][]string{
		"geo":          {"place", "country", "city", "location", "geograph"},
		"relationship": {"relationship", "marital"},
		"role":         {"role", "team", "employer", "position"},
		"genre":        {"genre", "categor"},
		"identifier":   {"identifier", "award", "biograph"},
		"other":        {"context", "recalled"},
	}
	for cat, keywords := range wants {
		found := false
		// Sample several claims per category; the model must emit a reason
		// containing category vocabulary whenever it answers "false".
		for i := 0; i < 60 && !found; i++ {
			c := claim(true)
			c.Key = "R|" + cat + "|x" + itoa(i)
			c.Category = cat
			c.Popularity = 0.9 // likely known -> mostly correct, some wrong
			c.Gold = false     // a known false fact yields verdict false
			resp, err := m.Generate(ctx, Request{System: "s", Prompt: "p", Claim: c, Method: MethodDKA})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(strings.ToUpper(resp.Text), "FALSE") {
				continue
			}
			lower := strings.ToLower(resp.Text)
			for _, kw := range keywords {
				if strings.Contains(lower, kw) {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("category %s: no reason contained its vocabulary", cat)
		}
	}
}

func TestSlowResponseTail(t *testing.T) {
	// ~3% of calls are slow outliers, which the IQR filter later removes;
	// verify the tail exists.
	m := MustNew(Qwen25)
	ctx := context.Background()
	var base, maxLat float64
	const n = 400
	for i := 0; i < n; i++ {
		c := claim(true)
		c.Key = "L|homeCity|z" + itoa(i)
		r, err := m.Generate(ctx, Request{System: "s", Prompt: "p q r s t", Claim: c, Method: MethodDKA})
		if err != nil {
			t.Fatal(err)
		}
		s := r.Usage.Latency.Seconds()
		base += s
		if s > maxLat {
			maxLat = s
		}
	}
	mean := base / n
	if maxLat < 2*mean {
		t.Errorf("no slow tail: max %.3fs vs mean %.3fs", maxLat, mean)
	}
}
