package llm

import (
	"context"
	"math"
	"time"
)

// Nominal token counts of one verification call, used to price models
// against each other. The absolute numbers do not matter — only that every
// model is priced on the same workload — so they are fixed constants
// rather than measurements.
const (
	costPromptTokens     = 256
	costCompletionTokens = 64
)

// Cost prices one verification call on the named model in simulated
// seconds: fixed overhead plus nominal prompt/completion tokens at the
// profile's token rates. It is the sort key of the consensus engine's
// tier schedule (cheapest voters dispatch first); unknown models price as
// +Inf so they always sort last.
func Cost(name string) float64 {
	p, ok := profiles[name]
	if !ok {
		return math.Inf(1)
	}
	return p.Overhead + costPromptTokens/p.PromptTPS + costCompletionTokens/p.GenTPS
}

// Paced wraps a model so each call really takes its simulated latency,
// scaled by Scale wall-clock seconds per simulated second. The simulated
// substrate computes latencies without sleeping, which is right for
// correctness tests but hides latency structure from benchmarks: under
// Paced, "fan out and wait for the slowest" and "run serially and pay the
// sum" cost what they would against a real model server. Outcomes are
// unchanged — pacing is pure wall-clock.
type Paced struct {
	Model
	// Scale is wall-clock seconds slept per simulated second of latency;
	// values <= 0 disable pacing.
	Scale float64
}

// Generate implements Model: it delegates, then sleeps the scaled
// simulated latency (honouring cancellation).
func (p Paced) Generate(ctx context.Context, req Request) (Response, error) {
	resp, err := p.Model.Generate(ctx, req)
	if err != nil || p.Scale <= 0 {
		return resp, err
	}
	t := time.NewTimer(time.Duration(float64(resp.Usage.Latency) * p.Scale))
	defer t.Stop()
	select {
	case <-t.C:
		return resp, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}
