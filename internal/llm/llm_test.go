package llm

import (
	"context"
	"strings"
	"testing"
)

func claim(gold bool) Claim {
	return Claim{
		Key:          "Subject_One|birthPlace|City_Two",
		FactID:       "factbench-000001",
		Dataset:      "FactBench",
		Gold:         gold,
		Popularity:   0.4,
		Category:     "geo",
		Sentence:     "Subject One was born in City Two.",
		SubjectLabel: "Subject One",
		ObjectLabel:  "City Two",
		Phrase:       "was born in",
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Name() = %s, want %s", m.Name(), name)
		}
		if m.ParamsB() <= 0 {
			t.Errorf("%s has non-positive params", name)
		}
	}
	if _, err := New("gpt-999"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew("no-such-model")
}

func TestUpgradeMapComplete(t *testing.T) {
	for _, m := range OpenSourceModels {
		up, ok := Upgrade[m]
		if !ok {
			t.Fatalf("no upgrade for %s", m)
		}
		big := MustNew(up)
		base := MustNew(m)
		if big.ParamsB() <= base.ParamsB() {
			t.Errorf("upgrade %s (%.0fB) not larger than %s (%.0fB)",
				up, big.ParamsB(), m, base.ParamsB())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := MustNew(Gemma2)
	req := Request{System: "sys", Prompt: "p", Claim: claim(true), Method: MethodDKA}
	a, err := m.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Generate(context.Background(), req)
	if a.Text != b.Text || a.Usage != b.Usage {
		t.Error("Generate not deterministic")
	}
}

func TestGenerateRespectsContext(t *testing.T) {
	m := MustNew(Gemma2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Generate(ctx, Request{Claim: claim(true), Method: MethodDKA}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestDKAOutputParseable(t *testing.T) {
	m := MustNew(Mistral)
	resp, err := m.Generate(context.Background(), Request{
		System: "s", Prompt: "p", Claim: claim(true), Method: MethodDKA,
	})
	if err != nil {
		t.Fatal(err)
	}
	up := strings.ToUpper(resp.Text)
	if !strings.HasPrefix(up, "TRUE") && !strings.HasPrefix(up, "FALSE") {
		t.Errorf("DKA output %q lacks verdict prefix", resp.Text)
	}
}

func TestUsageAccounting(t *testing.T) {
	m := MustNew(Llama31)
	resp, err := m.Generate(context.Background(), Request{
		System: "system prompt words here", Prompt: "user prompt with several words",
		Claim: claim(true), Method: MethodDKA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.PromptTokens <= 0 || resp.Usage.CompletionTokens <= 0 {
		t.Errorf("usage = %+v, want positive token counts", resp.Usage)
	}
	if resp.Usage.Latency <= 0 {
		t.Error("non-positive latency")
	}
	// Evidence must be token-charged.
	withEv, _ := m.Generate(context.Background(), Request{
		System: "system prompt words here", Prompt: "user prompt with several words",
		Claim: claim(true), Method: MethodRAG,
		Evidence: []string{"a long evidence chunk with many additional words to count"},
	})
	if withEv.Usage.PromptTokens <= resp.Usage.PromptTokens {
		t.Error("evidence not charged to prompt tokens")
	}
}

func TestKnowledgeAccuracyOnKnownFacts(t *testing.T) {
	// A model that knows a fact should usually judge it correctly under DKA.
	m := MustNew(Gemma2)
	correct, known := 0, 0
	for i := 0; i < 2000; i++ {
		c := claim(i%2 == 0)
		c.Key = "S|birthPlace|O" + string(rune('a'+i%26)) + itoa(i)
		c.Popularity = 0.8
		if !m.Knows(c) {
			continue
		}
		known++
		if m.Belief(c, MethodDKA) == c.Gold {
			correct++
		}
	}
	if known < 200 {
		t.Fatalf("only %d known facts at popularity 0.8", known)
	}
	acc := float64(correct) / float64(known)
	if acc < 0.85 {
		t.Errorf("accuracy on known facts = %.3f, want >= 0.85", acc)
	}
}

func TestPopularityDrivesKnowledge(t *testing.T) {
	m := MustNew(Qwen25)
	knowsAt := func(pop float64) float64 {
		hit := 0
		const n = 1500
		for i := 0; i < n; i++ {
			c := claim(true)
			c.Key = "P|award|X" + itoa(i)
			c.Popularity = pop
			if m.Knows(c) {
				hit++
			}
		}
		return float64(hit) / n
	}
	head, tail := knowsAt(0.95), knowsAt(0.02)
	if head <= tail {
		t.Errorf("head coverage %.3f <= tail coverage %.3f", head, tail)
	}
}

func TestReadStance(t *testing.T) {
	c := claim(true)
	tests := []struct {
		text string
		want int
	}{
		{"Subject One was born in City Two. More text.", 1},
		{"Subject One was born in Other Place. Contrary text.", -1},
		{"Contrary to some claims, it is not the case that Subject One was born in City Two.", -1},
		{"Subject One is discussed in this article.", 0},
		{"Totally unrelated content.", 0},
		{"", 0},
	}
	for _, tc := range tests {
		if got := ReadStance(c, tc.text); got != tc.want {
			t.Errorf("ReadStance(%q) = %d, want %d", tc.text, got, tc.want)
		}
	}
}

func TestRAGFollowsEvidence(t *testing.T) {
	m := MustNew(GPT4oMini) // highest context skill
	c := claim(false)       // model would need evidence to say true
	c.Popularity = 0.01     // make internal knowledge unlikely
	support := "Subject One was born in City Two. Multiple records agree."
	followed := 0
	const n = 300
	for i := 0; i < n; i++ {
		cc := c
		cc.Key = "S|birthPlace|C" + itoa(i)
		resp, err := m.Generate(context.Background(), Request{
			System: "s", Prompt: "p", Claim: cc, Method: MethodRAG,
			Evidence: []string{support, support, support},
		})
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(strings.ToUpper(resp.Text), "TRUE") {
			followed++
		}
	}
	if rate := float64(followed) / n; rate < 0.85 {
		t.Errorf("evidence followed %.2f of the time, want >= 0.85", rate)
	}
}

func TestGIVConformanceImprovesOnRetry(t *testing.T) {
	m := MustNew(Llama31) // lowest GIV-Z conformance
	ctx := context.Background()
	firstFail, retryFail := 0, 0
	const n = 800
	for i := 0; i < n; i++ {
		c := claim(true)
		c.Key = "S|award|A" + itoa(i)
		r0, _ := m.Generate(ctx, Request{Claim: c, Method: MethodGIVZ, Attempt: 0})
		if !strings.HasPrefix(strings.TrimSpace(r0.Text), "{") {
			firstFail++
			r1, _ := m.Generate(ctx, Request{Claim: c, Method: MethodGIVZ, Attempt: 1})
			if !strings.HasPrefix(strings.TrimSpace(r1.Text), "{") {
				retryFail++
			}
		}
	}
	if firstFail == 0 {
		t.Fatal("model never produced non-conformant output")
	}
	if float64(retryFail)/float64(firstFail) > 0.7 {
		t.Errorf("retry fixed too few failures: %d/%d still failing", retryFail, firstFail)
	}
}

func TestBeliefStableAcrossInternalMethods(t *testing.T) {
	// Knows is method-independent; beliefs may shift via method mods but the
	// knowledge set itself must not.
	m := MustNew(Gemma2)
	for i := 0; i < 100; i++ {
		c := claim(i%2 == 0)
		c.Key = "X|spouse|Y" + itoa(i)
		k := m.Knows(c)
		for j := 0; j < 3; j++ {
			if m.Knows(c) != k {
				t.Fatal("Knows is not stable")
			}
		}
	}
}

func TestSharedKnowledgeCorrelation(t *testing.T) {
	// Models share a claim-level knowledge stream: agreement between two
	// models on the "knows" decision must exceed independence.
	a, b := MustNew(Gemma2), MustNew(Llama31)
	agree, n := 0, 2000
	var ka, kb int
	for i := 0; i < n; i++ {
		c := claim(true)
		c.Key = "C|employer|E" + itoa(i)
		c.Popularity = 0.3
		x, y := a.Knows(c), b.Knows(c)
		if x {
			ka++
		}
		if y {
			kb++
		}
		if x == y {
			agree++
		}
	}
	pa, pb := float64(ka)/float64(n), float64(kb)/float64(n)
	indep := pa*pb + (1-pa)*(1-pb)
	got := float64(agree) / float64(n)
	if got <= indep+0.05 {
		t.Errorf("agreement %.3f not above independence %.3f", got, indep)
	}
}

func TestLatencyOrderingAcrossMethods(t *testing.T) {
	m := MustNew(Gemma2)
	ctx := context.Background()
	lat := func(method Method, system, prompt string, evidence []string) float64 {
		total := 0.0
		for i := 0; i < 50; i++ {
			c := claim(true)
			c.Key = "L|capital|Q" + itoa(i)
			r, _ := m.Generate(ctx, Request{
				System: system, Prompt: prompt, Claim: c, Method: method, Evidence: evidence,
			})
			total += r.Usage.Latency.Seconds()
		}
		return total / 50
	}
	short := strings.Repeat("word ", 40)
	long := strings.Repeat("word ", 400)
	ev := []string{strings.Repeat("evidence ", 100)}
	dka := lat(MethodDKA, "sys", short, nil)
	giv := lat(MethodGIVZ, "sys", long, nil)
	ragL := lat(MethodRAG, "sys", long, ev)
	if !(dka < giv && giv < ragL) {
		t.Errorf("latency ordering violated: dka=%.3f giv=%.3f rag=%.3f", dka, giv, ragL)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
