package llm

import (
	"context"
	"fmt"
	"strings"
	"time"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

// MethodMod adjusts a model's behaviour under a specific prompting method,
// reproducing the paper's observation that prompting regime changes both
// the response distribution and format reliability.
type MethodMod struct {
	// PriorShift moves the model's true-bias when it lacks knowledge
	// (negative values make the model answer "false" more often).
	PriorShift float64
	// AccShift adjusts correctness on known facts (few-shot exemplars
	// help; awkward zero-shot templates hurt).
	AccShift float64
	// Flip is extra elicitation noise: probability the reported verdict
	// flips regardless of belief.
	Flip float64
	// Conformance is the probability a GIV-format answer parses on the
	// first attempt. Re-prompts add ConformanceRetryBoost each.
	Conformance float64
	// GoldNudge is the probability that, on a fact outside the model's
	// parametric knowledge, the method still elicits the correct answer —
	// the mechanism behind few-shot exemplars "activating" latent
	// knowledge, which lifts recall of both classes simultaneously.
	GoldNudge float64
}

// DatasetMod adjusts behaviour per dataset, modelling knowledge-coverage
// differences (schema diversity, tail entities) and per-dataset evidence
// legibility under RAG.
type DatasetMod struct {
	CoverageScale float64
	PriorShift    float64
	AccShift      float64
	// ReadNoise adds to the chunk misread probability under RAG: DBpedia's
	// heterogeneous evidence is harder to map onto the claim.
	ReadNoise float64
}

// Profile is the full behavioural parameterisation of a simulated model.
type Profile struct {
	Name   string
	Params float64 // billions
	// Coverage is the base probability scale of knowing a head fact.
	Coverage float64
	// Accuracy is the probability of judging a known fact correctly.
	Accuracy float64
	// TruePrior is the probability of answering "true" on unknown facts.
	TruePrior float64
	// ContextSkill is the probability of reading evidence stance correctly
	// under RAG.
	ContextSkill float64
	// TrustContext is the probability of following decisive evidence over
	// the internal belief (contextual bias; Leng et al.).
	TrustContext float64

	// Latency model: tokens/second for prompt ingestion and generation plus
	// a fixed per-call overhead (seconds).
	PromptTPS float64
	GenTPS    float64
	Overhead  float64

	Methods  map[Method]MethodMod
	Datasets map[string]DatasetMod
}

// ConformanceRetryBoost is how much each re-prompt improves the chance of a
// schema-conformant answer.
const ConformanceRetryBoost = 0.45

// Sim is a deterministic simulated model.
type Sim struct {
	p Profile
}

// NewSim builds a simulated model from a profile.
func NewSim(p Profile) *Sim { return &Sim{p: p} }

// Name implements Model.
func (s *Sim) Name() string { return s.p.Name }

// ParamsB implements Model.
func (s *Sim) ParamsB() float64 { return s.p.Params }

// Profile exposes the model's parameterisation (read-only by convention).
func (s *Sim) Profile() Profile { return s.p }

func (s *Sim) methodMod(m Method) MethodMod {
	if mm, ok := s.p.Methods[m]; ok {
		return mm
	}
	return MethodMod{Conformance: 1}
}

func (s *Sim) datasetMod(ds string) DatasetMod {
	if dm, ok := s.p.Datasets[ds]; ok {
		return dm
	}
	return DatasetMod{CoverageScale: 1}
}

// Shared-draw weights: the probability that a stochastic decision about a
// claim is drawn from a *claim-level* stream shared by every model rather
// than a model-private stream. Shared draws encode the paper's observation
// that open-source LLMs "share much of their internal knowledge as well as
// their error profiles" (§7): facts easy for one model tend to be easy for
// all, and shared misconceptions survive majority voting.
const (
	sharedKnows = 0.65
	sharedAcc   = 0.50
	sharedPrior = 0.45
	sharedNudge = 0.50
)

// draw returns a uniform sample for (claim, kind): with probability w it
// comes from the claim-level shared stream (identical for all models),
// otherwise from the model-private stream. Marginally uniform either way.
func (s *Sim) draw(c Claim, kind string, w float64) float64 {
	if det.Bool(w, "shared-pick", kind, c.Key) {
		return det.Uniform("shared", kind, c.Key)
	}
	return det.Uniform(s.p.Name, kind, c.Key)
}

// Knows reports whether the model's parametric knowledge covers the claim.
// It is method-independent: the same model consults the same knowledge
// regardless of prompting, which is what makes cross-method prediction
// overlaps (paper Fig. 4) large. The draw is partly shared across models,
// so higher-coverage models know a superset of what lower-coverage models
// know on common-knowledge facts.
func (s *Sim) Knows(c Claim) bool {
	dm := s.datasetMod(c.Dataset)
	cov := s.p.Coverage * dm.CoverageScale * (0.45 + 0.55*c.Popularity) * topicCoverage(c.Topic)
	return s.draw(c, "knows", sharedKnows) < clamp01(cov)
}

// topicCoverage scales knowledge coverage by domain: web-prominent domains
// (education, news) are better represented in training data than long-tail
// ones (architecture, transportation) — the gradient behind the paper's
// topic-stratified error rates (§7).
func topicCoverage(topic string) float64 {
	switch topic {
	case "Education":
		return 1.18
	case "News":
		return 1.05
	case "Culture":
		return 0.96
	case "Business":
		return 0.90
	case "Sports":
		return 0.88
	case "Architecture":
		return 0.72
	case "Transportation":
		return 0.58
	default:
		return 1.0
	}
}

// Belief returns the model's internal belief about the claim (true/false),
// before any method-specific elicitation effects. Beliefs are fixed per
// (model, claim) so methods disagree only through elicitation, mirroring
// the paper's finding of limited true complementarity.
func (s *Sim) Belief(c Claim, method Method) bool {
	dm := s.datasetMod(c.Dataset)
	mm := s.methodMod(method)
	if s.Knows(c) {
		acc := clamp01(s.p.Accuracy + dm.AccShift + mm.AccShift)
		if s.draw(c, "acc", sharedAcc) < acc {
			return c.Gold
		}
		return !c.Gold
	}
	if mm.GoldNudge > 0 && s.draw(c, "nudge", sharedNudge) < mm.GoldNudge {
		return c.Gold
	}
	prior := clamp01(s.p.TruePrior + dm.PriorShift + mm.PriorShift)
	return s.draw(c, "prior", sharedPrior) < prior
}

// Generate implements Model.
func (s *Sim) Generate(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	c := req.Claim
	mm := s.methodMod(req.Method)

	verdict := s.decide(req)

	// Format conformance: GIV methods demand a JSON schema; the model
	// sometimes rambles instead. Re-prompts (Attempt > 0) flag the
	// non-compliance and raise conformance.
	conf := mm.Conformance
	if conf == 0 {
		conf = 1
	}
	conf = clamp01(conf + float64(req.Attempt)*ConformanceRetryBoost)
	conformant := det.Bool(conf, s.p.Name, c.Key, string(req.Method), "conform", fmt.Sprint(req.Attempt))

	out := s.render(req, verdict, conformant)
	usage := s.usage(req, out)
	return Response{Text: out, Usage: usage}, nil
}

// decide produces the model's verdict for the request.
func (s *Sim) decide(req Request) bool {
	c := req.Claim
	mm := s.methodMod(req.Method)

	if req.Method == MethodRAG && len(req.Evidence) > 0 {
		if v, decisive := s.readEvidence(req); decisive {
			return v
		}
	}
	verdict := s.Belief(c, req.Method)
	if mm.Flip > 0 && det.Bool(mm.Flip, s.p.Name, c.Key, string(req.Method), "flip") {
		verdict = !verdict
	}
	return verdict
}

// readEvidence reads the stance of the supplied chunks from their text and
// returns (verdict, decisive). Reading is imperfect: each chunk's stance is
// misread with probability 1-ContextSkill, and decisive evidence is only
// followed with probability TrustContext.
func (s *Sim) readEvidence(req Request) (bool, bool) {
	c := req.Claim
	dm := s.datasetMod(c.Dataset)
	misread := clamp01((1 - s.p.ContextSkill) + dm.ReadNoise)
	score := 0
	for i, chunk := range req.Evidence {
		st := ReadStance(c, chunk)
		if st == 0 {
			continue
		}
		if det.Bool(misread, s.p.Name, c.Key, "read", fmt.Sprint(i)) {
			st = -st // misreading inverts the chunk's contribution
		}
		score += st
	}
	if score == 0 {
		return false, false
	}
	if !det.Bool(s.p.TrustContext, s.p.Name, c.Key, "trust") {
		return false, false // fall back to internal belief
	}
	return score > 0, true
}

// ReadStance lexically derives a chunk's stance toward the claim from its
// text: +1 supporting, -1 refuting, 0 neutral/unrelated. Exported so tests
// and the error-analysis module can replicate the model's reading.
func ReadStance(c Claim, chunkText string) int {
	if c.SubjectLabel == "" || !strings.Contains(chunkText, c.SubjectLabel) {
		return 0
	}
	if strings.Contains(chunkText, "not the case that") &&
		strings.Contains(chunkText, c.ObjectLabel) {
		return -1
	}
	assertion := c.SubjectLabel + " " + c.Phrase + " "
	if idx := strings.Index(chunkText, assertion); idx >= 0 {
		rest := chunkText[idx+len(assertion):]
		if strings.HasPrefix(rest, c.ObjectLabel) {
			return 1
		}
		return -1 // asserts a different value for the same relation
	}
	return 0
}

// render produces the output text. Conformant GIV answers use the required
// JSON schema; non-conformant ones ramble. DKA answers are free text.
func (s *Sim) render(req Request, verdict, conformant bool) string {
	c := req.Claim
	label := "FALSE"
	if verdict {
		label = "TRUE"
	}
	reason := s.reason(c, verdict, req.Method)
	switch req.Method {
	case MethodGIVZ, MethodGIVF:
		if !conformant {
			return fmt.Sprintf("Well, considering the statement about %s, one could argue it %s. %s",
				c.SubjectLabel, strings.ToLower(label), reason)
		}
		return fmt.Sprintf(`{"verdict": %q, "reason": %q}`, strings.ToLower(label), reason)
	case MethodRAG:
		return fmt.Sprintf("%s. Based on the provided context: %s", label, reason)
	default:
		return fmt.Sprintf("%s. %s", label, reason)
	}
}

// reason generates an explanation whose vocabulary tracks the claim's
// relation category; the error-analysis pipeline clusters these texts into
// the paper's E1–E6 buckets.
func (s *Sim) reason(c Claim, verdict bool, method Method) string {
	pick := func(opts []string) string {
		return opts[det.IntN(len(opts), s.p.Name, c.Key, string(method), "reason")]
	}
	if verdict {
		return pick([]string{
			"The statement matches well-established information about " + c.SubjectLabel + ".",
			"Available knowledge about " + c.SubjectLabel + " confirms this relation to " + c.ObjectLabel + ".",
			"This is consistent with the recorded facts for " + c.SubjectLabel + ".",
		})
	}
	switch c.Category {
	case "geo":
		return pick([]string{
			"The stated place conflicts with the known location or nationality of " + c.SubjectLabel + ".",
			"Geographic records associate " + c.SubjectLabel + " with a different country or city than " + c.ObjectLabel + ".",
			"The location " + c.ObjectLabel + " is inconsistent with the geography of " + c.SubjectLabel + ".",
		})
	case "relationship":
		return pick([]string{
			"The marital or personal relationship between " + c.SubjectLabel + " and " + c.ObjectLabel + " is not supported.",
			"Known relationship information about " + c.SubjectLabel + " contradicts a link to " + c.ObjectLabel + ".",
		})
	case "role":
		return pick([]string{
			"The role linking " + c.SubjectLabel + " to " + c.ObjectLabel + " appears misattributed.",
			c.SubjectLabel + " is associated with a different team, employer or position than " + c.ObjectLabel + ".",
		})
	case "genre":
		return pick([]string{
			"The genre classification of " + c.SubjectLabel + " does not include " + c.ObjectLabel + ".",
			c.SubjectLabel + " is categorised under a different genre than " + c.ObjectLabel + ".",
		})
	case "identifier":
		return pick([]string{
			"The biographical identifier or award attributed to " + c.SubjectLabel + " is inaccurate.",
			"Records of awards and identifiers for " + c.SubjectLabel + " do not mention " + c.ObjectLabel + ".",
		})
	default:
		return pick([]string{
			"The supplied context does not mention the asserted details about " + c.SubjectLabel + ".",
			"No relevant information about " + c.SubjectLabel + " and " + c.ObjectLabel + " could be recalled.",
		})
	}
}

// usage computes the simulated token and latency accounting for a call.
func (s *Sim) usage(req Request, output string) Usage {
	pt := text.CountTokens(req.System) + text.CountTokens(req.Prompt)
	for _, e := range req.Evidence {
		pt += text.CountTokens(e)
	}
	ct := text.CountTokens(output)
	secs := s.p.Overhead + float64(pt)/s.p.PromptTPS + float64(ct)/s.p.GenTPS
	secs = det.Jitter(secs, 0.18, s.p.Name, req.Claim.Key, string(req.Method), "lat")
	// A thin tail of slow responses models the outliers the paper's IQR
	// filter removes.
	if det.Bool(0.03, s.p.Name, req.Claim.Key, string(req.Method), "slow") {
		secs *= 3 + 4*det.Uniform(s.p.Name, req.Claim.Key, "slowmag")
	}
	return Usage{
		PromptTokens:     pt,
		CompletionTokens: ct,
		Latency:          time.Duration(secs * float64(time.Second)),
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
