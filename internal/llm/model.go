// Package llm provides the language-model substrate of the benchmark. The
// paper runs four open-source 7–9B models via Ollama plus OpenAI's GPT-4o
// mini; this package substitutes deterministic *simulated* models that
// preserve every behavioural property the benchmark exercises:
//
//   - parametric knowledge: each model holds a popularity-weighted noisy
//     view of the synthetic world, so it genuinely "knows" head facts and
//     guesses on tail facts (the head-to-tail effect of Sun et al.);
//   - a positive-response prior that produces the paper's class biases
//     (e.g. near-zero F1(F) on the 99%-true YAGO dataset);
//   - prompting sensitivity: per-method elicitation modifiers reproduce the
//     paper's DKA/GIV-Z/GIV-F orderings, including models that degrade
//     under zero-shot structured prompting;
//   - format (non-)conformance: GIV outputs occasionally fail the required
//     JSON schema and must be re-prompted;
//   - evidence reading: under RAG the model derives its verdict from the
//     stance of supplied context chunks — parsed lexically from the chunk
//     text itself, not from hidden labels — with an imperfect context skill
//     and a contextual-trust parameter;
//   - resource usage: a latency and token model calibrated per model so
//     execution-time tables have the published shape.
//
// All stochastic choices are keyed deterministic hashes, so the benchmark is
// exactly reproducible.
package llm

import (
	"context"
	"time"
)

// Method names the verification strategies; they modulate model behaviour.
type Method string

// The benchmark's four verification methods.
const (
	MethodDKA  Method = "DKA"
	MethodGIVZ Method = "GIV-Z"
	MethodGIVF Method = "GIV-F"
	MethodRAG  Method = "RAG"
)

// AllMethods lists methods in the paper's presentation order.
var AllMethods = []Method{MethodDKA, MethodGIVZ, MethodGIVF, MethodRAG}

// Claim is the structured view of the statement under verification. A real
// LLM recovers this from the prompt text; the simulator receives it
// alongside the prompt as its handle into the synthetic world. Prompt text
// is still built, tokenised and charged for, and output text is still
// parsed by the calling strategy.
type Claim struct {
	// Key is the canonical world identity "subject|relation|object".
	Key string
	// FactID is the dataset-scoped fact identifier.
	FactID string
	// Dataset names the owning dataset ("FactBench", "YAGO", "DBpedia").
	Dataset string
	// Gold is the ground-truth label of the claim.
	Gold bool
	// Popularity in (0,1] drives parametric-knowledge coverage.
	Popularity float64
	// Category is the relation category (geo, role, relationship, genre,
	// identifier) used for error-explanation generation.
	Category string
	// Topic is the fact's domain stratum; some domains are better covered
	// by parametric knowledge than others (paper §7's stratified study).
	Topic string
	// Sentence is the verbalised claim.
	Sentence string
	// SubjectLabel, ObjectLabel and Phrase expose the claim's surface parts
	// for evidence-stance reading.
	SubjectLabel string
	ObjectLabel  string
	Phrase       string
}

// Request is a single generation call.
type Request struct {
	// System and Prompt are the prompt parts (token-charged).
	System string
	Prompt string
	// Claim is the simulator's handle to the statement under verification.
	Claim Claim
	// Method tells the simulator which elicitation regime applies.
	Method Method
	// FewShot marks GIV few-shot prompting.
	FewShot bool
	// Evidence carries the context chunks under RAG (token-charged and
	// stance-read by the model).
	Evidence []string
	// Attempt is the re-prompt attempt index (0 = first try). Conformance
	// improves on re-prompts, as the paper's flagging protocol intends.
	Attempt int
}

// Usage accounts for one call's resource consumption.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
	// Latency is the simulated wall-clock duration of the call.
	Latency time.Duration
}

// Response is a generation result.
type Response struct {
	// Text is the raw model output; strategies parse verdicts from it.
	Text string
	// Usage reports simulated resource consumption.
	Usage Usage
}

// Model is a language model capable of fact-verification generation.
type Model interface {
	// Name returns the model identifier (e.g. "gemma2:9b").
	Name() string
	// ParamsB returns the parameter count in billions.
	ParamsB() float64
	// Generate produces a response for the request. The context is honoured
	// for cancellation.
	Generate(ctx context.Context, req Request) (Response, error)
}
