package llm

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestCostOrdering(t *testing.T) {
	// The schedule the consensus planner relies on: mistral's throughput
	// makes it the cheapest voter, llama3.1's slow generator the dearest.
	order := []string{Mistral, Qwen25, Gemma2, Llama31}
	for i := 1; i < len(order); i++ {
		if Cost(order[i-1]) >= Cost(order[i]) {
			t.Errorf("Cost(%s) = %.3f not below Cost(%s) = %.3f",
				order[i-1], Cost(order[i-1]), order[i], Cost(order[i]))
		}
	}
	for _, name := range order {
		c := Cost(name)
		if c <= 0 || math.IsInf(c, 1) {
			t.Errorf("Cost(%s) = %v, want finite positive", name, c)
		}
	}
}

func TestCostUnknownModel(t *testing.T) {
	if c := Cost("no-such-model"); !math.IsInf(c, 1) {
		t.Errorf("Cost(unknown) = %v, want +Inf", c)
	}
}

func TestPacedSleepsScaledLatency(t *testing.T) {
	m := MustNew(Gemma2)
	req := Request{Method: MethodDKA, Claim: claim(true)}
	base, err := m.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if base.Usage.Latency <= 0 {
		t.Fatal("profile reported no latency; pacing test is vacuous")
	}
	scale := float64(2*time.Millisecond) / float64(base.Usage.Latency)
	paced := Paced{Model: m, Scale: scale}
	start := time.Now()
	resp, err := paced.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("paced call returned in %v, want >= 2ms of wall clock", elapsed)
	}
	if resp.Text != base.Text || resp.Usage.Latency != base.Usage.Latency {
		t.Error("pacing changed the response content")
	}
}

func TestPacedZeroScaleIsTransparent(t *testing.T) {
	m := MustNew(Mistral)
	req := Request{Method: MethodDKA, Claim: claim(true)}
	want, err := m.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Paced{Model: m}.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != want.Text {
		t.Error("zero-scale pacing changed the response")
	}
}

func TestPacedHonoursCancellation(t *testing.T) {
	m := MustNew(Llama31)
	// A scale that would sleep for minutes: cancellation must cut it short.
	paced := Paced{Model: m, Scale: 1e6}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := paced.Generate(ctx, Request{Method: MethodDKA, Claim: claim(true)})
	if err == nil {
		t.Fatal("cancelled paced call returned no error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
