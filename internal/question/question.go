// Package question implements phase 2a of the RAG pipeline: generating a
// set of candidate search questions for a verbalised fact (paper §3.2,
// "Question Generation"). The paper prompts an LLM for k_q = 10 distinct
// questions per fact; this deterministic generator produces the same shape —
// a mix of direct, inverted, confirmation, and loosely-related paraphrases —
// so downstream ranking sees the published similarity distribution
// (mean δ ≈ 0.63, ~45% high / 34% medium / 21% low similarity).
package question

import (
	"fmt"
	"strings"

	"factcheck/internal/dataset"
	"factcheck/internal/det"
)

// DefaultK is the number of questions generated per fact (paper k_q = 10).
const DefaultK = 10

// Question is a generated search query candidate for a fact.
type Question struct {
	Text string
	// Score is the cross-encoder similarity to the source sentence, filled
	// in by the reranker. It is persisted with the RAG dataset.
	Score float64
}

// Generate produces up to k candidate questions for the fact. Generation is
// deterministic per fact. A small fraction of facts yield fewer questions
// (the paper reports min q_t = 2, mean 9.67), emulating LLM output-parsing
// losses.
func Generate(f *dataset.Fact, k int) []Question {
	if k <= 0 {
		k = DefaultK
	}
	s := f.Subject.Label
	o := f.Object.Label
	rel := f.Relation
	qbase := fmt.Sprintf(rel.Question, s)

	candidates := []string{
		qbase + "?",
		fmt.Sprintf("Is it true that %s %s %s?", s, rel.Phrase, o),
		fmt.Sprintf("Did %s really %s %s?", s, relVerb(rel.Phrase), o),
		fmt.Sprintf("%s %s %s - fact check", s, rel.Phrase, o),
		fmt.Sprintf("What is known about %s and %s?", s, o),
		fmt.Sprintf("%s %s", s, strings.ToLower(rel.Phrase)),
		fmt.Sprintf("Which sources confirm that %s %s %s?", s, rel.Phrase, o),
		fmt.Sprintf("Tell me about %s", s),
		fmt.Sprintf("%s biography and background", s),
		fmt.Sprintf("History of %s", o),
		fmt.Sprintf("Facts about %s", o),
		fmt.Sprintf("When did %s %s %s?", s, relVerb(rel.Phrase), o),
	}

	// Deterministic per-fact selection: keep the first k' candidates where
	// k' models the paper's question-count distribution (median 10, mean
	// 9.67, occasional extraction failures down to 2).
	n := k
	u := det.Uniform("qcount", f.ID)
	switch {
	case u < 0.02:
		n = 2 + det.IntN(3, "qcount-low", f.ID) // rare heavy parse failure
	case u < 0.12:
		n = k - 1 - det.IntN(2, "qcount-mid", f.ID)
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	out := make([]Question, 0, n)
	// Rotate the candidate list per fact so different facts favour
	// different paraphrase styles, as LLM sampling would.
	off := det.IntN(len(candidates), "qrot", f.ID)
	for i := 0; i < n; i++ {
		out = append(out, Question{Text: candidates[(off+i)%len(candidates)]})
	}
	return out
}

// relVerb strips a leading copula from a verbalisation phrase to form the
// bare verb used in "Did X really ... Y?" questions.
func relVerb(phrase string) string {
	for _, pre := range []string{"is ", "was ", "has ", "have "} {
		if strings.HasPrefix(phrase, pre) {
			return strings.TrimPrefix(phrase, pre)
		}
	}
	return phrase
}

// Stats summarises a generated question set (paper §4.1 reports these for
// the full RAG dataset).
type Stats struct {
	Total      int
	PerFactMin int
	PerFactMax int
	PerFactAvg float64
	// Similarity distribution over scored questions.
	MeanScore   float64
	MedianScore float64
	HighTier    float64 // fraction with δ >= 0.70
	MediumTier  float64 // fraction with 0.40 <= δ < 0.70
	LowTier     float64 // fraction with δ < 0.40
}

// Summarize computes Stats over per-fact question slices (scores must be
// filled in by the reranker first).
func Summarize(perFact [][]Question) Stats {
	st := Stats{PerFactMin: 1 << 30}
	var scores []float64
	for _, qs := range perFact {
		n := len(qs)
		st.Total += n
		if n < st.PerFactMin {
			st.PerFactMin = n
		}
		if n > st.PerFactMax {
			st.PerFactMax = n
		}
		for _, q := range qs {
			scores = append(scores, q.Score)
		}
	}
	if len(perFact) > 0 {
		st.PerFactAvg = float64(st.Total) / float64(len(perFact))
	}
	if st.PerFactMin == 1<<30 {
		st.PerFactMin = 0
	}
	if len(scores) == 0 {
		return st
	}
	sum := 0.0
	hi, mid, lo := 0, 0, 0
	for _, s := range scores {
		sum += s
		switch {
		case s >= 0.70:
			hi++
		case s >= 0.40:
			mid++
		default:
			lo++
		}
	}
	st.MeanScore = sum / float64(len(scores))
	st.MedianScore = median(scores)
	n := float64(len(scores))
	st.HighTier = float64(hi) / n
	st.MediumTier = float64(mid) / n
	st.LowTier = float64(lo) / n
	return st
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion sort is fine for analysis-time use
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
