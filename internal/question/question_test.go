package question

import (
	"strings"
	"testing"

	"factcheck/internal/dataset"
	"factcheck/internal/world"
)

func facts(t *testing.T) []*dataset.Fact {
	t.Helper()
	w := world.New(world.SmallConfig())
	return dataset.Build(w, dataset.FactBench, 0.2).Facts
}

func TestGenerateDeterministic(t *testing.T) {
	fs := facts(t)
	a := Generate(fs[0], DefaultK)
	b := Generate(fs[0], DefaultK)
	if len(a) != len(b) {
		t.Fatalf("question counts differ")
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("question %d differs", i)
		}
	}
}

func TestGenerateCountDistribution(t *testing.T) {
	fs := facts(t)
	minC, maxC := 1<<30, 0
	total := 0
	for _, f := range fs {
		n := len(Generate(f, DefaultK))
		total += n
		if n < minC {
			minC = n
		}
		if n > maxC {
			maxC = n
		}
	}
	if maxC != DefaultK {
		t.Errorf("max questions = %d, want %d", maxC, DefaultK)
	}
	if minC < 2 {
		t.Errorf("min questions = %d, want >= 2 (paper's floor)", minC)
	}
	avg := float64(total) / float64(len(fs))
	if avg < 9.0 || avg > 10.0 {
		t.Errorf("mean questions per fact = %.2f, want ~9.67", avg)
	}
}

func TestQuestionsMentionSubject(t *testing.T) {
	fs := facts(t)
	f := fs[0]
	mention := 0
	qs := Generate(f, DefaultK)
	for _, q := range qs {
		if strings.Contains(q.Text, f.Subject.Label) || strings.Contains(q.Text, f.Object.Label) {
			mention++
		}
	}
	if mention < len(qs)/2 {
		t.Errorf("only %d/%d questions mention the entities", mention, len(qs))
	}
}

func TestQuestionsDistinct(t *testing.T) {
	fs := facts(t)
	for _, f := range fs[:30] {
		seen := map[string]bool{}
		for _, q := range Generate(f, DefaultK) {
			if seen[q.Text] {
				t.Fatalf("fact %s has duplicate question %q", f.ID, q.Text)
			}
			seen[q.Text] = true
		}
	}
}

func TestGenerateDefaultK(t *testing.T) {
	fs := facts(t)
	if n := len(Generate(fs[1], 0)); n == 0 || n > DefaultK {
		t.Errorf("Generate with k=0 produced %d questions", n)
	}
}

func TestRelVerb(t *testing.T) {
	tests := []struct{ in, want string }{
		{"is married to", "married to"},
		{"was born in", "born in"},
		{"has the official language", "the official language"},
		{"plays for", "plays for"},
	}
	for _, tc := range tests {
		if got := relVerb(tc.in); got != tc.want {
			t.Errorf("relVerb(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	perFact := [][]Question{
		{{Text: "a", Score: 0.9}, {Text: "b", Score: 0.5}},
		{{Text: "c", Score: 0.3}},
	}
	st := Summarize(perFact)
	if st.Total != 3 {
		t.Errorf("Total = %d, want 3", st.Total)
	}
	if st.PerFactMin != 1 || st.PerFactMax != 2 {
		t.Errorf("min/max = %d/%d, want 1/2", st.PerFactMin, st.PerFactMax)
	}
	if st.PerFactAvg != 1.5 {
		t.Errorf("avg = %f, want 1.5", st.PerFactAvg)
	}
	wantMean := (0.9 + 0.5 + 0.3) / 3
	if diff := st.MeanScore - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean score = %f, want %f", st.MeanScore, wantMean)
	}
	if st.MedianScore != 0.5 {
		t.Errorf("median = %f, want 0.5", st.MedianScore)
	}
	// Tiers: 0.9 high, 0.5 medium, 0.3 low.
	if st.HighTier == 0 || st.MediumTier == 0 || st.LowTier == 0 {
		t.Errorf("tiers = %f/%f/%f, want all non-zero", st.HighTier, st.MediumTier, st.LowTier)
	}
	sum := st.HighTier + st.MediumTier + st.LowTier
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("tier fractions sum to %f, want 1", sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Total != 0 || st.PerFactMin != 0 {
		t.Errorf("empty summary = %+v", st)
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("median = %f, want 2.5", got)
	}
}
