package resilience

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"factcheck/internal/det"
	"factcheck/internal/llm"
	"factcheck/internal/obs"
)

// Backoff and breaker events record into the layer histograms (and span
// out under traced requests) beside the serving layers they sit between.
var (
	retryHist = obs.Layer("retry_backoff")
)

// Registry owns the per-model breakers and retry policy of one process.
// It wraps models once (Benchmark.Model caches the wrapped chain) and
// snapshots ensemble-wide stats for /statsz and /metricsz.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	breakers map[string]*Breaker

	retries   atomic.Uint64 // backoff sleeps taken
	recovered atomic.Uint64 // calls that succeeded after >= 1 retry
	exhausted atomic.Uint64 // calls that ran out of retry budget
}

// NewRegistry builds a registry (nil when cfg is nil: the layer is off).
func NewRegistry(cfg *Config) *Registry {
	if cfg == nil {
		return nil
	}
	return &Registry{cfg: cfg.fill(), breakers: map[string]*Breaker{}}
}

// Breaker returns (creating on first use) the named model's breaker, or
// nil when breakers are disabled (registry nil or Threshold < 0).
func (r *Registry) Breaker(model string) *Breaker {
	if r == nil || r.cfg.Threshold < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[model]
	if b == nil {
		b = NewBreaker(r.cfg)
		r.breakers[model] = b
	}
	return b
}

// Model wraps a model with the registry's breaker and retry policy
// (unchanged when the registry is nil).
func (r *Registry) Model(m llm.Model) llm.Model {
	if r == nil {
		return m
	}
	return &resilientModel{Model: m, reg: r, br: r.Breaker(m.Name())}
}

// Stats is the ensemble-wide resilience snapshot.
type Stats struct {
	// Retries, Recovered and Exhausted count backoff sleeps taken, calls
	// that succeeded after at least one retry, and calls that ran out of
	// retry budget.
	Retries   uint64 `json:"retries"`
	Recovered uint64 `json:"recovered"`
	Exhausted uint64 `json:"exhausted"`
	// Breakers maps model name -> breaker counters.
	Breakers map[string]BreakerStats `json:"breakers,omitempty"`
}

// Stats snapshots the registry (zero when nil).
func (r *Registry) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	st := Stats{
		Retries:   r.retries.Load(),
		Recovered: r.recovered.Load(),
		Exhausted: r.exhausted.Load(),
	}
	r.mu.Lock()
	if len(r.breakers) > 0 {
		st.Breakers = make(map[string]BreakerStats, len(r.breakers))
		for name, b := range r.breakers {
			st.Breakers[name] = b.Stats()
		}
	}
	r.mu.Unlock()
	return st
}

// BreakerModels lists models with a breaker, sorted (for deterministic
// metrics output).
func (r *Registry) BreakerModels() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.breakers))
	for name := range r.breakers {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// resilientModel is the retry-around-breaker chain over one model: every
// attempt (first call and each retry) passes the breaker gate, so a storm
// of failing retries is exactly what trips it.
type resilientModel struct {
	llm.Model
	reg *Registry
	br  *Breaker
}

// Generate runs the wrapped model under the retry/breaker policy. Only
// transient errors are retried; unavailable (hard-down, breaker-open) and
// semantic errors return immediately. Backoff sleeps honour ctx and are
// det-jittered by (seed, model, claim key, method, retry index), so a
// replayed chaos run waits the same schedule.
func (m *resilientModel) Generate(ctx context.Context, req llm.Request) (llm.Response, error) {
	name := m.Model.Name()
	retries := m.reg.cfg.Retries
	if retries < 0 {
		retries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		admit, probe := false, false
		if m.br != nil {
			admit, probe = m.br.Allow()
			if !admit {
				return llm.Response{}, &OpenError{Model: name}
			}
		}
		resp, err := m.Model.Generate(ctx, req)
		if m.br != nil {
			m.br.Report(probe, err)
		}
		if err == nil {
			if attempt > 0 {
				m.reg.recovered.Add(1)
			}
			return resp, nil
		}
		lastErr = err
		if !IsTransient(err) || ctx.Err() != nil {
			return llm.Response{}, err
		}
		if attempt >= retries {
			m.reg.exhausted.Add(1)
			return llm.Response{}, err
		}
		// Exponential backoff, capped, det-jittered in [0.5x, 1.5x].
		d := m.reg.cfg.RetryBase << attempt
		if d > m.reg.cfg.RetryMax || d <= 0 {
			d = m.reg.cfg.RetryMax
		}
		d = time.Duration(det.Jitter(float64(d), 0.5,
			"retry", m.reg.cfg.Seed, name, req.Claim.Key, string(req.Method), strconv.Itoa(attempt)))
		m.reg.retries.Add(1)
		_, endSpan := obs.StartSpan(ctx, "retry_backoff")
		sleepStart := time.Now()
		t := time.NewTimer(d)
		select {
		case <-t.C:
			retryHist.Observe(time.Since(sleepStart))
			endSpan()
		case <-ctx.Done():
			t.Stop()
			retryHist.Observe(time.Since(sleepStart))
			endSpan()
			return llm.Response{}, lastErr
		}
	}
}
