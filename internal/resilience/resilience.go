// Package resilience is the serving stack's failure-handling layer: capped
// exponential-backoff retries for transient model errors and per-model
// circuit breakers, both deterministic by construction.
//
// Retries use det-seeded jitter keyed by (seed, model, claim, attempt), so
// a retried chaos run backs off identically every time; a call that
// recovers on retry returns the wrapped model's response untouched, so
// retried verdicts are byte-identical to fault-free ones.
//
// Breakers are count-based, not time-based: a breaker opens after
// Threshold consecutive failures, rejects calls while open, admits a probe
// every ProbeEvery-th rejected call (half-open), and closes again after
// ProbeSuccesses consecutive probe successes. Transitions are a pure
// function of the call/outcome sequence — no clocks — which is what makes
// breaker behaviour replayable across identical chaos runs.
//
// Error classification is duck-typed (no dependency on the fault package):
// an error is transient when it (or anything it wraps) has a
// `FaultTransient() bool` method returning true, and unavailable via
// `FaultUnavailable() bool` — breaker rejections and hard-down faults are
// unavailable, and the serving layer maps unavailable to degraded serving
// or 503 instead of 500.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Config parameterises the resilience layer. The zero value of a field
// selects its documented default; a nil *Config disables the layer.
type Config struct {
	// Retries bounds retry attempts after the first call (so a call runs
	// at most Retries+1 times). Default 3; negative disables retries.
	Retries int
	// RetryBase is the first backoff; each retry doubles it, capped at
	// RetryMax, then multiplied by a det jitter in [0.5, 1.5].
	// Defaults 5ms and 250ms.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed keys the backoff jitter (deterministic chaos runs replay
	// identical backoff schedules).
	Seed string
	// Threshold is the consecutive-failure count that opens a breaker.
	// Default 5; negative disables breakers.
	Threshold int
	// ProbeEvery admits one half-open probe per that many rejected calls
	// while open. Default 4.
	ProbeEvery int
	// ProbeSuccesses is the consecutive probe successes that close an
	// open breaker. Default 2.
	ProbeSuccesses int
}

func (c Config) fill() Config {
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 4
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// IsTransient reports whether err carries a retryable fault marker.
func IsTransient(err error) bool {
	var t interface{ FaultTransient() bool }
	return errors.As(err, &t) && t.FaultTransient()
}

// IsUnavailable reports whether err marks a hard-down or breaker-open
// dependency — a failure mode the serving layer degrades around (stale
// answer, surviving-ensemble consensus) instead of treating as a 500.
func IsUnavailable(err error) bool {
	var u interface{ FaultUnavailable() bool }
	return errors.As(err, &u) && u.FaultUnavailable()
}

// OpenError reports a call rejected by an open circuit breaker.
type OpenError struct {
	Model string
}

// Error implements error.
func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: circuit breaker open for %s", e.Model)
}

// FaultUnavailable marks breaker rejections unavailable for classification.
func (e *OpenError) FaultUnavailable() bool { return true }

// State is a breaker state.
type State int32

// The breaker states, in escalation order.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a count-based circuit breaker. All transitions happen under
// one mutex on call/report boundaries; there are no clocks anywhere, so a
// given sequence of outcomes always walks the same state sequence.
type Breaker struct {
	cfg Config

	mu          sync.Mutex
	state       State
	consecFails int // closed: consecutive failures toward Threshold
	rejects     int // open: rejections since opening, for probe cadence
	probeWins   int // half-open: consecutive probe successes
	probing     bool

	stats BreakerStats
}

// BreakerStats counts a breaker's lifetime activity. Snapshot via
// Breaker.Stats (or Registry.Stats for the whole ensemble).
type BreakerStats struct {
	// State is the current state name.
	State string `json:"state"`
	// Opens, HalfOpens and Closes count state transitions.
	Opens     uint64 `json:"opens"`
	HalfOpens uint64 `json:"half_opens"`
	Closes    uint64 `json:"closes"`
	// Rejected counts calls refused while open (including half-open
	// with a probe already in flight); Probes counts admitted probes.
	Rejected uint64 `json:"rejected"`
	Probes   uint64 `json:"probes"`
}

// NewBreaker builds a breaker (cfg defaults filled).
func NewBreaker(cfg Config) *Breaker { return &Breaker{cfg: cfg.fill()} }

// Allow gates one call: admit reports whether to proceed, probe whether
// the admitted call is a half-open probe (its outcome decides the
// reopen/close transition). A rejected call must not reach the dependency.
func (b *Breaker) Allow() (admit, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, false
	case Open:
		b.rejects++
		if b.rejects%b.cfg.ProbeEvery == 0 {
			b.state = HalfOpen
			b.stats.HalfOpens++
			b.probing = true
			b.probeWins = 0
			b.stats.Probes++
			return true, true
		}
		b.stats.Rejected++
		return false, false
	default: // HalfOpen
		if b.probing {
			b.stats.Rejected++
			return false, false
		}
		b.probing = true
		b.stats.Probes++
		return true, true
	}
}

// Report records an admitted call's outcome. Context errors are the
// caller's (cancellation, deadline), not the dependency's: they leave the
// breaker untouched.
func (b *Breaker) Report(probe bool, err error) {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		if probe {
			b.mu.Lock()
			b.probing = false // the probe didn't run to a verdict; re-admit one
			b.mu.Unlock()
		}
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if err != nil {
			// A failed probe reopens: back to rejecting, fresh cadence.
			b.state = Open
			b.stats.Opens++
			b.rejects = 0
			return
		}
		b.probeWins++
		if b.probeWins >= b.cfg.ProbeSuccesses {
			b.state = Closed
			b.stats.Closes++
			b.consecFails = 0
		}
		return
	}
	if b.state != Closed {
		return // late report from a call admitted before the state moved
	}
	if err == nil {
		b.consecFails = 0
		return
	}
	b.consecFails++
	if b.consecFails >= b.cfg.Threshold {
		b.state = Open
		b.stats.Opens++
		b.rejects = 0
	}
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.State = b.state.String()
	return st
}
