package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"factcheck/internal/llm"
)

// transientErr and downErr are the duck-typed fault markers the layer
// classifies on (the real ones live in internal/fault; the duck typing is
// exactly what keeps this package free of that import).
type transientErr struct{}

func (transientErr) Error() string        { return "transient failure" }
func (transientErr) FaultTransient() bool { return true }

type downErr struct{}

func (downErr) Error() string          { return "dependency down" }
func (downErr) FaultUnavailable() bool { return true }

// scriptMod fails its first failFor calls with err (forever when failFor
// is negative), then answers resp.
type scriptMod struct {
	name    string
	failFor int
	err     error
	resp    llm.Response

	mu    sync.Mutex
	calls int
}

func (m *scriptMod) Name() string     { return m.name }
func (m *scriptMod) ParamsB() float64 { return 1 }
func (m *scriptMod) Generate(context.Context, llm.Request) (llm.Response, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	if m.failFor < 0 || m.calls <= m.failFor {
		return llm.Response{}, m.err
	}
	return m.resp, nil
}

func (m *scriptMod) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// fastRetry is a retry config whose backoff sleeps are negligible.
func fastRetry() *Config {
	return &Config{Retries: 3, RetryBase: time.Microsecond, RetryMax: 10 * time.Microsecond, Seed: "t"}
}

func TestClassification(t *testing.T) {
	if !IsTransient(transientErr{}) || !IsTransient(fmt.Errorf("wrap: %w", transientErr{})) {
		t.Error("transient marker not classified, bare or wrapped")
	}
	if IsTransient(errors.New("semantic")) || IsTransient(nil) {
		t.Error("plain error classified transient")
	}
	if !IsUnavailable(downErr{}) || !IsUnavailable(fmt.Errorf("wrap: %w", &OpenError{Model: "m"})) {
		t.Error("unavailable marker not classified, bare or wrapped")
	}
	if IsUnavailable(transientErr{}) || IsTransient(downErr{}) {
		t.Error("transient and unavailable markers cross-classified")
	}
	if msg := (&OpenError{Model: "m"}).Error(); msg == "" {
		t.Error("empty OpenError message")
	}
}

// TestBreakerWalk drives one breaker through the full state machine:
// closed -> open on Threshold consecutive failures, rejecting while open,
// half-open probe every ProbeEvery-th rejected call, reopen on a failed
// probe, closed again after ProbeSuccesses consecutive probe wins.
func TestBreakerWalk(t *testing.T) {
	b := NewBreaker(Config{Threshold: 3, ProbeEvery: 2, ProbeSuccesses: 2})
	mustAllow := func(wantAdmit, wantProbe bool) {
		t.Helper()
		admit, probe := b.Allow()
		if admit != wantAdmit || probe != wantProbe {
			t.Fatalf("Allow() = (%v, %v), want (%v, %v) in state %v", admit, probe, wantAdmit, wantProbe, b.State())
		}
	}

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		mustAllow(true, false)
		b.Report(false, transientErr{})
	}
	if b.State() != Open {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}

	// Open: the first rejected call is refused, the second admits a probe.
	mustAllow(false, false)
	mustAllow(true, true)
	// A failed probe reopens with a fresh cadence.
	b.Report(true, transientErr{})
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	mustAllow(false, false)
	mustAllow(true, true)
	// First probe success: still half-open, the next call probes again.
	b.Report(true, nil)
	if b.State() != HalfOpen {
		t.Fatalf("state after one probe win = %v, want half-open", b.State())
	}
	mustAllow(true, true)
	b.Report(true, nil)
	if b.State() != Closed {
		t.Fatalf("state after %d probe wins = %v, want closed", 2, b.State())
	}
	mustAllow(true, false)

	st := b.Stats()
	if st.Opens != 2 || st.HalfOpens != 2 || st.Closes != 1 || st.Rejected != 2 || st.Probes != 3 || st.State != "closed" {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBreakerProbeInFlight: half-open admits exactly one probe; calls
// racing the in-flight probe are rejected, not run.
func TestBreakerProbeInFlight(t *testing.T) {
	b := NewBreaker(Config{Threshold: 1, ProbeEvery: 1})
	b.Allow()
	b.Report(false, transientErr{})
	if admit, probe := b.Allow(); !admit || !probe {
		t.Fatalf("probe not admitted: (%v, %v)", admit, probe)
	}
	if admit, _ := b.Allow(); admit {
		t.Fatal("second call admitted beside an in-flight probe")
	}
}

// TestBreakerSuccessResetsCount: the failure count toward Threshold is
// consecutive, not cumulative.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(Config{Threshold: 3})
	fail := func() { b.Allow(); b.Report(false, transientErr{}) }
	fail()
	fail()
	b.Allow()
	b.Report(false, nil)
	fail()
	fail()
	if b.State() != Closed {
		t.Fatalf("state = %v after interleaved success, want closed", b.State())
	}
	fail()
	if b.State() != Open {
		t.Fatalf("state = %v after three consecutive failures, want open", b.State())
	}
}

// TestBreakerIgnoresCallerContextErrors: cancellation and deadline expiry
// are the caller's failures, not the dependency's.
func TestBreakerIgnoresCallerContextErrors(t *testing.T) {
	b := NewBreaker(Config{Threshold: 2})
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Report(false, context.Canceled)
		b.Allow()
		b.Report(false, fmt.Errorf("rpc: %w", context.DeadlineExceeded))
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after caller context errors, want closed", b.State())
	}
	// A probe cut by its caller's deadline reached no verdict: the breaker
	// stays half-open and re-admits a probe.
	b = NewBreaker(Config{Threshold: 1, ProbeEvery: 1})
	b.Allow()
	b.Report(false, transientErr{})
	_, probe := b.Allow()
	if !probe {
		t.Fatal("probe not admitted")
	}
	b.Report(true, context.DeadlineExceeded)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after context-cut probe, want half-open", b.State())
	}
	if admit, probe := b.Allow(); !admit || !probe {
		t.Fatalf("replacement probe not admitted: (%v, %v)", admit, probe)
	}
}

// TestBreakerLateReport: an outcome reported after the state moved on (a
// call admitted closed, finishing while open) must not disturb the walk.
func TestBreakerLateReport(t *testing.T) {
	b := NewBreaker(Config{Threshold: 1})
	b.Allow()
	b.Allow() // both admitted while closed
	b.Report(false, transientErr{})
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
	opens := b.Stats().Opens
	b.Report(false, transientErr{}) // the straggler lands while open
	if st := b.Stats(); st.Opens != opens || st.State != "open" {
		t.Fatalf("late report moved the breaker: %+v", st)
	}
}

// TestRetryRecovery: a model failing transiently under the retry budget
// recovers to the wrapped model's exact response, and the registry counts
// the sleeps and the recovery.
func TestRetryRecovery(t *testing.T) {
	reg := NewRegistry(fastRetry())
	inner := &scriptMod{name: "m", failFor: 2, err: transientErr{}, resp: llm.Response{Text: "payload"}}
	m := reg.Model(inner)
	resp, err := m.Generate(context.Background(), llm.Request{})
	if err != nil || resp.Text != "payload" {
		t.Fatalf("recovered call = (%+v, %v)", resp, err)
	}
	if inner.callCount() != 3 {
		t.Fatalf("inner calls = %d, want 3 (1 + 2 retries)", inner.callCount())
	}
	if st := reg.Stats(); st.Retries != 2 || st.Recovered != 1 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryExhausted(t *testing.T) {
	reg := NewRegistry(fastRetry())
	inner := &scriptMod{name: "m", failFor: -1, err: transientErr{}}
	_, err := reg.Model(inner).Generate(context.Background(), llm.Request{})
	if !IsTransient(err) {
		t.Fatalf("exhausted call returned %v, want the transient error", err)
	}
	if inner.callCount() != 4 {
		t.Fatalf("inner calls = %d, want 4 (1 + 3 retries)", inner.callCount())
	}
	if st := reg.Stats(); st.Retries != 3 || st.Recovered != 0 || st.Exhausted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestNoRetryOnSemanticOrUnavailable: only transient faults burn retry
// budget; semantic and hard-down errors return on the first attempt.
func TestNoRetryOnSemanticOrUnavailable(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"semantic", errors.New("bad verdict")},
		{"unavailable", downErr{}},
	} {
		reg := NewRegistry(fastRetry())
		inner := &scriptMod{name: "m", failFor: -1, err: tc.err}
		_, err := reg.Model(inner).Generate(context.Background(), llm.Request{})
		if !errors.Is(err, tc.err) {
			t.Fatalf("%s: returned %v, want %v", tc.name, err, tc.err)
		}
		if inner.callCount() != 1 {
			t.Fatalf("%s: inner calls = %d, want 1", tc.name, inner.callCount())
		}
		if st := reg.Stats(); st.Retries != 0 {
			t.Fatalf("%s: retried a non-transient failure: %+v", tc.name, st)
		}
	}
}

// TestBreakerOpensUnderStorm: every attempt passes the breaker gate, so a
// storm of failures trips it and later calls are rejected without ever
// reaching the model.
func TestBreakerOpensUnderStorm(t *testing.T) {
	reg := NewRegistry(&Config{Retries: -1, Threshold: 5, Seed: "t"})
	inner := &scriptMod{name: "m", failFor: -1, err: transientErr{}}
	m := reg.Model(inner)
	for i := 0; i < 5; i++ {
		if _, err := m.Generate(context.Background(), llm.Request{}); !IsTransient(err) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	_, err := m.Generate(context.Background(), llm.Request{})
	var open *OpenError
	if !errors.As(err, &open) || open.Model != "m" || !IsUnavailable(err) {
		t.Fatalf("call past threshold returned %v, want OpenError for m", err)
	}
	if inner.callCount() != 5 {
		t.Fatalf("inner calls = %d, rejected call reached the model", inner.callCount())
	}
	st := reg.Stats().Breakers["m"]
	if st.State != "open" || st.Opens != 1 || st.Rejected != 1 {
		t.Fatalf("breaker stats = %+v", st)
	}
}

// TestBreakerRecoversViaProbes: once the dependency heals, probes close
// the breaker and traffic flows again.
func TestBreakerRecoversViaProbes(t *testing.T) {
	reg := NewRegistry(&Config{Retries: -1, Threshold: 2, ProbeEvery: 1, ProbeSuccesses: 2, Seed: "t"})
	inner := &scriptMod{name: "m", failFor: 2, err: transientErr{}, resp: llm.Response{Text: "ok"}}
	m := reg.Model(inner)
	m.Generate(context.Background(), llm.Request{})
	m.Generate(context.Background(), llm.Request{}) // breaker opens; model heals
	for i := 0; i < 2; i++ {                        // ProbeEvery=1: every call probes
		if _, err := m.Generate(context.Background(), llm.Request{}); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	st := reg.Stats().Breakers["m"]
	if st.State != "closed" || st.Opens != 1 || st.Closes != 1 || st.Probes != 2 {
		t.Fatalf("breaker stats = %+v", st)
	}
	if resp, err := m.Generate(context.Background(), llm.Request{}); err != nil || resp.Text != "ok" {
		t.Fatalf("post-recovery call = (%+v, %v)", resp, err)
	}
}

// TestBackoffHonoursContext: a context expiring mid-backoff returns the
// last dependency error promptly instead of sleeping out the schedule.
func TestBackoffHonoursContext(t *testing.T) {
	reg := NewRegistry(&Config{Retries: 3, RetryBase: time.Minute, RetryMax: time.Minute, Seed: "t"})
	inner := &scriptMod{name: "m", failFor: -1, err: transientErr{}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := reg.Model(inner).Generate(ctx, llm.Request{})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancelled backoff slept %v", el)
	}
	if !IsTransient(err) {
		t.Fatalf("cancelled backoff returned %v, want the last transient error", err)
	}
	if inner.callCount() != 1 {
		t.Fatalf("inner calls = %d, want 1 (retry cut by context)", inner.callCount())
	}
}

func TestNilRegistry(t *testing.T) {
	var reg *Registry
	if NewRegistry(nil) != nil {
		t.Fatal("NewRegistry(nil) != nil")
	}
	inner := &scriptMod{name: "m"}
	if got := reg.Model(inner); got != llm.Model(inner) {
		t.Error("nil registry rewrapped the model")
	}
	if reg.Breaker("m") != nil {
		t.Error("nil registry built a breaker")
	}
	if st := reg.Stats(); st.Retries != 0 || st.Recovered != 0 || st.Exhausted != 0 || st.Breakers != nil {
		t.Errorf("nil registry stats = %+v", st)
	}
	if reg.BreakerModels() != nil {
		t.Error("nil registry listed breaker models")
	}
	// Threshold < 0 disables breakers but keeps retries.
	reg = NewRegistry(&Config{Threshold: -1})
	if reg.Breaker("m") != nil {
		t.Error("Threshold<0 still built a breaker")
	}
}

func TestBreakerModelsSorted(t *testing.T) {
	reg := NewRegistry(&Config{})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		reg.Breaker(n)
	}
	got := reg.BreakerModels()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("models = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("models = %v, want %v", got, want)
		}
	}
}
