package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
)

func fillCell(i int) Cell {
	return Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: fmt.Sprintf("m%d", i)}
}

func TestCellFillerDedupes(t *testing.T) {
	var runs atomic.Int32
	f := NewCellFiller(func(Cell) error { runs.Add(1); return nil })
	for i := 0; i < 10; i++ {
		f.Fill(fillCell(0))
	}
	f.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("run called %d times for 10 Fills of one cell, want 1", got)
	}
	// Successful cells stay marked: no re-run.
	f.Fill(fillCell(0))
	f.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("run called %d times after refill of a done cell, want 1", got)
	}
}

func TestCellFillerRetriesFailures(t *testing.T) {
	var runs atomic.Int32
	f := NewCellFiller(func(Cell) error {
		if runs.Add(1) == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	f.Fill(fillCell(0))
	f.Wait()
	f.Fill(fillCell(0)) // failed fills are forgotten, so this reschedules
	f.Wait()
	if got := runs.Load(); got != 2 {
		t.Fatalf("run called %d times, want 2 (failure + retry)", got)
	}
}

func TestCellFillerSerialises(t *testing.T) {
	var cur, max atomic.Int32
	f := NewCellFiller(func(Cell) error {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	for i := 0; i < 8; i++ {
		f.Fill(fillCell(i))
	}
	f.Wait()
	if got := max.Load(); got != 1 {
		t.Fatalf("%d fills ran concurrently, want 1", got)
	}
}

// TestCellFillerCloseDiscardsQueued: Close finishes the in-flight fill but
// drops the ones still waiting for the semaphore, unmarking them so a
// later Fill retries.
func TestCellFillerCloseDiscardsQueued(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int32
	f := NewCellFiller(func(Cell) error {
		runs.Add(1)
		close(started)
		<-release
		return nil
	})
	f.Fill(fillCell(0))
	<-started
	for i := 1; i < 5; i++ {
		f.Fill(fillCell(i)) // queued behind the blocked fill
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	f.Close()
	if got := runs.Load(); got != 1 {
		t.Fatalf("run called %d times across Close, want 1 (in-flight only)", got)
	}
	f.mu.Lock()
	pending := len(f.filling)
	f.mu.Unlock()
	if pending != 1 {
		t.Fatalf("%d cells still marked after Close, want 1 (the completed fill)", pending)
	}
}
