package core

import (
	"fmt"
	"sort"
	"strings"

	"factcheck/internal/analysis"
	"factcheck/internal/dataset"
	"factcheck/internal/eval"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// Series is one bar of Figure 2: a (model, method) or aggregation strategy
// with its cross-dataset micro-averaged class F1 scores.
type Series struct {
	Label   string
	F1True  float64
	F1False float64
}

// Figure2 computes the ranked cross-dataset F1 series (paper Figure 2),
// including the consensus aggregations and the random-guess baselines.
type Figure2 struct {
	// ByTrue and ByFalse are the same series ranked by each score.
	ByTrue  []Series
	ByFalse []Series
	// GuessTrue/GuessFalse are the random-guessing baselines implied by the
	// overall class distribution.
	GuessTrue  float64
	GuessFalse float64
}

// ComputeFigure2 aggregates per-(model, method) outcomes over all datasets
// and appends consensus series from rep (which may be nil to skip them).
func (b *Benchmark) ComputeFigure2(rs *ResultSet, rep *ConsensusReport) Figure2 {
	var series []Series
	for _, m := range b.Config.Models {
		for _, method := range b.Config.Methods {
			var cells [][]strategy.Outcome
			for _, dn := range b.Config.Datasets {
				cells = append(cells, rs.Get(dn, method, m))
			}
			cm := MergedMetrics(cells...)
			series = append(series, Series{
				Label:   fmt.Sprintf("%s (%s)", shortModel(m), method),
				F1True:  cm.F1True,
				F1False: cm.F1False,
			})
		}
	}
	if rep != nil {
		for _, a := range ArbiterLabels {
			for _, method := range b.Config.Methods {
				var conf eval.Confusion
				for _, dn := range b.Config.Datasets {
					cell := rep.Cells[Cell{Dataset: dn, Method: method}]
					if cell == nil {
						continue
					}
					c := cell.Results[a]
					conf.TP += c.TP
					conf.FP += c.FP
					conf.TN += c.TN
					conf.FN += c.FN
					conf.InvalidTrue += c.InvalidTrue
					conf.InvalidFalse += c.InvalidFalse
				}
				series = append(series, Series{
					Label:   fmt.Sprintf("%s (%s)", a, method),
					F1True:  conf.F1True(),
					F1False: conf.F1False(),
				})
			}
		}
	}

	// Random-guessing baseline from the pooled class distribution, guessing
	// "true" with probability 0.5.
	goldTrue, total := 0, 0
	for _, dn := range b.Config.Datasets {
		for _, f := range b.Datasets[dn].Facts {
			total++
			if f.Gold {
				goldTrue++
			}
		}
	}
	mu := 0.0
	if total > 0 {
		mu = float64(goldTrue) / float64(total)
	}
	fig := Figure2{
		GuessTrue:  eval.GuessRate(mu, 0.5),
		GuessFalse: eval.GuessRate(1-mu, 0.5),
	}
	fig.ByTrue = append([]Series(nil), series...)
	sort.SliceStable(fig.ByTrue, func(i, j int) bool { return fig.ByTrue[i].F1True > fig.ByTrue[j].F1True })
	fig.ByFalse = append([]Series(nil), series...)
	sort.SliceStable(fig.ByFalse, func(i, j int) bool { return fig.ByFalse[i].F1False > fig.ByFalse[j].F1False })
	return fig
}

// String renders both ranked charts as text.
func (f Figure2) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: cross-dataset F1 ranking.\n")
	fmt.Fprintf(&sb, "F1(T) ranking (guess rate %.2f):\n", f.GuessTrue)
	for i, s := range f.ByTrue {
		fmt.Fprintf(&sb, "  %2d. %-32s %.2f\n", i+1, s.Label, s.F1True)
	}
	fmt.Fprintf(&sb, "F1(F) ranking (guess rate %.2f):\n", f.GuessFalse)
	for i, s := range f.ByFalse {
		fmt.Fprintf(&sb, "  %2d. %-32s %.2f\n", i+1, s.Label, s.F1False)
	}
	return sb.String()
}

// Figure3 is the cost/effectiveness trade-off analysis (paper Figure 3).
type Figure3 struct {
	// PointsTrue/PointsFalse plot theta-bar vs F1(T)/F1(F) per model+method.
	PointsTrue  []eval.ParetoPoint
	PointsFalse []eval.ParetoPoint
	// FrontierTrue/FrontierFalse are the Pareto-efficient subsets.
	FrontierTrue  []eval.ParetoPoint
	FrontierFalse []eval.ParetoPoint
}

// ComputeFigure3 builds the Pareto analysis over the open-source models,
// pooling outcomes across datasets.
func (b *Benchmark) ComputeFigure3(rs *ResultSet) Figure3 {
	var fig Figure3
	for _, m := range openModels(b.Config.Models) {
		for _, method := range b.Config.Methods {
			var cells [][]strategy.Outcome
			for _, dn := range b.Config.Datasets {
				cells = append(cells, rs.Get(dn, method, m))
			}
			cm := MergedMetrics(cells...)
			label := fmt.Sprintf("%s (%s)", shortModel(m), method)
			fig.PointsTrue = append(fig.PointsTrue, eval.ParetoPoint{Label: label, Cost: cm.ThetaMean, Score: cm.F1True})
			fig.PointsFalse = append(fig.PointsFalse, eval.ParetoPoint{Label: label, Cost: cm.ThetaMean, Score: cm.F1False})
		}
	}
	fig.FrontierTrue = eval.ParetoFrontier(fig.PointsTrue)
	fig.FrontierFalse = eval.ParetoFrontier(fig.PointsFalse)
	return fig
}

// String renders the Pareto analysis as text.
func (f Figure3) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: cost (theta-bar, s) vs effectiveness trade-off.\n")
	render := func(name string, pts, frontier []eval.ParetoPoint) {
		onFrontier := map[string]bool{}
		for _, p := range frontier {
			onFrontier[p.Label] = true
		}
		fmt.Fprintf(&sb, "%s:\n", name)
		sorted := append([]eval.ParetoPoint(nil), pts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cost < sorted[j].Cost })
		for _, p := range sorted {
			mark := " "
			if onFrontier[p.Label] {
				mark = "*"
			}
			fmt.Fprintf(&sb, "  %s %-32s cost=%.2fs score=%.2f\n", mark, p.Label, p.Cost, p.Score)
		}
	}
	render("F1(T) plane (* = Pareto frontier)", f.PointsTrue, f.FrontierTrue)
	render("F1(F) plane (* = Pareto frontier)", f.PointsFalse, f.FrontierFalse)
	return sb.String()
}

// Figure4 computes the UpSet intersection analysis of correct predictions
// (paper Figure 4) for each method, pooled over datasets. A result set
// missing any required cell yields an error (wrapping *MissingCellError)
// instead of a silently empty figure.
func (b *Benchmark) Figure4(rs *ResultSet) (string, error) {
	models := openModels(b.Config.Models)
	var sb strings.Builder
	sb.WriteString("Figure 4: intersections of correct predictions across models.\n")
	for _, method := range b.Config.Methods {
		var perFact [][]strategy.Outcome
		for _, dn := range b.Config.Datasets {
			pf, err := rs.PerFact(dn, method, models)
			if err != nil {
				return "", fmt.Errorf("core: figure 4: %w", err)
			}
			perFact = append(perFact, pf...)
		}
		rows := analysis.UpSet(perFact)
		fmt.Fprintf(&sb, "%s:\n", method)
		for _, r := range rows {
			fmt.Fprintf(&sb, "  %-56s %6d\n", r.Label(len(models)), r.Count)
		}
	}
	return sb.String(), nil
}

// Table9 runs the error-clustering study (paper Table 9): per dataset and
// model, bucket incorrect DKA predictions into E1–E6 and report the
// per-dataset unique ratio.
func (b *Benchmark) Table9(rs *ResultSet, method llm.Method) string {
	models := openModels(b.Config.Models)
	var sb strings.Builder
	sb.WriteString("Table 9: Dataset-wise error clustering based on LLM-generated reasoning.\n")
	fmt.Fprintf(&sb, "%-11s%-12s%6s%6s%6s%6s%6s%6s%8s\n", "Dataset", "Model", "E1", "E2", "E3", "E4", "E5", "E6", "Total")
	for _, dn := range b.Config.Datasets {
		perModel := map[string]analysis.ClusterResult{}
		for _, m := range models {
			var records []analysis.ErrorRecord
			for _, o := range rs.Get(dn, method, m) {
				if o.Correct || o.Verdict == strategy.Invalid {
					continue
				}
				records = append(records, analysis.ErrorRecord{
					Model: m, FactID: o.FactID, Explanation: o.Explanation,
				})
			}
			res := analysis.ClusterErrors(records)
			perModel[m] = res
			fmt.Fprintf(&sb, "%-11s%-12s", dn, shortModel(m))
			for _, cat := range analysis.Categories {
				fmt.Fprintf(&sb, "%6d", res.Counts[cat])
			}
			fmt.Fprintf(&sb, "%8d\n", res.Total)
		}
		fmt.Fprintf(&sb, "%-11s%-12s", dn, "Uniq.Ratio")
		ratios := analysis.UniqueRatio(perModel)
		for _, cat := range analysis.Categories {
			if r, ok := ratios[cat]; ok {
				fmt.Fprintf(&sb, "%6.2f", r)
			} else {
				fmt.Fprintf(&sb, "%6s", "-")
			}
		}
		fmt.Fprintf(&sb, "%8.2f\n", analysis.OverallUniqueRatio(perModel))
	}
	return sb.String()
}

// TopicStrata runs the DBpedia topic-stratification study (paper §7).
func (b *Benchmark) TopicStrata(rs *ResultSet, dn dataset.Name, method llm.Method) []analysis.Stratum {
	d := b.Datasets[dn]
	topicOf := map[string]string{}
	for _, f := range d.Facts {
		topicOf[f.ID] = f.Topic
	}
	var outs []strategy.Outcome
	for _, m := range openModels(b.Config.Models) {
		outs = append(outs, rs.Get(dn, method, m)...)
	}
	return analysis.StratifyByTopic(outs, func(id string) string { return topicOf[id] })
}
