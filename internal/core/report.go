package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/eval"
	"factcheck/internal/llm"
	"factcheck/internal/question"
	"factcheck/internal/rag"
	"factcheck/internal/rerank"
	"factcheck/internal/strategy"
)

// CellMetrics are the headline numbers of one evaluation cell.
type CellMetrics struct {
	F1True    float64
	F1False   float64
	ThetaMean float64 // IQR-filtered mean response time, seconds
	Confusion eval.Confusion
	// Token accounting (means per fact).
	PromptTokens     float64
	CompletionTokens float64
}

// Metrics computes CellMetrics from outcomes.
func Metrics(outs []strategy.Outcome) CellMetrics {
	var cm CellMetrics
	var lats []time.Duration
	var pt, ct int
	for _, o := range outs {
		cm.Confusion.Add(o.Gold, o.Verdict.Bool(), o.Verdict != strategy.Invalid)
		lats = append(lats, o.Latency)
		pt += o.PromptTokens
		ct += o.CompletionTokens
	}
	cm.F1True = cm.Confusion.F1True()
	cm.F1False = cm.Confusion.F1False()
	cm.ThetaMean = eval.MeanResponseTime(lats)
	if n := float64(len(outs)); n > 0 {
		cm.PromptTokens = float64(pt) / n
		cm.CompletionTokens = float64(ct) / n
	}
	return cm
}

// MergedMetrics pools outcomes of several cells (e.g. across datasets) into
// one micro-averaged metric set.
func MergedMetrics(cells ...[]strategy.Outcome) CellMetrics {
	var all []strategy.Outcome
	for _, c := range cells {
		all = append(all, c...)
	}
	return Metrics(all)
}

// Table2 renders the dataset summary (paper Table 2).
func (b *Benchmark) Table2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: Summary of FactBench, YAGO, and DBpedia datasets.\n")
	fmt.Fprintf(&sb, "%-24s", "")
	for _, n := range b.Config.Datasets {
		fmt.Fprintf(&sb, "%12s", n)
	}
	sb.WriteString("\n")
	rows := []struct {
		label string
		get   func(dataset.Stats) string
	}{
		{"Num. of Facts", func(s dataset.Stats) string { return fmt.Sprintf("%d", s.NumFacts) }},
		{"Num. of Predicates", func(s dataset.Stats) string { return fmt.Sprintf("%d", s.NumPredicates) }},
		{"Avg. Facts per Entity", func(s dataset.Stats) string { return fmt.Sprintf("%.2f", s.FactsPerEntity) }},
		{"Gold Accuracy (mu)", func(s dataset.Stats) string { return fmt.Sprintf("%.2f", s.GoldAccuracy) }},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-24s", r.label)
		for _, n := range b.Config.Datasets {
			fmt.Fprintf(&sb, "%12s", r.get(b.Datasets[n].Stats()))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table3 renders the RAG dataset generation cost summary (paper Table 3),
// averaging the simulated per-fact costs over up to sample facts per
// dataset (0 = all).
func (b *Benchmark) Table3(sample int) string {
	var qt, st, ft, tok float64
	n := 0
	for _, dn := range b.Config.Datasets {
		d := b.Datasets[dn]
		facts := d.Facts
		if sample > 0 && len(facts) > sample {
			facts = facts[:sample]
		}
		for _, f := range facts {
			c := rag.CostFor(f)
			qt += c.QuestionGenTime.Seconds()
			st += c.SERPTime.Seconds()
			ft += c.FetchTime.Seconds()
			tok += float64(c.QuestionGenTokens)
			n++
		}
	}
	if n == 0 {
		return "Table 3: no facts\n"
	}
	fn := float64(n)
	var sb strings.Builder
	sb.WriteString("Table 3: Average time and token usage per RAG dataset generation step.\n")
	fmt.Fprintf(&sb, "%-36s%12s%14s\n", "Task", "Avg. Time", "Avg. tokens")
	fmt.Fprintf(&sb, "%-36s%11.2fs%14.2f\n", "Question Generation", qt/fn, tok/fn)
	fmt.Fprintf(&sb, "%-36s%11.2fs%14s\n", "Get documents (Google pages)", st/fn, "-")
	fmt.Fprintf(&sb, "%-36s%11.2fs%14s\n", "Fetch documents for each triple", ft/fn, "-")
	return sb.String()
}

// Table4 renders the RAG pipeline configuration (paper Table 4).
func (b *Benchmark) Table4() string {
	cfg := b.Pipeline.Config
	var sb strings.Builder
	sb.WriteString("Table 4: Configuration parameters used in the RAG pipeline.\n")
	rows := [][2]string{
		{"Human Understandable Text", "deterministic verbaliser (Gemma2:9b in the paper)"},
		{"Question Generation", "deterministic generator (Gemma2:9b in the paper)"},
		{"Question Relevance", rerank.NewQuestionRanker().Name()},
		{"Relevance Threshold", fmt.Sprintf("%.1f", cfg.Tau)},
		{"Selected Questions", fmt.Sprintf("%d", cfg.SelectedQuestions)},
		{"Selected Documents (k_d)", fmt.Sprintf("%d", cfg.SelectedDocs)},
		{"Document Selection", rerank.NewDocumentRanker().Name()},
		{"Embedding Model", "hashed term vectors (bge-small-en-v1.5 in the paper)"},
		{"Chunking Strategy", fmt.Sprintf("Sliding Window (size = %d)", cfg.Window)},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %s\n", r[0], r[1])
	}
	return sb.String()
}

// Table5 renders the per-class F1 grid (paper Table 5): for each dataset
// and method, F1(T) and F1(F) per model, plus the per-model mean row.
func (b *Benchmark) Table5(rs *ResultSet) string {
	var sb strings.Builder
	sb.WriteString("Table 5: Performance evaluation of fact verification systems.\n")
	fmt.Fprintf(&sb, "%-11s%-8s", "Dataset", "Method")
	for _, m := range b.Config.Models {
		fmt.Fprintf(&sb, "%18s", shortModel(m))
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-19s", "")
	for range b.Config.Models {
		fmt.Fprintf(&sb, "%9s%9s", "F1(T)", "F1(F)")
	}
	sb.WriteString("\n")
	for _, dn := range b.Config.Datasets {
		sums := make([]struct{ t, f float64 }, len(b.Config.Models))
		for _, method := range b.Config.Methods {
			fmt.Fprintf(&sb, "%-11s%-8s", dn, method)
			for i, m := range b.Config.Models {
				cm := Metrics(rs.Get(dn, method, m))
				fmt.Fprintf(&sb, "%9.2f%9.2f", cm.F1True, cm.F1False)
				sums[i].t += cm.F1True
				sums[i].f += cm.F1False
			}
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "%-11s%-8s", dn, "Mean")
		nm := float64(len(b.Config.Methods))
		for i := range b.Config.Models {
			fmt.Fprintf(&sb, "%9.2f%9.2f", sums[i].t/nm, sums[i].f/nm)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table8 renders execution times (paper Table 8) for the open-source
// models.
func (b *Benchmark) Table8(rs *ResultSet) string {
	models := openModels(b.Config.Models)
	var sb strings.Builder
	sb.WriteString("Table 8: Execution time (theta-bar, seconds) for fact validation.\n")
	fmt.Fprintf(&sb, "%-11s%-8s", "Dataset", "Method")
	for _, m := range models {
		fmt.Fprintf(&sb, "%12s", shortModel(m))
	}
	sb.WriteString("\n")
	for _, dn := range b.Config.Datasets {
		for _, method := range b.Config.Methods {
			fmt.Fprintf(&sb, "%-11s%-8s", dn, method)
			for _, m := range models {
				cm := Metrics(rs.Get(dn, method, m))
				fmt.Fprintf(&sb, "%12.2f", cm.ThetaMean)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// RAGStats summarises the generated RAG dataset (paper §4.1): question
// counts, similarity tiers, and document-pool statistics. sample bounds the
// facts examined per dataset (0 = all).
type RAGStats struct {
	Facts     int
	Questions question.Stats
	// Document statistics.
	Documents    int
	EmptyDocs    int
	MinDocs      int
	MaxDocs      int
	MeanDocs     float64
	MedianDocs   float64
	TextCoverage float64
}

// ComputeRAGStats builds RAGStats over the benchmark's datasets.
func (b *Benchmark) ComputeRAGStats(sample int) RAGStats {
	st := RAGStats{MinDocs: 1 << 30}
	var perFact [][]question.Question
	var counts []float64
	ranker := b.Pipeline.QuestionRanker
	for _, dn := range b.Config.Datasets {
		d := b.Datasets[dn]
		facts := d.Facts
		if sample > 0 && len(facts) > sample {
			facts = facts[:sample]
		}
		for _, f := range facts {
			st.Facts++
			sentence := strategy.ClaimFor(f).Sentence
			qs := question.Generate(f, question.DefaultK)
			texts := make([]string, len(qs))
			for i := range qs {
				texts[i] = qs[i].Text
			}
			// Rank embeds the reference sentence once for all k_q questions
			// on vector-aware rankers; scores are identical either way.
			for _, r := range rerank.Rank(ranker, sentence, texts) {
				qs[r.Index].Score = r.Score
			}
			perFact = append(perFact, qs)

			meta := b.Corpus.MetaFor(f)
			st.Documents += meta.Count
			st.EmptyDocs += meta.Empty
			if meta.Count < st.MinDocs {
				st.MinDocs = meta.Count
			}
			if meta.Count > st.MaxDocs {
				st.MaxDocs = meta.Count
			}
			counts = append(counts, float64(meta.Count))
		}
	}
	st.Questions = question.Summarize(perFact)
	if len(counts) > 0 {
		st.MeanDocs = eval.Mean(counts)
		sort.Float64s(counts)
		st.MedianDocs = eval.Percentile(counts, 50)
	}
	if st.Documents > 0 {
		st.TextCoverage = 1 - float64(st.EmptyDocs)/float64(st.Documents)
	}
	if st.MinDocs == 1<<30 {
		st.MinDocs = 0
	}
	return st
}

// String renders the RAG dataset statistics report.
func (s RAGStats) String() string {
	var sb strings.Builder
	sb.WriteString("RAG dataset statistics (paper section 4.1):\n")
	fmt.Fprintf(&sb, "  facts examined:            %d\n", s.Facts)
	fmt.Fprintf(&sb, "  questions total:           %d (min %d, max %d, mean %.2f per fact)\n",
		s.Questions.Total, s.Questions.PerFactMin, s.Questions.PerFactMax, s.Questions.PerFactAvg)
	fmt.Fprintf(&sb, "  similarity mean/median:    %.2f / %.2f\n", s.Questions.MeanScore, s.Questions.MedianScore)
	fmt.Fprintf(&sb, "  similarity tiers:          high %.0f%%  medium %.0f%%  low %.0f%%\n",
		100*s.Questions.HighTier, 100*s.Questions.MediumTier, 100*s.Questions.LowTier)
	fmt.Fprintf(&sb, "  documents:                 %d (min %d, max %d, mean %.2f, median %.1f per fact)\n",
		s.Documents, s.MinDocs, s.MaxDocs, s.MeanDocs, s.MedianDocs)
	fmt.Fprintf(&sb, "  empty documents:           %d (%.0f%%)\n", s.EmptyDocs, 100*(1-s.TextCoverage))
	fmt.Fprintf(&sb, "  text coverage rate:        %.2f\n", s.TextCoverage)
	return sb.String()
}

func shortModel(name string) string {
	switch name {
	case llm.Gemma2:
		return "Gemma2"
	case llm.Qwen25:
		return "Qwen2.5"
	case llm.Llama31:
		return "Llama3.1"
	case llm.Mistral:
		return "Mistral"
	case llm.GPT4oMini:
		return "GPT-4o mini"
	default:
		return name
	}
}

func openModels(models []string) []string {
	var out []string
	for _, m := range models {
		if m != llm.GPT4oMini {
			out = append(out, m)
		}
	}
	return out
}
