package core

import "sync"

// CellFiller coordinates background whole-cell computations that persist
// to a result store — the mechanism both the webapp and the serving layer
// use to turn one on-demand verdict into a stored snapshot for every later
// consumer. It owns the bookkeeping every such consumer needs identically:
// fills dedupe per cell, run one at a time (a cold page or request burst
// can't stampede many concurrent whole-cell computations), failed fills
// are forgotten so a later request retries, and Wait drains in-flight
// fills for shutdown and tests. The compute-and-persist step itself is the
// caller's run function, so each consumer keeps its own execution strategy.
type CellFiller struct {
	run func(Cell) error

	mu      sync.Mutex
	wg      sync.WaitGroup
	sem     chan struct{}
	filling map[Cell]bool

	closing   chan struct{}
	closeOnce sync.Once
}

// NewCellFiller returns a filler invoking run for each admitted cell; run
// computes the cell and persists it, returning an error to allow a retry.
func NewCellFiller(run func(Cell) error) *CellFiller {
	return &CellFiller{
		run:     run,
		sem:     make(chan struct{}, 1),
		filling: map[Cell]bool{},
		closing: make(chan struct{}),
	}
}

// forget unmarks a cell so a later request can schedule it again.
func (f *CellFiller) forget(c Cell) {
	f.mu.Lock()
	delete(f.filling, c)
	f.mu.Unlock()
}

// Fill schedules a background fill of the cell: a no-op when the cell is
// already filling (or filled — successful cells stay marked, the store
// never evicts), queued on the one-at-a-time semaphore otherwise.
func (f *CellFiller) Fill(c Cell) {
	f.mu.Lock()
	if f.filling[c] {
		f.mu.Unlock()
		return
	}
	f.filling[c] = true
	f.wg.Add(1)
	f.mu.Unlock()
	go func() {
		defer f.wg.Done()
		select {
		case f.sem <- struct{}{}:
		case <-f.closing:
			f.forget(c) // never started; a later process can retry
			return
		}
		defer func() { <-f.sem }()
		select {
		case <-f.closing:
			f.forget(c)
			return
		default:
		}
		if err := f.run(c); err != nil {
			f.forget(c)
		}
	}()
}

// Wait blocks until every scheduled fill has finished — queued fills
// included (tests, and consumers that want all started work persisted).
func (f *CellFiller) Wait() { f.wg.Wait() }

// Close discards fills still queued on the semaphore (they are unmarked,
// so nothing is lost — a later request recomputes them) and waits only for
// the fill actually in flight. This is the shutdown path: drain time is
// bounded by one cell, not by however many cold cells a final request
// burst touched.
func (f *CellFiller) Close() {
	f.closeOnce.Do(func() { close(f.closing) })
	f.wg.Wait()
}
