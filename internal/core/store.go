package core

import (
	"factcheck/internal/results"
	"factcheck/internal/strategy"
)

// Store is the content-addressed result store (internal/results): a
// durable, versioned cache of completed grid cells keyed by a fingerprint
// of everything that determines outcomes. Attach one to Run with WithStore
// to make runs resumable and incremental.
type Store = results.Store

// OpenStore opens (creating if needed) a disk-backed result store. An
// empty dir returns a pure in-memory store.
func OpenStore(dir string) (*Store, error) { return results.Open(dir) }

// NewMemoryStore returns a process-lifetime, memory-only result store.
func NewMemoryStore() *Store { return results.NewMemory() }

// CellKey returns the content-addressed identity of one grid cell under
// this benchmark's configuration: the world config, scale, RAG config and
// current corpus epoch digest plus the cell coordinates. Parallelism is
// excluded — results are byte-identical at any worker count, so snapshots
// are portable across it.
func (b *Benchmark) CellKey(c Cell) results.Key {
	return b.CellKeyAt(c, b.Engine.CorpusDigest(c.Dataset))
}

// CellKeyAt is CellKey pinned to an explicit corpus digest. Consumers that
// must pair a fingerprint with per-fact epochs from the same moment (the
// serving layer's epoch-keyed verdict cache) capture a search.EpochView
// and key with its digest, so a concurrent ingestion can never interleave
// between reading the epoch and reading the digest.
func (b *Benchmark) CellKeyAt(c Cell, corpus uint64) results.Key {
	return results.Key{
		World:   b.Config.WorldConfig,
		Scale:   b.Config.Scale,
		RAG:     b.Pipeline.Config,
		Corpus:  corpus,
		Dataset: c.Dataset,
		Method:  c.Method,
		Model:   c.Model,
	}
}

// ResultSink receives completed grid cells as Run streams them. Cells
// already satisfied by an attached store are delivered first, in grid
// order, before any work is scheduled; computed cells follow in
// data-dependent completion order. PutCell is called serially (never
// concurrently with itself); returning an error fails the run.
type ResultSink interface {
	PutCell(c Cell, outs []strategy.Outcome) error
}

// WithStore attaches a result store to a Run: cells whose fingerprint is
// already in the store are served from it (no verifier calls), the grid
// queue is built only from the missing cells, and every newly computed
// cell is persisted as it completes. An interrupted run therefore resumes
// from where it died, and a config delta recomputes only the affected
// slice of the grid — with stdout byte-identical to a cold run in every
// case.
func WithStore(s *Store) RunOption {
	return func(o *runOptions) { o.store = s }
}

// WithSink streams completed cells to sink as the grid drains (see
// ResultSink for ordering and concurrency guarantees).
func WithSink(sink ResultSink) RunOption {
	return func(o *runOptions) { o.sink = sink }
}
