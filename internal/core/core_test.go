package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"factcheck/internal/consensus"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// testBenchmark builds one small benchmark per test binary run; the grid run
// is shared because it is the expensive part.
var (
	sharedBench *Benchmark
	sharedRS    *ResultSet
)

func benchFixture(t *testing.T) (*Benchmark, *ResultSet) {
	t.Helper()
	if sharedBench == nil {
		sharedBench = NewBenchmark(TestConfig())
		rs, err := sharedBench.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sharedRS = rs
	}
	return sharedBench, sharedRS
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	if cfg.Scale != 1.0 {
		t.Errorf("default scale = %f", cfg.Scale)
	}
	if len(cfg.Models) != 5 || len(cfg.Methods) != 4 || len(cfg.Datasets) != 3 {
		t.Errorf("defaults incomplete: %d models, %d methods, %d datasets",
			len(cfg.Models), len(cfg.Methods), len(cfg.Datasets))
	}
	if cfg.Parallelism <= 0 {
		t.Error("parallelism not set")
	}
}

func TestRunGridComplete(t *testing.T) {
	b, rs := benchFixture(t)
	for _, dn := range b.Config.Datasets {
		want := len(b.Datasets[dn].Facts)
		for _, method := range b.Config.Methods {
			for _, m := range b.Config.Models {
				outs := rs.Get(dn, method, m)
				if len(outs) != want {
					t.Fatalf("%s/%s/%s has %d outcomes, want %d", dn, method, m, len(outs), want)
				}
				for i, o := range outs {
					if o.FactID != b.Datasets[dn].Facts[i].ID {
						t.Fatalf("outcome %d misaligned with fact order", i)
					}
				}
			}
		}
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	cfg := TestConfig()
	cfg.Datasets = []dataset.Name{dataset.FactBench}
	cfg.Models = []string{llm.Gemma2}
	cfg.Methods = []llm.Method{llm.MethodDKA}

	cfg.Parallelism = 1
	b1 := NewBenchmark(cfg)
	rs1, err := b1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	b2 := NewBenchmark(cfg)
	rs2, err := b2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a := rs1.Get(dataset.FactBench, llm.MethodDKA, llm.Gemma2)
	b := rs2.Get(dataset.FactBench, llm.MethodDKA, llm.Gemma2)
	for i := range a {
		if a[i].Verdict != b[i].Verdict || a[i].Latency != b[i].Latency {
			t.Fatalf("outcome %d differs across parallelism", i)
		}
	}
}

func TestPerFactRegrouping(t *testing.T) {
	b, rs := benchFixture(t)
	models := []string{llm.Gemma2, llm.Mistral}
	per, err := rs.PerFact(dataset.FactBench, llm.MethodDKA, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != len(b.Datasets[dataset.FactBench].Facts) {
		t.Fatalf("per-fact rows = %d", len(per))
	}
	for i, row := range per {
		if len(row) != 2 {
			t.Fatalf("row %d has %d outcomes", i, len(row))
		}
		if row[0].FactID != row[1].FactID {
			t.Fatal("row mixes facts")
		}
		if row[0].Model != llm.Gemma2 || row[1].Model != llm.Mistral {
			t.Fatal("model order not preserved")
		}
	}
	_, err = rs.PerFact(dataset.FactBench, llm.MethodDKA, []string{"missing"})
	var missing *MissingCellError
	if !errors.As(err, &missing) {
		t.Errorf("PerFact with unknown model: err = %v, want *MissingCellError", err)
	} else if missing.Cell.Model != "missing" {
		t.Errorf("missing cell = %+v", missing.Cell)
	}
}

func TestMetricsAggregation(t *testing.T) {
	_, rs := benchFixture(t)
	outs := rs.Get(dataset.FactBench, llm.MethodDKA, llm.Gemma2)
	cm := Metrics(outs)
	if cm.F1True <= 0 || cm.F1True > 1 {
		t.Errorf("F1True = %f", cm.F1True)
	}
	if cm.ThetaMean <= 0 {
		t.Error("no latency aggregated")
	}
	if cm.PromptTokens <= 0 || cm.CompletionTokens <= 0 {
		t.Error("no token accounting")
	}
	if cm.Confusion.Total() != len(outs) {
		t.Error("confusion total mismatch")
	}
}

func TestTableRenderersProduceOutput(t *testing.T) {
	b, rs := benchFixture(t)
	rep, err := b.RunAllConsensus(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		out  string
		want []string
	}{
		{"table2", b.Table2(), []string{"FactBench", "YAGO", "DBpedia", "Gold Accuracy"}},
		{"table3", b.Table3(50), []string{"Question Generation", "Fetch documents"}},
		{"table4", b.Table4(), []string{"Relevance Threshold", "Sliding Window"}},
		{"table5", b.Table5(rs), []string{"DKA", "GIV-Z", "GIV-F", "RAG", "Mean", "F1(T)"}},
		{"table6", b.Table6(rep), []string{"Ties", "Gemma2"}},
		{"table7", b.Table7(rep), []string{"agg-cons-up", "agg-cons-down", "agg-gpt-4o-mini"}},
		{"table8", b.Table8(rs), []string{"Execution time"}},
		{"table9", b.Table9(rs, llm.MethodDKA), []string{"E1", "E4", "Uniq.Ratio"}},
	}
	fig4, err := b.Figure4(rs)
	if err != nil {
		t.Fatal(err)
	}
	checks = append(checks, struct {
		name string
		out  string
		want []string
	}{"figure4", fig4, []string{"all", "intersections"}})
	for _, c := range checks {
		for _, w := range c.want {
			if !strings.Contains(c.out, w) {
				t.Errorf("%s output missing %q", c.name, w)
			}
		}
	}
}

func TestFigure2Structure(t *testing.T) {
	b, rs := benchFixture(t)
	fig := b.ComputeFigure2(rs, nil)
	wantSeries := len(b.Config.Models) * len(b.Config.Methods)
	if len(fig.ByTrue) != wantSeries || len(fig.ByFalse) != wantSeries {
		t.Fatalf("series = %d/%d, want %d", len(fig.ByTrue), len(fig.ByFalse), wantSeries)
	}
	for i := 1; i < len(fig.ByTrue); i++ {
		if fig.ByTrue[i].F1True > fig.ByTrue[i-1].F1True {
			t.Fatal("ByTrue not sorted")
		}
	}
	if fig.GuessTrue <= 0.4 || fig.GuessTrue >= 0.8 {
		t.Errorf("guess rate (T) = %f, want ~0.62", fig.GuessTrue)
	}
	if fig.GuessFalse <= 0.15 || fig.GuessFalse >= 0.45 {
		t.Errorf("guess rate (F) = %f, want ~0.29", fig.GuessFalse)
	}
	if !strings.Contains(fig.String(), "guess rate") {
		t.Error("rendering missing guess rate")
	}
}

func TestFigure3ParetoNonEmpty(t *testing.T) {
	b, rs := benchFixture(t)
	fig := b.ComputeFigure3(rs)
	if len(fig.PointsTrue) == 0 || len(fig.FrontierTrue) == 0 {
		t.Fatal("empty Pareto analysis")
	}
	if len(fig.FrontierTrue) > len(fig.PointsTrue) {
		t.Error("frontier larger than point set")
	}
	// DKA points must dominate the low-cost end: the cheapest frontier
	// point should be a DKA configuration.
	cheapest := fig.FrontierTrue[0]
	if !strings.Contains(cheapest.Label, "DKA") {
		t.Errorf("cheapest frontier point = %s, want a DKA config", cheapest.Label)
	}
}

func TestConsensusCellStructure(t *testing.T) {
	b, rs := benchFixture(t)
	cell, err := b.RunConsensus(context.Background(), rs, dataset.FactBench, llm.MethodDKA)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Results) != 3 {
		t.Fatalf("consensus results for %d arbiters, want 3", len(cell.Results))
	}
	for _, label := range ArbiterLabels {
		conf, ok := cell.Results[label]
		if !ok {
			t.Fatalf("missing arbiter %s", label)
		}
		if conf.Total() != len(b.Datasets[dataset.FactBench].Facts) {
			t.Errorf("%s judged %d facts", label, conf.Total())
		}
	}
	if cell.Alignment.TieRate < 0 || cell.Alignment.TieRate > 1 {
		t.Error("tie rate out of range")
	}
	if cell.Latency <= 0 {
		t.Error("no consensus latency")
	}
}

// TestConsensusModeInvariance: the engine's execution strategy must never
// change what is decided — for every (dataset, method) cell, the adaptive
// and serial reports carry exactly the eager (run-everything golden
// baseline) confusion matrices and alignment. Only the Latency column may
// differ (adaptive reports decided-at time).
func TestConsensusModeInvariance(t *testing.T) {
	b, rs := benchFixture(t)
	ctx := context.Background()
	for _, dn := range b.Config.Datasets {
		for _, method := range b.Config.Methods {
			eager, err := b.RunConsensusMode(ctx, rs, dn, method, consensus.ModeEager)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []consensus.Mode{consensus.ModeSerial, consensus.ModeAdaptive} {
				got, err := b.RunConsensusMode(ctx, rs, dn, method, mode)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Results, eager.Results) {
					t.Fatalf("%s/%s: %s confusion matrices differ from eager:\n%v\nvs\n%v",
						dn, method, mode, got.Results, eager.Results)
				}
				if !reflect.DeepEqual(got.Alignment, eager.Alignment) {
					t.Fatalf("%s/%s: %s alignment differs from eager", dn, method, mode)
				}
				if got.Latency <= 0 {
					t.Fatalf("%s/%s: %s consensus latency not positive", dn, method, mode)
				}
			}
		}
	}
}

func TestRAGStats(t *testing.T) {
	b, _ := benchFixture(t)
	st := b.ComputeRAGStats(30)
	if st.Facts == 0 || st.Documents == 0 {
		t.Fatal("empty RAG stats")
	}
	if st.TextCoverage < 0.80 || st.TextCoverage > 0.95 {
		t.Errorf("text coverage = %.2f, want ~0.87", st.TextCoverage)
	}
	if st.Questions.PerFactAvg < 9 || st.Questions.PerFactAvg > 10 {
		t.Errorf("questions per fact = %.2f, want ~9.67", st.Questions.PerFactAvg)
	}
	tierSum := st.Questions.HighTier + st.Questions.MediumTier + st.Questions.LowTier
	if tierSum < 0.999 || tierSum > 1.001 {
		t.Errorf("tiers sum to %f", tierSum)
	}
	if !strings.Contains(st.String(), "text coverage") {
		t.Error("stats rendering incomplete")
	}
}

func TestTopicStrata(t *testing.T) {
	b, rs := benchFixture(t)
	strata := b.TopicStrata(rs, dataset.DBpedia, llm.MethodDKA)
	if len(strata) < 3 {
		t.Fatalf("only %d topic strata", len(strata))
	}
	total := 0
	for _, s := range strata {
		total += s.Total
	}
	models := len(b.Config.Models) - 1 // open-source only
	if want := len(b.Datasets[dataset.DBpedia].Facts) * models; total != want {
		t.Errorf("strata cover %d outcomes, want %d", total, want)
	}
}

func TestPaperShapeFindings(t *testing.T) {
	// The headline qualitative findings of the paper must hold even on the
	// small test benchmark.
	b, rs := benchFixture(t)

	// Finding 1: GIV-F >= DKA for open-source models on FactBench F1(T).
	for _, m := range []string{llm.Gemma2, llm.Mistral} {
		dka := Metrics(rs.Get(dataset.FactBench, llm.MethodDKA, m))
		givf := Metrics(rs.Get(dataset.FactBench, llm.MethodGIVF, m))
		if givf.F1True < dka.F1True-0.05 {
			t.Errorf("%s: GIV-F F1(T) %.2f below DKA %.2f", m, givf.F1True, dka.F1True)
		}
	}

	// Finding 2: RAG lifts FactBench F1(F) substantially over DKA.
	for _, m := range []string{llm.Gemma2, llm.GPT4oMini} {
		dka := Metrics(rs.Get(dataset.FactBench, llm.MethodDKA, m))
		ragM := Metrics(rs.Get(dataset.FactBench, llm.MethodRAG, m))
		if ragM.F1False <= dka.F1False {
			t.Errorf("%s: RAG F1(F) %.2f not above DKA %.2f", m, ragM.F1False, dka.F1False)
		}
	}

	// YAGO positive bias: F1(F) near zero for every model and method.
	for _, m := range b.Config.Models {
		for _, method := range b.Config.Methods {
			cm := Metrics(rs.Get(dataset.YAGO, method, m))
			if cm.F1False > 0.35 {
				t.Errorf("YAGO %s/%s F1(F) = %.2f, want near zero", m, method, cm.F1False)
			}
		}
	}

	// Finding 4: RAG costs a multiple of DKA.
	for _, m := range []string{llm.Gemma2, llm.Mistral} {
		dka := Metrics(rs.Get(dataset.FactBench, llm.MethodDKA, m))
		ragM := Metrics(rs.Get(dataset.FactBench, llm.MethodRAG, m))
		if ragM.ThetaMean < 4*dka.ThetaMean {
			t.Errorf("%s: RAG theta %.2f not >> DKA %.2f", m, ragM.ThetaMean, dka.ThetaMean)
		}
	}

	// GPT-4o mini: weak internal F1(T) vs the best open model.
	gptDKA := Metrics(rs.Get(dataset.FactBench, llm.MethodDKA, llm.GPT4oMini))
	gemmaDKA := Metrics(rs.Get(dataset.FactBench, llm.MethodDKA, llm.Gemma2))
	if gptDKA.F1True >= gemmaDKA.F1True {
		t.Errorf("GPT-4o mini DKA F1(T) %.2f not below Gemma2 %.2f", gptDKA.F1True, gemmaDKA.F1True)
	}
}

func TestRunCellErrors(t *testing.T) {
	b, _ := benchFixture(t)
	ctx := context.Background()
	if _, err := b.RunCell(ctx, "NoSuchDataset", llm.MethodDKA, llm.Gemma2); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := b.RunCell(ctx, dataset.FactBench, llm.MethodDKA, "no-model"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := b.RunCell(ctx, dataset.FactBench, "no-method", llm.Gemma2); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	cfg := TestConfig()
	cfg.Datasets = []dataset.Name{dataset.FactBench}
	b := NewBenchmark(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Run(ctx); err == nil {
		t.Error("cancelled run succeeded")
	}
}

func TestFactByID(t *testing.T) {
	b, _ := benchFixture(t)
	f := b.Datasets[dataset.YAGO].Facts[0]
	got, ok := b.FactByID(f.ID)
	if !ok || got != f {
		t.Error("FactByID failed")
	}
	if _, ok := b.FactByID("nope"); ok {
		t.Error("unknown fact resolved")
	}
}

func TestInvalidOutcomesCountedInConfusion(t *testing.T) {
	_, rs := benchFixture(t)
	// GIV-Z on Llama is the least conformant cell; invalid verdicts are
	// plausible. Whatever the count, the confusion must account for all.
	outs := rs.Get(dataset.DBpedia, llm.MethodGIVZ, llm.Llama31)
	cm := Metrics(outs)
	valid, invalid := 0, 0
	for _, o := range outs {
		if o.Verdict == strategy.Invalid {
			invalid++
		} else {
			valid++
		}
	}
	if cm.Confusion.Invalid() != invalid {
		t.Errorf("confusion invalid = %d, counted %d", cm.Confusion.Invalid(), invalid)
	}
	if cm.Confusion.Total() != valid+invalid {
		t.Error("confusion total mismatch")
	}
}

func TestRunByteIdenticalAcrossParallelismAllMethods(t *testing.T) {
	// The streamed whole-grid run must produce outcomes identical in every
	// field to a strictly sequential (Parallelism: 1) run, for every
	// method including RAG (shared evidence cache + prefetch stage).
	cfg := TestConfig()
	cfg.Datasets = []dataset.Name{dataset.FactBench}
	cfg.Models = []string{llm.Gemma2, llm.Mistral}

	cfg.Parallelism = 1
	seq := NewBenchmark(cfg)
	rsSeq, err := seq.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	pooled := NewBenchmark(cfg)
	rsPooled, err := pooled.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range cfg.Methods {
		for _, m := range cfg.Models {
			a := rsSeq.Get(dataset.FactBench, method, m)
			b := rsPooled.Get(dataset.FactBench, method, m)
			if len(a) == 0 || len(a) != len(b) {
				t.Fatalf("%s/%s: %d vs %d outcomes", method, m, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s/%s outcome %d differs between sequential and pooled run:\n%+v\n%+v",
						method, m, i, a[i], b[i])
				}
			}
		}
	}
}

func TestRunStreamsProgressPerCell(t *testing.T) {
	cfg := TestConfig()
	cfg.Datasets = []dataset.Name{dataset.FactBench, dataset.YAGO}
	cfg.Models = []string{llm.Gemma2, llm.Mistral}
	cfg.Methods = []llm.Method{llm.MethodDKA, llm.MethodGIVF}
	cfg.Parallelism = 4
	b := NewBenchmark(cfg)

	var events []Progress
	_, err := b.Run(context.Background(), WithProgress(func(p Progress) {
		events = append(events, p) // callback is serialized; no lock needed
	}))
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(cfg.Datasets) * len(cfg.Models) * len(cfg.Methods)
	if len(events) != wantCells {
		t.Fatalf("%d progress events, want %d", len(events), wantCells)
	}
	seen := map[Cell]bool{}
	for i, ev := range events {
		if ev.DoneCells != i+1 {
			t.Errorf("event %d: DoneCells = %d, want %d", i, ev.DoneCells, i+1)
		}
		if ev.TotalCells != wantCells {
			t.Errorf("event %d: TotalCells = %d, want %d", i, ev.TotalCells, wantCells)
		}
		if seen[ev.Cell] {
			t.Errorf("cell %v reported complete twice", ev.Cell)
		}
		seen[ev.Cell] = true
		if want := len(b.Datasets[ev.Cell.Dataset].Facts); ev.Facts != want {
			t.Errorf("cell %v: Facts = %d, want %d", ev.Cell, ev.Facts, want)
		}
	}
}

func TestRunMidGridCancellationDrains(t *testing.T) {
	cfg := TestConfig()
	cfg.Datasets = []dataset.Name{dataset.FactBench}
	cfg.Methods = []llm.Method{llm.MethodDKA} // no prefetch phase: cancel hits the grid queue
	cfg.Parallelism = 4
	b := NewBenchmark(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := b.Run(ctx, WithProgress(func(Progress) { cancel() }))
	if err == nil {
		t.Fatal("run cancelled mid-grid succeeded")
	}
}

func TestRunCellDrainsOnCancelledContext(t *testing.T) {
	b, _ := benchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.RunCell(ctx, dataset.FactBench, llm.MethodDKA, llm.Gemma2); err == nil {
		t.Error("cancelled RunCell succeeded")
	}
}

func TestModelRegistryConcurrentAccess(t *testing.T) {
	b := NewBenchmark(TestConfig())
	var wg sync.WaitGroup
	errCh := make(chan error, 40)
	for i := 0; i < 8; i++ {
		for _, name := range b.Config.Models {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				if _, err := b.Model(name); err != nil {
					errCh <- err
				}
			}(name)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// --- result store / resume ----------------------------------------------

// storeTestConfig is a grid small enough to run twice per test but with
// several cells per method.
func storeTestConfig() Config {
	cfg := TestConfig()
	cfg.Datasets = []dataset.Name{dataset.FactBench}
	cfg.Models = []string{llm.Gemma2, llm.Mistral}
	return cfg
}

// boomModel fails every generation; tests install it to prove a code path
// performs no verifier calls.
type boomModel struct{ name string }

func (b boomModel) Name() string     { return b.name }
func (b boomModel) ParamsB() float64 { return 9 }
func (b boomModel) Generate(context.Context, llm.Request) (llm.Response, error) {
	return llm.Response{}, fmt.Errorf("boomModel %s: unexpected verifier call", b.name)
}

// sabotage replaces every configured model with a failing stub and detaches
// the retrieval substrate, so any verification or retrieval fails the run.
func sabotage(b *Benchmark) {
	b.modelsMu.Lock()
	for _, name := range b.Config.Models {
		b.models[name] = boomModel{name: name}
	}
	for _, name := range llm.BenchmarkModels {
		b.models[name] = boomModel{name: name}
	}
	b.modelsMu.Unlock()
	b.Pipeline.Searcher = nil
}

func TestResumeByteIdenticalToColdRun(t *testing.T) {
	cfg := storeTestConfig()

	cold := NewBenchmark(cfg)
	rsCold, err := cold.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after half the cells have completed. Cells
	// finished before the kill are persisted.
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	_, err = NewBenchmark(cfg).Run(ctx, WithStore(st), WithProgress(func(p Progress) {
		done++
		if 2*done >= p.TotalCells {
			cancel()
		}
	}))
	if err == nil {
		t.Fatal("interrupted run reported success")
	}

	// Resume from a fresh store handle (a new process would Open the dir).
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() == 0 {
		t.Fatal("no cells persisted before the interrupt")
	}
	rsResumed, err := NewBenchmark(cfg).Run(context.Background(), WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rsCold.Outcomes, rsResumed.Outcomes) {
		t.Fatal("resumed outcomes differ from cold run")
	}
}

func TestWarmStoreReplaysWithZeroVerifierCalls(t *testing.T) {
	cfg := storeTestConfig()
	st := NewMemoryStore()
	rs1, err := NewBenchmark(cfg).Run(context.Background(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}

	// Fully warm store: the grid must replay without a single model call
	// or retrieval — every model is a failing stub and the search engine
	// is detached.
	replay := NewBenchmark(cfg)
	sabotage(replay)
	rs2, err := replay.Run(context.Background(), WithStore(st))
	if err != nil {
		t.Fatalf("warm-store replay performed work: %v", err)
	}
	if !reflect.DeepEqual(rs1.Outcomes, rs2.Outcomes) {
		t.Fatal("replayed outcomes differ")
	}
}

func TestDeltaConfigRecomputesOnlyMissingCells(t *testing.T) {
	base := storeTestConfig()
	base.Models = []string{llm.Gemma2}
	st := NewMemoryStore()
	if _, err := NewBenchmark(base).Run(context.Background(), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	before := st.Len()

	// Delta: one extra model. The gemma2 cells must come from the store —
	// its model is a failing stub in the delta benchmark — while mistral
	// cells compute fresh.
	delta := base
	delta.Models = []string{llm.Gemma2, llm.Mistral}
	db := NewBenchmark(delta)
	db.modelsMu.Lock()
	db.models[llm.Gemma2] = boomModel{name: llm.Gemma2}
	db.modelsMu.Unlock()
	rs, err := db.Run(context.Background(), WithStore(st))
	if err != nil {
		t.Fatalf("delta run recomputed cached cells: %v", err)
	}
	if st.Len() != 2*before {
		t.Errorf("store has %d cells after delta, want %d", st.Len(), 2*before)
	}

	// The combined result set matches a cold run of the delta config.
	rsCold, err := NewBenchmark(delta).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rsCold.Outcomes, rs.Outcomes) {
		t.Fatal("delta outcomes differ from cold run")
	}
}

// collectSink records streamed cells.
type collectSink struct {
	cells []Cell
	outs  map[Cell]int
	fail  bool
}

func (s *collectSink) PutCell(c Cell, outs []strategy.Outcome) error {
	if s.fail {
		return fmt.Errorf("sink: rejected %v", c)
	}
	s.cells = append(s.cells, c)
	if s.outs == nil {
		s.outs = map[Cell]int{}
	}
	s.outs[c] = len(outs)
	return nil
}

func TestRunStreamsCellsToSink(t *testing.T) {
	cfg := storeTestConfig()
	b := NewBenchmark(cfg)
	sink := &collectSink{}
	rs, err := b.Run(context.Background(), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Datasets) * len(b.Config.Methods) * len(cfg.Models)
	if len(sink.cells) != want {
		t.Fatalf("sink saw %d cells, want %d", len(sink.cells), want)
	}
	for cell, n := range sink.outs {
		if n != len(rs.Outcomes[cell]) {
			t.Errorf("cell %v streamed %d outcomes, result set has %d", cell, n, len(rs.Outcomes[cell]))
		}
	}

	// With a fully warm store, cached cells stream to the sink up front in
	// deterministic grid order.
	st := NewMemoryStore()
	if _, err := NewBenchmark(cfg).Run(context.Background(), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	ordered := &collectSink{}
	if _, err := NewBenchmark(cfg).Run(context.Background(), WithStore(st), WithSink(ordered)); err != nil {
		t.Fatal(err)
	}
	var wantOrder []Cell
	for _, dn := range cfg.Datasets {
		for _, method := range NewBenchmark(cfg).Config.Methods {
			for _, m := range cfg.Models {
				wantOrder = append(wantOrder, Cell{Dataset: dn, Method: method, Model: m})
			}
		}
	}
	if !reflect.DeepEqual(ordered.cells, wantOrder) {
		t.Errorf("cached cells streamed out of grid order:\n got %v\nwant %v", ordered.cells, wantOrder)
	}

	// A sink error fails the run.
	if _, err := b.Run(context.Background(), WithSink(&collectSink{fail: true})); err == nil {
		t.Error("sink failure did not fail the run")
	}
}

func TestStoreIgnoredAcrossConfigChange(t *testing.T) {
	// A snapshot written at one scale must never satisfy a run at another:
	// the fingerprint differs, so the second run recomputes everything.
	cfgA := storeTestConfig()
	st := NewMemoryStore()
	if _, err := NewBenchmark(cfgA).Run(context.Background(), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	n := st.Len()
	cfgB := cfgA
	cfgB.Scale = cfgA.Scale * 2
	if _, err := NewBenchmark(cfgB).Run(context.Background(), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2*n {
		t.Errorf("store has %d cells, want %d (no cross-config reuse)", st.Len(), 2*n)
	}
}
