// Package core is the FactCheck benchmark orchestrator: it wires the
// synthetic world, datasets, corpus, search engine, RAG pipeline and
// simulated models together, runs the full evaluation grid
// (dataset × method × model), and renders every table and figure of the
// paper's evaluation section.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"factcheck/internal/consensus"
	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/rag"
	"factcheck/internal/search"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

// Config parameterises a benchmark run.
type Config struct {
	// Scale multiplies the published dataset sizes (1.0 = full benchmark).
	Scale float64
	// WorldConfig sizes the synthetic universe; zero value selects
	// world.DefaultConfig (or SmallConfig when Small is set).
	WorldConfig world.Config
	// Small selects the miniature test world.
	Small bool
	// Models to evaluate; defaults to llm.BenchmarkModels.
	Models []string
	// Methods to evaluate; defaults to llm.AllMethods.
	Methods []llm.Method
	// Datasets to evaluate; defaults to dataset.AllNames.
	Datasets []dataset.Name
	// Parallelism bounds concurrent fact verifications per cell; defaults
	// to GOMAXPROCS.
	Parallelism int
}

// DefaultConfig returns the full-benchmark configuration.
func DefaultConfig() Config { return Config{Scale: 1.0} }

// TestConfig returns a fast, small configuration for tests.
func TestConfig() Config { return Config{Scale: 0.05, Small: true} }

func (c *Config) fill() {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.WorldConfig.Persons == 0 {
		if c.Small {
			c.WorldConfig = world.SmallConfig()
		} else {
			c.WorldConfig = world.DefaultConfig()
		}
	}
	if len(c.Models) == 0 {
		c.Models = llm.BenchmarkModels
	}
	if len(c.Methods) == 0 {
		c.Methods = llm.AllMethods
	}
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.AllNames
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Benchmark is a fully wired FactCheck instance.
type Benchmark struct {
	Config   Config
	World    *world.World
	Datasets map[dataset.Name]*dataset.Dataset
	Corpus   *corpus.Generator
	Engine   *search.Engine
	Pipeline *rag.Pipeline

	models map[string]llm.Model
}

// NewBenchmark builds all substrates for the configuration.
func NewBenchmark(cfg Config) *Benchmark {
	cfg.fill()
	w := world.New(cfg.WorldConfig)
	ds := map[dataset.Name]*dataset.Dataset{}
	var all []*dataset.Dataset
	for _, n := range cfg.Datasets {
		d := dataset.Build(w, n, cfg.Scale)
		ds[n] = d
		all = append(all, d)
	}
	gen := corpus.NewGenerator(w)
	eng := search.NewEngine(gen, all...)
	b := &Benchmark{
		Config:   cfg,
		World:    w,
		Datasets: ds,
		Corpus:   gen,
		Engine:   eng,
		Pipeline: rag.New(eng),
		models:   map[string]llm.Model{},
	}
	return b
}

// Model returns (and caches) the named simulated model.
func (b *Benchmark) Model(name string) (llm.Model, error) {
	if m, ok := b.models[name]; ok {
		return m, nil
	}
	m, err := llm.New(name)
	if err != nil {
		return nil, err
	}
	b.models[name] = m
	return m, nil
}

// Verifier returns the verifier for a method, wired to the benchmark's RAG
// pipeline when needed.
func (b *Benchmark) Verifier(m llm.Method) (strategy.Verifier, error) {
	return strategy.ForMethod(m, b.Pipeline)
}

// Cell identifies one (dataset, method, model) evaluation cell.
type Cell struct {
	Dataset dataset.Name
	Method  llm.Method
	Model   string
}

// ResultSet holds the outcomes of a benchmark run, indexed by cell. Within
// a cell, outcomes are ordered like the dataset's fact slice, so the i-th
// outcomes of different models refer to the same fact.
type ResultSet struct {
	Config   Config
	Outcomes map[Cell][]strategy.Outcome
}

// Get returns the outcomes for a cell (nil when absent).
func (r *ResultSet) Get(d dataset.Name, m llm.Method, model string) []strategy.Outcome {
	return r.Outcomes[Cell{Dataset: d, Method: m, Model: model}]
}

// PerFact regroups a cell list of model names into per-fact outcome slices:
// result[i][j] is model j's outcome on fact i.
func (r *ResultSet) PerFact(d dataset.Name, m llm.Method, models []string) [][]strategy.Outcome {
	var per [][]strategy.Outcome
	for j, name := range models {
		outs := r.Get(d, m, name)
		if outs == nil {
			return nil
		}
		if per == nil {
			per = make([][]strategy.Outcome, len(outs))
		}
		for i := range outs {
			if j == 0 {
				per[i] = make([]strategy.Outcome, 0, len(models))
			}
			per[i] = append(per[i], outs[i])
		}
	}
	return per
}

// Run executes the full grid of the configuration.
func (b *Benchmark) Run(ctx context.Context) (*ResultSet, error) {
	rs := &ResultSet{Config: b.Config, Outcomes: map[Cell][]strategy.Outcome{}}
	for _, dn := range b.Config.Datasets {
		for _, method := range b.Config.Methods {
			for _, modelName := range b.Config.Models {
				outs, err := b.RunCell(ctx, dn, method, modelName)
				if err != nil {
					return nil, err
				}
				rs.Outcomes[Cell{Dataset: dn, Method: method, Model: modelName}] = outs
			}
		}
	}
	return rs, nil
}

// RunCell verifies every fact of one dataset with one model and method,
// fanning out across Parallelism workers. Outcomes preserve fact order.
func (b *Benchmark) RunCell(ctx context.Context, dn dataset.Name, method llm.Method, modelName string) ([]strategy.Outcome, error) {
	d, ok := b.Datasets[dn]
	if !ok {
		return nil, fmt.Errorf("core: dataset %q not built", dn)
	}
	m, err := b.Model(modelName)
	if err != nil {
		return nil, err
	}
	v, err := b.Verifier(method)
	if err != nil {
		return nil, err
	}
	outs := make([]strategy.Outcome, len(d.Facts))
	errs := make([]error, len(d.Facts))

	sem := make(chan struct{}, b.Config.Parallelism)
	var wg sync.WaitGroup
	for i, f := range d.Facts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, f *dataset.Fact) {
			defer wg.Done()
			defer func() { <-sem }()
			outs[i], errs[i] = v.Verify(ctx, m, f)
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Arbiters builds the paper's three tie-breaking configurations for a
// (dataset, method) cell: the upgraded most-consistent model, the upgraded
// least-consistent model, and GPT-4o mini.
func (b *Benchmark) Arbiters(rep consensus.AlignmentReport, method llm.Method) (up, down, commercial consensus.Arbiter, err error) {
	v, err := b.Verifier(method)
	if err != nil {
		return nil, nil, nil, err
	}
	mk := func(label, base string) (consensus.Arbiter, error) {
		name := base
		if up, ok := llm.Upgrade[base]; ok {
			name = up
		}
		judge, err := b.Model(name)
		if err != nil {
			return nil, err
		}
		return &consensus.ModelArbiter{Label: label, Judge: judge, Verifier: v}, nil
	}
	up, err = mk("agg-cons-up", rep.MostConsistent(true))
	if err != nil {
		return nil, nil, nil, err
	}
	down, err = mk("agg-cons-down", rep.MostConsistent(false))
	if err != nil {
		return nil, nil, nil, err
	}
	judge, err := b.Model(llm.GPT4oMini)
	if err != nil {
		return nil, nil, nil, err
	}
	commercial = &consensus.ModelArbiter{Label: "agg-gpt-4o-mini", Judge: judge, Verifier: v}
	return up, down, commercial, nil
}

// FactByID resolves a fact across all built datasets.
func (b *Benchmark) FactByID(id string) (*dataset.Fact, bool) {
	return b.Engine.Fact(id)
}
