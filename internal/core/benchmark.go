// Package core is the FactCheck benchmark orchestrator: it wires the
// synthetic world, datasets, corpus, search engine, RAG pipeline and
// simulated models together, runs the full evaluation grid
// (dataset × method × model), and renders every table and figure of the
// paper's evaluation section.
//
// Grid execution is streamed: Run flattens the whole grid into one
// (cell, fact) task queue and drains it on a sched.Pool, so no cell
// barrier ever stalls independent work. Evidence-prefetch tasks at the
// head of the queue warm the RAG cache once per fact ahead of model
// fan-out, and an optional progress callback reports cells as they
// complete.
//
// Runs are resumable and incremental: with a content-addressed result
// store attached (WithStore, internal/results), the queue is built only
// from cells the store cannot satisfy, completed cells are persisted as
// they finish, and completed work streams through the ResultSink
// interface — so killed runs resume, config deltas recompute only the
// affected grid slice, and results stay byte-identical to a cold run.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"factcheck/internal/consensus"
	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/fault"
	"factcheck/internal/llm"
	"factcheck/internal/rag"
	"factcheck/internal/resilience"
	"factcheck/internal/results"
	"factcheck/internal/sched"
	"factcheck/internal/search"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

// Config parameterises a benchmark run.
type Config struct {
	// Scale multiplies the published dataset sizes (1.0 = full benchmark).
	Scale float64
	// WorldConfig sizes the synthetic universe; zero value selects
	// world.DefaultConfig (or SmallConfig when Small is set).
	WorldConfig world.Config
	// Small selects the miniature test world.
	Small bool
	// Models to evaluate; defaults to llm.BenchmarkModels.
	Models []string
	// Methods to evaluate; defaults to llm.AllMethods.
	Methods []llm.Method
	// Datasets to evaluate; defaults to dataset.AllNames.
	Datasets []dataset.Name
	// Parallelism bounds the worker pool draining the whole verification
	// grid (and the per-cell fan-out of RunCell); defaults to GOMAXPROCS.
	// Results are identical at any parallelism; 1 degenerates to a strictly
	// sequential run.
	Parallelism int
	// Pace makes every simulated model call really take its simulated
	// latency, scaled by Pace wall-clock seconds per simulated second
	// (0 = as fast as the hardware allows). Outcomes are unchanged — like
	// Parallelism it is an execution knob, excluded from result-store
	// fingerprints — but it lets latency-structure benchmarks (serial vs
	// fanned-out consensus) measure what a real model server would cost.
	Pace float64
	// Faults injects deterministic faults into model calls and ingestion
	// folds (internal/fault). Like Pace it is an execution knob excluded
	// from result-store fingerprints: a call that survives its faults
	// (directly or via retries) produces byte-identical outcomes.
	Faults fault.Plan
	// Resilience, when set, wraps every model with capped-backoff retries
	// for transient errors and a per-model circuit breaker
	// (internal/resilience). Nil leaves failures to surface raw.
	Resilience *resilience.Config
}

// DefaultConfig returns the full-benchmark configuration.
func DefaultConfig() Config { return Config{Scale: 1.0} }

// TestConfig returns a fast, small configuration for tests.
func TestConfig() Config { return Config{Scale: 0.05, Small: true} }

func (c *Config) fill() {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.WorldConfig.Persons == 0 {
		if c.Small {
			c.WorldConfig = world.SmallConfig()
		} else {
			c.WorldConfig = world.DefaultConfig()
		}
	}
	if len(c.Models) == 0 {
		c.Models = llm.BenchmarkModels
	}
	if len(c.Methods) == 0 {
		c.Methods = llm.AllMethods
	}
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.AllNames
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Benchmark is a fully wired FactCheck instance.
type Benchmark struct {
	Config   Config
	World    *world.World
	Datasets map[dataset.Name]*dataset.Dataset
	Corpus   *corpus.Generator
	Engine   *search.Engine
	Pipeline *rag.Pipeline

	// Faults and Resilience execute the config's fault plan and
	// retry/breaker policy; either may be nil (no-op). The serving layer
	// reads Resilience for its breaker stats.
	Faults     *fault.Injector
	Resilience *resilience.Registry

	modelsMu sync.Mutex
	models   map[string]llm.Model

	factIdxOnce sync.Once
	factIdx     map[dataset.Name]map[string]int
}

// NewBenchmark builds all substrates for the configuration.
func NewBenchmark(cfg Config) *Benchmark {
	cfg.fill()
	w := world.New(cfg.WorldConfig)
	ds := map[dataset.Name]*dataset.Dataset{}
	var all []*dataset.Dataset
	for _, n := range cfg.Datasets {
		d := dataset.Build(w, n, cfg.Scale)
		ds[n] = d
		all = append(all, d)
	}
	gen := corpus.NewGenerator(w)
	eng := search.NewEngine(gen, all...)
	b := &Benchmark{
		Config:     cfg,
		World:      w,
		Datasets:   ds,
		Corpus:     gen,
		Engine:     eng,
		Pipeline:   rag.New(eng),
		Faults:     fault.New(cfg.Faults),
		Resilience: resilience.NewRegistry(cfg.Resilience),
		models:     map[string]llm.Model{},
	}
	return b
}

// Model returns (and caches) the named simulated model. The registry is
// mutex-guarded: grid workers and consensus arbiters resolve models
// concurrently.
func (b *Benchmark) Model(name string) (llm.Model, error) {
	b.modelsMu.Lock()
	defer b.modelsMu.Unlock()
	if m, ok := b.models[name]; ok {
		return m, nil
	}
	m, err := llm.New(name)
	if err != nil {
		return nil, err
	}
	// The execution chain wraps outward from the simulator: pacing turns
	// simulated latency real, the fault injector fails/delays calls ahead
	// of it, and the resilience layer (retry around breaker) sits
	// outermost so injected transient errors are what it absorbs.
	var wrapped llm.Model = m
	if b.Config.Pace > 0 {
		wrapped = llm.Paced{Model: m, Scale: b.Config.Pace}
	}
	wrapped = b.Faults.Model(wrapped)
	wrapped = b.Resilience.Model(wrapped)
	b.models[name] = wrapped
	return wrapped, nil
}

// Verifier returns the verifier for a method, wired to the benchmark's RAG
// pipeline when needed.
func (b *Benchmark) Verifier(m llm.Method) (strategy.Verifier, error) {
	return strategy.ForMethod(m, b.Pipeline)
}

// Cell identifies one (dataset, method, model) evaluation cell.
type Cell struct {
	Dataset dataset.Name
	Method  llm.Method
	Model   string
}

// ResultSet holds the outcomes of a benchmark run, indexed by cell. Within
// a cell, outcomes are ordered like the dataset's fact slice, so the i-th
// outcomes of different models refer to the same fact.
type ResultSet struct {
	Config   Config
	Outcomes map[Cell][]strategy.Outcome
}

// Get returns the outcomes for a cell (nil when absent).
func (r *ResultSet) Get(d dataset.Name, m llm.Method, model string) []strategy.Outcome {
	return r.Outcomes[Cell{Dataset: d, Method: m, Model: model}]
}

// MissingCellError reports a grid cell absent from a ResultSet — typically
// a consumer asking for a (dataset, method, model) combination the run was
// not configured to produce.
type MissingCellError struct {
	Cell Cell
}

// Error implements error.
func (e *MissingCellError) Error() string {
	return fmt.Sprintf("core: result set has no cell %s/%s/%s",
		e.Cell.Dataset, e.Cell.Method, e.Cell.Model)
}

// PerFact regroups a cell list of model names into per-fact outcome slices:
// result[i][j] is model j's outcome on fact i. A model whose cell is absent
// yields a *MissingCellError (renderers fail loudly instead of silently
// emitting empty artifacts); cells of mismatched length are likewise
// rejected.
func (r *ResultSet) PerFact(d dataset.Name, m llm.Method, models []string) ([][]strategy.Outcome, error) {
	var per [][]strategy.Outcome
	for j, name := range models {
		cell := Cell{Dataset: d, Method: m, Model: name}
		outs, ok := r.Outcomes[cell]
		if !ok {
			return nil, &MissingCellError{Cell: cell}
		}
		if per == nil {
			per = make([][]strategy.Outcome, len(outs))
		} else if len(outs) != len(per) {
			return nil, fmt.Errorf("core: cell %s/%s/%s has %d outcomes, want %d",
				d, m, name, len(outs), len(per))
		}
		for i := range outs {
			if j == 0 {
				per[i] = make([]strategy.Outcome, 0, len(models))
			}
			per[i] = append(per[i], outs[i])
		}
	}
	return per, nil
}

// Progress reports the completion of one grid cell during Run.
type Progress struct {
	// Cell identifies the completed (dataset, method, model) cell.
	Cell Cell
	// Facts is the number of facts verified in the cell.
	Facts int
	// DoneCells counts completed cells so far, including this one.
	DoneCells int
	// TotalCells is the size of the grid.
	TotalCells int
}

// RunOption customises a single Run invocation.
type RunOption func(*runOptions)

type runOptions struct {
	progress func(Progress)
	store    *Store
	sink     ResultSink
}

// WithProgress streams per-cell completion events to fn as the worker pool
// drains the grid. Cells complete in data-dependent order (cells satisfied
// by an attached store report first, in grid order); fn is called serially
// (never concurrently with itself).
func WithProgress(fn func(Progress)) RunOption {
	return func(o *runOptions) { o.progress = fn }
}

// gridCell is one (dataset, method, model) cell being assembled by the
// scheduler: workers write index-addressed outcomes and the last one to
// finish reports the cell complete. Cells satisfied by an attached result
// store are marked cached and never scheduled.
type gridCell struct {
	cell      Cell
	facts     []*dataset.Fact
	model     llm.Model
	verifier  strategy.Verifier
	outs      []strategy.Outcome
	remaining atomic.Int64
	fp        results.Fingerprint
	cached    bool
}

// Run executes the full grid of the configuration as one streamed task
// queue: every (cell, fact) pair is enqueued up front and drained by
// Parallelism workers, so slow cells overlap with fast ones instead of
// serialising behind per-cell barriers. Outcomes are assembled back into
// fact-ordered slices and are byte-identical at any parallelism. On error
// the run cancels outstanding work, drains in-flight verifications and
// returns the aggregated failure.
//
// With WithStore attached, cells whose fingerprint is already stored are
// served from the store and the queue is built only from the missing
// cells: an interrupted run resumes from the cells that completed, a
// config delta recomputes only the affected slice of the grid, and a
// fully warm store replays the whole grid with zero verifier calls —
// results stay byte-identical to a cold run throughout. Newly computed
// cells are persisted as they finish, so progress survives a kill at any
// point. WithSink additionally streams every completed cell to a caller
// sink (cached cells first, in grid order).
func (b *Benchmark) Run(ctx context.Context, opts ...RunOption) (*ResultSet, error) {
	var ro runOptions
	for _, o := range opts {
		o(&ro)
	}

	// Resolve verifiers, models and datasets up front so configuration
	// errors surface before any verification is scheduled.
	verifiers := make(map[llm.Method]strategy.Verifier, len(b.Config.Methods))
	for _, method := range b.Config.Methods {
		v, err := b.Verifier(method)
		if err != nil {
			return nil, err
		}
		verifiers[method] = v
	}
	models := make(map[string]llm.Model, len(b.Config.Models))
	for _, name := range b.Config.Models {
		m, err := b.Model(name)
		if err != nil {
			return nil, err
		}
		models[name] = m
	}
	var cells []*gridCell
	for _, dn := range b.Config.Datasets {
		d, ok := b.Datasets[dn]
		if !ok {
			return nil, fmt.Errorf("core: dataset %q not built", dn)
		}
		for _, method := range b.Config.Methods {
			for _, name := range b.Config.Models {
				c := &gridCell{
					cell:     Cell{Dataset: dn, Method: method, Model: name},
					facts:    d.Facts,
					model:    models[name],
					verifier: verifiers[method],
				}
				if ro.store != nil {
					c.fp = b.CellKey(c.cell).Fingerprint()
					if outs, ok := ro.store.Get(c.fp); ok && len(outs) == len(d.Facts) {
						c.outs = outs
						c.cached = true
					}
				}
				if !c.cached {
					c.outs = make([]strategy.Outcome, len(d.Facts))
				}
				c.remaining.Store(int64(len(d.Facts)))
				cells = append(cells, c)
			}
		}
	}

	var progressMu sync.Mutex
	doneCells := 0
	cellDone := func(c *gridCell) {
		if ro.progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		doneCells++
		ro.progress(Progress{
			Cell:       c.cell,
			Facts:      len(c.facts),
			DoneCells:  doneCells,
			TotalCells: len(cells),
		})
	}

	// finishCell runs once per completed cell: persist it (unless it came
	// from the store), stream it to the sink, report progress. Sink calls
	// are serialised; a persist or sink failure fails the run.
	var sinkMu sync.Mutex
	finishCell := func(c *gridCell) error {
		if ro.store != nil && !c.cached && len(c.facts) > 0 {
			if err := ro.store.Put(c.fp, c.outs); err != nil {
				return fmt.Errorf("core: persisting cell %s/%s/%s: %w",
					c.cell.Dataset, c.cell.Method, c.cell.Model, err)
			}
		}
		if ro.sink != nil {
			sinkMu.Lock()
			err := ro.sink.PutCell(c.cell, c.outs)
			sinkMu.Unlock()
			if err != nil {
				return fmt.Errorf("core: result sink rejected cell %s/%s/%s: %w",
					c.cell.Dataset, c.cell.Method, c.cell.Model, err)
			}
		}
		cellDone(c)
		return nil
	}

	// Cached and empty cells are complete before any work is scheduled:
	// deliver them in grid order so consumers see a deterministic prefix.
	for _, c := range cells {
		if c.cached || len(c.facts) == 0 {
			if err := finishCell(c); err != nil {
				return nil, err
			}
		}
	}

	pool := sched.New(b.Config.Parallelism)

	// One flat queue, two kinds of tasks, built only from the cells the
	// store could not satisfy. Evidence-prefetch tasks sit at the front:
	// methods with model-independent per-fact state (RAG retrieval) warm
	// it once per fact before that fact's model fan-out is dispatched —
	// and only for datasets where that method still has a missing cell.
	// Ascending dispatch means the prefetch block still drains (almost)
	// fully before verification starts — the overlap is bounded by the
	// worker count — but unlike a barrier phase there is no sync point:
	// workers flow straight into verification, and the singleflight cache
	// keeps retrieval exactly-once even when a verify task overtakes its
	// fact's prefetch.
	type task struct {
		prefetch strategy.Prefetcher // nil for verification tasks
		f        *dataset.Fact       // prefetch target
		c        *gridCell           // verification cell
		i        int                 // fact index within c
	}
	needPrefetch := map[llm.Method]map[dataset.Name]bool{}
	for _, c := range cells {
		if c.cached || len(c.facts) == 0 {
			continue
		}
		ds := needPrefetch[c.cell.Method]
		if ds == nil {
			ds = map[dataset.Name]bool{}
			needPrefetch[c.cell.Method] = ds
		}
		ds[c.cell.Dataset] = true
	}
	var tasks []task
	for _, method := range b.Config.Methods {
		p, ok := verifiers[method].(strategy.Prefetcher)
		if !ok {
			continue
		}
		for _, dn := range b.Config.Datasets {
			if !needPrefetch[method][dn] {
				continue
			}
			for _, f := range b.Datasets[dn].Facts {
				tasks = append(tasks, task{prefetch: p, f: f})
			}
		}
	}
	for _, c := range cells {
		if c.cached {
			continue
		}
		for i := range c.facts {
			tasks = append(tasks, task{c: c, i: i})
		}
	}
	err := pool.Run(ctx, len(tasks), func(ctx context.Context, ti int) error {
		t := tasks[ti]
		if t.prefetch != nil {
			return t.prefetch.Prefetch(ctx, t.f)
		}
		out, err := t.c.verifier.Verify(ctx, t.c.model, t.c.facts[t.i])
		if err != nil {
			return err
		}
		t.c.outs[t.i] = out
		if t.c.remaining.Add(-1) == 0 {
			return finishCell(t.c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rs := &ResultSet{Config: b.Config, Outcomes: make(map[Cell][]strategy.Outcome, len(cells))}
	for _, c := range cells {
		rs.Outcomes[c.cell] = c.outs
	}
	return rs, nil
}

// RunCell verifies every fact of one dataset with one model and method,
// fanning out across Parallelism workers. Outcomes preserve fact order.
// Cancellation is drained: RunCell returns only after every started
// verification has finished.
func (b *Benchmark) RunCell(ctx context.Context, dn dataset.Name, method llm.Method, modelName string) ([]strategy.Outcome, error) {
	d, ok := b.Datasets[dn]
	if !ok {
		return nil, fmt.Errorf("core: dataset %q not built", dn)
	}
	m, err := b.Model(modelName)
	if err != nil {
		return nil, err
	}
	v, err := b.Verifier(method)
	if err != nil {
		return nil, err
	}
	outs := make([]strategy.Outcome, len(d.Facts))
	err = sched.New(b.Config.Parallelism).Run(ctx, len(d.Facts), func(ctx context.Context, i int) error {
		out, err := v.Verify(ctx, m, d.Facts[i])
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// VerifyFact verifies a single fact under one (dataset, method, model)
// cell and returns the outcome. It is the unit of work of the online
// serving layer: outcomes are deterministic, so the result is identical to
// the corresponding entry of a whole-cell RunCell (or grid Run) — which is
// what lets the service, the CLI and the webapp share one result store.
func (b *Benchmark) VerifyFact(ctx context.Context, c Cell, f *dataset.Fact) (strategy.Outcome, error) {
	m, err := b.Model(c.Model)
	if err != nil {
		return strategy.Outcome{}, err
	}
	v, err := b.Verifier(c.Method)
	if err != nil {
		return strategy.Outcome{}, err
	}
	return v.Verify(ctx, m, f)
}

// FactIndex maps fact IDs of one dataset to their index in the dataset's
// fact slice — the outcome order of cell snapshots. The index is built
// lazily once and shared; the returned map must not be mutated. Unknown
// datasets yield nil.
func (b *Benchmark) FactIndex(dn dataset.Name) map[string]int {
	b.factIdxOnce.Do(func() {
		b.factIdx = make(map[dataset.Name]map[string]int, len(b.Datasets))
		for name, d := range b.Datasets {
			idx := make(map[string]int, len(d.Facts))
			for i, f := range d.Facts {
				idx[f.ID] = i
			}
			b.factIdx[name] = idx
		}
	})
	return b.factIdx[dn]
}

// Arbiters builds the paper's three tie-breaking configurations for a
// (dataset, method) cell: the upgraded most-consistent model, the upgraded
// least-consistent model, and GPT-4o mini.
func (b *Benchmark) Arbiters(rep consensus.AlignmentReport, method llm.Method) (up, down, commercial consensus.Arbiter, err error) {
	v, err := b.Verifier(method)
	if err != nil {
		return nil, nil, nil, err
	}
	mk := func(label, base string) (consensus.Arbiter, error) {
		name := base
		if up, ok := llm.Upgrade[base]; ok {
			name = up
		}
		judge, err := b.Model(name)
		if err != nil {
			return nil, err
		}
		return &consensus.ModelArbiter{Label: label, Judge: judge, Verifier: v}, nil
	}
	up, err = mk("agg-cons-up", rep.MostConsistent(true))
	if err != nil {
		return nil, nil, nil, err
	}
	down, err = mk("agg-cons-down", rep.MostConsistent(false))
	if err != nil {
		return nil, nil, nil, err
	}
	judge, err := b.Model(llm.GPT4oMini)
	if err != nil {
		return nil, nil, nil, err
	}
	commercial = &consensus.ModelArbiter{Label: "agg-gpt-4o-mini", Judge: judge, Verifier: v}
	return up, down, commercial, nil
}

// FactByID resolves a fact across all built datasets.
func (b *Benchmark) FactByID(id string) (*dataset.Fact, bool) {
	return b.Engine.Fact(id)
}

// Ingest applies a batch of live documents: the engine folds them into a
// fresh epoch snapshot (published atomically; readers never block), and
// every touched fact's cached retrieval evidence is dropped, so later
// verifications of those facts see the new corpus while untouched facts
// keep their warm evidence. The corpus digest bump retires affected cell
// fingerprints automatically.
func (b *Benchmark) Ingest(docs []search.IngestDoc) (search.IngestResult, error) {
	if err := b.Faults.IngestFault(); err != nil {
		return search.IngestResult{}, err
	}
	res, err := b.Engine.Ingest(docs)
	if err != nil {
		return res, err
	}
	for factID := range res.Epochs {
		b.Pipeline.Invalidate(factID)
	}
	return res, nil
}
