package core

import (
	"context"
	"reflect"
	"testing"

	"factcheck/internal/llm"
)

// TestGridSparseScoringMatchesDense is the end-to-end golden test for the
// sparse scoring substrate: a whole small grid — every method, one model,
// all datasets — run on the sparse production path must produce outcomes
// (verdicts, reasons, token counts, latencies) deeply equal to the retired
// dense scoring path. This is the grid-level guarantee behind the CLI's
// byte-identical stdout and the serving layer's unchanged verdicts.
func TestGridSparseScoringMatchesDense(t *testing.T) {
	cfg := Config{Scale: 0.05, Small: true, Models: []string{llm.Gemma2}}
	ctx := context.Background()

	sparse := NewBenchmark(cfg)
	rsSparse, err := sparse.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	dense := NewBenchmark(cfg)
	dense.Pipeline.DenseScoring = true
	rsDense, err := dense.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if len(rsSparse.Outcomes) == 0 {
		t.Fatal("sparse run produced no cells")
	}
	for cell, douts := range rsDense.Outcomes {
		souts := rsSparse.Outcomes[cell]
		if len(souts) < 3 {
			t.Fatalf("cell %v: only %d outcomes, need >= 3 facts", cell, len(souts))
		}
		if !reflect.DeepEqual(souts, douts) {
			for i := range douts {
				if !reflect.DeepEqual(souts[i], douts[i]) {
					t.Fatalf("cell %v outcome %d diverged:\nsparse: %+v\ndense:  %+v",
						cell, i, souts[i], douts[i])
				}
			}
			t.Fatalf("cell %v diverged", cell)
		}
	}
}
