package core

import (
	"context"
	"fmt"
	"strings"

	"factcheck/internal/consensus"
	"factcheck/internal/dataset"
	"factcheck/internal/eval"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// ConsensusCell holds consensus results for one (dataset, method) cell.
type ConsensusCell struct {
	Alignment consensus.AlignmentReport
	// Results maps arbiter label -> metrics of the arbitrated consensus.
	Results map[string]eval.Confusion
	// Latency is the IQR-filtered mean of the consensus response time.
	Latency float64
}

// F1 returns (F1True, F1False) of the named arbiter configuration.
func (c *ConsensusCell) F1(arbiter string) (float64, float64) {
	conf := c.Results[arbiter]
	return conf.F1True(), conf.F1False()
}

// ArbiterLabels lists the paper's three consensus configurations in table
// order.
var ArbiterLabels = []string{"agg-cons-up", "agg-cons-down", "agg-gpt-4o-mini"}

// RunConsensus computes the consensus analysis for a (dataset, method) cell
// from the open-source models' outcomes in rs, invoking arbiters on ties.
// It runs the engine in eager (run-everything) mode — the golden baseline;
// RunConsensusMode selects other execution strategies.
func (b *Benchmark) RunConsensus(ctx context.Context, rs *ResultSet, dn dataset.Name, method llm.Method) (*ConsensusCell, error) {
	return b.RunConsensusMode(ctx, rs, dn, method, consensus.ModeEager)
}

// RunConsensusMode is RunConsensus under an explicit engine mode. Every
// mode yields identical verdicts (and therefore identical Alignment,
// Results and tables); adaptive changes only which votes are consulted and
// the honesty of the Latency column (decided-at time instead of
// slowest-of-all when the early-stop bound skipped voters).
func (b *Benchmark) RunConsensusMode(ctx context.Context, rs *ResultSet, dn dataset.Name, method llm.Method, mode consensus.Mode) (*ConsensusCell, error) {
	models := openModels(b.Config.Models)
	perFact, err := rs.PerFact(dn, method, models)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s consensus: %w", dn, method, err)
	}
	cell := &ConsensusCell{
		Alignment: consensus.Alignment(perFact),
		Results:   map[string]eval.Confusion{},
	}
	up, down, commercial, err := b.Arbiters(cell.Alignment, method)
	if err != nil {
		return nil, err
	}
	plan := consensus.NewPlan(models, llm.Cost)
	d := b.Datasets[dn]
	var lats []float64
	for _, arb := range []consensus.Arbiter{up, down, commercial} {
		eng := &consensus.Engine{Plan: plan, Mode: mode, Arbiter: arb}
		var conf eval.Confusion
		for i, outs := range perFact {
			outs := outs
			fetch := func(_ context.Context, model string) (strategy.Outcome, error) {
				for _, o := range outs {
					if o.Model == model {
						return o, nil
					}
				}
				return strategy.Outcome{}, fmt.Errorf("core: no %s outcome for fact %s", model, d.Facts[i].ID)
			}
			dec, _, err := eng.Decide(ctx, d.Facts[i], fetch)
			if err != nil {
				return nil, err
			}
			conf.Add(dec.Gold, dec.Final, true)
			if arb.Name() == ArbiterLabels[0] {
				lats = append(lats, dec.LatencySeconds)
			}
		}
		cell.Results[arb.Name()] = conf
	}
	if len(lats) > 0 {
		filtered := eval.IQRFilter(lats)
		cell.Latency = eval.Mean(filtered)
	}
	return cell, nil
}

// ConsensusReport aggregates consensus cells over the whole grid.
type ConsensusReport struct {
	Cells map[Cell]*ConsensusCell // Model field is empty in keys
}

// RunAllConsensus computes consensus for every (dataset, method) pair in
// eager mode (the golden baseline).
func (b *Benchmark) RunAllConsensus(ctx context.Context, rs *ResultSet) (*ConsensusReport, error) {
	return b.RunAllConsensusMode(ctx, rs, consensus.ModeEager)
}

// RunAllConsensusMode computes consensus for every (dataset, method) pair
// under an explicit engine mode.
func (b *Benchmark) RunAllConsensusMode(ctx context.Context, rs *ResultSet, mode consensus.Mode) (*ConsensusReport, error) {
	rep := &ConsensusReport{Cells: map[Cell]*ConsensusCell{}}
	for _, dn := range b.Config.Datasets {
		for _, method := range b.Config.Methods {
			cell, err := b.RunConsensusMode(ctx, rs, dn, method, mode)
			if err != nil {
				return nil, err
			}
			rep.Cells[Cell{Dataset: dn, Method: method}] = cell
		}
	}
	return rep, nil
}

// Table6 renders the model-alignment analysis (paper Table 6): tie rates
// and per-model CA_M for each dataset and method.
func (b *Benchmark) Table6(rep *ConsensusReport) string {
	models := openModels(b.Config.Models)
	var sb strings.Builder
	sb.WriteString("Table 6: Model alignment analysis (CA_M and tie rates).\n")
	fmt.Fprintf(&sb, "%-11s%-8s%7s", "Dataset", "Method", "Ties")
	for _, m := range models {
		fmt.Fprintf(&sb, "%12s", shortModel(m))
	}
	sb.WriteString("\n")
	for _, dn := range b.Config.Datasets {
		for _, method := range b.Config.Methods {
			cell := rep.Cells[Cell{Dataset: dn, Method: method}]
			if cell == nil {
				continue
			}
			fmt.Fprintf(&sb, "%-11s%-8s%6.0f%%", dn, method, 100*cell.Alignment.TieRate)
			for _, m := range models {
				fmt.Fprintf(&sb, "%12.3f", cell.Alignment.CA[m])
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// Table7 renders the multi-model consensus evaluation (paper Table 7).
func (b *Benchmark) Table7(rep *ConsensusReport) string {
	var sb strings.Builder
	sb.WriteString("Table 7: Performance evaluation of multi-model consensus.\n")
	fmt.Fprintf(&sb, "%-11s%-8s", "Dataset", "Method")
	for _, a := range ArbiterLabels {
		fmt.Fprintf(&sb, "%18s", a)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-19s", "")
	for range ArbiterLabels {
		fmt.Fprintf(&sb, "%9s%9s", "F1(T)", "F1(F)")
	}
	sb.WriteString("\n")
	for _, dn := range b.Config.Datasets {
		sums := make([]struct{ t, f float64 }, len(ArbiterLabels))
		for _, method := range b.Config.Methods {
			cell := rep.Cells[Cell{Dataset: dn, Method: method}]
			if cell == nil {
				continue
			}
			fmt.Fprintf(&sb, "%-11s%-8s", dn, method)
			for i, a := range ArbiterLabels {
				t, f := cell.F1(a)
				fmt.Fprintf(&sb, "%9.2f%9.2f", t, f)
				sums[i].t += t
				sums[i].f += f
			}
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "%-11s%-8s", dn, "Mean")
		nm := float64(len(b.Config.Methods))
		for i := range ArbiterLabels {
			fmt.Fprintf(&sb, "%9.2f%9.2f", sums[i].t/nm, sums[i].f/nm)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
