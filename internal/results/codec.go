package results

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// Snapshot wire format (all integers big-endian):
//
//	magic   "FCRS"                     4 bytes
//	version uint8                      1 byte
//	fp      uint64                     cell fingerprint
//	count   uint64                     number of outcomes
//	count × outcome                    see encodeOutcome
//	check   uint64                     FNV-1a over everything above
//
// Strings are uint64 length + UTF-8 bytes; booleans one byte (0/1);
// float64s are IEEE-754 bit patterns. The encoding has no map iteration,
// no pointers and no reflection, so equal inputs yield equal bytes —
// which keeps snapshots diffable and lets tests pin golden images.
const (
	codecMagic   = "FCRS"
	codecVersion = 1

	// minEncodedOutcome is the size of an outcome with every string empty:
	// 13 string lengths (8 bytes each) + 1 verdict byte + 3 booleans +
	// 5 int64s + 1 float64. encodeOutcome can never produce fewer bytes.
	minEncodedOutcome = 13*8 + 1 + 3 + 5*8 + 8
)

// Decode errors. ErrSnapshot is the common base; errors.Is works against
// it for any decode failure.
var (
	ErrSnapshot  = errors.New("results: invalid snapshot")
	errMagic     = fmt.Errorf("%w: bad magic", ErrSnapshot)
	errVersion   = fmt.Errorf("%w: unsupported version", ErrSnapshot)
	errTruncated = fmt.Errorf("%w: truncated", ErrSnapshot)
	errChecksum  = fmt.Errorf("%w: checksum mismatch", ErrSnapshot)
	errTrailing  = fmt.Errorf("%w: trailing bytes", ErrSnapshot)
)

type encoder struct{ buf []byte }

func (e *encoder) raw(b []byte)  { e.buf = append(e.buf, b...) }
func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) raw(n int) ([]byte, error) {
	if d.remaining() < n {
		return nil, errTruncated
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) u8() (uint8, error) {
	b, err := d.raw(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.raw(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (d *decoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) str() (string, error) {
	n, err := d.u64()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", errTruncated
	}
	b, err := d.raw(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) boolean() (bool, error) {
	v, err := d.u8()
	return v != 0, err
}

// Encode serialises a cell snapshot deterministically: equal (fp, outs)
// inputs produce equal bytes.
func Encode(fp Fingerprint, outs []strategy.Outcome) []byte {
	e := &encoder{}
	e.raw([]byte(codecMagic))
	e.u8(codecVersion)
	e.u64(uint64(fp))
	e.u64(uint64(len(outs)))
	for i := range outs {
		encodeOutcome(e, &outs[i])
	}
	e.u64(checksum(e.buf))
	return e.buf
}

// Decode parses a snapshot, verifying magic, version, checksum and exact
// length. Any malformation yields an error wrapping ErrSnapshot.
func Decode(data []byte) (Fingerprint, []strategy.Outcome, error) {
	const headerLen = 4 + 1 + 8 + 8 // magic + version + fp + count
	if len(data) < headerLen+8 {
		return 0, nil, errTruncated
	}
	if string(data[:4]) != codecMagic {
		return 0, nil, errMagic
	}
	if data[4] != codecVersion {
		return 0, nil, fmt.Errorf("%w %d", errVersion, data[4])
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if checksum(body) != binary.BigEndian.Uint64(tail) {
		return 0, nil, errChecksum
	}
	d := &decoder{buf: body, pos: 5}
	fpBits, err := d.u64()
	if err != nil {
		return 0, nil, err
	}
	count, err := d.u64()
	if err != nil {
		return 0, nil, err
	}
	// Bound the outcome-table allocation by what the payload could
	// actually hold: every encoded outcome occupies at least
	// minEncodedOutcome bytes, so a larger count is structurally
	// impossible — and without this check a crafted count in a small file
	// (the checksum is not cryptographic) could force a multi-GB make()
	// before per-record decoding ever fails.
	if count > uint64(d.remaining())/minEncodedOutcome {
		return 0, nil, errTruncated
	}
	outs := make([]strategy.Outcome, count)
	for i := range outs {
		if err := decodeOutcome(d, &outs[i]); err != nil {
			return 0, nil, err
		}
	}
	if d.remaining() != 0 {
		return 0, nil, errTrailing
	}
	return Fingerprint(fpBits), outs, nil
}

func encodeOutcome(e *encoder, o *strategy.Outcome) {
	e.str(o.FactID)
	e.str(o.Model)
	e.str(string(o.Method))
	e.u8(uint8(o.Verdict))
	e.boolean(o.Gold)
	e.boolean(o.Correct)
	e.i64(int64(o.Latency))
	e.i64(int64(o.PromptTokens))
	e.i64(int64(o.CompletionTokens))
	e.i64(int64(o.Attempts))
	e.str(o.Explanation)
	e.i64(int64(o.EvidenceChunks))
	e.str(o.Claim.Key)
	e.str(o.Claim.FactID)
	e.str(o.Claim.Dataset)
	e.boolean(o.Claim.Gold)
	e.f64(o.Claim.Popularity)
	e.str(o.Claim.Category)
	e.str(o.Claim.Topic)
	e.str(o.Claim.Sentence)
	e.str(o.Claim.SubjectLabel)
	e.str(o.Claim.ObjectLabel)
	e.str(o.Claim.Phrase)
}

func decodeOutcome(d *decoder, o *strategy.Outcome) error {
	var err error
	read := func(dst *string) {
		if err == nil {
			*dst, err = d.str()
		}
	}
	readBool := func(dst *bool) {
		if err == nil {
			*dst, err = d.boolean()
		}
	}
	readInt := func(dst *int) {
		if err == nil {
			var v int64
			v, err = d.i64()
			*dst = int(v)
		}
	}
	read(&o.FactID)
	read(&o.Model)
	if err == nil {
		var m string
		m, err = d.str()
		o.Method = llm.Method(m)
	}
	if err == nil {
		var v uint8
		v, err = d.u8()
		o.Verdict = strategy.Verdict(v)
	}
	readBool(&o.Gold)
	readBool(&o.Correct)
	if err == nil {
		var v int64
		v, err = d.i64()
		o.Latency = time.Duration(v)
	}
	readInt(&o.PromptTokens)
	readInt(&o.CompletionTokens)
	readInt(&o.Attempts)
	read(&o.Explanation)
	readInt(&o.EvidenceChunks)
	read(&o.Claim.Key)
	read(&o.Claim.FactID)
	read(&o.Claim.Dataset)
	readBool(&o.Claim.Gold)
	if err == nil {
		o.Claim.Popularity, err = d.f64()
	}
	read(&o.Claim.Category)
	read(&o.Claim.Topic)
	read(&o.Claim.Sentence)
	read(&o.Claim.SubjectLabel)
	read(&o.Claim.ObjectLabel)
	read(&o.Claim.Phrase)
	return err
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
