package results

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/rag"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

// testOutcomes returns a small fixed outcome slice exercising every
// encoded field, including non-ASCII text and zero values.
func testOutcomes() []strategy.Outcome {
	return []strategy.Outcome{
		{
			FactID:           "factbench-000017",
			Model:            "gemma2:9b",
			Method:           llm.MethodRAG,
			Verdict:          strategy.True,
			Gold:             true,
			Correct:          true,
			Latency:          1234567 * time.Microsecond,
			PromptTokens:     812,
			CompletionTokens: 64,
			Attempts:         1,
			Explanation:      "evidence supports the claim — café documents agree",
			EvidenceChunks:   7,
			Claim: llm.Claim{
				Key:          "person-12|birthPlace|city-3",
				FactID:       "factbench-000017",
				Dataset:      "FactBench",
				Gold:         true,
				Popularity:   0.73125,
				Category:     "geo",
				Topic:        "people",
				Sentence:     "Ada Example was born in Sampleville.",
				SubjectLabel: "Ada Example",
				ObjectLabel:  "Sampleville",
				Phrase:       "was born in",
			},
		},
		{
			FactID:  "yago-000002",
			Model:   "mistral:7b",
			Method:  llm.MethodGIVZ,
			Verdict: strategy.Invalid,
			Gold:    false,
		},
	}
}

func testKey() Key {
	return Key{
		World:   world.SmallConfig(),
		Scale:   0.05,
		RAG:     rag.DefaultConfig(),
		Dataset: dataset.FactBench,
		Method:  llm.MethodDKA,
		Model:   "gemma2:9b",
	}
}

func TestCodecRoundTrip(t *testing.T) {
	fp := testKey().Fingerprint()
	outs := testOutcomes()
	data := Encode(fp, outs)
	gotFP, gotOuts, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Errorf("fingerprint = %s, want %s", gotFP, fp)
	}
	if !reflect.DeepEqual(gotOuts, outs) {
		t.Errorf("decoded outcomes differ:\n got %+v\nwant %+v", gotOuts, outs)
	}
	// Empty snapshots round-trip too.
	gotFP, gotOuts, err = Decode(Encode(42, nil))
	if err != nil || gotFP != 42 || len(gotOuts) != 0 {
		t.Errorf("empty snapshot: fp=%v outs=%v err=%v", gotFP, gotOuts, err)
	}
}

func TestCodecDeterministic(t *testing.T) {
	fp := testKey().Fingerprint()
	a := Encode(fp, testOutcomes())
	b := Encode(fp, testOutcomes())
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

// TestCodecGolden pins the exact wire image of a one-outcome snapshot: any
// codec change that alters bytes must bump codecVersion (old snapshots are
// then rejected and recomputed) and update this golden.
func TestCodecGolden(t *testing.T) {
	outs := []strategy.Outcome{{
		FactID:  "f-1",
		Model:   "m",
		Method:  llm.MethodDKA,
		Verdict: strategy.False,
		Gold:    true,
		Latency: 5 * time.Millisecond,
		Claim:   llm.Claim{Key: "k", Popularity: 0.5},
	}}
	got := hex.EncodeToString(Encode(Fingerprint(0xdeadbeef12345678), outs))
	const want = "4643525301deadbeef123456780000000000000001000000000000000366" +
		"2d3100000000000000016d0000000000000003444b410201000000000000" +
		"4c4b40000000000000000000000000000000000000000000000000000000" +
		"0000000000000000000000000000000000000000016b0000000000000000" +
		"0000000000000000003fe000000000000000000000000000000000000000" +
		"000000000000000000000000000000000000000000000000000000000000" +
		"000000000003fda1d2f39a8038"
	if got != want {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := Encode(testKey().Fingerprint(), testOutcomes())
	for _, n := range []int{0, 3, 4, 5, 12, 20, len(data) / 2, len(data) - 1} {
		if _, _, err := Decode(data[:n]); !errors.Is(err, ErrSnapshot) {
			t.Errorf("Decode(data[:%d]) err = %v, want ErrSnapshot", n, err)
		}
	}
	// Trailing garbage is rejected too (the checksum catches appended
	// bytes; a re-checksummed extension trips the exact-length check).
	if _, _, err := Decode(append(append([]byte{}, data...), 0)); !errors.Is(err, ErrSnapshot) {
		t.Errorf("trailing byte accepted: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := Encode(testKey().Fingerprint(), testOutcomes())
	for _, pos := range []int{0, 4, 5, 13, 30, len(data) / 2, len(data) - 1} {
		bad := append([]byte{}, data...)
		bad[pos] ^= 0x40
		if _, _, err := Decode(bad); !errors.Is(err, ErrSnapshot) {
			t.Errorf("flip at %d accepted: %v", pos, err)
		}
	}
}

func TestDecodeRejectsInflatedCount(t *testing.T) {
	// A crafted snapshot with a huge outcome count and a valid checksum
	// (FNV is not cryptographic) must be rejected by the structural bound
	// before the outcome table is allocated, not by an OOM.
	data := Encode(1, nil)
	body := append([]byte{}, data[:len(data)-8]...)
	binary.BigEndian.PutUint64(body[13:21], 1<<40) // count field
	e := &encoder{buf: body}
	e.u64(checksum(body))
	if _, _, err := Decode(e.buf); !errors.Is(err, errTruncated) {
		t.Errorf("inflated count accepted: %v", err)
	}
}

func TestDecodeRejectsForeignVersion(t *testing.T) {
	data := Encode(1, nil)
	body := append([]byte{}, data[:len(data)-8]...)
	body[4] = codecVersion + 1
	e := &encoder{buf: body}
	e.u64(checksum(body)) // valid checksum: only the version is foreign
	if _, _, err := Decode(e.buf); !errors.Is(err, errVersion) {
		t.Errorf("foreign version accepted: %v", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testKey()
	fps := map[Fingerprint]string{base.Fingerprint(): "base"}
	mutate := []struct {
		name string
		mut  func(*Key)
	}{
		{"scale", func(k *Key) { k.Scale = 0.1 }},
		{"world seed", func(k *Key) { k.World.Seed = "other" }},
		{"world persons", func(k *Key) { k.World.Persons++ }},
		{"rag tau", func(k *Key) { k.RAG.Tau = 0.7 }},
		{"rag filter", func(k *Key) { k.RAG.FilterSKG = !k.RAG.FilterSKG }},
		{"dataset", func(k *Key) { k.Dataset = dataset.YAGO }},
		{"method", func(k *Key) { k.Method = llm.MethodRAG }},
		{"model", func(k *Key) { k.Model = "mistral:7b" }},
	}
	for _, m := range mutate {
		k := base
		m.mut(&k)
		fp := k.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Errorf("mutating %s collides with %s", m.name, prev)
		}
		fps[fp] = m.name
	}
	// Identical keys agree.
	if testKey().Fingerprint() != base.Fingerprint() {
		t.Error("equal keys produced different fingerprints")
	}
}

func TestStorePersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := testKey().Fingerprint()
	outs := testOutcomes()
	if err := s.Put(fp, outs); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(fp); !ok || !reflect.DeepEqual(got, outs) {
		t.Fatal("Get after Put failed")
	}
	// A fresh Open (new process) sees the snapshot.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reloaded store has %d cells, want 1", s2.Len())
	}
	got, ok := s2.Get(fp)
	if !ok || !reflect.DeepEqual(got, outs) {
		t.Fatal("reloaded outcomes differ")
	}
	if _, ok := s2.Get(fp + 1); ok {
		t.Error("foreign fingerprint resolved")
	}
}

func TestStoreSkipsCorruptAndMisnamedSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := testKey().Fingerprint()
	if err := s.Put(fp, testOutcomes()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fp.String()+cellExt)

	// Truncate the snapshot: the cell must load as missing.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(fp); ok || s2.Len() != 0 {
		t.Error("truncated snapshot was loaded")
	}

	// Restore the bytes under a wrong name (fingerprint mismatch): the
	// embedded fingerprint no longer matches the file stem, so the
	// snapshot must be rejected rather than served under either address.
	other := Fingerprint(uint64(fp) ^ 0xffff)
	if err := os.WriteFile(filepath.Join(dir, other.String()+cellExt), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get(other); ok {
		t.Error("misnamed snapshot served under its file-name address")
	}
	if _, ok := s3.Get(fp); ok {
		t.Error("misnamed snapshot served under its embedded address")
	}

	// A stale temp file (killed mid-Put before rename) is ignored and
	// reaped; a fresh one — another process mid-Put — is left alone.
	stale := filepath.Join(dir, "put-123.tmp")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "put-456.tmp")
	if err := os.WriteFile(fresh, []byte("inflight"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Errorf("temp files broke Open: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("in-flight temp file was reaped")
	}
}

func TestMemoryStoreWritesNothing(t *testing.T) {
	s := NewMemory()
	if err := s.Put(7, testOutcomes()); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(7); !ok || len(got) != 2 {
		t.Fatal("memory store lost the cell")
	}
	if s.Dir() != "" {
		t.Error("memory store has a dir")
	}
	// Open("") is the documented memory-only mode.
	s2, err := Open("")
	if err != nil || s2.Dir() != "" {
		t.Errorf("Open(\"\") = %v, %v", s2, err)
	}
}
