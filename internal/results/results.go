// Package results is the benchmark's content-addressed result store: a
// durable, versioned cache of completed verification-grid cells.
//
// Every (dataset, method, model) cell of the evaluation grid is fully
// deterministic given the benchmark configuration, so its outcomes can be
// persisted once and replayed by any consumer — an interrupted full-scale
// run resumes from the cells that already finished, a config delta (one
// extra model, one changed method) recomputes only the affected slice of
// the grid, and the web application serves per-fact drill-downs from O(1)
// lookups instead of re-verifying on every page request.
//
// Cells are keyed by a Fingerprint: a det-hashed digest of everything that
// determines the cell's outcomes (world configuration, dataset scale, RAG
// configuration, dataset, method, model, plus the snapshot format version).
// Any configuration change yields a different fingerprint, so a stale
// snapshot can never be silently reused — it is simply never looked up
// again, and the store's content-addressing makes "is this cell done?" a
// single map probe.
//
// On disk a store is a flat directory of snapshot files, one per cell,
// named "<fingerprint>.cell" and written atomically (temp file + rename),
// so a killed run leaves either a complete snapshot or none. Snapshots
// carry a magic header, a format version, the embedded fingerprint and a
// trailing checksum; files that are truncated, corrupt, misnamed or of a
// foreign version are rejected at load time and treated as missing (the
// next run recomputes and rewrites them).
package results

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/llm"
	"factcheck/internal/rag"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

// fingerprintVersion is folded into every fingerprint so that changes to
// the key composition (or to outcome semantics) invalidate old snapshots
// wholesale instead of silently reusing them.
const fingerprintVersion = "results-fp-v2"

// Fingerprint is the content address of one grid cell: a 64-bit det hash
// of the full Key. Equal fingerprints mean "same outcomes, bit for bit".
type Fingerprint uint64

// String renders the fingerprint as fixed-width hex (the on-disk file
// stem).
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// Key is everything that determines a cell's outcomes. Parallelism is
// deliberately absent: results are byte-identical at any worker count, so
// a store written at -par 8 is valid for a -par 1 run and vice versa.
type Key struct {
	// World is the full synthetic-universe configuration (seed and sizes).
	World world.Config
	// Scale is the dataset scale factor.
	Scale float64
	// RAG is the retrieval-pipeline configuration (affects RAG outcomes
	// and the evidence-dependent latency model).
	RAG rag.Config
	// Corpus is the dataset's live-ingestion content digest (0 for a
	// pristine generated corpus). Every ingested document changes it, so
	// cells computed over different corpus epochs can never be confused:
	// content addressing does the invalidation.
	Corpus uint64
	// Dataset, Method and Model identify the cell within the grid.
	Dataset dataset.Name
	Method  llm.Method
	Model   string
}

// Fingerprint digests the key. Fields are serialised explicitly (not via
// reflection) so the hash is stable across Go versions and struct
// reordering; adding a field to world.Config or rag.Config must be
// mirrored here, which is exactly the invalidation behaviour we want.
func (k Key) Fingerprint() Fingerprint {
	i := strconv.Itoa
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return Fingerprint(det.Hash64(
		fingerprintVersion,
		"world", k.World.Seed,
		i(k.World.Persons), i(k.World.Countries), i(k.World.CitiesPer),
		i(k.World.Companies), i(k.World.Univs), i(k.World.Awards),
		i(k.World.Teams), i(k.World.Bands),
		f(k.World.FilmFactor), f(k.World.BookFactor),
		"scale", f(k.Scale),
		"rag", i(k.RAG.NumQuestions), f(k.RAG.Tau), i(k.RAG.SelectedQuestions),
		i(k.RAG.SERPSize), i(k.RAG.SelectedDocs), i(k.RAG.Window),
		i(k.RAG.MaxChunks), i(k.RAG.CandidateCap), strconv.FormatBool(k.RAG.FilterSKG),
		"corpus", strconv.FormatUint(k.Corpus, 16),
		"cell", string(k.Dataset), string(k.Method), k.Model,
	))
}

// cellExt is the snapshot file extension.
const cellExt = ".cell"

// staleTempAge is how old a put-*.tmp file must be before Open reaps it as
// stranded; an in-flight Put holds its temp file for milliseconds.
const staleTempAge = time.Hour

// Store is a content-addressed cell store: an O(1) in-memory cell table,
// optionally backed by a snapshot directory. The zero dir ("") is a pure
// in-memory store. A Store is safe for concurrent use.
//
// Outcome slices are shared between the table and callers on both Get and
// Put; they are treated as immutable once stored.
type Store struct {
	dir string

	// tamper, when set, may rewrite a snapshot's encoded bytes just
	// before they hit disk (deterministic fault injection: corrupt
	// snapshots that the next Open must reject). The in-memory table
	// always keeps the genuine outcomes.
	tamper func(fp uint64, data []byte) []byte

	mu    sync.RWMutex
	cells map[Fingerprint][]strategy.Outcome
}

// NewMemory returns a store with no backing directory: cells live only for
// the process lifetime (used by the web application when no store
// directory is configured).
func NewMemory() *Store {
	return &Store{cells: map[Fingerprint][]strategy.Outcome{}}
}

// Open opens (creating if needed) the snapshot directory and loads every
// valid cell snapshot into the in-memory table. Snapshots that fail to
// decode — truncated, corrupt, wrong version — or whose embedded
// fingerprint does not match their file name are skipped: they count as
// missing cells and are recomputed and rewritten by the next run. An empty
// dir returns a pure in-memory store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return NewMemory(), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: creating store dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("results: reading store dir: %w", err)
	}
	s := &Store{dir: dir, cells: map[Fingerprint][]strategy.Outcome{}}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if !strings.HasSuffix(name, cellExt) {
			// Reap temp files stranded by a kill between CreateTemp and
			// Rename, so interrupted runs don't grow the directory forever.
			// Only stale files are removed: another process may share the
			// store (CLI run + webapp) and hold an in-flight Put whose
			// window is milliseconds — an age threshold keeps the reap from
			// racing its rename.
			if strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp") {
				if info, err := ent.Info(); err == nil && time.Since(info.ModTime()) > staleTempAge {
					os.Remove(filepath.Join(dir, name))
				}
			}
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("results: reading snapshot %s: %w", name, err)
		}
		fp, outs, err := Decode(data)
		if err != nil {
			continue // corrupt or foreign snapshot: treat the cell as missing
		}
		if fp.String()+cellExt != name {
			continue // fingerprint/name mismatch (renamed or tampered file)
		}
		s.cells[fp] = outs
	}
	return s, nil
}

// Dir returns the backing directory ("" for in-memory stores).
func (s *Store) Dir() string { return s.dir }

// SetWriteTamper installs a hook that may rewrite snapshot bytes on their
// way to disk (nil clears it). A chaos harness uses it to write corrupt
// snapshots; the codec's load-time rejection then turns corruption into a
// recomputed cell instead of served garbage. Set before serving traffic —
// the hook is read without synchronisation.
func (s *Store) SetWriteTamper(f func(fp uint64, data []byte) []byte) { s.tamper = f }

// Len returns the number of cells in the table.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cells)
}

// Get returns the outcomes stored under the fingerprint. The returned
// slice is shared and must not be mutated.
func (s *Store) Get(fp Fingerprint) ([]strategy.Outcome, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	outs, ok := s.cells[fp]
	return outs, ok
}

// Put stores the outcomes under the fingerprint, persisting the snapshot
// atomically (temp file + rename) when the store is disk-backed. The store
// retains the slice; callers must not mutate it afterwards.
func (s *Store) Put(fp Fingerprint, outs []strategy.Outcome) error {
	if s.dir != "" {
		data := Encode(fp, outs)
		if s.tamper != nil {
			data = s.tamper(uint64(fp), data)
		}
		tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
		if err != nil {
			return fmt.Errorf("results: creating snapshot temp file: %w", err)
		}
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("results: writing snapshot: %w", err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("results: closing snapshot: %w", err)
		}
		final := filepath.Join(s.dir, fp.String()+cellExt)
		if err := os.Rename(tmp.Name(), final); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("results: publishing snapshot: %w", err)
		}
	}
	s.mu.Lock()
	s.cells[fp] = outs
	s.mu.Unlock()
	return nil
}
