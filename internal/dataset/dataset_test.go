package dataset

import (
	"math"
	"strings"
	"testing"

	"factcheck/internal/kg"
	"factcheck/internal/world"
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	return world.New(world.SmallConfig())
}

func TestBuildDeterministic(t *testing.T) {
	w := testWorld(t)
	d1 := Build(w, FactBench, 0.1)
	d2 := Build(w, FactBench, 0.1)
	if len(d1.Facts) != len(d2.Facts) {
		t.Fatalf("sizes differ: %d vs %d", len(d1.Facts), len(d2.Facts))
	}
	for i := range d1.Facts {
		if d1.Facts[i].Key() != d2.Facts[i].Key() || d1.Facts[i].Gold != d2.Facts[i].Gold {
			t.Fatalf("fact %d differs", i)
		}
	}
}

func TestGoldLabelsMatchWorld(t *testing.T) {
	w := testWorld(t)
	for _, name := range AllNames {
		d := Build(w, name, 0.1)
		for _, f := range d.Facts {
			isTrue := w.IsTrueFact(kg.LocalName(f.Subject.IRI), f.Relation.Name, kg.LocalName(f.Object.IRI))
			if f.Gold != isTrue {
				t.Fatalf("%s: fact %s gold=%v but world says %v", name, f.ID, f.Gold, isTrue)
			}
		}
	}
}

func TestGoldAccuracyTargets(t *testing.T) {
	w := testWorld(t)
	targets := map[Name]float64{FactBench: 0.54, YAGO: 0.99, DBpedia: 0.85}
	for name, mu := range targets {
		d := Build(w, name, 0.2)
		st := d.Stats()
		if math.Abs(st.GoldAccuracy-mu) > 0.05 {
			t.Errorf("%s gold accuracy = %.3f, want ~%.2f", name, st.GoldAccuracy, mu)
		}
	}
}

func TestPredicateVocabulary(t *testing.T) {
	w := testWorld(t)
	fb := Build(w, FactBench, 0.2).Stats()
	if fb.NumPredicates > 10 {
		t.Errorf("FactBench has %d predicates, want <= 10", fb.NumPredicates)
	}
	yago := Build(w, YAGO, 0.2).Stats()
	if yago.NumPredicates > 16 {
		t.Errorf("YAGO has %d predicates, want <= 16", yago.NumPredicates)
	}
	// DBpedia's predicate variants must substantially exceed the base
	// relation count even at small scale.
	dbp := Build(w, DBpedia, 0.2).Stats()
	if dbp.NumPredicates <= len(world.Relations) {
		t.Errorf("DBpedia has %d predicates, want > %d base relations",
			dbp.NumPredicates, len(world.Relations))
	}
}

func TestCorruptionMetadata(t *testing.T) {
	w := testWorld(t)
	d := Build(w, FactBench, 0.2)
	strategies := map[world.CorruptionStrategy]int{}
	for _, f := range d.Facts {
		if f.Gold && f.Corruption != "" {
			t.Fatalf("positive fact %s has corruption %q", f.ID, f.Corruption)
		}
		if !f.Gold {
			if f.Corruption == "" {
				t.Fatalf("negative fact %s lacks corruption strategy", f.ID)
			}
			strategies[f.Corruption]++
		}
	}
	if len(strategies) < 2 {
		t.Errorf("only %d corruption strategies used, want >= 2: %v", len(strategies), strategies)
	}
}

func TestNegativesRespectDomainRange(t *testing.T) {
	w := testWorld(t)
	for _, name := range AllNames {
		d := Build(w, name, 0.1)
		for _, f := range d.Facts {
			if f.Gold {
				continue
			}
			if f.Subject.Type != f.Relation.Domain || f.Object.Type != f.Relation.Range {
				t.Fatalf("%s: negative %s violates domain/range", name, f.ID)
			}
		}
	}
}

func TestTripleEncoding(t *testing.T) {
	w := testWorld(t)
	d := Build(w, FactBench, 0.1)
	f := d.Facts[0]
	if !strings.HasPrefix(string(f.Triple.S), kg.NSDBpediaResource) {
		t.Errorf("FactBench subject namespace wrong: %s", f.Triple.S)
	}
	if !strings.HasPrefix(string(f.Triple.P), kg.NSDBpediaOntology) {
		t.Errorf("FactBench predicate namespace wrong: %s", f.Triple.P)
	}
	if strings.Contains(kg.LocalName(f.Triple.S), " ") {
		t.Error("entity local name contains spaces, want underscores")
	}
	y := Build(w, YAGO, 0.1).Facts[0]
	if !strings.HasPrefix(string(y.Triple.S), kg.NSYAGOResource) {
		t.Errorf("YAGO namespace wrong: %s", y.Triple.S)
	}
	db := Build(w, DBpedia, 0.1).Facts[0]
	if !strings.HasPrefix(string(db.Triple.P), kg.NSDBpediaProperty) {
		t.Errorf("DBpedia predicate namespace wrong: %s", db.Triple.P)
	}
}

func TestIDsUniqueAndStable(t *testing.T) {
	w := testWorld(t)
	d := Build(w, DBpedia, 0.1)
	seen := map[string]bool{}
	for _, f := range d.Facts {
		if seen[f.ID] {
			t.Fatalf("duplicate fact ID %s", f.ID)
		}
		seen[f.ID] = true
		if !strings.HasPrefix(f.ID, "dbpedia-") {
			t.Fatalf("fact ID %s lacks dataset prefix", f.ID)
		}
	}
}

func TestScaleControlsSize(t *testing.T) {
	w := testWorld(t)
	small := Build(w, FactBench, 0.05)
	large := Build(w, FactBench, 0.2)
	if len(large.Facts) <= len(small.Facts) {
		t.Errorf("scale 0.2 (%d facts) not larger than 0.05 (%d)", len(large.Facts), len(small.Facts))
	}
	ratio := float64(len(large.Facts)) / float64(len(small.Facts))
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("size ratio %.1f not ~4", ratio)
	}
}

func TestPredicateVariantsDistinct(t *testing.T) {
	vs := predicateVariants("birthPlace", 42)
	if len(vs) != 42 {
		t.Fatalf("got %d variants, want 42", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("duplicate variant %q", v)
		}
		seen[v] = true
	}
	if vs[0] != "birthPlace" {
		t.Errorf("first variant %q, want the base name", vs[0])
	}
}

func TestCamelToSnake(t *testing.T) {
	tests := []struct{ in, want string }{
		{"birthPlace", "birth_place"},
		{"isMarriedTo", "is_married_to"},
		{"simple", "simple"},
	}
	for _, tc := range tests {
		if got := camelToSnake(tc.in); got != tc.want {
			t.Errorf("camelToSnake(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSampleCount(t *testing.T) {
	if got := sampleCount(2.42, 0.9); got != 2 {
		t.Errorf("sampleCount(2.42, .9) = %d, want 2", got)
	}
	if got := sampleCount(2.42, 0.1); got != 3 {
		t.Errorf("sampleCount(2.42, .1) = %d, want 3", got)
	}
	if got := sampleCount(0.5, 0.9); got != 1 {
		t.Errorf("sampleCount floor = %d, want 1", got)
	}
}

func TestUniverseAndTotal(t *testing.T) {
	w := testWorld(t)
	ds := Universe(w, 0.05)
	if len(ds) != 3 {
		t.Fatalf("Universe built %d datasets, want 3", len(ds))
	}
	total := TotalFacts(ds)
	sum := 0
	for _, d := range ds {
		sum += len(d.Facts)
	}
	if total != sum {
		t.Errorf("TotalFacts = %d, want %d", total, sum)
	}
}

func TestFactKeyMatchesWorldConvention(t *testing.T) {
	w := testWorld(t)
	d := Build(w, YAGO, 0.1)
	for _, f := range d.Facts[:10] {
		want := kg.LocalName(f.Subject.IRI) + "|" + f.Relation.Name + "|" + kg.LocalName(f.Object.IRI)
		if f.Key() != want {
			t.Fatalf("Key() = %q, want %q", f.Key(), want)
		}
	}
}

func TestYAGORelationWeighting(t *testing.T) {
	w := testWorld(t)
	d := Build(w, YAGO, 0.5)
	counts := map[string]int{}
	for _, f := range d.Facts {
		counts[f.Relation.Name]++
	}
	if counts["isMarriedTo"] == 0 {
		t.Fatal("YAGO sampled no isMarriedTo facts despite weighting")
	}
}
