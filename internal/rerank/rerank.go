// Package rerank implements the cross-encoder relevance scorer used in
// phases 2b (question ranking) and 4a (document selection) of the RAG
// pipeline. The paper uses jina-reranker-v1-turbo-en for questions and
// ms-marco-MiniLM-L-6-v2 for documents; both reduce to "a sigmoid-scaled
// dot-product score" (§3.2). This package reproduces that contract with a
// deterministic lexical cross-encoder: hashed term-vector cosine, length
// priors and a calibrated sigmoid, returning scores in (0,1).
package rerank

import (
	"slices"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

// Scorer scores the relevance of a candidate text to a reference text.
type Scorer interface {
	// Score returns a relevance score in (0,1) of candidate w.r.t.
	// reference; higher is more relevant.
	Score(reference, candidate string) float64
	// Name identifies the scorer (model name in the paper's Table 4).
	Name() string
}

// VecScorer is a Scorer that can score precomputed sparse embeddings.
// ScoreVec must return exactly what Score(refText, candText) returns when
// ref and cand are the sparse embeddings of those texts — the vector form
// skips re-embedding, not any part of the score. Both raw texts still
// travel with the vectors because the deterministic noise component is
// keyed by the text pair, not the embeddings.
type VecScorer interface {
	Scorer
	// ScoreVec scores cand against ref from their sparse embeddings.
	ScoreVec(ref text.SparseVector, refText string, cand text.SparseVector, candText string) float64
}

// BatchScorer is a VecScorer that amortises per-reference state across a
// candidate batch (one reference is scored against up to CandidateCap
// documents per fact). The returned function must produce exactly what
// ScoreVec produces for the same reference and candidate.
type BatchScorer interface {
	VecScorer
	// ScoreBatch fixes the reference and returns the per-candidate scorer.
	ScoreBatch(ref text.SparseVector, refText string) func(cand text.SparseVector, candText string) float64
}

// CrossEncoder is the lexical stand-in for the paper's neural rerankers.
// Two calibration profiles mirror the two models the paper configures.
type CrossEncoder struct {
	name string
	// gain/bias calibrate the sigmoid so the score distribution matches the
	// paper's published question-similarity statistics.
	gain float64
	bias float64
	// noise adds a small deterministic perturbation keyed by the text pair,
	// emulating the idiosyncrasy of a learned relevance vector.
	noise float64
}

// NewQuestionRanker mirrors jina-reranker-v1-turbo-en: calibrated so that
// direct restatements score ≈0.75–0.95, partial overlaps ≈0.4–0.7 and
// loosely related texts <0.4, reproducing the similarity distribution of
// paper §4.1 (mean δ ≈ 0.63, tiers ≈ 45/34/21%).
func NewQuestionRanker() *CrossEncoder {
	return &CrossEncoder{name: "jina-reranker-v1-turbo-en", gain: 4.3, bias: -2.6, noise: 0.42}
}

// NewDocumentRanker mirrors ms-marco-MiniLM-L-6-v2 for passage selection.
func NewDocumentRanker() *CrossEncoder {
	return &CrossEncoder{name: "ms-marco-MiniLM-L-6-v2", gain: 5.0, bias: -1.2, noise: 0.06}
}

// Name implements Scorer.
func (c *CrossEncoder) Name() string { return c.name }

// Score implements Scorer: sigmoid(gain*cosine + bias + noise). It embeds
// both strings densely on every call — the reference implementation the
// sparse path is golden-tested against.
func (c *CrossEncoder) Score(reference, candidate string) float64 {
	cos := text.Similarity(reference, candidate)
	return c.calibrate(cos, reference, candidate)
}

// ScoreVec implements VecScorer over precomputed sparse embeddings. The
// sparse cosine is bit-identical to the dense one (see text.SparseCosine),
// and the noise is keyed by the same raw text pair, so ScoreVec ==
// Score(refText, candText) exactly.
func (c *CrossEncoder) ScoreVec(ref text.SparseVector, refText string, cand text.SparseVector, candText string) float64 {
	cos := text.SparseCosine(ref, cand)
	return c.calibrate(cos, refText, candText)
}

// ScoreBatch implements BatchScorer: the returned function scores
// candidates against the fixed reference, with the noise stream's
// ("rerank", model, reference) hash prefix computed once for the whole
// batch. Every value equals ScoreVec with the same reference.
func (c *CrossEncoder) ScoreBatch(ref text.SparseVector, refText string) func(cand text.SparseVector, candText string) float64 {
	key := det.NewKey("rerank", c.name, refText)
	return func(cand text.SparseVector, candText string) float64 {
		cos := text.SparseCosine(ref, cand)
		n := (key.Uniform(candText) - 0.5) * 2 * c.noise
		return text.Sigmoid(c.gain*cos + c.bias + n)
	}
}

// calibrate applies the sigmoid calibration and the text-pair-keyed noise
// shared by both scoring paths.
func (c *CrossEncoder) calibrate(cos float64, reference, candidate string) float64 {
	n := (det.Uniform("rerank", c.name, reference, candidate) - 0.5) * 2 * c.noise
	return text.Sigmoid(c.gain*cos + c.bias + n)
}

// Ranked pairs an index into the candidate slice with its score.
type Ranked struct {
	Index int
	Score float64
}

// Rank scores every candidate against the reference and returns them in
// descending score order (stable on ties by original index). When the
// scorer is vector-aware the reference is embedded exactly once instead of
// once per candidate; scores are identical either way.
func Rank(s Scorer, reference string, candidates []string) []Ranked {
	if vs, ok := s.(VecScorer); ok {
		cands := make([]Candidate, len(candidates))
		for i, c := range candidates {
			cands[i] = Candidate{Text: c, Vec: text.SparseEmbed(c)}
		}
		return RankVecs(vs, text.SparseEmbed(reference), reference, cands)
	}
	out := make([]Ranked, len(candidates))
	for i, c := range candidates {
		out[i] = Ranked{Index: i, Score: s.Score(reference, c)}
	}
	sortRanked(out)
	return out
}

// Candidate pairs a candidate text with its precomputed sparse embedding,
// the unit of the batch scoring API.
type Candidate struct {
	Text string
	Vec  text.SparseVector
}

// RankVecs is the batch form of Rank over precomputed embeddings: the
// reference vector is supplied by the caller (embedded once per fact, not
// per candidate) and every candidate carries its own precomputed vector —
// static corpus documents are embedded at materialisation, never re-embedded
// per rerank. Scores and order are identical to Rank over the same texts.
func RankVecs(s VecScorer, ref text.SparseVector, refText string, cands []Candidate) []Ranked {
	score := func(c Candidate) float64 { return s.ScoreVec(ref, refText, c.Vec, c.Text) }
	if bs, ok := s.(BatchScorer); ok {
		f := bs.ScoreBatch(ref, refText)
		score = func(c Candidate) float64 { return f(c.Vec, c.Text) }
	}
	out := make([]Ranked, len(cands))
	for i, c := range cands {
		out[i] = Ranked{Index: i, Score: score(c)}
	}
	sortRanked(out)
	return out
}

func sortRanked(out []Ranked) {
	// Stable on ties by original index, exactly like the retired
	// sort.SliceStable, without the reflection-based swapper.
	slices.SortStableFunc(out, func(a, b Ranked) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		}
		return 0
	})
}

// DenseOnly wraps a scorer so it exposes only the dense Score path, hiding
// any VecScorer fast path from Rank. It exists for the differential
// baseline: benches and golden tests run the retired dense pipeline through
// it and pin the sparse path byte-identical.
func DenseOnly(s Scorer) Scorer { return denseOnly{s} }

type denseOnly struct{ s Scorer }

func (d denseOnly) Score(reference, candidate string) float64 { return d.s.Score(reference, candidate) }
func (d denseOnly) Name() string                              { return d.s.Name() }

// TopK returns the indices of the k highest-scoring candidates (all if
// k <= 0 or k exceeds the candidate count).
func TopK(s Scorer, reference string, candidates []string, k int) []Ranked {
	r := Rank(s, reference, candidates)
	if k > 0 && k < len(r) {
		r = r[:k]
	}
	return r
}

// FilterThreshold keeps candidates scoring at least tau, preserving rank
// order. This implements the paper's Q^τ_s selection with τ ∈ [0,1].
func FilterThreshold(ranked []Ranked, tau float64) []Ranked {
	out := ranked[:0:0]
	for _, r := range ranked {
		if r.Score >= tau {
			out = append(out, r)
		}
	}
	return out
}
