// Package rerank implements the cross-encoder relevance scorer used in
// phases 2b (question ranking) and 4a (document selection) of the RAG
// pipeline. The paper uses jina-reranker-v1-turbo-en for questions and
// ms-marco-MiniLM-L-6-v2 for documents; both reduce to "a sigmoid-scaled
// dot-product score" (§3.2). This package reproduces that contract with a
// deterministic lexical cross-encoder: hashed term-vector cosine, length
// priors and a calibrated sigmoid, returning scores in (0,1).
package rerank

import (
	"sort"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

// Scorer scores the relevance of a candidate text to a reference text.
type Scorer interface {
	// Score returns a relevance score in (0,1) of candidate w.r.t.
	// reference; higher is more relevant.
	Score(reference, candidate string) float64
	// Name identifies the scorer (model name in the paper's Table 4).
	Name() string
}

// CrossEncoder is the lexical stand-in for the paper's neural rerankers.
// Two calibration profiles mirror the two models the paper configures.
type CrossEncoder struct {
	name string
	// gain/bias calibrate the sigmoid so the score distribution matches the
	// paper's published question-similarity statistics.
	gain float64
	bias float64
	// noise adds a small deterministic perturbation keyed by the text pair,
	// emulating the idiosyncrasy of a learned relevance vector.
	noise float64
}

// NewQuestionRanker mirrors jina-reranker-v1-turbo-en: calibrated so that
// direct restatements score ≈0.75–0.95, partial overlaps ≈0.4–0.7 and
// loosely related texts <0.4, reproducing the similarity distribution of
// paper §4.1 (mean δ ≈ 0.63, tiers ≈ 45/34/21%).
func NewQuestionRanker() *CrossEncoder {
	return &CrossEncoder{name: "jina-reranker-v1-turbo-en", gain: 4.3, bias: -2.6, noise: 0.42}
}

// NewDocumentRanker mirrors ms-marco-MiniLM-L-6-v2 for passage selection.
func NewDocumentRanker() *CrossEncoder {
	return &CrossEncoder{name: "ms-marco-MiniLM-L-6-v2", gain: 5.0, bias: -1.2, noise: 0.06}
}

// Name implements Scorer.
func (c *CrossEncoder) Name() string { return c.name }

// Score implements Scorer: sigmoid(gain*cosine + bias + noise).
func (c *CrossEncoder) Score(reference, candidate string) float64 {
	cos := text.Similarity(reference, candidate)
	n := (det.Uniform("rerank", c.name, reference, candidate) - 0.5) * 2 * c.noise
	return text.Sigmoid(c.gain*cos + c.bias + n)
}

// Ranked pairs an index into the candidate slice with its score.
type Ranked struct {
	Index int
	Score float64
}

// Rank scores every candidate against the reference and returns them in
// descending score order (stable on ties by original index).
func Rank(s Scorer, reference string, candidates []string) []Ranked {
	out := make([]Ranked, len(candidates))
	for i, c := range candidates {
		out[i] = Ranked{Index: i, Score: s.Score(reference, c)}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// TopK returns the indices of the k highest-scoring candidates (all if
// k <= 0 or k exceeds the candidate count).
func TopK(s Scorer, reference string, candidates []string, k int) []Ranked {
	r := Rank(s, reference, candidates)
	if k > 0 && k < len(r) {
		r = r[:k]
	}
	return r
}

// FilterThreshold keeps candidates scoring at least tau, preserving rank
// order. This implements the paper's Q^τ_s selection with τ ∈ [0,1].
func FilterThreshold(ranked []Ranked, tau float64) []Ranked {
	out := ranked[:0:0]
	for _, r := range ranked {
		if r.Score >= tau {
			out = append(out, r)
		}
	}
	return out
}
