package rerank

import (
	"testing"
	"testing/quick"
)

func TestScoreRange(t *testing.T) {
	ce := NewQuestionRanker()
	f := func(a, b string) bool {
		s := ce.Score(a, b)
		return s > 0 && s < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreDeterministic(t *testing.T) {
	ce := NewDocumentRanker()
	a := ce.Score("the reference text", "a candidate passage")
	b := ce.Score("the reference text", "a candidate passage")
	if a != b {
		t.Fatalf("scores differ: %f vs %f", a, b)
	}
}

func TestScoreOrdering(t *testing.T) {
	ce := NewQuestionRanker()
	ref := "Marie Curie was born in Warsaw."
	restate := "Is it true that Marie Curie was born in Warsaw?"
	loose := "Tell me about Marie Curie"
	unrelated := "Annual rainfall statistics for coastal regions"
	sRestate := ce.Score(ref, restate)
	sLoose := ce.Score(ref, loose)
	sUnrelated := ce.Score(ref, unrelated)
	if !(sRestate > sLoose && sLoose > sUnrelated) {
		t.Errorf("ordering violated: restate=%.3f loose=%.3f unrelated=%.3f",
			sRestate, sLoose, sUnrelated)
	}
	if sRestate < 0.7 {
		t.Errorf("restatement score %.3f, want >= 0.7 (high tier)", sRestate)
	}
	if sUnrelated > 0.4 {
		t.Errorf("unrelated score %.3f, want < 0.4 (low tier)", sUnrelated)
	}
}

func TestRankDescending(t *testing.T) {
	ce := NewQuestionRanker()
	ref := "The company was founded by the engineer."
	cands := []string{
		"Completely different subject matter",
		"Who founded the company?",
		"The engineer founded the company.",
	}
	ranked := Rank(ce, ref, cands)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d, want 3", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("not descending at %d", i)
		}
	}
	if ranked[0].Index == 0 {
		t.Error("unrelated candidate ranked first")
	}
}

func TestTopK(t *testing.T) {
	ce := NewDocumentRanker()
	cands := []string{"a b c", "b c d", "c d e", "x y z"}
	top := TopK(ce, "a b c", cands, 2)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d, want 2", len(top))
	}
	all := TopK(ce, "a b c", cands, 0)
	if len(all) != 4 {
		t.Fatalf("TopK(0) returned %d, want all 4", len(all))
	}
	over := TopK(ce, "a b c", cands, 99)
	if len(over) != 4 {
		t.Fatalf("TopK(99) returned %d, want 4", len(over))
	}
}

func TestFilterThreshold(t *testing.T) {
	ranked := []Ranked{{0, 0.9}, {1, 0.6}, {2, 0.4}, {3, 0.1}}
	kept := FilterThreshold(ranked, 0.5)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].Index != 0 || kept[1].Index != 1 {
		t.Errorf("wrong candidates kept: %v", kept)
	}
	if n := len(FilterThreshold(ranked, 0)); n != 4 {
		t.Errorf("tau=0 kept %d, want 4", n)
	}
	if n := len(FilterThreshold(ranked, 1)); n != 0 {
		t.Errorf("tau=1 kept %d, want 0", n)
	}
}

func TestNames(t *testing.T) {
	if NewQuestionRanker().Name() != "jina-reranker-v1-turbo-en" {
		t.Error("question ranker name mismatch")
	}
	if NewDocumentRanker().Name() != "ms-marco-MiniLM-L-6-v2" {
		t.Error("document ranker name mismatch")
	}
}

func TestRankStableOnEmptyCandidates(t *testing.T) {
	if got := Rank(NewQuestionRanker(), "ref", nil); len(got) != 0 {
		t.Errorf("Rank(nil) = %v", got)
	}
}
