package rerank

import (
	"reflect"
	"testing"

	"factcheck/internal/text"
)

var scorePairs = []struct{ ref, cand string }{
	{"Marie Curie was married to Pierre Curie.", "Marie Curie and Pierre Curie: the record"},
	{"Marie Curie was married to Pierre Curie.", "Regional news roundup"},
	{"Who founded the company?", "The company was founded by its chairman in 1901."},
	{"", "non-empty candidate"},
	{"shared tokens only", "shared tokens only"},
}

// TestScoreVecMatchesScore pins the vector path bit-identical to the dense
// Score for both calibration profiles.
func TestScoreVecMatchesScore(t *testing.T) {
	for _, ce := range []*CrossEncoder{NewQuestionRanker(), NewDocumentRanker()} {
		for _, p := range scorePairs {
			dense := ce.Score(p.ref, p.cand)
			sparse := ce.ScoreVec(text.SparseEmbed(p.ref), p.ref, text.SparseEmbed(p.cand), p.cand)
			if dense != sparse {
				t.Errorf("%s: ScoreVec(%q, %q) = %v, Score = %v", ce.Name(), p.ref, p.cand, sparse, dense)
			}
		}
	}
}

// TestRankFastPathMatchesDense pins Rank's vector-aware fast path (one
// reference embedding) against the per-call dense path via DenseOnly.
func TestRankFastPathMatchesDense(t *testing.T) {
	ce := NewQuestionRanker()
	ref := "Marie Curie was married to Pierre Curie."
	cands := []string{
		"Who was Marie Curie married to?",
		"Was Marie Curie married to Pierre Curie?",
		"Which prize did Marie Curie win?",
		"Regional news roundup",
		"",
	}
	fast := Rank(ce, ref, cands)
	slow := Rank(DenseOnly(ce), ref, cands)
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("Rank fast path %v != dense path %v", fast, slow)
	}
}

// TestRankVecsMatchesRank pins the batch API over precomputed candidate
// vectors against Rank over the raw texts.
func TestRankVecsMatchesRank(t *testing.T) {
	ce := NewDocumentRanker()
	ref := "The subject was born in the capital."
	texts := []string{
		"The subject was born in the capital. Multiple records agree on this point.",
		"Contrary to some claims, it is not the case that the subject was born there.",
		"Archive digest",
	}
	cands := make([]Candidate, len(texts))
	for i, c := range texts {
		cands[i] = Candidate{Text: c, Vec: text.SparseEmbed(c)}
	}
	got := RankVecs(ce, text.SparseEmbed(ref), ref, cands)
	want := Rank(ce, ref, texts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RankVecs = %v, Rank = %v", got, want)
	}
}

// TestDenseOnlyHidesVecScorer guards the baseline wrapper: the wrapped
// scorer must not satisfy VecScorer, or benches would silently measure
// sparse against sparse.
func TestDenseOnlyHidesVecScorer(t *testing.T) {
	var s Scorer = DenseOnly(NewQuestionRanker())
	if _, ok := s.(VecScorer); ok {
		t.Fatal("DenseOnly exposes VecScorer")
	}
	if s.Name() != NewQuestionRanker().Name() {
		t.Errorf("DenseOnly changes Name: %q", s.Name())
	}
}
