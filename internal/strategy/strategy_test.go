package strategy

import (
	"context"
	"testing"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/rag"
	"factcheck/internal/search"
	"factcheck/internal/world"
)

type fixture struct {
	w  *world.World
	d  *dataset.Dataset
	p  *rag.Pipeline
	m  llm.Model
	fs []*dataset.Fact
}

func setup(t *testing.T) *fixture {
	t.Helper()
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.1)
	gen := corpus.NewGenerator(w)
	eng := search.NewEngine(gen, d)
	return &fixture{
		w: w, d: d,
		p:  rag.New(eng),
		m:  llm.MustNew(llm.Gemma2),
		fs: d.Facts,
	}
}

func TestClaimFor(t *testing.T) {
	fx := setup(t)
	f := fx.fs[0]
	c := ClaimFor(f)
	if c.Key != f.Key() || c.FactID != f.ID || c.Gold != f.Gold {
		t.Error("claim identity fields wrong")
	}
	if c.Sentence == "" || c.SubjectLabel != f.Subject.Label {
		t.Error("claim surface fields wrong")
	}
	if c.Dataset != "FactBench" {
		t.Errorf("claim dataset = %q", c.Dataset)
	}
}

func TestVerdictSemantics(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Invalid.String() != "invalid" {
		t.Error("verdict names wrong")
	}
	if !True.Bool() || False.Bool() || Invalid.Bool() {
		t.Error("verdict Bool() wrong")
	}
}

func TestDKAVerify(t *testing.T) {
	fx := setup(t)
	ctx := context.Background()
	for _, f := range fx.fs[:30] {
		out, err := DKA{}.Verify(ctx, fx.m, f)
		if err != nil {
			t.Fatal(err)
		}
		if out.Verdict == Invalid {
			t.Errorf("DKA produced invalid verdict on %s", f.ID)
		}
		if out.Method != llm.MethodDKA || out.Model != fx.m.Name() || out.FactID != f.ID {
			t.Error("outcome metadata wrong")
		}
		if out.Attempts != 1 {
			t.Errorf("DKA attempts = %d, want 1", out.Attempts)
		}
		if out.Correct != (out.Verdict.Bool() == f.Gold) {
			t.Error("Correct flag inconsistent")
		}
		if out.Latency <= 0 || out.PromptTokens <= 0 {
			t.Error("resource accounting missing")
		}
	}
}

func TestGIVMethodNaming(t *testing.T) {
	if (GIV{FewShot: false}).Method() != llm.MethodGIVZ {
		t.Error("zero-shot method name wrong")
	}
	if (GIV{FewShot: true}).Method() != llm.MethodGIVF {
		t.Error("few-shot method name wrong")
	}
}

func TestGIVVerifyRePrompting(t *testing.T) {
	fx := setup(t)
	// Llama has the lowest GIV-Z conformance -> some facts need retries.
	m := llm.MustNew(llm.Llama31)
	ctx := context.Background()
	multi, invalid := 0, 0
	for _, f := range fx.fs {
		out, err := GIV{FewShot: false}.Verify(ctx, m, f)
		if err != nil {
			t.Fatal(err)
		}
		if out.Attempts > 1 {
			multi++
		}
		if out.Attempts > 3 {
			t.Errorf("attempts = %d, want <= 3", out.Attempts)
		}
		if out.Verdict == Invalid {
			invalid++
			if out.Attempts != 3 {
				t.Errorf("invalid verdict after %d attempts, want 3", out.Attempts)
			}
		}
	}
	if multi == 0 {
		t.Error("no re-prompting occurred despite low conformance")
	}
	// Invalid responses should be rare but possible.
	if invalid > len(fx.fs)/4 {
		t.Errorf("%d/%d invalid, too many", invalid, len(fx.fs))
	}
}

func TestGIVFewShotCostsMore(t *testing.T) {
	fx := setup(t)
	ctx := context.Background()
	f := fx.fs[0]
	zs, err := GIV{FewShot: false}.Verify(ctx, fx.m, f)
	if err != nil {
		t.Fatal(err)
	}
	few, err := GIV{FewShot: true}.Verify(ctx, fx.m, f)
	if err != nil {
		t.Fatal(err)
	}
	if zs.Attempts == few.Attempts && few.PromptTokens <= zs.PromptTokens {
		t.Error("few-shot prompt not more expensive")
	}
}

func TestRAGVerify(t *testing.T) {
	fx := setup(t)
	ctx := context.Background()
	v := RAG{Pipeline: fx.p}
	out, err := v.Verify(ctx, fx.m, fx.fs[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.Method != llm.MethodRAG {
		t.Error("method wrong")
	}
	if out.EvidenceChunks == 0 {
		t.Error("no evidence chunks recorded")
	}
	// RAG latency includes retrieval: must exceed a DKA call by a margin.
	dka, _ := DKA{}.Verify(ctx, fx.m, fx.fs[0])
	if out.Latency < 3*dka.Latency {
		t.Errorf("RAG latency %.2fs not >> DKA %.2fs", out.Latency.Seconds(), dka.Latency.Seconds())
	}
}

func TestRAGVerifyNilPipeline(t *testing.T) {
	fx := setup(t)
	if _, err := (RAG{}).Verify(context.Background(), fx.m, fx.fs[0]); err == nil {
		t.Error("nil pipeline accepted")
	}
}

func TestRAGBeatsDKAOnFactBench(t *testing.T) {
	fx := setup(t)
	ctx := context.Background()
	ragV := RAG{Pipeline: fx.p}
	dkaCorrect, ragCorrect := 0, 0
	n := len(fx.fs)
	for _, f := range fx.fs {
		od, err := DKA{}.Verify(ctx, fx.m, f)
		if err != nil {
			t.Fatal(err)
		}
		or, err := ragV.Verify(ctx, fx.m, f)
		if err != nil {
			t.Fatal(err)
		}
		if od.Correct {
			dkaCorrect++
		}
		if or.Correct {
			ragCorrect++
		}
	}
	if ragCorrect <= dkaCorrect {
		t.Errorf("RAG correct %d/%d not above DKA %d/%d (paper finding 2)",
			ragCorrect, n, dkaCorrect, n)
	}
}

func TestForMethod(t *testing.T) {
	fx := setup(t)
	for _, m := range llm.AllMethods {
		v, err := ForMethod(m, fx.p)
		if err != nil {
			t.Fatalf("ForMethod(%s): %v", m, err)
		}
		if v.Method() != m {
			t.Errorf("ForMethod(%s).Method() = %s", m, v.Method())
		}
	}
	if _, err := ForMethod(llm.MethodRAG, nil); err == nil {
		t.Error("RAG without pipeline accepted")
	}
	if _, err := ForMethod("bogus", nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestOutcomeDeterminism(t *testing.T) {
	fx := setup(t)
	ctx := context.Background()
	f := fx.fs[3]
	a, _ := DKA{}.Verify(ctx, fx.m, f)
	b, _ := DKA{}.Verify(ctx, fx.m, f)
	if a.Verdict != b.Verdict || a.Latency != b.Latency || a.Explanation != b.Explanation {
		t.Error("outcomes not deterministic")
	}
}
