// Package strategy implements the benchmark's verification strategies
// (paper §3.1–3.2): Direct Knowledge Assessment (DKA), Guided Iterative
// Verification in zero- and few-shot form (GIV-Z / GIV-F) with the
// re-prompting protocol for non-conformant outputs, and Retrieval-Augmented
// Generation (RAG) on top of the rag pipeline.
package strategy

import (
	"context"
	"fmt"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/prompt"
	"factcheck/internal/rag"
	"factcheck/internal/verbalize"
)

// Verdict is a verification outcome label.
type Verdict int8

// Verdict values. Invalid marks responses that repeatedly failed the
// required output format (paper §3.1).
const (
	Invalid Verdict = iota
	True
	False
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "invalid"
	}
}

// Bool converts the verdict to the paper's binary vote v_i ∈ {0,1}; invalid
// responses vote 0 ("false"), the conservative reading of the formula in
// §3.3.
func (v Verdict) Bool() bool { return v == True }

// Outcome records one model's verification of one fact under one method.
type Outcome struct {
	FactID  string
	Model   string
	Method  llm.Method
	Verdict Verdict
	Gold    bool
	// Correct is true when the verdict matches the gold label (invalid
	// verdicts are never correct).
	Correct bool
	// Latency is the simulated end-to-end response time including
	// re-prompts and, for RAG, retrieval.
	Latency time.Duration
	// Token accounting across all attempts.
	PromptTokens     int
	CompletionTokens int
	// Attempts is the number of generation calls made (>1 on re-prompts).
	Attempts int
	// Explanation is the model's stated reason, consumed by error analysis.
	Explanation string
	// EvidenceChunks counts the context passages used (RAG only).
	EvidenceChunks int
	// Claim is the structured claim (kept for downstream analysis).
	Claim llm.Claim
}

// Verifier verifies facts with a model under a fixed method.
type Verifier interface {
	// Method names the strategy.
	Method() llm.Method
	// Verify produces an outcome for the fact using the model.
	Verify(ctx context.Context, m llm.Model, f *dataset.Fact) (Outcome, error)
}

// Prefetcher is implemented by verifiers with model-independent per-fact
// state worth warming ahead of model fan-out. The grid scheduler calls
// Prefetch once per (method, fact) before any model verifies the fact, so
// the expensive shared stage (RAG retrieval) runs exactly once instead of
// once per model racing through the singleflight cache.
type Prefetcher interface {
	// Prefetch warms per-fact state; it must be safe to call concurrently
	// and to skip (Verify must work without it).
	Prefetch(ctx context.Context, f *dataset.Fact) error
}

// ClaimFor builds the structured claim handed to simulated models.
func ClaimFor(f *dataset.Fact) llm.Claim {
	return llm.Claim{
		Key:          f.Key(),
		FactID:       f.ID,
		Dataset:      string(f.Dataset),
		Gold:         f.Gold,
		Popularity:   f.Popularity,
		Category:     string(f.Relation.Category),
		Topic:        f.Topic,
		Sentence:     verbalize.Sentence(f),
		SubjectLabel: f.Subject.Label,
		ObjectLabel:  f.Object.Label,
		Phrase:       f.Relation.Phrase,
	}
}

// DKA is the Direct Knowledge Assessment baseline: one direct prompt, no
// guidance.
type DKA struct{}

// Method implements Verifier.
func (DKA) Method() llm.Method { return llm.MethodDKA }

// Verify implements Verifier.
func (DKA) Verify(ctx context.Context, m llm.Model, f *dataset.Fact) (Outcome, error) {
	c := ClaimFor(f)
	system, user := prompt.DKA(c)
	resp, err := m.Generate(ctx, llm.Request{
		System: system, Prompt: user, Claim: c, Method: llm.MethodDKA,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("dka: %s on %s: %w", m.Name(), f.ID, err)
	}
	out := newOutcome(f, m, llm.MethodDKA, c)
	out.Attempts = 1
	accumulate(&out, resp)
	if v, reason, ok := prompt.ParseFree(resp.Text); ok {
		out.setVerdict(v, reason, f.Gold)
	}
	return out, nil
}

// GIV is Guided Iterative Verification: a structured prompt with an output
// schema, optional few-shot exemplars, and re-prompting on non-conformant
// responses. Responses that fail MaxAttempts times are marked invalid.
type GIV struct {
	// FewShot selects the GIV-F variant.
	FewShot bool
	// MaxAttempts bounds the re-prompt loop (default 3).
	MaxAttempts int
}

// Method implements Verifier.
func (g GIV) Method() llm.Method {
	if g.FewShot {
		return llm.MethodGIVF
	}
	return llm.MethodGIVZ
}

// Verify implements Verifier.
func (g GIV) Verify(ctx context.Context, m llm.Model, f *dataset.Fact) (Outcome, error) {
	maxAttempts := g.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	c := ClaimFor(f)
	method := g.Method()
	out := newOutcome(f, m, method, c)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		system, user := prompt.GIV(c, g.FewShot, attempt)
		resp, err := m.Generate(ctx, llm.Request{
			System: system, Prompt: user, Claim: c, Method: method,
			FewShot: g.FewShot, Attempt: attempt,
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("giv: %s on %s: %w", m.Name(), f.ID, err)
		}
		out.Attempts++
		accumulate(&out, resp)
		if v, reason, ok := prompt.ParseGIV(resp.Text); ok {
			out.setVerdict(v, reason, f.Gold)
			return out, nil
		}
	}
	return out, nil // verdict stays Invalid
}

// RAG verifies with retrieved external evidence via the pipeline.
type RAG struct {
	Pipeline *rag.Pipeline
}

// Method implements Verifier.
func (RAG) Method() llm.Method { return llm.MethodRAG }

// Prefetch implements Prefetcher by warming the pipeline's evidence cache
// for the fact — which also materialises the fact's search-index shard
// (pool + posting lists), so model fan-out hits a fully warm retrieval
// substrate.
func (r RAG) Prefetch(ctx context.Context, f *dataset.Fact) error {
	if r.Pipeline == nil {
		return fmt.Errorf("rag: verifier has no pipeline")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.Pipeline.Warm(f); err != nil {
		return fmt.Errorf("rag: prefetch %s: %w", f.ID, err)
	}
	return nil
}

// Verify implements Verifier.
func (r RAG) Verify(ctx context.Context, m llm.Model, f *dataset.Fact) (Outcome, error) {
	if r.Pipeline == nil {
		return Outcome{}, fmt.Errorf("rag: verifier has no pipeline")
	}
	ev, err := r.Pipeline.RetrieveCtx(ctx, f)
	if err != nil {
		return Outcome{}, fmt.Errorf("rag: retrieve %s: %w", f.ID, err)
	}
	c := ClaimFor(f)
	chunks := ev.ChunkTexts()
	system, user := prompt.RAG(c, chunks)
	resp, err := m.Generate(ctx, llm.Request{
		System: system, Prompt: user, Claim: c, Method: llm.MethodRAG,
		Evidence: chunks,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("rag: %s on %s: %w", m.Name(), f.ID, err)
	}
	out := newOutcome(f, m, llm.MethodRAG, c)
	out.Attempts = 1
	out.EvidenceChunks = len(chunks)
	accumulate(&out, resp)
	out.Latency += ev.Latency
	if v, reason, ok := prompt.ParseFree(resp.Text); ok {
		out.setVerdict(v, reason, f.Gold)
	}
	return out, nil
}

// ForMethod returns the verifier implementing the named method. RAG
// requires a pipeline; passing nil for other methods is fine.
func ForMethod(m llm.Method, p *rag.Pipeline) (Verifier, error) {
	switch m {
	case llm.MethodDKA:
		return DKA{}, nil
	case llm.MethodGIVZ:
		return GIV{FewShot: false}, nil
	case llm.MethodGIVF:
		return GIV{FewShot: true}, nil
	case llm.MethodRAG:
		if p == nil {
			return nil, fmt.Errorf("strategy: RAG verifier needs a pipeline")
		}
		return RAG{Pipeline: p}, nil
	default:
		return nil, fmt.Errorf("strategy: unknown method %q", m)
	}
}

func newOutcome(f *dataset.Fact, m llm.Model, method llm.Method, c llm.Claim) Outcome {
	return Outcome{
		FactID:  f.ID,
		Model:   m.Name(),
		Method:  method,
		Verdict: Invalid,
		Gold:    f.Gold,
		Claim:   c,
	}
}

func accumulate(o *Outcome, resp llm.Response) {
	o.Latency += resp.Usage.Latency
	o.PromptTokens += resp.Usage.PromptTokens
	o.CompletionTokens += resp.Usage.CompletionTokens
}

func (o *Outcome) setVerdict(v bool, reason string, gold bool) {
	if v {
		o.Verdict = True
	} else {
		o.Verdict = False
	}
	o.Correct = v == gold
	o.Explanation = reason
}
