package rules

import (
	"context"
	"strings"
	"testing"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

func fixture(t *testing.T) (*world.World, *dataset.Dataset, *Engine) {
	t.Helper()
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	return w, d, NewEngine(w)
}

func TestDomainRangeViolations(t *testing.T) {
	w, _, e := fixture(t)
	person := w.ByType(world.TypePerson)[0]
	city := w.ByType(world.TypeCity)[0]
	award := w.ByType(world.TypeAward)[0]
	birthPlace := world.RelationByName("birthPlace")

	// City as subject of birthPlace: domain violation.
	if r := e.Check(city, birthPlace, city); r.Verdict != Violated || r.Rule != "domain" {
		t.Errorf("domain violation not caught: %+v", r)
	}
	// Award as object of birthPlace: range violation.
	if r := e.Check(person, birthPlace, award); r.Verdict != Violated || r.Rule != "range" {
		t.Errorf("range violation not caught: %+v", r)
	}
}

func TestIrreflexivity(t *testing.T) {
	w, _, e := fixture(t)
	person := w.ByType(world.TypePerson)[0]
	married := world.RelationByName("isMarriedTo")
	if r := e.Check(person, married, person); r.Verdict != Violated || r.Rule != "irreflexive" {
		t.Errorf("reflexive marriage not caught: %+v", r)
	}
}

func TestAssertedFactsEntailed(t *testing.T) {
	w, _, e := fixture(t)
	f := w.Facts[0]
	if r := e.Check(f.S, f.Relation, f.O); r.Verdict != Entailed || r.Rule != "asserted" {
		t.Errorf("asserted fact not entailed: %+v", r)
	}
}

func TestSymmetryEntailment(t *testing.T) {
	w, _, e := fixture(t)
	// Find a marriage; symmetry entails the reverse even when only one
	// direction is consulted.
	for _, f := range w.Facts {
		if f.Relation.Name != "isMarriedTo" {
			continue
		}
		r := e.Check(f.O, f.Relation, f.S)
		if r.Verdict != Entailed {
			t.Errorf("symmetric marriage not entailed: %+v", r)
		}
		return
	}
	t.Skip("no marriages in small world")
}

func TestFunctionalConflict(t *testing.T) {
	w, _, e := fixture(t)
	// birthPlace is functional: asserting a different city conflicts.
	for _, f := range w.Facts {
		if f.Relation.Name != "birthPlace" {
			continue
		}
		for _, other := range w.ByType(world.TypeCity) {
			if other == f.O {
				continue
			}
			r := e.Check(f.S, f.Relation, other)
			if r.Verdict != Violated || r.Rule != "functional" {
				t.Errorf("functional conflict not caught: %+v", r)
			}
			return
		}
	}
	t.Fatal("no birthPlace facts")
}

func TestUnknownWhenNoEvidence(t *testing.T) {
	w, _, e := fixture(t)
	// A person with no playsFor fact: asserting one is neither entailed nor
	// violated (playsFor is functional but has no recorded value).
	team := w.ByType(world.TypeTeam)[0]
	playsFor := world.RelationByName("playsFor")
	for _, p := range w.ByType(world.TypePerson) {
		if len(w.TrueObjects(localName(p), "playsFor")) > 0 {
			continue
		}
		if r := e.Check(p, playsFor, team); r.Verdict != Unknown {
			t.Errorf("unsupported playsFor decided: %+v", r)
		}
		return
	}
	t.Skip("every person plays for a team")
}

func localName(e *world.Entity) string {
	s := string(e.IRI)
	return s[strings.LastIndexAny(s, ":/#")+1:]
}

func TestSnapshotEvaluateIsCircularlyPerfect(t *testing.T) {
	// With snapshot rules, gold == snapshot membership, so evaluation is
	// (trivially) near-perfect — the circularity the paper warns about.
	_, d, e := fixture(t)
	st := e.Evaluate(d)
	if st.Total != len(d.Facts) {
		t.Fatalf("evaluated %d facts", st.Total)
	}
	if st.Coverage() < 0.9 {
		t.Errorf("snapshot coverage = %.2f, want near 1", st.Coverage())
	}
	if st.Precision() < 0.95 {
		t.Errorf("snapshot precision = %.2f, want near 1", st.Precision())
	}
}

func TestStructuralModeRarelyDecides(t *testing.T) {
	// Benchmark negatives respect domain/range constraints, so structural
	// rules should decide (almost) nothing — the motivation for statistical
	// validation.
	_, d, e := fixture(t)
	decided := 0
	for _, f := range d.Facts {
		if r := e.checkWithMode(f, Structural); r.Verdict != Unknown {
			decided++
		}
	}
	if frac := float64(decided) / float64(len(d.Facts)); frac > 0.02 {
		t.Errorf("structural rules decided %.1f%% of constraint-respecting facts", 100*frac)
	}
}

func TestAugmentedVerifierFallsThrough(t *testing.T) {
	_, d, e := fixture(t)
	m := llm.MustNew(llm.Gemma2)
	inner := strategy.DKA{}
	aug := &Augmented{Engine: e, Inner: inner, Mode: Structural}
	if aug.Method() != llm.MethodDKA {
		t.Error("method not transparent")
	}
	ctx := context.Background()
	for _, f := range d.Facts[:20] {
		got, err := aug.Verify(ctx, m, f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := inner.Verify(ctx, m, f)
		if err != nil {
			t.Fatal(err)
		}
		if r := e.checkWithMode(f, Structural); r.Verdict == Unknown {
			if got.Verdict != want.Verdict {
				t.Fatalf("fall-through altered verdict on %s", f.ID)
			}
		}
	}
}

func TestAugmentedVerifierSnapshotShortCircuits(t *testing.T) {
	_, d, e := fixture(t)
	m := llm.MustNew(llm.Gemma2)
	aug := &Augmented{Engine: e, Inner: strategy.DKA{}, Mode: Snapshot}
	ctx := context.Background()
	shortCircuited := 0
	for _, f := range d.Facts[:50] {
		out, err := aug.Verify(ctx, m, f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(out.Explanation, "[rule:") {
			shortCircuited++
			if out.PromptTokens != 0 {
				t.Error("rule-decided outcome charged tokens")
			}
			if out.Latency > ruleLatency {
				t.Error("rule-decided outcome has model latency")
			}
			if !out.Correct {
				t.Errorf("snapshot rule wrong on %s: %s", f.ID, out.Explanation)
			}
		}
	}
	if shortCircuited == 0 {
		t.Error("snapshot mode never short-circuited")
	}
}

func TestAugmentedVerifierUnwired(t *testing.T) {
	_, d, _ := fixture(t)
	m := llm.MustNew(llm.Gemma2)
	if _, err := (&Augmented{}).Verify(context.Background(), m, d.Facts[0]); err == nil {
		t.Error("unwired verifier accepted")
	}
}

func TestVerdictString(t *testing.T) {
	if Entailed.String() != "entailed" || Violated.String() != "violated" || Unknown.String() != "unknown" {
		t.Error("verdict names wrong")
	}
}
