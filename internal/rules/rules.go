// Package rules implements the paper's closing future-work direction (§8):
// extending the benchmark to fact-verification systems "that also leverage
// logical rules in the KG, for example by exploiting the ontologies on
// which the KG is based (e.g., using transitivity, domain/range constraints,
// and other properties to assess the correctness and reliability of
// triples)".
//
// The engine evaluates a triple against the world ontology and an optional
// KG snapshot, producing a three-valued verdict with an explanation:
//
//   - Violated: the triple breaks a hard constraint (mis-typed domain or
//     range, conflict with a functional property, asymmetric marriage...)
//     and is certainly false under the snapshot semantics;
//   - Entailed: the triple follows from the snapshot plus ontology rules
//     (symmetry, transitivity) and is certainly true;
//   - Unknown: the rules are silent and a statistical verifier must decide.
//
// A RuleAugmented verifier wires the engine in front of any LLM strategy:
// rule-decided facts skip the model entirely (zero tokens, microsecond
// latency), the rest fall through. This is the hybrid design the paper
// anticipates.
package rules

import (
	"fmt"

	"factcheck/internal/dataset"
	"factcheck/internal/kg"
	"factcheck/internal/world"
)

// Verdict is the three-valued outcome of rule evaluation.
type Verdict int8

// Rule verdicts.
const (
	Unknown Verdict = iota
	Entailed
	Violated
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Entailed:
		return "entailed"
	case Violated:
		return "violated"
	default:
		return "unknown"
	}
}

// Result is a rule evaluation outcome.
type Result struct {
	Verdict Verdict
	// Rule names the deciding rule ("" when Unknown).
	Rule string
	// Explanation is a human-readable justification.
	Explanation string
}

// Engine evaluates ontology rules against a world snapshot.
type Engine struct {
	w *world.World
	// Symmetric relations: r(a,b) -> r(b,a).
	symmetric map[string]bool
	// inverseOf maps relation -> its inverse (capital <-> locatedIn is NOT
	// an inverse pair; we declare only true inverses of the vocabulary).
	inverseOf map[string]string
}

// NewEngine builds a rule engine over the world's ontology.
func NewEngine(w *world.World) *Engine {
	return &Engine{
		w: w,
		symmetric: map[string]bool{
			"isMarriedTo": true,
		},
		inverseOf: map[string]string{},
	}
}

// Check evaluates the asserted statement (subject, relation, object), given
// as world entities and a base relation.
func (e *Engine) Check(s *world.Entity, rel *world.Relation, o *world.Entity) Result {
	// Rule 1: domain constraint.
	if s.Type != rel.Domain {
		return Result{
			Verdict: Violated,
			Rule:    "domain",
			Explanation: fmt.Sprintf("subject %s has type %s but %s requires domain %s",
				s.Label, s.Type, rel.Name, rel.Domain),
		}
	}
	// Rule 2: range constraint.
	if o.Type != rel.Range {
		return Result{
			Verdict: Violated,
			Rule:    "range",
			Explanation: fmt.Sprintf("object %s has type %s but %s requires range %s",
				o.Label, o.Type, rel.Name, rel.Range),
		}
	}
	// Rule 3: irreflexivity — no relation of the vocabulary is reflexive.
	if s == o {
		return Result{
			Verdict:     Violated,
			Rule:        "irreflexive",
			Explanation: fmt.Sprintf("%s cannot be %s itself", s.Label, rel.Phrase),
		}
	}
	sLocal := kg.LocalName(s.IRI)
	oLocal := kg.LocalName(o.IRI)
	// Rule 4: direct assertion in the snapshot.
	if e.w.IsTrueFact(sLocal, rel.Name, oLocal) {
		return Result{
			Verdict:     Entailed,
			Rule:        "asserted",
			Explanation: "the statement is asserted in the KG snapshot",
		}
	}
	// Rule 5: symmetry (isMarriedTo(a,b) |= isMarriedTo(b,a)).
	if e.symmetric[rel.Name] && e.w.IsTrueFact(oLocal, rel.Name, sLocal) {
		return Result{
			Verdict:     Entailed,
			Rule:        "symmetry",
			Explanation: fmt.Sprintf("%s(%s, %s) is asserted and %s is symmetric", rel.Name, o.Label, s.Label, rel.Name),
		}
	}
	// Rule 6: functional-property conflict — if the relation is functional
	// and the snapshot records a different value, the statement contradicts
	// it under local completeness.
	if rel.Functional {
		if objs := e.w.TrueObjects(sLocal, rel.Name); len(objs) > 0 && !objs[oLocal] {
			return Result{
				Verdict: Violated,
				Rule:    "functional",
				Explanation: fmt.Sprintf("%s is functional and the KG records a different value for %s",
					rel.Name, s.Label),
			}
		}
	}
	return Result{Verdict: Unknown}
}

// CheckFact evaluates a benchmark fact.
func (e *Engine) CheckFact(f *dataset.Fact) Result {
	return e.Check(f.Subject, f.Relation, f.Object)
}

// Stats summarises rule coverage over a dataset: how many facts the rules
// decide, and how accurately.
type Stats struct {
	Total    int
	Entailed int
	Violated int
	Unknown  int
	// Correct counts rule-decided facts whose verdict matches gold.
	Correct int
}

// Coverage returns the fraction of facts decided by rules.
func (s Stats) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Entailed+s.Violated) / float64(s.Total)
}

// Precision returns correctness over decided facts.
func (s Stats) Precision() float64 {
	d := s.Entailed + s.Violated
	if d == 0 {
		return 0
	}
	return float64(s.Correct) / float64(d)
}

// Evaluate runs the engine over a dataset.
func (e *Engine) Evaluate(d *dataset.Dataset) Stats {
	var st Stats
	for _, f := range d.Facts {
		st.Total++
		switch r := e.CheckFact(f); r.Verdict {
		case Entailed:
			st.Entailed++
			if f.Gold {
				st.Correct++
			}
		case Violated:
			st.Violated++
			if !f.Gold {
				st.Correct++
			}
		default:
			st.Unknown++
		}
	}
	return st
}
