package rules

import (
	"context"
	"fmt"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// Mode selects which rule families the engine applies.
type Mode int

// Rule modes.
const (
	// Structural applies only ontology-level rules (domain, range,
	// irreflexivity). These never consult the KG's fact content, so they
	// are sound even when the KG under validation is itself suspect — the
	// setting of this benchmark. Note that FactBench-style negative
	// sampling deliberately respects domain/range constraints, so
	// structural coverage on the benchmark is near zero: exactly why
	// rule-only validation is insufficient (paper §1).
	Structural Mode = iota
	// Snapshot additionally applies fact-dependent rules (assertion,
	// symmetry, functional conflicts). Sound only when the KG content is
	// trusted — the KG-completion validation setting (KGValidator), not
	// KG accuracy estimation; on this benchmark it is circular by
	// construction and decides everything.
	Snapshot
)

// checkWithMode evaluates under the mode's rule subset.
func (e *Engine) checkWithMode(f *dataset.Fact, mode Mode) Result {
	r := e.CheckFact(f)
	if mode == Snapshot {
		return r
	}
	switch r.Rule {
	case "domain", "range", "irreflexive":
		return r
	default:
		return Result{Verdict: Unknown}
	}
}

// Augmented is a verifier that consults ontology rules before falling back
// to an inner LLM strategy: rule-decided facts cost no tokens and
// microseconds of latency; the rest behave exactly like the inner verifier.
// It implements strategy.Verifier.
type Augmented struct {
	Engine *Engine
	Inner  strategy.Verifier
	Mode   Mode
}

// ruleLatency is the simulated cost of a rule evaluation: in-memory index
// lookups, effectively free next to an LLM call.
const ruleLatency = 200 * time.Microsecond

// Method implements strategy.Verifier; the method reflects the inner
// strategy (rule augmentation is transparent to reporting).
func (a *Augmented) Method() llm.Method { return a.Inner.Method() }

// Verify implements strategy.Verifier.
func (a *Augmented) Verify(ctx context.Context, m llm.Model, f *dataset.Fact) (strategy.Outcome, error) {
	if a.Engine == nil || a.Inner == nil {
		return strategy.Outcome{}, fmt.Errorf("rules: augmented verifier not fully wired")
	}
	r := a.Engine.checkWithMode(f, a.Mode)
	if r.Verdict == Unknown {
		return a.Inner.Verify(ctx, m, f)
	}
	out := strategy.Outcome{
		FactID:      f.ID,
		Model:       m.Name(),
		Method:      a.Inner.Method(),
		Gold:        f.Gold,
		Latency:     ruleLatency,
		Attempts:    0,
		Explanation: "[rule:" + r.Rule + "] " + r.Explanation,
		Claim:       strategy.ClaimFor(f),
	}
	if r.Verdict == Entailed {
		out.Verdict = strategy.True
	} else {
		out.Verdict = strategy.False
	}
	out.Correct = out.Verdict.Bool() == f.Gold
	return out, nil
}
