package verbalize

import (
	"strings"
	"testing"

	"factcheck/internal/dataset"
	"factcheck/internal/kg"
	"factcheck/internal/world"
)

func TestCleanLabel(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Alexander_III_of_Russia", "Alexander III of Russia"},
		{"isMarriedTo", "is Married To"},
		{"birthPlace", "birth Place"},
		{"Paris", "Paris"},
		{"two  spaces", "two spaces"},
	}
	for _, tc := range tests {
		if got := CleanLabel(tc.in); got != tc.want {
			t.Errorf("CleanLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSentenceUsesRelationPhrase(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.1)
	for _, f := range d.Facts[:20] {
		s := Sentence(f)
		if !strings.Contains(s, f.Subject.Label) {
			t.Errorf("sentence %q missing subject %q", s, f.Subject.Label)
		}
		if !strings.Contains(s, f.Object.Label) {
			t.Errorf("sentence %q missing object %q", s, f.Object.Label)
		}
		if !strings.Contains(s, f.Relation.Phrase) {
			t.Errorf("sentence %q missing phrase %q", s, f.Relation.Phrase)
		}
		if !strings.HasSuffix(s, ".") {
			t.Errorf("sentence %q lacks final period", s)
		}
	}
}

func TestSentenceFromTriple(t *testing.T) {
	tr := kg.NewTriple(
		kg.IRI(kg.NSDBpediaResource+"Alexander_III_of_Russia"),
		kg.IRI(kg.NSDBpediaOntology+"birthPlace"),
		kg.IRI(kg.NSDBpediaResource+"Saint_Petersburg"),
	)
	s := SentenceFromTriple(tr)
	if !strings.Contains(s, "Alexander III of Russia") {
		t.Errorf("sentence %q does not clean the subject", s)
	}
	if !strings.Contains(s, "was born in") {
		t.Errorf("sentence %q does not use the base relation phrase", s)
	}
	if !strings.Contains(s, "Saint Petersburg") {
		t.Errorf("sentence %q does not clean the object", s)
	}
}

func TestSentenceFromTripleLiteralObject(t *testing.T) {
	tr := kg.Triple{
		S: kg.IRI(kg.NSDBpediaResource + "Thing"),
		P: kg.IRI(kg.NSDBpediaProperty + "unknownProperty"),
		O: kg.NewLiteral("some value"),
	}
	s := SentenceFromTriple(tr)
	if !strings.Contains(s, "some value") {
		t.Errorf("sentence %q missing literal object", s)
	}
}

func TestBaseRelationResolvesVariants(t *testing.T) {
	tests := []struct{ pred, want string }{
		{"birthPlace", "birthPlace"},
		{"birth_place", "birthPlace"},
		{"hasBirthPlace", "birthPlace"},
		{"birthPlaceName", "birthPlace"},
		{"isMarriedTo", "isMarriedTo"},
	}
	for _, tc := range tests {
		r := BaseRelation(tc.pred)
		if r == nil || r.Name != tc.want {
			got := "<nil>"
			if r != nil {
				got = r.Name
			}
			t.Errorf("BaseRelation(%q) = %s, want %s", tc.pred, got, tc.want)
		}
	}
}

func TestBaseRelationForAllDBpediaVariants(t *testing.T) {
	// Every predicate variant the DBpedia builder can emit must resolve to
	// some base relation so RAG verbalisation never degrades to raw labels.
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.DBpedia, 0.1)
	for _, f := range d.Facts {
		if BaseRelation(f.PredicateName) == nil {
			t.Errorf("predicate variant %q resolves to no base relation", f.PredicateName)
		}
	}
}
