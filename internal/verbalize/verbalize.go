// Package verbalize implements phase 1 of the RAG pipeline: transforming a
// structured KG triple into a human-readable natural-language sentence
// (paper §3.2, "Triple Transformation"). The paper performs this with an
// LLM; here a deterministic template engine plays that role, handling the
// same source-format problems the paper enumerates: KG-specific namespaces,
// underscore/camelCase notation, and predicates lacking grammatical context.
package verbalize

import (
	"strings"

	"factcheck/internal/dataset"
	"factcheck/internal/kg"
	"factcheck/internal/text"
	"factcheck/internal/world"
)

// CleanLabel converts a KG-encoded local name into readable text:
// underscores become spaces and camelCase is split ("isMarriedTo" ->
// "is married to", "Alexander_III_of_Russia" -> "alexander iii of russia"
// with original casing preserved for proper nouns).
func CleanLabel(local string) string {
	local = strings.ReplaceAll(local, "_", " ")
	// Split camelCase runs while preserving existing spaces.
	var b strings.Builder
	prevLower := false
	for _, r := range local {
		if r >= 'A' && r <= 'Z' && prevLower {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
		prevLower = r >= 'a' && r <= 'z'
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// Sentence renders the fact as a natural-language statement using the base
// relation's verbalisation phrase and the entities' clean labels. This is
// the transformation function s = f_LLM(t) of the paper.
func Sentence(f *dataset.Fact) string {
	s := f.Subject.Label
	o := f.Object.Label
	var phrase string
	if f.Relation != nil {
		phrase = f.Relation.Phrase
	} else {
		phrase = CleanLabel(f.PredicateName)
	}
	return s + " " + phrase + " " + o + "."
}

// SentenceFromTriple verbalises a raw KG triple without world metadata,
// used when only the dataset-native encoding is available (e.g. facts read
// back from N-Triples files). It resolves the base relation by stripping
// variant decorations from the predicate local name.
func SentenceFromTriple(t kg.Triple) string {
	s := CleanLabel(kg.LocalName(t.S))
	var o string
	if t.O.IsIRI() {
		o = CleanLabel(kg.LocalName(t.O.IRI))
	} else {
		o = t.O.Value
	}
	pred := kg.LocalName(t.P)
	if r := BaseRelation(pred); r != nil {
		return s + " " + r.Phrase + " " + o + "."
	}
	return s + " " + strings.ToLower(CleanLabel(pred)) + " " + o + "."
}

// BaseRelation recovers the world relation behind a (possibly variant)
// predicate surface form, or nil when none matches. Matching is lexical
// along two routes: token overlap (handles "hasBirthPlace", "birth_place")
// and concatenated-lowercase containment (handles fully lowercased forms
// like "birthplace"). The highest-scoring relation wins.
func BaseRelation(predicate string) *world.Relation {
	if r := world.RelationByName(predicate); r != nil {
		return r
	}
	ptoks := tokenSet(predicate)
	pnorm := concatTokens(predicate)
	var best *world.Relation
	bestScore := 0
	for _, r := range world.Relations {
		score := 0
		for _, t := range text.Tokenize(r.Name) {
			if ptoks[t] {
				score += len(t)
			}
		}
		if bnorm := concatTokens(r.Name); bnorm != "" && strings.Contains(pnorm, bnorm) {
			if len(bnorm) > score {
				score = len(bnorm)
			}
		}
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

func tokenSet(s string) map[string]bool {
	m := map[string]bool{}
	for _, t := range text.Tokenize(s) {
		m[t] = true
	}
	return m
}

func concatTokens(s string) string {
	return strings.Join(text.Tokenize(s), "")
}
