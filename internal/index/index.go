// Package index is the inverted-index retrieval substrate behind the mock
// SERP engine. Each fact's document pool gets one immutable Index: hashed
// terms map to posting lists of (doc, weight) pairs whose weights are the
// sub-linearly damped, L2-normalised term weights text.Embed produces, so a
// query's cosine score is recovered by term-at-a-time accumulation over the
// postings of the query's non-zero dimensions. Top-k selection runs over a
// bounded min-heap, replacing the full O(pool · log pool) sort with
// O(pool · log k).
//
// Determinism contract: for any query q and document d, the accumulated
// score equals text.Cosine(text.Embed(q), text.Embed(title+" "+body)) bit
// for bit. Accumulation visits query dimensions in ascending order — the
// same order the dense cosine loop adds products — and skipped dimensions
// contribute exactly +0.0, which is an identity under IEEE-754 addition for
// the non-negative partial sums involved. The selected top k under the
// total order (score desc, doc ID asc) is therefore byte-identical to
// sorting the full pool and truncating.
package index

import (
	"slices"
	"strings"

	"factcheck/internal/text"
)

// Posting is one (document, weight) pair in a term's posting list. Doc
// indexes the pool's document table; Weight is the document's normalised
// term weight, (1+log tf)/‖d‖, exactly as text.Embed computes it.
type Posting struct {
	Doc    int32
	Weight float32
}

// Index is an immutable inverted index over one document pool.
type Index struct {
	// postings maps a hashed term dimension to its posting list, document
	// ascending. Dimensions absent from every document are absent here.
	postings map[int][]Posting
	// ids is the pool-ordered document ID table.
	ids []string
	// nPostings is the total posting count, for stats.
	nPostings int
}

// Builder accumulates documents into an Index. Documents must be added in
// pool order; the builder is not safe for concurrent use.
type Builder struct {
	postings map[int][]Posting
	ids      []string
	n        int
}

// NewBuilder returns a builder sized for about capHint documents.
func NewBuilder(capHint int) *Builder {
	return &Builder{
		postings: make(map[int][]Posting),
		ids:      make([]string, 0, capHint),
	}
}

// Add indexes one document from its term stream (content tokens of
// title + body, as corpus.Materialized carries). The document's weights are
// derived via text.SparseEmbedTokens, bit-identical to the dense vector the
// linear-scan engine embedded.
func (b *Builder) Add(docID string, terms []string) {
	b.AddVec(docID, text.SparseEmbedTokens(terms))
}

// AddVec indexes one document from its precomputed sparse embedding (the
// vector corpus.Materialized carries), skipping the embed pass entirely.
// Sparse dims are ascending and posting lists grow in doc order, so the
// index is identical to the one Add builds.
func (b *Builder) AddVec(docID string, v text.SparseVector) {
	doc := int32(len(b.ids))
	b.ids = append(b.ids, docID)
	for i, dim := range v.Dims {
		b.postings[int(dim)] = append(b.postings[int(dim)], Posting{Doc: doc, Weight: v.Weights[i]})
		b.n++
	}
}

// Build finalises the index. The builder must not be reused afterwards.
func (b *Builder) Build() *Index {
	ix := &Index{postings: b.postings, ids: b.ids, nPostings: b.n}
	b.postings = nil
	b.ids = nil
	return ix
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return len(ix.ids) }

// Postings returns the total number of postings (non-zero term weights).
func (ix *Index) Postings() int { return ix.nPostings }

// ID returns the doc ID at pool position i.
func (ix *Index) ID(i int) string { return ix.ids[i] }

// Hit is one scored document of a top-k selection.
type Hit struct {
	// Doc is the document's pool position (index into the ID table).
	Doc int
	// ID is the document ID.
	ID string
	// Score is the final score: accumulated cosine plus the perturbation.
	Score float64
}

// TopK scores every pool document against the query vector and returns the
// k best under (score desc, doc ID asc). perturb, when non-nil, adds an
// extra per-document score component (the engine's deterministic SERP
// jitter) after the cosine is clamped to [0,1] — every document receives
// it, including those sharing no term with the query.
func (ix *Index) TopK(q text.Vector, k int, perturb func(docID string) float64) []Hit {
	n := len(ix.ids)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}
	// Term-at-a-time accumulation, query dimensions ascending: each
	// document's accumulator receives exactly the non-zero products of the
	// dense cosine loop, in the same order.
	acc := make([]float64, n)
	for dim := 0; dim < text.VectorDim; dim++ {
		qw := q[dim]
		if qw == 0 {
			continue
		}
		for _, p := range ix.postings[dim] {
			acc[p.Doc] += float64(qw) * float64(p.Weight)
		}
	}
	return ix.selectTopK(acc, k, perturb)
}

// TopKSparse is TopK over a sparse query vector: accumulation skips the
// dense 1024-dimension sweep and visits only the query's non-zero
// dimensions — already ascending in a SparseVector — so the accumulated
// scores, and therefore the selected top k, are bit-identical to TopK over
// the dense equivalent.
func (ix *Index) TopKSparse(q text.SparseVector, k int, perturb func(docID string) float64) []Hit {
	n := len(ix.ids)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}
	acc := make([]float64, n)
	for i, dim := range q.Dims {
		qw := q.Weights[i]
		for _, p := range ix.postings[int(dim)] {
			acc[p.Doc] += float64(qw) * float64(p.Weight)
		}
	}
	return ix.selectTopK(acc, k, perturb)
}

// selectTopK turns the accumulated cosines into the k best hits under
// (score desc, doc ID asc), applying the clamp and the perturbation.
func (ix *Index) selectTopK(acc []float64, k int, perturb func(docID string) float64) []Hit {
	n := len(ix.ids)
	// Bounded min-heap of the k best seen so far; the root is the current
	// worst, ordered by (score asc, doc ID desc) so "worse than root" means
	// "not in the top k".
	h := make([]Hit, 0, k)
	worse := func(a, b Hit) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.ID > b.ID
	}
	for i := 0; i < n; i++ {
		s := acc[i]
		// Mirror text.Cosine's clamp before the perturbation is applied.
		if s > 1 {
			s = 1
		}
		id := ix.ids[i]
		if perturb != nil {
			s += perturb(id)
		}
		hit := Hit{Doc: i, ID: id, Score: s}
		if len(h) < k {
			h = append(h, hit)
			siftUp(h, len(h)-1, worse)
			continue
		}
		if worse(hit, h[0]) {
			continue
		}
		h[0] = hit
		siftDown(h, 0, worse)
	}
	// (score desc, ID asc) is a total order — IDs are unique — so the
	// non-reflective generic sort yields the same permutation the retired
	// sort.Slice did.
	slices.SortFunc(h, func(a, b Hit) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		}
		return strings.Compare(a.ID, b.ID)
	})
	return h
}

func siftUp(h []Hit, i int, worse func(a, b Hit) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Hit, i int, worse func(a, b Hit) bool) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && worse(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && worse(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
