// Package index is the inverted-index retrieval substrate behind the mock
// SERP engine. Each fact's document pool gets one immutable Index: hashed
// terms map to posting lists of (doc, weight) pairs whose weights are the
// sub-linearly damped, L2-normalised term weights text.Embed produces, so a
// query's cosine score is recovered by term-at-a-time accumulation over the
// postings of the query's non-zero dimensions. Top-k selection runs over a
// bounded min-heap, replacing the full O(pool · log pool) sort with
// O(pool · log k).
//
// Determinism contract: for any query q and document d, the accumulated
// score equals text.Cosine(text.Embed(q), text.Embed(title+" "+body)) bit
// for bit. Accumulation visits query dimensions in ascending order — the
// same order the dense cosine loop adds products — and skipped dimensions
// contribute exactly +0.0, which is an identity under IEEE-754 addition for
// the non-negative partial sums involved. The selected top k under the
// total order (score desc, doc ID asc) is therefore byte-identical to
// sorting the full pool and truncating.
package index

import (
	"sort"

	"factcheck/internal/text"
)

// Posting is one (document, weight) pair in a term's posting list. Doc
// indexes the pool's document table; Weight is the document's normalised
// term weight, (1+log tf)/‖d‖, exactly as text.Embed computes it.
type Posting struct {
	Doc    int32
	Weight float32
}

// Index is an immutable inverted index over one document pool.
type Index struct {
	// postings maps a hashed term dimension to its posting list, document
	// ascending. Dimensions absent from every document are absent here.
	postings map[int][]Posting
	// ids is the pool-ordered document ID table.
	ids []string
	// nPostings is the total posting count, for stats.
	nPostings int
}

// Builder accumulates documents into an Index. Documents must be added in
// pool order; the builder is not safe for concurrent use.
type Builder struct {
	postings map[int][]Posting
	ids      []string
	n        int
}

// NewBuilder returns a builder sized for about capHint documents.
func NewBuilder(capHint int) *Builder {
	return &Builder{
		postings: make(map[int][]Posting),
		ids:      make([]string, 0, capHint),
	}
}

// Add indexes one document from its term stream (content tokens of
// title + body, as corpus.Materialized carries). The document's weights are
// derived via text.EmbedTokens, so they are bit-identical to the dense
// vector the linear-scan engine embedded.
func (b *Builder) Add(docID string, terms []string) {
	doc := int32(len(b.ids))
	b.ids = append(b.ids, docID)
	v := text.EmbedTokens(terms)
	for dim := 0; dim < text.VectorDim; dim++ {
		if w := v[dim]; w != 0 {
			b.postings[dim] = append(b.postings[dim], Posting{Doc: doc, Weight: w})
			b.n++
		}
	}
}

// Build finalises the index. The builder must not be reused afterwards.
func (b *Builder) Build() *Index {
	ix := &Index{postings: b.postings, ids: b.ids, nPostings: b.n}
	b.postings = nil
	b.ids = nil
	return ix
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return len(ix.ids) }

// Postings returns the total number of postings (non-zero term weights).
func (ix *Index) Postings() int { return ix.nPostings }

// ID returns the doc ID at pool position i.
func (ix *Index) ID(i int) string { return ix.ids[i] }

// Hit is one scored document of a top-k selection.
type Hit struct {
	// Doc is the document's pool position (index into the ID table).
	Doc int
	// ID is the document ID.
	ID string
	// Score is the final score: accumulated cosine plus the perturbation.
	Score float64
}

// TopK scores every pool document against the query vector and returns the
// k best under (score desc, doc ID asc). perturb, when non-nil, adds an
// extra per-document score component (the engine's deterministic SERP
// jitter) after the cosine is clamped to [0,1] — every document receives
// it, including those sharing no term with the query.
func (ix *Index) TopK(q text.Vector, k int, perturb func(docID string) float64) []Hit {
	n := len(ix.ids)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}

	// Term-at-a-time accumulation, query dimensions ascending: each
	// document's accumulator receives exactly the non-zero products of the
	// dense cosine loop, in the same order.
	acc := make([]float64, n)
	for dim := 0; dim < text.VectorDim; dim++ {
		qw := q[dim]
		if qw == 0 {
			continue
		}
		for _, p := range ix.postings[dim] {
			acc[p.Doc] += float64(qw) * float64(p.Weight)
		}
	}

	// Bounded min-heap of the k best seen so far; the root is the current
	// worst, ordered by (score asc, doc ID desc) so "worse than root" means
	// "not in the top k".
	h := make([]Hit, 0, k)
	worse := func(a, b Hit) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.ID > b.ID
	}
	for i := 0; i < n; i++ {
		s := acc[i]
		// Mirror text.Cosine's clamp before the perturbation is applied.
		if s > 1 {
			s = 1
		}
		id := ix.ids[i]
		if perturb != nil {
			s += perturb(id)
		}
		hit := Hit{Doc: i, ID: id, Score: s}
		if len(h) < k {
			h = append(h, hit)
			siftUp(h, len(h)-1, worse)
			continue
		}
		if worse(hit, h[0]) {
			continue
		}
		h[0] = hit
		siftDown(h, 0, worse)
	}
	sort.Slice(h, func(i, j int) bool {
		if h[i].Score != h[j].Score {
			return h[i].Score > h[j].Score
		}
		return h[i].ID < h[j].ID
	})
	return h
}

func siftUp(h []Hit, i int, worse func(a, b Hit) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Hit, i int, worse func(a, b Hit) bool) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && worse(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && worse(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
