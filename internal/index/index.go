// Package index is the inverted-index retrieval substrate behind the mock
// SERP engine. Each fact's document pool gets one immutable Index: hashed
// terms map to posting lists of (doc, weight) pairs whose weights are the
// sub-linearly damped, L2-normalised term weights text.Embed produces, so a
// query's cosine score is recovered by term-at-a-time accumulation over the
// postings of the query's non-zero dimensions. Top-k selection runs over a
// bounded min-heap, replacing the full O(pool · log pool) sort with
// O(pool · log k).
//
// Beyond the exhaustive paths (TopK over a dense query, TopKSparse over a
// sparse one), the index carries an impact-ordered block layout — each
// dimension's posting list cut into fixed-size blocks with per-block and
// per-dimension max weights, blocks visited in descending-max order — that
// powers TopKPruned, a max-score/WAND-style early-termination top-k which
// skips whole blocks provably unable to reach the running heap floor (see
// pruned.go for the provable-skip invariant).
//
// Determinism contract: for any query q and document d, the accumulated
// score equals text.Cosine(text.Embed(q), text.Embed(title+" "+body)) bit
// for bit. Accumulation visits query dimensions in ascending order — the
// same order the dense cosine loop adds products — and skipped dimensions
// contribute exactly +0.0, which is an identity under IEEE-754 addition for
// the non-negative partial sums involved. The selected top k under the
// total order (score desc, doc ID asc) is therefore byte-identical to
// sorting the full pool and truncating — for all three paths.
package index

import (
	"math"
	"slices"

	"factcheck/internal/text"
)

// Posting is one (document, weight) pair in a term's posting list. Doc
// indexes the pool's document table; Weight is the document's normalised
// term weight, (1+log tf)/‖d‖, exactly as text.Embed computes it.
type Posting struct {
	Doc    int32
	Weight float32
}

// DefaultBlockSize is the posting-block length the builder uses unless
// overridden: small enough that one cold block skip saves real work on the
// paper's ~155-doc pools, large enough that block metadata stays a few
// percent of posting memory at 10×/100× corpus scale.
const DefaultBlockSize = 64

// block is one fixed-size slice of a dimension's posting list. Postings
// within a block stay document-ascending; the per-dimension block *order*
// is descending by Max, so pruned traversal sees the highest upper bounds
// first and can stop at the first block that cannot beat the heap floor.
type block struct {
	// Off and N delimit the block's postings within the dimension's list.
	Off, N int32
	// Max is the largest weight in the block: Weight <= Max for every
	// posting of the block, so qw·Max bounds the block's contribution.
	Max float32
}

// dimList is one dimension's postings plus its pruning metadata.
type dimList struct {
	// postings is the full list, document ascending (the exhaustive paths
	// scan it directly).
	postings []Posting
	// blocks is the impact-ordered block layout: sorted by (Max desc,
	// Off asc), covering postings exactly.
	blocks []block
	// max is the dimension's largest weight (the first block's Max).
	max float32
}

// Index is an immutable inverted index over one document pool.
type Index struct {
	// dims maps a hashed term dimension to its posting list and block
	// metadata. Dimensions absent from every document are absent here.
	dims map[int32]*dimList
	// ids is the pool-ordered document ID table.
	ids []string
	// docOff/docDims/docWts are the forward store: document d's sparse
	// vector is docDims[docOff[d]:docOff[d+1]] (ascending dimensions) with
	// matching weights. TopKPruned scores a surviving candidate by merge-
	// joining the query against this row — the same ascending-dimension
	// product order as the dense loop, hence bit-identical scores.
	docOff  []int32
	docDims []int32
	docWts  []float32
	// nPostings is the total posting count, for stats.
	nPostings int
}

// Builder accumulates documents into an Index. Documents must be added in
// pool order; the builder is not safe for concurrent use.
type Builder struct {
	dims      map[int32]*dimList
	ids       []string
	docOff    []int32
	docDims   []int32
	docWts    []float32
	n         int
	blockSize int
}

// NewBuilder returns a builder sized for about capHint documents.
func NewBuilder(capHint int) *Builder {
	return &Builder{
		dims:      make(map[int32]*dimList),
		ids:       make([]string, 0, capHint),
		docOff:    append(make([]int32, 0, capHint+1), 0),
		blockSize: DefaultBlockSize,
	}
}

// WithBlockSize overrides the posting-block length (tests use tiny blocks
// to force cross-block boundaries on small pools). Must be called before
// the first Add; returns the builder for chaining.
func (b *Builder) WithBlockSize(n int) *Builder {
	if n > 0 {
		b.blockSize = n
	}
	return b
}

// Add indexes one document from its term stream (content tokens of
// title + body, as corpus.Materialized carries). The document's weights are
// derived via text.SparseEmbedTokens, bit-identical to the dense vector the
// linear-scan engine embedded.
func (b *Builder) Add(docID string, terms []string) {
	b.AddVec(docID, text.SparseEmbedTokens(terms))
}

// AddVec indexes one document from its precomputed sparse embedding (the
// vector corpus.Materialized carries), skipping the embed pass entirely.
// Sparse dims are ascending and posting lists grow in doc order, so the
// index is identical to the one Add builds.
func (b *Builder) AddVec(docID string, v text.SparseVector) {
	doc := int32(len(b.ids))
	b.ids = append(b.ids, docID)
	for i, dim := range v.Dims {
		dl, ok := b.dims[dim]
		if !ok {
			dl = &dimList{}
			b.dims[dim] = dl
		}
		dl.postings = append(dl.postings, Posting{Doc: doc, Weight: v.Weights[i]})
		b.n++
	}
	b.docDims = append(b.docDims, v.Dims...)
	b.docWts = append(b.docWts, v.Weights...)
	b.docOff = append(b.docOff, int32(len(b.docDims)))
}

// Build finalises the index: per-dimension maxima and the impact-ordered
// block layout are computed here, once, so every later query prunes against
// immutable metadata. The builder must not be reused afterwards.
func (b *Builder) Build() *Index {
	bs := int32(b.blockSize)
	for _, dl := range b.dims {
		n := int32(len(dl.postings))
		dl.blocks = make([]block, 0, (n+bs-1)/bs)
		for off := int32(0); off < n; off += bs {
			ln := min(bs, n-off)
			mx := float32(0)
			for _, p := range dl.postings[off : off+ln] {
				if p.Weight > mx {
					mx = p.Weight
				}
			}
			dl.blocks = append(dl.blocks, block{Off: off, N: ln, Max: mx})
		}
		// Impact order: highest block max first; offset ascending on ties
		// keeps the layout deterministic.
		slices.SortFunc(dl.blocks, func(a, c block) int {
			switch {
			case a.Max > c.Max:
				return -1
			case a.Max < c.Max:
				return 1
			case a.Off < c.Off:
				return -1
			case a.Off > c.Off:
				return 1
			}
			return 0
		})
		dl.max = dl.blocks[0].Max
	}
	ix := &Index{
		dims:      b.dims,
		ids:       b.ids,
		docOff:    b.docOff,
		docDims:   b.docDims,
		docWts:    b.docWts,
		nPostings: b.n,
	}
	b.dims = nil
	b.ids = nil
	b.docOff = nil
	b.docDims = nil
	b.docWts = nil
	return ix
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return len(ix.ids) }

// Postings returns the total number of postings (non-zero term weights).
func (ix *Index) Postings() int { return ix.nPostings }

// Blocks returns the total posting-block count across all dimensions.
func (ix *Index) Blocks() int {
	n := 0
	for _, dl := range ix.dims {
		n += len(dl.blocks)
	}
	return n
}

// ID returns the doc ID at pool position i.
func (ix *Index) ID(i int) string { return ix.ids[i] }

// Hit is one scored document of a top-k selection.
type Hit struct {
	// Doc is the document's pool position (index into the ID table).
	Doc int
	// ID is the document ID.
	ID string
	// Score is the final score: accumulated cosine plus the perturbation.
	Score float64
}

// PruneStats counts the work of one TopKPruned call. The exhaustive paths
// leave it zero.
type PruneStats struct {
	// PostingsTouched counts postings read: block postings examined plus
	// forward-store entries consumed while exact-scoring candidates.
	PostingsTouched int
	// BlocksSkipped counts posting blocks proven unable to reach the heap
	// floor and never read (including blocks of whole dimensions the
	// suffix bound eliminated).
	BlocksSkipped int
	// DocsScored counts documents exact-scored (candidates plus any
	// perturbation-only sweep).
	DocsScored int
}

// Arena holds the per-query scratch state of the top-k paths: dense
// accumulators, the bounded heap, the pruned path's candidate keys and
// floor histograms. Reusing one arena across queries makes warm top-k
// calls allocation-free; the engine pools arenas behind a sync.Pool. An
// Arena is not safe for concurrent use, and the hit slice a top-k call
// returns aliases the arena — copy it out before the next call on the
// same arena.
type Arena struct {
	acc   []float64
	hits  []Hit
	keys  []uint64
	tmp   []Hit
	qdims []qdim
	sfx   []float64
	// hist buckets clamped partial accumulators during traversal — each a
	// lower bound on its document's final score — and the final clamped
	// accumulators once traversal ends. histFloor turns "k entries at or
	// above an edge" into a provable lower bound on the k-th best score.
	hist [histBuckets]int32
	// Stats describes the last TopKPruned call on this arena.
	Stats PruneStats
}

// qdim is one query dimension resolved against the index, carrying its
// max-score contribution bound.
type qdim struct {
	qw float64 // query weight, widened once
	c  float64 // qw·dimMax: the dimension's max possible contribution
	dl *dimList
}

// accumulator returns a zeroed n-sized accumulator from the arena.
func (a *Arena) accumulator(n int) []float64 {
	if cap(a.acc) < n {
		a.acc = make([]float64, n)
	}
	a.acc = a.acc[:n]
	clear(a.acc)
	return a.acc
}

// heap returns an empty k-capacity hit buffer from the arena.
func (a *Arena) heap(k int) []Hit {
	if cap(a.hits) < k {
		a.hits = make([]Hit, 0, k)
	}
	return a.hits[:0]
}

// TopK scores every pool document against the query vector and returns the
// k best under (score desc, doc ID asc). perturb, when non-nil, adds an
// extra per-document score component (the engine's deterministic SERP
// jitter) after the cosine is clamped to [0,1] — every document receives
// it, including those sharing no term with the query. a may be nil (a
// temporary arena is allocated); when non-nil the returned slice aliases
// it.
func (ix *Index) TopK(q text.Vector, k int, perturb func(docID string) float64, a *Arena) []Hit {
	n := len(ix.ids)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}
	if a == nil {
		a = &Arena{}
	}
	// Term-at-a-time accumulation, query dimensions ascending: each
	// document's accumulator receives exactly the non-zero products of the
	// dense cosine loop, in the same order.
	acc := a.accumulator(n)
	for dim := 0; dim < text.VectorDim; dim++ {
		qw := q[dim]
		if qw == 0 {
			continue
		}
		dl, ok := ix.dims[int32(dim)]
		if !ok {
			continue
		}
		for _, p := range dl.postings {
			acc[p.Doc] += float64(qw) * float64(p.Weight)
		}
	}
	return ix.selectTopK(acc, k, perturb, a)
}

// TopKSparse is TopK over a sparse query vector: accumulation skips the
// dense 1024-dimension sweep and visits only the query's non-zero
// dimensions — already ascending in a SparseVector — so the accumulated
// scores, and therefore the selected top k, are bit-identical to TopK over
// the dense equivalent.
func (ix *Index) TopKSparse(q text.SparseVector, k int, perturb func(docID string) float64, a *Arena) []Hit {
	n := len(ix.ids)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}
	if a == nil {
		a = &Arena{}
	}
	acc := a.accumulator(n)
	for i, dim := range q.Dims {
		dl, ok := ix.dims[dim]
		if !ok {
			continue
		}
		qw := q.Weights[i]
		for _, p := range dl.postings {
			acc[p.Doc] += float64(qw) * float64(p.Weight)
		}
	}
	return ix.selectTopK(acc, k, perturb, a)
}

// selectTopK turns the accumulated cosines into the k best hits under
// (score desc, doc ID asc), applying the clamp and the perturbation.
func (ix *Index) selectTopK(acc []float64, k int, perturb func(docID string) float64, a *Arena) []Hit {
	n := len(ix.ids)
	// Bounded min-heap of the k best seen so far; the root is the current
	// worst, ordered by (score asc, doc ID desc) so "worse than root" means
	// "not in the top k".
	h := a.heap(k)
	for i := 0; i < n; i++ {
		s := acc[i]
		// Mirror text.Cosine's clamp before the perturbation is applied.
		if s > 1 {
			s = 1
		}
		id := ix.ids[i]
		if perturb != nil {
			s += perturb(id)
		}
		h = pushHit(h, k, Hit{Doc: i, ID: id, Score: s})
	}
	return sortHits(h, a)
}

// pushHit offers a hit to the bounded min-heap, evicting the current floor
// when the hit beats it.
func pushHit(h []Hit, k int, hit Hit) []Hit {
	if len(h) < k {
		h = append(h, hit)
		siftUp(h, len(h)-1)
		return h
	}
	if worse(hit, h[0]) {
		return h
	}
	h[0] = hit
	siftDown(h, 0)
	return h
}

// worse orders hits (score asc, doc ID desc): "worse than the heap root"
// means "not in the top k".
func worse(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// sortHits orders the selected hits (score desc, ID asc) — a total order,
// IDs are unique — yielding the same permutation the retired sort.Slice
// did. The hits sort through packed keys — float32-rounded score bits
// inverted in the high word (ascending uint64 order = descending score),
// the hit's position low — so the bulk of the work is a closure-free
// uint64 sort instead of a generic sort dragging 32-byte structs through a
// comparator. float32 rounding is monotone, so it can only collapse
// near-equal scores, never reorder distinct ones; runs that collide in
// float32 (scores within one ulp) are re-ordered by the exact comparator
// afterwards.
func sortHits(h []Hit, a *Arena) []Hit {
	if len(h) < 2 {
		return h
	}
	keys := a.keys[:0]
	for i, t := range h {
		keys = append(keys, uint64(^math.Float32bits(float32(t.Score)))<<32|uint64(uint32(i)))
	}
	a.keys = keys
	slices.Sort(keys)
	tmp := append(a.tmp[:0], h...)
	a.tmp = tmp
	for i, key := range keys {
		h[i] = tmp[uint32(key)]
	}
	for s := 0; s < len(h); {
		e := s + 1
		for e < len(h) && keys[e]>>32 == keys[s]>>32 {
			e++
		}
		for i := s + 1; i < e; i++ {
			for j := i; j > s && worse(h[j-1], h[j]); j-- {
				h[j-1], h[j] = h[j], h[j-1]
			}
		}
		s = e
	}
	return h
}

func siftUp(h []Hit, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Hit, i int) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && worse(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && worse(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
