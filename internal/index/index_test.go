package index

import (
	"fmt"
	"sort"
	"testing"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

// buildFixture indexes n synthetic documents and returns the index plus the
// dense vectors the linear-scan reference would have embedded.
func buildFixture(n int) (*Index, []text.Vector, []string) {
	bodies := []string{
		"Alexander married the duchess in the capital city",
		"the museum catalogue lists the painting under disputed provenance",
		"regional sports results and league standings for the season",
		"the committee awarded the prize for contributions to chemistry",
		"", // extraction failure: empty body
		"Alexander later founded a society for historical preservation",
	}
	b := NewBuilder(n)
	var vecs []text.Vector
	var ids []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("fact-000001-d%04d", i)
		body := bodies[i%len(bodies)]
		title := fmt.Sprintf("document %d", i)
		terms := text.ContentTokens(title + " " + body)
		b.Add(id, terms)
		vecs = append(vecs, text.Embed(title+" "+body))
		ids = append(ids, id)
	}
	return b.Build(), vecs, ids
}

// scanRank is the dense reference ranking: cosine over full vectors, full
// sort, truncate.
func scanRank(q text.Vector, vecs []text.Vector, ids []string, k int, perturb func(string) float64) []Hit {
	hits := make([]Hit, len(ids))
	for i := range ids {
		s := text.Cosine(q, vecs[i])
		if perturb != nil {
			s += perturb(ids[i])
		}
		hits[i] = Hit{Doc: i, ID: ids[i], Score: s}
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func TestTopKMatchesDenseScan(t *testing.T) {
	ix, vecs, ids := buildFixture(50)
	queries := []string{
		"Alexander married the duchess",
		"prize for chemistry",
		"league standings",
		"completely unrelated query about submarines",
		"document",
	}
	perturb := func(id string) float64 { return 0.05 * det.Uniform("serp-test", id) }
	for _, q := range queries {
		qv := text.Embed(q)
		for _, k := range []int{1, 3, 10, 50, 100} {
			got := ix.TopK(qv, k, perturb, nil)
			want := scanRank(qv, vecs, ids, k, perturb)
			if len(got) != len(want) {
				t.Fatalf("q=%q k=%d: %d hits, want %d", q, k, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score || got[i].Doc != want[i].Doc {
					t.Fatalf("q=%q k=%d hit %d: got %+v, want %+v", q, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTopKTieBreakByDocID(t *testing.T) {
	// Identical documents tie on cosine; with no perturbation the order must
	// fall back to doc ID ascending.
	// Pool order deliberately disagrees with ID order.
	b := NewBuilder(4)
	ids := []string{"f-d0003", "f-d0001", "f-d0002", "f-d0000"}
	for _, id := range ids {
		b.Add(id, []string{"same", "tokens"})
	}
	ix := b.Build()
	hits := ix.TopK(text.Embed("same tokens"), 4, nil, nil)
	want := []string{"f-d0000", "f-d0001", "f-d0002", "f-d0003"}
	for i, w := range want {
		if hits[i].ID != w {
			t.Fatalf("hit %d = %q, want %q (tie-break by ID)", i, hits[i].ID, w)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	ix, _, _ := buildFixture(5)
	if got := ix.TopK(text.Embed("anything"), 0, nil, nil); got != nil {
		t.Errorf("k=0: got %d hits, want none", len(got))
	}
	if got := ix.TopK(text.Embed("anything"), -1, nil, nil); got != nil {
		t.Errorf("k<0: got %d hits, want none", len(got))
	}
	if got := ix.TopK(text.Embed("anything"), 99, nil, nil); len(got) != 5 {
		t.Errorf("k>pool: got %d hits, want 5", len(got))
	}
	empty := NewBuilder(0).Build()
	if got := empty.TopK(text.Embed("anything"), 10, nil, nil); got != nil {
		t.Errorf("empty index: got %d hits, want none", len(got))
	}
	if empty.Docs() != 0 || empty.Postings() != 0 {
		t.Errorf("empty index stats: docs=%d postings=%d", empty.Docs(), empty.Postings())
	}
}

func TestIndexStats(t *testing.T) {
	b := NewBuilder(2)
	b.Add("a-d0000", []string{"alpha", "beta"})
	b.Add("a-d0001", []string{"alpha"})
	ix := b.Build()
	if ix.Docs() != 2 {
		t.Errorf("Docs = %d, want 2", ix.Docs())
	}
	// alpha appears in two docs, beta in one: three postings (assuming no
	// hash collision between two short tokens' dimensions, which holds for
	// these literals).
	if ix.Postings() != 3 {
		t.Errorf("Postings = %d, want 3", ix.Postings())
	}
	if ix.ID(0) != "a-d0000" || ix.ID(1) != "a-d0001" {
		t.Errorf("ID table wrong: %q %q", ix.ID(0), ix.ID(1))
	}
}
