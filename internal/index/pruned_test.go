package index

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

// prunedEqualSparse asserts the full golden ladder rung at the index level:
// TopKPruned == TopKSparse, byte for byte (DeepEqual covers Doc, ID and the
// float64 Score bits).
func prunedEqualSparse(t *testing.T, ix *Index, q text.SparseVector, k int, perturb func(string) float64, bound float64, label string) {
	t.Helper()
	want := ix.TopKSparse(q, k, perturb, nil)
	got := ix.TopKPruned(q, k, perturb, bound, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: pruned != sparse\npruned: %v\nsparse: %v", label, got, want)
	}
}

// TestTopKPrunedMatchesSparse sweeps queries, k values, perturbations and
// block sizes over a mixed fixture: every combination must be
// byte-identical to the exhaustive path.
func TestTopKPrunedMatchesSparse(t *testing.T) {
	docs := []string{
		"alpha beta gamma delta",
		"alpha alpha beta",
		"gamma delta epsilon zeta",
		"unrelated filler content entirely",
		"alpha beta gamma delta epsilon zeta eta theta",
		"",
		"beta beta beta gamma",
		"zeta eta theta iota",
		"alpha epsilon iota",
		"delta delta gamma",
	}
	queries := []string{"alpha beta", "epsilon zeta eta", "nothing matches here", "", "delta", "alpha beta gamma delta epsilon"}
	perturbs := []struct {
		fn    func(string) float64
		bound float64
	}{
		{nil, 0},
		{func(id string) float64 { return 0.05 * det.Uniform("serp", "q", id) }, 0.05},
	}
	for _, bs := range []int{1, 2, 3, 7, DefaultBlockSize} {
		b := NewBuilder(len(docs)).WithBlockSize(bs)
		for i, d := range docs {
			b.Add(fmt.Sprintf("f-d%04d", i), text.ContentTokens(d))
		}
		ix := b.Build()
		for _, q := range queries {
			for pi, p := range perturbs {
				for _, k := range []int{0, 1, 3, 6, len(docs), 99} {
					prunedEqualSparse(t, ix, text.SparseEmbed(q), k, p.fn, p.bound,
						fmt.Sprintf("bs=%d q=%q perturb=%d k=%d", bs, q, pi, k))
				}
			}
		}
	}
}

// TestTopKPrunedRandomized is a seeded fuzz sweep: random corpora, random
// queries, every block size — pruned must stay byte-identical to sparse.
func TestTopKPrunedRandomized(t *testing.T) {
	vocab := strings.Fields("alpha beta gamma delta epsilon zeta eta theta iota kappa lambada muon neutrino quark boson lepton hadron photon gluon tachyon")
	rng := det.Source("pruned-fuzz")
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(60)
		bs := 1 + rng.IntN(9)
		b := NewBuilder(n).WithBlockSize(bs)
		for i := 0; i < n; i++ {
			var toks []string
			for w := rng.IntN(12); w > 0; w-- {
				toks = append(toks, vocab[rng.IntN(len(vocab))])
			}
			b.Add(fmt.Sprintf("f-d%04d", i), toks)
		}
		ix := b.Build()
		var qtoks []string
		for w := rng.IntN(6); w > 0; w-- {
			qtoks = append(qtoks, vocab[rng.IntN(len(vocab))])
		}
		q := text.SparseEmbed(strings.Join(qtoks, " "))
		k := 1 + rng.IntN(n+3)
		perturb := func(id string) float64 { return 0.05 * det.Uniform("serp", fmt.Sprint(trial), id) }
		prunedEqualSparse(t, ix, q, k, perturb, 0.05, fmt.Sprintf("trial=%d n=%d bs=%d k=%d", trial, n, bs, k))
	}
}

// FuzzTopKPruned lets the fuzzer pick corpus shape, block size, k and the
// query; the invariant is always byte-equality with the exhaustive path.
func FuzzTopKPruned(f *testing.F) {
	f.Add(uint64(1), 3, 2, "alpha beta")
	f.Add(uint64(7), 1, 1, "gamma")
	f.Add(uint64(42), 100, 64, "")
	f.Fuzz(func(t *testing.T, seed uint64, k, bs int, query string) {
		if k < -1 || k > 1000 || bs < 0 || bs > 256 || len(query) > 200 {
			t.Skip()
		}
		vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := int(1 + rng.Uint64()%40)
		b := NewBuilder(n).WithBlockSize(bs)
		for i := 0; i < n; i++ {
			var toks []string
			for w := rng.Uint64() % 10; w > 0; w-- {
				toks = append(toks, vocab[rng.Uint64()%uint64(len(vocab))])
			}
			b.Add(fmt.Sprintf("f-d%04d", i), toks)
		}
		ix := b.Build()
		perturb := func(id string) float64 { return 0.05 * det.Uniform("serp", query, id) }
		want := ix.TopKSparse(text.SparseEmbed(query), k, perturb, nil)
		got := ix.TopKPruned(text.SparseEmbed(query), k, perturb, 0.05, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pruned != sparse for seed=%d k=%d bs=%d q=%q", seed, k, bs, query)
		}
	})
}

// TestTopKPrunedEdgeCases covers the degenerate inputs: k <= 0, k beyond
// the pool, an all-zero query vector and an empty index.
func TestTopKPrunedEdgeCases(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.Add(fmt.Sprintf("f-d%04d", i), []string{"alpha", "beta"})
	}
	ix := b.Build()
	perturb := func(id string) float64 { return 0.05 * det.Uniform("edge", id) }
	if got := ix.TopKPruned(text.SparseEmbed("alpha"), 0, perturb, 0.05, nil); got != nil {
		t.Errorf("k=0: got %d hits, want none", len(got))
	}
	if got := ix.TopKPruned(text.SparseEmbed("alpha"), -3, perturb, 0.05, nil); got != nil {
		t.Errorf("k<0: got %d hits, want none", len(got))
	}
	if got := ix.TopKPruned(text.SparseEmbed("alpha"), 99, perturb, 0.05, nil); len(got) != 5 {
		t.Errorf("k>pool: got %d hits, want 5", len(got))
	}
	// All-zero query: every document scores clamp(0)+perturb, exactly as
	// the exhaustive accumulator would.
	prunedEqualSparse(t, ix, text.SparseVector{}, 3, perturb, 0.05, "all-zero query")
	if got := ix.TopKPruned(text.SparseVector{}, 2, nil, 0, nil); len(got) != 2 ||
		got[0].ID != "f-d0000" || got[1].ID != "f-d0001" {
		t.Errorf("all-zero query, nil perturb: got %v, want the two smallest IDs at score 0", got)
	}
	empty := NewBuilder(0).Build()
	if got := empty.TopKPruned(text.SparseEmbed("alpha"), 4, perturb, 0.05, nil); got != nil {
		t.Errorf("empty index: got %d hits, want none", len(got))
	}
}

// TestTopKPrunedTieAcrossBlocks pins the (score desc, doc ID asc) tie-break
// when equal scores land in different posting blocks: pool order disagrees
// with ID order and the tied documents straddle a block boundary.
func TestTopKPrunedTieAcrossBlocks(t *testing.T) {
	b := NewBuilder(6).WithBlockSize(2)
	ids := []string{"f-d0005", "f-d0001", "f-d0004", "f-d0000", "f-d0003", "f-d0002"}
	for _, id := range ids {
		b.Add(id, []string{"same", "tokens"})
	}
	ix := b.Build()
	hits := ix.TopKPruned(text.SparseEmbed("same tokens"), 4, nil, 0, nil)
	want := []string{"f-d0000", "f-d0001", "f-d0002", "f-d0003"}
	for i, w := range want {
		if hits[i].ID != w {
			t.Fatalf("hit %d = %q, want %q (tie-break by ID across blocks)", i, hits[i].ID, w)
		}
	}
	prunedEqualSparse(t, ix, text.SparseEmbed("same tokens"), 4, nil, 0, "tie across blocks")
}

// TestTopKPrunedBoundaryBlockNotSkipped is the pruning-threshold boundary
// case: a block whose max-score upper bound exactly equals the heap floor
// holds a document that ties the floor score with a smaller doc ID — it
// belongs in the top k, so the block must be scored, not skipped. A buggy
// `<=` skip (or a missing slack widening) drops f-d0002 from the SERP.
func TestTopKPrunedBoundaryBlockNotSkipped(t *testing.T) {
	b := NewBuilder(4).WithBlockSize(2)
	const dim = int32(5)
	vec := func(w float32) text.SparseVector {
		return text.SparseVector{Dims: []int32{dim}, Weights: []float32{w}}
	}
	b.AddVec("f-d0001", vec(0.9))
	b.AddVec("f-d0009", vec(0.5)) // fills the k=2 heap; floor = 0.5 @ f-d0009
	b.AddVec("f-d0002", vec(0.5)) // second block; block max == heap floor
	b.AddVec("f-d0008", vec(0.3))
	ix := b.Build()
	q := text.SparseVector{Dims: []int32{dim}, Weights: []float32{1}}

	hits := ix.TopKPruned(q, 2, nil, 0, nil)
	if len(hits) != 2 || hits[0].ID != "f-d0001" || hits[1].ID != "f-d0002" {
		t.Fatalf("boundary block was pruned: got %v, want [f-d0001 f-d0002]", hits)
	}
	prunedEqualSparse(t, ix, q, 2, nil, 0, "block max == heap floor")
}

// TestTopKPrunedSkipsAndCounters asserts the pruning actually happens on a
// skewed pool — whole blocks skipped, only a fraction of documents scored —
// and that the arena's counters report it.
func TestTopKPrunedSkipsAndCounters(t *testing.T) {
	const n = 128
	b := NewBuilder(n).WithBlockSize(8)
	const dim = int32(11)
	for i := 0; i < n; i++ {
		// Strictly descending weights: the first block dominates, every
		// later block's max falls below the k=3 floor.
		w := float32(1) - float32(i)/float32(n+1)
		b.AddVec(fmt.Sprintf("f-d%04d", i), text.SparseVector{Dims: []int32{dim}, Weights: []float32{w}})
	}
	ix := b.Build()
	q := text.SparseVector{Dims: []int32{dim}, Weights: []float32{1}}

	a := &Arena{}
	hits := ix.TopKPruned(q, 3, nil, 0, a)
	if len(hits) != 3 || hits[0].ID != "f-d0000" {
		t.Fatalf("unexpected hits: %v", hits)
	}
	if a.Stats.BlocksSkipped < 10 {
		t.Errorf("BlocksSkipped = %d, want most of the %d blocks", a.Stats.BlocksSkipped, ix.Blocks())
	}
	if a.Stats.DocsScored >= n/2 {
		t.Errorf("DocsScored = %d, want far fewer than %d (pruning ineffective)", a.Stats.DocsScored, n)
	}
	if a.Stats.PostingsTouched <= 0 || a.Stats.PostingsTouched >= ix.Postings() {
		t.Errorf("PostingsTouched = %d, want in (0, %d)", a.Stats.PostingsTouched, ix.Postings())
	}
	prunedEqualSparse(t, ix, q, 3, nil, 0, "skewed pool")
}

// TestArenaReuse runs many different queries through one arena across all
// three paths: results must be identical to fresh-arena calls (stale
// accumulators, stamps or heap state would corrupt them).
func TestArenaReuse(t *testing.T) {
	ix, _, _ := buildFixture(40)
	a := &Arena{}
	queries := []string{"Alexander married the duchess", "prize for chemistry", "league standings", "", "document"}
	perturb := func(id string) float64 { return 0.05 * det.Uniform("reuse", id) }
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			for _, k := range []int{1, 5, 40} {
				qv := text.SparseEmbed(q)
				want := ix.TopKSparse(qv, k, perturb, nil)
				for _, got := range [][]Hit{
					ix.TopKSparse(qv, k, perturb, a),
					ix.TopKPruned(qv, k, perturb, 0.05, a),
					ix.TopK(text.Embed(q), k, perturb, a),
				} {
					if !reflect.DeepEqual(append([]Hit(nil), got...), want) {
						t.Fatalf("round %d q=%q k=%d: arena-reuse result diverged", round, q, k)
					}
				}
			}
		}
	}
}
