package index

import (
	"fmt"
	"reflect"
	"testing"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

func sparseFixture() *Index {
	b := NewBuilder(8)
	docs := []string{
		"alpha beta gamma delta",
		"alpha alpha beta",
		"gamma delta epsilon zeta",
		"unrelated filler content entirely",
		"alpha beta gamma delta epsilon zeta eta theta",
		"",
	}
	for i, d := range docs {
		b.Add(fmt.Sprintf("f-d%04d", i), text.ContentTokens(d))
	}
	return b.Build()
}

// TestTopKSparseMatchesDense pins sparse-query accumulation byte-identical
// to the dense TopK across k values, with and without perturbation.
func TestTopKSparseMatchesDense(t *testing.T) {
	ix := sparseFixture()
	queries := []string{"alpha beta", "epsilon zeta eta", "nothing matches here", ""}
	perturbs := []func(string) float64{
		nil,
		func(id string) float64 { return 0.05 * det.Uniform("serp", "q", id) },
	}
	for _, q := range queries {
		for pi, perturb := range perturbs {
			for _, k := range []int{0, 1, 3, 6, 99} {
				dense := ix.TopK(text.Embed(q), k, perturb, nil)
				sparse := ix.TopKSparse(text.SparseEmbed(q), k, perturb, nil)
				if !reflect.DeepEqual(dense, sparse) {
					t.Fatalf("q=%q perturb=%d k=%d: dense %v != sparse %v", q, pi, k, dense, sparse)
				}
			}
		}
	}
}

// TestAddVecMatchesAdd pins the vector-ingest build path against the
// term-stream path: identical postings, identical rankings.
func TestAddVecMatchesAdd(t *testing.T) {
	docs := [][]string{
		text.ContentTokens("alpha beta gamma"),
		text.ContentTokens("beta beta delta"),
		text.ContentTokens("epsilon"),
	}
	a := NewBuilder(len(docs))
	v := NewBuilder(len(docs))
	for i, terms := range docs {
		id := fmt.Sprintf("f-d%04d", i)
		a.Add(id, terms)
		v.AddVec(id, text.SparseEmbedTokens(terms))
	}
	ia, iv := a.Build(), v.Build()
	if ia.Postings() != iv.Postings() || ia.Docs() != iv.Docs() {
		t.Fatalf("shape mismatch: %d/%d postings, %d/%d docs",
			ia.Postings(), iv.Postings(), ia.Docs(), iv.Docs())
	}
	q := text.SparseEmbed("alpha beta delta epsilon")
	if got, want := iv.TopKSparse(q, 3, nil, nil), ia.TopKSparse(q, 3, nil, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("rankings differ: %v vs %v", got, want)
	}
}
