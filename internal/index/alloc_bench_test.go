package index

import (
	"fmt"
	"testing"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

// benchIndex builds a 512-document synthetic pool once per benchmark.
func benchIndex(b *testing.B) (*Index, text.SparseVector) {
	b.Helper()
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"}
	rng := det.Source("alloc-bench")
	bl := NewBuilder(512)
	for i := 0; i < 512; i++ {
		var toks []string
		for w := 3 + rng.IntN(20); w > 0; w-- {
			toks = append(toks, vocab[rng.IntN(len(vocab))])
		}
		bl.Add(fmt.Sprintf("f-d%04d", i), toks)
	}
	return bl.Build(), text.SparseEmbed("alpha beta gamma")
}

// BenchmarkTopKWarm proves the arena makes warm queries alloc-free: with a
// reused Arena and a prebuilt perturbation closure, both the exhaustive and
// the pruned paths must report 0 allocs/op.
func BenchmarkTopKWarm(b *testing.B) {
	ix, q := benchIndex(b)
	perturb := func(id string) float64 { return 0.05 * det.Uniform("bench", id) }
	b.Run("indexed", func(b *testing.B) {
		a := &Arena{}
		ix.TopKSparse(q, 8, perturb, a) // warm the arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.TopKSparse(q, 8, perturb, a)
		}
	})
	b.Run("pruned", func(b *testing.B) {
		a := &Arena{}
		ix.TopKPruned(q, 8, perturb, 0.05, a)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.TopKPruned(q, 8, perturb, 0.05, a)
		}
	})
}
