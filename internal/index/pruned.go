package index

import (
	"math"

	"factcheck/internal/text"
)

// boundSlack absorbs IEEE-754 summation-order effects in the pruned path's
// upper bounds. Bounds are floating-point sums of the same terms an exact
// score accumulates, but evaluated in a different association (suffix
// maxima, leak terms), so a bound is only provable after widening by more
// than the worst-case drift. With at most 1024 query dimensions, per-term
// contributions <= 1 and partial sums <= 32 (the query is L2-normalised,
// so Σqw <= √1024), the accumulated rounding error of either sum is below
// 1024·2⁻⁵³·32 ≈ 4·10⁻¹², and the two extra additions (clamp, perturbation
// bound) stay in the same regime. 10⁻⁹ exceeds that by ~100× while sitting
// far below any score gap the 53-bit SERP jitter can produce, so the slack
// never costs a skip that mattered.
const boundSlack = 1e-9

// histBuckets quantises lower bounds in [0,1] for the floor histogram. A
// bucket's lower edge under-reports its entries by at most 1/256 — floors
// are only ever weakened, never inflated, so skips stay provable.
const histBuckets = 256

// histBucket maps a lower bound in [0,1] to its histogram bucket.
func histBucket(v float64) int {
	b := int(v * histBuckets)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// histFloor returns the largest bucket edge with at least k entries at or
// above it — a sound floor: at least k counted documents have lower bounds
// >= the returned value. With fewer than k entries it returns 0, which can
// never exclude anything (every upper bound is non-negative and exclusion
// requires a strict compare after positive widening).
func histFloor(hist *[histBuckets]int32, k int) float64 {
	cum := 0
	for j := histBuckets - 1; j >= 0; j-- {
		cum += int(hist[j])
		if cum >= k {
			return float64(j) / histBuckets
		}
	}
	return 0
}

// histCountAbove estimates how many counted documents have lower bounds at
// or above v — input to the skip cost model, not to any soundness proof.
func histCountAbove(hist *[histBuckets]int32, v float64) int {
	lo := 0
	if v > 0 {
		lo = histBucket(v)
	}
	cum := 0
	for j := histBuckets - 1; j >= lo; j-- {
		cum += int(hist[j])
	}
	return cum
}

// siftDownKey restores the max-heap property of the packed candidate keys
// at root i. Larger key = higher float32 bound, ties broken toward the
// smaller doc ID (the low word stores the doc bit-flipped).
func siftDownKey(keys []uint64, i int) {
	for {
		l := 2*i + 1
		if l >= len(keys) {
			return
		}
		if r := l + 1; r < len(keys) && keys[r] > keys[l] {
			l = r
		}
		if keys[i] >= keys[l] {
			return
		}
		keys[i], keys[l] = keys[l], keys[i]
		i = l
	}
}

// TopKPruned returns exactly TopKSparse(q, k, perturb) — byte-identical
// hits — while exact-scoring only the documents that can still matter: a
// max-score/WAND-style early-termination top-k over the impact-ordered
// block layout.
//
// perturbBound must satisfy perturb(id) <= perturbBound for every document
// ID (0 is implied when perturb is nil); the engine passes its SERP-jitter
// magnitude. a may be nil; when non-nil the returned slice aliases it and
// a.Stats reports the pruning counters.
//
// The provable-skip invariant: a document is excluded only when an upper
// bound on its final score — exact accumulation where traversed, block or
// dimension maxima where skipped, plus perturbBound, widened by boundSlack
// — is strictly below a lower bound on the k-th best final score. Both
// sides of every such comparison are conservative, so exclusion never
// touches the true top k, and since (score desc, doc ID asc) is a total
// order, the selected set and its order are exactly the exhaustive path's.
//
// Traversal runs term-at-a-time in ascending dimension order — the dense
// loop's order — so a document's accumulator replays the exact product
// sequence of the exhaustive path: when no block was skipped, the final
// accumulator IS the bit-identical cosine, and candidates are scored with
// a clamp and a perturbation, never re-reading the forward store. Skipping
// still gets its power from the impact-ordered block layout: within each
// dimension, blocks arrive max-descending, so one failed bound ends the
// dimension. The phases:
//
//  1. accumulate or skip: each posting folds into its document's
//     accumulator and moves the document between buckets of a 256-bucket
//     histogram over clamped partial sums. Accumulators only grow and the
//     perturbation only adds, so each partial sum lower-bounds its
//     document's final score and the histogram's k-deep edge is a floor at
//     least k true final scores meet — tracking the real k-th-best
//     frontier as it rises, for two bucket updates per posting where a
//     k-slot heap would pay a sift. A block whose upper bound for an
//     unseen document (qw·blockMax + the remaining-dimension suffix + the
//     leak term below + perturbBound) cannot reach the floor is skipped; a
//     whole-dimension suffix that cannot reach it ends the traversal.
//     Floor walks are cached — the floor is monotone, so a stale value
//     stays sound — and gated on the running maximum accumulator, so
//     queries whose bounds never come close pay one float compare per
//     block, not a histogram scan. Every skip widens `leak` by the skipped
//     contribution's maximum, keeping accumulated bounds sound: a document
//     absent from a traversed block has exactly +0 missing there, one
//     absent from a skipped block at most the skipped maximum.
//  2. select: after traversal the same histogram buckets the final clamped
//     accumulators, so its k-deep edge is now the true selection floor
//     (the k-th best lower bound over the whole pool); candidates provably
//     below it are dropped. Survivors pack into uint64 keys — the clamped
//     accumulator rounded UP to float32 in the high bits, the bit-flipped
//     doc ID low — and pop from a max-heap in (bound desc, doc asc) order.
//     Once k exact scores are in, a popped key whose bound
//     min(1, ub+leak)+perturbBound cannot beat the running heap floor ends
//     the phase: every remaining key packs a lower bound still.
//  3. score: with leak == 0 the accumulator is already the exact
//     dense-order sum, so scoring is clamp + perturb + heap push. Any skip
//     (leak > 0) may have left accumulators short, so scoring falls back
//     to the forward-store merge join in ascending dimension order — the
//     same exact product sequence, rebuilt from scratch.
//  4. perturbation-only sweep: documents sharing no dimension with the
//     query still score clamp(0)+perturb in the exhaustive path. The sweep
//     runs only while perturbBound alone could still beat the floor (or
//     the heap is unfilled) — and every exclusion above subtracts at least
//     perturbBound more than this one, so in exactly those runs nothing
//     was skipped or dropped, and the unaccumulated documents are exactly
//     the zero-overlap ones.
func (ix *Index) TopKPruned(q text.SparseVector, k int, perturb func(docID string) float64, perturbBound float64, a *Arena) []Hit {
	n := len(ix.ids)
	if k > n {
		k = n
	}
	if a == nil {
		a = &Arena{}
	}
	a.Stats = PruneStats{}
	if k <= 0 || n == 0 {
		return nil
	}
	if perturb == nil {
		perturbBound = 0
	}

	// Resolve query dimensions against the index, keeping the query's
	// ascending dimension order — the exact accumulation order of the
	// dense loop.
	dims := a.qdims[:0]
	for i, dim := range q.Dims {
		dl, ok := ix.dims[dim]
		if !ok {
			continue
		}
		qw := float64(q.Weights[i])
		dims = append(dims, qdim{qw: qw, c: qw * float64(dl.max), dl: dl})
	}
	a.qdims = dims
	m := len(dims)

	// sfx[i] bounds the total contribution of dimensions i..m-1.
	sfx := a.sfx[:0]
	if cap(sfx) < m+1 {
		sfx = make([]float64, 0, m+1)
	}
	sfx = sfx[:m+1]
	a.sfx = sfx
	sfx[m] = 0
	for i := m - 1; i >= 0; i-- {
		sfx[i] = dims[i].c + sfx[i+1]
	}

	h := a.heap(k)
	acc := a.accumulator(n)
	clear(a.hist[:])
	// floor caches the last histogram walk; it can only rise as postings
	// move documents into higher buckets, so a stale value stays a sound
	// lower bound. maxAcc caps what any walk could return, gating walks
	// off entirely while bounds sit above every accumulator. dirty marks
	// histogram changes since the cached walk.
	floor, maxAcc := 0.0, 0.0
	dirty := false

	// cannotBeatLB: an upper bound provably below the lower-bound floor
	// cannot be in the top k. Strict comparison after widening — a bound
	// exactly at the floor could tie the k-th score and win on doc ID.
	cannotBeatLB := func(cosBound float64) bool {
		if cosBound > 1 {
			cosBound = 1
		}
		b := cosBound + perturbBound + boundSlack
		if b < floor {
			return true
		}
		ma := maxAcc
		if ma > 1 {
			ma = 1
		}
		if b >= ma || !dirty {
			return false
		}
		floor = histFloor(&a.hist, k)
		dirty = false
		return b < floor
	}

	// leak bounds the contribution a document may have in skipped blocks
	// and suffix-broken dimensions — traversed blocks contribute exactly
	// +0 for absent documents, skipped ones at most their maximum.
	//
	// Skipping also has a price: with leak > 0 every selected document
	// must be re-scored through the forward-store merge join instead of
	// reading its finished accumulator, and the leak widens every
	// selection bound, admitting borderline candidates the exhaustive
	// accumulator would have excluded. A skip is optional — exhaustive
	// traversal is always sound — so a provable skip is only taken when it
	// pays: the histogram counts the documents the widened bounds would
	// newly admit, each costing one merge join of roughly
	// (query dims + average document dims) steps, the first skip adds the
	// k merge joins the fast path would have avoided, and the postings the
	// skip avoids must outweigh that total. The gate is scale-adaptive:
	// near-tail skips that save a handful of postings are declined at
	// small corpus scales and fire at larger ones, where whole high-volume
	// suffixes drop out.
	leak := 0.0
	mergeSteps := len(q.Dims)
	if n > 0 {
		mergeSteps += len(ix.docDims) / n
	}
	// mayPay is the gate's free pre-check: the first skip costs at least
	// the k fast-path scores it forfeits, so smaller savings can skip the
	// bound proof and the histogram pricing entirely.
	mayPay := func(saved int) bool {
		return leak > 0 || saved >= k*mergeSteps
	}
	skipWorth := func(saved int, leakAfter float64) bool {
		extra := histCountAbove(&a.hist, floor-leakAfter-perturbBound) -
			histCountAbove(&a.hist, floor-leak-perturbBound)
		cost := extra * mergeSteps
		if leak == 0 {
			cost += k * mergeSteps
		}
		return saved >= cost
	}
	for i, d := range dims {
		saved := 0
		for _, r := range dims[i:] {
			saved += len(r.dl.postings)
		}
		if mayPay(saved) && cannotBeatLB(sfx[i]+leak) && skipWorth(saved, leak+sfx[i]) {
			for _, r := range dims[i:] {
				a.Stats.BlocksSkipped += len(r.dl.blocks)
			}
			leak += sfx[i]
			break
		}
		for bi, b := range d.dl.blocks {
			if rem := len(d.dl.postings) - int(b.Off); mayPay(rem) &&
				cannotBeatLB(d.qw*float64(b.Max)+sfx[i+1]+leak) &&
				skipWorth(rem, leak+d.qw*float64(b.Max)) {
				// Impact order: every remaining block of this dimension
				// bounds even lower. The first skipped block's max covers
				// the dimension's contribution to any document inside any
				// of them.
				a.Stats.BlocksSkipped += len(d.dl.blocks) - bi
				leak += d.qw * float64(b.Max)
				break
			}
			a.Stats.PostingsTouched += int(b.N)
			for _, p := range d.dl.postings[b.Off : b.Off+b.N] {
				v := d.qw * float64(p.Weight)
				if v == 0 {
					continue
				}
				old := acc[p.Doc]
				nw := old + v
				acc[p.Doc] = nw
				c := nw
				if c > 1 {
					c = 1
				}
				bn := histBucket(c)
				if old > 0 {
					o := old
					if o > 1 {
						o = 1
					}
					if bo := histBucket(o); bo != bn {
						a.hist[bo]--
						a.hist[bn]++
						dirty = true
					}
				} else {
					a.hist[bn]++
					dirty = true
				}
				if nw > maxAcc {
					maxAcc = nw
				}
			}
		}
	}

	// scoreExact rebuilds one document's score from the forward store:
	// ascending-dimension merge join, clamp, perturb — the dense loop's
	// exact product order. Needed only when a skip may have left the
	// accumulator short.
	scoreExact := func(doc int32) {
		dd := ix.docDims[ix.docOff[doc]:ix.docOff[doc+1]]
		dw := ix.docWts[ix.docOff[doc]:ix.docOff[doc+1]]
		a.Stats.PostingsTouched += len(dd)
		var s float64
		i, j := 0, 0
		for i < len(q.Dims) && j < len(dd) {
			switch {
			case q.Dims[i] < dd[j]:
				i++
			case q.Dims[i] > dd[j]:
				j++
			default:
				s += float64(q.Weights[i]) * float64(dw[j])
				i++
				j++
			}
		}
		if s > 1 {
			s = 1
		}
		id := ix.ids[doc]
		if perturb != nil {
			s += perturb(id)
		}
		h = pushHit(h, k, Hit{Doc: int(doc), ID: id, Score: s})
	}

	// Selection floor: the histogram now buckets final clamped
	// accumulators, each a lower bound on its document's final score
	// (accumulators only under-report when blocks were skipped, and the
	// perturbation only adds), so its k-deep edge lower-bounds the k-th
	// best final score and candidates provably below it never reach the
	// key heap.
	selFloor := histFloor(&a.hist, k)

	// Pack the surviving candidates. The clamped accumulator rounds UP to
	// float32, so each key still packs an upper bound and the pop-order
	// break below stays provable.
	keys := a.keys[:0]
	for doc := int32(0); doc < int32(n); doc++ {
		ub := acc[doc]
		if ub == 0 {
			continue
		}
		if ub > 1 {
			ub = 1
		}
		if ub+leak+perturbBound+boundSlack < selFloor {
			continue
		}
		f := float32(ub)
		if float64(f) < ub {
			f = math.Nextafter32(f, float32(math.Inf(1)))
		}
		keys = append(keys, uint64(math.Float32bits(f))<<32|uint64(^uint32(doc)))
	}
	a.keys = keys
	for i := len(keys)/2 - 1; i >= 0; i-- {
		siftDownKey(keys, i)
	}

	// Draw candidates best-bound-first. After k exact scores the heap
	// floor takes over from the selection floor: it only rises, popped
	// bounds only fall, so the first provably-out key ends the phase.
	for len(keys) > 0 {
		key := keys[0]
		if len(h) == k {
			bound := float64(math.Float32frombits(uint32(key>>32))) + leak
			if bound > 1 {
				bound = 1
			}
			if bound+perturbBound+boundSlack < h[0].Score {
				break
			}
		}
		last := len(keys) - 1
		keys[0] = keys[last]
		keys = keys[:last]
		siftDownKey(keys, 0)
		doc := int32(^uint32(key))
		a.Stats.DocsScored++
		if leak > 0 {
			scoreExact(doc)
			continue
		}
		// No skips: the accumulator replayed the dense loop exactly.
		s := acc[doc]
		if s > 1 {
			s = 1
		}
		id := ix.ids[doc]
		if perturb != nil {
			s += perturb(id)
		}
		h = pushHit(h, k, Hit{Doc: int(doc), ID: id, Score: s})
	}

	// Perturbation-only sweep: exhaustive scoring gives every document at
	// least clamp(0)+perturb. Skipping the sweep is itself a prune and
	// needs the same proof: the floor must beat a zero cosine. Whenever it
	// cannot (including an unfilled heap), no exclusion above fired either
	// — every bound there includes perturbBound plus a non-negative cosine
	// bound — so the unaccumulated documents are exactly the zero-overlap
	// ones.
	if !(len(h) == k && perturbBound+boundSlack < h[0].Score) {
		for doc := int32(0); doc < int32(n); doc++ {
			if acc[doc] != 0 {
				continue
			}
			a.Stats.DocsScored++
			var s float64
			id := ix.ids[doc]
			if perturb != nil {
				s += perturb(id)
			}
			h = pushHit(h, k, Hit{Doc: int(doc), ID: id, Score: s})
		}
	}
	a.hits = h
	return sortHits(h, a)
}
