// Package chunk implements phase 4b of the RAG pipeline: segmenting
// documents into smaller overlapping passages with a sliding-window
// strategy (paper §3.2 / Table 4, "Sliding Window (size = 3)"). Windows are
// measured in sentences, sliding one sentence at a time, so consecutive
// chunks overlap by size-1 sentences.
package chunk

import (
	"strings"
	"sync"

	"factcheck/internal/text"
)

// DefaultWindow is the paper's configured sliding-window size (Table 4).
const DefaultWindow = 3

// Chunk is one overlapping passage of a document.
type Chunk struct {
	// DocID identifies the source document.
	DocID string
	// Seq is the chunk's position within the document (0-based).
	Seq int
	// Text is the passage content.
	Text string
}

// SplitSentences performs lightweight sentence segmentation on '.', '!' and
// '?' boundaries. It is deliberately simple: the synthetic corpus never
// contains abbreviations with internal periods.
func SplitSentences(s string) []string {
	var out []string
	var cur strings.Builder
	for _, r := range s {
		cur.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			sent := strings.TrimSpace(cur.String())
			if sent != "" {
				out = append(out, sent)
			}
			cur.Reset()
		}
	}
	if tail := strings.TrimSpace(cur.String()); tail != "" {
		out = append(out, tail)
	}
	return out
}

// Sliding splits text into overlapping windows of `window` sentences,
// advancing one sentence per chunk. A document shorter than the window
// yields a single chunk containing the whole text. Empty text yields nil.
func Sliding(docID, text string, window int) []Chunk {
	return NewSplit(text).Windows(docID, window)
}

// Split is the precomputed sentence segmentation of one document: every
// sentence joined into a single string, with per-sentence offsets, so
// sliding windows of any size are substrings of the shared backing string
// instead of per-window strings.Join copies. The search engine's doc table
// caches one Split per fetched document and serves every window size from
// it.
type Split struct {
	// Joined is all sentences joined by single spaces — the exact text the
	// window-size-n chunk over all sentences would contain.
	Joined string
	// ends[i] is the exclusive end offset of sentence i in Joined. Sentence
	// i starts at 0 (i == 0) or ends[i-1]+1 (skipping the joining space).
	ends []int

	// tokOnce guards the lazy per-sentence token streams behind WindowVecs.
	tokOnce sync.Once
	// toks is the content-token stream of Joined; tokEnds[i] is the number
	// of tokens in sentences 0..i, so sentence i's tokens are
	// toks[tokEnds[i-1]:tokEnds[i]].
	toks    []string
	tokEnds []int
}

// NewSplit segments text once. The result is immutable apart from the lazy
// token cache and safe for concurrent use.
func NewSplit(t string) *Split {
	sents := SplitSentences(t)
	if len(sents) == 0 {
		return &Split{}
	}
	sp := &Split{
		Joined: strings.Join(sents, " "),
		ends:   make([]int, len(sents)),
	}
	off := 0
	for i, s := range sents {
		off += len(s)
		sp.ends[i] = off
		off++ // joining space
	}
	return sp
}

// Sentences returns the number of sentences in the document.
func (sp *Split) Sentences() int { return len(sp.ends) }

// start returns the offset of sentence i in Joined.
func (sp *Split) start(i int) int {
	if i == 0 {
		return 0
	}
	return sp.ends[i-1] + 1
}

// Windows returns the sliding windows of `window` sentences as substrings
// of the shared Joined string — output-identical to the retired per-window
// strings.Join, without re-copying each sentence `window` times.
func (sp *Split) Windows(docID string, window int) []Chunk {
	if window <= 0 {
		window = DefaultWindow
	}
	n := len(sp.ends)
	if n == 0 {
		return nil
	}
	if n <= window {
		return []Chunk{{DocID: docID, Seq: 0, Text: sp.Joined}}
	}
	out := make([]Chunk, 0, n-window+1)
	for i := 0; i+window <= n; i++ {
		out = append(out, Chunk{
			DocID: docID,
			Seq:   i,
			Text:  sp.Joined[sp.start(i):sp.ends[i+window-1]],
		})
	}
	return out
}

// tokenize builds the per-sentence token streams once.
func (sp *Split) tokenize() {
	sp.tokOnce.Do(func() {
		sp.tokEnds = make([]int, len(sp.ends))
		for i := range sp.ends {
			sp.toks = append(sp.toks, text.ContentTokens(sp.Joined[sp.start(i):sp.ends[i]])...)
			sp.tokEnds[i] = len(sp.toks)
		}
	})
}

// WindowVecs returns the sparse embedding of every window of `window`
// sentences, built from a single tokenize pass over the document: window
// vectors reuse the per-sentence token streams instead of re-tokenizing the
// overlapping text window-times. Each vector is bit-identical to
// text.SparseEmbed of the matching Windows chunk text (tokens never span
// the sentence-joining space, and SparseEmbedTokens is insensitive to token
// order within the stream).
func (sp *Split) WindowVecs(window int) []text.SparseVector {
	if window <= 0 {
		window = DefaultWindow
	}
	n := len(sp.ends)
	if n == 0 {
		return nil
	}
	sp.tokenize()
	tokStart := func(i int) int {
		if i == 0 {
			return 0
		}
		return sp.tokEnds[i-1]
	}
	if n <= window {
		return []text.SparseVector{text.SparseEmbedTokens(sp.toks)}
	}
	out := make([]text.SparseVector, 0, n-window+1)
	for i := 0; i+window <= n; i++ {
		out = append(out, text.SparseEmbedTokens(sp.toks[tokStart(i):sp.tokEnds[i+window-1]]))
	}
	return out
}
