// Package chunk implements phase 4b of the RAG pipeline: segmenting
// documents into smaller overlapping passages with a sliding-window
// strategy (paper §3.2 / Table 4, "Sliding Window (size = 3)"). Windows are
// measured in sentences, sliding one sentence at a time, so consecutive
// chunks overlap by size-1 sentences.
package chunk

import "strings"

// DefaultWindow is the paper's configured sliding-window size (Table 4).
const DefaultWindow = 3

// Chunk is one overlapping passage of a document.
type Chunk struct {
	// DocID identifies the source document.
	DocID string
	// Seq is the chunk's position within the document (0-based).
	Seq int
	// Text is the passage content.
	Text string
}

// SplitSentences performs lightweight sentence segmentation on '.', '!' and
// '?' boundaries. It is deliberately simple: the synthetic corpus never
// contains abbreviations with internal periods.
func SplitSentences(s string) []string {
	var out []string
	var cur strings.Builder
	for _, r := range s {
		cur.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			sent := strings.TrimSpace(cur.String())
			if sent != "" {
				out = append(out, sent)
			}
			cur.Reset()
		}
	}
	if tail := strings.TrimSpace(cur.String()); tail != "" {
		out = append(out, tail)
	}
	return out
}

// Sliding splits text into overlapping windows of `window` sentences,
// advancing one sentence per chunk. A document shorter than the window
// yields a single chunk containing the whole text. Empty text yields nil.
func Sliding(docID, text string, window int) []Chunk {
	if window <= 0 {
		window = DefaultWindow
	}
	sents := SplitSentences(text)
	if len(sents) == 0 {
		return nil
	}
	if len(sents) <= window {
		return []Chunk{{DocID: docID, Seq: 0, Text: strings.Join(sents, " ")}}
	}
	out := make([]Chunk, 0, len(sents)-window+1)
	for i := 0; i+window <= len(sents); i++ {
		out = append(out, Chunk{
			DocID: docID,
			Seq:   i,
			Text:  strings.Join(sents[i:i+window], " "),
		})
	}
	return out
}
