package chunk

import (
	"reflect"
	"strings"
	"testing"

	"factcheck/internal/text"
)

// slidingJoin is the retired strings.Join implementation of Sliding, kept
// as the differential reference for the offset-based rewrite.
func slidingJoin(docID, t string, window int) []Chunk {
	if window <= 0 {
		window = DefaultWindow
	}
	sents := SplitSentences(t)
	if len(sents) == 0 {
		return nil
	}
	if len(sents) <= window {
		return []Chunk{{DocID: docID, Seq: 0, Text: strings.Join(sents, " ")}}
	}
	out := make([]Chunk, 0, len(sents)-window+1)
	for i := 0; i+window <= len(sents); i++ {
		out = append(out, Chunk{
			DocID: docID,
			Seq:   i,
			Text:  strings.Join(sents[i:i+window], " "),
		})
	}
	return out
}

// splitCases mirrors the synthetic corpus's body shapes: multi-space runs,
// terminator-free tails, empty and whitespace-only bodies.
var splitCases = []string{
	"",
	"   ",
	"One.",
	"One. Two. Three.",
	"A question? An exclamation! A statement.",
	"No terminator at end",
	"Marie Curie was married to Pierre Curie. Multiple records agree on this point. Archivists consider the records largely consistent. This page is part of a curated collection. Readers frequently consult this entry.",
	"Contrary to some claims, it is not the case that X plays for Y.  Double  spaced.  tail fragment",
	"S1. S2. S3. S4. S5. S6. S7. S8. S9. S10.",
}

// TestSlidingMatchesJoinReference pins the rewrite byte-identical to the
// retired per-window strings.Join across window sizes, including the
// degenerate ones.
func TestSlidingMatchesJoinReference(t *testing.T) {
	for _, tc := range splitCases {
		for _, w := range []int{-1, 0, 1, 2, 3, 5, 50} {
			got := Sliding("doc", tc, w)
			want := slidingJoin("doc", tc, w)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Sliding(%q, w=%d) = %#v, want %#v", tc, w, got, want)
			}
		}
	}
}

// TestSplitWindowsShareBacking asserts the zero-copy property: every chunk
// of a multi-sentence document is a substring of the one Joined string.
func TestSplitWindowsShareBacking(t *testing.T) {
	sp := NewSplit("S1. S2. S3. S4. S5.")
	for _, c := range sp.Windows("d", 3) {
		if !strings.Contains(sp.Joined, c.Text) {
			t.Errorf("chunk %q not a substring of Joined %q", c.Text, sp.Joined)
		}
	}
	if sp.Sentences() != 5 {
		t.Errorf("Sentences = %d, want 5", sp.Sentences())
	}
}

// TestWindowVecsMatchSparseEmbed pins each precomputed window vector
// bit-identical to sparse-embedding the matching chunk text directly.
func TestWindowVecsMatchSparseEmbed(t *testing.T) {
	for _, tc := range splitCases {
		for _, w := range []int{1, 2, 3, 7} {
			sp := NewSplit(tc)
			chunks := sp.Windows("d", w)
			vecs := sp.WindowVecs(w)
			if len(chunks) != len(vecs) {
				t.Fatalf("case %q w=%d: %d chunks vs %d vecs", tc, w, len(chunks), len(vecs))
			}
			for i := range chunks {
				want := text.SparseEmbed(chunks[i].Text)
				if !reflect.DeepEqual(vecs[i], want) {
					t.Errorf("case %q w=%d chunk %d: vec mismatch", tc, w, i)
				}
			}
		}
	}
}

func TestWindowVecsDefaultAndEmpty(t *testing.T) {
	if got := NewSplit("").WindowVecs(3); got != nil {
		t.Errorf("empty WindowVecs = %v, want nil", got)
	}
	sp := NewSplit("A one. B two. C three. D four.")
	if got := sp.WindowVecs(0); len(got) != 2 { // window defaults to 3
		t.Errorf("default window vecs = %d, want 2", len(got))
	}
}

var benchBody = "Entity one was born in City three. Multiple records agree on this point. " +
	"Archivists consider the records about the subject largely consistent. " +
	"This page is part of a curated collection of reference material. " +
	"Readers frequently consult this entry for background information. " +
	"The subject appears in multiple regional registries."

func BenchmarkSliding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sliding("d", benchBody, 3)
	}
}

func BenchmarkSlidingJoinReference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		slidingJoin("d", benchBody, 3)
	}
}

func BenchmarkSplitWindowsWarm(b *testing.B) {
	sp := NewSplit(benchBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Windows("d", 3)
	}
}
