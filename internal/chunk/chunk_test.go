package chunk

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitSentences(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"One. Two. Three.", 3},
		{"A question? An exclamation! A statement.", 3},
		{"No terminator at end", 1},
		{"", 0},
		{"   ", 0},
		{"Trailing fragment. tail", 2},
	}
	for _, tc := range tests {
		if got := SplitSentences(tc.in); len(got) != tc.want {
			t.Errorf("SplitSentences(%q) = %d sentences (%v), want %d", tc.in, len(got), got, tc.want)
		}
	}
}

func TestSlidingBasic(t *testing.T) {
	text := "S1. S2. S3. S4. S5."
	chunks := Sliding("doc1", text, 3)
	if len(chunks) != 3 { // 5 - 3 + 1
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if chunks[0].Text != "S1. S2. S3." {
		t.Errorf("chunk 0 = %q", chunks[0].Text)
	}
	if chunks[2].Text != "S3. S4. S5." {
		t.Errorf("chunk 2 = %q", chunks[2].Text)
	}
	for i, c := range chunks {
		if c.Seq != i || c.DocID != "doc1" {
			t.Errorf("chunk %d metadata wrong: %+v", i, c)
		}
	}
}

func TestSlidingOverlapInvariant(t *testing.T) {
	text := "A1. B2. C3. D4. E5. F6."
	chunks := Sliding("d", text, 3)
	// Consecutive chunks share window-1 sentences.
	for i := 1; i < len(chunks); i++ {
		prev := SplitSentences(chunks[i-1].Text)
		cur := SplitSentences(chunks[i].Text)
		if len(prev) != 3 || len(cur) != 3 {
			t.Fatalf("window size violated: %d/%d", len(prev), len(cur))
		}
		if prev[1] != cur[0] || prev[2] != cur[1] {
			t.Fatalf("overlap broken between chunk %d and %d", i-1, i)
		}
	}
}

func TestSlidingShortDocument(t *testing.T) {
	chunks := Sliding("d", "Only one sentence.", 3)
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1", len(chunks))
	}
	if chunks[0].Text != "Only one sentence." {
		t.Errorf("chunk = %q", chunks[0].Text)
	}
}

func TestSlidingEmpty(t *testing.T) {
	if got := Sliding("d", "", 3); got != nil {
		t.Errorf("Sliding empty = %v, want nil", got)
	}
}

func TestSlidingDefaultWindow(t *testing.T) {
	text := "A. B. C. D."
	if got := Sliding("d", text, 0); len(got) != 2 { // window defaults to 3
		t.Errorf("default window chunks = %d, want 2", len(got))
	}
}

func TestSlidingCoverageProperty(t *testing.T) {
	// Every sentence of the input appears in at least one chunk.
	f := func(n uint8) bool {
		count := int(n%20) + 1
		var b strings.Builder
		for i := 0; i < count; i++ {
			b.WriteString("Sentence")
			b.WriteString(string(rune('A' + i%26)))
			b.WriteString(". ")
		}
		sents := SplitSentences(b.String())
		chunks := Sliding("d", b.String(), 3)
		joined := ""
		for _, c := range chunks {
			joined += c.Text + " "
		}
		for _, s := range sents {
			if !strings.Contains(joined, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingChunkCountProperty(t *testing.T) {
	// For n >= window: chunks == n - window + 1; else 1 (n > 0).
	f := func(n uint8, w uint8) bool {
		count := int(n%30) + 1
		window := int(w%5) + 1
		var b strings.Builder
		for i := 0; i < count; i++ {
			b.WriteString("S. ")
		}
		chunks := Sliding("d", b.String(), window)
		if count <= window {
			return len(chunks) == 1
		}
		return len(chunks) == count-window+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
