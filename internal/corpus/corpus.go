// Package corpus synthesises the per-fact web document collections that
// substitute for the paper's 2M+ Google-SERP crawl (§4.1). For every
// benchmark fact it deterministically generates a pool of documents with
// the published macro-statistics — count distribution (mean ≈154.5, median
// 160, max 337, some facts with 0), ≈13% empty-extraction rate, and a share
// of original-KG source pages (Wikipedia-style) that the pipeline must
// filter to avoid circular verification.
//
// Document *stance* (supports / refutes / neutral / unrelated) is assigned
// at generation time from the fact's gold label and the dataset's evidence
// quality, so retrieval behaviour emerges from corpus composition exactly as
// it does from the real web: true facts are mostly corroborated, corrupted
// facts are contradicted by pages stating the true value, and
// schema-diverse DBpedia facts attract noisier pools.
package corpus

import (
	"fmt"
	"math"
	"strings"

	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/kg"
	"factcheck/internal/text"
	"factcheck/internal/verbalize"
)

// Stance classifies what a document says about the asserted fact.
type Stance int

// Document stances.
const (
	// StanceUnrelated documents share no assertion with the fact.
	StanceUnrelated Stance = iota
	// StanceNeutral documents mention the subject without asserting or
	// denying the fact (the paper's E1 "context missing details" case).
	StanceNeutral
	// StanceSupport documents assert the fact.
	StanceSupport
	// StanceRefute documents contradict the fact (usually by asserting the
	// true value instead).
	StanceRefute
)

// String returns the stance name.
func (s Stance) String() string {
	switch s {
	case StanceSupport:
		return "support"
	case StanceRefute:
		return "refute"
	case StanceNeutral:
		return "neutral"
	default:
		return "unrelated"
	}
}

// Document is one synthetic webpage of a fact's retrieval pool. Metadata is
// materialised eagerly; full text is generated lazily via Generator.Text to
// keep full-corpus statistics cheap (2M documents are never held at once).
type Document struct {
	ID     string
	URL    string
	Host   string
	Title  string
	Stance Stance
	// Empty marks extraction failures: the page was retrieved but yielded
	// no text (≈13% of the corpus).
	Empty bool
	// FromSKG marks pages originating from the KG's own source set (e.g.
	// Wikipedia for DBpedia facts); these must be filtered before use.
	FromSKG bool
	// Seq is the document's index within its fact pool.
	Seq int
	// FactID is the owning fact.
	FactID string
}

// hosts is the pool of synthetic publishers. The first entry is the
// KG-source host (Wikipedia stand-in) used for FromSKG pages.
var hosts = []string{
	"en.wikipedia.org",
	"factsarchive.net",
	"encyclo-reference.org",
	"worldrecordsdaily.com",
	"the-chronicle-herald.net",
	"biograph-online.org",
	"knowledge-hub.io",
	"openfacts.example.org",
	"daily-gazette.net",
	"historic-registry.org",
	"culture-index.net",
	"sports-ledger.com",
}

// WorldView is the narrow interface corpus needs from the generating world:
// the set of true objects for a (subject, relation) pair, consulted when
// writing refutation documents that state the true value.
type WorldView interface {
	TrueObjects(sLocal, relName string) map[string]bool
}

// EvidenceProfile sets the per-document probability that a pool document
// supports or refutes a fact, split by the fact's gold label. The gap
// between (SupportTrue, RefuteFalse) and their cross terms controls how
// discriminative web evidence is for the dataset: FactBench and YAGO facts
// attract clean corroboration, while DBpedia's schema-diverse tail facts
// yield thin, partly contradictory evidence — the paper's finding 2.
type EvidenceProfile struct {
	SupportTrue  float64 // P(doc supports | fact true)
	RefuteTrue   float64 // P(doc refutes | fact true)  — stray misinformation
	SupportFalse float64 // P(doc supports | fact false) — echo of the error
	RefuteFalse  float64 // P(doc refutes | fact false) — pages with the true value
}

// Generator produces document pools. It is stateless apart from the
// configuration; all randomness is keyed by fact and document identity.
type Generator struct {
	// World supplies true values for refutation documents. May be nil, in
	// which case refutations use explicit negation only.
	World WorldView
	// Evidence maps dataset name -> evidence profile.
	Evidence map[dataset.Name]EvidenceProfile
	// EmptyRate is the extraction-failure probability (paper: 0.13).
	EmptyRate float64
	// SKGRate is the fraction of pool documents that come from the KG's own
	// source pages and must be filtered out.
	SKGRate float64
	// MeanDocs / StdDocs parameterise the per-fact pool-size distribution
	// (paper: mean 154.51, median 160, max 337).
	MeanDocs float64
	StdDocs  float64
	MaxDocs  int
}

// NewGenerator returns a Generator calibrated to the paper's published
// corpus statistics. w may be nil (refutations then rely on explicit
// negation sentences only).
func NewGenerator(w WorldView) *Generator {
	return &Generator{
		World: w,
		Evidence: map[dataset.Name]EvidenceProfile{
			// FactBench facts are popular head knowledge: clean, plentiful
			// corroboration and contradiction.
			dataset.FactBench: {SupportTrue: 0.07, RefuteTrue: 0.006, SupportFalse: 0.008, RefuteFalse: 0.06},
			// YAGO's rare false facts are crowd-annotation misses: the web
			// largely *echoes* them (SupportFalse > RefuteFalse), which is
			// why RAG cannot rescue F1(F) on YAGO.
			dataset.YAGO: {SupportTrue: 0.12, RefuteTrue: 0.004, SupportFalse: 0.04, RefuteFalse: 0.012},
			// DBpedia's schema-diverse tail facts attract thin evidence.
			dataset.DBpedia: {SupportTrue: 0.026, RefuteTrue: 0.006, SupportFalse: 0.006, RefuteFalse: 0.024},
		},
		EmptyRate: 0.13,
		SKGRate:   0.06,
		MeanDocs:  155,
		StdDocs:   58,
		MaxDocs:   337,
	}
}

// PoolSize returns the number of documents in the fact's pool. Popular
// facts attract slightly larger pools; a small fraction of facts retrieve
// nothing (paper: min d_t = 0).
func (g *Generator) PoolSize(f *dataset.Fact) int {
	if det.Bool(0.004, "pool-zero", f.ID) {
		return 0
	}
	mean := g.MeanDocs * (0.97 + 0.25*f.Popularity)
	n := det.Gaussian(mean, g.StdDocs, "pool-size", f.ID)
	if n < 1 {
		n = 1
	}
	if n > float64(g.MaxDocs) {
		n = float64(g.MaxDocs)
	}
	return int(math.Round(n))
}

// stanceMix returns the per-document probabilities of (support, refute,
// neutral) for the fact; the remainder is unrelated noise.
func (g *Generator) stanceMix(f *dataset.Fact) (support, refute, neutral float64) {
	ep, ok := g.Evidence[f.Dataset]
	if !ok {
		ep = EvidenceProfile{SupportTrue: 0.15, RefuteTrue: 0.01, SupportFalse: 0.01, RefuteFalse: 0.12}
	}
	pop := 0.5 + 0.5*f.Popularity // tail facts have thinner evidence
	if f.Gold {
		support = ep.SupportTrue * pop
		refute = ep.RefuteTrue
	} else {
		support = ep.SupportFalse
		refute = ep.RefuteFalse * pop
	}
	neutral = 0.35
	return support, refute, neutral
}

// Docs generates the full metadata pool for the fact.
func (g *Generator) Docs(f *dataset.Fact) []*Document {
	n := g.PoolSize(f)
	out := make([]*Document, 0, n)
	ps, pr, pn := g.stanceMix(f)
	for i := 0; i < n; i++ {
		out = append(out, g.doc(f, i, ps, pr, pn))
	}
	return out
}

func (g *Generator) doc(f *dataset.Fact, i int, ps, pr, pn float64) *Document {
	id := fmt.Sprintf("%s-d%04d", f.ID, i)
	u := det.Uniform("stance", id)
	var st Stance
	switch {
	case u < ps:
		st = StanceSupport
	case u < ps+pr:
		st = StanceRefute
	case u < ps+pr+pn:
		st = StanceNeutral
	default:
		st = StanceUnrelated
	}
	fromSKG := det.Bool(g.SKGRate, "skg", id)
	host := hosts[1+det.IntN(len(hosts)-1, "host", id)]
	if fromSKG {
		host = hosts[0]
		// KG source pages always support the KG's (possibly wrong) claim —
		// that is precisely the circularity the filter exists to break.
		st = StanceSupport
	}
	empty := det.Bool(g.EmptyRate, "empty", id)
	title := g.title(f, st, id)
	return &Document{
		ID:      id,
		URL:     fmt.Sprintf("https://%s/%s/%s", host, slug(f.Subject.Label), fmt.Sprintf("p%04d", i)),
		Host:    host,
		Title:   title,
		Stance:  st,
		Empty:   empty,
		FromSKG: fromSKG,
		Seq:     i,
		FactID:  f.ID,
	}
}

func (g *Generator) title(f *dataset.Fact, st Stance, id string) string {
	switch st {
	case StanceSupport, StanceRefute:
		return fmt.Sprintf("%s and %s: the record", f.Subject.Label, f.Object.Label)
	case StanceNeutral:
		return fmt.Sprintf("%s - profile and notes", f.Subject.Label)
	default:
		fillers := []string{"Regional news roundup", "Archive digest", "Weekly miscellany", "Site index", "Community bulletin"}
		return fillers[det.IntN(len(fillers), "title", id)]
	}
}

// Text lazily generates the document body. Empty documents return "".
// Support documents contain the asserted sentence; refute documents assert
// the true value (when the world knows one) and explicitly contradict the
// claim; neutral documents mention the subject only.
func (g *Generator) Text(f *dataset.Fact, d *Document) string {
	if d.Empty {
		return ""
	}
	var b strings.Builder
	sentence := verbalize.Sentence(f)
	filler := func(k string) string {
		subj := f.Subject.Label
		options := []string{
			subj + " has been covered by several publications over the years.",
			"Archivists consider the records about " + subj + " largely consistent.",
			"This page is part of a curated collection of reference material.",
			"Readers frequently consult this entry for background information.",
			subj + " appears in multiple regional registries.",
		}
		return options[det.IntN(len(options), "filler", d.ID, k)]
	}
	switch d.Stance {
	case StanceSupport:
		b.WriteString(sentence)
		b.WriteString(" ")
		b.WriteString("Multiple records agree on this point. ")
		b.WriteString(filler("a"))
	case StanceRefute:
		trueObj := g.trueObjectLabel(f)
		if trueObj != "" {
			b.WriteString(fmt.Sprintf("%s %s %s. ", f.Subject.Label, f.Relation.Phrase, trueObj))
		}
		b.WriteString(fmt.Sprintf("Contrary to some claims, it is not the case that %s %s %s. ",
			f.Subject.Label, f.Relation.Phrase, f.Object.Label))
		b.WriteString(filler("b"))
	case StanceNeutral:
		b.WriteString(fmt.Sprintf("%s is discussed in this article. ", f.Subject.Label))
		b.WriteString(filler("c"))
		b.WriteString(" ")
		b.WriteString(filler("d"))
	default:
		b.WriteString("General interest material unrelated to the query. ")
		b.WriteString(filler("e"))
	}
	return b.String()
}

// trueObjectLabel returns the label of a true object for the fact's
// (subject, relation), or "" when the world records none — e.g. the subject
// of a corrupted-subject negative may genuinely lack the relation. When
// several true objects exist the lexicographically smallest is used so the
// generated text is deterministic.
func (g *Generator) trueObjectLabel(f *dataset.Fact) string {
	if g.World == nil {
		return ""
	}
	objs := g.World.TrueObjects(kg.LocalName(f.Subject.IRI), f.Relation.Name)
	best := ""
	for local := range objs {
		if best == "" || local < best {
			best = local
		}
	}
	return strings.ReplaceAll(best, "_", " ")
}

// Materialized is one pool document with its generated body text and term
// stream. Terms are the content tokens of "Title + body" — the exact token
// stream text.Embed would produce for the document — emitted here so the
// search index can be built with a single tokenize pass instead of
// re-tokenizing every materialised document.
type Materialized struct {
	Doc  *Document
	Text string
	// Terms is the stopword-filtered token stream of Title + " " + Text;
	// text.EmbedTokens(Terms) equals text.Embed(Title + " " + Text) bit for
	// bit, which is the determinism contract the indexed ranking relies on.
	Terms []string
	// Vec is the precomputed sparse embedding of the term stream —
	// bit-identical to text.SparseEmbed(Title + " " + Text) — so the index
	// builder and the document reranker consume it instead of re-embedding
	// the document per query or per fact.
	Vec text.SparseVector
}

// Materialize generates the fact's full pool — metadata, body text and term
// streams — in pool order. It is the bulk entry point the search engine's
// shard store uses; Docs/Text remain for callers that only need one side.
func (g *Generator) Materialize(f *dataset.Fact) []Materialized {
	docs := g.Docs(f)
	out := make([]Materialized, len(docs))
	for i, d := range docs {
		body := g.Text(f, d)
		terms := text.ContentTokens(d.Title + " " + body)
		out[i] = Materialized{
			Doc:   d,
			Text:  body,
			Terms: terms,
			Vec:   text.SparseEmbedTokens(terms),
		}
	}
	return out
}

// StreamDoc is one live-ingestion append document: the streaming side of
// the corpus, generated with the same stance machinery as the base pool
// but keyed under a distinct namespace ("-sNNNN"), so a stream *extends* a
// fact's evidence deterministically rather than replaying it. Stream
// documents model pages arriving from the live web after the crawl: they
// are never extraction failures and never KG source pages.
type StreamDoc struct {
	URL   string `json:"url"`
	Host  string `json:"host"`
	Title string `json:"title"`
	Text  string `json:"text"`
}

// Stream generates the i-th streamed document for the fact. Output depends
// only on (fact, i), so any consumer replaying the same stream prefix gets
// byte-identical documents — the property the incremental-vs-cold golden
// gate rests on.
func (g *Generator) Stream(f *dataset.Fact, i int) StreamDoc {
	id := fmt.Sprintf("%s-s%04d", f.ID, i)
	ps, pr, pn := g.stanceMix(f)
	u := det.Uniform("stance", id)
	var st Stance
	switch {
	case u < ps:
		st = StanceSupport
	case u < ps+pr:
		st = StanceRefute
	case u < ps+pr+pn:
		st = StanceNeutral
	default:
		st = StanceUnrelated
	}
	host := hosts[1+det.IntN(len(hosts)-1, "host", id)]
	title := g.title(f, st, id)
	d := &Document{ID: id, Stance: st, FactID: f.ID}
	return StreamDoc{
		URL:   fmt.Sprintf("https://%s/%s/s%04d", host, slug(f.Subject.Label), i),
		Host:  host,
		Title: title,
		Text:  g.Text(f, d),
	}
}

// Meta summarises a fact's pool without generating text.
type Meta struct {
	Count   int
	Empty   int
	Support int
	Refute  int
	Neutral int
	SKG     int
}

// MetaFor computes pool metadata for the fact.
func (g *Generator) MetaFor(f *dataset.Fact) Meta {
	var m Meta
	for _, d := range g.Docs(f) {
		m.Count++
		if d.Empty {
			m.Empty++
		}
		if d.FromSKG {
			m.SKG++
		}
		switch d.Stance {
		case StanceSupport:
			m.Support++
		case StanceRefute:
			m.Refute++
		case StanceNeutral:
			m.Neutral++
		}
	}
	return m
}

func slug(s string) string {
	s = strings.ToLower(strings.ReplaceAll(s, " ", "-"))
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
