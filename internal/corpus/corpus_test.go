package corpus

import (
	"strings"
	"testing"

	"factcheck/internal/dataset"
	"factcheck/internal/text"
	"factcheck/internal/world"
)

func fixture(t *testing.T) (*world.World, map[dataset.Name]*dataset.Dataset, *Generator) {
	t.Helper()
	w := world.New(world.SmallConfig())
	ds := dataset.Universe(w, 0.2)
	return w, ds, NewGenerator(w)
}

func TestDocsDeterministic(t *testing.T) {
	_, ds, g := fixture(t)
	f := ds[dataset.FactBench].Facts[0]
	a := g.Docs(f)
	b := g.Docs(f)
	if len(a) != len(b) {
		t.Fatalf("pool sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Stance != b[i].Stance || a[i].Empty != b[i].Empty {
			t.Fatalf("doc %d differs", i)
		}
	}
}

func TestPoolSizeDistribution(t *testing.T) {
	_, ds, g := fixture(t)
	var total, maxN int
	minN := 1 << 30
	n := 0
	for _, d := range ds {
		for _, f := range d.Facts {
			c := g.PoolSize(f)
			total += c
			if c < minN {
				minN = c
			}
			if c > maxN {
				maxN = c
			}
			n++
		}
	}
	mean := float64(total) / float64(n)
	if mean < 120 || mean > 180 {
		t.Errorf("mean pool size = %.1f, want ~155", mean)
	}
	if maxN > 337 {
		t.Errorf("max pool size = %d, want <= 337", maxN)
	}
}

func TestEmptyRate(t *testing.T) {
	_, ds, g := fixture(t)
	empty, total := 0, 0
	for _, f := range ds[dataset.DBpedia].Facts {
		m := g.MetaFor(f)
		empty += m.Empty
		total += m.Count
	}
	rate := float64(empty) / float64(total)
	if rate < 0.10 || rate > 0.16 {
		t.Errorf("empty rate = %.3f, want ~0.13", rate)
	}
}

func TestStanceCompositionTracksGold(t *testing.T) {
	_, ds, g := fixture(t)
	var supTrue, refTrue, supFalse, refFalse, nTrue, nFalse int
	for _, f := range ds[dataset.FactBench].Facts {
		m := g.MetaFor(f)
		if f.Gold {
			supTrue += m.Support - m.SKG // SKG docs are forced support
			refTrue += m.Refute
			nTrue += m.Count
		} else {
			supFalse += m.Support - m.SKG
			refFalse += m.Refute
			nFalse += m.Count
		}
	}
	if nTrue == 0 || nFalse == 0 {
		t.Fatal("degenerate dataset")
	}
	if float64(supTrue)/float64(nTrue) <= float64(refTrue)/float64(nTrue) {
		t.Error("true facts are not predominantly supported")
	}
	if float64(refFalse)/float64(nFalse) <= float64(supFalse)/float64(nFalse) {
		t.Error("false facts are not predominantly refuted")
	}
}

func TestSupportTextContainsAssertion(t *testing.T) {
	_, ds, g := fixture(t)
	f := ds[dataset.FactBench].Facts[0]
	found := false
	for _, d := range g.Docs(f) {
		if d.Stance != StanceSupport || d.Empty {
			continue
		}
		txt := g.Text(f, d)
		if !strings.Contains(txt, f.Subject.Label) || !strings.Contains(txt, f.Object.Label) {
			t.Fatalf("support doc %s does not assert the fact: %q", d.ID, txt)
		}
		found = true
	}
	if !found {
		t.Skip("fact has no non-empty support docs; other tests cover composition")
	}
}

func TestRefuteTextContradicts(t *testing.T) {
	_, ds, g := fixture(t)
	checked := 0
	for _, f := range ds[dataset.FactBench].Facts {
		if f.Gold {
			continue
		}
		for _, d := range g.Docs(f) {
			if d.Stance != StanceRefute || d.Empty {
				continue
			}
			txt := g.Text(f, d)
			if !strings.Contains(txt, "not the case that") {
				t.Fatalf("refute doc %s lacks explicit contradiction: %q", d.ID, txt)
			}
			checked++
		}
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no refute docs found for any false fact")
	}
}

func TestEmptyDocsHaveNoText(t *testing.T) {
	_, ds, g := fixture(t)
	f := ds[dataset.FactBench].Facts[1]
	for _, d := range g.Docs(f) {
		if d.Empty && g.Text(f, d) != "" {
			t.Fatalf("empty doc %s has text", d.ID)
		}
	}
}

func TestSKGDocsUseWikipediaHost(t *testing.T) {
	_, ds, g := fixture(t)
	for _, f := range ds[dataset.FactBench].Facts[:20] {
		for _, d := range g.Docs(f) {
			if d.FromSKG && d.Host != "en.wikipedia.org" {
				t.Fatalf("SKG doc %s on host %s", d.ID, d.Host)
			}
			if !d.FromSKG && d.Host == "en.wikipedia.org" {
				t.Fatalf("non-SKG doc %s on the KG source host", d.ID)
			}
		}
	}
}

func TestDocURLsWellFormed(t *testing.T) {
	_, ds, g := fixture(t)
	f := ds[dataset.YAGO].Facts[0]
	for _, d := range g.Docs(f) {
		if !strings.HasPrefix(d.URL, "https://"+d.Host+"/") {
			t.Fatalf("URL %q does not match host %q", d.URL, d.Host)
		}
	}
}

func TestMetaMatchesDocs(t *testing.T) {
	_, ds, g := fixture(t)
	f := ds[dataset.DBpedia].Facts[0]
	m := g.MetaFor(f)
	docs := g.Docs(f)
	if m.Count != len(docs) {
		t.Fatalf("meta count %d != docs %d", m.Count, len(docs))
	}
	sup := 0
	for _, d := range docs {
		if d.Stance == StanceSupport {
			sup++
		}
	}
	if m.Support != sup {
		t.Fatalf("meta support %d != counted %d", m.Support, sup)
	}
}

func TestNilWorldGenerator(t *testing.T) {
	_, ds, _ := fixture(t)
	g := NewGenerator(nil)
	var f *dataset.Fact
	for _, ff := range ds[dataset.FactBench].Facts {
		if !ff.Gold {
			f = ff
			break
		}
	}
	// Text generation must not panic and refutations must still contradict.
	for _, d := range g.Docs(f) {
		if d.Stance == StanceRefute && !d.Empty {
			if txt := g.Text(f, d); !strings.Contains(txt, "not the case") {
				t.Fatalf("nil-world refutation lacks negation: %q", txt)
			}
			return
		}
	}
}

func TestStanceString(t *testing.T) {
	if StanceSupport.String() != "support" || StanceRefute.String() != "refute" ||
		StanceNeutral.String() != "neutral" || StanceUnrelated.String() != "unrelated" {
		t.Error("stance names wrong")
	}
}

func TestSlug(t *testing.T) {
	if got := slug("Alexander III of Russia"); got != "alexander-iii-of-russia" {
		t.Errorf("slug = %q", got)
	}
}

// TestMaterializeMatchesDocsAndText asserts Materialize is the bulk form of
// Docs+Text, and that its term streams reproduce exactly what an embedder
// tokenizing Title+" "+body would see (the search index's input contract).
func TestMaterializeMatchesDocsAndText(t *testing.T) {
	_, ds, g := fixture(t)
	f := ds[dataset.FactBench].Facts[0]
	ms := g.Materialize(f)
	docs := g.Docs(f)
	if len(ms) != len(docs) {
		t.Fatalf("Materialize returned %d docs, Docs returned %d", len(ms), len(docs))
	}
	for i, m := range ms {
		if m.Doc.ID != docs[i].ID {
			t.Fatalf("doc %d: id %q != %q", i, m.Doc.ID, docs[i].ID)
		}
		if want := g.Text(f, docs[i]); m.Text != want {
			t.Errorf("doc %d: text differs from Text()", i)
		}
		want := text.ContentTokens(m.Doc.Title + " " + m.Text)
		if len(m.Terms) != len(want) {
			t.Fatalf("doc %d: %d terms, want %d", i, len(m.Terms), len(want))
		}
		for j := range want {
			if m.Terms[j] != want[j] {
				t.Fatalf("doc %d term %d: %q != %q", i, j, m.Terms[j], want[j])
			}
		}
		if text.EmbedTokens(m.Terms) != text.Embed(m.Doc.Title+" "+m.Text) {
			t.Errorf("doc %d: EmbedTokens(Terms) differs from Embed(title+body)", i)
		}
	}
}
