package accuracy

import (
	"context"
	"math"
	"testing"

	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

func fixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	w := world.New(world.SmallConfig())
	return dataset.Build(w, dataset.FactBench, 0.3)
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := Wilson(80, 100, 0.95)
	if lo >= 0.8 || hi <= 0.8 {
		t.Errorf("Wilson(80/100) = [%f, %f], must contain 0.8", lo, hi)
	}
	if hi-lo > 0.2 {
		t.Errorf("interval too wide: %f", hi-lo)
	}
	// Extreme proportion: interval stays inside [0,1] and is asymmetric.
	lo, hi = Wilson(99, 100, 0.95)
	if hi > 1 || lo < 0 {
		t.Errorf("Wilson(99/100) out of range: [%f, %f]", lo, hi)
	}
	if lo > 0.99 {
		t.Errorf("lower bound %f too tight for n=100", lo)
	}
	// Degenerate inputs.
	if lo, hi = Wilson(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0/0) = [%f, %f], want [0, 1]", lo, hi)
	}
}

func TestWilsonWidthShrinksWithN(t *testing.T) {
	_, hi1 := Wilson(8, 10, 0.95)
	lo1, _ := Wilson(8, 10, 0.95)
	lo2, hi2 := Wilson(800, 1000, 0.95)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Error("interval did not shrink with larger n")
	}
}

func TestOracleAnnotator(t *testing.T) {
	d := fixture(t)
	o := Oracle{}
	for _, f := range d.Facts[:20] {
		label, cost, err := o.Annotate(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		if label != f.Gold {
			t.Fatal("oracle mislabeled")
		}
		if cost.Time < 2*60*1e9 || cost.Tokens != 0 {
			t.Errorf("oracle cost implausible: %+v", cost)
		}
	}
}

func TestSRSWithOracleCoversTruth(t *testing.T) {
	d := fixture(t)
	mu := d.Stats().GoldAccuracy
	est, err := SRS(context.Background(), d, Oracle{}, 200, 0.95, "seed-1")
	if err != nil {
		t.Fatal(err)
	}
	if est.SampleSize != 200 {
		t.Errorf("sample size %d", est.SampleSize)
	}
	if !est.Contains(mu) {
		t.Errorf("interval [%f, %f] misses true mu %f", est.Lower, est.Upper, mu)
	}
	if math.Abs(est.MuHat-mu) > 0.1 {
		t.Errorf("estimate %f far from %f", est.MuHat, mu)
	}
	if est.Cost.Time <= 0 {
		t.Error("no cost accounted")
	}
}

func TestSRSDeterministic(t *testing.T) {
	d := fixture(t)
	a, err := SRS(context.Background(), d, Oracle{}, 50, 0.95, "seed-x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := SRS(context.Background(), d, Oracle{}, 50, 0.95, "seed-x")
	if err != nil {
		t.Fatal(err)
	}
	if a.MuHat != b.MuHat || a.Cost != b.Cost {
		t.Error("SRS not deterministic")
	}
	c, err := SRS(context.Background(), d, Oracle{}, 50, 0.95, "seed-y")
	if err != nil {
		t.Fatal(err)
	}
	if a.MuHat == c.MuHat && a.Lower == c.Lower {
		t.Log("different seeds produced identical estimates (possible, unlikely)")
	}
}

func TestStratifiedWithOracle(t *testing.T) {
	d := fixture(t)
	mu := d.Stats().GoldAccuracy
	est, err := Stratified(context.Background(), d, Oracle{}, 200, 0.95, "seed-2")
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "stratified" {
		t.Error("method label wrong")
	}
	if !est.Contains(mu) {
		t.Errorf("stratified interval [%f, %f] misses %f", est.Lower, est.Upper, mu)
	}
	// Every predicate stratum contributes at least one annotation.
	preds := map[string]bool{}
	for _, f := range d.Facts {
		preds[f.Relation.Name] = true
	}
	if est.SampleSize < len(preds) {
		t.Errorf("sample %d smaller than stratum count %d", est.SampleSize, len(preds))
	}
}

func TestLLMAnnotatorEstimate(t *testing.T) {
	d := fixture(t)
	mu := d.Stats().GoldAccuracy
	a := &LLMAnnotator{Model: llm.MustNew(llm.Gemma2), Verifier: strategy.GIV{FewShot: true}}
	est, err := SRS(context.Background(), d, a, 300, 0.95, "seed-3")
	if err != nil {
		t.Fatal(err)
	}
	// LLM annotation is biased but should land within 0.2 of the truth and
	// cost orders of magnitude less time than the expert.
	if math.Abs(est.MuHat-mu) > 0.2 {
		t.Errorf("LLM estimate %f too far from %f", est.MuHat, mu)
	}
	if est.Cost.Tokens == 0 {
		t.Error("LLM annotation reported no tokens")
	}
	oracle, err := SRS(context.Background(), d, Oracle{}, 300, 0.95, "seed-3")
	if err != nil {
		t.Fatal(err)
	}
	if est.Cost.Time >= oracle.Cost.Time/10 {
		t.Errorf("LLM annotation (%.0fs) not ≥10x cheaper than expert (%.0fs)",
			est.Cost.Time.Seconds(), oracle.Cost.Time.Seconds())
	}
}

func TestAnnotatorNames(t *testing.T) {
	if (Oracle{}).Name() != "human-expert" {
		t.Error("oracle name wrong")
	}
	a := &LLMAnnotator{Model: llm.MustNew(llm.Mistral), Verifier: strategy.DKA{}}
	if a.Name() != "mistral:7b/DKA" {
		t.Errorf("annotator name %q", a.Name())
	}
}

func TestRequiredSampleSize(t *testing.T) {
	n := RequiredSampleSize(0.05, 0.95)
	if n < 380 || n > 390 {
		t.Errorf("n for ±5%% at 95%% = %d, want ~385", n)
	}
	if RequiredSampleSize(0, 0.95) != 0 {
		t.Error("zero margin should return 0")
	}
	if RequiredSampleSize(0.05, 0.99) <= n {
		t.Error("higher confidence must need more samples")
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{Lower: 0.4, Upper: 0.6}
	if math.Abs(e.MarginOfError()-0.1) > 1e-9 {
		t.Errorf("margin %f", e.MarginOfError())
	}
	if !e.Contains(0.5) || e.Contains(0.7) {
		t.Error("Contains wrong")
	}
}

func TestSRSFullCensus(t *testing.T) {
	d := fixture(t)
	est, err := SRS(context.Background(), d, Oracle{}, 0, 0.95, "census")
	if err != nil {
		t.Fatal(err)
	}
	if est.SampleSize != len(d.Facts) {
		t.Errorf("census size %d != %d", est.SampleSize, len(d.Facts))
	}
	mu := d.Stats().GoldAccuracy
	if math.Abs(est.MuHat-mu) > 1e-9 {
		t.Errorf("census estimate %f != %f", est.MuHat, mu)
	}
}
