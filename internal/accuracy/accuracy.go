// Package accuracy implements sampling-based KG accuracy estimation — the
// methodology line behind the benchmark's datasets (Gao et al. [12],
// Marchesin & Silvello [36,37], and the DBpedia dataset paper [38]): draw a
// sample of triples, annotate them, and report the estimated accuracy µ̂
// with a confidence interval and the annotation cost.
//
// FactCheck's framing makes the annotator pluggable: a human expert (the
// paper's gold standard, several minutes per triple) or an LLM verifier
// (seconds per triple, imperfect). Comparing the two quantifies the paper's
// motivating question — can LLMs stand in for expert annotation at scale?
package accuracy

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

// Cost accumulates annotation expenditure.
type Cost struct {
	// Time is total annotation wall-clock (simulated).
	Time time.Duration
	// Tokens counts LLM tokens (0 for human annotation).
	Tokens int
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.Time += o.Time
	c.Tokens += o.Tokens
}

// Annotator labels one triple as true or false.
type Annotator interface {
	// Name identifies the annotator configuration.
	Name() string
	// Annotate returns the label assigned to the fact and its cost.
	Annotate(ctx context.Context, f *dataset.Fact) (bool, Cost, error)
}

// Oracle is the expert human annotator: always correct, expensive. The
// paper (§1): "verifying each individual triple can take several minutes".
type Oracle struct {
	// PerTriple is the expert's time per triple (default 3 minutes).
	PerTriple time.Duration
}

// Name implements Annotator.
func (Oracle) Name() string { return "human-expert" }

// Annotate implements Annotator.
func (o Oracle) Annotate(_ context.Context, f *dataset.Fact) (bool, Cost, error) {
	per := o.PerTriple
	if per == 0 {
		per = 3 * time.Minute
	}
	jitter := det.Jitter(per.Seconds(), 0.3, "oracle", f.ID)
	return f.Gold, Cost{Time: time.Duration(jitter * float64(time.Second))}, nil
}

// LLMAnnotator labels triples with a model under a verification strategy.
// Invalid responses default to "true" (the prevalent class), mirroring how
// an annotation pipeline would resolve unusable output.
type LLMAnnotator struct {
	Model    llm.Model
	Verifier strategy.Verifier
}

// Name implements Annotator.
func (a *LLMAnnotator) Name() string {
	return fmt.Sprintf("%s/%s", a.Model.Name(), a.Verifier.Method())
}

// Annotate implements Annotator.
func (a *LLMAnnotator) Annotate(ctx context.Context, f *dataset.Fact) (bool, Cost, error) {
	out, err := a.Verifier.Verify(ctx, a.Model, f)
	if err != nil {
		return false, Cost{}, err
	}
	label := out.Verdict == strategy.True || out.Verdict == strategy.Invalid
	return label, Cost{
		Time:   out.Latency,
		Tokens: out.PromptTokens + out.CompletionTokens,
	}, nil
}

// Estimate is a completed accuracy estimation.
type Estimate struct {
	Annotator string
	Method    string // "srs" or "stratified"
	// MuHat is the estimated accuracy; Lower/Upper its confidence bounds.
	MuHat, Lower, Upper float64
	// Confidence is the nominal level (e.g. 0.95).
	Confidence float64
	// SampleSize is the number of annotated triples.
	SampleSize int
	// Cost is the total annotation expenditure.
	Cost Cost
}

// MarginOfError returns half the interval width.
func (e Estimate) MarginOfError() float64 { return (e.Upper - e.Lower) / 2 }

// Contains reports whether the interval covers mu.
func (e Estimate) Contains(mu float64) bool { return mu >= e.Lower && mu <= e.Upper }

// zFor maps a confidence level to the normal quantile (two-sided).
func zFor(confidence float64) float64 {
	switch {
	case confidence >= 0.99:
		return 2.576
	case confidence >= 0.95:
		return 1.960
	case confidence >= 0.90:
		return 1.645
	default:
		return 1.282
	}
}

// Wilson returns the Wilson score interval for k successes out of n at the
// given confidence — the interval of choice for proportions near 0 or 1
// (YAGO's µ=0.99 breaks the normal approximation).
func Wilson(k, n int, confidence float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	z := zFor(confidence)
	p := float64(k) / float64(n)
	z2 := z * z
	nn := float64(n)
	den := 1 + z2/nn
	center := (p + z2/(2*nn)) / den
	half := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// SRS estimates accuracy by simple random sampling: n triples drawn without
// replacement, annotated, Wilson interval at the given confidence.
func SRS(ctx context.Context, d *dataset.Dataset, a Annotator, n int, confidence float64, seed string) (Estimate, error) {
	if n <= 0 || n > len(d.Facts) {
		n = len(d.Facts)
	}
	rng := det.Source("accuracy-srs", seed, string(d.Name))
	idx := rng.Perm(len(d.Facts))[:n]
	est := Estimate{Annotator: a.Name(), Method: "srs", Confidence: confidence, SampleSize: n}
	k := 0
	for _, i := range idx {
		label, cost, err := a.Annotate(ctx, d.Facts[i])
		if err != nil {
			return Estimate{}, fmt.Errorf("accuracy: srs: %w", err)
		}
		est.Cost.Add(cost)
		if label {
			k++
		}
	}
	est.MuHat = float64(k) / float64(n)
	est.Lower, est.Upper = Wilson(k, n, confidence)
	return est, nil
}

// Stratified estimates accuracy with proportional allocation over predicate
// strata (the design of Gao et al. for skewed KGs): each predicate stratum
// receives sample slots proportional to its size (at least one), estimates
// are combined by stratum weight, and the interval uses the stratified
// standard error.
func Stratified(ctx context.Context, d *dataset.Dataset, a Annotator, n int, confidence float64, seed string) (Estimate, error) {
	if n <= 0 || n > len(d.Facts) {
		n = len(d.Facts)
	}
	strata := map[string][]*dataset.Fact{}
	for _, f := range d.Facts {
		strata[f.Relation.Name] = append(strata[f.Relation.Name], f)
	}
	names := make([]string, 0, len(strata))
	for name := range strata {
		names = append(names, name)
	}
	sort.Strings(names)

	est := Estimate{Annotator: a.Name(), Method: "stratified", Confidence: confidence}
	total := float64(len(d.Facts))
	var muHat, varSum float64
	for _, name := range names {
		facts := strata[name]
		w := float64(len(facts)) / total
		nh := int(math.Round(w * float64(n)))
		if nh < 1 {
			nh = 1
		}
		if nh > len(facts) {
			nh = len(facts)
		}
		rng := det.Source("accuracy-strat", seed, string(d.Name), name)
		idx := rng.Perm(len(facts))[:nh]
		k := 0
		for _, i := range idx {
			label, cost, err := a.Annotate(ctx, facts[i])
			if err != nil {
				return Estimate{}, fmt.Errorf("accuracy: stratified: %w", err)
			}
			est.Cost.Add(cost)
			if label {
				k++
			}
		}
		ph := float64(k) / float64(nh)
		muHat += w * ph
		varSum += w * w * ph * (1 - ph) / float64(nh)
		est.SampleSize += nh
	}
	est.MuHat = muHat
	z := zFor(confidence)
	half := z * math.Sqrt(varSum)
	est.Lower = math.Max(0, muHat-half)
	est.Upper = math.Min(1, muHat+half)
	return est, nil
}

// RequiredSampleSize returns the SRS sample size needed for a target margin
// of error at the given confidence under worst-case variance (p = 0.5).
func RequiredSampleSize(margin, confidence float64) int {
	if margin <= 0 {
		return 0
	}
	z := zFor(confidence)
	return int(math.Ceil(z * z * 0.25 / (margin * margin)))
}
