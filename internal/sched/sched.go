// Package sched provides the benchmark's streaming grid scheduler: a
// bounded worker-pool executor over a flat queue of independent tasks.
// The core orchestrator enqueues the whole (dataset × method × model × fact)
// verification grid at once and lets a fixed set of workers drain it, so a
// slow cell no longer stalls the cells behind it the way the old
// cell-by-cell loop with a barrier after every cell did.
//
// Properties:
//
//   - deterministic dispatch: workers claim task indices in ascending
//     order, so a one-worker pool degenerates to a plain sequential loop
//     and results are reproducible at any parallelism (tasks write to
//     caller-owned, index-addressed slots);
//   - fail-fast: the first task error cancels the run context, workers
//     stop claiming new tasks, and every in-flight task is drained before
//     Run returns — no goroutine ever outlives the call;
//   - error aggregation: all task errors are collected, ordered by task
//     index, and joined, so concurrent failures surface deterministically.
package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// Pool executes flat task queues with a bounded number of workers.
// A Pool is stateless between runs and safe for concurrent use.
type Pool struct {
	workers int
}

// New returns a pool with the given worker bound; values below one are
// clamped to a single worker (strictly sequential execution).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// indexedError pairs a task error with the index that produced it so the
// aggregate error is ordered deterministically.
type indexedError struct {
	index int
	err   error
}

// Run executes fn for every index in [0, n) on the pool's workers and
// blocks until all started tasks have returned. Workers claim indices in
// ascending order. On the first error the run context is cancelled,
// no further indices are claimed, in-flight tasks are drained, and the
// collected task errors are returned joined in index order. If the caller's
// context is cancelled first, Run drains and returns the context error.
func (p *Pool) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers
	if workers > n {
		workers = n
	}

	var (
		next atomic.Int64
		mu   sync.Mutex
		errs []indexedError
		wg   sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		errs = append(errs, indexedError{index: i, err: err})
		mu.Unlock()
		cancel()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()

	if len(errs) > 0 {
		sort.Slice(errs, func(a, b int) bool { return errs[a].index < errs[b].index })
		joined := make([]error, 0, len(errs))
		for _, e := range errs {
			joined = append(joined, e.err)
		}
		// Workers interrupted by the fail-fast cancel report (wrapped)
		// context.Canceled. When the caller's context was never cancelled
		// and a real task error exists, those are induced noise: drop them
		// so errors.Is(err, context.Canceled) reflects the caller's
		// context, not the pool's internal cancellation.
		if parent.Err() == nil {
			real := joined[:0]
			for _, e := range joined {
				if !errors.Is(e, context.Canceled) {
					real = append(real, e)
				}
			}
			if len(real) > 0 {
				joined = real
			}
		}
		return errors.Join(joined...)
	}
	return parent.Err()
}
