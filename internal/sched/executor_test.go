package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExecutorRunsTasks(t *testing.T) {
	e := NewExecutor(4)
	defer e.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Do(context.Background(), func(context.Context) error {
				ran.Add(1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := ran.Load(); got != 32 {
		t.Fatalf("ran %d tasks, want 32", got)
	}
}

func TestExecutorReturnsTaskError(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()
	want := errors.New("boom")
	if err := e.Do(context.Background(), func(context.Context) error { return want }); !errors.Is(err, want) {
		t.Fatalf("Do error = %v, want %v", err, want)
	}
}

func TestExecutorBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := NewExecutor(workers)
	defer e.Close()
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Do(context.Background(), func(context.Context) error {
				n := cur.Add(1)
				for {
					m := max.Load()
					if n <= m || max.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", got, workers)
	}
}

func TestExecutorCancelledBeforePickup(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()
	// Occupy the single worker so the next Do has to queue.
	block := make(chan struct{})
	started := make(chan struct{})
	go e.Do(context.Background(), func(context.Context) error {
		close(started)
		<-block
		return nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := e.Do(ctx, func(context.Context) error { ran = true; return nil })
	close(block)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do error = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("cancelled task ran anyway")
	}
}

func TestExecutorClose(t *testing.T) {
	e := NewExecutor(2)
	// In-flight work finishes before Close returns.
	done := make(chan struct{})
	started := make(chan struct{})
	finished := atomic.Bool{}
	go e.Do(context.Background(), func(context.Context) error {
		close(started)
		<-done
		finished.Store(true)
		return nil
	})
	<-started
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	e.Close()
	if !finished.Load() {
		t.Fatal("Close returned before in-flight task finished")
	}
	if err := e.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrExecutorClosed) {
		t.Fatalf("Do after Close = %v, want ErrExecutorClosed", err)
	}
	e.Close() // idempotent
}

func TestExecutorOnQueueWait(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()
	var calls atomic.Int64
	var negative atomic.Bool
	e.OnQueueWait = func(d time.Duration) {
		calls.Add(1)
		if d < 0 {
			negative.Store(true)
		}
	}
	// One worker, a slow task holding it, then queued tasks that must wait:
	// every completed task reports exactly one queue-wait observation.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = e.Do(context.Background(), func(context.Context) error {
			<-release
			return nil
		})
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Do(context.Background(), func(context.Context) error { return nil })
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 5 {
		t.Fatalf("OnQueueWait called %d times, want 5", got)
	}
	if negative.Load() {
		t.Fatal("observed a negative queue wait")
	}
}
