package sched

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrExecutorClosed is returned by Do after Close: the executor's workers
// have been asked to stop and no new work is accepted.
var ErrExecutorClosed = errors.New("sched: executor closed")

// Executor is the long-running counterpart of Pool: a fixed set of workers
// serving one task at a time from callers that block in Do. Where Pool
// drains a batch of n indexed tasks and returns, an Executor lives for the
// lifetime of a service and caps how much work executes concurrently no
// matter how many callers are waiting — the online verification service
// uses one to bound verification concurrency independently of accepted
// connections.
//
// The task channel is unbuffered: a waiting Do caller *is* the queue
// entry, so the number of queued tasks is bounded by whatever bounds the
// callers (the service's admission queue), and the executor itself never
// accumulates hidden backlog.
type Executor struct {
	tasks   chan execTask
	closing chan struct{}
	wg      sync.WaitGroup

	closeOnce sync.Once

	// OnQueueWait, when non-nil, receives how long each task waited between
	// Do and a worker picking it up — the executor-queue latency the serving
	// stack attributes separately from verification itself. It must be set
	// before the first Do call (the channel handoff orders the write for the
	// workers) and is invoked on worker goroutines, so it must be safe for
	// concurrent use. When nil, Do does not even read the clock.
	OnQueueWait func(time.Duration)
}

type execTask struct {
	ctx   context.Context
	fn    func(context.Context) error
	reply chan error
	enq   time.Time
}

// NewExecutor starts an executor with the given worker bound; values below
// one are clamped to a single worker.
func NewExecutor(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	e := &Executor{
		tasks:   make(chan execTask),
		closing: make(chan struct{}),
	}
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker()
	}
	return e
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.closing:
			return
		case t := <-e.tasks:
			if e.OnQueueWait != nil && !t.enq.IsZero() {
				e.OnQueueWait(time.Since(t.enq))
			}
			// A task whose caller context died while queued is not worth
			// starting; report the cancellation instead of running it.
			if err := t.ctx.Err(); err != nil {
				t.reply <- err
				continue
			}
			t.reply <- t.fn(t.ctx)
		}
	}
}

// Do runs fn on one of the executor's workers and returns its error,
// blocking until a worker is free. If ctx is cancelled before a worker
// picks the task up, Do returns the context error without running fn; once
// a worker has the task, Do waits for it to finish (work is always drained,
// never abandoned mid-flight). After Close, Do returns ErrExecutorClosed.
func (e *Executor) Do(ctx context.Context, fn func(context.Context) error) error {
	t := execTask{ctx: ctx, fn: fn, reply: make(chan error, 1)}
	if e.OnQueueWait != nil {
		t.enq = time.Now()
	}
	select {
	case e.tasks <- t:
		return <-t.reply
	case <-ctx.Done():
		return ctx.Err()
	case <-e.closing:
		return ErrExecutorClosed
	}
}

// Close stops the workers and blocks until every in-flight task has
// finished. Do calls blocked waiting for a worker return ErrExecutorClosed;
// tasks already picked up run to completion. Close is idempotent.
func (e *Executor) Close() {
	e.closeOnce.Do(func() { close(e.closing) })
	e.wg.Wait()
}
