package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialOrderWithOneWorker(t *testing.T) {
	var order []int
	err := New(1).Run(context.Background(), 8, func(_ context.Context, i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("ran %d tasks, want 8", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("task %d ran at position %d; one worker must be strictly sequential", got, i)
		}
	}
}

func TestEveryIndexRunsExactlyOnce(t *testing.T) {
	const n = 500
	counts := make([]atomic.Int32, n)
	err := New(16).Run(context.Background(), n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestFailFastStopsClaimingTasks(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := New(1).Run(context.Background(), 100, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %v; tasks after the failure must not be claimed", ran)
	}
}

func TestErrorsAggregateInIndexOrder(t *testing.T) {
	// Release all four workers into their failure simultaneously so the
	// arrival order at the collector is scrambled; the joined error must
	// still list task errors by ascending index.
	var gate sync.WaitGroup
	gate.Add(4)
	err := New(4).Run(context.Background(), 4, func(_ context.Context, i int) error {
		gate.Done()
		gate.Wait()
		return fmt.Errorf("task-%d failed", i)
	})
	if err == nil {
		t.Fatal("no aggregate error")
	}
	want := "task-0 failed\ntask-1 failed\ntask-2 failed\ntask-3 failed"
	if err.Error() != want {
		t.Fatalf("aggregate error:\n%s\nwant:\n%s", err.Error(), want)
	}
}

func TestCancellationDrainsInFlightWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var inflight atomic.Int32
	var started sync.WaitGroup
	started.Add(2)
	release := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		done <- New(2).Run(ctx, 50, func(_ context.Context, i int) error {
			inflight.Add(1)
			defer inflight.Add(-1)
			if i < 2 {
				started.Done()
			}
			<-release
			return nil
		})
	}()

	started.Wait() // both workers are mid-task
	cancel()
	select {
	case err := <-done:
		t.Fatalf("Run returned %v with tasks still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := inflight.Load(); got != 0 {
		t.Fatalf("%d workers still in flight after Run returned", got)
	}
}

func TestTaskErrorWinsOverInducedCancellation(t *testing.T) {
	// The fail-fast cancel is internal; callers must see the task error,
	// not context.Canceled.
	boom := errors.New("boom")
	err := New(4).Run(context.Background(), 40, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("internal cancellation leaked to the caller")
	}
}

func TestEmptyQueueAndPreCancelledContext(t *testing.T) {
	if err := New(4).Run(context.Background(), 0, nil); err != nil {
		t.Fatalf("empty queue: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := New(4).Run(ctx, 10, func(context.Context, int) error {
		t.Error("task ran under a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWorkerClampAndAccessors(t *testing.T) {
	if w := New(0).Workers(); w != 1 {
		t.Fatalf("Workers() = %d, want clamp to 1", w)
	}
	if w := New(-3).Workers(); w != 1 {
		t.Fatalf("Workers() = %d, want clamp to 1", w)
	}
	if w := New(7).Workers(); w != 7 {
		t.Fatalf("Workers() = %d", w)
	}
}

func TestInducedCancellationFilteredFromAggregate(t *testing.T) {
	// Tasks that honour ctx (like real verifiers) surface wrapped
	// context.Canceled once the fail-fast cancel fires; the aggregate must
	// keep only the real error.
	boom := errors.New("boom")
	var gate sync.WaitGroup
	gate.Add(4)
	err := New(4).Run(context.Background(), 4, func(ctx context.Context, i int) error {
		gate.Done()
		gate.Wait()
		if i == 0 {
			return boom
		}
		<-ctx.Done()
		return fmt.Errorf("task %d interrupted: %w", i, ctx.Err())
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("induced cancellation leaked into the aggregate: %v", err)
	}
}

func TestAllCancelledErrorsKeptWhenNoRealError(t *testing.T) {
	// A task returning context.Canceled with no other failure and no parent
	// cancellation must still surface (never a silent nil).
	err := New(1).Run(context.Background(), 1, func(context.Context, int) error {
		return context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
