// Package rag implements the paper's four-phase retrieval pipeline (§3.2):
// (1) triple transformation, (2) question generation and ranking, (3)
// document retrieval and filtering, and (4) document processing and
// chunking. The pipeline is backed by any search.Searcher (the in-process
// engine or the HTTP mock API) and mirrors the configuration of the paper's
// Table 4.
package rag

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"factcheck/internal/chunk"
	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/obs"
	"factcheck/internal/question"
	"factcheck/internal/rerank"
	"factcheck/internal/search"
	"factcheck/internal/text"
	"factcheck/internal/verbalize"
)

// Phase latency histograms, resolved once so the retrieval path records
// with a single atomic add. These measure real wall-clock work (the
// simulated Evidence.Latency is separate and untouched).
var (
	questionsHist = obs.Layer("rag_questions")
	searchHist    = obs.Layer("rag_search")
	rerankHist    = obs.Layer("rag_rerank")
	chunkHist     = obs.Layer("rag_chunk")
)

// phaseSpan opens a trace span and times the phase into its histogram.
func phaseSpan(ctx context.Context, name string, h *obs.Histogram) func() {
	_, end := obs.StartSpan(ctx, name)
	start := time.Now()
	return func() {
		h.Observe(time.Since(start))
		end()
	}
}

// Config mirrors the paper's Table 4 RAG parameters.
type Config struct {
	// NumQuestions generated per fact (k_q).
	NumQuestions int
	// Tau is the question relevance threshold (τ = 0.5).
	Tau float64
	// SelectedQuestions is the number of top questions issued as queries
	// (paper: 3, plus the transformed triple itself).
	SelectedQuestions int
	// SERPSize is results per query (n_max = 100).
	SERPSize int
	// SelectedDocs is k_d, the documents kept after reranking (10).
	SelectedDocs int
	// Window is the sliding-window chunk size in sentences (3).
	Window int
	// MaxChunks caps the chunks passed to the model prompt.
	MaxChunks int
	// CandidateCap bounds how many unique documents are fetched and
	// reranked per fact, keeping full-benchmark runs tractable.
	CandidateCap int
	// FilterSKG enables dropping documents from the KG's own source pages
	// (circular-verification filter). On by default; the ablation bench
	// turns it off.
	FilterSKG bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		NumQuestions:      question.DefaultK,
		Tau:               0.5,
		SelectedQuestions: 3,
		SERPSize:          search.DefaultSERPSize,
		SelectedDocs:      10,
		Window:            chunk.DefaultWindow,
		MaxChunks:         20,
		CandidateCap:      120,
		FilterSKG:         true,
	}
}

// Pipeline executes retrieval for facts. Retrieval is model-independent and
// deterministic, so results are cached per fact: when several models verify
// the same fact (Table 5's five columns, consensus ensembles) the pipeline
// retrieves once. The cache is sharded by fact ID and deduplicates
// concurrent retrievals (singleflight), so the whole-grid scheduler can fan
// N models out over the same fact and still trigger exactly one retrieval.
type Pipeline struct {
	Searcher       search.Searcher
	QuestionRanker rerank.Scorer
	DocRanker      rerank.Scorer
	Config         Config
	// DisableCache turns off evidence caching (used by ablation benches
	// that mutate Config between calls).
	DisableCache bool
	// DenseScoring forces the retired dense scoring path: every rerank call
	// re-embeds both strings and chunking re-splits fetched text. It is the
	// differential baseline — golden tests pin the sparse path (precomputed
	// doc vectors, reference embedded once per fact) byte-identical to it,
	// and the cold-cell benches measure the gap.
	DenseScoring bool

	cache evidenceCache
}

// evidenceShards is the shard count of the evidence cache. Sharding keeps
// lock hold times per shard short under concurrent grid workers; the count
// comfortably exceeds any realistic worker parallelism.
const evidenceShards = 32

// evidenceCache is a sharded fact-ID-keyed cache with singleflight
// semantics: the first caller for a fact owns the retrieval, concurrent
// callers block on the entry's done channel and share the result.
type evidenceCache struct {
	shards [evidenceShards]evidenceShard
}

type evidenceShard struct {
	mu      sync.Mutex
	entries map[string]*evidenceEntry
}

// evidenceEntry is one in-flight or completed retrieval. ev and err are
// written once by the owner before done is closed; waiters read them only
// after <-done.
type evidenceEntry struct {
	done chan struct{}
	ev   *Evidence
	err  error
}

// shard maps a fact ID to its cache shard.
func (c *evidenceCache) shard(id string) *evidenceShard {
	return &c.shards[det.Hash64("rag-shard", id)%evidenceShards]
}

// invalidate drops one fact's entry. An in-flight retrieval keeps its
// (now unreachable) entry and completes harmlessly: only callers already
// waiting on it observe the pre-invalidation evidence.
func (c *evidenceCache) invalidate(factID string) {
	s := c.shard(factID)
	s.mu.Lock()
	delete(s.entries, factID)
	s.mu.Unlock()
}

// clear drops every shard's entries. In-flight retrievals keep their
// (now unreachable) entry and complete harmlessly.
func (c *evidenceCache) clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = nil
		s.mu.Unlock()
	}
}

// New builds a pipeline with the paper's default rankers and configuration.
func New(s search.Searcher) *Pipeline {
	return &Pipeline{
		Searcher:       s,
		QuestionRanker: rerank.NewQuestionRanker(),
		DocRanker:      rerank.NewDocumentRanker(),
		Config:         DefaultConfig(),
	}
}

// Evidence is the retrieval result for one fact.
type Evidence struct {
	// Sentence is the verbalised fact (phase 1 output).
	Sentence string
	// Questions are the scored generated questions (phase 2 output).
	Questions []question.Question
	// Queries are the issued search queries (sentence + top questions).
	Queries []string
	// Docs are the k_d selected documents after filtering and reranking.
	Docs []search.DocPayload
	// Chunks are the context passages handed to the model.
	Chunks []chunk.Chunk
	// FilteredSKG counts documents dropped by the source filter.
	FilteredSKG int
	// Candidates counts the unique retrieved documents before selection.
	Candidates int
	// Latency is the simulated wall-clock cost of retrieval: SERP calls,
	// document fetches and cross-encoder scoring.
	Latency time.Duration
}

// ChunkTexts returns the chunk contents in order.
func (e *Evidence) ChunkTexts() []string {
	out := make([]string, len(e.Chunks))
	for i, c := range e.Chunks {
		out[i] = c.Text
	}
	return out
}

// Retrieve runs the four phases for the fact, consulting the cache first.
// Concurrent calls for the same fact coalesce into a single retrieval: the
// first caller computes, the rest block and share the result.
func (p *Pipeline) Retrieve(f *dataset.Fact) (*Evidence, error) {
	return p.RetrieveCtx(context.Background(), f)
}

// RetrieveCtx is Retrieve with trace propagation: when ctx carries a
// sampled request trace, the singleflight leader records one span per
// retrieval phase and a coalesced follower records its wait. The context
// never cancels a retrieval — evidence is shared across callers, so the
// owner always runs to completion.
func (p *Pipeline) RetrieveCtx(ctx context.Context, f *dataset.Fact) (*Evidence, error) {
	if p.DisableCache {
		return p.retrieve(ctx, f)
	}
	s := p.cache.shard(f.ID)
	s.mu.Lock()
	e, ok := s.entries[f.ID]
	if !ok {
		e = &evidenceEntry{done: make(chan struct{})}
		if s.entries == nil {
			s.entries = map[string]*evidenceEntry{}
		}
		s.entries[f.ID] = e
	}
	s.mu.Unlock()
	if ok {
		select {
		case <-e.done:
		default:
			// Retrieval in flight elsewhere: this caller is a follower.
			_, end := obs.StartSpan(ctx, "rag_wait")
			<-e.done
			end()
		}
		return e.ev, e.err
	}
	e.ev, e.err = p.retrieve(ctx, f)
	if e.err != nil {
		// Do not cache failures: drop the entry (unless ClearCache swapped
		// the map under us) so a later call can retry.
		s.mu.Lock()
		if s.entries[f.ID] == e {
			delete(s.entries, f.ID)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.ev, e.err
}

// Warm ensures the fact's evidence is cached, sharing the same
// singleflight path as Retrieve. It is the prefetch entry point the grid
// scheduler uses to retrieve once per fact before fanning models out.
// Warming builds the fact's index shard as a side effect (the engine
// materialises pool + posting lists on first query); with evidence caching
// disabled, Warm still builds the index shard when the searcher supports it
// instead of wasting a full retrieval.
func (p *Pipeline) Warm(f *dataset.Fact) error {
	if p.DisableCache {
		if w, ok := p.Searcher.(search.Warmer); ok {
			return w.Warm(f.ID)
		}
		return nil
	}
	_, err := p.Retrieve(f)
	return err
}

// ClearCache drops all cached evidence (call after changing Config).
func (p *Pipeline) ClearCache() {
	p.cache.clear()
}

// Invalidate drops the fact's cached evidence after a corpus epoch bump:
// the next retrieval for the fact recomputes over the new corpus, while
// every other fact keeps its warm evidence.
func (p *Pipeline) Invalidate(factID string) {
	p.cache.invalidate(factID)
}

// retrieve runs phases 1–4. The sparse path is the production one:
// the sentence is embedded once, document vectors come precomputed from the
// engine's doc table, and chunking reuses the doc table's sentence splits.
// DenseScoring (or a searcher/ranker without vector support) falls back to
// the dense reference path; both produce byte-identical Evidence — golden
// tested, since result-store fingerprints and served verdicts flow from it.
func (p *Pipeline) retrieve(ctx context.Context, f *dataset.Fact) (*Evidence, error) {
	cfg := p.Config
	ev := &Evidence{}

	// Phase 1: triple transformation.
	ev.Sentence = verbalize.Sentence(f)

	// The sparse path needs a vector-aware ranker for each stage it
	// accelerates; stages degrade to the dense path independently.
	qRanker, qVec := p.QuestionRanker.(rerank.VecScorer)
	dRanker, dVec := p.DocRanker.(rerank.VecScorer)
	if p.DenseScoring {
		qVec, dVec = false, false
	}
	var sentVec text.SparseVector
	if qVec || dVec {
		sentVec = text.SparseEmbed(ev.Sentence)
	}

	// Phase 2: question generation and ranking. The reference sentence is
	// embedded exactly once for all k_q candidates.
	endQuestions := phaseSpan(ctx, "rag_questions", questionsHist)
	qs := question.Generate(f, cfg.NumQuestions)
	texts := make([]string, len(qs))
	for i := range qs {
		texts[i] = qs[i].Text
	}
	var ranked []rerank.Ranked
	if qVec {
		cands := make([]rerank.Candidate, len(texts))
		for i, t := range texts {
			cands[i] = rerank.Candidate{Text: t, Vec: text.SparseEmbed(t)}
		}
		ranked = rerank.RankVecs(qRanker, sentVec, ev.Sentence, cands)
	} else {
		ranked = rerank.Rank(rerank.DenseOnly(p.QuestionRanker), ev.Sentence, texts)
	}
	for _, r := range ranked {
		qs[r.Index].Score = r.Score
	}
	ev.Questions = qs
	kept := rerank.FilterThreshold(ranked, cfg.Tau)
	if len(kept) > cfg.SelectedQuestions {
		kept = kept[:cfg.SelectedQuestions]
	}
	ev.Queries = append(ev.Queries, ev.Sentence)
	for _, r := range kept {
		ev.Queries = append(ev.Queries, texts[r.Index])
	}
	endQuestions()

	// Phase 3: document retrieval and filtering.
	endSearch := phaseSpan(ctx, "rag_search", searchHist)
	seen := map[string]bool{}
	var serpItems []search.SERPItem
	for _, q := range ev.Queries {
		items, err := p.Searcher.Search(f.ID, q, cfg.SERPSize)
		if err != nil {
			return nil, fmt.Errorf("rag: search %q: %w", q, err)
		}
		for _, it := range items {
			if seen[it.DocID] {
				continue
			}
			seen[it.DocID] = true
			if cfg.FilterSKG && isSKGSource(it.Host) {
				ev.FilteredSKG++
				continue
			}
			serpItems = append(serpItems, it)
		}
	}
	ev.Candidates = len(serpItems)
	if len(serpItems) > cfg.CandidateCap {
		serpItems = serpItems[:cfg.CandidateCap]
	}
	endSearch()

	// Phase 4a: fetch and rerank documents against the sentence. On the
	// sparse path each candidate's vector comes precomputed from the doc
	// table — no document is ever re-embedded — and the batch scorer
	// amortises the reference's noise-key prefix across the whole pool.
	// dVec is already false under DenseScoring, which keeps the dense
	// baseline on plain Fetch as well.
	endRerank := phaseSpan(ctx, "rag_rerank", rerankHist)
	fetcher, fetchVec := p.Searcher.(search.EvidenceFetcher)
	fetchVec = fetchVec && dVec
	var scoreVec func(cand text.SparseVector, candText string) float64
	if dVec {
		if bs, ok := dRanker.(rerank.BatchScorer); ok {
			scoreVec = bs.ScoreBatch(sentVec, ev.Sentence)
		} else {
			scoreVec = func(cand text.SparseVector, candText string) float64 {
				return dRanker.ScoreVec(sentVec, ev.Sentence, cand, candText)
			}
		}
	}
	type scoredDoc struct {
		doc   search.DocPayload
		ev    search.DocEvidence // sparse path only
		score float64
	}
	var docs []scoredDoc
	for _, it := range serpItems {
		if fetchVec {
			de, err := fetcher.FetchEvidence(it.DocID)
			if err != nil {
				return nil, fmt.Errorf("rag: fetch %s: %w", it.DocID, err)
			}
			if de.Empty || de.Text == "" {
				continue // extraction failures carry no usable evidence
			}
			docs = append(docs, scoredDoc{doc: de.DocPayload, ev: de, score: scoreVec(de.Vec, de.Full)})
			continue
		}
		d, err := p.Searcher.Fetch(it.DocID)
		if err != nil {
			return nil, fmt.Errorf("rag: fetch %s: %w", it.DocID, err)
		}
		if d.Empty || d.Text == "" {
			continue
		}
		var s float64
		if dVec {
			// Vector-aware ranker over a plain searcher (e.g. the HTTP
			// client): embed the fetched candidate once, reference still
			// embedded once per fact.
			full := d.Title + " " + d.Text
			s = scoreVec(text.SparseEmbed(full), full)
		} else {
			s = p.DocRanker.Score(ev.Sentence, d.Title+" "+d.Text)
		}
		docs = append(docs, scoredDoc{doc: d, score: s})
	}
	// Sort an index permutation instead of the fat entries (a scoredDoc
	// carries two payload structs; swapping them dominated the sort).
	// (score desc, doc ID asc) is a total order over unique doc IDs, so the
	// permutation equals the retired sort.SliceStable's order exactly.
	order := make([]int, len(docs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case docs[a].score > docs[b].score:
			return -1
		case docs[a].score < docs[b].score:
			return 1
		}
		return strings.Compare(docs[a].doc.DocID, docs[b].doc.DocID)
	})
	if len(order) > cfg.SelectedDocs {
		order = order[:cfg.SelectedDocs]
	}
	endRerank()

	// Phase 4b: sliding-window chunking, served from the doc table's cached
	// sentence splits on the sparse path.
	endChunk := phaseSpan(ctx, "rag_chunk", chunkHist)
	for _, i := range order {
		sd := &docs[i]
		ev.Docs = append(ev.Docs, sd.doc)
		if fetchVec {
			ev.Chunks = append(ev.Chunks, sd.ev.Chunks(cfg.Window)...)
		} else {
			ev.Chunks = append(ev.Chunks, chunk.Sliding(sd.doc.DocID, sd.doc.Text, cfg.Window)...)
		}
	}
	if len(ev.Chunks) > cfg.MaxChunks {
		ev.Chunks = ev.Chunks[:cfg.MaxChunks]
	}
	endChunk()

	ev.Latency = p.retrievalLatency(f, len(ev.Queries), ev.Candidates)
	return ev, nil
}

// retrievalLatency models the wall-clock cost of phase 3 and 4: one SERP
// round-trip per query, one fetch per candidate (amortised: fetches are
// pipelined), and a cross-encoder pass per candidate.
func (p *Pipeline) retrievalLatency(f *dataset.Fact, nQueries, nCandidates int) time.Duration {
	secs := 0.20*float64(nQueries) + // SERP round-trips
		0.004*float64(nCandidates) + // pipelined fetch + parse
		0.0045*float64(nCandidates) // cross-encoder scoring
	secs = det.Jitter(secs+0.25, 0.15, "rag-latency", f.ID)
	return time.Duration(secs * float64(time.Second))
}

// isSKGSource reports whether the host belongs to S_KG, the set of original
// KG source pages (Wikipedia for DBpedia/FactBench facts).
func isSKGSource(host string) bool {
	return host == "en.wikipedia.org"
}

// GenerationCost models the offline cost of building the RAG dataset for
// one fact (paper Table 3): LLM question generation, SERP retrieval, and
// webpage fetching.
type GenerationCost struct {
	QuestionGenTime   time.Duration
	QuestionGenTokens int
	SERPTime          time.Duration
	FetchTime         time.Duration
}

// CostFor returns the simulated per-fact generation cost, calibrated to the
// paper's averages (9.60 s / 672.58 tokens question generation, 3.60 s SERP
// retrieval, 350 s document fetching).
func CostFor(f *dataset.Fact) GenerationCost {
	qt := det.Gaussian(9.60, 1.4, "cost-qt", f.ID)
	tok := det.Gaussian(672.58, 85, "cost-tok", f.ID)
	st := det.Gaussian(3.60, 0.5, "cost-serp", f.ID)
	ft := det.Gaussian(350, 40, "cost-fetch", f.ID)
	if qt < 1 {
		qt = 1
	}
	if tok < 100 {
		tok = 100
	}
	if st < 0.5 {
		st = 0.5
	}
	if ft < 30 {
		ft = 30
	}
	return GenerationCost{
		QuestionGenTime:   time.Duration(qt * float64(time.Second)),
		QuestionGenTokens: int(tok),
		SERPTime:          time.Duration(st * float64(time.Second)),
		FetchTime:         time.Duration(ft * float64(time.Second)),
	}
}
