package rag

import (
	"net/http/httptest"
	"testing"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/search"
	"factcheck/internal/world"
)

// TestRetrieveOverHTTPMatchesInProcess runs the same pipeline against the
// in-process engine and against the mock API over HTTP: retrieval must be
// identical, which is the mock API's whole reason to exist (paper §4.1:
// "identical retrieval operations across multiple experimental runs").
func TestRetrieveOverHTTPMatchesInProcess(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.05)
	gen := corpus.NewGenerator(w)
	engine := search.NewEngine(gen, d)

	srv := httptest.NewServer(search.NewAPI(engine).Handler())
	defer srv.Close()

	local := New(engine)
	remote := New(search.NewClient(srv.URL))

	for _, f := range d.Facts[:15] {
		le, err := local.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		re, err := remote.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		if le.Sentence != re.Sentence {
			t.Fatalf("%s: sentences differ", f.ID)
		}
		if len(le.Docs) != len(re.Docs) {
			t.Fatalf("%s: %d local docs vs %d remote docs", f.ID, len(le.Docs), len(re.Docs))
		}
		for i := range le.Docs {
			if le.Docs[i].DocID != re.Docs[i].DocID {
				t.Fatalf("%s: doc %d differs (%s vs %s)", f.ID, i, le.Docs[i].DocID, re.Docs[i].DocID)
			}
		}
		if len(le.Chunks) != len(re.Chunks) {
			t.Fatalf("%s: chunk counts differ", f.ID)
		}
		for i := range le.Chunks {
			if le.Chunks[i].Text != re.Chunks[i].Text {
				t.Fatalf("%s: chunk %d text differs", f.ID, i)
			}
		}
	}
}

// TestRetrieveHTTPServerGone verifies error propagation when the API is
// unreachable.
func TestRetrieveHTTPServerGone(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.05)
	srv := httptest.NewServer(nil)
	url := srv.URL
	srv.Close()

	p := New(search.NewClient(url))
	if _, err := p.Retrieve(d.Facts[0]); err == nil {
		t.Fatal("retrieval against dead server succeeded")
	}
}
