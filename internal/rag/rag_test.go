package rag

import (
	"sync"
	"sync/atomic"
	"testing"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/search"
	"factcheck/internal/world"
)

func pipeline(t *testing.T) (*Pipeline, *dataset.Dataset) {
	t.Helper()
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.1)
	gen := corpus.NewGenerator(w)
	return New(search.NewEngine(gen, d)), d
}

func TestDefaultConfigMatchesPaperTable4(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Tau != 0.5 {
		t.Errorf("tau = %v, want 0.5", cfg.Tau)
	}
	if cfg.SelectedQuestions != 3 {
		t.Errorf("selected questions = %d, want 3", cfg.SelectedQuestions)
	}
	if cfg.SelectedDocs != 10 {
		t.Errorf("k_d = %d, want 10", cfg.SelectedDocs)
	}
	if cfg.Window != 3 {
		t.Errorf("window = %d, want 3", cfg.Window)
	}
	if cfg.SERPSize != 100 {
		t.Errorf("SERP size = %d, want 100", cfg.SERPSize)
	}
	if !cfg.FilterSKG {
		t.Error("SKG filter off by default")
	}
}

func TestRetrievePhases(t *testing.T) {
	p, d := pipeline(t)
	f := d.Facts[0]
	ev, err := p.Retrieve(f)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sentence == "" {
		t.Error("phase 1 produced no sentence")
	}
	if len(ev.Questions) < 2 {
		t.Errorf("phase 2 produced %d questions", len(ev.Questions))
	}
	for _, q := range ev.Questions {
		if q.Score <= 0 || q.Score >= 1 {
			t.Errorf("question score %f out of range", q.Score)
		}
	}
	// Queries: the sentence plus at most SelectedQuestions questions.
	if len(ev.Queries) < 1 || len(ev.Queries) > 1+p.Config.SelectedQuestions {
		t.Errorf("issued %d queries", len(ev.Queries))
	}
	if ev.Queries[0] != ev.Sentence {
		t.Error("first query is not the transformed triple")
	}
	if len(ev.Docs) > p.Config.SelectedDocs {
		t.Errorf("selected %d docs, cap %d", len(ev.Docs), p.Config.SelectedDocs)
	}
	if len(ev.Chunks) > p.Config.MaxChunks {
		t.Errorf("%d chunks, cap %d", len(ev.Chunks), p.Config.MaxChunks)
	}
	if ev.Latency <= 0 {
		t.Error("no retrieval latency recorded")
	}
}

func TestRetrieveFiltersSKGAndEmpty(t *testing.T) {
	p, d := pipeline(t)
	filteredSomething := false
	for _, f := range d.Facts[:40] {
		ev, err := p.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		if ev.FilteredSKG > 0 {
			filteredSomething = true
		}
		for _, doc := range ev.Docs {
			if doc.Host == "en.wikipedia.org" {
				t.Fatalf("SKG document %s not filtered", doc.DocID)
			}
			if doc.Empty || doc.Text == "" {
				t.Fatalf("empty document %s selected", doc.DocID)
			}
		}
	}
	if !filteredSomething {
		t.Error("source filter never triggered across 40 facts")
	}
}

func TestRetrieveCache(t *testing.T) {
	p, d := pipeline(t)
	f := d.Facts[1]
	a, err := p.Retrieve(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Retrieve(f)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second retrieve did not hit the cache")
	}
	p.ClearCache()
	c, err := p.Retrieve(f)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("cache not cleared")
	}
	if len(c.Chunks) != len(a.Chunks) {
		t.Error("re-retrieval not deterministic")
	}
}

func TestRetrieveDisableCache(t *testing.T) {
	p, d := pipeline(t)
	p.DisableCache = true
	f := d.Facts[2]
	a, _ := p.Retrieve(f)
	b, _ := p.Retrieve(f)
	if a == b {
		t.Error("cache used despite DisableCache")
	}
}

func TestQuestionThresholdRespected(t *testing.T) {
	p, d := pipeline(t)
	for _, f := range d.Facts[:20] {
		ev, err := p.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		// Every issued question query must have scored >= tau.
		scoreOf := map[string]float64{}
		for _, q := range ev.Questions {
			scoreOf[q.Text] = q.Score
		}
		for _, q := range ev.Queries[1:] {
			if s, ok := scoreOf[q]; !ok || s < p.Config.Tau {
				t.Fatalf("query %q below threshold (%.2f)", q, s)
			}
		}
	}
}

func TestChunksComeFromSelectedDocs(t *testing.T) {
	p, d := pipeline(t)
	ev, err := p.Retrieve(d.Facts[0])
	if err != nil {
		t.Fatal(err)
	}
	sel := map[string]bool{}
	for _, doc := range ev.Docs {
		sel[doc.DocID] = true
	}
	for _, c := range ev.Chunks {
		if !sel[c.DocID] {
			t.Fatalf("chunk from unselected doc %s", c.DocID)
		}
	}
	texts := ev.ChunkTexts()
	if len(texts) != len(ev.Chunks) {
		t.Error("ChunkTexts length mismatch")
	}
}

func TestEvidenceStanceAlignsWithGold(t *testing.T) {
	// Across many facts, selected chunks should support true facts and
	// refute corrupted ones (FactBench has discriminative evidence).
	p, d := pipeline(t)
	var trueSup, trueRef, falseSup, falseRef int
	for _, f := range d.Facts {
		ev, err := p.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		claim := llm.Claim{
			SubjectLabel: f.Subject.Label,
			ObjectLabel:  f.Object.Label,
			Phrase:       f.Relation.Phrase,
		}
		for _, c := range ev.Chunks {
			switch llm.ReadStance(claim, c.Text) {
			case 1:
				if f.Gold {
					trueSup++
				} else {
					falseSup++
				}
			case -1:
				if f.Gold {
					trueRef++
				} else {
					falseRef++
				}
			}
		}
	}
	if trueSup <= trueRef {
		t.Errorf("true facts: support %d <= refute %d", trueSup, trueRef)
	}
	if falseRef <= falseSup {
		t.Errorf("false facts: refute %d <= support %d", falseRef, falseSup)
	}
}

func TestCostForCalibration(t *testing.T) {
	_, d := pipeline(t)
	var qt, st, ft, tok float64
	n := 0
	for _, f := range d.Facts {
		c := CostFor(f)
		qt += c.QuestionGenTime.Seconds()
		st += c.SERPTime.Seconds()
		ft += c.FetchTime.Seconds()
		tok += float64(c.QuestionGenTokens)
		n++
	}
	fn := float64(n)
	if m := qt / fn; m < 8.5 || m > 10.5 {
		t.Errorf("mean question-gen time = %.2f, want ~9.6", m)
	}
	if m := tok / fn; m < 600 || m > 750 {
		t.Errorf("mean question-gen tokens = %.1f, want ~672", m)
	}
	if m := st / fn; m < 3 || m > 4.2 {
		t.Errorf("mean SERP time = %.2f, want ~3.6", m)
	}
	if m := ft / fn; m < 320 || m > 380 {
		t.Errorf("mean fetch time = %.1f, want ~350", m)
	}
}

// countingSearcher counts Search calls so tests can observe how many
// retrievals actually hit the backend.
type countingSearcher struct {
	search.Searcher
	searches atomic.Int64
}

func (c *countingSearcher) Search(factID, query string, n int) ([]search.SERPItem, error) {
	c.searches.Add(1)
	return c.Searcher.Search(factID, query, n)
}

func TestConcurrentRetrieveSingleflight(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.1)
	cs := &countingSearcher{Searcher: search.NewEngine(corpus.NewGenerator(w), d)}
	p := New(cs)
	f := d.Facts[0]

	// Measure the backend calls of one uncached retrieval.
	if _, err := p.Retrieve(f); err != nil {
		t.Fatal(err)
	}
	perRetrieval := cs.searches.Load()
	if perRetrieval == 0 {
		t.Fatal("retrieval issued no searches")
	}
	p.ClearCache()
	cs.searches.Store(0)

	// N concurrent callers on the same fact must coalesce into exactly one
	// retrieval and all observe the identical evidence pointer.
	const callers = 16
	var (
		start sync.WaitGroup
		wg    sync.WaitGroup
		gate  = make(chan struct{})
		evs   [callers]*Evidence
		errs  [callers]error
	)
	start.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			start.Done()
			<-gate
			evs[i], errs[i] = p.Retrieve(f)
		}(i)
	}
	start.Wait()
	close(gate)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if evs[i] != evs[0] {
			t.Fatal("concurrent callers observed different evidence")
		}
	}
	if got := cs.searches.Load(); got != perRetrieval {
		t.Fatalf("%d callers triggered %d backend searches, want %d (one retrieval)",
			callers, got, perRetrieval)
	}
}

func TestConcurrentRetrieveManyFacts(t *testing.T) {
	p, d := pipeline(t)
	n := len(d.Facts)
	if n > 24 {
		n = 24
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 3*n)
	for round := 0; round < 3; round++ {
		for _, f := range d.Facts[:n] {
			wg.Add(1)
			go func(f *dataset.Fact) {
				defer wg.Done()
				if _, err := p.Retrieve(f); err != nil {
					errCh <- err
				}
			}(f)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestWarmPopulatesCacheAndRespectsDisable(t *testing.T) {
	p, d := pipeline(t)
	f := d.Facts[3]
	if err := p.Warm(f); err != nil {
		t.Fatal(err)
	}
	a, err := p.Retrieve(f)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Retrieve(f)
	if a != b {
		t.Error("Warm did not populate the cache")
	}

	p2, d2 := pipeline(t)
	p2.DisableCache = true
	if err := p2.Warm(d2.Facts[0]); err != nil {
		t.Fatal(err)
	}
}

// TestWarmBuildsIndexWithCacheDisabled asserts prefetch still materialises
// the engine's index shard when evidence caching is off — it warms the
// searcher instead of running (and discarding) a full retrieval.
func TestWarmBuildsIndexWithCacheDisabled(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.1)
	eng := search.NewEngine(corpus.NewGenerator(w), d)
	p := New(eng)
	p.DisableCache = true
	if err := p.Warm(d.Facts[0]); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CachedFacts != 1 || st.IndexedDocs == 0 {
		t.Errorf("Warm did not build the index shard: %+v", st)
	}
	// One store miss and no hits: Warm materialised the index without
	// running a full (multi-query) retrieval.
	if st.Misses != 1 || st.Hits != 0 {
		t.Errorf("Warm hit the store %d/%d (hits/misses), want 0/1 — did it run a retrieval?",
			st.Hits, st.Misses)
	}
	// A searcher without Warm support stays a no-op.
	cs := &countingSearcher{Searcher: eng}
	p2 := New(cs)
	p2.DisableCache = true
	if err := p2.Warm(d.Facts[1]); err != nil {
		t.Fatal(err)
	}
	if cs.searches.Load() != 0 {
		t.Errorf("no-op Warm issued %d SERP queries", cs.searches.Load())
	}
}
