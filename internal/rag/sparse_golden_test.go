package rag

import (
	"reflect"
	"testing"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/search"
	"factcheck/internal/world"
)

// goldenPipelines builds two pipelines over the same engine: the sparse
// production path and the retired dense reference path. Evidence caching is
// off so each call exercises retrieval in full.
func goldenPipelines(t *testing.T) (sparse, dense *Pipeline, d *dataset.Dataset) {
	t.Helper()
	w := world.New(world.SmallConfig())
	d = dataset.Build(w, dataset.FactBench, 0.1)
	gen := corpus.NewGenerator(w)
	e := search.NewEngine(gen, d)
	sparse = New(e)
	sparse.DisableCache = true
	dense = New(e)
	dense.DisableCache = true
	dense.DenseScoring = true
	return sparse, dense, d
}

// TestSparseRetrieveMatchesDenseGolden is the pipeline-level golden test:
// for every fact of the fixture dataset, the sparse path's Evidence —
// question scores, query selection, document ranks, chunk texts, simulated
// latency — must equal the dense path's bit for bit. Result-store
// fingerprints, PR 3/4 snapshots and served verdicts all hang off this.
func TestSparseRetrieveMatchesDenseGolden(t *testing.T) {
	sparse, dense, d := goldenPipelines(t)
	if len(d.Facts) < 3 {
		t.Fatalf("fixture has %d facts, need >= 3", len(d.Facts))
	}
	for _, f := range d.Facts {
		sev, err := sparse.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := dense.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sev, dev) {
			t.Fatalf("fact %s: sparse evidence differs from dense reference:\nsparse: %+v\ndense:  %+v", f.ID, sev, dev)
		}
	}
}

// TestSparseRetrieveMatchesDenseAcrossConfigs sweeps the config axes that
// steer the rewired stages (window size, candidate cap, selected docs,
// question threshold) and pins sparse == dense under each.
func TestSparseRetrieveMatchesDenseAcrossConfigs(t *testing.T) {
	sparse, dense, d := goldenPipelines(t)
	mutate := []func(*Config){
		func(c *Config) { c.Window = 1 },
		func(c *Config) { c.Window = 5 },
		func(c *Config) { c.CandidateCap = 7 },
		func(c *Config) { c.SelectedDocs = 2 },
		func(c *Config) { c.Tau = 0.1; c.SelectedQuestions = 5 },
		func(c *Config) { c.FilterSKG = false },
	}
	f := d.Facts[1]
	for i, m := range mutate {
		scfg, dcfg := DefaultConfig(), DefaultConfig()
		m(&scfg)
		m(&dcfg)
		sparse.Config, dense.Config = scfg, dcfg
		sev, err := sparse.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := dense.Retrieve(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sev, dev) {
			t.Fatalf("config mutation %d: sparse evidence differs from dense", i)
		}
	}
}
