// Package webapp implements the paper's dedicated web application
// (contribution 4, §1: "enabling users to visually explore and analyze each
// step of the verification process, also featuring error analysis modules").
// It serves server-rendered HTML over the benchmark instance: dataset
// overviews, per-fact drill-downs through every pipeline stage (triple,
// verbalisation, questions with relevance scores, retrieved documents and
// chunks, per-model verdicts under every method, consensus votes, ontology
// rule checks), and the error-clustering study.
package webapp

import (
	"context"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"

	"factcheck/internal/analysis"
	"factcheck/internal/consensus"
	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/rules"
	"factcheck/internal/strategy"
)

// App serves the exploration UI for one benchmark instance.
type App struct {
	bench *core.Benchmark
	rules *rules.Engine
	tmpl  *template.Template
}

// New builds the app over a benchmark instance.
func New(b *core.Benchmark) (*App, error) {
	t, err := template.New("webapp").Parse(pageTemplates)
	if err != nil {
		return nil, fmt.Errorf("webapp: parsing templates: %w", err)
	}
	return &App{bench: b, rules: rules.NewEngine(b.World), tmpl: t}, nil
}

// Handler returns the app's HTTP handler.
func (a *App) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", a.handleIndex)
	mux.HandleFunc("GET /facts", a.handleFacts)
	mux.HandleFunc("GET /fact/{id}", a.handleFact)
	mux.HandleFunc("GET /errors", a.handleErrors)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// --- index -------------------------------------------------------------

type indexData struct {
	Datasets []indexDataset
}

type indexDataset struct {
	Name  dataset.Name
	Stats dataset.Stats
}

func (a *App) handleIndex(w http.ResponseWriter, _ *http.Request) {
	var data indexData
	for _, n := range a.bench.Config.Datasets {
		data.Datasets = append(data.Datasets, indexDataset{
			Name:  n,
			Stats: a.bench.Datasets[n].Stats(),
		})
	}
	a.render(w, "index", data)
}

// --- fact list ----------------------------------------------------------

const pageSize = 50

type factsData struct {
	Dataset  dataset.Name
	Page     int
	HasPrev  bool
	HasNext  bool
	PrevPage int
	NextPage int
	Facts    []*dataset.Fact
	Sentence func(*dataset.Fact) string
}

func (a *App) handleFacts(w http.ResponseWriter, r *http.Request) {
	dn := dataset.Name(r.URL.Query().Get("dataset"))
	d, ok := a.bench.Datasets[dn]
	if !ok {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	page, _ := strconv.Atoi(r.URL.Query().Get("page"))
	if page < 0 {
		page = 0
	}
	start := page * pageSize
	if start >= len(d.Facts) {
		start = 0
		page = 0
	}
	end := start + pageSize
	if end > len(d.Facts) {
		end = len(d.Facts)
	}
	a.render(w, "facts", factsData{
		Dataset:  dn,
		Page:     page,
		HasPrev:  page > 0,
		HasNext:  end < len(d.Facts),
		PrevPage: page - 1,
		NextPage: page + 1,
		Facts:    d.Facts[start:end],
	})
}

// --- fact detail ---------------------------------------------------------

type verdictRow struct {
	Model    string
	Method   llm.Method
	Verdict  string
	Correct  bool
	Latency  string
	Tokens   int
	Attempts int
	Reason   string
}

type questionRow struct {
	Text  string
	Score string
}

type docRow struct {
	Title string
	Host  string
	URL   string
}

type factData struct {
	Fact      *dataset.Fact
	Sentence  string
	Triple    string
	Rule      rules.Result
	Questions []questionRow
	Queries   []string
	Docs      []docRow
	Chunks    []string
	Filtered  int
	Verdicts  []verdictRow
	Majority  string
	Tie       bool
}

func (a *App) handleFact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f, ok := a.bench.FactByID(id)
	if !ok {
		http.Error(w, "unknown fact "+id, http.StatusNotFound)
		return
	}
	ctx := r.Context()
	claim := strategy.ClaimFor(f)
	data := factData{
		Fact:     f,
		Sentence: claim.Sentence,
		Triple:   f.Triple.String(),
		Rule:     a.rules.CheckFact(f),
	}

	// Retrieval stages.
	ev, err := a.bench.Pipeline.Retrieve(f)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, q := range ev.Questions {
		data.Questions = append(data.Questions, questionRow{Text: q.Text, Score: fmt.Sprintf("%.2f", q.Score)})
	}
	sort.Slice(data.Questions, func(i, j int) bool { return data.Questions[i].Score > data.Questions[j].Score })
	data.Queries = ev.Queries
	for _, d := range ev.Docs {
		data.Docs = append(data.Docs, docRow{Title: d.Title, Host: d.Host, URL: d.URL})
	}
	data.Chunks = ev.ChunkTexts()
	data.Filtered = ev.FilteredSKG

	// Verdicts of every model under every method, plus the DKA majority.
	var dkaOutcomes []strategy.Outcome
	for _, method := range a.bench.Config.Methods {
		v, err := a.bench.Verifier(method)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, name := range a.bench.Config.Models {
			m, err := a.bench.Model(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			out, err := v.Verify(ctx, m, f)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			data.Verdicts = append(data.Verdicts, verdictRow{
				Model:    name,
				Method:   method,
				Verdict:  out.Verdict.String(),
				Correct:  out.Correct,
				Latency:  fmt.Sprintf("%.2fs", out.Latency.Seconds()),
				Tokens:   out.PromptTokens + out.CompletionTokens,
				Attempts: out.Attempts,
				Reason:   out.Explanation,
			})
			if method == llm.MethodDKA && name != llm.GPT4oMini {
				dkaOutcomes = append(dkaOutcomes, out)
			}
		}
	}
	if len(dkaOutcomes) > 0 {
		votes := make([]consensus.Vote, len(dkaOutcomes))
		for i, o := range dkaOutcomes {
			votes[i] = consensus.Vote{Model: o.Model, Verdict: o.Verdict}
		}
		maj, tie := consensus.Majority(votes)
		data.Majority = strconv.FormatBool(maj)
		data.Tie = tie
	}
	a.render(w, "fact", data)
}

// --- error analysis ------------------------------------------------------

type errorsData struct {
	Dataset    dataset.Name
	Model      string
	Models     []string
	Categories []analysis.ErrorCategory
	Counts     map[analysis.ErrorCategory]int
	Total      int
	Samples    []errorSample
}

type errorSample struct {
	FactID   string
	Category analysis.ErrorCategory
	Reason   string
}

func (a *App) handleErrors(w http.ResponseWriter, r *http.Request) {
	dn := dataset.Name(r.URL.Query().Get("dataset"))
	if dn == "" {
		dn = dataset.FactBench
	}
	d, ok := a.bench.Datasets[dn]
	if !ok {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	model := r.URL.Query().Get("model")
	if model == "" {
		model = llm.Gemma2
	}
	m, err := a.bench.Model(model)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	// Run DKA over a bounded slice for interactivity and cluster the
	// mistakes (the hosted app precomputes; we compute on demand).
	facts := d.Facts
	if len(facts) > 400 {
		facts = facts[:400]
	}
	var records []analysis.ErrorRecord
	reasons := map[string]string{}
	for _, f := range facts {
		out, err := (strategy.DKA{}).Verify(r.Context(), m, f)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if out.Correct || out.Verdict == strategy.Invalid {
			continue
		}
		records = append(records, analysis.ErrorRecord{Model: model, FactID: f.ID, Explanation: out.Explanation})
		reasons[f.ID] = out.Explanation
	}
	res := analysis.ClusterErrors(records)
	data := errorsData{
		Dataset:    dn,
		Model:      model,
		Models:     a.bench.Config.Models,
		Categories: analysis.Categories,
		Counts:     res.Counts,
		Total:      res.Total,
	}
	for factID, cat := range res.Assignments {
		data.Samples = append(data.Samples, errorSample{FactID: factID, Category: cat, Reason: reasons[factID]})
	}
	sort.Slice(data.Samples, func(i, j int) bool {
		if data.Samples[i].Category != data.Samples[j].Category {
			return data.Samples[i].Category < data.Samples[j].Category
		}
		return data.Samples[i].FactID < data.Samples[j].FactID
	})
	if len(data.Samples) > 40 {
		data.Samples = data.Samples[:40]
	}
	a.render(w, "errors", data)
}

func (a *App) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := a.tmpl.ExecuteTemplate(w, name, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Warm pre-verifies nothing but forces lazy model construction so the first
// request is fast; safe to skip.
func (a *App) Warm(ctx context.Context) error {
	for _, name := range a.bench.Config.Models {
		if _, err := a.bench.Model(name); err != nil {
			return err
		}
	}
	_ = ctx
	return nil
}
