// Package webapp implements the paper's dedicated web application
// (contribution 4, §1: "enabling users to visually explore and analyze each
// step of the verification process, also featuring error analysis modules").
// It serves server-rendered HTML over the benchmark instance: dataset
// overviews, per-fact drill-downs through every pipeline stage (triple,
// verbalisation, questions with relevance scores, retrieved documents and
// chunks, per-model verdicts under every method, consensus votes, ontology
// rule checks), and the error-clustering study.
//
// Verdicts are served from the content-addressed result store rather than
// recomputed per request: a fact page first probes the store for each
// (method, model) cell snapshot (an O(1) lookup), and on a miss verifies
// just the requested fact while an asynchronous, deduplicated whole-cell
// fill populates the store for subsequent requests. Pointing the app at
// the same -store directory as cmd/factcheck shares one substrate of
// computed results across both consumers. Determinism makes the switch
// invisible: a store-served page is byte-identical to a recomputed one.
package webapp

import (
	"context"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"factcheck/internal/analysis"
	"factcheck/internal/consensus"
	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/rules"
	"factcheck/internal/sched"
	"factcheck/internal/strategy"
)

// App serves the exploration UI for one benchmark instance.
type App struct {
	bench *core.Benchmark
	rules *rules.Engine
	tmpl  *template.Template

	// store backs verdict lookups; a memory-only store when no directory
	// is configured.
	store *core.Store

	// filler dedupes and serialises asynchronous on-demand cell fills (a
	// cold fact page requests every (method, model) cell at once — one
	// fill at a time keeps background work bounded by one cell's worker
	// pool instead of all of them).
	filler *core.CellFiller

	// studies memoizes the error-clustering computation per
	// (dataset, model) with singleflight semantics.
	studyMu sync.Mutex
	studies map[studyKey]*study
}

// Option customises an App.
type Option func(*App)

// WithStore backs the app's verdict lookups (and on-demand fills) with the
// given result store — typically the same directory a cmd/factcheck -store
// run writes, so precomputed grids are served without any verification.
func WithStore(s *core.Store) Option {
	return func(a *App) { a.store = s }
}

// New builds the app over a benchmark instance.
func New(b *core.Benchmark, opts ...Option) (*App, error) {
	t, err := template.New("webapp").Parse(pageTemplates)
	if err != nil {
		return nil, fmt.Errorf("webapp: parsing templates: %w", err)
	}
	a := &App{
		bench:   b,
		rules:   rules.NewEngine(b.World),
		tmpl:    t,
		studies: map[studyKey]*study{},
	}
	for _, o := range opts {
		o(a)
	}
	if a.store == nil {
		a.store = core.NewMemoryStore()
	}
	a.filler = core.NewCellFiller(func(cell core.Cell) error {
		outs, err := b.RunCell(context.Background(), cell.Dataset, cell.Method, cell.Model)
		if err != nil {
			return err
		}
		return a.store.Put(b.CellKey(cell).Fingerprint(), outs)
	})
	return a, nil
}

// cellOutcome returns one (method, model) verdict for one fact. Store hit:
// an O(1) snapshot lookup. Miss: verify just this fact for the response
// while an asynchronous whole-cell fill warms the store, so the next
// request for any fact of the cell is a lookup. Outcomes are deterministic,
// so both paths return identical values.
func (a *App) cellOutcome(ctx context.Context, cell core.Cell, f *dataset.Fact) (strategy.Outcome, error) {
	if outs, ok := a.store.Get(a.bench.CellKey(cell).Fingerprint()); ok {
		if i, ok := a.bench.FactIndex(cell.Dataset)[f.ID]; ok && i < len(outs) {
			return outs[i], nil
		}
	}
	a.filler.Fill(cell)
	return a.bench.VerifyFact(ctx, cell, f)
}

// WaitFills blocks until every in-flight on-demand cell fill has finished
// (graceful shutdown, tests).
func (a *App) WaitFills() { a.filler.Wait() }

// Handler returns the app's HTTP handler.
func (a *App) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", a.handleIndex)
	mux.HandleFunc("GET /facts", a.handleFacts)
	mux.HandleFunc("GET /fact/{id}", a.handleFact)
	mux.HandleFunc("GET /errors", a.handleErrors)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// --- index -------------------------------------------------------------

type indexData struct {
	Datasets []indexDataset
}

type indexDataset struct {
	Name  dataset.Name
	Stats dataset.Stats
}

func (a *App) handleIndex(w http.ResponseWriter, _ *http.Request) {
	var data indexData
	for _, n := range a.bench.Config.Datasets {
		data.Datasets = append(data.Datasets, indexDataset{
			Name:  n,
			Stats: a.bench.Datasets[n].Stats(),
		})
	}
	a.render(w, "index", data)
}

// --- fact list ----------------------------------------------------------

const pageSize = 50

type factsData struct {
	Dataset  dataset.Name
	Page     int
	HasPrev  bool
	HasNext  bool
	PrevPage int
	NextPage int
	Facts    []*dataset.Fact
	Sentence func(*dataset.Fact) string
}

func (a *App) handleFacts(w http.ResponseWriter, r *http.Request) {
	dn := dataset.Name(r.URL.Query().Get("dataset"))
	d, ok := a.bench.Datasets[dn]
	if !ok {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	page, _ := strconv.Atoi(r.URL.Query().Get("page"))
	if page < 0 {
		page = 0
	}
	start := page * pageSize
	if start >= len(d.Facts) {
		start = 0
		page = 0
	}
	end := start + pageSize
	if end > len(d.Facts) {
		end = len(d.Facts)
	}
	a.render(w, "facts", factsData{
		Dataset:  dn,
		Page:     page,
		HasPrev:  page > 0,
		HasNext:  end < len(d.Facts),
		PrevPage: page - 1,
		NextPage: page + 1,
		Facts:    d.Facts[start:end],
	})
}

// --- fact detail ---------------------------------------------------------

type verdictRow struct {
	Model    string
	Method   llm.Method
	Verdict  string
	Correct  bool
	Latency  string
	Tokens   int
	Attempts int
	Reason   string
}

type questionRow struct {
	Text  string
	Score string
}

type docRow struct {
	Title string
	Host  string
	URL   string
}

type factData struct {
	Fact      *dataset.Fact
	Sentence  string
	Triple    string
	Rule      rules.Result
	Questions []questionRow
	Queries   []string
	Docs      []docRow
	Chunks    []string
	Filtered  int
	Verdicts  []verdictRow
	Majority  string
	Tie       bool
}

func (a *App) handleFact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f, ok := a.bench.FactByID(id)
	if !ok {
		http.Error(w, "unknown fact "+id, http.StatusNotFound)
		return
	}
	ctx := r.Context()
	claim := strategy.ClaimFor(f)
	data := factData{
		Fact:     f,
		Sentence: claim.Sentence,
		Triple:   f.Triple.String(),
		Rule:     a.rules.CheckFact(f),
	}

	// Retrieval stages.
	ev, err := a.bench.Pipeline.Retrieve(f)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, q := range ev.Questions {
		data.Questions = append(data.Questions, questionRow{Text: q.Text, Score: fmt.Sprintf("%.2f", q.Score)})
	}
	sort.Slice(data.Questions, func(i, j int) bool { return data.Questions[i].Score > data.Questions[j].Score })
	data.Queries = ev.Queries
	for _, d := range ev.Docs {
		data.Docs = append(data.Docs, docRow{Title: d.Title, Host: d.Host, URL: d.URL})
	}
	data.Chunks = ev.ChunkTexts()
	data.Filtered = ev.FilteredSKG

	// Verdicts of every model under every method (store-backed, filled on
	// demand), plus the DKA majority.
	var dkaOutcomes []strategy.Outcome
	for _, method := range a.bench.Config.Methods {
		for _, name := range a.bench.Config.Models {
			cell := core.Cell{Dataset: f.Dataset, Method: method, Model: name}
			out, err := a.cellOutcome(ctx, cell, f)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			data.Verdicts = append(data.Verdicts, verdictRow{
				Model:    name,
				Method:   method,
				Verdict:  out.Verdict.String(),
				Correct:  out.Correct,
				Latency:  fmt.Sprintf("%.2fs", out.Latency.Seconds()),
				Tokens:   out.PromptTokens + out.CompletionTokens,
				Attempts: out.Attempts,
				Reason:   out.Explanation,
			})
			if method == llm.MethodDKA && name != llm.GPT4oMini {
				dkaOutcomes = append(dkaOutcomes, out)
			}
		}
	}
	if len(dkaOutcomes) > 0 {
		votes := make([]consensus.Vote, len(dkaOutcomes))
		for i, o := range dkaOutcomes {
			votes[i] = consensus.Vote{Model: o.Model, Verdict: o.Verdict}
		}
		maj, tie := consensus.Majority(votes)
		data.Majority = strconv.FormatBool(maj)
		data.Tie = tie
	}
	a.render(w, "fact", data)
}

// --- error analysis ------------------------------------------------------

type errorsData struct {
	Dataset    dataset.Name
	Model      string
	Models     []string
	Categories []analysis.ErrorCategory
	Counts     map[analysis.ErrorCategory]int
	Total      int
	Samples    []errorSample
}

type errorSample struct {
	FactID   string
	Category analysis.ErrorCategory
	Reason   string
}

// errorStudyCap bounds how many facts the error-analysis page verifies,
// keeping the (memoized) computation interactive at full scale.
const errorStudyCap = 400

type studyKey struct {
	dataset dataset.Name
	model   string
}

// study is one memoized error-clustering computation: DKA over the page's
// fact slice, mistakes clustered into E1–E6. done is closed once res,
// reasons and err are set; waiters block on it (singleflight).
type study struct {
	done    chan struct{}
	res     analysis.ClusterResult
	reasons map[string]string
	err     error
}

// errorStudy returns the memoized error study for (dn, model), computing
// it at most once; concurrent requests share one computation. Failed
// studies are evicted so a later request retries.
func (a *App) errorStudy(dn dataset.Name, model string) (*study, error) {
	key := studyKey{dataset: dn, model: model}
	a.studyMu.Lock()
	if s, ok := a.studies[key]; ok {
		a.studyMu.Unlock()
		<-s.done
		return s, s.err
	}
	s := &study{done: make(chan struct{})}
	a.studies[key] = s
	a.studyMu.Unlock()

	s.res, s.reasons, s.err = a.computeStudy(dn, model)
	if s.err != nil {
		a.studyMu.Lock()
		delete(a.studies, key)
		a.studyMu.Unlock()
	}
	close(s.done)
	return s, s.err
}

// computeStudy produces the DKA error clustering for a (dataset, model)
// pair: outcomes come from the result store when the cell snapshot is
// present, otherwise the fact slice fans out over a worker pool at the
// benchmark's parallelism (instead of the old strictly sequential
// per-request loop). Outcomes are index-addressed, so the clustering input
// is in fact order — identical to a sequential computation.
func (a *App) computeStudy(dn dataset.Name, model string) (analysis.ClusterResult, map[string]string, error) {
	d := a.bench.Datasets[dn]
	facts := d.Facts
	if len(facts) > errorStudyCap {
		facts = facts[:errorStudyCap]
	}
	cell := core.Cell{Dataset: dn, Method: llm.MethodDKA, Model: model}
	outs := make([]strategy.Outcome, len(facts))
	if cached, ok := a.store.Get(a.bench.CellKey(cell).Fingerprint()); ok && len(cached) >= len(facts) {
		copy(outs, cached[:len(facts)])
	} else {
		m, err := a.bench.Model(model)
		if err != nil {
			return analysis.ClusterResult{}, nil, err
		}
		pool := sched.New(a.bench.Config.Parallelism)
		err = pool.Run(context.Background(), len(facts), func(ctx context.Context, i int) error {
			out, err := (strategy.DKA{}).Verify(ctx, m, facts[i])
			if err != nil {
				return err
			}
			outs[i] = out
			return nil
		})
		if err != nil {
			return analysis.ClusterResult{}, nil, err
		}
	}
	var records []analysis.ErrorRecord
	reasons := map[string]string{}
	for i, out := range outs {
		if out.Correct || out.Verdict == strategy.Invalid {
			continue
		}
		records = append(records, analysis.ErrorRecord{Model: model, FactID: facts[i].ID, Explanation: out.Explanation})
		reasons[facts[i].ID] = out.Explanation
	}
	return analysis.ClusterErrors(records), reasons, nil
}

func (a *App) handleErrors(w http.ResponseWriter, r *http.Request) {
	dn := dataset.Name(r.URL.Query().Get("dataset"))
	if dn == "" {
		dn = dataset.FactBench
	}
	if _, ok := a.bench.Datasets[dn]; !ok {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	model := r.URL.Query().Get("model")
	if model == "" {
		model = llm.Gemma2
	}
	if _, err := a.bench.Model(model); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	s, err := a.errorStudy(dn, model)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data := errorsData{
		Dataset:    dn,
		Model:      model,
		Models:     a.bench.Config.Models,
		Categories: analysis.Categories,
		Counts:     s.res.Counts,
		Total:      s.res.Total,
	}
	for factID, cat := range s.res.Assignments {
		data.Samples = append(data.Samples, errorSample{FactID: factID, Category: cat, Reason: s.reasons[factID]})
	}
	sort.Slice(data.Samples, func(i, j int) bool {
		if data.Samples[i].Category != data.Samples[j].Category {
			return data.Samples[i].Category < data.Samples[j].Category
		}
		return data.Samples[i].FactID < data.Samples[j].FactID
	})
	if len(data.Samples) > 40 {
		data.Samples = data.Samples[:40]
	}
	a.render(w, "errors", data)
}

func (a *App) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := a.tmpl.ExecuteTemplate(w, name, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Warm pre-verifies nothing but forces lazy model construction so the first
// request is fast; safe to skip.
func (a *App) Warm(ctx context.Context) error {
	for _, name := range a.bench.Config.Models {
		if _, err := a.bench.Model(name); err != nil {
			return err
		}
	}
	_ = ctx
	return nil
}
