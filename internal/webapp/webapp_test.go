package webapp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
)

func server(t *testing.T) (*httptest.Server, *core.Benchmark) {
	t.Helper()
	b := core.NewBenchmark(core.Config{Scale: 0.05, Small: true})
	app, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(app.Handler())
	t.Cleanup(srv.Close)
	return srv, b
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	srv, _ := server(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"FactBench", "YAGO", "DBpedia", "Gold µ", "browse"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestFactsPageAndPagination(t *testing.T) {
	srv, b := server(t)
	code, body := get(t, srv.URL+"/facts?dataset=FactBench")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	first := b.Datasets[dataset.FactBench].Facts[0]
	if !strings.Contains(body, first.ID) {
		t.Errorf("facts page missing first fact %s", first.ID)
	}
	if code, _ := get(t, srv.URL+"/facts?dataset=Nope"); code != http.StatusNotFound {
		t.Errorf("unknown dataset status %d", code)
	}
	// Out-of-range page falls back to page 0.
	if code, _ := get(t, srv.URL+"/facts?dataset=FactBench&page=9999"); code != http.StatusOK {
		t.Errorf("overflow page status %d", code)
	}
}

func TestFactDetailPage(t *testing.T) {
	srv, b := server(t)
	f := b.Datasets[dataset.FactBench].Facts[0]
	code, body := get(t, srv.URL+"/fact/"+f.ID)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body[:min(len(body), 200)])
	}
	wants := []string{
		f.Subject.Label,           // entity surface
		"Verbalised (phase 1)",    // pipeline stage 1
		"generated questions",     // stage 2
		"retrieved evidence",      // stages 3-4
		"Model verdicts",          // verification grid
		"Ontology rule check",     // rules extension
		"DKA majority",            // consensus block
		string(llm.MethodRAG),     // all methods present
		llm.Gemma2, llm.GPT4oMini, // all models present
	}
	for _, w := range wants {
		if !strings.Contains(body, w) {
			t.Errorf("fact page missing %q", w)
		}
	}
	if code, _ := get(t, srv.URL+"/fact/unknown-000001"); code != http.StatusNotFound {
		t.Errorf("unknown fact status %d", code)
	}
}

func TestErrorsPage(t *testing.T) {
	srv, _ := server(t)
	code, body := get(t, srv.URL+"/errors?dataset=FactBench&model="+llm.Mistral)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, w := range []string{"Error analysis", "E1", "E4", "Sample errors", llm.Mistral} {
		if !strings.Contains(body, w) {
			t.Errorf("errors page missing %q", w)
		}
	}
	if code, _ := get(t, srv.URL+"/errors?dataset=FactBench&model=no-model"); code != http.StatusNotFound {
		t.Errorf("unknown model status %d", code)
	}
	// Defaults apply with no parameters.
	if code, _ := get(t, srv.URL+"/errors"); code != http.StatusOK {
		t.Errorf("default errors page status %d", code)
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := server(t)
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz status %d", code)
	}
}
