package webapp

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

func server(t *testing.T) (*httptest.Server, *core.Benchmark) {
	t.Helper()
	b := core.NewBenchmark(core.Config{Scale: 0.05, Small: true})
	app, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(app.Handler())
	t.Cleanup(srv.Close)
	return srv, b
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	srv, _ := server(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"FactBench", "YAGO", "DBpedia", "Gold µ", "browse"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestFactsPageAndPagination(t *testing.T) {
	srv, b := server(t)
	code, body := get(t, srv.URL+"/facts?dataset=FactBench")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	first := b.Datasets[dataset.FactBench].Facts[0]
	if !strings.Contains(body, first.ID) {
		t.Errorf("facts page missing first fact %s", first.ID)
	}
	if code, _ := get(t, srv.URL+"/facts?dataset=Nope"); code != http.StatusNotFound {
		t.Errorf("unknown dataset status %d", code)
	}
	// Out-of-range page falls back to page 0.
	if code, _ := get(t, srv.URL+"/facts?dataset=FactBench&page=9999"); code != http.StatusOK {
		t.Errorf("overflow page status %d", code)
	}
}

func TestFactDetailPage(t *testing.T) {
	srv, b := server(t)
	f := b.Datasets[dataset.FactBench].Facts[0]
	code, body := get(t, srv.URL+"/fact/"+f.ID)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body[:min(len(body), 200)])
	}
	wants := []string{
		f.Subject.Label,           // entity surface
		"Verbalised (phase 1)",    // pipeline stage 1
		"generated questions",     // stage 2
		"retrieved evidence",      // stages 3-4
		"Model verdicts",          // verification grid
		"Ontology rule check",     // rules extension
		"DKA majority",            // consensus block
		string(llm.MethodRAG),     // all methods present
		llm.Gemma2, llm.GPT4oMini, // all models present
	}
	for _, w := range wants {
		if !strings.Contains(body, w) {
			t.Errorf("fact page missing %q", w)
		}
	}
	if code, _ := get(t, srv.URL+"/fact/unknown-000001"); code != http.StatusNotFound {
		t.Errorf("unknown fact status %d", code)
	}
}

func TestErrorsPage(t *testing.T) {
	srv, _ := server(t)
	code, body := get(t, srv.URL+"/errors?dataset=FactBench&model="+llm.Mistral)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, w := range []string{"Error analysis", "E1", "E4", "Sample errors", llm.Mistral} {
		if !strings.Contains(body, w) {
			t.Errorf("errors page missing %q", w)
		}
	}
	if code, _ := get(t, srv.URL+"/errors?dataset=FactBench&model=no-model"); code != http.StatusNotFound {
		t.Errorf("unknown model status %d", code)
	}
	// Defaults apply with no parameters.
	if code, _ := get(t, srv.URL+"/errors"); code != http.StatusOK {
		t.Errorf("default errors page status %d", code)
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := server(t)
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz status %d", code)
	}
}

// storeServer builds an app over a one-model, one-method benchmark with an
// explicit store handle.
func storeServer(t *testing.T, st *core.Store) (*httptest.Server, *App, *core.Benchmark) {
	t.Helper()
	b := core.NewBenchmark(core.Config{
		Scale: 0.05, Small: true,
		Models:  []string{llm.Gemma2},
		Methods: []llm.Method{llm.MethodDKA},
	})
	app, err := New(b, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(app.Handler())
	t.Cleanup(srv.Close)
	return srv, app, b
}

func TestFactPageServesFromStore(t *testing.T) {
	st := core.NewMemoryStore()
	srv, _, b := storeServer(t, st)
	f := b.Datasets[dataset.FactBench].Facts[0]

	// Pre-fill the DKA cell with a marked snapshot: the page must render
	// the stored outcome, not a recomputation.
	outs, err := b.RunCell(context.Background(), dataset.FactBench, llm.MethodDKA, llm.Gemma2)
	if err != nil {
		t.Fatal(err)
	}
	const sentinel = "sentinel-explanation-from-store-7f3a"
	outs[0].Explanation = sentinel
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}
	if err := st.Put(b.CellKey(cell).Fingerprint(), outs); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv.URL+"/fact/"+f.ID)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, sentinel) {
		t.Error("fact page did not serve the stored outcome")
	}
}

func TestFactPageFillsStoreOnDemand(t *testing.T) {
	st := core.NewMemoryStore()
	srv, app, b := storeServer(t, st)
	f := b.Datasets[dataset.YAGO].Facts[0]

	code, cold := get(t, srv.URL+"/fact/"+f.ID)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	app.WaitFills()
	// Every (method, model) cell the page touched is now in the store.
	if want := len(b.Config.Methods) * len(b.Config.Models); st.Len() != want {
		t.Fatalf("store has %d cells after fill, want %d", st.Len(), want)
	}
	// The store-served page is byte-identical to the computed one.
	if _, warm := get(t, srv.URL+"/fact/"+f.ID); warm != cold {
		t.Error("store-backed response differs from computed response")
	}
}

func TestErrorStudyMemoized(t *testing.T) {
	_, app, _ := storeServer(t, core.NewMemoryStore())
	s1, err := app.errorStudy(dataset.FactBench, llm.Gemma2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := app.errorStudy(dataset.FactBench, llm.Gemma2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("error study recomputed instead of memoized")
	}
	if s1.res.Total == 0 {
		t.Error("study found no errors on the small benchmark (suspicious)")
	}
}

func TestErrorStudyUsesStoreSnapshot(t *testing.T) {
	st := core.NewMemoryStore()
	_, app, b := storeServer(t, st)

	// Compute the DKA cell once, plant a sentinel explanation on one wrong
	// prediction, and store the snapshot: the study must surface the
	// sentinel, which only the store-backed path can produce (a
	// recomputation would regenerate the original explanation).
	outs, err := b.RunCell(context.Background(), dataset.FactBench, llm.MethodDKA, llm.Gemma2)
	if err != nil {
		t.Fatal(err)
	}
	const sentinel = "sentinel-reason-only-in-snapshot"
	marked := ""
	for i := range outs {
		if !outs[i].Correct && outs[i].Verdict != strategy.Invalid {
			outs[i].Explanation = sentinel
			marked = outs[i].FactID
			break
		}
	}
	if marked == "" {
		t.Fatal("no wrong prediction to mark on the small benchmark")
	}
	cell := core.Cell{Dataset: dataset.FactBench, Method: llm.MethodDKA, Model: llm.Gemma2}
	if err := st.Put(b.CellKey(cell).Fingerprint(), outs); err != nil {
		t.Fatal(err)
	}
	s, err := app.errorStudy(dataset.FactBench, llm.Gemma2)
	if err != nil {
		t.Fatal(err)
	}
	if s.reasons[marked] != sentinel {
		t.Errorf("study reason for %s = %q, want the stored sentinel", marked, s.reasons[marked])
	}
	// Cross-check totals against a direct count over the snapshot.
	wantErrs := 0
	for _, o := range outs {
		if !o.Correct && o.Verdict != strategy.Invalid {
			wantErrs++
		}
	}
	if s.res.Total != wantErrs {
		t.Errorf("study total = %d, want %d", s.res.Total, wantErrs)
	}
}
