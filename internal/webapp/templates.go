package webapp

// pageTemplates holds the server-rendered HTML of the exploration UI. One
// define block per page, sharing the head/style fragment.
const pageTemplates = `
{{define "head"}}
<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>FactCheck explorer</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }
 table { border-collapse: collapse; width: 100%; margin: 1rem 0; }
 th, td { border: 1px solid #ccc; padding: .35rem .6rem; text-align: left; font-size: .92rem; }
 th { background: #f2f2f2; }
 .true { color: #0a7a33; font-weight: 600; }
 .false { color: #b3261e; font-weight: 600; }
 .invalid { color: #8a6d00; font-weight: 600; }
 .chunk { background: #f7f7f7; border-left: 3px solid #999; margin: .4rem 0; padding: .4rem .7rem; font-size: .88rem; }
 nav a { margin-right: 1rem; }
 code { background: #f2f2f2; padding: .1rem .3rem; }
 .muted { color: #666; font-size: .85rem; }
</style></head><body>
<nav><a href="/">Datasets</a><a href="/errors">Error analysis</a></nav>
{{end}}

{{define "foot"}}</body></html>{{end}}

{{define "index"}}
{{template "head" .}}
<h1>FactCheck benchmark explorer</h1>
<p>Synthetic reproduction of the FactCheck benchmark (EDBT 2026). Pick a
dataset to browse facts and drill into every verification stage.</p>
<table>
<tr><th>Dataset</th><th>Facts</th><th>Predicates</th><th>Facts/entity</th><th>Gold µ</th><th></th></tr>
{{range .Datasets}}
<tr>
 <td>{{.Name}}</td>
 <td>{{.Stats.NumFacts}}</td>
 <td>{{.Stats.NumPredicates}}</td>
 <td>{{printf "%.2f" .Stats.FactsPerEntity}}</td>
 <td>{{printf "%.2f" .Stats.GoldAccuracy}}</td>
 <td><a href="/facts?dataset={{.Name}}">browse</a></td>
</tr>
{{end}}
</table>
{{template "foot" .}}
{{end}}

{{define "facts"}}
{{template "head" .}}
<h1>{{.Dataset}} — facts (page {{.Page}})</h1>
<p>
{{if .HasPrev}}<a href="/facts?dataset={{.Dataset}}&page={{.PrevPage}}">&laquo; previous</a>{{end}}
{{if .HasNext}}<a href="/facts?dataset={{.Dataset}}&page={{.NextPage}}">next &raquo;</a>{{end}}
</p>
<table>
<tr><th>ID</th><th>Subject</th><th>Predicate</th><th>Object</th><th>Gold</th><th>Corruption</th></tr>
{{range .Facts}}
<tr>
 <td><a href="/fact/{{.ID}}">{{.ID}}</a></td>
 <td>{{.Subject.Label}}</td>
 <td><code>{{.PredicateName}}</code></td>
 <td>{{.Object.Label}}</td>
 <td class="{{if .Gold}}true{{else}}false{{end}}">{{.Gold}}</td>
 <td>{{.Corruption}}</td>
</tr>
{{end}}
</table>
{{template "foot" .}}
{{end}}

{{define "fact"}}
{{template "head" .}}
<h1>{{.Fact.ID}}</h1>
<p><b>Triple:</b> <code>{{.Triple}}</code></p>
<p><b>Verbalised (phase 1):</b> {{.Sentence}}</p>
<p><b>Gold label:</b> <span class="{{if .Fact.Gold}}true{{else}}false{{end}}">{{.Fact.Gold}}</span>
{{if .Fact.Corruption}} (corrupted via {{.Fact.Corruption}}){{end}}
 &nbsp;·&nbsp; topic {{.Fact.Topic}} &nbsp;·&nbsp; popularity {{printf "%.3f" .Fact.Popularity}}</p>
<p><b>Ontology rule check:</b> {{.Rule.Verdict}}{{if .Rule.Rule}} ({{.Rule.Rule}}: {{.Rule.Explanation}}){{end}}</p>

<h2>Phase 2 — generated questions</h2>
<table><tr><th>Question</th><th>Relevance δ</th></tr>
{{range .Questions}}<tr><td>{{.Text}}</td><td>{{.Score}}</td></tr>{{end}}
</table>
<p class="muted">Queries issued: {{range .Queries}}<code>{{.}}</code> {{end}}</p>

<h2>Phase 3/4 — retrieved evidence</h2>
<p class="muted">{{.Filtered}} KG-source pages filtered (circular-verification guard).</p>
<table><tr><th>Title</th><th>Host</th></tr>
{{range .Docs}}<tr><td><a href="{{.URL}}">{{.Title}}</a></td><td>{{.Host}}</td></tr>{{end}}
</table>
{{range .Chunks}}<div class="chunk">{{.}}</div>{{end}}

<h2>Model verdicts</h2>
<table>
<tr><th>Model</th><th>Method</th><th>Verdict</th><th>Correct</th><th>Latency</th><th>Tokens</th><th>Attempts</th><th>Reason</th></tr>
{{range .Verdicts}}
<tr>
 <td>{{.Model}}</td><td>{{.Method}}</td>
 <td class="{{.Verdict}}">{{.Verdict}}</td>
 <td>{{if .Correct}}✓{{else}}✗{{end}}</td>
 <td>{{.Latency}}</td><td>{{.Tokens}}</td><td>{{.Attempts}}</td>
 <td class="muted">{{.Reason}}</td>
</tr>
{{end}}
</table>
<p><b>Open-source DKA majority:</b> {{.Majority}}{{if .Tie}} (tie — arbiter required){{end}}</p>
{{template "foot" .}}
{{end}}

{{define "errors"}}
{{template "head" .}}
<h1>Error analysis — {{.Dataset}} / {{.Model}} (DKA)</h1>
<p>
{{$d := .Dataset}}
Model: {{range .Models}}<a href="/errors?dataset={{$d}}&model={{.}}">{{.}}</a> {{end}}
</p>
<table>
<tr>{{range .Categories}}<th>{{.}}</th>{{end}}<th>Total</th></tr>
<tr>{{$c := .Counts}}{{range .Categories}}<td>{{index $c .}}</td>{{end}}<td>{{.Total}}</td></tr>
</table>
<h2>Sample errors</h2>
<table>
<tr><th>Fact</th><th>Category</th><th>Model explanation</th></tr>
{{range .Samples}}
<tr><td><a href="/fact/{{.FactID}}">{{.FactID}}</a></td><td>{{.Category}}</td><td class="muted">{{.Reason}}</td></tr>
{{end}}
</table>
{{template "foot" .}}
{{end}}
`
