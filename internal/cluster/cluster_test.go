package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedderDeterministic(t *testing.T) {
	e1 := NewEmbedder("seed")
	e2 := NewEmbedder("seed")
	a := e1.Embed("some explanation text about geography")
	b := e2.Embed("some explanation text about geography")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("embeddings differ at dim %d", i)
		}
	}
}

func TestEmbedderNormalised(t *testing.T) {
	e := NewEmbedder("seed")
	v := e.Embed("the stated place conflicts with the known location")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("norm^2 = %f, want 1", norm)
	}
	if len(v) != ReducedDim {
		t.Errorf("dim = %d, want %d", len(v), ReducedDim)
	}
}

func TestEmbedderSimilarTextsCloser(t *testing.T) {
	e := NewEmbedder("seed")
	a := e.Embed("the stated place conflicts with the known location of the person")
	b := e.Embed("geographic records associate the person with a different location")
	c := e.Embed("the genre classification does not include this category")
	if Euclidean(a, b) >= Euclidean(a, c) {
		t.Error("same-topic texts not closer than cross-topic texts")
	}
}

func TestEuclidean(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{3, 4, 0}
	if got := Euclidean(a, b); got != 5 {
		t.Errorf("Euclidean = %f, want 5", got)
	}
	if got := Euclidean(b, b); got != 0 {
		t.Errorf("self distance = %f, want 0", got)
	}
}

func TestEuclideanSymmetryProperty(t *testing.T) {
	f := func(xs, ys [4]float64) bool {
		a, b := xs[:], ys[:]
		for i := range a { // avoid inf/nan inputs
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			a[i] = math.Mod(a[i], 100)
			b[i] = math.Mod(b[i], 100)
		}
		return math.Abs(Euclidean(a, b)-Euclidean(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBSCANSeparatesClusters(t *testing.T) {
	// Two tight groups far apart plus one lone noise point.
	var pts [][]float64
	for i := 0; i < 5; i++ {
		pts = append(pts, []float64{0 + 0.01*float64(i), 0})
	}
	for i := 0; i < 5; i++ {
		pts = append(pts, []float64{10 + 0.01*float64(i), 10})
	}
	pts = append(pts, []float64{100, -100})

	labels := DBSCAN(pts, 0.5, 3)
	sizes, noise := Sizes(labels)
	if len(sizes) != 2 {
		t.Fatalf("found %d clusters, want 2 (sizes=%v)", len(sizes), sizes)
	}
	for id, n := range sizes {
		if n != 5 {
			t.Errorf("cluster %d size %d, want 5", id, n)
		}
	}
	if noise != 1 {
		t.Errorf("noise = %d, want 1", noise)
	}
	// Points in the same group share a label.
	for i := 1; i < 5; i++ {
		if labels[i] != labels[0] {
			t.Error("first group split")
		}
		if labels[5+i] != labels[5] {
			t.Error("second group split")
		}
	}
	if labels[0] == labels[5] {
		t.Error("distinct groups merged")
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	labels := DBSCAN(pts, 0.5, 2)
	_, noise := Sizes(labels)
	if noise != 3 {
		t.Errorf("noise = %d, want 3", noise)
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.1, 0}, {0.2, 0}, {5, 5}, {5.1, 5}, {5.2, 5}}
	a := DBSCAN(pts, 0.3, 2)
	b := DBSCAN(pts, 0.3, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DBSCAN not deterministic")
		}
	}
}

func TestDBSCANEmptyInput(t *testing.T) {
	if got := DBSCAN(nil, 1, 2); len(got) != 0 {
		t.Errorf("DBSCAN(nil) = %v", got)
	}
}

func TestDBSCANBorderAbsorption(t *testing.T) {
	// A chain where the middle point connects two dense regions: labels
	// must be dense, starting at 0.
	pts := [][]float64{{0}, {0.1}, {0.2}, {0.3}, {0.4}}
	labels := DBSCAN(pts, 0.15, 2)
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("chain split: labels = %v", labels)
		}
	}
}

func TestTopTerms(t *testing.T) {
	texts := []string{
		"geography location country city",
		"location country geography",
		"genre classification music",
	}
	labels := []int{0, 0, 1}
	terms := TopTerms(texts, labels, 0, 2)
	if len(terms) != 2 {
		t.Fatalf("got %d terms", len(terms))
	}
	set := map[string]bool{terms[0]: true, terms[1]: true}
	if !set["geography"] || !set["location"] && !set["country"] {
		t.Errorf("top terms = %v", terms)
	}
	if got := TopTerms(texts, labels, 1, 10); len(got) != 3 {
		t.Errorf("cluster 1 terms = %v", got)
	}
}
