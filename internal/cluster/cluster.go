// Package cluster provides the embedding + dimensionality-reduction +
// density-clustering stack behind the qualitative error analysis (paper §7).
// The paper encodes LLM error explanations with cde-small-v1, reduces with
// UMAP and clusters with HDBSCAN; this package substitutes a hashed
// bag-of-words embedding, a seeded random projection, and a from-scratch
// density-based clusterer (DBSCAN-style with noise points), which yields the
// same artefact: groups of lexically similar explanations plus an unassigned
// remainder.
package cluster

import (
	"math"
	"sort"

	"factcheck/internal/det"
	"factcheck/internal/text"
)

// ReducedDim is the dimensionality after random projection (UMAP stand-in).
const ReducedDim = 16

// Embedder converts a text into a reduced dense vector.
type Embedder struct {
	// projection[i][j] is the weight of input dim j on output dim i.
	projection [][]float64
}

// NewEmbedder builds a deterministic random-projection embedder, seeded so
// every run produces identical coordinates.
func NewEmbedder(seed string) *Embedder {
	proj := make([][]float64, ReducedDim)
	for i := range proj {
		row := make([]float64, text.VectorDim)
		rng := det.Source("cluster-proj", seed, string(rune('a'+i)))
		for j := range row {
			// Sparse random projection (Achlioptas): +-1 with prob 1/6 each.
			u := rng.Float64()
			switch {
			case u < 1.0/6:
				row[j] = 1
			case u < 2.0/6:
				row[j] = -1
			}
		}
		proj[i] = row
	}
	return &Embedder{projection: proj}
}

// Embed returns the reduced, L2-normalised vector of s.
func (e *Embedder) Embed(s string) []float64 {
	tv := text.Embed(s)
	out := make([]float64, ReducedDim)
	var norm float64
	for i, row := range e.projection {
		var dot float64
		for j, w := range row {
			if w != 0 && tv[j] != 0 {
				dot += w * float64(tv[j])
			}
		}
		out[i] = dot
		norm += dot * dot
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// Euclidean returns the Euclidean distance between equal-length vectors.
func Euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Noise is the cluster label of unassigned points (HDBSCAN convention).
const Noise = -1

// DBSCAN clusters points by density: a point with at least minPts
// neighbours within eps seeds a cluster that expands through
// density-reachable points; the rest is Noise. Labels are returned
// per-point; cluster ids are dense, starting at 0, assigned in scan order
// so results are deterministic.
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	cluster := 0
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if j != i && Euclidean(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nb := neighbors(i)
		if len(nb)+1 < minPts {
			continue // noise (may later be absorbed as a border point)
		}
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for k := 0; k < len(queue); k++ {
			j := queue[k]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = cluster
			nb2 := neighbors(j)
			if len(nb2)+1 >= minPts {
				queue = append(queue, nb2...)
			}
		}
		cluster++
	}
	return labels
}

// Sizes returns cluster id -> member count (excluding Noise), plus the
// noise count.
func Sizes(labels []int) (map[int]int, int) {
	sizes := map[int]int{}
	noise := 0
	for _, l := range labels {
		if l == Noise {
			noise++
			continue
		}
		sizes[l]++
	}
	return sizes, noise
}

// TopTerms returns the k most frequent content tokens of the texts in a
// cluster — the descriptive label assignment step of the paper's pipeline.
func TopTerms(texts []string, labels []int, cluster, k int) []string {
	freq := map[string]int{}
	for i, t := range texts {
		if labels[i] != cluster {
			continue
		}
		for _, tok := range text.ContentTokens(t) {
			freq[tok]++
		}
	}
	type tf struct {
		tok string
		n   int
	}
	all := make([]tf, 0, len(freq))
	for t, n := range freq {
		all = append(all, tf{t, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].tok
	}
	return out
}
