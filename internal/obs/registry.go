package obs

import (
	"sort"
	"sync"
	"time"
)

// Registry owns a process-wide set of named histograms, grouped into
// families (one Prometheus metric per family, one label value per
// histogram). Lookup-or-create takes a mutex; hot paths resolve their
// *Histogram once (package-level var, struct field) and record lock-free
// thereafter.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

type family struct {
	order []string
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry: the serving layers record into it
// and /metricsz renders it. Tests that need isolation build their own.
var Default = NewRegistry()

// Histogram returns the (family, label) histogram, creating it on first
// use. The same pair always returns the same histogram.
func (r *Registry) Histogram(familyName, label string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[familyName]
	if f == nil {
		f = &family{hists: map[string]*Histogram{}}
		r.families[familyName] = f
		r.order = append(r.order, familyName)
	}
	h := f.hists[label]
	if h == nil {
		h = &Histogram{}
		f.hists[label] = h
		f.order = append(f.order, label)
	}
	return h
}

// Layer returns the named layer histogram of the default registry — one
// per instrumented serving layer (lru, store, exec_wait, verify, the rag
// phases, consensus tiers, ...).
func Layer(label string) *Histogram { return Default.Histogram("layer", label) }

// Endpoint returns the named endpoint histogram of the default registry —
// whole-request latency per HTTP endpoint.
func Endpoint(label string) *Histogram { return Default.Histogram("endpoint", label) }

// Summary condenses one histogram for JSON stats payloads (the /statsz
// latency section): count plus derived quantiles in milliseconds.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summarize derives the stats-payload view of a snapshot.
func Summarize(s HistSnapshot) Summary {
	return Summary{
		Count:  s.Count,
		MeanMS: ms(s.Mean()),
		P50MS:  ms(s.Quantile(0.50)),
		P95MS:  ms(s.Quantile(0.95)),
		P99MS:  ms(s.Quantile(0.99)),
	}
}

// Summaries returns "family/label" -> Summary for every histogram that has
// recorded at least one observation, in deterministic (sorted) key order
// courtesy of JSON map marshalling.
func (r *Registry) Summaries() map[string]Summary {
	out := map[string]Summary{}
	for _, e := range r.entries() {
		if s := e.h.Snapshot(); s.Count > 0 {
			out[e.fam+"/"+e.label] = Summarize(s)
		}
	}
	return out
}

// histEntry is one registered histogram with its coordinates.
type histEntry struct {
	fam, label string
	h          *Histogram
}

// entries returns a stable copy of the registry's shape: families and
// labels in sorted order, so every rendering of the registry is
// deterministic regardless of creation order.
func (r *Registry) entries() []histEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := append([]string(nil), r.order...)
	sort.Strings(fams)
	var out []histEntry
	for _, fn := range fams {
		f := r.families[fn]
		labels := append([]string(nil), f.order...)
		sort.Strings(labels)
		for _, l := range labels {
			out = append(out, histEntry{fam: fn, label: l, h: f.hists[l]})
		}
	}
	return out
}
