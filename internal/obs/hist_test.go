package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{8, 3},
		{9, 4},
		{1024, 10},
		{1025, 11},
		{time.Microsecond, 10}, // 1000 ns <= 1024
		{time.Millisecond, 20}, // 1e6 ns <= 2^20
		{time.Second, 30},      // 1e9 ns <= 2^30
		{time.Duration(1) << 61, 61},
		{time.Duration(1)<<61 + 1, 62},
		{time.Duration(math.MaxInt64), 62},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every observation must satisfy d <= BucketUpper(bucketIndex(d)) and,
	// for buckets past the first, d > BucketUpper(i-1).
	for _, d := range []time.Duration{1, 2, 3, 7, 8, 9, 1 << 20, 1<<20 + 1, 1 << 40} {
		i := bucketIndex(d)
		if d > BucketUpper(i) {
			t.Errorf("d=%d above its bucket upper %d", d, BucketUpper(i))
		}
		if i > 0 && d <= BucketUpper(i-1) {
			t.Errorf("d=%d should have landed in bucket %d", d, i-1)
		}
	}
	if BucketUpper(NumBuckets-1) != time.Duration(math.MaxInt64) {
		t.Errorf("last bucket upper = %d, want MaxInt64", BucketUpper(NumBuckets-1))
	}
}

// refQuantile is the plain sorted-sample nearest-rank quantile, bucketised
// to the same power-of-two resolution the histogram can express.
func refQuantile(samples []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return BucketUpper(bucketIndex(sorted[rank-1]))
}

func TestQuantileMatchesSortedReference(t *testing.T) {
	sets := [][]time.Duration{
		{5},
		{1, 2, 3},
		{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
		{time.Microsecond, 3 * time.Microsecond, 90 * time.Microsecond,
			time.Millisecond, 4 * time.Millisecond, 40 * time.Millisecond,
			time.Second, 2 * time.Second},
	}
	// A deterministic pseudo-random spread exercising many buckets.
	var spread []time.Duration
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		spread = append(spread, time.Duration(x%uint64(10*time.Second)))
	}
	sets = append(sets, spread)

	for si, samples := range sets {
		var h Histogram
		for _, d := range samples {
			h.Observe(d)
		}
		s := h.Snapshot()
		if s.Count != uint64(len(samples)) {
			t.Fatalf("set %d: count %d, want %d", si, s.Count, len(samples))
		}
		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
			got := s.Quantile(q)
			want := refQuantile(samples, q)
			if got != want {
				t.Errorf("set %d q=%v: histogram %v, reference %v", si, q, got, want)
			}
		}
	}
}

func TestQuantileEmptyAndMean(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}
	h.Observe(10)
	h.Observe(30)
	s = h.Snapshot()
	if got := s.Mean(); got != 20 {
		t.Errorf("mean = %v, want 20", got)
	}
	if got := s.Sum; got != 40 {
		t.Errorf("sum = %v, want 40", got)
	}
}

func TestConcurrentAddDeterminism(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Each goroutine walks the same duration ladder, so the
				// final per-bucket counts are independent of interleaving.
				h.Observe(time.Duration(1) << uint(i%40))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count %d, want %d", s.Count, goroutines*perG)
	}
	var want Histogram
	for i := 0; i < perG; i++ {
		want.Observe(time.Duration(1) << uint(i%40))
	}
	ws := want.Snapshot()
	for i := range s.Buckets {
		if s.Buckets[i] != goroutines*ws.Buckets[i] {
			t.Errorf("bucket %d: %d, want %d", i, s.Buckets[i], goroutines*ws.Buckets[i])
		}
	}
	if s.Sum != time.Duration(goroutines)*ws.Sum {
		t.Errorf("sum %d, want %d", s.Sum, time.Duration(goroutines)*ws.Sum)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

func TestRegistryIdentityAndSummaries(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("layer", "lru")
	if b := r.Histogram("layer", "lru"); a != b {
		t.Fatal("same (family,label) returned different histograms")
	}
	if c := r.Histogram("layer", "store"); a == c {
		t.Fatal("distinct labels share a histogram")
	}
	a.Observe(time.Millisecond)
	a.Observe(3 * time.Millisecond)
	r.Histogram("endpoint", "verify").Observe(2 * time.Millisecond)
	sums := r.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %v, want 2 entries", sums)
	}
	lru, ok := sums["layer/lru"]
	if !ok {
		t.Fatalf("missing layer/lru in %v", sums)
	}
	if lru.Count != 2 {
		t.Errorf("layer/lru count = %d, want 2", lru.Count)
	}
	if lru.P99MS < lru.P50MS {
		t.Errorf("p99 %v < p50 %v", lru.P99MS, lru.P50MS)
	}
	if _, ok := sums["layer/store"]; ok {
		t.Error("empty histogram appeared in summaries")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 37 * time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += 13
		}
	})
}
