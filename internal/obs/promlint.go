package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-format exposition: comment structure,
// metric-name and label syntax, parseable sample values, TYPE declarations
// preceding their samples, and histogram invariants (every _bucket series
// carries an le label, cumulative bucket counts are non-decreasing in le,
// the series ends at +Inf, and _count matches the +Inf bucket). It is the
// parser behind the CI gate that scrapes /metricsz, so it errs on the
// strict side; the first violation is returned with its line number.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	types := map[string]string{} // metric name -> declared type
	seen := map[string]bool{}    // full series (name + label set) -> dup check
	type histState struct {
		lastLe  float64
		lastCum uint64
		infSeen bool
		infVal  uint64
	}
	hists := map[string]*histState{} // name{labels-sans-le} -> bucket walk
	counts := map[string]uint64{}    // histogram base+labels -> _count value

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true

		base, suffix := splitSuffix(name)
		if types[base] == "histogram" && suffix != "" {
			key := base + "{" + stripLabel(labels, "le") + "}"
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: %s series missing le label", lineNo, name)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %w", lineNo, le, err)
					}
				}
				h := hists[key]
				if h == nil {
					h = &histState{lastLe: math.Inf(-1)}
					hists[key] = h
				}
				if bound <= h.lastLe {
					return fmt.Errorf("line %d: %s le %q not increasing", lineNo, name, le)
				}
				cum := uint64(value)
				if cum < h.lastCum {
					return fmt.Errorf("line %d: %s cumulative count decreased at le %q", lineNo, name, le)
				}
				h.lastLe, h.lastCum = bound, cum
				if math.IsInf(bound, 1) {
					h.infSeen, h.infVal = true, cum
				}
			case "_count":
				counts[key] = uint64(value)
			}
		} else if typ, ok := types[name]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE declaration", lineNo, name)
		} else if typ == "counter" && (value < 0 || value != math.Trunc(value)) {
			return fmt.Errorf("line %d: counter %s value %v not a non-negative integer", lineNo, name, value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if c, ok := counts[key]; !ok {
			return fmt.Errorf("histogram %s has no _count series", key)
		} else if c != h.infVal {
			return fmt.Errorf("histogram %s _count %d != +Inf bucket %d", key, c, h.infVal)
		}
	}
	return nil
}

func lintComment(line string, types map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment")
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment")
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

// parseSample splits "name{labels} value" (labels optional) and validates
// each piece.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		if err := lintLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample missing value")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	valueField := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valueField = rest[:sp] // optional timestamp after the value
	}
	value, err = strconv.ParseFloat(valueField, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q", valueField)
	}
	return name, labels, value, nil
}

// lintLabels validates a comma-separated label body: name="quoted value"
// pairs with valid label names and closed quotes.
func lintLabels(body string) error {
	for _, pair := range splitLabels(body) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("label %q missing =", pair)
		}
		lname := pair[:eq]
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		v := pair[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label %s value not quoted", lname)
		}
	}
	return nil
}

// splitLabels splits on commas outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// labelValue extracts one (unescaped) label value from a label body.
func labelValue(body, name string) (string, bool) {
	for _, pair := range splitLabels(body) {
		if v, ok := strings.CutPrefix(pair, name+"="); ok {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// stripLabel removes one label pair from a label body, canonicalising the
// series key used to group histogram buckets.
func stripLabel(body, name string) string {
	var kept []string
	for _, pair := range splitLabels(body) {
		if !strings.HasPrefix(pair, name+"=") {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

func splitSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, s); ok {
			return b, s
		}
	}
	return name, ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
