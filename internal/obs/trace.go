package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factcheck/internal/det"
)

// Span is one timed layer of a trace. Start is the offset from the trace's
// start; Dur is zero while the span is open. Parent indexes the enclosing
// span within the same trace (-1 for the root).
type Span struct {
	Name   string
	Parent int32
	Start  time.Duration
	Dur    time.Duration
}

// Trace is one request's span record. Span appends are mutex-guarded —
// batch fan-out and consensus waves record spans from several goroutines —
// but a trace only ever exists on sampled (or forced) requests, so the
// warm path never touches the lock.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// ID returns the trace's identifier (the X-Trace-Id header value).
func (t *Trace) ID() string { return t.id }

// startSpan opens a span under the given parent index and returns its
// index.
func (t *Trace) startSpan(name string, parent int32) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: time.Since(t.start)})
	return int32(len(t.spans) - 1)
}

// endSpan closes the span at idx.
func (t *Trace) endSpan(idx int32) {
	now := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.spans[idx]
	s.Dur = now - s.Start
}

// ServerTiming renders the root's direct children as a Server-Timing
// header value ("lru;dur=0.012, verify;dur=3.1, total;dur=3.2"). Only
// closed spans are included; durations are milliseconds. Span names are
// header-token-safe by construction (the instrumented layers use
// [a-z0-9_] names).
func (t *Trace) ServerTiming() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i := range t.spans {
		s := &t.spans[i]
		if s.Parent != 0 || s.Dur == 0 || i == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", s.Name, ms(s.Dur))
	}
	if len(t.spans) > 0 {
		root := t.spans[0]
		dur := root.Dur
		if dur == 0 {
			dur = time.Since(t.start) - root.Start
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "total;dur=%.3f", ms(dur))
	}
	return b.String()
}

// spanRef is the context value: a trace plus the index of the span that is
// the current parent.
type spanRef struct {
	tr  *Trace
	idx int32
}

type ctxKey struct{}

// TraceFromContext returns the context's trace, or nil when the request is
// unsampled (or untraced).
func TraceFromContext(ctx context.Context) *Trace {
	if ref, ok := ctx.Value(ctxKey{}).(spanRef); ok {
		return ref.tr
	}
	return nil
}

// noopEnd is returned by StartSpan on untraced contexts so the warm path
// never allocates a closure.
var noopEnd = func() {}

// StartSpan opens a child span of the context's current span and returns a
// derived context (the new span becomes the parent for nested StartSpan
// calls) plus an end function. On an untraced context it returns the
// context unchanged and a shared no-op — one context lookup, zero
// allocations — so instrumentation points are free on the warm path.
func StartSpan(ctx context.Context, name string) (context.Context, func()) {
	ref, ok := ctx.Value(ctxKey{}).(spanRef)
	if !ok {
		return ctx, noopEnd
	}
	idx := ref.tr.startSpan(name, ref.idx)
	tr := ref.tr
	return context.WithValue(ctx, ctxKey{}, spanRef{tr: tr, idx: idx}), func() { tr.endSpan(idx) }
}

// TracerConfig parameterises a Tracer.
type TracerConfig struct {
	// Sample is the fraction of requests traced: <= 0 disables sampling
	// (forced traces still work), >= 1 traces everything, and anything in
	// between traces every round(1/Sample)-th request — deterministic
	// (counter-based, not random), so a seeded load plan samples the same
	// requests on every run.
	Sample float64
	// Ring bounds how many finished traces are retained for /v1/trace
	// lookups (default 512). Evicted traces return their span buffers to
	// the pool.
	Ring int
	// Seed makes trace IDs deterministic (det-derived from the sequence
	// number) when non-empty; otherwise IDs are random.
	Seed string
}

// Tracer samples requests into traces and retains finished traces in a
// bounded ring, addressable by ID.
type Tracer struct {
	every uint64 // trace when seq%every == 0; 0 = sampling off
	seed  string
	seq   atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next int
	byID map[string]*Trace
	pool sync.Pool // []Span buffers recycled through ring eviction
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 512
	}
	t := &Tracer{
		seed: cfg.Seed,
		ring: make([]*Trace, cfg.Ring),
		byID: map[string]*Trace{},
	}
	switch {
	case cfg.Sample >= 1:
		t.every = 1
	case cfg.Sample > 0:
		t.every = uint64(1/cfg.Sample + 0.5)
	}
	return t
}

// Start begins a trace for one request when sampling (or force) selects
// it, returning a derived context carrying the root span. Unsampled
// requests return the context unchanged and a nil trace. The caller must
// Finish every non-nil trace.
func (t *Tracer) Start(ctx context.Context, rootName string, force bool) (context.Context, *Trace) {
	seq := t.seq.Add(1) - 1
	if !force && (t.every == 0 || seq%t.every != 0) {
		return ctx, nil
	}
	var id uint64
	if t.seed != "" {
		id = det.Hash64("trace", t.seed, strconv.FormatUint(seq, 10))
	} else {
		id = rand.Uint64()
	}
	tr := &Trace{id: fmt.Sprintf("%016x", id), start: time.Now()}
	if buf, ok := t.pool.Get().(*[]Span); ok {
		tr.spans = (*buf)[:0]
	}
	tr.spans = append(tr.spans, Span{Name: rootName, Parent: -1})
	return context.WithValue(ctx, ctxKey{}, spanRef{tr: tr, idx: 0}), tr
}

// Finish closes the trace's root span and publishes the trace to the ring,
// evicting (and recycling the span buffer of) the oldest entry.
func (t *Tracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	tr.endSpan(0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.ring[t.next]; old != nil {
		delete(t.byID, old.id)
		old.mu.Lock()
		buf := old.spans[:0]
		old.spans = nil
		old.mu.Unlock()
		t.pool.Put(&buf)
	}
	t.ring[t.next] = tr
	t.byID[tr.id] = tr
	t.next = (t.next + 1) % len(t.ring)
}

// SpanOut is one span of a trace snapshot, JSON-shaped for the /v1/trace
// debug endpoint.
type SpanOut struct {
	Name string `json:"name"`
	// Parent is the index of the enclosing span (-1 for the root).
	Parent int `json:"parent"`
	// StartUS is the offset from the trace start, DurUS the span length,
	// both in microseconds of real (not simulated) time.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// TraceOut is the JSON payload of one finished trace.
type TraceOut struct {
	TraceID string    `json:"trace_id"`
	Spans   []SpanOut `json:"spans"`
}

// Get snapshots a finished trace by ID.
func (t *Tracer) Get(id string) (TraceOut, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byID[id]
	if !ok {
		return TraceOut{}, false
	}
	out := TraceOut{TraceID: tr.id}
	tr.mu.Lock()
	for _, s := range tr.spans {
		out.Spans = append(out.Spans, SpanOut{
			Name:    s.Name,
			Parent:  int(s.Parent),
			StartUS: float64(s.Start) / float64(time.Microsecond),
			DurUS:   float64(s.Dur) / float64(time.Microsecond),
		})
	}
	tr.mu.Unlock()
	return out, true
}
