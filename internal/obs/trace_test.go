package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTracerSamplingAndDeterministicIDs(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 0.5, Seed: "s1"})
	var traced int
	var ids []string
	for i := 0; i < 10; i++ {
		_, tt := tr.Start(context.Background(), "request", false)
		if tt != nil {
			traced++
			ids = append(ids, tt.ID())
			tr.Finish(tt)
		}
	}
	if traced != 5 {
		t.Fatalf("sample=0.5 traced %d of 10, want 5", traced)
	}
	// Same seed, fresh tracer: identical IDs in identical order.
	tr2 := NewTracer(TracerConfig{Sample: 0.5, Seed: "s1"})
	for i := 0; i < 10; i++ {
		_, tt := tr2.Start(context.Background(), "request", false)
		if tt != nil {
			if got := tt.ID(); got != ids[0] {
				t.Fatalf("seeded trace id %q, want %q", got, ids[0])
			}
			ids = ids[1:]
			tr2.Finish(tt)
		}
	}

	off := NewTracer(TracerConfig{})
	for i := 0; i < 100; i++ {
		if _, tt := off.Start(context.Background(), "request", false); tt != nil {
			t.Fatal("sample=0 traced a request without force")
		}
	}
	if _, tt := off.Start(context.Background(), "request", true); tt == nil {
		t.Fatal("force did not trace")
	}
}

func TestSpanNestingAndGet(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Seed: "x"})
	ctx, tt := tr.Start(context.Background(), "request", false)
	if tt == nil {
		t.Fatal("sample=1 did not trace")
	}
	ctx2, endA := StartSpan(ctx, "a")
	_, endB := StartSpan(ctx2, "b") // child of a
	time.Sleep(time.Millisecond)
	endB()
	endA()
	_, endC := StartSpan(ctx, "c") // sibling of a
	endC()
	tr.Finish(tt)

	out, ok := tr.Get(tt.ID())
	if !ok {
		t.Fatalf("trace %s not found after Finish", tt.ID())
	}
	if out.TraceID != tt.ID() {
		t.Errorf("trace id %q != %q", out.TraceID, tt.ID())
	}
	names := make(map[string]SpanOut, len(out.Spans))
	for _, s := range out.Spans {
		names[s.Name] = s
	}
	if len(out.Spans) != 4 {
		t.Fatalf("spans = %v, want request,a,b,c", out.Spans)
	}
	if names["request"].Parent != -1 {
		t.Errorf("root parent = %d, want -1", names["request"].Parent)
	}
	if p := out.Spans[names["b"].Parent].Name; p != "a" {
		t.Errorf("b's parent = %q, want a", p)
	}
	if p := out.Spans[names["c"].Parent].Name; p != "request" {
		t.Errorf("c's parent = %q, want request", p)
	}
	// Durations are closed and nested: b inside a inside request.
	if names["b"].DurUS <= 0 || names["a"].DurUS < names["b"].DurUS {
		t.Errorf("span durations not nested: a=%v b=%v", names["a"].DurUS, names["b"].DurUS)
	}
	if names["request"].DurUS < names["a"].DurUS {
		t.Errorf("root %v shorter than child %v", names["request"].DurUS, names["a"].DurUS)
	}
}

func TestStartSpanUntracedZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, end := StartSpan(ctx, "layer")
		if c != ctx {
			t.Fatal("untraced StartSpan changed the context")
		}
		end()
	})
	if allocs != 0 {
		t.Fatalf("untraced StartSpan allocates %v per call, want 0", allocs)
	}
}

func TestRingEvictionAndServerTiming(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Ring: 2, Seed: "ring"})
	var ids []string
	for i := 0; i < 3; i++ {
		ctx, tt := tr.Start(context.Background(), "request", false)
		_, end := StartSpan(ctx, "work")
		end()
		tr.Finish(tt)
		ids = append(ids, tt.ID())
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Error("oldest trace survived ring eviction")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Get(id); !ok {
			t.Errorf("trace %s evicted too early", id)
		}
	}

	ctx, tt := tr.Start(context.Background(), "request", false)
	_, endA := StartSpan(ctx, "lru")
	endA()
	sub, endB := StartSpan(ctx, "verify")
	_, endN := StartSpan(sub, "nested")
	endN()
	endB()
	tr.Finish(tt)
	st := tt.ServerTiming()
	for _, want := range []string{"lru;dur=", "verify;dur=", "total;dur="} {
		if !strings.Contains(st, want) {
			t.Errorf("Server-Timing %q missing %q", st, want)
		}
	}
	if strings.Contains(st, "nested") {
		t.Errorf("Server-Timing %q leaked a non-top-level span", st)
	}
}
