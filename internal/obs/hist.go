// Package obs is the serving stack's zero-dependency observability
// substrate: per-request traces (context-propagated spans over pooled
// buffers, kept in a bounded ring for the /v1/trace debug endpoint),
// fixed-bucket power-of-two latency histograms updated with a single
// atomic add, and a Prometheus text-format exposition of both plus any
// caller-supplied counters.
//
// The design constraint is that instrumentation must never regress the
// warm path: histogram recording is one atomic add per bucket touch and
// allocates nothing, and an unsampled request carries a nil trace whose
// span calls are branch-and-return. Everything time-shaped lives here;
// nothing in this package ever feeds result-store fingerprints or loadgen
// digests — timing is observable, never outcome-determining.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i counts
// observations d with d <= 2^i nanoseconds (cumulative-friendly inclusive
// upper bounds); the last bucket absorbs everything beyond 2^62 ns (~146
// years), so no observation is ever dropped.
const NumBuckets = 63

// Histogram is a fixed-bucket power-of-two latency histogram safe for
// concurrent use. Recording is lock-free — one atomic add per bucket plus
// one for the running sum — so it can sit on paths that must stay
// mutex-free and allocation-free (the snapshot fact store's warm reads,
// the pruned top-k). The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64 // total observed nanoseconds
}

// bucketIndex maps a duration to its bucket: the smallest i with
// ns <= 2^i. Sub-nanosecond (and negative) observations land in bucket 0.
func bucketIndex(d time.Duration) int {
	ns := uint64(d)
	if d <= 1 {
		return 0
	}
	i := bits.Len64(ns - 1) // smallest i with ns <= 2^i
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketUpper returns bucket i's inclusive upper bound.
func BucketUpper(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(uint64(1) << uint(i))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(uint64(d))
}

// HistSnapshot is a point-in-time copy of a histogram. Buckets are
// per-bucket (non-cumulative) counts.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Sum     time.Duration
	Count   uint64
}

// Snapshot copies the histogram's counters. Buckets are loaded
// individually, so a snapshot taken concurrently with observations is a
// consistent-enough point in time: every bucket is monotone, and Count is
// derived from the loaded buckets (never ahead of them).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// Quantile derives the q-quantile (q in (0, 1]) by nearest rank over the
// bucket bounds: the inclusive upper bound of the bucket containing the
// ceil(q*count)-th observation. The derivation is exact at bucket
// resolution — the true sample quantile is guaranteed to lie in the
// returned bucket — which is the strongest claim a fixed-bucket histogram
// can make. Returns 0 for an empty histogram.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the average observed duration (0 when empty).
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
