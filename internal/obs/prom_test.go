package obs

import (
	"strings"
	"testing"
	"time"
)

func renderTestRegistry() (string, error) {
	r := NewRegistry()
	r.Histogram("layer", "lru").Observe(800 * time.Nanosecond)
	r.Histogram("layer", "lru").Observe(3 * time.Microsecond)
	r.Histogram("layer", "verify").Observe(2 * time.Millisecond)
	r.Histogram("endpoint", "verify").Observe(5 * time.Millisecond)
	r.Histogram("endpoint", "empty") // registered, never observed

	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("factcheck_requests_total", "Requests admitted.", 42)
	p.Gauge("factcheck_cache_entries", "Verdict LRU entries.", 17)
	p.Info("factcheck_build_info", "Build identity.", "go_version", "go1.24", "service", "factcheckd")
	r.WriteProm(p)
	return b.String(), p.Err()
}

func TestWritePromRendersAndLints(t *testing.T) {
	out, err := renderTestRegistry()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE factcheck_requests_total counter",
		"factcheck_requests_total 42",
		"factcheck_cache_entries 17",
		`factcheck_build_info{go_version="go1.24",service="factcheckd"} 1`,
		"# TYPE factcheck_layer_latency_seconds histogram",
		`factcheck_layer_latency_seconds_bucket{layer="lru",le="+Inf"} 2`,
		`factcheck_layer_latency_seconds_count{layer="lru"} 2`,
		`factcheck_layer_latency_seconds_count{layer="verify"} 1`,
		"# TYPE factcheck_endpoint_latency_seconds histogram",
		`factcheck_endpoint_latency_seconds_count{endpoint="verify"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, `"empty"`) {
		t.Error("never-observed histogram leaked into exposition")
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, out)
	}

	// Deterministic rendering: same registry, same bytes.
	again, err := renderTestRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Error("exposition not deterministic across renders")
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no type", "some_metric 1\n"},
		{"bad name", "# TYPE 9bad counter\n9bad 1\n"},
		{"bad value", "# TYPE m counter\nm notanumber\n"},
		{"negative counter", "# TYPE m counter\nm -3\n"},
		{"duplicate series", "# TYPE m counter\nm 1\nm 2\n"},
		{"bad type", "# TYPE m widget\nm 1\n"},
		{"unquoted label", "# TYPE m gauge\nm{l=x} 1\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{layer=\"a\"} 1\nh_count{layer=\"a\"} 1\n"},
		{"no inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n"},
		{"decreasing cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n"},
		{"le not increasing", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n"},
	}
	for _, c := range cases {
		if err := Lint(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition", c.name)
		}
	}
	valid := "# HELP m good\n# TYPE m gauge\nm{a=\"x\",b=\"y\"} 1.5\n" +
		"# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.7\nh_count 2\n"
	if err := Lint(strings.NewReader(valid)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}
