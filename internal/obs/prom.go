package obs

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). Errors are sticky: the first write failure is retained
// and subsequent calls become no-ops, so callers check Err once at the
// end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one unlabeled counter sample with its HELP/TYPE header.
// Names should carry the conventional _total suffix.
func (p *PromWriter) Counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

// Gauge emits one unlabeled gauge sample with its HELP/TYPE header.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, formatFloat(v))
}

// Labeled pairs one label value with one sample value, for the *Vec
// emitters.
type Labeled struct {
	Label string
	Value float64
}

// CounterVec emits one counter family with a sample per label value, in
// the order given (callers sort for determinism). Empty families emit
// nothing — a TYPE header with no samples is legal but noisy. Counter
// samples must be integral (the lint enforces it), so values are rendered
// with %d.
func (p *PromWriter) CounterVec(name, help, label string, vals []Labeled) {
	if len(vals) == 0 {
		return
	}
	p.header(name, help, "counter")
	for _, v := range vals {
		p.printf("%s{%s=%q} %d\n", name, label, v.Label, uint64(v.Value))
	}
}

// GaugeVec emits one gauge family with a sample per label value, in the
// order given. Empty families emit nothing.
func (p *PromWriter) GaugeVec(name, help, label string, vals []Labeled) {
	if len(vals) == 0 {
		return
	}
	p.header(name, help, "gauge")
	for _, v := range vals {
		p.printf("%s{%s=%q} %s\n", name, label, v.Label, formatFloat(v.Value))
	}
}

// Info emits a value-1 gauge carrying identity labels (the build_info
// convention). Label pairs must be passed in the desired output order as
// key, value, key, value, ...
func (p *PromWriter) Info(name, help string, kv ...string) {
	p.header(name, help, "gauge")
	p.printf("%s{", name)
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			p.printf(",")
		}
		p.printf("%s=%q", kv[i], kv[i+1])
	}
	p.printf("} 1\n")
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seconds converts a duration bound to the seconds-unit float Prometheus
// expects in le labels and _sum samples.
func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }

// WriteProm renders every histogram of the registry as a Prometheus
// histogram metric named factcheck_<family>_latency_seconds, one label
// value per registered label (label name = family name). Buckets are
// cumulative and emitted only up to the highest populated bound — the
// mandatory +Inf bucket always closes the series — so the exposition stays
// small while remaining exact. Output order is deterministic (sorted
// families and labels).
func (r *Registry) WriteProm(p *PromWriter) {
	lastFam := ""
	for _, e := range r.entries() {
		s := e.h.Snapshot()
		if s.Count == 0 {
			continue
		}
		name := "factcheck_" + e.fam + "_latency_seconds"
		if e.fam != lastFam {
			p.header(name, "Latency by "+e.fam+" in seconds.", "histogram")
			lastFam = e.fam
		}
		top := -1
		for i, c := range s.Buckets {
			if c > 0 {
				top = i
			}
		}
		if top > NumBuckets-2 {
			top = NumBuckets - 2
		}
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += s.Buckets[i]
			p.printf("%s_bucket{%s=%q,le=%q} %d\n",
				name, e.fam, e.label, formatFloat(seconds(BucketUpper(i))), cum)
		}
		p.printf("%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, e.fam, e.label, s.Count)
		p.printf("%s_sum{%s=%q} %s\n", name, e.fam, e.label, formatFloat(seconds(s.Sum)))
		p.printf("%s_count{%s=%q} %d\n", name, e.fam, e.label, s.Count)
	}
}
