package search

import (
	"fmt"
	"strconv"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/text"
)

// ingestSeqBase is the first document sequence number assigned to live
// ingestion. Generated base pools stay far below it (corpus.Generator caps
// pools at a few hundred documents), so ingested doc IDs — which share the
// "%s-d%04d" shape with generated ones to keep factIDOfDoc routing uniform
// — can never collide with the base corpus.
const ingestSeqBase = 1000

// IngestDoc is one live document append, the wire shape POST /v1/documents
// accepts. FactID routes the document into that fact's retrieval pool; the
// remaining fields become the document's fetchable content. Host and URL
// are defaulted when empty.
type IngestDoc struct {
	FactID string `json:"fact_id"`
	URL    string `json:"url,omitempty"`
	Host   string `json:"host,omitempty"`
	Title  string `json:"title"`
	Text   string `json:"text"`
}

// IngestResult reports one applied ingestion batch: the server-assigned
// document IDs in input order, and the new ingestion epoch of every fact
// the batch touched.
type IngestResult struct {
	DocIDs []string          `json:"doc_ids"`
	Epochs map[string]uint64 `json:"epochs"`
}

// defaultIngestHost is the host attributed to ingested documents that
// arrive without one. It is never the SKG host (en.wikipedia.org), so
// RAG's structured-knowledge shortcuts keep their meaning.
const defaultIngestHost = "live.factcheck.invalid"

// Ingest appends documents to their facts' retrieval pools and publishes
// one fresh epoch snapshot covering the whole batch: per-fact epochs
// advance, per-dataset corpus digests fold the new content in, already
// materialised pools are extended incrementally (index rebuilt over the
// combined doc sequence — byte-identical to a cold build), and the
// query-vector memo resets. Readers never block: they keep the old
// snapshot until the single pointer store, and see the whole batch or
// none of it. Unknown facts fail the batch atomically, before any state
// changes.
func (e *Engine) Ingest(docs []IngestDoc) (IngestResult, error) {
	if len(docs) == 0 {
		return IngestResult{}, fmt.Errorf("search: ingest: empty batch")
	}
	for _, d := range docs {
		if _, ok := e.facts[d.FactID]; !ok {
			return IngestResult{}, fmt.Errorf("search: %w %q", ErrUnknownFact, d.FactID)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.snap.Load()
	res := IngestResult{
		DocIDs: make([]string, 0, len(docs)),
		Epochs: make(map[string]uint64),
	}
	epochs := make(map[string]uint64, len(old.epochs)+len(docs))
	for k, v := range old.epochs {
		epochs[k] = v
	}
	digests := make(map[dataset.Name]uint64, len(old.digests)+1)
	for k, v := range old.digests {
		digests[k] = v
	}
	touched := map[string][]*pooledDoc{}
	for _, in := range docs {
		f := e.facts[in.FactID]
		pd := newIngestedDoc(f, in, ingestSeqBase+len(e.log[f.ID]))
		e.log[f.ID] = append(e.log[f.ID], pd)
		touched[f.ID] = append(touched[f.ID], pd)
		res.DocIDs = append(res.DocIDs, pd.doc.ID)
		// Chain the fact's content digest and re-fold it into the
		// dataset digest: XOR out the fact's old term, XOR in the new.
		prev := e.factDigests[f.ID]
		next := det.Hash64("ingest-doc", u64hex(prev),
			pd.doc.ID, pd.doc.URL, pd.doc.Host, pd.doc.Title, pd.text)
		if prev != 0 {
			digests[f.Dataset] ^= det.Hash64("ingest-fact", f.ID, u64hex(prev))
		}
		digests[f.Dataset] ^= det.Hash64("ingest-fact", f.ID, u64hex(next))
		e.factDigests[f.ID] = next
	}
	pools := make(map[string]*factPool, len(old.pools))
	for k, v := range old.pools {
		pools[k] = v
	}
	for factID, pds := range touched {
		epochs[factID]++
		res.Epochs[factID] = epochs[factID]
		if p, ok := pools[factID]; ok {
			np := foldPool(p, pds, epochs[factID])
			np.lastUsed.Store(p.lastUsed.Load())
			pools[factID] = np
		}
	}
	e.snap.Store(&snapshot{
		gen:     old.gen + 1,
		pools:   pools,
		epochs:  epochs,
		digests: digests,
	})
	// New epoch, new memo: query embeddings are corpus-independent, but
	// resetting here is what keeps the memo's bound per-epoch rather than
	// process-lifetime.
	e.qv.Store(&qvMap{m: map[string]text.SparseVector{}})
	return res, nil
}

// newIngestedDoc builds the immutable doc-table row for one appended
// document, embedding its content exactly as materialize embeds generated
// documents (sparse embedding of "Title + body").
func newIngestedDoc(f *dataset.Fact, in IngestDoc, seq int) *pooledDoc {
	id := fmt.Sprintf("%s-d%04d", f.ID, seq)
	host := in.Host
	if host == "" {
		host = defaultIngestHost
	}
	url := in.URL
	if url == "" {
		url = fmt.Sprintf("https://%s/ingest/%s", host, id)
	}
	doc := &corpus.Document{
		ID:     id,
		URL:    url,
		Host:   host,
		Title:  in.Title,
		Stance: corpus.StanceUnrelated,
		Empty:  in.Text == "",
		Seq:    seq,
		FactID: f.ID,
	}
	full := in.Title + " " + in.Text
	return &pooledDoc{
		doc:  doc,
		full: full,
		text: full[len(in.Title)+1:],
		vec:  text.SparseEmbed(full),
	}
}

// u64hex renders a digest link for hashing (fixed-width, unambiguous).
func u64hex(v uint64) string { return strconv.FormatUint(v, 16) }

// CorpusDigest returns the dataset's live corpus content digest: 0 for a
// pristine generated corpus, and a value folding every ingested document
// otherwise. It joins result fingerprints, so any corpus change retires
// every cached cell that covered the dataset. Lock-free.
func (e *Engine) CorpusDigest(dn dataset.Name) uint64 {
	return e.snap.Load().digests[dn]
}

// FactEpoch returns the fact's ingestion epoch (number of applied ingest
// batches; 0 = pristine). Lock-free.
func (e *Engine) FactEpoch(factID string) uint64 {
	return e.snap.Load().epochs[factID]
}

// EpochView is a consistent point-in-time view of the corpus version
// state: per-fact epochs and per-dataset digests taken from one immutable
// snapshot, so a consumer keying caches by epoch and fingerprints by
// digest can never pair values from different epochs.
type EpochView struct {
	epochs  map[string]uint64
	digests map[dataset.Name]uint64
}

// EpochView captures the current snapshot's version state. Lock-free.
func (e *Engine) EpochView() EpochView {
	sn := e.snap.Load()
	return EpochView{epochs: sn.epochs, digests: sn.digests}
}

// FactEpoch returns the fact's ingestion epoch within this view.
func (v EpochView) FactEpoch(factID string) uint64 { return v.epochs[factID] }

// CorpusDigest returns the dataset's corpus digest within this view.
func (v EpochView) CorpusDigest(dn dataset.Name) uint64 { return v.digests[dn] }
