package search

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/verbalize"
	"factcheck/internal/world"
)

func fixture(t *testing.T) (*Engine, *dataset.Dataset) {
	t.Helper()
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	gen := corpus.NewGenerator(w)
	return NewEngine(gen, d), d
}

func TestSearchReturnsRankedResults(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	q := verbalize.Sentence(f)
	items, err := e.Search(f.ID, q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("no results")
	}
	if len(items) > 20 {
		t.Fatalf("got %d results, want <= 20", len(items))
	}
	for i, it := range items {
		if it.Rank != i+1 {
			t.Errorf("rank %d at position %d", it.Rank, i)
		}
		if i > 0 && items[i].Score > items[i-1].Score {
			t.Errorf("scores not descending at %d", i)
		}
		if it.DocID == "" || it.URL == "" || it.Host == "" {
			t.Errorf("result %d missing fields: %+v", i, it)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[1]
	a, _ := e.Search(f.ID, "some query", 10)
	b, _ := e.Search(f.ID, "some query", 10)
	if len(a) != len(b) {
		t.Fatal("result counts differ")
	}
	for i := range a {
		if a[i].DocID != b[i].DocID {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestSearchUnknownFact(t *testing.T) {
	e, _ := fixture(t)
	if _, err := e.Search("nope-000001", "q", 10); err == nil {
		t.Fatal("expected error for unknown fact")
	}
}

func TestSearchRelevantFirst(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[2]
	q := verbalize.Sentence(f)
	items, err := e.Search(f.ID, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Top results for the assertion query should mention the subject.
	top := items[0]
	if !strings.Contains(top.Title, f.Subject.Label) {
		t.Errorf("top result title %q does not mention subject %q", top.Title, f.Subject.Label)
	}
}

func TestFetch(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	items, _ := e.Search(f.ID, "anything", 5)
	doc, err := e.Fetch(items[0].DocID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DocID != items[0].DocID || doc.URL != items[0].URL {
		t.Error("fetched doc metadata mismatch")
	}
	if doc.Empty && doc.Text != "" {
		t.Error("empty doc carries text")
	}
}

func TestFetchErrors(t *testing.T) {
	e, _ := fixture(t)
	if _, err := e.Fetch("malformed"); err == nil {
		t.Error("malformed doc id accepted")
	}
	if _, err := e.Fetch("unknown-000001-d0001"); err == nil {
		t.Error("unknown fact doc accepted")
	}
}

func TestFactIDOfDoc(t *testing.T) {
	id, ok := factIDOfDoc("factbench-000105-d0100")
	if !ok || id != "factbench-000105" {
		t.Errorf("factIDOfDoc = %q, %v", id, ok)
	}
	if _, ok := factIDOfDoc("nodashsuffix"); ok {
		t.Error("accepted id without doc suffix")
	}
	if _, ok := factIDOfDoc("fact-x9999"); ok {
		t.Error("accepted id with non-d suffix")
	}
}

func TestEngineCacheEviction(t *testing.T) {
	e, d := fixture(t)
	n := len(d.Facts)
	if n > maxCachedFacts {
		n = maxCachedFacts
	}
	for _, f := range d.Facts[:n] {
		if _, err := e.Search(f.ID, "q", 1); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.cache) > maxCachedFacts {
		t.Fatalf("cache grew to %d, cap %d", len(e.cache), maxCachedFacts)
	}
}

// --- mock API over HTTP ---

func apiServer(t *testing.T) (*httptest.Server, *Engine, *dataset.Dataset) {
	t.Helper()
	e, d := fixture(t)
	srv := httptest.NewServer(NewAPI(e).Handler())
	t.Cleanup(srv.Close)
	return srv, e, d
}

func TestAPISearchAndFetch(t *testing.T) {
	srv, eng, d := apiServer(t)
	c := NewClient(srv.URL)
	f := d.Facts[0]

	items, err := c.Search(f.ID, "test query", 7)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := eng.Search(f.ID, "test query", 7)
	if len(items) != len(direct) {
		t.Fatalf("HTTP results %d != engine results %d", len(items), len(direct))
	}
	for i := range items {
		if items[i].DocID != direct[i].DocID {
			t.Fatalf("HTTP result %d differs from engine", i)
		}
	}

	doc, err := c.Fetch(items[0].DocID)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := eng.Fetch(items[0].DocID)
	if doc.Text != want.Text {
		t.Error("fetched text differs between HTTP and engine")
	}
}

func TestAPIFactIDs(t *testing.T) {
	srv, eng, _ := apiServer(t)
	c := NewClient(srv.URL)
	ids, err := c.FactIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(eng.FactIDs()) {
		t.Fatalf("HTTP fact ids %d != engine %d", len(ids), len(eng.FactIDs()))
	}
}

func TestAPIErrorStatuses(t *testing.T) {
	srv, _, d := apiServer(t)
	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if s := get("/search"); s != http.StatusBadRequest {
		t.Errorf("missing params: status %d, want 400", s)
	}
	if s := get("/search?fact_id=unknown-1&q=x"); s != http.StatusNotFound {
		t.Errorf("unknown fact: status %d, want 404", s)
	}
	if s := get("/search?fact_id=" + d.Facts[0].ID + "&q=x&num=bogus"); s != http.StatusBadRequest {
		t.Errorf("bad num: status %d, want 400", s)
	}
	if s := get("/document?doc_id=unknown-000001-d0001"); s != http.StatusNotFound {
		t.Errorf("unknown doc: status %d, want 404", s)
	}
	if s := get("/healthz"); s != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", s)
	}
}

func TestClientErrorMessage(t *testing.T) {
	srv, _, _ := apiServer(t)
	c := NewClient(srv.URL)
	_, err := c.Search("unknown-fact-1", "q", 5)
	if err == nil || !strings.Contains(err.Error(), "unknown fact") {
		t.Errorf("client error = %v, want server message propagated", err)
	}
}
