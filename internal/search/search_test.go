package search

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/verbalize"
	"factcheck/internal/world"
)

func fixture(t *testing.T) (*Engine, *dataset.Dataset) {
	t.Helper()
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	gen := corpus.NewGenerator(w)
	return NewEngine(gen, d), d
}

func TestSearchReturnsRankedResults(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	q := verbalize.Sentence(f)
	items, err := e.Search(f.ID, q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("no results")
	}
	if len(items) > 20 {
		t.Fatalf("got %d results, want <= 20", len(items))
	}
	for i, it := range items {
		if it.Rank != i+1 {
			t.Errorf("rank %d at position %d", it.Rank, i)
		}
		if i > 0 && items[i].Score > items[i-1].Score {
			t.Errorf("scores not descending at %d", i)
		}
		if it.DocID == "" || it.URL == "" || it.Host == "" {
			t.Errorf("result %d missing fields: %+v", i, it)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[1]
	a, _ := e.Search(f.ID, "some query", 10)
	b, _ := e.Search(f.ID, "some query", 10)
	if len(a) != len(b) {
		t.Fatal("result counts differ")
	}
	for i := range a {
		if a[i].DocID != b[i].DocID {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestSearchUnknownFact(t *testing.T) {
	e, _ := fixture(t)
	if _, err := e.Search("nope-000001", "q", 10); err == nil {
		t.Fatal("expected error for unknown fact")
	}
}

func TestSearchRelevantFirst(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[2]
	q := verbalize.Sentence(f)
	items, err := e.Search(f.ID, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Top results for the assertion query should mention the subject.
	top := items[0]
	if !strings.Contains(top.Title, f.Subject.Label) {
		t.Errorf("top result title %q does not mention subject %q", top.Title, f.Subject.Label)
	}
}

func TestFetch(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	items, _ := e.Search(f.ID, "anything", 5)
	doc, err := e.Fetch(items[0].DocID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DocID != items[0].DocID || doc.URL != items[0].URL {
		t.Error("fetched doc metadata mismatch")
	}
	if doc.Empty && doc.Text != "" {
		t.Error("empty doc carries text")
	}
}

func TestFetchErrors(t *testing.T) {
	e, d := fixture(t)
	tests := []struct {
		docID   string
		wantMsg string
	}{
		{"malformed", "malformed doc id"},
		{"", "malformed doc id"},
		{"x-", "malformed doc id"},
		{"x-q1", "malformed doc id"},
		{"x-d", "malformed doc id"},
		{d.Facts[0].ID + "-d9999-", "malformed doc id"}, // trailing dash
		{"unknown-000001-d0001", "unknown fact"},
		{d.Facts[0].ID + "-d99999", "unknown document"}, // valid fact, out-of-pool doc
	}
	for _, tc := range tests {
		_, err := e.Fetch(tc.docID)
		if err == nil {
			t.Errorf("Fetch(%q) succeeded, want %q error", tc.docID, tc.wantMsg)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("Fetch(%q) error = %v, want it to mention %q", tc.docID, err, tc.wantMsg)
		}
	}
}

func TestFactIDOfDoc(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{"factbench-000105-d0100", "factbench-000105", true},
		{"yago-000001-d0", "yago-000001", true},
		{"x-d7", "x", true},
		{"", "", false},             // empty
		{"nodashsuffix", "", false}, // no dash at all
		{"x-", "", false},           // dash with nothing after
		{"x-q1", "", false},         // non-d marker
		{"x-d", "", false},          // marker with no digits
		{"x-dxyz", "", false},       // marker with non-digit suffix
		{"x-d01-", "", false},       // trailing dash
		{"-d0001", "", false},       // empty fact id
		{"fact-x9999", "", false},
	}
	for _, tc := range tests {
		id, ok := factIDOfDoc(tc.in)
		if id != tc.want || ok != tc.ok {
			t.Errorf("factIDOfDoc(%q) = (%q, %v), want (%q, %v)", tc.in, id, ok, tc.want, tc.ok)
		}
	}
}

// TestSearchIndexedMatchesScan is the golden differential ladder: for
// several facts and queries, the pruned path (Search), the exhaustive
// posting-list path (IndexedSearch) and the retired linear scan
// (ScanSearch) must agree byte for byte — same documents, same order, same
// float64 scores.
func TestSearchIndexedMatchesScan(t *testing.T) {
	e, d := fixture(t)
	if len(d.Facts) < 3 {
		t.Fatalf("fixture has %d facts, need >= 3", len(d.Facts))
	}
	for _, f := range d.Facts[:3] {
		queries := []string{
			verbalize.Sentence(f),
			"who founded the company",
			f.Subject.Label,
			"completely unrelated noise query",
			"the record " + f.Object.Label,
		}
		for _, q := range queries {
			for _, n := range []int{1, 10, DefaultSERPSize, 10000} {
				pruned, err := e.Search(f.ID, q, n)
				if err != nil {
					t.Fatal(err)
				}
				indexed, err := e.IndexedSearch(f.ID, q, n)
				if err != nil {
					t.Fatal(err)
				}
				scan, err := e.ScanSearch(f.ID, q, n)
				if err != nil {
					t.Fatal(err)
				}
				if len(pruned) != len(scan) || len(indexed) != len(scan) {
					t.Fatalf("fact %s q=%q n=%d: pruned %d, indexed %d, scan %d results",
						f.ID, q, n, len(pruned), len(indexed), len(scan))
				}
				for i := range scan {
					if pruned[i] != scan[i] || indexed[i] != scan[i] {
						t.Fatalf("fact %s q=%q n=%d result %d:\npruned  %+v\nindexed %+v\nscan    %+v",
							f.ID, q, n, i, pruned[i], indexed[i], scan[i])
					}
				}
			}
		}
	}
}

// TestRetrievalCounters asserts the pruning counters surfaced via
// Engine.Stats move when queries run, and that pruning actually skips work
// on large result-free queries.
func TestRetrievalCounters(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	before := e.Stats()
	if before.SearchQueries != 0 || before.PostingsTouched != 0 {
		t.Fatalf("fresh engine has non-zero retrieval counters: %+v", before)
	}
	for i := 0; i < 5; i++ {
		q := verbalize.Sentence(f)
		if _, err := e.Search(f.ID, fmt.Sprintf("%s %d", q, i), 3); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Stats()
	if after.SearchQueries != 5 {
		t.Errorf("SearchQueries = %d, want 5", after.SearchQueries)
	}
	if after.PostingsTouched <= 0 || after.DocsScored <= 0 {
		t.Errorf("retrieval counters did not move: %+v", after)
	}
}

// barrierSource proves materialisations of distinct facts run concurrently:
// each Materialize call signals arrival and then blocks until released, so
// if the engine serialised materialisation (the old global-mutex behaviour)
// the second arrival would never happen.
type barrierSource struct {
	inner   PoolSource
	arrived chan string
	release chan struct{}
}

func (b *barrierSource) Materialize(f *dataset.Fact) []corpus.Materialized {
	b.arrived <- f.ID
	<-b.release
	return b.inner.Materialize(f)
}

// TestMaterializeConcurrentFacts is the regression test for the old engine
// holding one global mutex across pool generation: two different facts must
// be able to materialise at the same time.
func TestMaterializeConcurrentFacts(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	src := &barrierSource{
		inner:   corpus.NewGenerator(w),
		arrived: make(chan string, 2),
		release: make(chan struct{}),
	}
	e := NewEngine(src, d)

	var wg sync.WaitGroup
	for _, f := range d.Facts[:2] {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if _, err := e.Search(id, "q", 5); err != nil {
				t.Error(err)
			}
		}(f.ID)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-src.arrived:
		case <-time.After(10 * time.Second):
			t.Fatal("second materialisation never started: materialisations are serialised")
		}
	}
	close(src.release)
	wg.Wait()
}

// TestSingleflightMaterialization asserts concurrent searches for the SAME
// fact trigger exactly one materialisation.
func TestSingleflightMaterialization(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	var calls atomic.Int64
	src := &countingSource{inner: corpus.NewGenerator(w), calls: &calls}
	e := NewEngine(src, d)
	f := d.Facts[0]

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Search(f.ID, "q", 5); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fact materialised %d times, want 1 (singleflight)", n)
	}
}

type countingSource struct {
	inner PoolSource
	calls *atomic.Int64
}

func (c *countingSource) Materialize(f *dataset.Fact) []corpus.Materialized {
	c.calls.Add(1)
	return c.inner.Materialize(f)
}

func TestEngineCacheEviction(t *testing.T) {
	e, d := fixture(t)
	for _, f := range d.Facts {
		if _, err := e.Search(f.ID, "q", 1); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	// The published snapshot never exceeds the budget: eviction happens at
	// publish time, before the pointer store.
	if st.CachedFacts > MaxCachedFacts {
		t.Fatalf("store grew to %d facts, cap %d", st.CachedFacts, MaxCachedFacts)
	}
	if sn := e.snap.Load(); len(sn.pools) != st.CachedFacts {
		t.Errorf("snapshot holds %d pools but stats report %d cached facts", len(sn.pools), st.CachedFacts)
	}
	if len(d.Facts) > MaxCachedFacts && st.Evicted == 0 {
		t.Errorf("%d facts searched over cap %d but nothing evicted", len(d.Facts), MaxCachedFacts)
	}
	// Evicted facts must still be searchable (re-materialised on demand).
	if _, err := e.Search(d.Facts[0].ID, "q", 1); err != nil {
		t.Fatalf("evicted fact no longer searchable: %v", err)
	}
}

// TestEvictOver unit-tests publish-time eviction: pools with the oldest
// last-use generation go first, generation ties break deterministically by
// fact ID, and recently used pools survive.
func TestEvictOver(t *testing.T) {
	mk := func(gen uint64) *factPool {
		p := &factPool{}
		p.lastUsed.Store(gen)
		return p
	}
	pools := map[string]*factPool{}
	// MaxCachedFacts+2 pools: two must go. f0000 and f0001 share the oldest
	// generation with f0002; the ID tie-break drops the lexicographically
	// smallest first.
	for i := 0; i < MaxCachedFacts+2; i++ {
		gen := uint64(10)
		if i < 3 {
			gen = 1
		}
		pools[fmt.Sprintf("f%04d", i)] = mk(gen)
	}
	if n := evictOver(pools); n != 2 {
		t.Fatalf("evicted %d pools, want 2", n)
	}
	if _, ok := pools["f0000"]; ok {
		t.Error("oldest pool f0000 survived")
	}
	if _, ok := pools["f0001"]; ok {
		t.Error("second-oldest pool f0001 survived")
	}
	if _, ok := pools["f0002"]; !ok {
		t.Error("f0002 evicted although only two slots were over budget")
	}
	if len(pools) != MaxCachedFacts {
		t.Errorf("len(pools) = %d, want %d", len(pools), MaxCachedFacts)
	}
}

// TestPoolReadRefreshesClock asserts the warm read path refreshes the
// pool's last-used generation to the snapshot's, so publish-time eviction
// sees recent readers.
func TestPoolReadRefreshesClock(t *testing.T) {
	e, d := fixture(t)
	f0, f1 := d.Facts[0], d.Facts[1]
	if err := e.Warm(f0.ID); err != nil {
		t.Fatal(err)
	}
	if err := e.Warm(f1.ID); err != nil { // advances the snapshot generation
		t.Fatal(err)
	}
	sn := e.snap.Load()
	p0 := sn.pools[f0.ID]
	if p0.lastUsed.Load() == sn.gen {
		t.Fatal("f0's clock already current; fixture lost its staleness")
	}
	if _, err := e.Search(f0.ID, "q", 1); err != nil {
		t.Fatal(err)
	}
	if got := p0.lastUsed.Load(); got != sn.gen {
		t.Errorf("after warm read, lastUsed = %d, want snapshot gen %d", got, sn.gen)
	}
}

func TestEngineStats(t *testing.T) {
	e, d := fixture(t)
	if st := e.Stats(); st.CachedFacts != 0 || st.IndexedDocs != 0 {
		t.Fatalf("fresh engine stats non-zero: %+v", st)
	}
	f := d.Facts[0]
	if _, err := e.Search(f.ID, "q", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(f.ID, "q2", 1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CachedFacts != 1 {
		t.Errorf("CachedFacts = %d, want 1", st.CachedFacts)
	}
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.Facts != len(d.Facts) {
		t.Errorf("Facts = %d, want %d", st.Facts, len(d.Facts))
	}
	// The indexed-doc count must equal the fact's pool size.
	all, err := e.Search(f.ID, "q", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexedDocs != len(all) {
		t.Errorf("IndexedDocs = %d, want pool size %d", st.IndexedDocs, len(all))
	}
}

func TestWarm(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	if err := e.Warm(f.ID); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CachedFacts != 1 || st.IndexedDocs == 0 {
		t.Errorf("Warm did not materialise: %+v", st)
	}
	if err := e.Warm("nope-000001"); err == nil {
		t.Error("Warm accepted unknown fact")
	}
}

// --- mock API over HTTP ---

func apiServer(t *testing.T) (*httptest.Server, *Engine, *dataset.Dataset) {
	t.Helper()
	e, d := fixture(t)
	srv := httptest.NewServer(NewAPI(e).Handler())
	t.Cleanup(srv.Close)
	return srv, e, d
}

func TestAPISearchAndFetch(t *testing.T) {
	srv, eng, d := apiServer(t)
	c := NewClient(srv.URL)
	f := d.Facts[0]

	items, err := c.Search(f.ID, "test query", 7)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := eng.Search(f.ID, "test query", 7)
	if len(items) != len(direct) {
		t.Fatalf("HTTP results %d != engine results %d", len(items), len(direct))
	}
	for i := range items {
		if items[i].DocID != direct[i].DocID {
			t.Fatalf("HTTP result %d differs from engine", i)
		}
	}

	doc, err := c.Fetch(items[0].DocID)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := eng.Fetch(items[0].DocID)
	if doc.Text != want.Text {
		t.Error("fetched text differs between HTTP and engine")
	}
}

func TestAPIFactIDs(t *testing.T) {
	srv, eng, _ := apiServer(t)
	c := NewClient(srv.URL)
	ids, err := c.FactIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(eng.FactIDs()) {
		t.Fatalf("HTTP fact ids %d != engine %d", len(ids), len(eng.FactIDs()))
	}
}

func TestAPIErrorStatuses(t *testing.T) {
	srv, _, d := apiServer(t)
	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if s := get("/search"); s != http.StatusBadRequest {
		t.Errorf("missing params: status %d, want 400", s)
	}
	if s := get("/search?fact_id=unknown-1&q=x"); s != http.StatusNotFound {
		t.Errorf("unknown fact: status %d, want 404", s)
	}
	if s := get("/search?fact_id=" + d.Facts[0].ID + "&q=x&num=bogus"); s != http.StatusBadRequest {
		t.Errorf("bad num: status %d, want 400", s)
	}
	if s := get("/document?doc_id=unknown-000001-d0001"); s != http.StatusNotFound {
		t.Errorf("unknown doc: status %d, want 404", s)
	}
	if s := get("/healthz"); s != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", s)
	}
}

func TestClientErrorMessage(t *testing.T) {
	srv, _, _ := apiServer(t)
	c := NewClient(srv.URL)
	_, err := c.Search("unknown-fact-1", "q", 5)
	if err == nil || !strings.Contains(err.Error(), "unknown fact") {
		t.Errorf("client error = %v, want server message propagated", err)
	}
}

// TestAPIDocumentErrorJSON asserts the /document handler distinguishes
// malformed doc IDs (400) from missing ones (404), always with a JSON error
// body.
func TestAPIDocumentErrorJSON(t *testing.T) {
	srv, _, d := apiServer(t)
	tests := []struct {
		path       string
		wantStatus int
		wantMsg    string
	}{
		{"/document?doc_id=malformed", http.StatusBadRequest, "malformed doc id"},
		{"/document?doc_id=x-q1", http.StatusBadRequest, "malformed doc id"},
		{"/document?doc_id=unknown-000001-d0001", http.StatusNotFound, "unknown fact"},
		{"/document?doc_id=" + d.Facts[0].ID + "-d99999", http.StatusNotFound, "unknown document"},
		{"/document", http.StatusBadRequest, "doc_id is required"},
	}
	for _, tc := range tests {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		decodeErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content-type %q, want application/json", tc.path, ct)
		}
		if decodeErr != nil {
			t.Errorf("%s: error body is not JSON: %v", tc.path, decodeErr)
			continue
		}
		if !strings.Contains(body["error"], tc.wantMsg) {
			t.Errorf("%s: error %q, want it to mention %q", tc.path, body["error"], tc.wantMsg)
		}
	}
}

// TestAPIStats exercises the /stats endpoint over HTTP.
func TestAPIStats(t *testing.T) {
	srv, eng, d := apiServer(t)
	if _, err := eng.Search(d.Facts[0].ID, "q", 3); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CachedFacts != 1 || st.Facts != len(d.Facts) {
		t.Errorf("stats = %+v, want 1 cached fact of %d", st, len(d.Facts))
	}
}
