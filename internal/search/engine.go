// Package search implements the retrieval substrate of FactCheck: an
// inverted-index search engine over each fact's synthetic document pool —
// served from immutable, epoch-versioned snapshots swapped atomically
// behind a pointer, so warm reads touch no mutex — and the paper's mock
// web-search API (§4.1), an HTTP service with SERP-style endpoints
// returning identical results across runs, plus a client so the RAG
// pipeline can run either in-process or over HTTP.
package search

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"factcheck/internal/chunk"
	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/index"
	"factcheck/internal/obs"
	"factcheck/internal/text"
)

// queryHist times every Search call. Resolved once; recording is a single
// atomic add, preserving the warm path's zero-alloc, mutex-free property.
var queryHist = obs.Layer("search_query")

// SERPItem is one ranked search result, mirroring what a Google SERP entry
// carries (URL, title, rank). Scores are engine-internal relevance values.
type SERPItem struct {
	DocID string  `json:"doc_id"`
	URL   string  `json:"url"`
	Host  string  `json:"host"`
	Title string  `json:"title"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// DocPayload is a fetched document: the mock equivalent of downloading a
// result URL and extracting its text.
type DocPayload struct {
	DocID string `json:"doc_id"`
	URL   string `json:"url"`
	Host  string `json:"host"`
	Title string `json:"title"`
	Text  string `json:"text"`
	Empty bool   `json:"empty"`
}

// Searcher is the retrieval interface consumed by the RAG pipeline. Both
// the in-process Engine and the HTTP mock-API Client implement it.
type Searcher interface {
	// Search returns up to n ranked results for the query within the given
	// fact's retrieval pool (the mock of issuing the query to Google with
	// lr=lang_en, hl=en, gl=us, num=n).
	Search(factID, query string, n int) ([]SERPItem, error)
	// Fetch retrieves a result document's content.
	Fetch(docID string) (DocPayload, error)
}

// Warmer is implemented by searchers that can materialise per-fact state
// (document pool, inverted index) ahead of queries. Prefetch stages use it
// to build index shards before model fan-out needs them.
type Warmer interface {
	// Warm materialises the fact's pool and index; it is safe to call
	// concurrently and redundantly.
	Warm(factID string) error
}

// PoolSource supplies per-fact document pools. corpus.Generator is the
// production implementation; tests substitute instrumented sources to prove
// scheduling properties (e.g. that unrelated facts materialise
// concurrently).
type PoolSource interface {
	// Materialize generates the fact's full pool — metadata, body text and
	// term streams — in pool order.
	Materialize(f *dataset.Fact) []corpus.Materialized
}

// DefaultSERPSize is the paper's n_max = 100 results per query.
const DefaultSERPSize = 100

// Typed retrieval errors, so the HTTP layer can map client mistakes
// (malformed IDs) and missing resources to distinct statuses.
var (
	ErrUnknownFact    = errors.New("unknown fact")
	ErrMalformedDocID = errors.New("malformed doc id")
	ErrUnknownDoc     = errors.New("unknown document")
)

// MaxCachedFacts bounds the materialised facts held by a snapshot, since
// full-benchmark runs touch millions of documents. Eviction happens at
// publish time, under the writer lock: when a new pool pushes the snapshot
// over budget, the publisher drops the pools with the oldest last-use
// generation (ties broken by fact ID, so eviction order is deterministic).
// In-flight materialisations live outside the snapshot and are never
// evicted, so the singleflight guarantee holds.
const MaxCachedFacts = 512

// Engine is the in-process search engine. All materialised state lives in
// an immutable snapshot reachable through one atomic pointer (RCU): warm
// reads — Search, Fetch, FetchEvidence — load the pointer, index into
// immutable maps and go, acquiring no mutex. Writers (materialisation
// misses and live ingestion) serialise on a single mutex, build a fresh
// snapshot beside the live one and publish it with one pointer store;
// readers on the old snapshot finish undisturbed.
type Engine struct {
	gen   PoolSource
	facts map[string]*dataset.Fact

	// snap is the live snapshot. Never mutated after publication.
	snap atomic.Pointer[snapshot]
	// qv is the per-epoch query-embedding memo: an immutable map swapped
	// by CAS on insert and rebuilt from empty on every ingestion epoch.
	qv atomic.Pointer[qvMap]

	// mu serialises snapshot publication: materialisation bookkeeping,
	// ingestion folds and eviction. Never taken on the warm read path.
	mu sync.Mutex
	// inflight holds materialisations in progress (singleflight): the
	// first caller for a fact owns generation and indexing, concurrent
	// callers block on that entry's done channel only.
	inflight map[string]*factEntry
	// log is the full ingestion history per fact, in arrival order. A
	// pool materialised (or re-materialised after eviction) replays it on
	// top of the generated base, so an incrementally built corpus is
	// byte-identical to the same corpus built cold.
	log map[string][]*pooledDoc
	// factDigests chains a content digest over each fact's ingested
	// documents (0 = pristine). Folded into the per-dataset corpus
	// digests that join result fingerprints.
	factDigests map[string]uint64

	hits, misses, evicted atomic.Int64

	// arenas pools per-query top-k scratch state (accumulators, heap,
	// candidate stamps), so warm queries allocate nothing.
	arenas sync.Pool
	// retrieval accumulates pruning counters across all queries.
	retrieval retrievalCounters
}

// snapshot is one immutable epoch of the fact store. The maps are built
// beside the live snapshot and never written after the pointer store;
// unchanged maps are shared structurally between consecutive snapshots.
type snapshot struct {
	// gen is the publication sequence number — the clock the sampled LRU
	// scheme reads. It advances on every publish (materialisation or
	// ingestion), so "last used at generation g" totally orders pools by
	// recency without any read-side list maintenance.
	gen uint64
	// pools holds the materialised facts.
	pools map[string]*factPool
	// epochs counts ingestion batches applied per fact (0 = pristine).
	epochs map[string]uint64
	// digests is the per-dataset corpus content digest (0 = pristine),
	// an XOR fold over per-fact ingestion chains: order-independent
	// across facts, order-sensitive within one fact's stream.
	digests map[dataset.Name]uint64
}

// qvMap is one immutable generation of the query-embedding memo.
type qvMap struct {
	m map[string]text.SparseVector
}

// retrievalCounters aggregates the pruned path's work counters.
type retrievalCounters struct {
	queries         atomic.Int64
	postingsTouched atomic.Int64
	blocksSkipped   atomic.Int64
	docsScored      atomic.Int64
}

// arena checks a pooled top-k arena out; release returns it.
func (e *Engine) arena() *index.Arena {
	if a, ok := e.arenas.Get().(*index.Arena); ok {
		return a
	}
	return &index.Arena{}
}

func (e *Engine) release(a *index.Arena) { e.arenas.Put(a) }

// factEntry is one in-flight materialisation. pool is written once by the
// owner before done is closed; waiters read it only after <-done.
type factEntry struct {
	done chan struct{}
	pool *factPool
}

// factPool is a fully materialised fact: the pool-ordered documents, an
// O(1) fetch table, and the inverted index. Everything except the two
// lazily-computed caches (scan vectors, sentence splits) and the lastUsed
// clock is immutable after construction. scanVecs lazily holds the dense
// embedding of every document for ScanSearch, the linear-scan reference
// path; the production path never materialises them.
type factPool struct {
	docs []*pooledDoc
	byID map[string]*pooledDoc
	idx  *index.Index
	// epoch is the fact's ingestion epoch this pool was built at.
	epoch uint64

	// lastUsed is the snapshot generation of the pool's most recent use —
	// the lock-free LRU approximation. Readers store the current
	// generation only when it differs from the stored one, so a warm
	// phase issues one cheap atomic store per pool per epoch, not per
	// query; eviction compares generations at publish time.
	lastUsed atomic.Uint64

	scanOnce sync.Once
	scanVecs []text.Vector
}

// pooledDoc is one doc-table row: the document, its body, the full
// "Title + body" rerank-candidate string (body aliases its tail, so the
// concatenation costs no extra memory), the sparse embedding precomputed by
// corpus.Materialize, and the lazily built sentence split serving sliding
// windows of any size. The split is built only for fetched documents, so
// the extra memory stays bounded by the fetch traffic within the
// MaxCachedFacts budget.
type pooledDoc struct {
	doc  *corpus.Document
	full string // Title + " " + body
	text string // body; substring of full
	vec  text.SparseVector

	splitOnce sync.Once
	split     *chunk.Split
}

// sentenceSplit returns the document's sentence split, computing it on
// first use (safe for concurrent fetchers).
func (d *pooledDoc) sentenceSplit() *chunk.Split {
	d.splitOnce.Do(func() { d.split = chunk.NewSplit(d.text) })
	return d.split
}

// NewEngine builds an engine over the documents of the given datasets.
func NewEngine(gen PoolSource, ds ...*dataset.Dataset) *Engine {
	e := &Engine{
		gen:         gen,
		facts:       map[string]*dataset.Fact{},
		inflight:    map[string]*factEntry{},
		log:         map[string][]*pooledDoc{},
		factDigests: map[string]uint64{},
	}
	for _, d := range ds {
		for _, f := range d.Facts {
			e.facts[f.ID] = f
		}
	}
	e.snap.Store(&snapshot{
		pools:   map[string]*factPool{},
		epochs:  map[string]uint64{},
		digests: map[dataset.Name]uint64{},
	})
	e.qv.Store(&qvMap{m: map[string]text.SparseVector{}})
	return e
}

// Fact resolves a fact by ID (exported for the mock API server).
func (e *Engine) Fact(id string) (*dataset.Fact, bool) {
	f, ok := e.facts[id]
	return f, ok
}

// FactIDs returns all known fact IDs in sorted order.
func (e *Engine) FactIDs() []string {
	out := make([]string, 0, len(e.facts))
	for id := range e.facts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// pool returns the fact's materialised pool. The warm path is lock-free:
// one atomic snapshot load, one immutable map lookup, and at most one
// atomic store to refresh the pool's LRU clock. Misses fall to the
// serialised slow path.
func (e *Engine) pool(factID string) (*factPool, error) {
	sn := e.snap.Load()
	if p, ok := sn.pools[factID]; ok {
		e.hits.Add(1)
		if p.lastUsed.Load() != sn.gen {
			p.lastUsed.Store(sn.gen)
		}
		return p, nil
	}
	return e.poolSlow(factID)
}

// poolSlow materialises a missing pool and publishes a snapshot holding
// it. Generation and indexing run outside the writer lock: concurrent
// callers for the same fact coalesce on the entry's done channel
// (singleflight), while callers for other facts — and all warm readers —
// proceed unblocked.
func (e *Engine) poolSlow(factID string) (*factPool, error) {
	e.mu.Lock()
	// Re-check under the lock: the pool may have been published while we
	// waited for the writer mutex.
	if p, ok := e.snap.Load().pools[factID]; ok {
		e.mu.Unlock()
		e.hits.Add(1)
		return p, nil
	}
	if en, ok := e.inflight[factID]; ok {
		e.mu.Unlock()
		e.hits.Add(1)
		<-en.done
		return en.pool, nil
	}
	f, ok := e.facts[factID]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("search: %w %q", ErrUnknownFact, factID)
	}
	en := &factEntry{done: make(chan struct{})}
	e.inflight[factID] = en
	e.misses.Add(1)
	appended := e.log[factID] // immutable prefix: ingest only appends
	epoch := e.snap.Load().epochs[factID]
	e.mu.Unlock()

	p := e.materialize(f, appended, epoch)

	e.mu.Lock()
	// Ingestion may have appended documents while we materialised outside
	// the lock; fold the missed suffix before publishing, so the snapshot
	// never goes backwards in epoch.
	if cur := e.snap.Load().epochs[factID]; cur != epoch {
		p = foldPool(p, e.log[factID][len(appended):], cur)
	}
	e.publish(factID, p)
	delete(e.inflight, factID)
	e.mu.Unlock()

	en.pool = p
	close(en.done)
	return p, nil
}

// publish installs the pool into a fresh snapshot, evicting over-budget
// pools, and swaps it live. Callers hold e.mu.
func (e *Engine) publish(factID string, p *factPool) {
	old := e.snap.Load()
	pools := make(map[string]*factPool, len(old.pools)+1)
	for k, v := range old.pools {
		pools[k] = v
	}
	pools[factID] = p
	next := &snapshot{
		gen:     old.gen + 1,
		pools:   pools,
		epochs:  old.epochs,
		digests: old.digests,
	}
	p.lastUsed.Store(next.gen)
	e.evicted.Add(evictOver(pools))
	e.snap.Store(next)
}

// evictOver drops least-recently-used pools until the map fits the budget,
// breaking generation ties by fact ID so eviction order is deterministic.
// The map is not yet published, so mutation is safe.
func evictOver(pools map[string]*factPool) int64 {
	var n int64
	for len(pools) > MaxCachedFacts {
		victim := ""
		var vGen uint64
		for id, p := range pools {
			g := p.lastUsed.Load()
			if victim == "" || g < vGen || (g == vGen && id < victim) {
				victim, vGen = id, g
			}
		}
		delete(pools, victim)
		n++
	}
	return n
}

// materialize generates the fact's pool from the source, replays its
// ingestion log on top, and builds the inverted index from the corpus term
// streams (a single tokenize pass per document).
func (e *Engine) materialize(f *dataset.Fact, appended []*pooledDoc, epoch uint64) *factPool {
	ms := e.gen.Materialize(f)
	n := len(ms) + len(appended)
	p := &factPool{
		docs:  make([]*pooledDoc, 0, n),
		byID:  make(map[string]*pooledDoc, n),
		epoch: epoch,
	}
	b := index.NewBuilder(n)
	for _, m := range ms {
		vec := m.Vec
		if vec.NNZ() == 0 && len(m.Terms) > 0 {
			// Pool sources other than corpus.Generator may fill only the
			// term stream; embed it here so the doc table always carries a
			// usable vector.
			vec = text.SparseEmbedTokens(m.Terms)
		}
		full := m.Doc.Title + " " + m.Text
		d := &pooledDoc{
			doc:  m.Doc,
			full: full,
			text: full[len(m.Doc.Title)+1:],
			vec:  vec,
		}
		p.docs = append(p.docs, d)
		p.byID[m.Doc.ID] = d
		b.AddVec(m.Doc.ID, vec)
	}
	for _, d := range appended {
		p.docs = append(p.docs, d)
		p.byID[d.doc.ID] = d
		b.AddVec(d.doc.ID, d.vec)
	}
	p.idx = b.Build()
	return p
}

// foldPool extends a pool with newly ingested documents, rebuilding the
// index over the combined doc sequence. Appending to the same builder
// sequence a cold build would see keeps the incremental index
// byte-identical to a from-scratch materialisation.
func foldPool(p *factPool, appended []*pooledDoc, epoch uint64) *factPool {
	docs := make([]*pooledDoc, len(p.docs), len(p.docs)+len(appended))
	copy(docs, p.docs)
	byID := make(map[string]*pooledDoc, len(p.byID)+len(appended))
	for k, v := range p.byID {
		byID[k] = v
	}
	np := &factPool{docs: docs, byID: byID, epoch: epoch}
	for _, d := range appended {
		np.docs = append(np.docs, d)
		np.byID[d.doc.ID] = d
	}
	b := index.NewBuilder(len(np.docs))
	for _, d := range np.docs {
		b.AddVec(d.doc.ID, d.vec)
	}
	np.idx = b.Build()
	return np
}

// Warm implements Warmer: it materialises the fact's pool and index so
// later queries hit a warm snapshot. Prefetch stages call it once per fact
// ahead of model fan-out.
func (e *Engine) Warm(factID string) error {
	_, err := e.pool(factID)
	return err
}

// maxCachedQueryVecs bounds the query-embedding memo. The memo is an
// immutable copy-on-write map: once full it simply stops admitting new
// queries until the next ingestion epoch rebuilds it from empty —
// correctness never depends on a hit, and a hard ceiling beats LRU
// bookkeeping on a lock-free path.
const maxCachedQueryVecs = 4096

// queryVec returns the sparse embedding of q, memoised across queries
// within one ingestion epoch. The warm path is one atomic load and one
// immutable map lookup; misses copy the map and CAS the new generation in.
func (e *Engine) queryVec(q string) text.SparseVector {
	if v, ok := e.qv.Load().m[q]; ok {
		return v
	}
	v := text.SparseEmbed(q)
	for {
		old := e.qv.Load()
		if _, ok := old.m[q]; ok {
			return v // another writer published it; embeddings are pure
		}
		if len(old.m) >= maxCachedQueryVecs {
			return v
		}
		m := make(map[string]text.SparseVector, len(old.m)+1)
		for k, ov := range old.m {
			m[k] = ov
		}
		m[q] = v
		if e.qv.CompareAndSwap(old, &qvMap{m: m}) {
			return v
		}
	}
}

// serpJitterScale is the magnitude of the deterministic SERP perturbation,
// shared by the production path (which pre-hashes the query prefix) and
// the scan reference.
const serpJitterScale = 0.05

// serpJitter is the deterministic per-(query,doc) score perturbation:
// SERPs rank by more than lexical relevance (authority, freshness).
func serpJitter(query, docID string) float64 {
	return serpJitterScale * det.Uniform("serp", query, docID)
}

// Search implements Searcher. Ranking is cosine relevance of the query to
// title+body with a small deterministic tie-break jitter, mimicking the
// opaque ordering of a web SERP. Scoring runs over the impact-ordered
// block postings with max-score/WAND early termination (index.TopKPruned):
// blocks provably unable to reach the heap floor are never read, and the
// jitter magnitude is folded into every upper bound, so results stay
// byte-identical to the exhaustive paths (see IndexedSearch/ScanSearch).
func (e *Engine) Search(factID, query string, n int) ([]SERPItem, error) {
	start := time.Now()
	if n <= 0 {
		n = DefaultSERPSize
	}
	p, err := e.pool(factID)
	if err != nil {
		queryHist.Observe(time.Since(start))
		return nil, err
	}
	qv := e.queryVec(query)
	// One partial hash covers the ("serp", query) prefix for the whole
	// pool; each document extends it with its ID only. Values are identical
	// to serpJitter(query, docID).
	key := det.NewKey("serp", query)
	a := e.arena()
	// key.Uniform is in [0,1), so the jitter never exceeds serpJitterScale
	// — the perturbation bound the pruned path folds into its skips.
	hits := p.idx.TopKPruned(qv, n, func(docID string) float64 {
		return serpJitterScale * key.Uniform(docID)
	}, serpJitterScale, a)
	out := serpItems(p, hits)
	e.retrieval.queries.Add(1)
	e.retrieval.postingsTouched.Add(int64(a.Stats.PostingsTouched))
	e.retrieval.blocksSkipped.Add(int64(a.Stats.BlocksSkipped))
	e.retrieval.docsScored.Add(int64(a.Stats.DocsScored))
	e.release(a)
	queryHist.Observe(time.Since(start))
	return out, nil
}

// IndexedSearch is the exhaustive posting-list ranking the pruned path
// replaced: term-at-a-time accumulation over every posting of every query
// dimension, bounded-heap selection. Kept as the mid-rung of the golden
// differential ladder (Search == IndexedSearch == ScanSearch, byte for
// byte) and as the bench baseline the pruning win is measured against.
func (e *Engine) IndexedSearch(factID, query string, n int) ([]SERPItem, error) {
	if n <= 0 {
		n = DefaultSERPSize
	}
	p, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	qv := e.queryVec(query)
	key := det.NewKey("serp", query)
	a := e.arena()
	hits := p.idx.TopKSparse(qv, n, func(docID string) float64 {
		return serpJitterScale * key.Uniform(docID)
	}, a)
	out := serpItems(p, hits)
	e.release(a)
	return out, nil
}

// serpItems converts arena-backed hits into wire-form SERP items (copied
// out, so the arena can be released).
func serpItems(p *factPool, hits []index.Hit) []SERPItem {
	out := make([]SERPItem, len(hits))
	for i, h := range hits {
		d := p.docs[h.Doc].doc
		out[i] = SERPItem{
			DocID: d.ID,
			URL:   d.URL,
			Host:  d.Host,
			Title: d.Title,
			Rank:  i + 1,
			Score: h.Score,
		}
	}
	return out
}

// ScanSearch is the retired linear-scan ranking, kept as the differential
// reference for the indexed path: cosine of the query against every pool
// document's dense embedding, full sort, truncate. Golden tests assert
// Search == ScanSearch byte for byte, and the bench suite compares their
// cost. Dense vectors are materialised lazily on first use and cached per
// pool, so repeated calls measure steady-state scan cost as the old engine
// paid it.
func (e *Engine) ScanSearch(factID, query string, n int) ([]SERPItem, error) {
	if n <= 0 {
		n = DefaultSERPSize
	}
	p, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	p.scanOnce.Do(func() {
		p.scanVecs = make([]text.Vector, len(p.docs))
		for i, d := range p.docs {
			p.scanVecs[i] = text.Embed(d.full)
		}
	})
	qv := text.Embed(query)
	type scored struct {
		d *pooledDoc
		s float64
	}
	items := make([]scored, 0, len(p.docs))
	for i, d := range p.docs {
		s := text.Cosine(qv, p.scanVecs[i])
		s += serpJitter(query, d.doc.ID)
		items = append(items, scored{d: d, s: s})
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].s != items[j].s {
			return items[i].s > items[j].s
		}
		return items[i].d.doc.ID < items[j].d.doc.ID
	})
	if len(items) > n {
		items = items[:n]
	}
	out := make([]SERPItem, len(items))
	for i, it := range items {
		out[i] = SERPItem{
			DocID: it.d.doc.ID,
			URL:   it.d.doc.URL,
			Host:  it.d.doc.Host,
			Title: it.d.doc.Title,
			Rank:  i + 1,
			Score: it.s,
		}
	}
	return out, nil
}

// Fetch implements Searcher with an O(1) doc-table lookup.
func (e *Engine) Fetch(docID string) (DocPayload, error) {
	d, err := e.lookup(docID)
	if err != nil {
		return DocPayload{}, err
	}
	return d.payload(), nil
}

// DocEvidence is a fetched document together with its precomputed scoring
// state: the full "Title + body" rerank-candidate string, the sparse
// embedding of that string (computed once at materialisation), and access
// to the shared sentence split behind sliding-window chunking. It is what
// the vector-aware RAG pipeline consumes instead of re-embedding and
// re-splitting every candidate per fact.
type DocEvidence struct {
	DocPayload
	// Full is Title + " " + Text, the exact candidate string document
	// rerankers score (Text aliases its tail; no extra copy).
	Full string
	// Vec is the precomputed sparse embedding of Full, bit-identical to
	// text.SparseEmbed(Full).
	Vec text.SparseVector

	pooled *pooledDoc
}

// Chunks returns the document's sliding windows of `window` sentences from
// the doc table's cached sentence split — output-identical to
// chunk.Sliding(DocID, Text, window).
func (d DocEvidence) Chunks(window int) []chunk.Chunk {
	return d.pooled.sentenceSplit().Windows(d.DocID, window)
}

// ChunkVecs returns the sparse embeddings of the document's windows of
// `window` sentences, built from the split's single tokenize pass; entry i
// is bit-identical to text.SparseEmbed(Chunks(window)[i].Text).
func (d DocEvidence) ChunkVecs(window int) []text.SparseVector {
	return d.pooled.sentenceSplit().WindowVecs(window)
}

// EvidenceFetcher is implemented by searchers whose doc table carries
// precomputed per-document scoring state. The in-process Engine implements
// it; the HTTP client does not (vectors don't travel over the mock API), so
// consumers fall back to Fetch plus on-the-fly embedding.
type EvidenceFetcher interface {
	// FetchEvidence retrieves a document with its precomputed vector and
	// chunk state.
	FetchEvidence(docID string) (DocEvidence, error)
}

// FetchEvidence implements EvidenceFetcher.
func (e *Engine) FetchEvidence(docID string) (DocEvidence, error) {
	d, err := e.lookup(docID)
	if err != nil {
		return DocEvidence{}, err
	}
	return DocEvidence{
		DocPayload: d.payload(),
		Full:       d.full,
		Vec:        d.vec,
		pooled:     d,
	}, nil
}

// lookup resolves a doc ID to its doc-table row.
func (e *Engine) lookup(docID string) (*pooledDoc, error) {
	factID, ok := factIDOfDoc(docID)
	if !ok {
		return nil, fmt.Errorf("search: %w %q", ErrMalformedDocID, docID)
	}
	p, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	d, ok := p.byID[docID]
	if !ok {
		return nil, fmt.Errorf("search: %w %q", ErrUnknownDoc, docID)
	}
	return d, nil
}

// payload builds the wire-form document.
func (d *pooledDoc) payload() DocPayload {
	return DocPayload{
		DocID: d.doc.ID,
		URL:   d.doc.URL,
		Host:  d.doc.Host,
		Title: d.doc.Title,
		Text:  d.text,
		Empty: d.doc.Empty,
	}
}

// Stats summarises the snapshot's state and the pruned retrieval path's
// cumulative work counters.
type Stats struct {
	// Facts is the number of known facts; CachedFacts of them are currently
	// materialised (in-flight materialisations included).
	Facts       int   `json:"facts"`
	CachedFacts int   `json:"cached_facts"`
	IndexedDocs int   `json:"indexed_docs"`
	Postings    int   `json:"postings"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evicted     int64 `json:"evicted"`
	// Epoch is the snapshot publication sequence number; IngestedDocs
	// counts live-ingested documents across all facts, and
	// CachedQueryVecs is the current size of the per-epoch query memo.
	Epoch           uint64 `json:"epoch"`
	IngestedDocs    int    `json:"ingested_docs"`
	CachedQueryVecs int    `json:"cached_query_vecs"`
	// SearchQueries counts Search calls (the pruned production path);
	// PostingsTouched, BlocksSkipped and DocsScored accumulate its pruning
	// counters — the asymptotic story of every query served so far.
	SearchQueries   int64 `json:"search_queries"`
	PostingsTouched int64 `json:"postings_touched"`
	BlocksSkipped   int64 `json:"blocks_skipped"`
	DocsScored      int64 `json:"docs_scored"`
}

// Stats returns a point-in-time snapshot of the store. In-flight
// materialisations count as cached facts but contribute no document or
// posting counts (the snapshot never blocks on them).
func (e *Engine) Stats() Stats {
	sn := e.snap.Load()
	st := Stats{
		Facts:           len(e.facts),
		CachedFacts:     len(sn.pools),
		Epoch:           sn.gen,
		CachedQueryVecs: len(e.qv.Load().m),
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		Evicted:         e.evicted.Load(),
		SearchQueries:   e.retrieval.queries.Load(),
		PostingsTouched: e.retrieval.postingsTouched.Load(),
		BlocksSkipped:   e.retrieval.blocksSkipped.Load(),
		DocsScored:      e.retrieval.docsScored.Load(),
	}
	for _, p := range sn.pools {
		st.IndexedDocs += p.idx.Docs()
		st.Postings += p.idx.Postings()
	}
	e.mu.Lock()
	st.CachedFacts += len(e.inflight)
	for _, l := range e.log {
		st.IngestedDocs += len(l)
	}
	e.mu.Unlock()
	return st
}

// factIDOfDoc strips the "-dNNNN" suffix corpus.Generator appends. It
// requires a non-empty fact ID followed by a "-d" marker and at least one
// digit, rejecting malformed IDs such as "", "x-", "x-q1", "x-d" and IDs
// with a trailing dash.
func factIDOfDoc(docID string) (string, bool) {
	i := len(docID) - 1
	for i >= 0 && docID[i] != '-' {
		i--
	}
	// Need a non-empty fact ID before the dash, a 'd' after it, and ≥1
	// digit after the 'd'.
	if i <= 0 || i+2 >= len(docID) || docID[i+1] != 'd' {
		return "", false
	}
	for j := i + 2; j < len(docID); j++ {
		if docID[j] < '0' || docID[j] > '9' {
			return "", false
		}
	}
	return docID[:i], true
}
