// Package search implements the retrieval substrate of FactCheck: an
// inverted-scoring search engine over each fact's synthetic document pool,
// and the paper's mock web-search API (§4.1) — an HTTP service with
// SERP-style endpoints returning identical results across runs, plus a
// client so the RAG pipeline can run either in-process or over HTTP.
package search

import (
	"fmt"
	"sort"
	"sync"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/text"
)

// SERPItem is one ranked search result, mirroring what a Google SERP entry
// carries (URL, title, rank). Scores are engine-internal relevance values.
type SERPItem struct {
	DocID string  `json:"doc_id"`
	URL   string  `json:"url"`
	Host  string  `json:"host"`
	Title string  `json:"title"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// DocPayload is a fetched document: the mock equivalent of downloading a
// result URL and extracting its text.
type DocPayload struct {
	DocID string `json:"doc_id"`
	URL   string `json:"url"`
	Host  string `json:"host"`
	Title string `json:"title"`
	Text  string `json:"text"`
	Empty bool   `json:"empty"`
}

// Searcher is the retrieval interface consumed by the RAG pipeline. Both
// the in-process Engine and the HTTP mock-API Client implement it.
type Searcher interface {
	// Search returns up to n ranked results for the query within the given
	// fact's retrieval pool (the mock of issuing the query to Google with
	// lr=lang_en, hl=en, gl=us, num=n).
	Search(factID, query string, n int) ([]SERPItem, error)
	// Fetch retrieves a result document's content.
	Fetch(docID string) (DocPayload, error)
}

// DefaultSERPSize is the paper's n_max = 100 results per query.
const DefaultSERPSize = 100

// Engine is the in-process search engine. It lazily materialises each
// fact's document pool (metadata + text) and caches it, bounded by
// maxCachedFacts, since full-benchmark runs touch millions of documents.
type Engine struct {
	gen   *corpus.Generator
	facts map[string]*dataset.Fact

	mu    sync.Mutex
	cache map[string][]*indexedDoc
	order []string // FIFO eviction order
}

const maxCachedFacts = 512

type indexedDoc struct {
	doc  *corpus.Document
	text string
	vec  text.Vector
}

// NewEngine builds an engine over the documents of the given datasets.
func NewEngine(gen *corpus.Generator, ds ...*dataset.Dataset) *Engine {
	e := &Engine{
		gen:   gen,
		facts: map[string]*dataset.Fact{},
		cache: map[string][]*indexedDoc{},
	}
	for _, d := range ds {
		for _, f := range d.Facts {
			e.facts[f.ID] = f
		}
	}
	return e
}

// Fact resolves a fact by ID (exported for the mock API server).
func (e *Engine) Fact(id string) (*dataset.Fact, bool) {
	f, ok := e.facts[id]
	return f, ok
}

// FactIDs returns all known fact IDs in sorted order.
func (e *Engine) FactIDs() []string {
	out := make([]string, 0, len(e.facts))
	for id := range e.facts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) pool(factID string) ([]*indexedDoc, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if docs, ok := e.cache[factID]; ok {
		return docs, nil
	}
	f, ok := e.facts[factID]
	if !ok {
		return nil, fmt.Errorf("search: unknown fact %q", factID)
	}
	raw := e.gen.Docs(f)
	docs := make([]*indexedDoc, len(raw))
	for i, d := range raw {
		body := e.gen.Text(f, d)
		docs[i] = &indexedDoc{doc: d, text: body, vec: text.Embed(d.Title + " " + body)}
	}
	if len(e.order) >= maxCachedFacts {
		evict := e.order[0]
		e.order = e.order[1:]
		delete(e.cache, evict)
	}
	e.cache[factID] = docs
	e.order = append(e.order, factID)
	return docs, nil
}

// Search implements Searcher. Ranking is cosine relevance of the query to
// title+body with a small deterministic tie-break jitter, mimicking the
// opaque ordering of a web SERP.
func (e *Engine) Search(factID, query string, n int) ([]SERPItem, error) {
	if n <= 0 {
		n = DefaultSERPSize
	}
	docs, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	qv := text.Embed(query)
	type scored struct {
		d *indexedDoc
		s float64
	}
	items := make([]scored, 0, len(docs))
	for _, d := range docs {
		s := text.Cosine(qv, d.vec)
		// SERPs rank by more than lexical relevance (authority, freshness):
		// inject a deterministic per-(query,doc) perturbation.
		s += 0.05 * det.Uniform("serp", query, d.doc.ID)
		items = append(items, scored{d: d, s: s})
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].s != items[j].s {
			return items[i].s > items[j].s
		}
		return items[i].d.doc.ID < items[j].d.doc.ID
	})
	if len(items) > n {
		items = items[:n]
	}
	out := make([]SERPItem, len(items))
	for i, it := range items {
		out[i] = SERPItem{
			DocID: it.d.doc.ID,
			URL:   it.d.doc.URL,
			Host:  it.d.doc.Host,
			Title: it.d.doc.Title,
			Rank:  i + 1,
			Score: it.s,
		}
	}
	return out, nil
}

// Fetch implements Searcher.
func (e *Engine) Fetch(docID string) (DocPayload, error) {
	factID, ok := factIDOfDoc(docID)
	if !ok {
		return DocPayload{}, fmt.Errorf("search: malformed doc id %q", docID)
	}
	docs, err := e.pool(factID)
	if err != nil {
		return DocPayload{}, err
	}
	for _, d := range docs {
		if d.doc.ID == docID {
			return DocPayload{
				DocID: d.doc.ID,
				URL:   d.doc.URL,
				Host:  d.doc.Host,
				Title: d.doc.Title,
				Text:  d.text,
				Empty: d.doc.Empty,
			}, nil
		}
	}
	return DocPayload{}, fmt.Errorf("search: unknown document %q", docID)
}

// factIDOfDoc strips the "-dNNNN" suffix corpus.Generator appends.
func factIDOfDoc(docID string) (string, bool) {
	for i := len(docID) - 1; i >= 0; i-- {
		if docID[i] == '-' {
			if i+1 < len(docID) && docID[i+1] == 'd' {
				return docID[:i], true
			}
			return "", false
		}
	}
	return "", false
}
