// Package search implements the retrieval substrate of FactCheck: a
// sharded, inverted-index search engine over each fact's synthetic document
// pool, and the paper's mock web-search API (§4.1) — an HTTP service with
// SERP-style endpoints returning identical results across runs, plus a
// client so the RAG pipeline can run either in-process or over HTTP.
package search

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"factcheck/internal/chunk"
	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/index"
	"factcheck/internal/text"
)

// SERPItem is one ranked search result, mirroring what a Google SERP entry
// carries (URL, title, rank). Scores are engine-internal relevance values.
type SERPItem struct {
	DocID string  `json:"doc_id"`
	URL   string  `json:"url"`
	Host  string  `json:"host"`
	Title string  `json:"title"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// DocPayload is a fetched document: the mock equivalent of downloading a
// result URL and extracting its text.
type DocPayload struct {
	DocID string `json:"doc_id"`
	URL   string `json:"url"`
	Host  string `json:"host"`
	Title string `json:"title"`
	Text  string `json:"text"`
	Empty bool   `json:"empty"`
}

// Searcher is the retrieval interface consumed by the RAG pipeline. Both
// the in-process Engine and the HTTP mock-API Client implement it.
type Searcher interface {
	// Search returns up to n ranked results for the query within the given
	// fact's retrieval pool (the mock of issuing the query to Google with
	// lr=lang_en, hl=en, gl=us, num=n).
	Search(factID, query string, n int) ([]SERPItem, error)
	// Fetch retrieves a result document's content.
	Fetch(docID string) (DocPayload, error)
}

// Warmer is implemented by searchers that can materialise per-fact state
// (document pool, inverted index) ahead of queries. Prefetch stages use it
// to build index shards before model fan-out needs them.
type Warmer interface {
	// Warm materialises the fact's pool and index; it is safe to call
	// concurrently and redundantly.
	Warm(factID string) error
}

// PoolSource supplies per-fact document pools. corpus.Generator is the
// production implementation; tests substitute instrumented sources to prove
// scheduling properties (e.g. that unrelated facts materialise
// concurrently).
type PoolSource interface {
	// Materialize generates the fact's full pool — metadata, body text and
	// term streams — in pool order.
	Materialize(f *dataset.Fact) []corpus.Materialized
}

// DefaultSERPSize is the paper's n_max = 100 results per query.
const DefaultSERPSize = 100

// Typed retrieval errors, so the HTTP layer can map client mistakes
// (malformed IDs) and missing resources to distinct statuses.
var (
	ErrUnknownFact    = errors.New("unknown fact")
	ErrMalformedDocID = errors.New("malformed doc id")
	ErrUnknownDoc     = errors.New("unknown document")
)

const (
	// engineShards is the shard count of the fact store. Sharding bounds
	// lock contention: concurrent scheduler workers touching different
	// facts only collide on map access within one shard, never on
	// materialisation, which runs outside any lock.
	engineShards = 64
)

// MaxCachedFacts bounds the total materialised facts across all shards,
// since full-benchmark runs touch millions of documents. Capacity is
// accounted globally (an atomic counter) rather than per shard, so hash
// skew cannot shrink the effective cache; a shard over budget evicts its
// own least-recently-used *completed* entries — in-flight materialisations
// are never evicted, so the singleflight guarantee holds. The bound is
// therefore soft by at most the number of concurrent materialisations:
// an insert that finds nothing evictable in its shard leaves the store
// over budget, and later inserts keep evicting until the budget is repaid.
const MaxCachedFacts = 512

// Engine is the in-process search engine. Each fact's document pool is
// materialised lazily into an inverted index (posting lists + O(1) doc
// table) held in a sharded LRU store with singleflight semantics: the first
// caller for a fact owns generation and indexing, concurrent callers block
// on that entry only, and unrelated facts proceed in parallel.
type Engine struct {
	gen    PoolSource
	facts  map[string]*dataset.Fact
	shards [engineShards]engineShard
	// cached counts entries across all shards (the global LRU budget).
	cached atomic.Int64
	// arenas pools per-query top-k scratch state (accumulators, heap,
	// candidate stamps), so warm queries allocate nothing.
	arenas sync.Pool
	// retrieval accumulates pruning counters across all queries.
	retrieval retrievalCounters
	// qvMu guards qvCache, a bounded memo of sparse query embeddings.
	// Production SERP queries repeat heavily — every verification method
	// re-issues the same fact-derived queries — and embedding is pure, so
	// memoising it keeps tokenisation off the warm query path.
	qvMu    sync.RWMutex
	qvCache map[string]text.SparseVector
}

// retrievalCounters aggregates the pruned path's work counters.
type retrievalCounters struct {
	queries         atomic.Int64
	postingsTouched atomic.Int64
	blocksSkipped   atomic.Int64
	docsScored      atomic.Int64
}

// arena checks a pooled top-k arena out; release returns it.
func (e *Engine) arena() *index.Arena {
	if a, ok := e.arenas.Get().(*index.Arena); ok {
		return a
	}
	return &index.Arena{}
}

func (e *Engine) release(a *index.Arena) { e.arenas.Put(a) }

// engineShard is one LRU partition of the fact store.
type engineShard struct {
	mu      sync.Mutex
	entries map[string]*factEntry
	order   []string // LRU order, least recently used first
	hits    int64
	misses  int64
	evicted int64
}

// factEntry is one in-flight or completed materialisation. pool is written
// once by the owner before done is closed; waiters read it only after
// <-done.
type factEntry struct {
	done chan struct{}
	pool *factPool
}

// factPool is a fully materialised fact: the pool-ordered documents, an
// O(1) fetch table, and the inverted index. scanVecs lazily holds the dense
// embedding of every document for ScanSearch, the linear-scan reference
// path; the production path never materialises them.
type factPool struct {
	docs []*pooledDoc
	byID map[string]*pooledDoc
	idx  *index.Index

	scanOnce sync.Once
	scanVecs []text.Vector
}

// pooledDoc is one doc-table row: the document, its body, the full
// "Title + body" rerank-candidate string (body aliases its tail, so the
// concatenation costs no extra memory), the sparse embedding precomputed by
// corpus.Materialize, and the lazily built sentence split serving sliding
// windows of any size. The split is built only for fetched documents, so
// the extra memory stays bounded by the fetch traffic within the
// MaxCachedFacts shard budget.
type pooledDoc struct {
	doc  *corpus.Document
	full string // Title + " " + body
	text string // body; substring of full
	vec  text.SparseVector

	splitOnce sync.Once
	split     *chunk.Split
}

// sentenceSplit returns the document's sentence split, computing it on
// first use (safe for concurrent fetchers).
func (d *pooledDoc) sentenceSplit() *chunk.Split {
	d.splitOnce.Do(func() { d.split = chunk.NewSplit(d.text) })
	return d.split
}

// NewEngine builds an engine over the documents of the given datasets.
func NewEngine(gen PoolSource, ds ...*dataset.Dataset) *Engine {
	e := &Engine{
		gen:   gen,
		facts: map[string]*dataset.Fact{},
	}
	for _, d := range ds {
		for _, f := range d.Facts {
			e.facts[f.ID] = f
		}
	}
	return e
}

// Fact resolves a fact by ID (exported for the mock API server).
func (e *Engine) Fact(id string) (*dataset.Fact, bool) {
	f, ok := e.facts[id]
	return f, ok
}

// FactIDs returns all known fact IDs in sorted order.
func (e *Engine) FactIDs() []string {
	out := make([]string, 0, len(e.facts))
	for id := range e.facts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// shard maps a fact ID to its store shard.
func (e *Engine) shard(factID string) *engineShard {
	return &e.shards[det.Hash64("search-shard", factID)%engineShards]
}

// touch moves id to the most-recently-used end of the LRU order. Callers
// hold s.mu.
func (s *engineShard) touch(id string) {
	for i, v := range s.order {
		if v == id {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = id
			return
		}
	}
}

// insert records a new entry at the most-recently-used end. Callers hold
// s.mu.
func (s *engineShard) insert(id string, en *factEntry) {
	if s.entries == nil {
		s.entries = make(map[string]*factEntry)
	}
	s.entries[id] = en
	s.order = append(s.order, id)
}

// evictOldestDone removes the shard's least recently used *completed*
// entry, skipping in-flight materialisations (evicting one would orphan
// the owner's work and let a later caller duplicate it). Returns false
// when the shard holds no completed entry. Callers hold s.mu.
func (s *engineShard) evictOldestDone() (string, bool) {
	for i, id := range s.order {
		en := s.entries[id]
		select {
		case <-en.done:
		default:
			continue // in-flight: never evict
		}
		s.order = append(s.order[:i], s.order[i+1:]...)
		delete(s.entries, id)
		s.evicted++
		return id, true
	}
	return "", false
}

// pool returns the fact's materialised pool, generating and indexing it on
// first use. Materialisation runs outside the shard lock: concurrent
// callers for the same fact coalesce on the entry's done channel
// (singleflight), while callers for other facts — same shard or not —
// proceed unblocked.
func (e *Engine) pool(factID string) (*factPool, error) {
	s := e.shard(factID)
	s.mu.Lock()
	if en, ok := s.entries[factID]; ok {
		s.hits++
		s.touch(factID)
		s.mu.Unlock()
		<-en.done
		return en.pool, nil
	}
	f, ok := e.facts[factID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("search: %w %q", ErrUnknownFact, factID)
	}
	en := &factEntry{done: make(chan struct{})}
	s.misses++
	s.insert(factID, en)
	// Repay the budget while over it, not just for this insert's +1: a
	// prior insert whose shard had nothing evictable may have left the
	// store over budget, and this shard may hold the slack. When this
	// shard too has nothing evictable (all in-flight), the store stays
	// over budget until a later insert repays it.
	e.cached.Add(1)
	for e.cached.Load() > MaxCachedFacts {
		if _, ok := s.evictOldestDone(); !ok {
			break
		}
		e.cached.Add(-1)
	}
	s.mu.Unlock()

	en.pool = e.materialize(f)
	close(en.done)
	return en.pool, nil
}

// materialize generates the fact's pool and builds its inverted index from
// the corpus term streams (a single tokenize pass per document).
func (e *Engine) materialize(f *dataset.Fact) *factPool {
	ms := e.gen.Materialize(f)
	p := &factPool{
		docs: make([]*pooledDoc, len(ms)),
		byID: make(map[string]*pooledDoc, len(ms)),
	}
	b := index.NewBuilder(len(ms))
	for i, m := range ms {
		vec := m.Vec
		if vec.NNZ() == 0 && len(m.Terms) > 0 {
			// Pool sources other than corpus.Generator may fill only the
			// term stream; embed it here so the doc table always carries a
			// usable vector.
			vec = text.SparseEmbedTokens(m.Terms)
		}
		full := m.Doc.Title + " " + m.Text
		d := &pooledDoc{
			doc:  m.Doc,
			full: full,
			text: full[len(m.Doc.Title)+1:],
			vec:  vec,
		}
		p.docs[i] = d
		p.byID[m.Doc.ID] = d
		b.AddVec(m.Doc.ID, vec)
	}
	p.idx = b.Build()
	return p
}

// Warm implements Warmer: it materialises the fact's pool and index so
// later queries hit a warm shard. Prefetch stages call it once per fact
// ahead of model fan-out.
func (e *Engine) Warm(factID string) error {
	_, err := e.pool(factID)
	return err
}

// maxCachedQueryVecs bounds the query-embedding memo; on overflow the memo
// resets wholesale — cheaper than LRU bookkeeping for a cache this small,
// and correctness never depends on a hit.
const maxCachedQueryVecs = 4096

// queryVec returns the sparse embedding of q, memoised across queries.
func (e *Engine) queryVec(q string) text.SparseVector {
	e.qvMu.RLock()
	v, ok := e.qvCache[q]
	e.qvMu.RUnlock()
	if ok {
		return v
	}
	v = text.SparseEmbed(q)
	e.qvMu.Lock()
	if e.qvCache == nil {
		e.qvCache = make(map[string]text.SparseVector, 64)
	}
	if len(e.qvCache) >= maxCachedQueryVecs {
		clear(e.qvCache)
	}
	e.qvCache[q] = v
	e.qvMu.Unlock()
	return v
}

// serpJitterScale is the magnitude of the deterministic SERP perturbation,
// shared by the production path (which pre-hashes the query prefix) and
// the scan reference.
const serpJitterScale = 0.05

// serpJitter is the deterministic per-(query,doc) score perturbation:
// SERPs rank by more than lexical relevance (authority, freshness).
func serpJitter(query, docID string) float64 {
	return serpJitterScale * det.Uniform("serp", query, docID)
}

// Search implements Searcher. Ranking is cosine relevance of the query to
// title+body with a small deterministic tie-break jitter, mimicking the
// opaque ordering of a web SERP. Scoring runs over the impact-ordered
// block postings with max-score/WAND early termination (index.TopKPruned):
// blocks provably unable to reach the heap floor are never read, and the
// jitter magnitude is folded into every upper bound, so results stay
// byte-identical to the exhaustive paths (see IndexedSearch/ScanSearch).
func (e *Engine) Search(factID, query string, n int) ([]SERPItem, error) {
	if n <= 0 {
		n = DefaultSERPSize
	}
	p, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	qv := e.queryVec(query)
	// One partial hash covers the ("serp", query) prefix for the whole
	// pool; each document extends it with its ID only. Values are identical
	// to serpJitter(query, docID).
	key := det.NewKey("serp", query)
	a := e.arena()
	// key.Uniform is in [0,1), so the jitter never exceeds serpJitterScale
	// — the perturbation bound the pruned path folds into its skips.
	hits := p.idx.TopKPruned(qv, n, func(docID string) float64 {
		return serpJitterScale * key.Uniform(docID)
	}, serpJitterScale, a)
	out := serpItems(p, hits)
	e.retrieval.queries.Add(1)
	e.retrieval.postingsTouched.Add(int64(a.Stats.PostingsTouched))
	e.retrieval.blocksSkipped.Add(int64(a.Stats.BlocksSkipped))
	e.retrieval.docsScored.Add(int64(a.Stats.DocsScored))
	e.release(a)
	return out, nil
}

// IndexedSearch is the exhaustive posting-list ranking the pruned path
// replaced: term-at-a-time accumulation over every posting of every query
// dimension, bounded-heap selection. Kept as the mid-rung of the golden
// differential ladder (Search == IndexedSearch == ScanSearch, byte for
// byte) and as the bench baseline the pruning win is measured against.
func (e *Engine) IndexedSearch(factID, query string, n int) ([]SERPItem, error) {
	if n <= 0 {
		n = DefaultSERPSize
	}
	p, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	qv := e.queryVec(query)
	key := det.NewKey("serp", query)
	a := e.arena()
	hits := p.idx.TopKSparse(qv, n, func(docID string) float64 {
		return serpJitterScale * key.Uniform(docID)
	}, a)
	out := serpItems(p, hits)
	e.release(a)
	return out, nil
}

// serpItems converts arena-backed hits into wire-form SERP items (copied
// out, so the arena can be released).
func serpItems(p *factPool, hits []index.Hit) []SERPItem {
	out := make([]SERPItem, len(hits))
	for i, h := range hits {
		d := p.docs[h.Doc].doc
		out[i] = SERPItem{
			DocID: d.ID,
			URL:   d.URL,
			Host:  d.Host,
			Title: d.Title,
			Rank:  i + 1,
			Score: h.Score,
		}
	}
	return out
}

// ScanSearch is the retired linear-scan ranking, kept as the differential
// reference for the indexed path: cosine of the query against every pool
// document's dense embedding, full sort, truncate. Golden tests assert
// Search == ScanSearch byte for byte, and the bench suite compares their
// cost. Dense vectors are materialised lazily on first use and cached per
// pool, so repeated calls measure steady-state scan cost as the old engine
// paid it.
func (e *Engine) ScanSearch(factID, query string, n int) ([]SERPItem, error) {
	if n <= 0 {
		n = DefaultSERPSize
	}
	p, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	p.scanOnce.Do(func() {
		p.scanVecs = make([]text.Vector, len(p.docs))
		for i, d := range p.docs {
			p.scanVecs[i] = text.Embed(d.full)
		}
	})
	qv := text.Embed(query)
	type scored struct {
		d *pooledDoc
		s float64
	}
	items := make([]scored, 0, len(p.docs))
	for i, d := range p.docs {
		s := text.Cosine(qv, p.scanVecs[i])
		s += serpJitter(query, d.doc.ID)
		items = append(items, scored{d: d, s: s})
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].s != items[j].s {
			return items[i].s > items[j].s
		}
		return items[i].d.doc.ID < items[j].d.doc.ID
	})
	if len(items) > n {
		items = items[:n]
	}
	out := make([]SERPItem, len(items))
	for i, it := range items {
		out[i] = SERPItem{
			DocID: it.d.doc.ID,
			URL:   it.d.doc.URL,
			Host:  it.d.doc.Host,
			Title: it.d.doc.Title,
			Rank:  i + 1,
			Score: it.s,
		}
	}
	return out, nil
}

// Fetch implements Searcher with an O(1) doc-table lookup.
func (e *Engine) Fetch(docID string) (DocPayload, error) {
	d, err := e.lookup(docID)
	if err != nil {
		return DocPayload{}, err
	}
	return d.payload(), nil
}

// DocEvidence is a fetched document together with its precomputed scoring
// state: the full "Title + body" rerank-candidate string, the sparse
// embedding of that string (computed once at materialisation), and access
// to the shared sentence split behind sliding-window chunking. It is what
// the vector-aware RAG pipeline consumes instead of re-embedding and
// re-splitting every candidate per fact.
type DocEvidence struct {
	DocPayload
	// Full is Title + " " + Text, the exact candidate string document
	// rerankers score (Text aliases its tail; no extra copy).
	Full string
	// Vec is the precomputed sparse embedding of Full, bit-identical to
	// text.SparseEmbed(Full).
	Vec text.SparseVector

	pooled *pooledDoc
}

// Chunks returns the document's sliding windows of `window` sentences from
// the doc table's cached sentence split — output-identical to
// chunk.Sliding(DocID, Text, window).
func (d DocEvidence) Chunks(window int) []chunk.Chunk {
	return d.pooled.sentenceSplit().Windows(d.DocID, window)
}

// ChunkVecs returns the sparse embeddings of the document's windows of
// `window` sentences, built from the split's single tokenize pass; entry i
// is bit-identical to text.SparseEmbed(Chunks(window)[i].Text).
func (d DocEvidence) ChunkVecs(window int) []text.SparseVector {
	return d.pooled.sentenceSplit().WindowVecs(window)
}

// EvidenceFetcher is implemented by searchers whose doc table carries
// precomputed per-document scoring state. The in-process Engine implements
// it; the HTTP client does not (vectors don't travel over the mock API), so
// consumers fall back to Fetch plus on-the-fly embedding.
type EvidenceFetcher interface {
	// FetchEvidence retrieves a document with its precomputed vector and
	// chunk state.
	FetchEvidence(docID string) (DocEvidence, error)
}

// FetchEvidence implements EvidenceFetcher.
func (e *Engine) FetchEvidence(docID string) (DocEvidence, error) {
	d, err := e.lookup(docID)
	if err != nil {
		return DocEvidence{}, err
	}
	return DocEvidence{
		DocPayload: d.payload(),
		Full:       d.full,
		Vec:        d.vec,
		pooled:     d,
	}, nil
}

// lookup resolves a doc ID to its doc-table row.
func (e *Engine) lookup(docID string) (*pooledDoc, error) {
	factID, ok := factIDOfDoc(docID)
	if !ok {
		return nil, fmt.Errorf("search: %w %q", ErrMalformedDocID, docID)
	}
	p, err := e.pool(factID)
	if err != nil {
		return nil, err
	}
	d, ok := p.byID[docID]
	if !ok {
		return nil, fmt.Errorf("search: %w %q", ErrUnknownDoc, docID)
	}
	return d, nil
}

// payload builds the wire-form document.
func (d *pooledDoc) payload() DocPayload {
	return DocPayload{
		DocID: d.doc.ID,
		URL:   d.doc.URL,
		Host:  d.doc.Host,
		Title: d.doc.Title,
		Text:  d.text,
		Empty: d.doc.Empty,
	}
}

// Stats summarises the index store's state and the pruned retrieval path's
// cumulative work counters.
type Stats struct {
	// Facts is the number of known facts; CachedFacts of them are currently
	// materialised.
	Facts       int   `json:"facts"`
	CachedFacts int   `json:"cached_facts"`
	IndexedDocs int   `json:"indexed_docs"`
	Postings    int   `json:"postings"`
	Shards      int   `json:"shards"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evicted     int64 `json:"evicted"`
	// SearchQueries counts Search calls (the pruned production path);
	// PostingsTouched, BlocksSkipped and DocsScored accumulate its pruning
	// counters — the asymptotic story of every query served so far.
	SearchQueries   int64 `json:"search_queries"`
	PostingsTouched int64 `json:"postings_touched"`
	BlocksSkipped   int64 `json:"blocks_skipped"`
	DocsScored      int64 `json:"docs_scored"`
}

// Stats returns a point-in-time snapshot of the store. In-flight
// materialisations count as cached facts but contribute no document or
// posting counts (the snapshot never blocks on them).
func (e *Engine) Stats() Stats {
	st := Stats{
		Facts:           len(e.facts),
		Shards:          engineShards,
		SearchQueries:   e.retrieval.queries.Load(),
		PostingsTouched: e.retrieval.postingsTouched.Load(),
		BlocksSkipped:   e.retrieval.blocksSkipped.Load(),
		DocsScored:      e.retrieval.docsScored.Load(),
	}
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		st.CachedFacts += len(s.entries)
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evicted += s.evicted
		for _, en := range s.entries {
			select {
			case <-en.done:
				st.IndexedDocs += en.pool.idx.Docs()
				st.Postings += en.pool.idx.Postings()
			default:
			}
		}
		s.mu.Unlock()
	}
	return st
}

// factIDOfDoc strips the "-dNNNN" suffix corpus.Generator appends. It
// requires a non-empty fact ID followed by a "-d" marker and at least one
// digit, rejecting malformed IDs such as "", "x-", "x-q1", "x-d" and IDs
// with a trailing dash.
func factIDOfDoc(docID string) (string, bool) {
	i := len(docID) - 1
	for i >= 0 && docID[i] != '-' {
		i--
	}
	// Need a non-empty fact ID before the dash, a 'd' after it, and ≥1
	// digit after the 'd'.
	if i <= 0 || i+2 >= len(docID) || docID[i+1] != 'd' {
		return "", false
	}
	for j := i + 2; j < len(docID); j++ {
		if docID[j] < '0' || docID[j] > '9' {
			return "", false
		}
	}
	return docID[:i], true
}
