package search

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Client is a Searcher backed by the mock API over HTTP, letting the RAG
// pipeline run against a remote (or test) server exactly as researchers
// would against the paper's hosted mock API.
type Client struct {
	// BaseURL is the API root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient when nil.
	HTTPClient *http.Client
}

// NewClient returns a client for the API at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Search implements Searcher over HTTP.
func (c *Client) Search(factID, query string, n int) ([]SERPItem, error) {
	if n <= 0 {
		n = DefaultSERPSize
	}
	q := url.Values{}
	q.Set("fact_id", factID)
	q.Set("q", query)
	q.Set("num", strconv.Itoa(n))
	var resp SERPResponse
	if err := c.getJSON("/search", q, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Fetch implements Searcher over HTTP.
func (c *Client) Fetch(docID string) (DocPayload, error) {
	q := url.Values{}
	q.Set("doc_id", docID)
	var doc DocPayload
	if err := c.getJSON("/document", q, &doc); err != nil {
		return DocPayload{}, err
	}
	return doc, nil
}

// FactIDs lists the fact IDs known to the server.
func (c *Client) FactIDs() ([]string, error) {
	var resp map[string][]string
	if err := c.getJSON("/facts", nil, &resp); err != nil {
		return nil, err
	}
	return resp["fact_ids"], nil
}

func (c *Client) getJSON(path string, q url.Values, out any) error {
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.client().Get(u)
	if err != nil {
		return fmt.Errorf("search client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("search client: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		if json.Unmarshal(body, &e) == nil && e["error"] != "" {
			return fmt.Errorf("search client: %s: %s (status %d)", path, e["error"], resp.StatusCode)
		}
		return fmt.Errorf("search client: %s: status %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("search client: decode %s: %w", path, err)
	}
	return nil
}
