package search

import (
	"errors"
	"reflect"
	"testing"

	"factcheck/internal/chunk"
	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/text"
	"factcheck/internal/verbalize"
	"factcheck/internal/world"
)

// TestFetchEvidenceMatchesFetch pins the vector-aware fetch against plain
// Fetch plus on-the-fly embedding/splitting, for every document of a SERP.
func TestFetchEvidenceMatchesFetch(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	items, err := e.Search(f.ID, verbalize.Sentence(f), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("no results")
	}
	for _, it := range items {
		de, err := e.FetchEvidence(it.DocID)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.Fetch(it.DocID)
		if err != nil {
			t.Fatal(err)
		}
		if de.DocPayload != plain {
			t.Fatalf("doc %s: payload mismatch: %+v vs %+v", it.DocID, de.DocPayload, plain)
		}
		if want := plain.Title + " " + plain.Text; de.Full != want {
			t.Fatalf("doc %s: Full = %q, want %q", it.DocID, de.Full, want)
		}
		if want := text.SparseEmbed(de.Full); !reflect.DeepEqual(de.Vec, want) {
			t.Fatalf("doc %s: precomputed vec differs from SparseEmbed(Full)", it.DocID)
		}
		for _, w := range []int{1, 3} {
			if got, want := de.Chunks(w), chunk.Sliding(plain.DocID, plain.Text, w); !reflect.DeepEqual(got, want) {
				t.Fatalf("doc %s window %d: Chunks = %v, Sliding = %v", it.DocID, w, got, want)
			}
			chunks := de.Chunks(w)
			vecs := de.ChunkVecs(w)
			if len(chunks) != len(vecs) {
				t.Fatalf("doc %s window %d: %d chunks vs %d vecs", it.DocID, w, len(chunks), len(vecs))
			}
			for i := range chunks {
				if want := text.SparseEmbed(chunks[i].Text); !reflect.DeepEqual(vecs[i], want) {
					t.Fatalf("doc %s window %d chunk %d: vec mismatch", it.DocID, w, i)
				}
			}
		}
	}
}

// TestFetchEvidenceErrors mirrors Fetch's typed error contract.
func TestFetchEvidenceErrors(t *testing.T) {
	e, d := fixture(t)
	if _, err := e.FetchEvidence("not-a-doc-id"); !errors.Is(err, ErrMalformedDocID) {
		t.Errorf("malformed ID: got %v, want ErrMalformedDocID", err)
	}
	if _, err := e.FetchEvidence("no-such-fact-d0001"); !errors.Is(err, ErrUnknownFact) {
		t.Errorf("unknown fact: got %v, want ErrUnknownFact", err)
	}
	if _, err := e.FetchEvidence(d.Facts[0].ID + "-d9999"); !errors.Is(err, ErrUnknownDoc) {
		t.Errorf("unknown doc: got %v, want ErrUnknownDoc", err)
	}
}

// termsOnlySource strips the precomputed vectors from a real generator's
// pools, modelling a PoolSource that fills only the term streams.
type termsOnlySource struct{ inner PoolSource }

func (s termsOnlySource) Materialize(f *dataset.Fact) []corpus.Materialized {
	ms := s.inner.Materialize(f)
	for i := range ms {
		ms[i].Vec = text.SparseVector{}
	}
	return ms
}

// TestTermsOnlyPoolSourceStillSearchable is the regression test for the
// vector-fallback path: a source that fills Terms but not Vec must produce
// the same index (same postings, same SERPs) as the full generator — not
// silently unsearchable documents.
func TestTermsOnlyPoolSourceStillSearchable(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	gen := corpus.NewGenerator(w)
	full := NewEngine(gen, d)
	stripped := NewEngine(termsOnlySource{inner: gen}, d)
	f := d.Facts[0]
	q := verbalize.Sentence(f)
	want, err := full.Search(f.ID, q, 25)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stripped.Search(f.ID, q, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no results from full engine")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("terms-only source SERP differs:\ngot:  %v\nwant: %v", got, want)
	}
	de, err := stripped.FetchEvidence(want[0].DocID)
	if err != nil {
		t.Fatal(err)
	}
	if wantVec := text.SparseEmbed(de.Full); !reflect.DeepEqual(de.Vec, wantVec) {
		t.Fatal("terms-only source doc-table vector not rebuilt from terms")
	}
}

// TestDocTableVectorsMatchScan cross-checks the precomputed doc-table
// vectors against the dense scan vectors of the reference path: for any
// query, sparse cosine over the table vector must equal dense cosine over
// the scan embedding bit for bit.
func TestDocTableVectorsMatchScan(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[2]
	query := "who founded the regional registry"
	qs := text.SparseEmbed(query)
	qd := text.Embed(query)
	items, err := e.Search(f.ID, query, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		de, err := e.FetchEvidence(it.DocID)
		if err != nil {
			t.Fatal(err)
		}
		sparse := text.SparseCosine(qs, de.Vec)
		dense := text.Cosine(qd, text.Embed(de.Full))
		if sparse != dense {
			t.Fatalf("doc %s: sparse cosine %v != dense cosine %v", it.DocID, sparse, dense)
		}
	}
}
