package search

import (
	"container/list"
	"fmt"
	"sync"
	"testing"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/text"
	"factcheck/internal/world"
)

// mutexedFrontend reproduces the retired warm read path over the very same
// materialised pools: a sharded mutex map with an LRU touch (list
// move-to-front) per hit, and an RWMutex-guarded query-vector memo. The
// scoring tail is identical to the engine's, so the gap between
// BenchmarkSearchWarmParallel/mutexed and /snapshot isolates exactly what
// this PR removed from the hot path — lock acquisitions — rather than any
// difference in ranking work.
type mutexedFrontend struct {
	e      *Engine
	shards [8]mutexedShard
	qvMu   sync.RWMutex
	qv     map[string]text.SparseVector
}

type mutexedShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

func newMutexedFrontend(e *Engine, facts []*dataset.Fact) (*mutexedFrontend, error) {
	m := &mutexedFrontend{e: e, qv: map[string]text.SparseVector{}}
	for i := range m.shards {
		m.shards[i].entries = map[string]*list.Element{}
		m.shards[i].order = list.New()
	}
	sn := e.snap.Load()
	for _, f := range facts {
		p, ok := sn.pools[f.ID]
		if !ok {
			return nil, fmt.Errorf("pool %s not warmed", f.ID)
		}
		s := &m.shards[det.Hash64("shard", f.ID)%uint64(len(m.shards))]
		s.entries[f.ID] = s.order.PushFront(p)
	}
	return m, nil
}

func (m *mutexedFrontend) queryVec(q string) text.SparseVector {
	m.qvMu.RLock()
	v, ok := m.qv[q]
	m.qvMu.RUnlock()
	if ok {
		return v
	}
	v = text.SparseEmbed(q)
	m.qvMu.Lock()
	if len(m.qv) < maxCachedQueryVecs {
		m.qv[q] = v
	}
	m.qvMu.Unlock()
	return v
}

func (m *mutexedFrontend) search(factID, query string, n int) ([]SERPItem, error) {
	s := &m.shards[det.Hash64("shard", factID)%uint64(len(m.shards))]
	s.mu.Lock()
	el, ok := s.entries[factID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("search: %w %q", ErrUnknownFact, factID)
	}
	s.order.MoveToFront(el)
	p := el.Value.(*factPool)
	s.mu.Unlock()
	qv := m.queryVec(query)
	key := det.NewKey("serp", query)
	a := m.e.arena()
	hits := p.idx.TopKPruned(qv, n, func(docID string) float64 {
		return serpJitterScale * key.Uniform(docID)
	}, serpJitterScale, a)
	out := serpItems(p, hits)
	m.e.release(a)
	return out, nil
}

// BenchmarkSearchWarmParallel measures steady-state SERP throughput over
// warm pools under the two front-end designs; run with -cpu 1,8 to see the
// single-stream cost and the contention picture. At one proc the designs
// are near-identical (a lock with no waiters is cheap); at eight the
// mutexed variant serialises on shard locks and the qv RWMutex while the
// snapshot variant's reads share immutable state and scale with cores.
func BenchmarkSearchWarmParallel(b *testing.B) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	e := NewEngine(corpus.NewGenerator(w), d)
	facts := d.Facts
	if len(facts) > 16 {
		facts = facts[:16]
	}
	queries := []string{
		"who founded the company",
		"award winner record",
		"married in the capital",
		"regional registry profile",
	}
	for _, f := range facts {
		if _, err := e.Search(f.ID, queries[0], 1); err != nil {
			b.Fatal(err)
		}
	}
	mf, err := newMutexedFrontend(e, facts)
	if err != nil {
		b.Fatal(err)
	}

	// k = 10 keeps the scoring tail short so the run measures the front
	// end (pool lookup, LRU accounting, query-vector memo) rather than
	// drowning it in per-query ranking work.
	run := func(search func(factID, query string, n int) ([]SERPItem, error)) func(*testing.B) {
		return func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					f := facts[i%len(facts)]
					q := queries[i%len(queries)]
					i++
					if _, err := search(f.ID, q, 10); err != nil {
						b.Error(err)
						return
					}
				}
			})
		}
	}
	b.Run("mutexed", run(mf.search))
	b.Run("snapshot", run(e.Search))
}
