package search

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// API is the paper's mock web-search service (§4.1): "standardized
// endpoints that emulate conventional web search APIs while returning
// consistent results from our dataset". Endpoints:
//
//	GET /search?fact_id=ID&q=QUERY&num=N  -> SERPResponse
//	GET /document?doc_id=ID               -> DocPayload
//	GET /facts                            -> {"fact_ids": [...]}
//	GET /stats                            -> Stats (index-store snapshot)
//	GET /healthz                          -> {"status": "ok"}
//
// All responses are JSON. Unknown facts/documents return 404; missing or
// malformed parameters (including malformed doc IDs) return 400.
type API struct {
	engine *Engine
}

// NewAPI wraps an engine as an HTTP API.
func NewAPI(e *Engine) *API { return &API{engine: e} }

// SERPResponse is the /search response body.
type SERPResponse struct {
	FactID  string     `json:"fact_id"`
	Query   string     `json:"query"`
	Num     int        `json:"num"`
	Results []SERPItem `json:"results"`
}

// Handler returns the API's HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", a.handleSearch)
	mux.HandleFunc("GET /document", a.handleDocument)
	mux.HandleFunc("GET /facts", a.handleFacts)
	mux.HandleFunc("GET /stats", a.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (a *API) handleSearch(w http.ResponseWriter, r *http.Request) {
	factID := r.URL.Query().Get("fact_id")
	q := r.URL.Query().Get("q")
	if factID == "" || q == "" {
		httpError(w, http.StatusBadRequest, "fact_id and q are required")
		return
	}
	n := DefaultSERPSize
	if s := r.URL.Query().Get("num"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "num must be a positive integer")
			return
		}
		n = v
	}
	if _, ok := a.engine.Fact(factID); !ok {
		httpError(w, http.StatusNotFound, "unknown fact "+factID)
		return
	}
	items, err := a.engine.Search(factID, q, n)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SERPResponse{FactID: factID, Query: q, Num: n, Results: items})
}

func (a *API) handleDocument(w http.ResponseWriter, r *http.Request) {
	docID := r.URL.Query().Get("doc_id")
	if docID == "" {
		httpError(w, http.StatusBadRequest, "doc_id is required")
		return
	}
	doc, err := a.engine.Fetch(docID)
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, ErrMalformedDocID) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (a *API) handleFacts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"fact_ids": a.engine.FactIDs()})
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.engine.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
