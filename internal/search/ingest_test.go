package search

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"factcheck/internal/corpus"
	"factcheck/internal/dataset"
	"factcheck/internal/world"
)

// streamBatch builds n deterministic live documents for the fact via the
// corpus generator's Stream namespace, starting at stream index base.
func streamBatch(gen *corpus.Generator, f *dataset.Fact, base, n int) []IngestDoc {
	var docs []IngestDoc
	for i := 0; i < n; i++ {
		sd := gen.Stream(f, base+i)
		docs = append(docs, IngestDoc{FactID: f.ID, URL: sd.URL, Host: sd.Host, Title: sd.Title, Text: sd.Text})
	}
	return docs
}

// TestIngestIncrementalMatchesCold is the PR's golden gate in unit form:
// the same document feed folded incrementally into warm, already-
// materialised pools must produce byte-identical search results and the
// same corpus digest as a cold engine that ingests everything in one batch
// and materialises from scratch.
func TestIngestIncrementalMatchesCold(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	gen := corpus.NewGenerator(w)
	inc := NewEngine(gen, d)
	cold := NewEngine(gen, d)
	facts := d.Facts[:3]

	// Incremental: warm first, then fold three batches into live pools.
	for _, f := range facts {
		if err := inc.Warm(f.ID); err != nil {
			t.Fatal(err)
		}
	}
	for batch := 0; batch < 3; batch++ {
		var docs []IngestDoc
		for _, f := range facts {
			docs = append(docs, streamBatch(gen, f, batch*2, 2)...)
		}
		if _, err := inc.Ingest(docs); err != nil {
			t.Fatal(err)
		}
	}

	// Cold: one batch into unmaterialised pools, built on first search.
	var all []IngestDoc
	for _, f := range facts {
		all = append(all, streamBatch(gen, f, 0, 6)...)
	}
	if _, err := cold.Ingest(all); err != nil {
		t.Fatal(err)
	}

	if ic, cc := inc.CorpusDigest(d.Name), cold.CorpusDigest(d.Name); ic != cc {
		t.Fatalf("corpus digests diverge: incremental %016x, cold %016x", ic, cc)
	}
	for _, f := range facts {
		a, err := inc.Search(f.ID, "records about "+f.Subject.Label, 50)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cold.Search(f.ID, "records about "+f.Subject.Label, 50)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("%s: incremental and cold serps differ:\n%s\nvs\n%s", f.ID, aj, bj)
		}
	}
	// The batching shows in the epoch counter, never in the content.
	if got := inc.FactEpoch(facts[0].ID); got != 3 {
		t.Errorf("incremental epoch = %d, want 3 (one per batch)", got)
	}
	if got := cold.FactEpoch(facts[0].ID); got != 1 {
		t.Errorf("cold epoch = %d, want 1", got)
	}
}

// TestIngestSearchSeesNewDocs: an ingested document is retrievable through
// the warm path immediately after Ingest returns.
func TestIngestSearchSeesNewDocs(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	if err := e.Warm(f.ID); err != nil {
		t.Fatal(err)
	}
	res, err := e.Ingest([]IngestDoc{{FactID: f.ID, Title: "Breaking coverage",
		Text: "Entirely fresh zanzibar-grade reporting about " + f.Subject.Label}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DocIDs) != 1 || res.Epochs[f.ID] != 1 {
		t.Fatalf("ingest result = %+v, want one doc at epoch 1", res)
	}
	items, err := e.Search(f.ID, "zanzibar-grade reporting", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.DocID == res.DocIDs[0] {
			return
		}
	}
	t.Fatalf("ingested doc %s absent from results: %+v", res.DocIDs[0], items)
}

// TestIngestEpochScoping: an ingest bumps only the facts it touches; other
// facts keep their epoch, and the digest of an untouched dataset is stable.
func TestIngestEpochScoping(t *testing.T) {
	e, d := fixture(t)
	f0, f1 := d.Facts[0], d.Facts[1]
	before := e.CorpusDigest(d.Name)
	if before != 0 {
		t.Fatalf("pristine corpus digest = %016x, want 0", before)
	}
	if _, err := e.Ingest([]IngestDoc{{FactID: f0.ID, Title: "t", Text: "x"}}); err != nil {
		t.Fatal(err)
	}
	if got := e.FactEpoch(f0.ID); got != 1 {
		t.Errorf("touched fact epoch = %d, want 1", got)
	}
	if got := e.FactEpoch(f1.ID); got != 0 {
		t.Errorf("untouched fact epoch = %d, want 0", got)
	}
	if e.CorpusDigest(d.Name) == 0 {
		t.Error("dataset digest unchanged after ingest")
	}
	// An EpochView is a point-in-time snapshot: later ingests don't move it.
	view := e.EpochView()
	if _, err := e.Ingest([]IngestDoc{{FactID: f0.ID, Title: "t2", Text: "y"}}); err != nil {
		t.Fatal(err)
	}
	if view.FactEpoch(f0.ID) != 1 || e.FactEpoch(f0.ID) != 2 {
		t.Errorf("view epoch %d / live epoch %d, want 1 / 2", view.FactEpoch(f0.ID), e.FactEpoch(f0.ID))
	}
}

// TestIngestValidation: empty batches and unknown facts are refused whole,
// before any state changes.
func TestIngestValidation(t *testing.T) {
	e, d := fixture(t)
	if _, err := e.Ingest(nil); err == nil {
		t.Error("empty batch accepted")
	}
	_, err := e.Ingest([]IngestDoc{
		{FactID: d.Facts[0].ID, Title: "ok", Text: "fine"},
		{FactID: "nope-000001", Title: "bad", Text: "bad"},
	})
	if err == nil {
		t.Fatal("batch with unknown fact accepted")
	}
	if got := e.FactEpoch(d.Facts[0].ID); got != 0 {
		t.Errorf("failed batch still bumped an epoch to %d", got)
	}
}

// TestQueryVecMemoBound: the per-epoch query-vector memo admits at most
// maxCachedQueryVecs entries, and an ingest resets it (embeddings can stay
// per-epoch-stable only if the memo never outlives the epoch).
func TestQueryVecMemoBound(t *testing.T) {
	e, d := fixture(t)
	f := d.Facts[0]
	for i := 0; i < maxCachedQueryVecs+64; i++ {
		if _, err := e.Search(f.ID, fmt.Sprintf("query variant %d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().CachedQueryVecs; got > maxCachedQueryVecs {
		t.Fatalf("query-vector memo grew to %d, bound %d", got, maxCachedQueryVecs)
	}
	if _, err := e.Ingest([]IngestDoc{{FactID: f.ID, Title: "t", Text: "x"}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().CachedQueryVecs; got != 0 {
		t.Fatalf("memo holds %d entries after ingest, want 0 (epoch reset)", got)
	}
}

// TestIngestWhileQuery races live ingestion against warm reads and cold
// materialisations. Under -race this is the PR's central safety claim: the
// read path takes no locks, so every access it makes must be to immutable
// snapshot state.
func TestIngestWhileQuery(t *testing.T) {
	w := world.New(world.SmallConfig())
	d := dataset.Build(w, dataset.FactBench, 0.2)
	gen := corpus.NewGenerator(w)
	e := NewEngine(gen, d)

	const rounds = 20
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				f := d.Facts[(seed+i)%len(d.Facts)]
				items, err := e.Search(f.ID, fmt.Sprintf("probe %d", i), 5)
				if err != nil {
					errc <- err
					return
				}
				if len(items) > 0 {
					if _, err := e.FetchEvidence(items[0].DocID); err != nil {
						errc <- err
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f := d.Facts[i%4]
			docs := streamBatch(gen, f, i, 1)
			if _, err := e.Ingest(docs); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := e.FactEpoch(d.Facts[0].ID); got == 0 {
		t.Error("ingester never bumped an epoch")
	}
	st := e.Stats()
	if st.IngestedDocs != rounds {
		t.Errorf("stats report %d ingested docs, want %d", st.IngestedDocs, rounds)
	}
}
