package kg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteNTriples serialises triples to w in N-Triples format, one statement
// per line, in the given order.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseError reports a syntax error at a specific line of an N-Triples
// stream.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("kg: ntriples line %d: %s", e.Line, e.Msg)
}

// ReadNTriples parses an N-Triples stream. Blank lines and #-comments are
// skipped. Blank nodes are not supported (the benchmark datasets contain
// none); encountering one is a parse error.
func ReadNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Triple, error) {
	p := &lineParser{s: line}
	s, err := p.iri()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	p.skipWS()
	pred, err := p.iri()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	p.skipWS()
	obj, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipWS()
	if !p.consume('.') {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	p.skipWS()
	if !p.done() {
		return Triple{}, fmt.Errorf("trailing content %q", p.rest())
	}
	return Triple{S: s, P: pred, O: obj}, nil
}

type lineParser struct {
	s string
	i int
}

func (p *lineParser) done() bool   { return p.i >= len(p.s) }
func (p *lineParser) rest() string { return p.s[p.i:] }

func (p *lineParser) skipWS() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *lineParser) consume(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *lineParser) iri() (IRI, error) {
	if !p.consume('<') {
		if p.i < len(p.s) && p.s[p.i] == '_' {
			return "", fmt.Errorf("blank nodes are not supported")
		}
		return "", fmt.Errorf("expected '<' at offset %d", p.i)
	}
	j := strings.IndexByte(p.s[p.i:], '>')
	if j < 0 {
		return "", fmt.Errorf("unterminated IRI")
	}
	iri := p.s[p.i : p.i+j]
	p.i += j + 1
	return IRI(iri), nil
}

func (p *lineParser) term() (Term, error) {
	if p.done() {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		iri, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewIRITerm(iri), nil
	case '"':
		return p.literal()
	case '_':
		return Term{}, fmt.Errorf("blank nodes are not supported")
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
	}
}

func (p *lineParser) literal() (Term, error) {
	// Find the closing quote, honouring backslash escapes, then let
	// strconv.Unquote handle the escape sequences.
	start := p.i
	p.i++ // opening quote
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '\\':
			p.i += 2
		case '"':
			p.i++
			quoted := p.s[start:p.i]
			val, err := strconv.Unquote(quoted)
			if err != nil {
				return Term{}, fmt.Errorf("bad literal %s: %v", quoted, err)
			}
			t := Term{Kind: KindLiteral, Value: val}
			// Optional language tag or datatype.
			if p.i < len(p.s) && p.s[p.i] == '@' {
				p.i++
				j := p.i
				for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' {
					j++
				}
				t.Lang = p.s[p.i:j]
				p.i = j
			} else if strings.HasPrefix(p.s[p.i:], "^^") {
				p.i += 2
				dt, err := p.iri()
				if err != nil {
					return Term{}, fmt.Errorf("datatype: %w", err)
				}
				t.Datatype = dt
			}
			return t, nil
		default:
			p.i++
		}
	}
	return Term{}, fmt.Errorf("unterminated literal")
}
