// Package kg implements the knowledge-graph substrate FactCheck validates:
// RDF-style terms and triples, an indexed in-memory triple store, an
// N-Triples codec, and namespace (prefix) management mirroring the
// conventions of DBpedia, YAGO and Freebase that the paper's datasets use.
package kg

import (
	"fmt"
	"strings"
)

// IRI is an internationalised resource identifier naming an entity,
// predicate or class.
type IRI string

// Well-known namespaces used by the benchmark datasets.
const (
	NSDBpediaResource = "http://dbpedia.org/resource/"
	NSDBpediaOntology = "http://dbpedia.org/ontology/"
	NSDBpediaProperty = "http://dbpedia.org/property/"
	NSYAGOResource    = "http://yago-knowledge.org/resource/"
	NSFreebase        = "http://rdf.freebase.com/ns/"
	NSRDF             = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	NSRDFS            = "http://www.w3.org/2000/01/rdf-schema#"
	NSXSD             = "http://www.w3.org/2001/XMLSchema#"
)

// Standard predicates.
const (
	RDFType     = IRI(NSRDF + "type")
	RDFSLabel   = IRI(NSRDFS + "label")
	RDFSComment = IRI(NSRDFS + "comment")
)

// TermKind discriminates the object position of a triple.
type TermKind uint8

const (
	// KindIRI marks a term naming a resource.
	KindIRI TermKind = iota
	// KindLiteral marks a literal value (optionally typed or language-tagged).
	KindLiteral
)

// Term is an RDF term: either an IRI or a literal. Subjects and predicates
// of triples are always IRIs; objects may be either.
type Term struct {
	Kind     TermKind
	IRI      IRI    // set when Kind == KindIRI
	Value    string // set when Kind == KindLiteral
	Lang     string // optional language tag for literals
	Datatype IRI    // optional datatype for literals
}

// NewIRITerm wraps an IRI as an object term.
func NewIRITerm(iri IRI) Term { return Term{Kind: KindIRI, IRI: iri} }

// NewLiteral builds a plain string literal term.
func NewLiteral(v string) Term { return Term{Kind: KindLiteral, Value: v} }

// NewLangLiteral builds a language-tagged literal term.
func NewLangLiteral(v, lang string) Term {
	return Term{Kind: KindLiteral, Value: v, Lang: lang}
}

// NewTypedLiteral builds a datatyped literal term.
func NewTypedLiteral(v string, dt IRI) Term {
	return Term{Kind: KindLiteral, Value: v, Datatype: dt}
}

// IsIRI reports whether the term is a resource reference.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// Key returns a canonical map key for the term.
func (t Term) Key() string {
	if t.Kind == KindIRI {
		return "i:" + string(t.IRI)
	}
	return "l:" + t.Value + "@" + t.Lang + "^" + string(t.Datatype)
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	if t.Kind == KindIRI {
		return "<" + string(t.IRI) + ">"
	}
	s := fmt.Sprintf("%q", t.Value)
	if t.Lang != "" {
		return s + "@" + t.Lang
	}
	if t.Datatype != "" {
		return s + "^^<" + string(t.Datatype) + ">"
	}
	return s
}

// Triple is a single <Subject, Predicate, Object> statement.
type Triple struct {
	S IRI
	P IRI
	O Term
}

// NewTriple builds a triple with an IRI object, the common case for the
// A-Box assertions FactCheck validates.
func NewTriple(s, p, o IRI) Triple {
	return Triple{S: s, P: p, O: NewIRITerm(o)}
}

// String renders the triple as an N-Triples line (without newline).
func (t Triple) String() string {
	return fmt.Sprintf("<%s> <%s> %s .", t.S, t.P, t.O)
}

// Key returns a canonical identity key for the triple.
func (t Triple) Key() string {
	return string(t.S) + "|" + string(t.P) + "|" + t.O.Key()
}

// LocalName extracts the final path, fragment or URN segment of an IRI,
// e.g. "Alexander_III_of_Russia" from a DBpedia resource IRI or a
// urn:world: identifier.
func LocalName(iri IRI) string {
	s := string(iri)
	if i := strings.LastIndexAny(s, "#/:"); i >= 0 && i+1 < len(s) {
		return s[i+1:]
	}
	return s
}

// Namespaces maps prefixes (e.g. "dbr") to namespace IRIs. It provides the
// compact/expand round-trip the paper's triple-transformation phase must
// undo before sentences are readable.
type Namespaces struct {
	byPrefix map[string]string
	ordered  []string // prefixes in registration order for stable output
}

// NewNamespaces returns a registry preloaded with the benchmark's standard
// prefixes.
func NewNamespaces() *Namespaces {
	n := &Namespaces{byPrefix: map[string]string{}}
	n.Register("dbr", NSDBpediaResource)
	n.Register("dbo", NSDBpediaOntology)
	n.Register("dbp", NSDBpediaProperty)
	n.Register("yago", NSYAGOResource)
	n.Register("fb", NSFreebase)
	n.Register("rdf", NSRDF)
	n.Register("rdfs", NSRDFS)
	n.Register("xsd", NSXSD)
	return n
}

// Register binds prefix to ns, replacing any previous binding of the prefix.
func (n *Namespaces) Register(prefix, ns string) {
	if _, exists := n.byPrefix[prefix]; !exists {
		n.ordered = append(n.ordered, prefix)
	}
	n.byPrefix[prefix] = ns
}

// Expand converts a CURIE such as "dbr:Paris" into a full IRI. Unknown
// prefixes (or inputs without a colon) are returned unchanged as IRIs.
func (n *Namespaces) Expand(curie string) IRI {
	i := strings.IndexByte(curie, ':')
	if i < 0 {
		return IRI(curie)
	}
	if ns, ok := n.byPrefix[curie[:i]]; ok {
		return IRI(ns + curie[i+1:])
	}
	return IRI(curie)
}

// Compact shrinks an IRI to CURIE form when a registered namespace matches,
// preferring the longest matching namespace.
func (n *Namespaces) Compact(iri IRI) string {
	s := string(iri)
	best, bestNS := "", ""
	for _, p := range n.ordered {
		ns := n.byPrefix[p]
		if strings.HasPrefix(s, ns) && len(ns) > len(bestNS) {
			best, bestNS = p, ns
		}
	}
	if best == "" {
		return s
	}
	return best + ":" + s[len(bestNS):]
}
