package kg

import (
	"sort"
	"sync"
)

// Graph is an in-memory triple store with SPO, POS and OSP indexes. It is
// safe for concurrent readers and writers. The store backs both the
// synthetic world snapshot (ground truth) and the benchmark datasets'
// auxiliary metadata (labels, comments, types).
type Graph struct {
	mu sync.RWMutex

	spo map[IRI]map[IRI][]Term   // subject -> predicate -> objects
	pos map[IRI]map[string][]IRI // predicate -> object key -> subjects
	osp map[string]map[IRI][]IRI // object key -> subject -> predicates

	keys map[string]bool // triple identity set for O(1) Contains
	size int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo:  map[IRI]map[IRI][]Term{},
		pos:  map[IRI]map[string][]IRI{},
		osp:  map[string]map[IRI][]IRI{},
		keys: map[string]bool{},
	}
}

// Add inserts t. It reports whether the triple was new.
func (g *Graph) Add(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := t.Key()
	if g.keys[k] {
		return false
	}
	g.keys[k] = true
	g.size++

	ps := g.spo[t.S]
	if ps == nil {
		ps = map[IRI][]Term{}
		g.spo[t.S] = ps
	}
	ps[t.P] = append(ps[t.P], t.O)

	ok := t.O.Key()
	os := g.pos[t.P]
	if os == nil {
		os = map[string][]IRI{}
		g.pos[t.P] = os
	}
	os[ok] = append(os[ok], t.S)

	ss := g.osp[ok]
	if ss == nil {
		ss = map[IRI][]IRI{}
		g.osp[ok] = ss
	}
	ss[t.S] = append(ss[t.S], t.P)
	return true
}

// AddAll inserts every triple in ts and returns the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Len returns the number of distinct triples stored.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// Contains reports whether the exact triple is present.
func (g *Graph) Contains(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.keys[t.Key()]
}

// Objects returns all objects of (s, p, ?).
func (g *Graph) Objects(s, p IRI) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ps := g.spo[s]
	if ps == nil {
		return nil
	}
	out := make([]Term, len(ps[p]))
	copy(out, ps[p])
	return out
}

// Subjects returns all subjects of (?, p, o).
func (g *Graph) Subjects(p IRI, o Term) []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	os := g.pos[p]
	if os == nil {
		return nil
	}
	out := make([]IRI, len(os[o.Key()]))
	copy(out, os[o.Key()])
	return out
}

// Predicates returns all predicates linking s to o.
func (g *Graph) Predicates(s IRI, o Term) []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ss := g.osp[o.Key()]
	if ss == nil {
		return nil
	}
	out := make([]IRI, len(ss[s]))
	copy(out, ss[s])
	return out
}

// PredicatesOf returns the sorted distinct predicates appearing on subject s.
func (g *Graph) PredicatesOf(s IRI) []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ps := g.spo[s]
	out := make([]IRI, 0, len(ps))
	for p := range ps {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubjectsAll returns the sorted distinct subjects in the graph.
func (g *Graph) SubjectsAll() []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]IRI, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Triples returns every stored triple, sorted by (S, P, O) for determinism.
func (g *Graph) Triples() []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Triple, 0, g.size)
	for s, ps := range g.spo {
		for p, objs := range ps {
			for _, o := range objs {
				out = append(out, Triple{S: s, P: p, O: o})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].S != out[j].S {
			return out[i].S < out[j].S
		}
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].O.Key() < out[j].O.Key()
	})
	return out
}

// Label returns the rdfs:label of s, or the IRI local name when no label
// triple exists.
func (g *Graph) Label(s IRI) string {
	for _, o := range g.Objects(s, RDFSLabel) {
		if o.Kind == KindLiteral {
			return o.Value
		}
	}
	return LocalName(s)
}

// Types returns the rdf:type objects of s.
func (g *Graph) Types(s IRI) []IRI {
	var out []IRI
	for _, o := range g.Objects(s, RDFType) {
		if o.IsIRI() {
			out = append(out, o.IRI)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OutDegree returns the number of triples with subject s.
func (g *Graph) OutDegree(s IRI) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, objs := range g.spo[s] {
		n += len(objs)
	}
	return n
}
