package kg

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{NewIRITerm("http://example.org/a"), "<http://example.org/a>"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("hello", "en"), `"hello"@en`},
		{NewTypedLiteral("42", NSXSD+"integer"), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral(`with "quotes" and \slash`), `"with \"quotes\" and \\slash"`},
	}
	for _, tc := range tests {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("Term.String() = %s, want %s", got, tc.want)
		}
	}
}

func TestTermKeyDistinguishesKinds(t *testing.T) {
	iri := NewIRITerm("x")
	lit := NewLiteral("x")
	if iri.Key() == lit.Key() {
		t.Error("IRI and literal with same text share a key")
	}
	en := NewLangLiteral("x", "en")
	de := NewLangLiteral("x", "de")
	if en.Key() == de.Key() {
		t.Error("language tags not part of literal key")
	}
}

func TestLocalName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"http://dbpedia.org/resource/Paris", "Paris"},
		{"http://www.w3.org/2000/01/rdf-schema#label", "label"},
		{"urn:world:Alexander_III", "Alexander_III"},
		{"noslash", "noslash"},
	}
	for _, tc := range tests {
		if got := LocalName(IRI(tc.in)); got != tc.want {
			t.Errorf("LocalName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNamespacesExpandCompactRoundTrip(t *testing.T) {
	ns := NewNamespaces()
	tests := []struct{ curie, iri string }{
		{"dbr:Paris", NSDBpediaResource + "Paris"},
		{"dbo:birthPlace", NSDBpediaOntology + "birthPlace"},
		{"yago:isMarriedTo", NSYAGOResource + "isMarriedTo"},
		{"rdfs:label", NSRDFS + "label"},
	}
	for _, tc := range tests {
		if got := ns.Expand(tc.curie); string(got) != tc.iri {
			t.Errorf("Expand(%q) = %q, want %q", tc.curie, got, tc.iri)
		}
		if got := ns.Compact(IRI(tc.iri)); got != tc.curie {
			t.Errorf("Compact(%q) = %q, want %q", tc.iri, got, tc.curie)
		}
	}
}

func TestNamespacesUnknown(t *testing.T) {
	ns := NewNamespaces()
	if got := ns.Expand("unknown:thing"); got != "unknown:thing" {
		t.Errorf("Expand of unknown prefix = %q", got)
	}
	if got := ns.Compact("http://other.example/x"); got != "http://other.example/x" {
		t.Errorf("Compact of unknown namespace = %q", got)
	}
	if got := ns.Expand("nocolon"); got != "nocolon" {
		t.Errorf("Expand without colon = %q", got)
	}
}

func TestNamespacesPrefersLongestMatch(t *testing.T) {
	ns := NewNamespaces()
	ns.Register("ex", "http://example.org/")
	ns.Register("exsub", "http://example.org/sub/")
	if got := ns.Compact("http://example.org/sub/x"); got != "exsub:x" {
		t.Errorf("Compact = %q, want exsub:x", got)
	}
}

func TestGraphAddContains(t *testing.T) {
	g := NewGraph()
	tr := NewTriple("s", "p", "o")
	if !g.Add(tr) {
		t.Fatal("first Add returned false")
	}
	if g.Add(tr) {
		t.Fatal("duplicate Add returned true")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Contains(tr) {
		t.Fatal("Contains missing the triple")
	}
	if g.Contains(NewTriple("s", "p", "other")) {
		t.Fatal("Contains reports absent triple")
	}
}

func TestGraphIndexes(t *testing.T) {
	g := NewGraph()
	g.AddAll([]Triple{
		NewTriple("a", "knows", "b"),
		NewTriple("a", "knows", "c"),
		NewTriple("b", "knows", "c"),
		NewTriple("a", "likes", "c"),
	})
	if objs := g.Objects("a", "knows"); len(objs) != 2 {
		t.Errorf("Objects(a, knows) = %d, want 2", len(objs))
	}
	if subs := g.Subjects("knows", NewIRITerm("c")); len(subs) != 2 {
		t.Errorf("Subjects(knows, c) = %d, want 2", len(subs))
	}
	if preds := g.Predicates("a", NewIRITerm("c")); len(preds) != 2 {
		t.Errorf("Predicates(a, c) = %d, want 2", len(preds))
	}
	if got := g.PredicatesOf("a"); !reflect.DeepEqual(got, []IRI{"knows", "likes"}) {
		t.Errorf("PredicatesOf(a) = %v", got)
	}
	if got := g.SubjectsAll(); !reflect.DeepEqual(got, []IRI{"a", "b"}) {
		t.Errorf("SubjectsAll = %v", got)
	}
	if got := g.OutDegree("a"); got != 3 {
		t.Errorf("OutDegree(a) = %d, want 3", got)
	}
}

func TestGraphLabelAndTypes(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{S: "urn:x:Paris", P: RDFSLabel, O: NewLangLiteral("Paris", "en")})
	g.Add(Triple{S: "urn:x:Paris", P: RDFType, O: NewIRITerm("urn:x:City")})
	if got := g.Label("urn:x:Paris"); got != "Paris" {
		t.Errorf("Label = %q", got)
	}
	if got := g.Label("urn:x/Unlabeled_Thing"); got != "Unlabeled_Thing" {
		t.Errorf("fallback Label = %q", got)
	}
	if got := g.Types("urn:x:Paris"); len(got) != 1 || got[0] != "urn:x:City" {
		t.Errorf("Types = %v", got)
	}
}

func TestGraphTriplesSortedDeterministic(t *testing.T) {
	g := NewGraph()
	g.AddAll([]Triple{
		NewTriple("b", "p", "x"),
		NewTriple("a", "q", "y"),
		NewTriple("a", "p", "z"),
	})
	ts := g.Triples()
	want := []string{
		`<a> <p> <z> .`,
		`<a> <q> <y> .`,
		`<b> <p> <x> .`,
	}
	for i, tr := range ts {
		if tr.String() != want[i] {
			t.Errorf("Triples()[%d] = %s, want %s", i, tr.String(), want[i])
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	in := []Triple{
		NewTriple("http://ex/s", "http://ex/p", "http://ex/o"),
		{S: "http://ex/s", P: RDFSLabel, O: NewLangLiteral("a label with spaces", "en")},
		{S: "http://ex/s", P: "http://ex/v", O: NewTypedLiteral("3.14", NSXSD+"double")},
		{S: "http://ex/s", P: RDFSComment, O: NewLiteral(`escape "this" and \that`)},
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%v\nout=%v", in, out)
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	f := func(sRaw, pRaw, val, lang string) bool {
		s := IRI("http://ex/" + sanitizeIRIPart(sRaw))
		p := IRI("http://ex/" + sanitizeIRIPart(pRaw))
		tr := Triple{S: s, P: p, O: NewLiteral(val)}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, []Triple{tr}); err != nil {
			return false
		}
		out, err := ReadNTriples(&buf)
		if err != nil || len(out) != 1 {
			return false
		}
		return reflect.DeepEqual(out[0], tr)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func sanitizeIRIPart(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > 0x20 && r != '<' && r != '>' && r != '"' && r < 0x7f {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestNTriplesParseErrors(t *testing.T) {
	bad := []string{
		`<s> <p> .`,               // missing object
		`<s> <p> <o>`,             // missing dot
		`<s> <p> "unterminated .`, // bad literal
		`_:b0 <p> <o> .`,          // blank node subject
		`<s> <p> _:b1 .`,          // blank node object
		`<s> <p> <o> . trailing`,  // trailing garbage
		`<s <p> <o> .`,            // unterminated IRI
		`<s> <p> "v"^^notaniri .`, // bad datatype
	}
	for _, line := range bad {
		if _, err := ReadNTriples(strings.NewReader(line)); err == nil {
			t.Errorf("ReadNTriples(%q) succeeded, want error", line)
		}
	}
}

func TestNTriplesSkipsCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\n<http://ex/s> <http://ex/p> <http://ex/o> .\n   \n"
	out, err := ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("parsed %d triples, want 1", len(out))
	}
}

func TestParseErrorReportsLine(t *testing.T) {
	src := "<http://ex/s> <http://ex/p> <http://ex/o> .\nbroken line\n"
	_, err := ReadNTriples(strings.NewReader(src))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			g.Add(NewTriple(IRI("s"+string(rune('a'+i%26))), "p", IRI("o"+string(rune(i)))))
		}
	}()
	for i := 0; i < 500; i++ {
		g.Len()
		g.Objects("sa", "p")
	}
	<-done
}
