package world

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"factcheck/internal/det"
	"factcheck/internal/kg"
)

// Config sizes the synthetic universe. Counts are for the base entity pools;
// derived pools (films, books, albums...) scale with Persons.
type Config struct {
	Seed       string
	Persons    int
	Countries  int
	CitiesPer  int // cities per country (average)
	Companies  int
	Univs      int
	Awards     int
	Teams      int
	Bands      int
	FilmFactor float64 // films per person
	BookFactor float64 // books per person
}

// DefaultConfig sizes the world for the full benchmark: roughly 12k entities
// and 45k+ true facts, enough to sample the paper's 13,530 dataset facts
// with headroom.
func DefaultConfig() Config {
	return Config{
		Seed:       "factcheck-world-v1",
		Persons:    6000,
		Countries:  60,
		CitiesPer:  12,
		Companies:  500,
		Univs:      250,
		Awards:     120,
		Teams:      200,
		Bands:      400,
		FilmFactor: 0.25,
		BookFactor: 0.15,
	}
}

// SmallConfig sizes a miniature world for fast unit tests.
func SmallConfig() Config {
	return Config{
		Seed:       "factcheck-world-small",
		Persons:    300,
		Countries:  10,
		CitiesPer:  5,
		Companies:  40,
		Univs:      20,
		Awards:     15,
		Teams:      20,
		Bands:      30,
		FilmFactor: 0.25,
		BookFactor: 0.15,
	}
}

// World is the generated universe: entities, true facts and a KG snapshot.
type World struct {
	Config   Config
	Entities []*Entity
	Facts    []Fact

	byType  map[EntityType][]*Entity
	byIRI   map[kg.IRI]*Entity
	byLabel map[string]*Entity
	factSet map[string]bool
	// objectsOf maps "subjectLocal|relation" to the set of true object
	// local names, for functional-corruption checks.
	objectsOf map[string]map[string]bool

	graph *kg.Graph
}

// New generates the world for cfg. Generation is fully deterministic in
// cfg.Seed.
func New(cfg Config) *World {
	w := &World{
		Config:    cfg,
		byType:    map[EntityType][]*Entity{},
		byIRI:     map[kg.IRI]*Entity{},
		byLabel:   map[string]*Entity{},
		factSet:   map[string]bool{},
		objectsOf: map[string]map[string]bool{},
		graph:     kg.NewGraph(),
	}
	rng := det.Source(cfg.Seed)
	ng := newNameGen(rng)

	// Base pools. Order matters for determinism.
	countries := w.makeEntities(TypeCountry, cfg.Countries, ng.country)
	nCities := cfg.Countries * cfg.CitiesPer
	cities := w.makeEntities(TypeCity, nCities, ng.city)
	languages := w.makeEntities(TypeLanguage, max(8, cfg.Countries/3), ng.language)
	professions := w.makeEntities(TypeProfession, 24, ng.profession)
	genres := w.makeEntities(TypeGenre, 18, ng.genre)
	univs := w.makeEntities(TypeUniversity, cfg.Univs, ng.university)
	companies := w.makeEntities(TypeCompany, cfg.Companies, ng.company)
	awards := w.makeEntities(TypeAward, cfg.Awards, ng.award)
	teams := w.makeEntities(TypeTeam, cfg.Teams, ng.team)
	persons := w.makeEntities(TypePerson, cfg.Persons, ng.person)
	bands := w.makeEntities(TypeBand, cfg.Bands, ng.band)
	films := w.makeEntities(TypeFilm, int(float64(cfg.Persons)*cfg.FilmFactor), ng.film)
	books := w.makeEntities(TypeBook, int(float64(cfg.Persons)*cfg.BookFactor), ng.book)
	albums := w.makeEntities(TypeAlbum, cfg.Bands*2, ng.album)

	// Geography backbone: each city belongs to one country; each country has
	// a capital and an official language.
	for i, c := range cities {
		w.addFact(c, "locatedIn", countries[i%len(countries)])
	}
	for i, c := range countries {
		// The capital is one of the country's own cities.
		w.addFact(c, "capital", cities[i%len(cities)])
		w.addFact(c, "officialLanguage", languages[i%len(languages)])
		if rng.Float64() < 0.25 { // some countries are multilingual
			w.addFact(c, "officialLanguage", pick(rng, languages))
		}
	}
	for _, u := range univs {
		w.addFact(u, "campus", pick(rng, cities))
	}
	for _, co := range companies {
		w.addFact(co, "headquarter", pick(rng, cities))
		for i := 0; i < 1+rng.IntN(2); i++ {
			w.addFact(co, "foundedBy", pick(rng, persons))
		}
	}
	for _, t := range teams {
		w.addFact(t, "homeCity", pick(rng, cities))
	}

	// People: a bundle of facts each, with probabilities tuned so the mean
	// out-degree lands between the paper's datasets (1.69–3.18 facts/entity).
	for _, p := range persons {
		w.addFact(p, "birthPlace", pick(rng, cities))
		if rng.Float64() < 0.35 {
			w.addFact(p, "deathPlace", pick(rng, cities))
		}
		w.addFact(p, "nationality", pick(rng, countries))
		if rng.Float64() < 0.45 {
			sp := pick(rng, persons)
			if sp != p {
				w.addFact(p, "isMarriedTo", sp)
				w.addFact(sp, "isMarriedTo", p)
			}
		}
		if rng.Float64() < 0.4 {
			w.addFact(p, "almaMater", pick(rng, univs))
		}
		if rng.Float64() < 0.25 {
			w.addFact(p, "award", pick(rng, awards))
			if rng.Float64() < 0.3 {
				w.addFact(p, "award", pick(rng, awards))
			}
		}
		if rng.Float64() < 0.18 {
			w.addFact(p, "playsFor", pick(rng, teams))
		} else if rng.Float64() < 0.3 {
			w.addFact(p, "employer", pick(rng, companies))
		}
		if rng.Float64() < 0.6 {
			w.addFact(p, "profession", pick(rng, professions))
		}
	}

	for _, f := range films {
		w.addFact(f, "director", pick(rng, persons))
		for i := 0; i < 1+rng.IntN(3); i++ {
			w.addFact(f, "starring", pick(rng, persons))
		}
		w.addFact(f, "filmGenre", pick(rng, genres))
		if rng.Float64() < 0.7 {
			w.addFact(f, "studio", pick(rng, companies))
		}
	}
	for _, b := range books {
		w.addFact(b, "author", pick(rng, persons))
		w.addFact(b, "literaryGenre", pick(rng, genres))
	}
	for _, b := range bands {
		w.addFact(b, "bandGenre", pick(rng, genres))
		if rng.Float64() < 0.8 {
			w.addFact(b, "bandOrigin", pick(rng, cities))
		}
	}
	for i, a := range albums {
		w.addFact(a, "artist", bands[i%len(bands)])
	}

	w.buildGraph()
	return w
}

// makeEntities creates n entities of type et with Zipfian popularity:
// popularity(rank) = (rank+1)^-0.65, so each pool has a head and a long tail.
func (w *World) makeEntities(et EntityType, n int, name func() string) []*Entity {
	out := make([]*Entity, 0, n)
	for i := 0; i < n; i++ {
		label := name()
		// Ensure global label uniqueness with a numeric disambiguator,
		// mirroring Wikipedia-style "Name (2)" pages.
		if _, dup := w.byLabel[label]; dup {
			for k := 2; ; k++ {
				cand := fmt.Sprintf("%s %d", label, k)
				if _, dup2 := w.byLabel[cand]; !dup2 {
					label = cand
					break
				}
			}
		}
		local := strings.ReplaceAll(label, " ", "_")
		e := &Entity{
			IRI:        kg.IRI("urn:world:" + local),
			Label:      label,
			Type:       et,
			Popularity: math.Pow(float64(i+1), -0.65),
		}
		w.Entities = append(w.Entities, e)
		w.byType[et] = append(w.byType[et], e)
		w.byIRI[e.IRI] = e
		w.byLabel[label] = e
		out = append(out, e)
	}
	return out
}

func (w *World) addFact(s *Entity, rel string, o *Entity) {
	r := RelationByName(rel)
	if r == nil {
		panic("world: unknown relation " + rel)
	}
	if s.Type != r.Domain || o.Type != r.Range {
		panic(fmt.Sprintf("world: relation %s domain/range violation: %s(%s) -> %s(%s)",
			rel, s.Label, s.Type, o.Label, o.Type))
	}
	f := Fact{S: s, O: o, Relation: r}
	k := f.Key()
	if w.factSet[k] {
		return
	}
	w.factSet[k] = true
	w.Facts = append(w.Facts, f)
	ok := kg.LocalName(s.IRI) + "|" + rel
	if w.objectsOf[ok] == nil {
		w.objectsOf[ok] = map[string]bool{}
	}
	w.objectsOf[ok][kg.LocalName(o.IRI)] = true
}

func (w *World) buildGraph() {
	for _, e := range w.Entities {
		w.graph.Add(kg.Triple{S: e.IRI, P: kg.RDFSLabel, O: kg.NewLangLiteral(e.Label, "en")})
		w.graph.Add(kg.Triple{S: e.IRI, P: kg.RDFType, O: kg.NewIRITerm(kg.IRI("urn:world:class/" + string(e.Type)))})
		w.graph.Add(kg.Triple{S: e.IRI, P: kg.RDFSComment, O: kg.NewLangLiteral(
			fmt.Sprintf("%s is a %s in the FactCheck synthetic world.", e.Label, strings.ToLower(string(e.Type))), "en")})
	}
	for _, f := range w.Facts {
		w.graph.Add(kg.NewTriple(f.S.IRI, kg.IRI("urn:world:rel/"+f.Relation.Name), f.O.IRI))
	}
}

func pick[T any](rng *rand.Rand, s []T) T { return s[rng.IntN(len(s))] }

// nameGen builds pronounceable synthetic names from syllables.
type nameGen struct {
	rng *rand.Rand
}

func newNameGen(rng *rand.Rand) *nameGen { return &nameGen{rng: rng} }

var (
	sylA = []string{"ka", "ri", "lon", "dor", "mar", "vel", "an", "ti", "os", "ber", "na", "sel", "tor", "mi", "ran", "fal", "du", "pet", "gal", "or", "win", "cas", "el", "bra", "tho"}
	sylB = []string{"ia", "on", "ar", "en", "us", "ix", "ell", "ov", "ine", "ath", "or", "eth", "an", "ys", "em"}
)

func (g *nameGen) word(minSyl, maxSyl int) string {
	n := minSyl + g.rng.IntN(maxSyl-minSyl+1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i == n-1 && g.rng.Float64() < 0.5 {
			b.WriteString(sylB[g.rng.IntN(len(sylB))])
		} else {
			b.WriteString(sylA[g.rng.IntN(len(sylA))])
		}
	}
	s := b.String()
	return strings.ToUpper(s[:1]) + s[1:]
}

func (g *nameGen) person() string  { return g.word(2, 3) + " " + g.word(2, 3) }
func (g *nameGen) country() string { return g.word(2, 3) + "ia" }
func (g *nameGen) city() string    { return g.word(2, 3) }
func (g *nameGen) language() string {
	return g.word(2, 2) + "ese"
}
func (g *nameGen) university() string {
	return "University of " + g.word(2, 3)
}
func (g *nameGen) company() string {
	suffix := []string{"Corp", "Industries", "Systems", "Group", "Labs"}
	return g.word(2, 3) + " " + suffix[g.rng.IntN(len(suffix))]
}
func (g *nameGen) award() string {
	kind := []string{"Prize", "Medal", "Award"}
	return g.word(2, 2) + " " + kind[g.rng.IntN(len(kind))]
}
func (g *nameGen) team() string {
	suffix := []string{"United", "FC", "Rovers", "Athletic", "Wanderers"}
	return g.word(2, 2) + " " + suffix[g.rng.IntN(len(suffix))]
}
func (g *nameGen) band() string {
	if g.rng.Float64() < 0.5 {
		return "The " + g.word(2, 2) + "s"
	}
	return g.word(2, 3)
}
func (g *nameGen) film() string {
	pat := g.rng.IntN(3)
	switch pat {
	case 0:
		return "The " + g.word(2, 2) + " of " + g.word(2, 2)
	case 1:
		return g.word(2, 3) + " Rising"
	default:
		return g.word(2, 2) + " and " + g.word(2, 2)
	}
}
func (g *nameGen) book() string {
	if g.rng.Float64() < 0.5 {
		return "A History of " + g.word(2, 3)
	}
	return "The " + g.word(2, 2) + " Chronicles"
}
func (g *nameGen) album() string { return g.word(2, 3) + " Sessions" }
func (g *nameGen) genre() string {
	base := []string{"noir", "epic", "lyric", "pastoral", "urban", "cosmic", "retro", "modern", "folk", "industrial", "chamber", "electric", "acoustic", "baroque", "minimal", "ambient", "satirical", "heroic"}
	// genres come from a fixed pool; the generator cycles deterministically.
	s := base[g.rng.IntN(len(base))]
	return strings.ToUpper(s[:1]) + s[1:] + " " + []string{"Drama", "Fiction", "Rock", "Jazz", "Wave"}[g.rng.IntN(5)]
}
func (g *nameGen) profession() string {
	base := []string{"Architect", "Historian", "Engineer", "Painter", "Composer", "Journalist", "Biologist", "Diplomat", "Actor", "Novelist", "Economist", "Chemist", "Sculptor", "Pilot", "Cartographer", "Astronomer", "Linguist", "Surgeon", "Geologist", "Photographer", "Choreographer", "Botanist", "Philosopher", "Violinist"}
	return base[g.rng.IntN(len(base))]
}
