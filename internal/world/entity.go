// Package world generates the deterministic synthetic ground truth that
// substitutes for the real-world KGs (DBpedia, YAGO, Freebase) the paper
// samples. It produces a universe of typed entities with Zipfian popularity
// and a set of true facts over ~20 relations, from which the benchmark
// datasets draw positive facts and derive constraint-respecting negatives.
//
// All names are synthetic (syllable-generated); no real-world claims are
// encoded, so "truth" is exactly membership in the generated fact set — the
// same snapshot-based semantics the paper adopts (§4.1).
package world

import (
	"factcheck/internal/kg"
)

// EntityType classifies entities; relation domains and ranges are typed.
type EntityType string

// The entity types of the synthetic universe.
const (
	TypePerson     EntityType = "Person"
	TypeCity       EntityType = "City"
	TypeCountry    EntityType = "Country"
	TypeFilm       EntityType = "Film"
	TypeBook       EntityType = "Book"
	TypeCompany    EntityType = "Company"
	TypeUniversity EntityType = "University"
	TypeAward      EntityType = "Award"
	TypeTeam       EntityType = "Team"
	TypeGenre      EntityType = "Genre"
	TypeBand       EntityType = "Band"
	TypeAlbum      EntityType = "Album"
	TypeLanguage   EntityType = "Language"
	TypeProfession EntityType = "Profession"
)

// AllTypes lists every entity type in deterministic order.
var AllTypes = []EntityType{
	TypePerson, TypeCity, TypeCountry, TypeFilm, TypeBook, TypeCompany,
	TypeUniversity, TypeAward, TypeTeam, TypeGenre, TypeBand, TypeAlbum,
	TypeLanguage, TypeProfession,
}

// Entity is a node of the synthetic universe.
type Entity struct {
	IRI        kg.IRI
	Label      string
	Type       EntityType
	Popularity float64 // (0,1]: 1 = most popular ("head"), ->0 = "tail"
}

// Category groups relations by the kind of assertion they make; the error
// analysis (paper §7, E1–E6) clusters mistakes along these lines.
type Category string

// Relation categories, aligned with the paper's error taxonomy.
const (
	CatRelationship Category = "relationship" // E2: spouse, religion-like links
	CatRole         Category = "role"         // E3: teams, employers, roles
	CatGeo          Category = "geo"          // E4: places, nationality
	CatGenre        Category = "genre"        // E5: genres, classifications
	CatIdentifier   Category = "identifier"   // E6: awards, biographical ids
)

// Topic labels mirror the DBpedia topic-stratification study (paper §7).
const (
	TopicEducation      = "Education"
	TopicNews           = "News"
	TopicArchitecture   = "Architecture"
	TopicTransportation = "Transportation"
	TopicCulture        = "Culture"
	TopicSports         = "Sports"
	TopicBusiness       = "Business"
)

// Relation is a typed predicate of the synthetic world.
type Relation struct {
	Name     string // local name, KG-style camelCase (e.g. "birthPlace")
	Domain   EntityType
	Range    EntityType
	Phrase   string // verbalisation fragment: "<S> <Phrase> <O>."
	Question string // question template with %s and %o placeholders
	Category Category
	Topic    string
	// Functional marks relations where a subject has (at most) one true
	// object, making corrupted objects unambiguously false.
	Functional bool
}

// IRI returns the relation's predicate IRI in the given namespace.
func (r *Relation) IRI(ns string) kg.IRI { return kg.IRI(ns + r.Name) }

// Relations is the fixed relation vocabulary of the synthetic world,
// in deterministic order. The mix deliberately covers every error category:
// relationship links, role attribution, geography, genre classification and
// identifier/biographical facts.
var Relations = []*Relation{
	{Name: "birthPlace", Domain: TypePerson, Range: TypeCity, Phrase: "was born in", Question: "Where was %s born", Category: CatGeo, Topic: TopicNews, Functional: true},
	{Name: "deathPlace", Domain: TypePerson, Range: TypeCity, Phrase: "died in", Question: "Where did %s die", Category: CatGeo, Topic: TopicNews, Functional: true},
	{Name: "nationality", Domain: TypePerson, Range: TypeCountry, Phrase: "is a citizen of", Question: "What is the nationality of %s", Category: CatGeo, Topic: TopicNews, Functional: true},
	{Name: "isMarriedTo", Domain: TypePerson, Range: TypePerson, Phrase: "is married to", Question: "Who is %s married to", Category: CatRelationship, Topic: TopicCulture, Functional: true},
	{Name: "almaMater", Domain: TypePerson, Range: TypeUniversity, Phrase: "studied at", Question: "Where did %s study", Category: CatIdentifier, Topic: TopicEducation, Functional: false},
	{Name: "award", Domain: TypePerson, Range: TypeAward, Phrase: "received the", Question: "Which award did %s receive", Category: CatIdentifier, Topic: TopicCulture, Functional: false},
	{Name: "playsFor", Domain: TypePerson, Range: TypeTeam, Phrase: "plays for", Question: "Which team does %s play for", Category: CatRole, Topic: TopicSports, Functional: true},
	{Name: "employer", Domain: TypePerson, Range: TypeCompany, Phrase: "works for", Question: "Who employs %s", Category: CatRole, Topic: TopicBusiness, Functional: true},
	{Name: "profession", Domain: TypePerson, Range: TypeProfession, Phrase: "works as a", Question: "What is the profession of %s", Category: CatRole, Topic: TopicNews, Functional: false},
	{Name: "director", Domain: TypeFilm, Range: TypePerson, Phrase: "was directed by", Question: "Who directed %s", Category: CatRole, Topic: TopicCulture, Functional: true},
	{Name: "starring", Domain: TypeFilm, Range: TypePerson, Phrase: "starred", Question: "Who starred in %s", Category: CatRole, Topic: TopicCulture, Functional: false},
	{Name: "filmGenre", Domain: TypeFilm, Range: TypeGenre, Phrase: "is a film of the genre", Question: "What genre is the film %s", Category: CatGenre, Topic: TopicCulture, Functional: false},
	{Name: "studio", Domain: TypeFilm, Range: TypeCompany, Phrase: "was produced by", Question: "Which studio produced %s", Category: CatRole, Topic: TopicBusiness, Functional: true},
	{Name: "author", Domain: TypeBook, Range: TypePerson, Phrase: "was written by", Question: "Who wrote %s", Category: CatRole, Topic: TopicCulture, Functional: true},
	{Name: "literaryGenre", Domain: TypeBook, Range: TypeGenre, Phrase: "belongs to the genre", Question: "What genre is the book %s", Category: CatGenre, Topic: TopicCulture, Functional: false},
	{Name: "foundedBy", Domain: TypeCompany, Range: TypePerson, Phrase: "was founded by", Question: "Who founded %s", Category: CatRole, Topic: TopicBusiness, Functional: false},
	{Name: "headquarter", Domain: TypeCompany, Range: TypeCity, Phrase: "is headquartered in", Question: "Where is %s headquartered", Category: CatGeo, Topic: TopicArchitecture, Functional: true},
	{Name: "locatedIn", Domain: TypeCity, Range: TypeCountry, Phrase: "is located in", Question: "In which country is %s located", Category: CatGeo, Topic: TopicTransportation, Functional: true},
	{Name: "capital", Domain: TypeCountry, Range: TypeCity, Phrase: "has as its capital", Question: "What is the capital of %s", Category: CatGeo, Topic: TopicTransportation, Functional: true},
	{Name: "officialLanguage", Domain: TypeCountry, Range: TypeLanguage, Phrase: "has the official language", Question: "What is the official language of %s", Category: CatIdentifier, Topic: TopicEducation, Functional: false},
	{Name: "campus", Domain: TypeUniversity, Range: TypeCity, Phrase: "has its campus in", Question: "Where is the campus of %s", Category: CatGeo, Topic: TopicEducation, Functional: true},
	{Name: "homeCity", Domain: TypeTeam, Range: TypeCity, Phrase: "is based in", Question: "Where is %s based", Category: CatGeo, Topic: TopicSports, Functional: true},
	{Name: "bandGenre", Domain: TypeBand, Range: TypeGenre, Phrase: "performs music of the genre", Question: "What genre does %s perform", Category: CatGenre, Topic: TopicCulture, Functional: false},
	{Name: "bandOrigin", Domain: TypeBand, Range: TypeCity, Phrase: "was formed in", Question: "Where was %s formed", Category: CatGeo, Topic: TopicCulture, Functional: true},
	{Name: "artist", Domain: TypeAlbum, Range: TypeBand, Phrase: "was recorded by", Question: "Who recorded %s", Category: CatRole, Topic: TopicCulture, Functional: true},
}

// RelationByName returns the relation with the given local name, or nil.
func RelationByName(name string) *Relation {
	for _, r := range Relations {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Fact is a single true statement of the synthetic world.
type Fact struct {
	S, O     *Entity
	Relation *Relation
}

// Popularity combines subject and object popularity: the visibility of a
// fact on the synthetic "web" tracks the fame of its participants.
func (f Fact) Popularity() float64 {
	return 0.7*f.S.Popularity + 0.3*f.O.Popularity
}

// Triple encodes the fact as a KG triple in the given namespaces.
func (f Fact) Triple(resourceNS, ontologyNS string) kg.Triple {
	return kg.NewTriple(
		kg.IRI(resourceNS+kg.LocalName(f.S.IRI)),
		f.Relation.IRI(ontologyNS),
		kg.IRI(resourceNS+kg.LocalName(f.O.IRI)),
	)
}

// Key returns a canonical identity for the fact, independent of namespace.
func (f Fact) Key() string {
	return kg.LocalName(f.S.IRI) + "|" + f.Relation.Name + "|" + kg.LocalName(f.O.IRI)
}
