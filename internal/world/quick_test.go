package world

import (
	"testing"
	"testing/quick"

	"factcheck/internal/det"
)

// Property: any corruption of any world fact is (a) absent from the truth
// set, (b) type-correct, and (c) reproducible.
func TestCorruptionInvariantsProperty(t *testing.T) {
	w := small()
	f := func(idx uint16, stratIdx uint8, seed string) bool {
		fact := w.Facts[int(idx)%len(w.Facts)]
		strat := AllCorruptionStrategies[int(stratIdx)%len(AllCorruptionStrategies)]
		rng := det.Source("quick-corrupt", seed)
		c, ok := w.Corrupt(fact, strat, rng)
		if !ok {
			return true // some strategies legitimately fail (no alternatives)
		}
		if w.factSet[c.Key()] {
			return false
		}
		if c.S.Type != c.Relation.Domain || c.O.Type != c.Relation.Range {
			return false
		}
		rng2 := det.Source("quick-corrupt", seed)
		c2, ok2 := w.Corrupt(fact, strat, rng2)
		return ok2 && c2.Key() == c.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every fact's popularity lies in (0, 1] and blends its
// endpoints' popularity monotonically.
func TestFactPopularityProperty(t *testing.T) {
	w := small()
	f := func(idx uint16) bool {
		fact := w.Facts[int(idx)%len(w.Facts)]
		p := fact.Popularity()
		lo, hi := fact.S.Popularity, fact.O.Popularity
		if lo > hi {
			lo, hi = hi, lo
		}
		return p > 0 && p <= 1 && p >= lo-1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
