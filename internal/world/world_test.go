package world

import (
	"testing"

	"factcheck/internal/det"
	"factcheck/internal/kg"
)

func small() *World { return New(SmallConfig()) }

func TestDeterministicGeneration(t *testing.T) {
	w1 := New(SmallConfig())
	w2 := New(SmallConfig())
	if len(w1.Entities) != len(w2.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(w1.Entities), len(w2.Entities))
	}
	if len(w1.Facts) != len(w2.Facts) {
		t.Fatalf("fact counts differ: %d vs %d", len(w1.Facts), len(w2.Facts))
	}
	for i := range w1.Facts {
		if w1.Facts[i].Key() != w2.Facts[i].Key() {
			t.Fatalf("fact %d differs: %s vs %s", i, w1.Facts[i].Key(), w2.Facts[i].Key())
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := SmallConfig()
	cfg.Seed = "alternative"
	w1, w2 := small(), New(cfg)
	same := 0
	n := min(len(w1.Facts), len(w2.Facts))
	for i := 0; i < n; i++ {
		if w1.Facts[i].Key() == w2.Facts[i].Key() {
			same++
		}
	}
	if same == n {
		t.Error("different seeds generated identical fact sequences")
	}
}

func TestDomainRangeInvariant(t *testing.T) {
	w := small()
	for _, f := range w.Facts {
		if f.S.Type != f.Relation.Domain {
			t.Fatalf("fact %s: subject type %s != domain %s", f.Key(), f.S.Type, f.Relation.Domain)
		}
		if f.O.Type != f.Relation.Range {
			t.Fatalf("fact %s: object type %s != range %s", f.Key(), f.O.Type, f.Relation.Range)
		}
	}
}

func TestLabelsUnique(t *testing.T) {
	w := small()
	seen := map[string]bool{}
	for _, e := range w.Entities {
		if seen[e.Label] {
			t.Fatalf("duplicate label %q", e.Label)
		}
		seen[e.Label] = true
	}
}

func TestPopularityMonotonicWithinType(t *testing.T) {
	w := small()
	for _, et := range AllTypes {
		pool := w.ByType(et)
		for i := 1; i < len(pool); i++ {
			if pool[i].Popularity > pool[i-1].Popularity {
				t.Fatalf("%s pool not popularity-sorted at %d", et, i)
			}
		}
		if len(pool) > 0 && pool[0].Popularity != 1 {
			t.Errorf("%s head popularity = %f, want 1", et, pool[0].Popularity)
		}
	}
}

func TestIsTrueFactConsistent(t *testing.T) {
	w := small()
	for _, f := range w.Facts[:50] {
		if !w.IsTrueFact(kg.LocalName(f.S.IRI), f.Relation.Name, kg.LocalName(f.O.IRI)) {
			t.Fatalf("generated fact %s not reported true", f.Key())
		}
	}
	if w.IsTrueFact("Nonexistent", "birthPlace", "Nowhere") {
		t.Error("IsTrueFact true for fabricated statement")
	}
}

func TestTrueObjects(t *testing.T) {
	w := small()
	f := w.Facts[0]
	objs := w.TrueObjects(kg.LocalName(f.S.IRI), f.Relation.Name)
	if !objs[kg.LocalName(f.O.IRI)] {
		t.Fatalf("TrueObjects missing %s", f.O.Label)
	}
}

func TestCorruptObject(t *testing.T) {
	w := small()
	rng := det.Source("corrupt-test")
	for _, f := range w.Facts[:100] {
		c, ok := w.Corrupt(f, CorruptObject, rng)
		if !ok {
			t.Fatalf("object corruption failed for %s", f.Key())
		}
		if w.factSet[c.Key()] {
			t.Fatalf("corruption %s is a true fact", c.Key())
		}
		if c.O.Type != f.Relation.Range {
			t.Fatalf("corrupted object type %s violates range %s", c.O.Type, f.Relation.Range)
		}
		if c.S != f.S || c.Relation != f.Relation {
			t.Fatal("object corruption changed subject or relation")
		}
	}
}

func TestCorruptSubject(t *testing.T) {
	w := small()
	rng := det.Source("corrupt-test-s")
	f := w.Facts[0]
	c, ok := w.Corrupt(f, CorruptSubject, rng)
	if !ok {
		t.Fatal("subject corruption failed")
	}
	if c.S.Type != f.Relation.Domain {
		t.Fatalf("corrupted subject type %s violates domain %s", c.S.Type, f.Relation.Domain)
	}
	if c.O != f.O || c.Relation != f.Relation {
		t.Fatal("subject corruption changed object or relation")
	}
}

func TestCorruptPredicate(t *testing.T) {
	w := small()
	rng := det.Source("corrupt-test-p")
	// birthPlace has deathPlace/bandOrigin-style same-signature alternatives.
	var f Fact
	for _, ff := range w.Facts {
		if ff.Relation.Name == "birthPlace" {
			f = ff
			break
		}
	}
	c, ok := w.Corrupt(f, CorruptPredicate, rng)
	if !ok {
		t.Fatal("predicate corruption failed for birthPlace")
	}
	if c.Relation == f.Relation {
		t.Fatal("predicate corruption kept the relation")
	}
	if c.Relation.Domain != f.Relation.Domain || c.Relation.Range != f.Relation.Range {
		t.Fatal("predicate corruption changed signature")
	}
}

func TestCorruptPredicateNoAlternative(t *testing.T) {
	w := small()
	rng := det.Source("corrupt-test-np")
	// artist: Album -> Band has no same-signature sibling.
	var f Fact
	for _, ff := range w.Facts {
		if ff.Relation.Name == "artist" {
			f = ff
			break
		}
	}
	if _, ok := w.Corrupt(f, CorruptPredicate, rng); ok {
		t.Fatal("predicate corruption succeeded for relation without alternatives")
	}
}

func TestGraphSnapshot(t *testing.T) {
	w := small()
	g := w.Graph()
	// Every entity has a label, a type and a comment triple; every fact is
	// in the graph.
	wantMin := 3*len(w.Entities) + len(w.Facts)
	if g.Len() < wantMin {
		t.Fatalf("graph has %d triples, want >= %d", g.Len(), wantMin)
	}
	e := w.Entities[0]
	if g.Label(e.IRI) != e.Label {
		t.Errorf("graph label %q != entity label %q", g.Label(e.IRI), e.Label)
	}
}

func TestRelationVocabularyComplete(t *testing.T) {
	// Every category is represented (the error analysis depends on it).
	seen := map[Category]bool{}
	for _, r := range Relations {
		seen[r.Category] = true
		if r.Phrase == "" || r.Question == "" || r.Topic == "" {
			t.Errorf("relation %s missing verbalisation metadata", r.Name)
		}
	}
	for _, c := range []Category{CatRelationship, CatRole, CatGeo, CatGenre, CatIdentifier} {
		if !seen[c] {
			t.Errorf("no relation with category %s", c)
		}
	}
}

func TestRelationByName(t *testing.T) {
	if RelationByName("birthPlace") == nil {
		t.Error("birthPlace not found")
	}
	if RelationByName("noSuchRelation") != nil {
		t.Error("unknown relation resolved")
	}
}

func TestFactsByRelation(t *testing.T) {
	w := small()
	byRel := w.FactsByRelation()
	total := 0
	for name, fs := range byRel {
		total += len(fs)
		for _, f := range fs {
			if f.Relation.Name != name {
				t.Fatalf("fact %s grouped under %s", f.Key(), name)
			}
		}
	}
	if total != len(w.Facts) {
		t.Errorf("grouped %d facts, want %d", total, len(w.Facts))
	}
}

func TestFactPopularityBlend(t *testing.T) {
	w := small()
	f := w.Facts[0]
	want := 0.7*f.S.Popularity + 0.3*f.O.Popularity
	if got := f.Popularity(); got != want {
		t.Errorf("Popularity = %f, want %f", got, want)
	}
}

func TestByLookups(t *testing.T) {
	w := small()
	e := w.Entities[10]
	if w.ByIRI(e.IRI) != e {
		t.Error("ByIRI failed")
	}
	if w.ByLabel(e.Label) != e {
		t.Error("ByLabel failed")
	}
	if w.ByIRI("urn:world:does-not-exist") != nil {
		t.Error("ByIRI returned non-nil for unknown IRI")
	}
}
