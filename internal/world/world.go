package world

import (
	"math/rand/v2"

	"factcheck/internal/kg"
)

// Graph returns the KG snapshot of the world (labels, types, comments and
// relation triples).
func (w *World) Graph() *kg.Graph { return w.graph }

// ByType returns the entities of the given type in generation order
// (most popular first).
func (w *World) ByType(t EntityType) []*Entity { return w.byType[t] }

// ByIRI resolves an entity by IRI, or nil.
func (w *World) ByIRI(iri kg.IRI) *Entity { return w.byIRI[iri] }

// ByLabel resolves an entity by its unique label, or nil.
func (w *World) ByLabel(label string) *Entity { return w.byLabel[label] }

// IsTrueFact reports whether (sLocal, relation, oLocal) is a true statement
// of the world, where sLocal/oLocal are entity IRI local names.
func (w *World) IsTrueFact(sLocal, relName, oLocal string) bool {
	return w.factSet[sLocal+"|"+relName+"|"+oLocal]
}

// TrueObjects returns the true object local names of (sLocal, relName).
func (w *World) TrueObjects(sLocal, relName string) map[string]bool {
	return w.objectsOf[sLocal+"|"+relName]
}

// CorruptionStrategy names the negative-sampling strategies FactBench uses
// (paper §4.1: "incorrect facts generated through various negative sampling
// strategies", respecting domain and range constraints).
type CorruptionStrategy string

// The supported strategies. All preserve domain/range typing so negatives
// are plausible, exactly as the FactBench generator does.
const (
	// CorruptObject replaces the object with another entity of the same
	// type for which the statement is false.
	CorruptObject CorruptionStrategy = "object"
	// CorruptSubject replaces the subject analogously.
	CorruptSubject CorruptionStrategy = "subject"
	// CorruptPredicate rewires the fact onto a different relation with the
	// same domain/range signature (e.g. birthPlace -> deathPlace).
	CorruptPredicate CorruptionStrategy = "predicate"
)

// AllCorruptionStrategies lists the strategies in deterministic order.
var AllCorruptionStrategies = []CorruptionStrategy{
	CorruptObject, CorruptSubject, CorruptPredicate,
}

// Corrupt derives a false fact from the true fact f using the given
// strategy. The result respects the relation's domain/range constraints and
// is guaranteed not to be a true fact of the world. The boolean result is
// false when the strategy cannot produce a corruption (e.g. no alternative
// relation with the same signature); callers should fall back to another
// strategy.
func (w *World) Corrupt(f Fact, strat CorruptionStrategy, rng *rand.Rand) (Fact, bool) {
	const maxTries = 64
	switch strat {
	case CorruptObject:
		pool := w.byType[f.Relation.Range]
		for i := 0; i < maxTries; i++ {
			o := pool[rng.IntN(len(pool))]
			if o == f.O || o == f.S {
				continue
			}
			c := Fact{S: f.S, O: o, Relation: f.Relation}
			if !w.factSet[c.Key()] {
				return c, true
			}
		}
	case CorruptSubject:
		pool := w.byType[f.Relation.Domain]
		for i := 0; i < maxTries; i++ {
			s := pool[rng.IntN(len(pool))]
			if s == f.S || s == f.O {
				continue
			}
			c := Fact{S: s, O: f.O, Relation: f.Relation}
			if !w.factSet[c.Key()] {
				return c, true
			}
		}
	case CorruptPredicate:
		var alts []*Relation
		for _, r := range Relations {
			if r != f.Relation && r.Domain == f.Relation.Domain && r.Range == f.Relation.Range {
				alts = append(alts, r)
			}
		}
		if len(alts) == 0 {
			return Fact{}, false
		}
		for i := 0; i < maxTries; i++ {
			r := alts[rng.IntN(len(alts))]
			c := Fact{S: f.S, O: f.O, Relation: r}
			if !w.factSet[c.Key()] {
				return c, true
			}
		}
	}
	return Fact{}, false
}

// FactsByRelation groups the world's facts by relation name.
func (w *World) FactsByRelation() map[string][]Fact {
	out := map[string][]Fact{}
	for _, f := range w.Facts {
		out[f.Relation.Name] = append(out[f.Relation.Name], f)
	}
	return out
}
