// Multi-model consensus example: four open-source models vote on each fact,
// ties go to a higher-parameter judge (paper §3.3). The example prints the
// vote table for a few facts, then compares the three arbiter
// configurations over a small dataset slice.
//
// Run with: go run ./examples/consensus
package main

import (
	"context"
	"fmt"
	"log"

	"factcheck/internal/consensus"
	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/eval"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

func main() {
	b := core.NewBenchmark(core.Config{Scale: 0.05, Small: true})
	ctx := context.Background()
	facts := b.Datasets[dataset.DBpedia].Facts
	if len(facts) > 120 {
		facts = facts[:120]
	}

	// Collect per-model outcomes under GIV-F.
	verifier := strategy.GIV{FewShot: true}
	perFact := make([][]strategy.Outcome, len(facts))
	for _, name := range llm.OpenSourceModels {
		m, err := b.Model(name)
		if err != nil {
			log.Fatal(err)
		}
		for i, f := range facts {
			out, err := verifier.Verify(ctx, m, f)
			if err != nil {
				log.Fatal(err)
			}
			perFact[i] = append(perFact[i], out)
		}
	}

	// Consistency analysis selects the tie-breaking judges.
	rep := consensus.Alignment(perFact)
	fmt.Printf("tie rate: %.0f%%   consensus alignment (CA_M):\n", 100*rep.TieRate)
	for _, name := range llm.OpenSourceModels {
		fmt.Printf("  %-12s %.3f\n", name, rep.CA[name])
	}
	up := rep.MostConsistent(true)
	down := rep.MostConsistent(false)
	fmt.Printf("most consistent: %s (upgraded to %s for agg-cons-up)\n", up, llm.Upgrade[up])
	fmt.Printf("least consistent: %s (upgraded to %s for agg-cons-down)\n\n", down, llm.Upgrade[down])

	// Show the first few vote tables.
	fmt.Println("== Vote tables ==")
	judge, _ := b.Model(llm.Upgrade[up])
	arb := &consensus.ModelArbiter{Label: "agg-cons-up", Judge: judge, Verifier: verifier}
	for i := 0; i < 5; i++ {
		dec, err := consensus.Decide(ctx, facts[i], perFact[i], arb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s gold=%-5v -> final=%-5v tie=%-5v votes:", facts[i].ID, dec.Gold, dec.Final, dec.Tie)
		for _, v := range dec.Votes {
			fmt.Printf(" %s=%s", v.Model, v.Verdict)
		}
		fmt.Println()
	}

	// Compare the three arbiter configurations.
	fmt.Println("\n== Arbiter comparison ==")
	upArb, downArb, gptArb, err := b.Arbiters(rep, verifier.Method())
	if err != nil {
		log.Fatal(err)
	}
	for _, arb := range []consensus.Arbiter{upArb, downArb, gptArb} {
		var conf eval.Confusion
		for i, f := range facts {
			dec, err := consensus.Decide(ctx, f, perFact[i], arb)
			if err != nil {
				log.Fatal(err)
			}
			conf.Add(dec.Gold, dec.Final, true)
		}
		fmt.Printf("%-16s F1(T)=%.2f F1(F)=%.2f accuracy=%.2f\n",
			arb.Name(), conf.F1True(), conf.F1False(), conf.Accuracy())
	}
}
