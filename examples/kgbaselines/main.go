// Internal KG-based baselines vs LLM validation: reproduces the trade-off
// of the paper's Table 1 — coherence-based checkers (KLinker/PredPath
// style) are fast and self-contained but limited by the KG itself, while
// LLM strategies bring external knowledge at a cost. Also demonstrates the
// ontology-rule engine of the paper's future-work section (§8), both as a
// standalone validator and as a pre-filter in front of an LLM.
//
// Run with: go run ./examples/kgbaselines
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/det"
	"factcheck/internal/eval"
	"factcheck/internal/kgcheck"
	"factcheck/internal/llm"
	"factcheck/internal/rules"
	"factcheck/internal/strategy"
	"factcheck/internal/world"
)

func main() {
	b := core.NewBenchmark(core.Config{Scale: 0.1, Small: true})
	d := b.Datasets[dataset.FactBench]
	ctx := context.Background()

	fmt.Println("== Internal KG-based checkers (coherence) ==")
	rng := det.Source("kgbaselines-example")
	for _, c := range []kgcheck.Checker{kgcheck.NewLinker(b.World), kgcheck.NewPredPath(b.World)} {
		start := time.Now()
		th := kgcheck.BestThreshold(c, d, 100, rng)
		ev := kgcheck.Evaluate(c, d, th)
		fmt.Printf("%-9s threshold=%.2f F1(T)=%.2f F1(F)=%.2f accuracy=%.2f (%.0fms for %d facts)\n",
			c.Name(), th, ev.F1True(), ev.F1False(), ev.Accuracy(),
			time.Since(start).Seconds()*1000, len(d.Facts))
	}

	fmt.Println("\n== LLM validation (correspondence) ==")
	m, err := b.Model(llm.Gemma2)
	if err != nil {
		log.Fatal(err)
	}
	for _, method := range []llm.Method{llm.MethodDKA, llm.MethodRAG} {
		v, err := b.Verifier(method)
		if err != nil {
			log.Fatal(err)
		}
		var conf eval.Confusion
		var simulated float64
		for _, f := range d.Facts {
			out, err := v.Verify(ctx, m, f)
			if err != nil {
				log.Fatal(err)
			}
			conf.Add(out.Gold, out.Verdict.Bool(), out.Verdict != strategy.Invalid)
			simulated += out.Latency.Seconds()
		}
		fmt.Printf("%-9s F1(T)=%.2f F1(F)=%.2f accuracy=%.2f (simulated %.0fs of model time)\n",
			method, conf.F1True(), conf.F1False(), conf.Accuracy(), simulated)
	}

	fmt.Println("\n== Ontology rules (paper §8 future work) ==")
	engine := rules.NewEngine(b.World)
	st := engine.Evaluate(d)
	fmt.Printf("snapshot rules:   coverage=%.2f precision=%.2f (circular on accuracy estimation!)\n",
		st.Coverage(), st.Precision())

	// Structural rules only decide type-violating triples — the benchmark's
	// negatives respect constraints, so almost nothing is decided; show it
	// with a deliberately mis-typed triple instead.
	person := b.World.ByType(world.TypePerson)[0]
	award := b.World.ByType(world.TypeAward)[0]
	if r := engine.Check(person, mustRel("birthPlace"), award); r.Verdict == rules.Violated {
		fmt.Printf("structural rules: %q -> violated (%s)\n",
			person.Label+" was born in "+award.Label, r.Explanation)
	}

	fmt.Println("\n== Rule-augmented LLM verification ==")
	aug := &rules.Augmented{Engine: engine, Inner: strategy.DKA{}, Mode: rules.Snapshot}
	var conf eval.Confusion
	ruleDecided := 0
	for _, f := range d.Facts {
		out, err := aug.Verify(ctx, m, f)
		if err != nil {
			log.Fatal(err)
		}
		conf.Add(out.Gold, out.Verdict.Bool(), out.Verdict != strategy.Invalid)
		if out.PromptTokens == 0 {
			ruleDecided++
		}
	}
	fmt.Printf("snapshot-rule pre-filter decided %d/%d facts without any LLM call; F1(T)=%.2f F1(F)=%.2f\n",
		ruleDecided, len(d.Facts), conf.F1True(), conf.F1False())
	fmt.Println("(perfect here because gold truth IS snapshot membership — the circularity")
	fmt.Println(" that makes internal methods unusable for auditing the KG itself, paper §2.1)")
}

func mustRel(name string) *world.Relation {
	r := world.RelationByName(name)
	if r == nil {
		log.Fatalf("unknown relation %s", name)
	}
	return r
}
