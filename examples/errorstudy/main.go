// Error-analysis walkthrough (paper §7): collect wrong predictions, cluster
// the models' explanations into the E1–E6 taxonomy, compute uniqueness
// ratios, build the UpSet prediction-overlap view, and stratify DBpedia
// error rates by topic and by fact popularity.
//
// Run with: go run ./examples/errorstudy
package main

import (
	"context"
	"fmt"
	"log"

	"factcheck/internal/analysis"
	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

func main() {
	b := core.NewBenchmark(core.Config{
		Scale: 0.1, Small: true,
		Models:  llm.OpenSourceModels,
		Methods: []llm.Method{llm.MethodDKA},
	})
	ctx := context.Background()
	rs, err := b.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Error clustering (DKA, DBpedia) ==")
	perModel := map[string]analysis.ClusterResult{}
	for _, m := range llm.OpenSourceModels {
		var records []analysis.ErrorRecord
		for _, o := range rs.Get(dataset.DBpedia, llm.MethodDKA, m) {
			if o.Correct || o.Verdict == strategy.Invalid {
				continue
			}
			records = append(records, analysis.ErrorRecord{
				Model: m, FactID: o.FactID, Explanation: o.Explanation,
			})
		}
		res := analysis.ClusterErrors(records)
		perModel[m] = res
		fmt.Printf("%-12s total=%4d  ", m, res.Total)
		for _, cat := range analysis.Categories {
			fmt.Printf("%s=%-4d ", cat, res.Counts[cat])
		}
		fmt.Println()
	}
	fmt.Printf("overall unique-error ratio: %.2f\n", analysis.OverallUniqueRatio(perModel))
	fmt.Println("(E4 geographic errors dominate, matching the paper's Table 9)")

	fmt.Println("\n== UpSet: which model subsets get facts right ==")
	perFact, err := rs.PerFact(dataset.DBpedia, llm.MethodDKA, llm.OpenSourceModels)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range analysis.UpSet(perFact) {
		fmt.Printf("  %-52s %5d\n", row.Label(len(llm.OpenSourceModels)), row.Count)
	}

	fmt.Println("\n== DBpedia error rate by topic (all open models pooled) ==")
	var outs []strategy.Outcome
	for _, m := range llm.OpenSourceModels {
		outs = append(outs, rs.Get(dataset.DBpedia, llm.MethodDKA, m)...)
	}
	topicOf := map[string]string{}
	for _, f := range b.Datasets[dataset.DBpedia].Facts {
		topicOf[f.ID] = f.Topic
	}
	for _, s := range analysis.StratifyByTopic(outs, func(id string) string { return topicOf[id] }) {
		fmt.Printf("  %-16s n=%5d error-rate=%.3f\n", s.Name, s.Total, s.ErrorRate)
	}

	fmt.Println("\n== Error rate by fact popularity (head vs tail) ==")
	for _, s := range analysis.StratifyByPopularity(outs, 4) {
		fmt.Printf("  %-8s n=%5d error-rate=%.3f\n", s.Name, s.Total, s.ErrorRate)
	}
	fmt.Println("(tail facts err more: the head-to-tail knowledge effect)")
}
