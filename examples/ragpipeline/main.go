// RAG pipeline walkthrough: runs the paper's four retrieval phases for one
// fact — triple transformation, question generation and ranking, document
// retrieval with source filtering, and chunking — then verifies with
// external evidence. The second half does the same over the mock search API
// via HTTP, exactly as external researchers would.
//
// Run with: go run ./examples/ragpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/rag"
	"factcheck/internal/search"
	"factcheck/internal/strategy"
)

func main() {
	b := core.NewBenchmark(core.Config{Scale: 0.05, Small: true})
	ctx := context.Background()

	// Pick one corrupted (gold-false) fact so refutation evidence shows up.
	var fact *dataset.Fact
	for _, f := range b.Datasets[dataset.FactBench].Facts {
		if !f.Gold {
			fact = f
			break
		}
	}

	fmt.Println("== Phase-by-phase retrieval ==")
	ev, err := b.Pipeline.Retrieve(fact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1  sentence:   %s (gold=%v, corrupted via %s)\n", ev.Sentence, fact.Gold, fact.Corruption)
	fmt.Printf("phase 2  questions:  %d generated; top queries issued:\n", len(ev.Questions))
	for _, q := range ev.Queries {
		fmt.Printf("           - %s\n", q)
	}
	fmt.Printf("phase 3  documents:  %d candidates, %d filtered as KG-source pages\n", ev.Candidates, ev.FilteredSKG)
	fmt.Printf("phase 4  selected:   %d docs -> %d chunks (sliding window %d)\n",
		len(ev.Docs), len(ev.Chunks), b.Pipeline.Config.Window)
	for i, d := range ev.Docs {
		if i == 3 {
			fmt.Printf("           ... and %d more\n", len(ev.Docs)-3)
			break
		}
		fmt.Printf("           [%s] %s\n", d.Host, d.Title)
	}
	fmt.Printf("retrieval latency (simulated): %.2fs\n\n", ev.Latency.Seconds())

	fmt.Println("== Verification with evidence, all models ==")
	v := strategy.RAG{Pipeline: b.Pipeline}
	for _, name := range llm.BenchmarkModels {
		m, err := b.Model(name)
		if err != nil {
			log.Fatal(err)
		}
		out, err := v.Verify(ctx, m, fact)
		if err != nil {
			log.Fatal(err)
		}
		mark := "✗"
		if out.Correct {
			mark = "✓"
		}
		fmt.Printf("%s %-12s verdict=%-7s chunks=%2d latency=%.2fs\n",
			mark, name, out.Verdict, out.EvidenceChunks, out.Latency.Seconds())
	}

	// The same pipeline over the HTTP mock API.
	fmt.Println("\n== Same retrieval through the mock search API (HTTP) ==")
	srv := httptest.NewServer(search.NewAPI(b.Engine).Handler())
	defer srv.Close()
	client := search.NewClient(srv.URL)
	remote := rag.New(client)
	ev2, err := remote.Retrieve(fact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mock API at %s returned %d docs, %d chunks (identical to in-process: %v)\n",
		srv.URL, len(ev2.Docs), len(ev2.Chunks), len(ev2.Chunks) == len(ev.Chunks))

	items, err := client.Search(fact.ID, ev.Sentence, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top SERP entries for the transformed triple:")
	for _, it := range items {
		fmt.Printf("  #%d %s\n", it.Rank, it.URL)
	}
}
