// KG accuracy estimation with LLM annotators: the motivating scenario of
// the paper's introduction. Expert annotation of a 9k-triple KG takes
// weeks; sampling + LLM annotation takes minutes — but how far off is the
// estimate? This example estimates each dataset's accuracy µ with (a) an
// expert oracle, (b) an LLM annotator under GIV-F, and (c) an LLM annotator
// under RAG, comparing estimates, confidence intervals and cost.
//
// Run with: go run ./examples/accuracyestimation
package main

import (
	"context"
	"fmt"
	"log"

	"factcheck/internal/accuracy"
	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

func main() {
	b := core.NewBenchmark(core.Config{Scale: 0.15, Small: true})
	ctx := context.Background()
	model, err := b.Model(llm.Gemma2)
	if err != nil {
		log.Fatal(err)
	}
	ragVerifier, err := b.Verifier(llm.MethodRAG)
	if err != nil {
		log.Fatal(err)
	}

	n := accuracy.RequiredSampleSize(0.05, 0.95)
	fmt.Printf("sample size for ±5%% at 95%% confidence: %d triples\n\n", n)

	annotators := []accuracy.Annotator{
		accuracy.Oracle{},
		&accuracy.LLMAnnotator{Model: model, Verifier: strategy.GIV{FewShot: true}},
		&accuracy.LLMAnnotator{Model: model, Verifier: ragVerifier},
	}

	for _, dn := range dataset.AllNames {
		d := b.Datasets[dn]
		mu := d.Stats().GoldAccuracy
		fmt.Printf("== %s (true µ = %.3f, %d facts) ==\n", dn, mu, len(d.Facts))
		for _, a := range annotators {
			est, err := accuracy.SRS(ctx, d, a, n, 0.95, "example")
			if err != nil {
				log.Fatal(err)
			}
			hit := " "
			if est.Contains(mu) {
				hit = "✓"
			}
			fmt.Printf("%s %-22s µ̂=%.3f  CI=[%.3f, %.3f]  time=%s  tokens=%d\n",
				hit, a.Name(), est.MuHat, est.Lower, est.Upper,
				humanDuration(est.Cost.Time), est.Cost.Tokens)
		}
		// Stratified sampling with the oracle: tighter for skewed schemas.
		strat, err := accuracy.Stratified(ctx, d, accuracy.Oracle{}, n, 0.95, "example")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s µ̂=%.3f  CI=[%.3f, %.3f] (predicate-stratified, n=%d)\n\n",
			"human-expert/strat", strat.MuHat, strat.Lower, strat.Upper, strat.SampleSize)
	}
	fmt.Println("Note: LLM annotation is orders of magnitude cheaper than expert")
	fmt.Println("annotation but inherits the model's class bias — on YAGO (µ=0.99) a")
	fmt.Println("false-leaning model underestimates accuracy badly, which is exactly")
	fmt.Println("why the paper concludes LLMs are not yet reliable KG validators.")
}

func humanDuration(d interface{ Seconds() float64 }) string {
	s := d.Seconds()
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1fm", s/60)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}
