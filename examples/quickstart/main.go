// Quickstart: verify a handful of KG facts with one simulated LLM using the
// benchmark's simplest strategy (Direct Knowledge Assessment), then show the
// structured prompting variants side by side.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"factcheck/internal/core"
	"factcheck/internal/dataset"
	"factcheck/internal/llm"
	"factcheck/internal/strategy"
)

func main() {
	// A small benchmark instance: synthetic world, three datasets, corpus,
	// search engine and RAG pipeline, all wired.
	b := core.NewBenchmark(core.Config{Scale: 0.05, Small: true})
	model, err := b.Model(llm.Gemma2)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("== FactCheck quickstart: verifying 8 FactBench facts with", model.Name(), "==")
	facts := b.Datasets[dataset.FactBench].Facts[:8]
	for _, f := range facts {
		out, err := strategy.DKA{}.Verify(ctx, model, f)
		if err != nil {
			log.Fatal(err)
		}
		mark := "✗"
		if out.Correct {
			mark = "✓"
		}
		fmt.Printf("%s [gold=%-5v verdict=%-7s %5.0fms] %s\n",
			mark, f.Gold, out.Verdict, out.Latency.Seconds()*1000, out.Claim.Sentence)
		fmt.Printf("   reason: %s\n", out.Explanation)
	}

	// Compare the three internal-knowledge strategies on one fact.
	f := facts[0]
	fmt.Printf("\n== Strategy comparison on %q ==\n", strategy.ClaimFor(f).Sentence)
	for _, method := range []llm.Method{llm.MethodDKA, llm.MethodGIVZ, llm.MethodGIVF} {
		v, err := b.Verifier(method)
		if err != nil {
			log.Fatal(err)
		}
		out, err := v.Verify(ctx, model, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s verdict=%-7s attempts=%d prompt=%4d tokens latency=%4.0fms\n",
			method, out.Verdict, out.Attempts, out.PromptTokens, out.Latency.Seconds()*1000)
	}
}
